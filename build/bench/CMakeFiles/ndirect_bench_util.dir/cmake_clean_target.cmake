file(REMOVE_RECURSE
  "libndirect_bench_util.a"
)
