file(REMOVE_RECURSE
  "CMakeFiles/ndirect_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/ndirect_bench_util.dir/bench_util.cpp.o.d"
  "libndirect_bench_util.a"
  "libndirect_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndirect_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
