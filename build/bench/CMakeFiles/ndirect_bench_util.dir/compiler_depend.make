# Empty compiler generated dependencies file for ndirect_bench_util.
# This may be replaced when dependencies are built.
