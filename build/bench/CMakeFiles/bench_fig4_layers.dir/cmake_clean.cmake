file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_layers.dir/bench_fig4_layers.cpp.o"
  "CMakeFiles/bench_fig4_layers.dir/bench_fig4_layers.cpp.o.d"
  "bench_fig4_layers"
  "bench_fig4_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
