file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_smt.dir/bench_fig9_smt.cpp.o"
  "CMakeFiles/bench_fig9_smt.dir/bench_fig9_smt.cpp.o.d"
  "bench_fig9_smt"
  "bench_fig9_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
