# Empty dependencies file for bench_fig9_smt.
# This may be replaced when dependencies are built.
