# Empty compiler generated dependencies file for bench_dtypes.
# This may be replaced when dependencies are built.
