file(REMOVE_RECURSE
  "CMakeFiles/bench_dtypes.dir/bench_dtypes.cpp.o"
  "CMakeFiles/bench_dtypes.dir/bench_dtypes.cpp.o.d"
  "bench_dtypes"
  "bench_dtypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dtypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
