
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_dtypes.cpp" "bench/CMakeFiles/bench_dtypes.dir/bench_dtypes.cpp.o" "gcc" "bench/CMakeFiles/bench_dtypes.dir/bench_dtypes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ndirect_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/ndirect_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ndirect_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/ndirect_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/autotune/CMakeFiles/ndirect_autotune.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ndirect_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ndirect_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ndirect_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
