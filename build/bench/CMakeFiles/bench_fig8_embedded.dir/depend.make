# Empty dependencies file for bench_fig8_embedded.
# This may be replaced when dependencies are built.
