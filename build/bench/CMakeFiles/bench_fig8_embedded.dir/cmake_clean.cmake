file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_embedded.dir/bench_fig8_embedded.cpp.o"
  "CMakeFiles/bench_fig8_embedded.dir/bench_fig8_embedded.cpp.o.d"
  "bench_fig8_embedded"
  "bench_fig8_embedded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_embedded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
