# Empty dependencies file for bench_fig6_ansor.
# This may be replaced when dependencies are built.
