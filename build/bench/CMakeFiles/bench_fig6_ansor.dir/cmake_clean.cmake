file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ansor.dir/bench_fig6_ansor.cpp.o"
  "CMakeFiles/bench_fig6_ansor.dir/bench_fig6_ansor.cpp.o.d"
  "bench_fig6_ansor"
  "bench_fig6_ansor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ansor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
