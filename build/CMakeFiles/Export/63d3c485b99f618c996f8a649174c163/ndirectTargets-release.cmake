#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "ndirect::ndirect_runtime" for configuration "Release"
set_property(TARGET ndirect::ndirect_runtime APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ndirect::ndirect_runtime PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libndirect_runtime.a"
  )

list(APPEND _cmake_import_check_targets ndirect::ndirect_runtime )
list(APPEND _cmake_import_check_files_for_ndirect::ndirect_runtime "${_IMPORT_PREFIX}/lib/libndirect_runtime.a" )

# Import target "ndirect::ndirect_tensor" for configuration "Release"
set_property(TARGET ndirect::ndirect_tensor APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ndirect::ndirect_tensor PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libndirect_tensor.a"
  )

list(APPEND _cmake_import_check_targets ndirect::ndirect_tensor )
list(APPEND _cmake_import_check_files_for_ndirect::ndirect_tensor "${_IMPORT_PREFIX}/lib/libndirect_tensor.a" )

# Import target "ndirect::ndirect_gemm" for configuration "Release"
set_property(TARGET ndirect::ndirect_gemm APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ndirect::ndirect_gemm PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libndirect_gemm.a"
  )

list(APPEND _cmake_import_check_targets ndirect::ndirect_gemm )
list(APPEND _cmake_import_check_files_for_ndirect::ndirect_gemm "${_IMPORT_PREFIX}/lib/libndirect_gemm.a" )

# Import target "ndirect::ndirect_baselines" for configuration "Release"
set_property(TARGET ndirect::ndirect_baselines APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ndirect::ndirect_baselines PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libndirect_baselines.a"
  )

list(APPEND _cmake_import_check_targets ndirect::ndirect_baselines )
list(APPEND _cmake_import_check_files_for_ndirect::ndirect_baselines "${_IMPORT_PREFIX}/lib/libndirect_baselines.a" )

# Import target "ndirect::ndirect_core" for configuration "Release"
set_property(TARGET ndirect::ndirect_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ndirect::ndirect_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libndirect_core.a"
  )

list(APPEND _cmake_import_check_targets ndirect::ndirect_core )
list(APPEND _cmake_import_check_files_for_ndirect::ndirect_core "${_IMPORT_PREFIX}/lib/libndirect_core.a" )

# Import target "ndirect::ndirect_autotune" for configuration "Release"
set_property(TARGET ndirect::ndirect_autotune APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ndirect::ndirect_autotune PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libndirect_autotune.a"
  )

list(APPEND _cmake_import_check_targets ndirect::ndirect_autotune )
list(APPEND _cmake_import_check_files_for_ndirect::ndirect_autotune "${_IMPORT_PREFIX}/lib/libndirect_autotune.a" )

# Import target "ndirect::ndirect_platform" for configuration "Release"
set_property(TARGET ndirect::ndirect_platform APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ndirect::ndirect_platform PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libndirect_platform.a"
  )

list(APPEND _cmake_import_check_targets ndirect::ndirect_platform )
list(APPEND _cmake_import_check_files_for_ndirect::ndirect_platform "${_IMPORT_PREFIX}/lib/libndirect_platform.a" )

# Import target "ndirect::ndirect_nn" for configuration "Release"
set_property(TARGET ndirect::ndirect_nn APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(ndirect::ndirect_nn PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libndirect_nn.a"
  )

list(APPEND _cmake_import_check_targets ndirect::ndirect_nn )
list(APPEND _cmake_import_check_files_for_ndirect::ndirect_nn "${_IMPORT_PREFIX}/lib/libndirect_nn.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
