file(REMOVE_RECURSE
  "CMakeFiles/tune_conv.dir/tune_conv.cpp.o"
  "CMakeFiles/tune_conv.dir/tune_conv.cpp.o.d"
  "tune_conv"
  "tune_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
