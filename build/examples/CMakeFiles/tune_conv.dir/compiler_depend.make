# Empty compiler generated dependencies file for tune_conv.
# This may be replaced when dependencies are built.
