file(REMOVE_RECURSE
  "CMakeFiles/microkernel_test.dir/microkernel_test.cpp.o"
  "CMakeFiles/microkernel_test.dir/microkernel_test.cpp.o.d"
  "microkernel_test"
  "microkernel_test.pdb"
  "microkernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microkernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
