# Empty dependencies file for microkernel_test.
# This may be replaced when dependencies are built.
