# Empty compiler generated dependencies file for epilogue_test.
# This may be replaced when dependencies are built.
