file(REMOVE_RECURSE
  "CMakeFiles/epilogue_test.dir/epilogue_test.cpp.o"
  "CMakeFiles/epilogue_test.dir/epilogue_test.cpp.o.d"
  "epilogue_test"
  "epilogue_test.pdb"
  "epilogue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epilogue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
