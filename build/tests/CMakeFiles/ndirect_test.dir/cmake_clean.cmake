file(REMOVE_RECURSE
  "CMakeFiles/ndirect_test.dir/ndirect_test.cpp.o"
  "CMakeFiles/ndirect_test.dir/ndirect_test.cpp.o.d"
  "ndirect_test"
  "ndirect_test.pdb"
  "ndirect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndirect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
