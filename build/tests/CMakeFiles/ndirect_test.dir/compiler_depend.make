# Empty compiler generated dependencies file for ndirect_test.
# This may be replaced when dependencies are built.
