# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/simd_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/gemm_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/core_models_test[1]_include.cmake")
include("/root/repo/build/tests/ndirect_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/autotune_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/epilogue_test[1]_include.cmake")
include("/root/repo/build/tests/dtype_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/microkernel_test[1]_include.cmake")
