
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/acl_direct.cpp" "src/baselines/CMakeFiles/ndirect_baselines.dir/acl_direct.cpp.o" "gcc" "src/baselines/CMakeFiles/ndirect_baselines.dir/acl_direct.cpp.o.d"
  "/root/repo/src/baselines/acl_gemm.cpp" "src/baselines/CMakeFiles/ndirect_baselines.dir/acl_gemm.cpp.o" "gcc" "src/baselines/CMakeFiles/ndirect_baselines.dir/acl_gemm.cpp.o.d"
  "/root/repo/src/baselines/im2col_conv.cpp" "src/baselines/CMakeFiles/ndirect_baselines.dir/im2col_conv.cpp.o" "gcc" "src/baselines/CMakeFiles/ndirect_baselines.dir/im2col_conv.cpp.o.d"
  "/root/repo/src/baselines/indirect_conv.cpp" "src/baselines/CMakeFiles/ndirect_baselines.dir/indirect_conv.cpp.o" "gcc" "src/baselines/CMakeFiles/ndirect_baselines.dir/indirect_conv.cpp.o.d"
  "/root/repo/src/baselines/naive_conv.cpp" "src/baselines/CMakeFiles/ndirect_baselines.dir/naive_conv.cpp.o" "gcc" "src/baselines/CMakeFiles/ndirect_baselines.dir/naive_conv.cpp.o.d"
  "/root/repo/src/baselines/nchwc_conv.cpp" "src/baselines/CMakeFiles/ndirect_baselines.dir/nchwc_conv.cpp.o" "gcc" "src/baselines/CMakeFiles/ndirect_baselines.dir/nchwc_conv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ndirect_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/ndirect_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ndirect_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
