file(REMOVE_RECURSE
  "libndirect_baselines.a"
)
