file(REMOVE_RECURSE
  "CMakeFiles/ndirect_baselines.dir/acl_direct.cpp.o"
  "CMakeFiles/ndirect_baselines.dir/acl_direct.cpp.o.d"
  "CMakeFiles/ndirect_baselines.dir/acl_gemm.cpp.o"
  "CMakeFiles/ndirect_baselines.dir/acl_gemm.cpp.o.d"
  "CMakeFiles/ndirect_baselines.dir/im2col_conv.cpp.o"
  "CMakeFiles/ndirect_baselines.dir/im2col_conv.cpp.o.d"
  "CMakeFiles/ndirect_baselines.dir/indirect_conv.cpp.o"
  "CMakeFiles/ndirect_baselines.dir/indirect_conv.cpp.o.d"
  "CMakeFiles/ndirect_baselines.dir/naive_conv.cpp.o"
  "CMakeFiles/ndirect_baselines.dir/naive_conv.cpp.o.d"
  "CMakeFiles/ndirect_baselines.dir/nchwc_conv.cpp.o"
  "CMakeFiles/ndirect_baselines.dir/nchwc_conv.cpp.o.d"
  "libndirect_baselines.a"
  "libndirect_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndirect_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
