# Empty dependencies file for ndirect_baselines.
# This may be replaced when dependencies are built.
