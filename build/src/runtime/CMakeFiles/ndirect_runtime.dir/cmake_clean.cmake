file(REMOVE_RECURSE
  "CMakeFiles/ndirect_runtime.dir/cpu_info.cpp.o"
  "CMakeFiles/ndirect_runtime.dir/cpu_info.cpp.o.d"
  "CMakeFiles/ndirect_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/ndirect_runtime.dir/thread_pool.cpp.o.d"
  "libndirect_runtime.a"
  "libndirect_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndirect_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
