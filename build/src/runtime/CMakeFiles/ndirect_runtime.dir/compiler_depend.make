# Empty compiler generated dependencies file for ndirect_runtime.
# This may be replaced when dependencies are built.
