file(REMOVE_RECURSE
  "libndirect_runtime.a"
)
