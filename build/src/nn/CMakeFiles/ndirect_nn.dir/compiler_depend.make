# Empty compiler generated dependencies file for ndirect_nn.
# This may be replaced when dependencies are built.
