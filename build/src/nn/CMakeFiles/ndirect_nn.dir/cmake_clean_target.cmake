file(REMOVE_RECURSE
  "libndirect_nn.a"
)
