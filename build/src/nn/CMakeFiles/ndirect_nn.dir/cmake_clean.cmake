file(REMOVE_RECURSE
  "CMakeFiles/ndirect_nn.dir/graph.cpp.o"
  "CMakeFiles/ndirect_nn.dir/graph.cpp.o.d"
  "CMakeFiles/ndirect_nn.dir/models.cpp.o"
  "CMakeFiles/ndirect_nn.dir/models.cpp.o.d"
  "CMakeFiles/ndirect_nn.dir/op.cpp.o"
  "CMakeFiles/ndirect_nn.dir/op.cpp.o.d"
  "CMakeFiles/ndirect_nn.dir/optimize.cpp.o"
  "CMakeFiles/ndirect_nn.dir/optimize.cpp.o.d"
  "libndirect_nn.a"
  "libndirect_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndirect_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
