file(REMOVE_RECURSE
  "libndirect_platform.a"
)
