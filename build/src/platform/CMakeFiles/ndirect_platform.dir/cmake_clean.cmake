file(REMOVE_RECURSE
  "CMakeFiles/ndirect_platform.dir/perf_model.cpp.o"
  "CMakeFiles/ndirect_platform.dir/perf_model.cpp.o.d"
  "CMakeFiles/ndirect_platform.dir/specs.cpp.o"
  "CMakeFiles/ndirect_platform.dir/specs.cpp.o.d"
  "CMakeFiles/ndirect_platform.dir/workloads.cpp.o"
  "CMakeFiles/ndirect_platform.dir/workloads.cpp.o.d"
  "libndirect_platform.a"
  "libndirect_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndirect_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
