# Empty compiler generated dependencies file for ndirect_platform.
# This may be replaced when dependencies are built.
