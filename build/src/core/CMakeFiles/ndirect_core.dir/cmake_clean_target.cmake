file(REMOVE_RECURSE
  "libndirect_core.a"
)
