
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alpha.cpp" "src/core/CMakeFiles/ndirect_core.dir/alpha.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/alpha.cpp.o.d"
  "/root/repo/src/core/conv3d.cpp" "src/core/CMakeFiles/ndirect_core.dir/conv3d.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/conv3d.cpp.o.d"
  "/root/repo/src/core/conv_fp16.cpp" "src/core/CMakeFiles/ndirect_core.dir/conv_fp16.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/conv_fp16.cpp.o.d"
  "/root/repo/src/core/conv_fp64.cpp" "src/core/CMakeFiles/ndirect_core.dir/conv_fp64.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/conv_fp64.cpp.o.d"
  "/root/repo/src/core/depthwise.cpp" "src/core/CMakeFiles/ndirect_core.dir/depthwise.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/depthwise.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/ndirect_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/fai.cpp" "src/core/CMakeFiles/ndirect_core.dir/fai.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/fai.cpp.o.d"
  "/root/repo/src/core/filter_transform.cpp" "src/core/CMakeFiles/ndirect_core.dir/filter_transform.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/filter_transform.cpp.o.d"
  "/root/repo/src/core/fp16.cpp" "src/core/CMakeFiles/ndirect_core.dir/fp16.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/fp16.cpp.o.d"
  "/root/repo/src/core/grouped.cpp" "src/core/CMakeFiles/ndirect_core.dir/grouped.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/grouped.cpp.o.d"
  "/root/repo/src/core/microkernel.cpp" "src/core/CMakeFiles/ndirect_core.dir/microkernel.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/microkernel.cpp.o.d"
  "/root/repo/src/core/quantized.cpp" "src/core/CMakeFiles/ndirect_core.dir/quantized.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/quantized.cpp.o.d"
  "/root/repo/src/core/threading.cpp" "src/core/CMakeFiles/ndirect_core.dir/threading.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/threading.cpp.o.d"
  "/root/repo/src/core/tiling.cpp" "src/core/CMakeFiles/ndirect_core.dir/tiling.cpp.o" "gcc" "src/core/CMakeFiles/ndirect_core.dir/tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ndirect_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ndirect_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
