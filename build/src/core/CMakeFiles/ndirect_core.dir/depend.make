# Empty dependencies file for ndirect_core.
# This may be replaced when dependencies are built.
