file(REMOVE_RECURSE
  "CMakeFiles/ndirect_core.dir/alpha.cpp.o"
  "CMakeFiles/ndirect_core.dir/alpha.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/conv3d.cpp.o"
  "CMakeFiles/ndirect_core.dir/conv3d.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/conv_fp16.cpp.o"
  "CMakeFiles/ndirect_core.dir/conv_fp16.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/conv_fp64.cpp.o"
  "CMakeFiles/ndirect_core.dir/conv_fp64.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/depthwise.cpp.o"
  "CMakeFiles/ndirect_core.dir/depthwise.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/engine.cpp.o"
  "CMakeFiles/ndirect_core.dir/engine.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/fai.cpp.o"
  "CMakeFiles/ndirect_core.dir/fai.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/filter_transform.cpp.o"
  "CMakeFiles/ndirect_core.dir/filter_transform.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/fp16.cpp.o"
  "CMakeFiles/ndirect_core.dir/fp16.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/grouped.cpp.o"
  "CMakeFiles/ndirect_core.dir/grouped.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/microkernel.cpp.o"
  "CMakeFiles/ndirect_core.dir/microkernel.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/quantized.cpp.o"
  "CMakeFiles/ndirect_core.dir/quantized.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/threading.cpp.o"
  "CMakeFiles/ndirect_core.dir/threading.cpp.o.d"
  "CMakeFiles/ndirect_core.dir/tiling.cpp.o"
  "CMakeFiles/ndirect_core.dir/tiling.cpp.o.d"
  "libndirect_core.a"
  "libndirect_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndirect_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
