file(REMOVE_RECURSE
  "libndirect_tensor.a"
)
