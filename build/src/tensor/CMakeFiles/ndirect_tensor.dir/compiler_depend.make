# Empty compiler generated dependencies file for ndirect_tensor.
# This may be replaced when dependencies are built.
