file(REMOVE_RECURSE
  "CMakeFiles/ndirect_tensor.dir/tensor.cpp.o"
  "CMakeFiles/ndirect_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/ndirect_tensor.dir/transforms.cpp.o"
  "CMakeFiles/ndirect_tensor.dir/transforms.cpp.o.d"
  "libndirect_tensor.a"
  "libndirect_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndirect_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
