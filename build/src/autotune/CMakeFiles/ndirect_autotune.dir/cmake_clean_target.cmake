file(REMOVE_RECURSE
  "libndirect_autotune.a"
)
