file(REMOVE_RECURSE
  "CMakeFiles/ndirect_autotune.dir/cost_model.cpp.o"
  "CMakeFiles/ndirect_autotune.dir/cost_model.cpp.o.d"
  "CMakeFiles/ndirect_autotune.dir/registry.cpp.o"
  "CMakeFiles/ndirect_autotune.dir/registry.cpp.o.d"
  "CMakeFiles/ndirect_autotune.dir/space.cpp.o"
  "CMakeFiles/ndirect_autotune.dir/space.cpp.o.d"
  "CMakeFiles/ndirect_autotune.dir/tuner.cpp.o"
  "CMakeFiles/ndirect_autotune.dir/tuner.cpp.o.d"
  "libndirect_autotune.a"
  "libndirect_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndirect_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
