# Empty dependencies file for ndirect_autotune.
# This may be replaced when dependencies are built.
