
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autotune/cost_model.cpp" "src/autotune/CMakeFiles/ndirect_autotune.dir/cost_model.cpp.o" "gcc" "src/autotune/CMakeFiles/ndirect_autotune.dir/cost_model.cpp.o.d"
  "/root/repo/src/autotune/registry.cpp" "src/autotune/CMakeFiles/ndirect_autotune.dir/registry.cpp.o" "gcc" "src/autotune/CMakeFiles/ndirect_autotune.dir/registry.cpp.o.d"
  "/root/repo/src/autotune/space.cpp" "src/autotune/CMakeFiles/ndirect_autotune.dir/space.cpp.o" "gcc" "src/autotune/CMakeFiles/ndirect_autotune.dir/space.cpp.o.d"
  "/root/repo/src/autotune/tuner.cpp" "src/autotune/CMakeFiles/ndirect_autotune.dir/tuner.cpp.o" "gcc" "src/autotune/CMakeFiles/ndirect_autotune.dir/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ndirect_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ndirect_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ndirect_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
