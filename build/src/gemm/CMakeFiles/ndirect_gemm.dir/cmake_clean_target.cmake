file(REMOVE_RECURSE
  "libndirect_gemm.a"
)
