
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gemm/gemm.cpp" "src/gemm/CMakeFiles/ndirect_gemm.dir/gemm.cpp.o" "gcc" "src/gemm/CMakeFiles/ndirect_gemm.dir/gemm.cpp.o.d"
  "/root/repo/src/gemm/microkernel.cpp" "src/gemm/CMakeFiles/ndirect_gemm.dir/microkernel.cpp.o" "gcc" "src/gemm/CMakeFiles/ndirect_gemm.dir/microkernel.cpp.o.d"
  "/root/repo/src/gemm/pack.cpp" "src/gemm/CMakeFiles/ndirect_gemm.dir/pack.cpp.o" "gcc" "src/gemm/CMakeFiles/ndirect_gemm.dir/pack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/ndirect_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
