file(REMOVE_RECURSE
  "CMakeFiles/ndirect_gemm.dir/gemm.cpp.o"
  "CMakeFiles/ndirect_gemm.dir/gemm.cpp.o.d"
  "CMakeFiles/ndirect_gemm.dir/microkernel.cpp.o"
  "CMakeFiles/ndirect_gemm.dir/microkernel.cpp.o.d"
  "CMakeFiles/ndirect_gemm.dir/pack.cpp.o"
  "CMakeFiles/ndirect_gemm.dir/pack.cpp.o.d"
  "libndirect_gemm.a"
  "libndirect_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndirect_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
