# Empty dependencies file for ndirect_gemm.
# This may be replaced when dependencies are built.
