// Tour of the extension APIs beyond the paper's core contribution:
// store-time fusion epilogues, depthwise-separable / grouped / 3D
// convolution (Section 10.2), and the FP64 / FP16 / INT16 datatype
// paths (Section 3.3).
//
//   $ ./examples/advanced_features
#include <cstdio>
#include <random>
#include <vector>

#include "core/conv3d.h"
#include "core/conv_fp16.h"
#include "core/conv_fp64.h"
#include "core/depthwise.h"
#include "core/grouped.h"
#include "core/ndirect.h"
#include "core/quantized.h"
#include "tensor/compare.h"
#include "tensor/rng.h"

using namespace ndirect;

int main() {
  // ------------------------------------------------------------------
  // 1. Fused epilogue: conv + bias + ReLU in one pass.
  // ------------------------------------------------------------------
  {
    const ConvParams p{.N = 1, .C = 32, .H = 28, .W = 28, .K = 64,
                       .R = 3, .S = 3, .str = 1, .pad = 1};
    Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
    Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
    fill_random(in, 1);
    fill_random(f, 2);
    std::vector<float> bias(64, 0.1f);
    const NdirectConv conv(p);
    const Tensor out = conv.run(in, f, {.bias = bias.data(), .relu = true});
    float min_v = out[0];
    for (std::size_t i = 0; i < out.size(); ++i) {
      min_v = std::min(min_v, out[i]);
    }
    std::printf("[epilogue]  conv+bias+ReLU fused at store time; "
                "min output = %.3f (>= 0)\n",
                min_v);
  }

  // ------------------------------------------------------------------
  // 2. Depthwise-separable block (MobileNet building block, §10.2).
  // ------------------------------------------------------------------
  {
    const DepthwiseParams dw{.N = 1, .C = 32, .H = 28, .W = 28,
                             .R = 3, .S = 3, .str = 1, .pad = 1};
    Tensor in = make_input_nchw(1, 32, 28, 28);
    Tensor dwf = make_filter_kcrs(32, 1, 3, 3);
    Tensor pwf = make_filter_kcrs(64, 32, 1, 1);
    fill_random(in, 3);
    fill_random(dwf, 4);
    fill_random(pwf, 5);
    const Tensor out = separable_conv_nchw(in, dwf, pwf, dw, /*K=*/64);
    std::printf("[separable] dw3x3 + pw1x1 -> output %s\n",
                out.shape_string().c_str());
  }

  // ------------------------------------------------------------------
  // 3. Grouped convolution (ResNeXt-style, 4 groups).
  // ------------------------------------------------------------------
  {
    const ConvParams p{.N = 1, .C = 32, .H = 14, .W = 14, .K = 32,
                       .R = 3, .S = 3, .str = 1, .pad = 1};
    Tensor in = make_input_nchw(1, 32, 14, 14);
    Tensor f = make_filter_kcrs(32, 8, 3, 3);  // C/groups = 8
    fill_random(in, 6);
    fill_random(f, 7);
    const Tensor out = grouped_conv_nchw(in, f, p, /*groups=*/4);
    const Tensor ref = grouped_conv_reference(in, f, p, 4);
    std::printf("[grouped]   4 groups, verified: %s\n",
                allclose(out, ref) ? "ok" : "MISMATCH");
  }

  // ------------------------------------------------------------------
  // 4. 3D convolution (video/volumetric, §10.2).
  // ------------------------------------------------------------------
  {
    const Conv3dParams p{.N = 1, .C = 4, .D = 8, .H = 16, .W = 16,
                         .K = 8, .T = 3, .R = 3, .S = 3, .str = 1,
                         .pad = 1, .pad_d = 1};
    Tensor in({1, 4, 8, 16, 16}, Layout::Linear);
    Tensor f({8, 4, 3, 3, 3}, Layout::Linear);
    fill_random(in, 8);
    fill_random(f, 9);
    const Tensor out = conv3d_ndirect(in, f, p);
    std::printf("[conv3d]    [1,4,8,16,16] * [8,4,3,3,3] -> %s "
                "(%.2f GFLOP)\n",
                out.shape_string().c_str(),
                static_cast<double>(p.flops()) / 1e9);
  }

  // ------------------------------------------------------------------
  // 5. Datatypes (§3.3): FP64 exactness, FP16 footprint, INT16 speed.
  // ------------------------------------------------------------------
  {
    const ConvParams p{.N = 1, .C = 16, .H = 14, .W = 14, .K = 16,
                       .R = 3, .S = 3, .str = 1, .pad = 1};
    std::mt19937_64 rng(10);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);

    std::vector<double> din(static_cast<std::size_t>(p.input_elems()));
    std::vector<double> dflt(static_cast<std::size_t>(p.filter_elems()));
    std::vector<double> dout(static_cast<std::size_t>(p.output_elems()));
    for (double& v : din) v = dist(rng);
    for (double& v : dflt) v = dist(rng);
    ndirect_conv_fp64(din.data(), dflt.data(), dout.data(), p);
    std::printf("[fp64]      double-precision conv: out[0] = %.15f\n",
                dout[0]);

    std::vector<fp16_t> hin(din.size()), hflt(dflt.size()),
        hout(dout.size());
    for (std::size_t i = 0; i < din.size(); ++i) {
      hin[i] = fp32_to_fp16(static_cast<float>(din[i]));
    }
    for (std::size_t i = 0; i < dflt.size(); ++i) {
      hflt[i] = fp32_to_fp16(static_cast<float>(dflt[i]));
    }
    ndirect_conv_fp16(hin.data(), hflt.data(), hout.data(), p);
    std::printf("[fp16]      half-storage conv: out[0] = %.5f "
                "(fp64 says %.5f), tensors at half the bytes\n",
                fp16_to_fp32(hout[0]), dout[0]);

    std::vector<float> fin(din.begin(), din.end());
    std::vector<float> fflt(dflt.begin(), dflt.end());
    const std::vector<float> qout =
        quantized_conv_fp32(fin.data(), fflt.data(), p);
    std::printf("[int16]     quantized conv:    out[0] = %.5f "
                "(quantization error %.2e)\n",
                qout[0], std::fabs(qout[0] - dout[0]));
  }

  // ------------------------------------------------------------------
  // 6. Re-derived register blocks for other ISAs (§10.1).
  // ------------------------------------------------------------------
  for (const auto& [name, lanes] :
       {std::pair<const char*, int>{"NEON FP32", 4},
        {"SVE-256", 8},
        {"SVE-512", 16}}) {
    const RegisterBlock b = solve_register_block(3, lanes, 32);
    std::printf("[isa]       %-10s -> Vw=%2d Vk=%2d (FAI %.1f)\n", name,
                b.vw, b.vk, fai_microkernel(b.vw, b.vk, 3));
  }
  return 0;
}
