// End-to-end CNN inference with the graph executor: build ResNet-50,
// fold BatchNorm into the convolutions, and compare the conv backends
// on the same weights — the workflow behind the paper's Fig. 7.
//
//   $ ./examples/resnet_inference            # reduced model, fast
//   $ NDIRECT_EXAMPLE_FULL=1 ./examples/resnet_inference
#include <cstdio>
#include <vector>

#include "nn/models.h"
#include "nn/optimize.h"
#include "runtime/env.h"
#include "runtime/timer.h"
#include "tensor/compare.h"
#include "tensor/rng.h"

using namespace ndirect;

int main() {
  const bool full = env_flag("NDIRECT_EXAMPLE_FULL");
  ModelOptions opts;
  opts.channel_divisor = full ? 1 : 8;
  opts.image_size = full ? 224 : 64;
  opts.backend = ConvBackend::Ndirect;

  const int batch = 1;
  std::printf("building ResNet-50 (channels/%d, %dx%d input)...\n",
              opts.channel_divisor, opts.image_size, opts.image_size);
  auto net = build_resnet50(batch, opts);
  std::printf("  %d graph nodes, %zu convolutions, %.2f GFLOP of conv\n",
              net->node_count(), net->conv_ops().size(),
              static_cast<double>(net->conv_flops()) / 1e9);

  Tensor image = make_input_nchw(batch, 3, opts.image_size,
                                 opts.image_size);
  fill_random(image, 7);

  // Fold inference BatchNorm into the conv weights (the fusion
  // extension of Section 10) — results are unchanged, batchnorm cost
  // disappears.
  const Tensor before_fold = net->run(image);
  const int folded = fold_batchnorm(*net);
  const Tensor after_fold = net->run(image);
  std::printf("folded %d BatchNorm ops into conv weights (outputs %s)\n",
              folded,
              allclose(before_fold, after_fold, 1e-3, 1e-3) ? "unchanged"
                                                            : "DIFFER!");

  // Per-op-type time breakdown with the nDirect backend.
  PhaseTimer profile;
  (void)net->run_profiled(image, profile);
  std::printf("\nper-op time with the ndirect backend:\n");
  for (const auto& [op, seconds] : profile.phases()) {
    std::printf("  %-10s %7.2f ms (%4.1f%%)\n", op.c_str(), seconds * 1e3,
                100 * seconds / profile.total());
  }

  // Swap the conv backend in place and compare end-to-end latency.
  std::printf("\nbackend comparison (same weights):\n");
  for (ConvBackend backend :
       {ConvBackend::Ndirect, ConvBackend::Im2colGemm}) {
    for (ConvOp* conv : net->conv_ops()) conv->set_backend(backend);
    (void)net->run(image);  // warm-up / plan
    WallTimer t;
    int reps = 0;
    do {
      (void)net->run(image);
      ++reps;
    } while (t.seconds() < 0.3);
    std::printf("  %-12s %7.2f ms / inference\n",
                conv_backend_name(backend), t.seconds() * 1e3 / reps);
  }

  // Top-5 of the softmax output, as a classifier would report.
  for (ConvOp* conv : net->conv_ops()) {
    conv->set_backend(ConvBackend::Ndirect);
  }
  const Tensor probs = net->run(image);
  std::vector<float> scores(probs.data(), probs.data() + 1000);
  std::printf("\ntop-5 classes (random weights, of course):\n");
  for (int rank = 0; rank < 5; ++rank) {
    int best = 0;
    for (int c = 1; c < 1000; ++c) {
      if (scores[static_cast<std::size_t>(c)] >
          scores[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    std::printf("  class %4d  p=%.4f\n", best,
                scores[static_cast<std::size_t>(best)]);
    scores[static_cast<std::size_t>(best)] = -1.0f;
  }
  return 0;
}
