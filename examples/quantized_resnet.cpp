// Quantized end-to-end inference (DESIGN.md §14): build ResNet-50,
// fold BatchNorm and fuse ReLU, switch every convolution to the int8
// path, and compare accuracy and wall time against the fp32 graph.
//
//   $ ./examples/quantized_resnet            # reduced model, fast
//   $ NDIRECT_EXAMPLE_FULL=1 ./examples/quantized_resnet
#include <cmath>
#include <cstdio>

#include "core/quantized_microkernel.h"
#include "nn/models.h"
#include "nn/optimize.h"
#include "runtime/env.h"
#include "runtime/timer.h"
#include "tensor/rng.h"

using namespace ndirect;

int main() {
  const bool full = env_flag("NDIRECT_EXAMPLE_FULL");
  ModelOptions opts;
  opts.channel_divisor = full ? 1 : 8;
  opts.image_size = full ? 224 : 64;

  const int batch = 1;
  std::printf("building ResNet-50 (channels/%d, %dx%d input)...\n",
              opts.channel_divisor, opts.image_size, opts.image_size);
  auto fp32_net = build_resnet50(batch, opts);
  auto int8_net = build_resnet50(batch, opts);  // same seed = same weights

  Tensor image = make_input_nchw(batch, 3, opts.image_size,
                                 opts.image_size);
  fill_random(image, 7);

  // Both graphs get the inference fusions; the int8 one additionally
  // switches every Ndirect conv to u8 activations x s8 per-channel
  // weights with the dequantize epilogue carrying bias + fused ReLU.
  for (Graph* g : {fp32_net.get(), int8_net.get()}) {
    fold_batchnorm(*g);
    fuse_conv_relu(*g);
  }
  const int quantized = quantize_convs(*int8_net);
  std::printf("  quantized %d convolutions (preferred backend: %s)\n",
              quantized, int8_backend_name(int8_preferred_backend()));

  const Tensor ref = fp32_net->run(image);  // warm both graphs
  const Tensor out = int8_net->run(image);

  WallTimer t;
  const int reps = full ? 3 : 20;
  for (int i = 0; i < reps; ++i) (void)fp32_net->run(image);
  const double fp32_s = t.seconds() / reps;
  t.restart();
  for (int i = 0; i < reps; ++i) (void)int8_net->run(image);
  const double int8_s = t.seconds() / reps;

  double drift = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    drift = std::max(drift,
                     std::fabs(static_cast<double>(ref[i]) - out[i]));
  }
  std::uint64_t fallback = 0;
  for (ConvOp* c : int8_net->conv_ops()) {
    fallback += c->quantized_stats().generic_fallback;
  }
  std::printf("  fp32:  %.2f ms / image\n", fp32_s * 1e3);
  std::printf("  int8:  %.2f ms / image  (%.2fx)\n", int8_s * 1e3,
              fp32_s / int8_s);
  std::printf("  softmax L-inf drift: %.4f  (test bound: 0.05)\n", drift);
  std::printf("  generic-fallback tiles: %llu\n",
              static_cast<unsigned long long>(fallback));
  return 0;
}
