// Compare every convolution implementation in the repository on one
// layer: correctness against Algorithm 1 first, then throughput. This
// is the per-layer view behind the paper's Fig. 4, runnable on any
// shape from the command line:
//
//   $ ./examples/compare_methods              # default: Table 4 layer 3
//   $ ./examples/compare_methods N C H W K R S str pad
#include <cstdio>
#include <cstdlib>

#include "baselines/acl_direct.h"
#include "baselines/im2col_conv.h"
#include "baselines/indirect_conv.h"
#include "baselines/naive_conv.h"
#include "baselines/nchwc_conv.h"
#include "core/ndirect.h"
#include "runtime/timer.h"
#include "tensor/compare.h"
#include "tensor/rng.h"
#include "tensor/transforms.h"

using namespace ndirect;

namespace {

double best_rep_gflops(const std::function<void()>& fn, double flops) {
  fn();
  double best = 1e30;
  WallTimer total;
  do {
    WallTimer t;
    fn();
    best = std::min(best, t.seconds());
  } while (total.seconds() < 0.25);
  return flops / best / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  ConvParams p{.N = 1, .C = 64, .H = 56, .W = 56, .K = 64,
               .R = 3, .S = 3, .str = 1, .pad = 1};
  if (argc == 10) {
    int* fields[] = {&p.N, &p.C, &p.H, &p.W, &p.K, &p.R, &p.S, &p.str,
                     &p.pad};
    for (int i = 0; i < 9; ++i) *fields[i] = std::atoi(argv[i + 1]);
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [N C H W K R S str pad]\n", argv[0]);
    return 2;
  }
  if (!p.valid()) {
    std::fprintf(stderr, "invalid convolution: %s\n", p.to_string().c_str());
    return 2;
  }

  std::printf("layer: %s  (%.2f GFLOP)\n", p.to_string().c_str(),
              static_cast<double>(p.flops()) / 1e9);

  Tensor input = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor filter = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(input, 1);
  fill_random(filter, 2);
  const Tensor reference = naive_conv_nchw(input, filter, p);
  const double flops = static_cast<double>(p.flops());

  std::printf("\n%-22s %10s  %s\n", "method", "GFLOPS", "max |err|");

  auto report = [&](const char* name, const Tensor& out, double gflops) {
    const CompareResult diff = compare_tensors(out, reference);
    std::printf("%-22s %10.2f  %.2e%s\n", name, gflops, diff.max_abs_err,
                allclose(out, reference) ? "" : "  <-- MISMATCH");
  };

  {
    const NdirectConv conv(p);
    report("ndirect", conv.run(input, filter),
           best_rep_gflops([&] { (void)conv.run(input, filter); }, flops));
  }
  report("im2col+gemm", im2col_conv_nchw(input, filter, p),
         best_rep_gflops([&] { (void)im2col_conv_nchw(input, filter, p); },
                         flops));
  {
    // LIBXSMM-style on its native blocked layout (transform excluded).
    const NchwcConvConfig cfg{};
    const Tensor in_b = nchwc_transform_input(input, p, cfg.c_block);
    const Tensor f_b =
        nchwc_transform_filter(filter, p, cfg.c_block, cfg.k_block);
    report("libxsmm-style (NCHWc)",
           nchwc_to_nchw(nchwc_conv_blocked(in_b, f_b, p, cfg), p.K),
           best_rep_gflops(
               [&] { (void)nchwc_conv_blocked(in_b, f_b, p, cfg); },
               flops));
  }
  {
    // XNNPACK-style on its native NHWC layout (operator setup excluded).
    const Tensor in_nhwc = nchw_to_nhwc(input);
    const IndirectConvOperator op(kcrs_to_krsc(filter), p);
    report("xnnpack-style (NHWC)", nhwc_to_nchw(op.run(in_nhwc)),
           best_rep_gflops([&] { (void)op.run(in_nhwc); }, flops));
  }
  report("acl-style direct", acl_direct_conv_nchw(input, filter, p),
         best_rep_gflops(
             [&] { (void)acl_direct_conv_nchw(input, filter, p); }, flops));
  return 0;
}
