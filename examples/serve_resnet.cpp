// Serve ResNet-50 through the dynamic-batching server: a burst of
// single-image requests with mixed deadline budgets is coalesced into
// batches sized by the latency model, tight-deadline stragglers are
// load-shed instead of blocking everyone behind them, and every result
// carries its own queueing/batching telemetry.
//
// The server also feeds the live metrics plane (DESIGN.md §16): every
// request updates named registry instruments, and the tail of the run
// prints the server's OpenMetrics exposition. Point a scraper at a
// periodic dump with NDIRECT_METRICS_FILE=/tmp/ndirect.prom, or send
// the process SIGUSR2 for an on-demand flight record.
//
// With --admin-port=N the process mounts the HTTP admin plane
// (DESIGN.md §17) and serves /metrics, /healthz, /readyz, /slo,
// /report and the trace endpoints while traffic runs; --run-ms=N keeps
// a continuous load loop going that long so there is something live to
// scrape. SIGTERM/SIGINT then drain gracefully through the exit-hook
// chain.
//
//   $ ./examples/serve_resnet            # reduced model, fast
//   $ NDIRECT_EXAMPLE_FULL=1 ./examples/serve_resnet
//   $ ./examples/serve_resnet --admin-port=9900 --run-ms=30000 &
//   $ curl -s localhost:9900/metrics | head
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "nn/models.h"
#include "runtime/env.h"
#include "runtime/shutdown.h"
#include "serve/admin.h"
#include "serve/serve_report.h"
#include "serve/server.h"
#include "tensor/rng.h"

using namespace ndirect;
using namespace ndirect::serve;

int main(int argc, char** argv) {
  long admin_port = -1;
  long run_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--admin-port=", 0) == 0) {
      admin_port = std::strtol(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--run-ms=", 0) == 0) {
      run_ms = std::strtol(arg.c_str() + 9, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--admin-port=N] [--run-ms=N]\n", argv[0]);
      return 2;
    }
  }
  if (admin_port >= 0) {
    AdminOptions aopts;
    aopts.port = static_cast<int>(admin_port);
    AdminServer::global().start(aopts);
    install_signal_shutdown();
    std::printf("admin plane on 127.0.0.1:%d "
                "(/metrics /healthz /readyz /slo /report /trace/*)\n",
                AdminServer::global().port());
  }

  const bool full = env_flag("NDIRECT_EXAMPLE_FULL");
  ModelOptions mopts;
  mopts.channel_divisor = full ? 1 : 8;
  mopts.image_size = full ? 224 : 64;

  // The factory must be pure in `batch`: same seed, same weights at
  // every batch size, so coalescing requests never changes results.
  auto factory = [mopts](int batch) {
    return build_resnet50(batch, mopts);
  };

  ServerOptions opts;
  opts.name = "resnet50";  // the {server="resnet50"} label on every
                           // instrument this server registers
  opts.max_batch = 4;
  opts.slo.target_p99_ns = 2'000'000'000;  // watchdog: p99 <= 2 s
  opts.default_deadline_ns = 2'000'000'000;  // 2 s: roomy
  // Without a linger cap, a lone request with a roomy deadline waits
  // for batch-mates until its deadline horizon even on an idle server.
  // Cap it: launch at most 5 ms after the head request arrives.
  opts.max_linger_ns = 5'000'000;
  std::printf("starting server (ResNet-50, channels/%d, %dx%d input, "
              "max_batch %d)...\n",
              mopts.channel_divisor, mopts.image_size, mopts.image_size,
              opts.max_batch);
  Server server(factory, opts);

  // A burst of requests: most with the roomy default deadline, every
  // fourth with a 1 us budget that cannot possibly be met — admission
  // rejects those on arrival instead of letting them rot in the queue.
  const int n = 12;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < n; ++i) {
    Tensor image = make_input_nchw(1, 3, mopts.image_size,
                                   mopts.image_size);
    fill_random(image, 100 + static_cast<std::uint64_t>(i));
    futures.push_back(i % 4 == 3
                          ? server.submit(std::move(image), 1'000)
                          : server.submit(std::move(image)));
  }

  std::printf("\n%-4s %-9s %7s %10s %10s %6s\n", "req", "outcome",
              "batch", "queue_ms", "total_ms", "on_time");
  for (int i = 0; i < n; ++i) {
    try {
      const ServeResult r = futures[static_cast<std::size_t>(i)].get();
      std::printf(
          "%-4llu %-9s %7d %10.2f %10.2f %6s\n",
          static_cast<unsigned long long>(r.stats.request_id), "served",
          r.stats.batch_size,
          static_cast<double>(r.stats.queue_wait_ns) / 1e6,
          static_cast<double>(r.stats.done_ns - r.stats.arrival_ns) / 1e6,
          r.stats.deadline_slack_ns >= 0 ? "yes" : "LATE");
    } catch (const ShedError& e) {
      std::printf("%-4d shed: %s\n", i, shed_reason_name(e.reason()));
    }
  }

  if (run_ms > 0) {
    // Continuous load so the admin endpoints have live traffic to
    // report on; a bounded in-flight window applies backpressure.
    std::printf("\nserving continuous traffic for %ld ms...\n", run_ms);
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(run_ms);
    std::deque<std::future<ServeResult>> inflight;
    unsigned long long sent = 0, done = 0, shed = 0;
    std::uint64_t seed = 1000;
    const auto harvest = [&](std::future<ServeResult>& f) {
      try {
        (void)f.get();
        ++done;
      } catch (const ShedError&) {
        ++shed;
      }
    };
    while (std::chrono::steady_clock::now() < until) {
      Tensor image = make_input_nchw(1, 3, mopts.image_size,
                                     mopts.image_size);
      fill_random(image, seed++);
      inflight.push_back(server.submit(std::move(image)));
      ++sent;
      while (inflight.size() >= 16) {
        harvest(inflight.front());
        inflight.pop_front();
      }
    }
    for (std::future<ServeResult>& f : inflight) harvest(f);
    std::printf("continuous load: %llu submitted, %llu served, "
                "%llu shed\n",
                sent, done, shed);
  }

  server.shutdown();
  std::printf("\n%s", build_serve_report(server).to_text().c_str());

  // The same run as a scraper sees it: this server's slice of the
  // process-wide OpenMetrics exposition (histograms elided for width —
  // a real scrape keeps them).
  std::printf("\nlive metrics excerpt (Server::metrics_text()):\n");
  std::istringstream lines(server.metrics_text());
  for (std::string line; std::getline(lines, line);) {
    if (line.find("server=\"resnet50\"") == std::string::npos ||
        line.find("_bucket{") != std::string::npos)
      continue;
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
