// Quickstart: plan and run one convolution with nDirect, check it
// against the naive reference, and inspect what the planner derived.
//
//   $ ./examples/quickstart
//
// This is the 60-second tour of the public API:
//   ConvParams  — the problem (Table 1 notation),
//   NdirectConv — a planned convolution for one shape,
//   plan()      — the analytically derived parameters (Eq. 1-6).
#include <cstdio>

#include "baselines/naive_conv.h"
#include "core/ndirect.h"
#include "tensor/compare.h"
#include "tensor/rng.h"

using namespace ndirect;

int main() {
  // A ResNet-style 3x3 convolution: 64 -> 64 channels on a 56x56 map.
  const ConvParams p{.N = 1, .C = 64, .H = 56, .W = 56, .K = 64,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  std::printf("problem: %s  (%.2f GFLOP)\n", p.to_string().c_str(),
              static_cast<double>(p.flops()) / 1e9);

  // Tensors use the framework-native layouts: NCHW activations and
  // KCRS filters. No layout conversion is required (Section 1).
  Tensor input = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor filter = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(input, /*seed=*/1);
  fill_random(filter, /*seed=*/2);

  // Plan once (register block via Eq. 3/4, cache tiles via Eq. 1/2,
  // thread grid via Eq. 5/6), run many times.
  const NdirectConv conv(p);
  const NdirectPlan& plan = conv.plan();
  std::printf(
      "plan: Vw=%d Vk=%d | Tc=%d Tk=%d Th=%d | PTn=%d PTk=%d | alpha=%.2f\n",
      plan.rb.vw, plan.rb.vk, plan.tiling.tc, plan.tiling.tk,
      plan.tiling.th, plan.mapping.ptn, plan.mapping.ptk, plan.alpha);

  const Tensor output = conv.run(input, filter);

  // Validate against Algorithm 1.
  const Tensor reference = naive_conv_nchw(input, filter, p);
  const CompareResult diff = compare_tensors(output, reference);
  std::printf("verified against naive reference: %s\n",
              diff.to_string().c_str());
  std::printf("output shape: [%lld, %lld, %lld, %lld]\n",
              static_cast<long long>(output.dim(0)),
              static_cast<long long>(output.dim(1)),
              static_cast<long long>(output.dim(2)),
              static_cast<long long>(output.dim(3)));
  return allclose(output, reference) ? 0 : 1;
}
