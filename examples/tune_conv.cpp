// Auto-tuning walkthrough: search the schedule space for one layer and
// compare the best found schedule against nDirect's analytical plan —
// the experiment behind the paper's Fig. 6 (search vs models).
//
//   $ ./examples/tune_conv             # small search budget
//   $ NDIRECT_EXAMPLE_FULL=1 ./examples/tune_conv
#include <cstdio>

#include "autotune/tuner.h"
#include "core/ndirect.h"
#include "platform/workloads.h"
#include "runtime/env.h"
#include "runtime/timer.h"
#include "tensor/rng.h"

using namespace ndirect;

int main() {
  const bool full = env_flag("NDIRECT_EXAMPLE_FULL");

  // Tune Table 4 layer 10 (3x3, 128->128 channels) at a laptop scale.
  ConvParams p = table4_layer(10, 1).params;
  if (!full) {
    p.H /= 2;
    p.W /= 2;
  }
  std::printf("tuning %s\n", p.to_string().c_str());

  TuneOptions opts;
  opts.generations = full ? 10 : 4;
  opts.population = full ? 32 : 16;
  opts.measure_top = full ? 4 : 2;
  opts.measure_seconds = 0.03;
  opts.threads = 1;

  WallTimer tuning_clock;
  const TuneResult result = tune_conv(p, opts);
  std::printf(
      "search: %d cost-model evaluations, %d hardware measurements, "
      "%.1f s\n",
      result.cost_evaluations, result.measurements,
      tuning_clock.seconds());
  std::printf("best schedule: %s  ->  %.2f GFLOPS\n",
              result.best.to_string().c_str(), result.best_gflops);

  std::printf("\nmeasurement log (schedule -> GFLOPS):\n");
  for (const TrialRecord& trial : result.measured) {
    std::printf("  %-40s %7.2f\n", trial.schedule.to_string().c_str(),
                trial.measured_gflops);
  }

  // Compare with nDirect's analytical plan executed by the hand-written
  // Algorithm 3 kernels (the nDirect-vs-Ansor comparison of Fig. 6).
  Tensor input = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor filter = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(input, 1);
  fill_random(filter, 2);
  const NdirectConv conv(p, {.threads = 1});
  (void)conv.run(input, filter);
  double best_rep = 1e30;
  WallTimer t;
  do {
    WallTimer rep;
    (void)conv.run(input, filter);
    best_rep = std::min(best_rep, rep.seconds());
  } while (t.seconds() < 0.3);
  const double nd_gflops =
      static_cast<double>(p.flops()) / best_rep / 1e9;
  std::printf(
      "\nnDirect analytical plan: vw%d vk%d tc%d tk%d th%d  ->  %.2f "
      "GFLOPS\n",
      conv.plan().rb.vw, conv.plan().rb.vk, conv.plan().tiling.tc,
      conv.plan().tiling.tk, conv.plan().tiling.th, nd_gflops);
  std::printf("nDirect / tuned speedup: %.2fx (paper Fig. 6 averages "
              "1.5x-1.9x on its ARM platforms)\n",
              nd_gflops / result.best_gflops);
  return 0;
}
