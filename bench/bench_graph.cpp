// Sequential vs concurrent graph execution on ResNet-style split
// blocks (the tentpole workload of the scheduler-aware executor).
//
// A projection-shortcut bottleneck forks into two conv branches whose
// FLOPs differ ~4x; at small batch the late-stage shapes (14x14, 7x7)
// cannot fill the machine from one conv, so op-at-a-time execution
// leaves cores idle exactly where the paper's Fig. 7 end-to-end numbers
// hurt most. The concurrent executor runs both branches at once on ONE
// shared pool: each conv seeds a sub-rectangle of the worker grid
// (plan_concurrency) and exposes the rest of the pool as pure stealer
// tasks, so a core that drains one branch's tiles steals the sibling's
// ("idle-core soak", observable as steal events). Outputs are verified
// bitwise-identical before timing.
//
// On single-core hosts the comparison degenerates to executor overhead
// (speedup ~<= 1); the speedup column is meaningful on multi-core
// machines, while steal events and max-inflight prove the mechanism
// works anywhere. Results go to stdout and BENCH_graph.json.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "runtime/thread_pool.h"
#include "runtime/work_queue.h"
#include "tensor/rng.h"

#include "bench_util.h"

using namespace ndirect;
using namespace ndirect::bench;

namespace {

std::unique_ptr<ConvOp> conv(const TensorShape& s, int k, int r, int str,
                             std::uint64_t seed) {
  ConvParams p{.N = s.N, .C = s.C, .H = s.H, .W = s.W, .K = k,
               .R = r, .S = r, .str = str, .pad = r / 2};
  return std::make_unique<ConvOp>(p, ConvBackend::Ndirect, seed,
                                  /*bias=*/false);
}

/// ResNet-50 conv4_x-scale projection bottleneck: main path
/// 1x1 -> 3x3 -> 1x1(4x) against a 1x1 projection shortcut, merged by
/// add + relu. Channels stay at a quick-mode-friendly scale.
std::unique_ptr<Graph> build_split_block(int batch) {
  auto g = std::make_unique<Graph>(batch, 64, 14, 14);
  const TensorShape in = g->shape_of(0);
  const NodeId m1 = g->add(conv(in, 32, 1, 1, 1), {0});
  const NodeId m2 = g->add(conv(g->shape_of(m1), 32, 3, 1, 2), {m1});
  const NodeId m3 = g->add(conv(g->shape_of(m2), 128, 1, 1, 3), {m2});
  const NodeId proj = g->add(conv(in, 128, 1, 1, 4), {0});
  const NodeId sum = g->add(std::make_unique<AddOp>(), {m3, proj});
  g->add(std::make_unique<ReluOp>(), {sum});
  return g;
}

struct Result {
  double seq_gflops = 0;
  double conc_gflops = 0;
  std::uint64_t steals = 0;  ///< steal events during the concurrent runs
  int max_inflight = 0;
  bool identical = false;
  TelemetrySnapshot telemetry;  ///< all convs, one extra untimed run
};

Result run_case(int batch, ThreadPool& pool, const BenchConfig& cfg) {
  auto g = build_split_block(batch);
  g->set_conv_pool(&pool);
  g->plan_concurrency();
  const TensorShape& s = g->shape_of(0);
  Tensor input = make_input_nchw(s.N, s.C, s.H, s.W);
  fill_random(input, 42);
  const double flops = static_cast<double>(g->conv_flops());

  GraphRunOptions seq;
  seq.concurrent = false;

  Result r;
  // Identity first: concurrent must be bitwise-equal to sequential.
  const Tensor a = g->run(input, seq);
  const Tensor b = g->run(input, {});
  r.identical = a.size() == b.size() &&
                std::memcmp(a.data(), b.data(),
                            a.size() * sizeof(float)) == 0;

  r.seq_gflops = time_gflops([&] { (void)g->run(input, seq); }, flops,
                             cfg.min_seconds);
  GraphRunStats stats;
  GraphRunOptions conc;
  conc.stats = &stats;
  const std::uint64_t steals0 = scheduler_steal_events();
  r.conc_gflops = time_gflops([&] { (void)g->run(input, conc); }, flops,
                              cfg.min_seconds);
  r.steals = scheduler_steal_events() - steals0;
  r.max_inflight = stats.max_inflight;

  // Telemetry comes from one extra concurrent run after the timed
  // loops: each conv writes its own sink (concurrent branches must not
  // share one), then the per-conv snapshots fold into a single
  // worker-indexed row for the JSON report.
  if (telemetry_enabled()) {
    std::vector<ConvOp*> convs = g->conv_ops();
    std::vector<TelemetrySnapshot> sinks(convs.size());
    for (std::size_t i = 0; i < convs.size(); ++i) {
      convs[i]->set_telemetry(&sinks[i]);
    }
    (void)g->run(input, {});
    for (const TelemetrySnapshot& s : sinks) r.telemetry.merge(s);
    for (ConvOp* c : convs) c->set_telemetry(nullptr);
  }
  return r;
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  print_header("Graph executor: sequential vs concurrent split blocks");

  const int hw = static_cast<int>(ThreadPool::global().size());
  // At least 2 workers so branch concurrency and stealing exist even on
  // single-core CI hosts (there the speedup column measures overhead
  // only; steals/inflight still validate the mechanism).
  ThreadPool pool(static_cast<std::size_t>(std::max(2, hw)));

  const std::vector<int> w = {18, 10, 10, 9, 9, 9, 10};
  print_row({"case", "seq", "conc", "speedup", "steals", "inflight",
             "identical"},
            w);
  double best_speedup = 0;
  std::uint64_t best_steals = 0;
  bool all_identical = true;
  std::string rows_json = "[";
  const std::vector<int> batches = {1, 2, 4};
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const int n = batches[i];
    const Result r = run_case(n, pool, cfg);
    const double speedup =
        r.seq_gflops > 0 ? r.conc_gflops / r.seq_gflops : 0;
    if (speedup > best_speedup) {
      best_speedup = speedup;
      best_steals = r.steals;
    }
    all_identical = all_identical && r.identical;
    const std::string name = "split-block N=" + std::to_string(n);
    print_row({name, fmt(r.seq_gflops, 2), fmt(r.conc_gflops, 2),
               fmt(speedup, 3), std::to_string(r.steals),
               std::to_string(r.max_inflight),
               r.identical ? "yes" : "NO"},
              w);
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"batch\": %d, \"seq_gflops\": %.3f, "
                  "\"conc_gflops\": %.3f, \"speedup\": %.4f, "
                  "\"steals\": %llu, \"max_inflight\": %d, "
                  "\"identical\": %s",
                  i == 0 ? "" : ", ", n, r.seq_gflops, r.conc_gflops,
                  speedup, static_cast<unsigned long long>(r.steals),
                  r.max_inflight, r.identical ? "true" : "false");
    rows_json += buf;
    if (!r.telemetry.empty())
      rows_json += ", \"telemetry\": " + r.telemetry.to_json();
    rows_json += "}";
  }
  rows_json += "]";

  std::printf(
      "\nspeedup > 1 means concurrent branches win; expect ~1.15x+ at\n"
      "N=1 when cores > 1 (one 14x14 conv cannot fill the machine) and\n"
      "~1.0 on single-core hosts (executor overhead only). steals > 0\n"
      "shows idle cores soaking the sibling branch's tiles.\n");

  JsonReport report("graph");
  report.add("hardware_threads", static_cast<std::uint64_t>(hw));
  report.add("pool_threads",
             static_cast<std::uint64_t>(std::max(2, hw)));
  report.add("best_speedup", best_speedup);
  report.add("best_steals", best_steals);
  report.add("all_identical", std::string(all_identical ? "true" : "false"));
  report.add_raw("cases", rows_json);
  report.write();
  return all_identical ? 0 : 1;
}
