// Serving-layer benchmark: open-loop Poisson arrivals against the
// dynamic-batching Server, "single" (max_batch=1, every request its
// own forward) vs "batched" (max_batch=8, deadline-aware coalescing).
//
// The served net is deliberately tiny (one 3x3 conv on 8x8 images):
// per-request serving cost is then dominated by the fixed per-forward
// work — graph dispatch, executor wakeup, queue and promise handling —
// which is exactly what dynamic batching amortizes. Capacity is
// *measured*, not assumed: a saturating burst through a max_batch=1
// server gives the true per-request cost t1 (including all serving
// overhead on this host), a burst through the batched server gives the
// per-image cost t8, and the offered load is set to 2x the single
// server's measured capacity. The single server must then shed or miss
// about half its traffic while the batched server has headroom — the
// goodput ratio is the headline number (acceptance bar: >= 1.5x).
// Both cases replay the same seeded arrival sequence.
//
// Reports per case: served/shed counts, on-time goodput (QPS of
// requests finished within their deadline), request latency
// percentiles, and the realized mean batch size. JSON goes to
// BENCH_serving.json for the bench_compare.py gate: goodput keys are
// gated higher-is-better, the percentile and _ms keys lower-is-better
// under --latency.
//
//   NDIRECT_BENCH_MS=2000 ./bench/bench_serving   # per-case duration
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "nn/graph.h"
#include "runtime/env.h"
#include "runtime/timer.h"
#include "serve/serve_report.h"
#include "serve/server.h"
#include "tensor/rng.h"

using namespace ndirect;
using namespace ndirect::serve;

namespace {

constexpr int kC = 3, kH = 8, kW = 8;
constexpr int kMaxBatch = 8;

/// The served network: one 3x3 conv (3 -> 8 channels) + relu on 3x8x8
/// images. Small on purpose — the fixed per-forward cost is a large
/// fraction of the runtime, which is the regime where batching pays
/// even on a single core. Weights depend only on the fixed seed, never
/// on `batch`.
std::unique_ptr<Graph> make_net(int batch) {
  auto g = std::make_unique<Graph>(batch, kC, kH, kW);
  ConvParams p{.N = batch, .C = kC, .H = kH, .W = kW, .K = 4,
               .R = 3, .S = 3, .str = 1, .pad = 1};
  NodeId n = g->add(
      std::make_unique<ConvOp>(p, ConvBackend::Ndirect, /*seed=*/11,
                               /*bias=*/true),
      {0});
  g->add(std::make_unique<ReluOp>(), {n});
  return g;
}

/// Mean raw forward-pass wall time at `batch`, seconds (no serving).
double measure_forward_s(int batch) {
  auto g = make_net(batch);
  Tensor in = make_input_nchw(batch, kC, kH, kW);
  fill_random(in, 5);
  (void)g->run(in);  // warm: packs filters, builds plans
  WallTimer t;
  int reps = 0;
  do {
    (void)g->run(in);
    ++reps;
  } while (t.seconds() < 0.1);
  return t.seconds() / reps;
}

/// Measured end-to-end per-request cost through the Server at
/// `max_batch`, seconds: a saturating burst of `n_req` no-deadline
/// requests, wall time divided by the count. This includes everything
/// the serving path really pays — submit, queue handoff, batch
/// planning, forward, slicing, promise resolution — so it is the
/// honest capacity anchor for the open-loop load.
double measure_served_request_s(int max_batch, int n_req,
                                LatencyModel* model) {
  ServerOptions opts;
  opts.max_batch = max_batch;
  opts.default_deadline_ns = kNeverNs;
  opts.admission_control = false;
  opts.max_linger_ns = 0;  // launch whatever is queued immediately
  opts.model = model;
  Server server(make_net, opts);
  Tensor img = make_input_nchw(1, kC, kH, kW);
  fill_random(img, 7);
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(static_cast<std::size_t>(n_req));
  WallTimer t;
  for (int i = 0; i < n_req; ++i) {
    futures.push_back(server.submit(img.clone()));
  }
  for (auto& f : futures) (void)f.get();
  return t.seconds() / n_req;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct CaseResult {
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t on_time = 0;
  std::uint64_t late = 0;
  std::uint64_t shed = 0;
  double elapsed_s = 0.0;
  double goodput_qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  double mean_batch = 0.0;
  std::vector<double> latency_ms;

  /// Pool another repetition of the same case into this one.
  void merge(CaseResult&& o) {
    submitted += o.submitted;
    on_time += o.on_time;
    late += o.late;
    shed += o.shed;
    elapsed_s += o.elapsed_s;
    batches += o.batches;
    batched_requests += o.batched_requests;
    latency_ms.insert(latency_ms.end(), o.latency_ms.begin(),
                      o.latency_ms.end());
  }

  void finalize() {
    std::sort(latency_ms.begin(), latency_ms.end());
    p50_ms = percentile(latency_ms, 50);
    p95_ms = percentile(latency_ms, 95);
    p99_ms = percentile(latency_ms, 99);
    goodput_qps =
        elapsed_s > 0.0 ? static_cast<double>(on_time) / elapsed_s : 0.0;
    mean_batch = batches > 0 ? static_cast<double>(batched_requests) /
                                   static_cast<double>(batches)
                             : 0.0;
  }
};

/// Replay the seeded Poisson arrival sequence against one server
/// configuration. Open loop: arrivals are scheduled on the wall clock
/// and never wait for responses, so an overloaded server sees the full
/// offered load rather than a self-throttling client.
CaseResult run_case(const std::string& name, int max_batch,
                    LatencyModel* model, double qps, double duration_s,
                    std::uint64_t deadline_ns,
                    const std::vector<Tensor>& images) {
  ServerOptions opts;
  opts.max_batch = max_batch;
  opts.executors = 1;
  opts.default_deadline_ns = deadline_ns;
  opts.model = model;
  Server server(make_net, opts);

  std::mt19937_64 rng(42);  // same arrivals for every case
  std::exponential_distribution<double> gap(qps);
  using clk = std::chrono::steady_clock;
  const auto start = clk::now();
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(static_cast<std::size_t>(qps * duration_s * 1.2));
  double t = gap(rng);
  std::size_t img = 0;
  while (t < duration_s) {
    // sleep_until is a no-op when the producer is behind schedule, so
    // clumpy OS scheduling shows up as arrival bursts, not lost load.
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<clk::duration>(
                    std::chrono::duration<double>(t)));
    futures.push_back(
        server.submit(images[img % images.size()].clone(), deadline_ns));
    img++;
    t += gap(rng);
  }
  server.shutdown(/*drain=*/true);

  CaseResult r;
  r.name = name;
  r.elapsed_s = std::chrono::duration<double>(clk::now() - start).count();
  r.submitted = futures.size();
  for (auto& f : futures) {
    try {
      const ServeResult res = f.get();
      r.latency_ms.push_back(
          static_cast<double>(res.stats.done_ns - res.stats.arrival_ns) /
          1e6);
      if (res.stats.deadline_slack_ns >= 0) {
        r.on_time++;
      } else {
        r.late++;
      }
    } catch (const ShedError&) {
      r.shed++;
    }
  }
  const ServerStatsSnapshot stats = server.stats();
  r.batches = stats.batches;
  r.batched_requests = stats.batched_requests;
  return r;
}

std::string case_json(const CaseResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"case\": \"%s\", \"submitted\": %llu, \"on_time\": %llu, "
      "\"late\": %llu, \"shed\": %llu, \"goodput_qps\": %.3f, "
      "\"mean_batch\": %.3f, "
      "\"latency_ms\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f}}",
      r.name.c_str(), static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.on_time),
      static_cast<unsigned long long>(r.late),
      static_cast<unsigned long long>(r.shed), r.goodput_qps,
      r.mean_batch, r.p50_ms, r.p95_ms, r.p99_ms);
  return buf;
}

}  // namespace

int main() {
  const double duration_s =
      static_cast<double>(env_long("NDIRECT_BENCH_MS", 1000)) / 1e3;

  bench::print_header("serving: dynamic batching vs one-at-a-time");

  const double m1 = measure_forward_s(1);
  const double m8 = measure_forward_s(kMaxBatch);

  // Measure the real per-request serving cost at both batch policies
  // (a rough model is enough to drive the probe servers — admission is
  // off and linger is zero, so the model only sizes batches it would
  // launch immediately anyway). Median of three probes each: the cost
  // anchor must not inherit one noisy run's scheduling luck.
  AffineLatencyModel probe_model(
      static_cast<std::uint64_t>(std::max(m1 - (m8 - m1) / 7, 0.0) * 1e9),
      static_cast<std::uint64_t>((m8 - m1) / 7 * 1e9) + 1);
  (void)measure_served_request_s(1, 2000, &probe_model);  // warm
  auto median3 = [&](int max_batch) {
    std::vector<double> v;
    for (int i = 0; i < 3; ++i) {
      v.push_back(measure_served_request_s(max_batch, 6000, &probe_model));
    }
    std::sort(v.begin(), v.end());
    return v[1];
  };
  const double t1 = median3(1);
  const double t8 = median3(kMaxBatch);

  // Affine model anchored on the measured serving costs: solve
  // base + per*1 = t1 and base + per*8 = 8*t8 so admission and batch
  // sizing reason about what this host actually does. The 25% margin
  // makes admission conservative: without it the queue equilibrates
  // exactly at the deadline horizon and every served request finishes
  // within a few percent of its deadline, so scheduler jitter flips
  // large swaths between on-time and late and the goodput numbers get
  // noisy. With the margin, admitted requests finish comfortably early
  // and goodput sits stably at each policy's capacity.
  constexpr double kAdmissionMargin = 1.25;
  const double per_s = kAdmissionMargin *
      std::max((kMaxBatch * t8 - t1) / (kMaxBatch - 1), 1e-7);
  const double base_s =
      std::max(kAdmissionMargin * t1 - per_s, 0.0);
  AffineLatencyModel model(static_cast<std::uint64_t>(base_s * 1e9),
                           static_cast<std::uint64_t>(per_s * 1e9));

  const double qps = 2.0 / t1;  // 2x the measured single-serve capacity
  const auto deadline_ns = static_cast<std::uint64_t>(
      std::max(2e-3, 40.0 * t1) * 1e9);
  std::printf(
      "  raw forward: batch1 %.1f us, batch%d %.1f us/image\n"
      "  served request: single %.1f us, batched %.1f us/image "
      "(%.2fx amortization)\n"
      "  offered load %.0f qps, deadline %.2f ms, %.1f s per case\n\n",
      m1 * 1e6, kMaxBatch, m8 / kMaxBatch * 1e6, t1 * 1e6, t8 * 1e6,
      t1 / t8, qps, static_cast<double>(deadline_ns) / 1e6, duration_s);

  std::vector<Tensor> images;
  for (std::uint64_t i = 0; i < 16; ++i) {
    Tensor img = make_input_nchw(1, kC, kH, kW);
    fill_random(img, 1000 + i);
    images.push_back(std::move(img));
  }

  // Three interleaved repetitions per case, pooled: back-to-back pairs
  // see the same machine weather, so host noise largely cancels out of
  // the goodput ratio instead of landing on one case.
  constexpr int kReps = 3;
  CaseResult single, batched;
  single.name = "single";
  batched.name = "batched";
  for (int rep = 0; rep < kReps; ++rep) {
    single.merge(run_case("single", 1, &model, qps, duration_s / kReps,
                          deadline_ns, images));
    batched.merge(run_case("batched", kMaxBatch, &model, qps,
                           duration_s / kReps, deadline_ns, images));
  }
  single.finalize();
  batched.finalize();

  const std::vector<int> widths = {9, 10, 9, 8, 8, 13, 9, 9, 9, 7};
  bench::print_row({"case", "submitted", "on_time", "late", "shed",
                    "goodput_qps", "p50_ms", "p95_ms", "p99_ms", "batch"},
                   widths);
  for (const CaseResult* r : {&single, &batched}) {
    bench::print_row(
        {r->name, std::to_string(r->submitted), std::to_string(r->on_time),
         std::to_string(r->late), std::to_string(r->shed),
         bench::fmt(r->goodput_qps, 1), bench::fmt(r->p50_ms, 2),
         bench::fmt(r->p95_ms, 2), bench::fmt(r->p99_ms, 2),
         bench::fmt(r->mean_batch, 2)},
        widths);
  }

  const double ratio = single.goodput_qps > 0.0
                           ? batched.goodput_qps / single.goodput_qps
                           : 0.0;
  std::printf("\n  batched goodput = %.2fx single (acceptance bar 1.5x)\n",
              ratio);

  bench::JsonReport json("serving");
  json.add("duration_s", duration_s);
  json.add("offered_qps", qps);
  json.add("forward_batch1_us", m1 * 1e6);
  json.add("forward_batch8_us", m8 * 1e6);
  json.add("served_request_single_us", t1 * 1e6);
  json.add("served_request_batched_us", t8 * 1e6);
  json.add("goodput_ratio_batched_vs_single", ratio);
  std::string cases = "[";
  cases += case_json(single);
  cases += ", ";
  cases += case_json(batched);
  cases += "]";
  json.add_raw("cases", cases);
  json.write();
  return 0;
}
