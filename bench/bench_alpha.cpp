// Section 6.2: the alpha microbenchmark (streaming vs non-streaming
// memory access cost) and its effect on the Eq. 5/6 thread mapping.
#include <cstdio>

#include "bench_util.h"
#include "core/alpha.h"
#include "core/threading.h"

using namespace ndirect;
using namespace ndirect::bench;

int main() {
  print_header("Section 6.2: alpha microbenchmark");
  for (std::size_t mb : {4u, 16u, 64u}) {
    const AlphaResult r = measure_alpha(mb << 20);
    std::printf(
        "  working set %3zu MiB: streaming %6.2f GB/s, strided %6.2f "
        "GB/s  ->  alpha = %.2f\n",
        mb, r.streaming_gbps, r.strided_gbps, r.alpha);
  }
  const double alpha = host_alpha();
  std::printf("  cached host alpha: %.2f\n", alpha);

  print_header("Thread mappings derived from alpha (Eq. 5/6), PT = 64");
  const std::vector<int> w = {6, 24, 10, 8, 8};
  print_row({"layer", "shape", "PTn*", "PTn", "PTk"}, w);
  for (const ConvLayer& layer : table4_resnet_layers(64)) {
    const ThreadMapping m = solve_thread_mapping(layer.params, alpha, 64);
    print_row({std::to_string(layer.id), layer.params.to_string().substr(0, 23),
               fmt(ptn_continuous(layer.params, alpha), 1),
               std::to_string(m.ptn), std::to_string(m.ptk)},
              w);
  }
  std::printf(
      "\nshape check: batch-/space-heavy layers (large N*H*W vs K*R*S) "
      "get large PTn; K-heavy 1x1 layers shift threads to PTk.\n");
  return 0;
}
