// Fig. 6: nDirect speedup over Ansor-tuned direct convolution on
// ResNet-50 layers 1-20.
//
// [modelled]: analytical estimates on the paper's three HPC platforms
// (paper averages: 1.92x, 1.82x, 1.51x). [measured]: on this host,
// nDirect vs the evolutionary schedule tuner (tuning time excluded, as
// the paper excludes Ansor's search overhead).
#include <cstdio>

#include "bench_util.h"
#include "platform/specs.h"

using namespace ndirect;
using namespace ndirect::bench;

int main() {
  const BenchConfig cfg = BenchConfig::from_env();

  print_header("Fig. 6 [modelled]: nDirect speedup over Ansor");
  const std::vector<int> w = {6, 15, 10, 12};
  print_row({"layer", "Phytium 2000+", "KP920", "ThunderX2"}, w);
  std::vector<std::vector<double>> per_platform(3);
  for (const ConvLayer& proto : table4_resnet_layers(1)) {
    std::vector<std::string> cells = {std::to_string(proto.id)};
    int pi = 0;
    for (const char* name : {"Phytium 2000+", "KP920", "ThunderX2"}) {
      const PlatformSpec& spec = platform_by_name(name);
      ConvParams p = proto.params;
      p.N = spec.cores;
      const double nd =
          estimate_conv_perf(spec, p, ConvMethod::Ndirect, spec.cores)
              .gflops;
      const double ansor =
          estimate_conv_perf(spec, p, ConvMethod::AnsorTuned, spec.cores)
              .gflops;
      cells.push_back(fmt(nd / ansor, 2) + "x");
      per_platform[static_cast<std::size_t>(pi++)].push_back(nd / ansor);
    }
    print_row(cells, w);
  }
  print_row({"Geo", fmt(geomean(per_platform[0]), 2) + "x",
             fmt(geomean(per_platform[1]), 2) + "x",
             fmt(geomean(per_platform[2]), 2) + "x"},
            w);
  std::printf("  (paper: 1.92x, 1.82x, 1.51x)\n");

  print_header("Fig. 6 [measured]: host, nDirect vs schedule tuner");
  std::printf("batch=%d, spatial/%d, threads=%d (tuning time excluded)\n",
              cfg.batch, cfg.spatial_divisor, cfg.threads);
  const std::vector<int> w2 = {6, 12, 12, 10};
  print_row({"layer", "NDIRECT", "tuned", "speedup"}, w2);
  std::vector<double> speedups;
  for (const ConvLayer& layer : table4_resnet_layers(1)) {
    const ConvParams p = scale_layer(layer.params, cfg);
    const double nd = measure_method_gflops(ConvMethod::Ndirect, p, cfg);
    const double tuned =
        measure_method_gflops(ConvMethod::AnsorTuned, p, cfg);
    speedups.push_back(nd / tuned);
    print_row({std::to_string(layer.id), fmt(nd, 2), fmt(tuned, 2),
               fmt(nd / tuned, 2) + "x"},
              w2);
  }
  std::printf("  geomean speedup: %.2fx\n", geomean(speedups));
  return 0;
}
