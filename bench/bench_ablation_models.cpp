// Ablations of the analytical design choices DESIGN.md calls out:
//   (1) the Eq. 3/4 register block vs every other feasible block,
//   (2) the Eq. 1/2 cache tiling vs shrunken/inflated tilings,
//   (3) on-the-fly filter transform vs ahead-of-time,
//   (4) the Eq. 5/6 thread split vs K-only and rows-only splits.
#include <cstdio>

#include "bench_util.h"
#include "core/alpha.h"
#include "core/fai.h"
#include "core/ndirect.h"
#include "runtime/cpu_info.h"
#include "tensor/rng.h"

using namespace ndirect;
using namespace ndirect::bench;

namespace {

double run_with(const ConvParams& p, const NdirectOptions& opts,
                const Tensor& input, const Tensor& filter,
                double min_seconds) {
  const NdirectConv conv(p, opts);
  return time_gflops([&] { (void)conv.run(input, filter); },
                     static_cast<double>(p.flops()), min_seconds);
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  const ConvLayer proto = table4_layer(10, 1);  // 3x3 stride-1 ResNet
  const ConvParams p = scale_layer(proto.params, cfg);
  Tensor input = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor filter = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(input, 1);
  fill_random(filter, 2);

  print_header("Ablation 1: register block (Eq. 3/4) — layer 10 host");
  const std::vector<int> w = {10, 10, 12, 14};
  print_row({"vw", "vk", "model FAI", "GFLOPS"}, w);
  const RegisterBlock solved = solve_register_block(p.S);
  for (const RegisterBlock& rb : feasible_register_blocks(p.S)) {
    NdirectOptions opts;
    opts.threads = cfg.threads;
    opts.force_rb = rb;
    const double g = run_with(p, opts, input, filter, cfg.min_seconds);
    const bool chosen = rb.vw == solved.vw && rb.vk == solved.vk;
    print_row({std::to_string(rb.vw), std::to_string(rb.vk),
               fmt(fai_microkernel(rb.vw, rb.vk, p.S), 2),
               fmt(g, 2) + (chosen ? " <- solved" : "")},
              w);
  }

  print_header("Ablation 2: cache tiling (Eq. 1/2)");
  const NdirectConv planned(p);
  const TilingPlan t0 = planned.plan().tiling;
  std::printf("solved tiling: tc=%d tk=%d th=%d\n", t0.tc, t0.tk, t0.th);
  const std::vector<int> w2 = {8, 8, 8, 14};
  print_row({"tc", "tk", "th", "GFLOPS"}, w2);
  const int vk = planned.plan().rb.vk;
  const TilingPlan candidates[] = {
      t0,
      {std::max(1, t0.tc / 4), t0.tk, t0.th},
      {std::min(p.C, t0.tc * 4), t0.tk, t0.th},
      {t0.tc, vk, t0.th},
      {t0.tc, t0.tk, 1},
      {1, vk, 1},
  };
  for (const TilingPlan& t : candidates) {
    NdirectOptions opts;
    opts.threads = cfg.threads;
    opts.force_tiling = t;
    const double g = run_with(p, opts, input, filter, cfg.min_seconds);
    const bool chosen = t.tc == t0.tc && t.tk == t0.tk && t.th == t0.th;
    print_row({std::to_string(t.tc), std::to_string(t.tk),
               std::to_string(t.th),
               fmt(g, 2) + (chosen ? " <- solved" : "")},
              w2);
  }

  print_header("Ablation 3: filter transform on-the-fly vs ahead-of-time");
  for (const bool aot : {false, true}) {
    NdirectOptions opts;
    opts.threads = cfg.threads;
    opts.aot_filter = aot;
    const double g = run_with(p, opts, input, filter, cfg.min_seconds);
    std::printf("  %-13s %8.2f GFLOPS\n",
                aot ? "ahead-of-time" : "on-the-fly", g);
  }

  print_header("Ablation 4: thread split (Eq. 5/6) vs naive splits");
  const int threads = cfg.threads > 0
                          ? cfg.threads
                          : static_cast<int>(ThreadPool::global().size());
  // Use a batch large enough to give PTn something to split.
  ConvParams pp = p;
  pp.N = std::max(p.N, threads);
  Tensor in2 = make_input_nchw(pp.N, pp.C, pp.H, pp.W);
  fill_random(in2, 3);
  const ThreadMapping solved_map =
      solve_thread_mapping(pp, host_alpha(), threads);
  const ThreadMapping maps[] = {
      solved_map,
      {1, threads},  // K-only (the ACL strategy)
      {threads, 1},  // rows-only
  };
  const char* names[] = {"Eq.5/6 split", "K-only", "rows-only"};
  for (int i = 0; i < 3; ++i) {
    if (maps[i].ptk > pp.K) continue;
    NdirectOptions opts;
    opts.threads = threads;
    opts.force_mapping = maps[i];
    const double g = run_with(pp, opts, in2, filter, cfg.min_seconds);
    std::printf("  %-13s (PTn=%2d, PTk=%2d) %8.2f GFLOPS\n", names[i],
                maps[i].ptn, maps[i].ptk, g);
  }
  std::printf("\n(On a single-core host the thread-split rows collapse "
              "to the same execution; run with more cores to see the "
              "Eq. 5/6 advantage.)\n");
  return 0;
}
