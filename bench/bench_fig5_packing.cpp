// Fig. 5: quantification of the packing optimization — nDirect with the
// fused (latency-hiding) packing micro-kernel vs sequential packing, on
// the five VGG layers (Table 4 ids 24-28).
#include <cstdio>

#include "bench_util.h"
#include "core/ndirect.h"
#include "platform/specs.h"
#include "tensor/rng.h"

using namespace ndirect;
using namespace ndirect::bench;

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  print_header(
      "Fig. 5 [measured]: micro-kernel + packing overlap (VGG layers)");
  std::printf("host, batch=%d, spatial/%d, threads=%d\n", cfg.batch,
              cfg.spatial_divisor, cfg.threads);
  const std::vector<int> w = {6, 14, 14, 10};
  print_row({"layer", "sequential", "fused(+pack)", "gain"}, w);

  for (int id = 24; id <= 28; ++id) {
    const ConvLayer layer = table4_layer(id, 1);
    const ConvParams p = scale_layer(layer.params, cfg);
    Tensor input = make_input_nchw(p.N, p.C, p.H, p.W);
    Tensor filter = make_filter_kcrs(p.K, p.C, p.R, p.S);
    fill_random(input, 1);
    fill_random(filter, 2);
    const double flops = static_cast<double>(p.flops());

    NdirectOptions seq;
    seq.fuse_packing = false;
    seq.threads = cfg.threads;
    const NdirectConv conv_seq(p, seq);
    const double g_seq = time_gflops(
        [&] { (void)conv_seq.run(input, filter); }, flops, cfg.min_seconds);

    NdirectOptions fus;
    fus.fuse_packing = true;
    fus.threads = cfg.threads;
    const NdirectConv conv_fus(p, fus);
    const double g_fus = time_gflops(
        [&] { (void)conv_fus.run(input, filter); }, flops, cfg.min_seconds);

    print_row({std::to_string(id), fmt(g_seq, 2), fmt(g_fus, 2),
               fmt(g_fus / g_seq, 3) + "x"},
              w);
  }
  std::printf(
      "\npaper shape check: the overlap helps (gain >= ~1x); the paper "
      "reports platform-dependent benefits (largest where the cache "
      "replacement policy is LRU).\n");
  return 0;
}
