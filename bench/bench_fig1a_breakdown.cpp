// Fig. 1a: percentage of running time spent in each step of the
// im2col+GEMM and LIBXSMM-style direct convolution pipelines, for
// ResNet-50 layers 1-20.
//
// Paper claims reproduced here: im2col transformation dominates layers
// with R,S > 1 (conversion up to ~4x the compute time on layer 1);
// GEMM data packing reaches ~40% on some layers; for LIBXSMM assuming
// NCHW inputs, the format transformation costs up to ~90% of total
// time (layer 5).
#include <cstdio>

#include "baselines/im2col_conv.h"
#include "baselines/nchwc_conv.h"
#include "bench_util.h"
#include "platform/perf_model.h"
#include "platform/specs.h"
#include "tensor/rng.h"

using namespace ndirect;
using namespace ndirect::bench;

namespace {

// Modelled breakdown on the 64-core Phytium (the paper's setting):
// micro-kernels run at the perf model's multi-core throughput, the
// bulk im2col/packing stages stream at full memory bandwidth, and the
// NCHW->NCHWc layout transform — a scattered per-element permutation
// that does not parallelize in the measured stack — moves at roughly
// twice one core's bandwidth share. These assumptions reproduce the
// published shares (im2col dominating layer 1, transform up to ~90%
// on layer 5).
void modelled_panel() {
  const PlatformSpec& spec = platform_by_name("Phytium 2000+");
  const double bw = spec.bandwidth_gibs * 1.073741824 * 1e9;
  const double bw_serial = 2.0 * bw / spec.cores;
  print_header(
      "Fig. 1a [modelled]: Phytium 2000+ (64 cores, N=64), % of total");
  const std::vector<int> w = {6, 10, 10, 14, 13, 14};
  print_row({"layer", "im2col%", "packing%", "microkern%", "| transform%",
             "microkern%"},
            w);
  for (const ConvLayer& layer : table4_resnet_layers(spec.cores)) {
    const ConvParams& p = layer.params;
    const double flops = static_cast<double>(p.flops());
    const double in_b = 4.0 * static_cast<double>(p.input_elems());
    const double out_b = 4.0 * static_cast<double>(p.output_elems());
    const double col_b = 4.0 * static_cast<double>(p.N) * p.C * p.R *
                         p.S * p.P() * p.Q();
    const bool identity =
        p.R == 1 && p.S == 1 && p.str == 1 && p.pad == 0;

    // im2col+GEMM pipeline.
    const double t_im2col = identity ? 0.0 : 2.0 * col_b / bw;
    const double t_pack = (identity ? in_b : col_b) / bw;
    const double t_gemm =
        flops /
        (estimate_conv_perf(spec, p, ConvMethod::Im2colGemm, spec.cores)
             .gflops *
         1e9);
    const double t_total = t_im2col + t_pack + t_gemm;

    // LIBXSMM with NCHW inputs: serial layout transform + kernel.
    const double t_xform = 2.0 * (in_b + out_b) / bw_serial;
    const double t_kernel =
        flops /
        (estimate_conv_perf(spec, p, ConvMethod::LibxsmmStyle, spec.cores)
             .gflops *
         1e9);
    const double x_total = t_xform + t_kernel;

    print_row({std::to_string(layer.id), fmt(100 * t_im2col / t_total),
               fmt(100 * t_pack / t_total), fmt(100 * t_gemm / t_total),
               "| " + fmt(100 * t_xform / x_total),
               fmt(100 * t_kernel / x_total)},
              w);
  }
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  modelled_panel();
  print_header(
      "Fig. 1a [measured]: runtime breakdown per step (% of total)");
  std::printf("host, batch=%d, spatial/%d\n", cfg.batch,
              cfg.spatial_divisor);
  const std::vector<int> w = {6, 10, 10, 14, 13, 14};
  print_row({"layer", "im2col%", "packing%", "microkern%", "| transform%",
             "microkern%"},
            w);
  print_row({"", "(im2col+GEMM pipeline)", "", "", "| (LIBXSMM, NCHW in)",
             ""},
            {6, 24, 0, 0, 22, 0});

  for (const ConvLayer& layer : table4_resnet_layers(1)) {
    const ConvParams p = scale_layer(layer.params, cfg);
    Tensor input = make_input_nchw(p.N, p.C, p.H, p.W);
    Tensor filter = make_filter_kcrs(p.K, p.C, p.R, p.S);
    fill_random(input, 1);
    fill_random(filter, 2);

    // im2col+GEMM phases.
    PhaseTimer gemm_pt;
    Im2colOptions iopts;
    iopts.phase_timer = &gemm_pt;
    (void)im2col_conv_nchw(input, filter, p, &iopts);
    (void)im2col_conv_nchw(input, filter, p, &iopts);

    // LIBXSMM-style phases, charged with the NCHW->NCHWc transform as
    // the paper does for this figure ("assuming the adoption of
    // conventional data formats NCHW").
    PhaseTimer x_pt;
    NchwcOptions nopts;
    nopts.phase_timer = &x_pt;
    (void)nchwc_conv_nchw(input, filter, p, &nopts);
    (void)nchwc_conv_nchw(input, filter, p, &nopts);

    print_row({std::to_string(layer.id),
               fmt(100 * gemm_pt.fraction("im2col")),
               fmt(100 * gemm_pt.fraction("packing")),
               fmt(100 * gemm_pt.fraction("micro-kernel")),
               "| " + fmt(100 * x_pt.fraction("transform")),
               fmt(100 * x_pt.fraction("micro-kernel"))},
              w);
  }

  std::printf(
      "\npaper shape check: im2col%% high when R,S>1 (~0 for 1x1 layers "
      "5-8, 11-14, 17-20); LIBXSMM transform%% dominates everywhere "
      "(up to ~90%%).\n");
  return 0;
}
