// Fig. 4: multi-core convolution throughput (GFLOPS) of im2col+GEMM,
// XNNPACK, LIBXSMM and NDIRECT over the 28 Table 4 layers, plus
// nDirect's % of peak, on Phytium 2000+/KP920/ThunderX2 (batch = cores).
//
// Paper claims: nDirect improves over the best baseline by 1.32x /
// 1.34x / 1.07x on the three platforms; 70-80% of peak on stride-1
// layers; stride-2 layers dip.
#include <cstdio>

#include "bench_util.h"
#include "platform/specs.h"

using namespace ndirect;
using namespace ndirect::bench;

namespace {

const std::vector<int> kWidths = {6, 13, 10, 10, 9, 11};

void modelled_panel(const char* platform_name) {
  const PlatformSpec& spec = platform_by_name(platform_name);
  std::printf("\n[modelled] %s (%d cores, N=%d), GFLOPS:\n",
              platform_name, spec.cores, spec.cores);
  print_row({"layer", "im2col+GEMM", "XNNPACK", "LIBXSMM", "NDIRECT",
             "nd %peak"},
            kWidths);
  std::vector<double> nd, best_baseline;
  for (const ConvLayer& layer : table4_layers(spec.cores)) {
    double best = 0;
    std::vector<std::string> cells = {std::to_string(layer.id)};
    for (ConvMethod m : {ConvMethod::Im2colGemm, ConvMethod::XnnpackStyle,
                         ConvMethod::LibxsmmStyle}) {
      const double g =
          estimate_conv_perf(spec, layer.params, m, spec.cores).gflops;
      best = std::max(best, g);
      cells.push_back(fmt(g));
    }
    const PerfEstimate e = estimate_conv_perf(
        spec, layer.params, ConvMethod::Ndirect, spec.cores);
    cells.push_back(fmt(e.gflops));
    cells.push_back(fmt(e.pct_peak));
    print_row(cells, kWidths);
    nd.push_back(e.gflops);
    best_baseline.push_back(e.gflops / best);
  }
  std::printf("  geomean NDIRECT improvement over best baseline: %.2fx\n",
              geomean(best_baseline));
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();

  print_header("Fig. 4: multi-core convolution performance");
  for (const char* name : {"Phytium 2000+", "KP920", "ThunderX2"}) {
    modelled_panel(name);
  }

  std::printf("\n[measured] host (batch=%d, spatial/%d, threads=%d), "
              "GFLOPS:\n",
              cfg.batch, cfg.spatial_divisor, cfg.threads);
  const double host_peak = host_platform().peak_gflops;
  print_row({"layer", "im2col+GEMM", "XNNPACK", "LIBXSMM", "NDIRECT",
             "nd %peak"},
            kWidths);
  std::vector<double> improvements;
  for (const ConvLayer& layer : table4_layers(1)) {
    const ConvParams p = scale_layer(layer.params, cfg);
    double best = 0;
    std::vector<std::string> cells = {std::to_string(layer.id)};
    for (ConvMethod m : {ConvMethod::Im2colGemm, ConvMethod::XnnpackStyle,
                         ConvMethod::LibxsmmStyle}) {
      const double g = measure_method_gflops(m, p, cfg);
      best = std::max(best, g);
      cells.push_back(fmt(g));
    }
    const double nd =
        measure_method_gflops(ConvMethod::Ndirect, p, cfg);
    cells.push_back(fmt(nd));
    cells.push_back(fmt(100 * nd / host_peak));
    print_row(cells, kWidths);
    improvements.push_back(nd / best);
  }
  std::printf("  geomean NDIRECT improvement over best baseline: %.2fx "
              "(paper: 1.32x/1.34x/1.07x on its platforms)\n",
              geomean(improvements));
  return 0;
}
