// Fig. 8: convolution performance on the embedded platform (RPi 4):
// (a) single-core and (b) 4-core GFLOPS over ResNet-50 layers 1-20,
// batch 1 (single) / 4 (multi).
//
// Paper claims: nDirect outperforms everywhere; the best baseline is
// XNNPACK single-core and LIBXSMM multi-core; nDirect's geomean gain is
// 1.15x over XNNPACK (1 core) and 1.19x over LIBXSMM (4 cores).
#include <cstdio>

#include "bench_util.h"
#include "platform/specs.h"
#include "runtime/thread_pool.h"

using namespace ndirect;
using namespace ndirect::bench;

namespace {

const std::vector<int> kW = {6, 13, 10, 10, 11};

void modelled_panel(int threads, int batch) {
  const PlatformSpec& rpi = platform_by_name("RPi 4");
  std::printf("\n[modelled] RPi 4, %d thread(s), N=%d, GFLOPS:\n", threads,
              batch);
  print_row({"layer", "im2col+GEMM", "XNNPACK", "LIBXSMM", "NDIRECT"}, kW);
  std::vector<double> vs_best;
  for (const ConvLayer& proto : table4_resnet_layers(batch)) {
    std::vector<std::string> cells = {std::to_string(proto.id)};
    double best = 0;
    for (ConvMethod m : {ConvMethod::Im2colGemm, ConvMethod::XnnpackStyle,
                         ConvMethod::LibxsmmStyle}) {
      const double g =
          estimate_conv_perf(rpi, proto.params, m, threads).gflops;
      best = std::max(best, g);
      cells.push_back(fmt(g, 2));
    }
    const double nd =
        estimate_conv_perf(rpi, proto.params, ConvMethod::Ndirect, threads)
            .gflops;
    cells.push_back(fmt(nd, 2));
    print_row(cells, kW);
    vs_best.push_back(nd / best);
  }
  std::printf("  geomean NDIRECT / best baseline: %.2fx\n",
              geomean(vs_best));
}

void measured_panel(const BenchConfig& base, int threads) {
  BenchConfig cfg = base;
  cfg.threads = threads;
  std::printf("\n[measured] host, %d thread(s), batch=%d, spatial/%d, "
              "GFLOPS:\n",
              threads, cfg.batch, cfg.spatial_divisor);
  print_row({"layer", "im2col+GEMM", "XNNPACK", "LIBXSMM", "NDIRECT"}, kW);
  std::vector<double> vs_best;
  for (const ConvLayer& layer : table4_resnet_layers(1)) {
    const ConvParams p = scale_layer(layer.params, cfg);
    std::vector<std::string> cells = {std::to_string(layer.id)};
    double best = 0;
    for (ConvMethod m : {ConvMethod::Im2colGemm, ConvMethod::XnnpackStyle,
                         ConvMethod::LibxsmmStyle}) {
      const double g = measure_method_gflops(m, p, cfg);
      best = std::max(best, g);
      cells.push_back(fmt(g, 2));
    }
    const double nd = measure_method_gflops(ConvMethod::Ndirect, p, cfg);
    cells.push_back(fmt(nd, 2));
    print_row(cells, kW);
    vs_best.push_back(nd / best);
  }
  std::printf("  geomean NDIRECT / best baseline: %.2fx (paper: 1.15x "
              "single-core, 1.19x multi-core)\n",
              geomean(vs_best));
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  print_header("Fig. 8: embedded platform (RPi 4)");
  modelled_panel(1, 1);   // (a) single core
  modelled_panel(4, 4);   // (b) 4 cores
  measured_panel(cfg, 1);
  const int multi = static_cast<int>(ThreadPool::global().size());
  if (multi > 1) {
    measured_panel(cfg, multi);
  } else {
    std::printf(
        "\n[measured] host has a single hardware thread; the multi-core "
        "panel equals the single-core one and is skipped.\n");
  }
  return 0;
}
