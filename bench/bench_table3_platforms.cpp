// Table 3: hardware platforms used in evaluation.
// Prints the paper's platform specs plus the probed host machine
// (measured single-core peak, stream bandwidth, caches) and the alpha
// coefficient (Section 6.2) used by the thread-mapping model.
#include <cstdio>

#include "bench_util.h"
#include "core/alpha.h"
#include "platform/specs.h"
#include "simd/vec128.h"

using namespace ndirect;
using namespace ndirect::bench;

int main() {
  print_header("Table 3: hardware platforms used in evaluation");
  const std::vector<int> w = {16, 8, 10, 12, 12, 9, 9, 9};
  print_row({"platform", "cores", "freq", "peakGF", "BW GiB/s", "L1KB",
             "L2KB", "L3MB"},
            w);
  auto row = [&](const PlatformSpec& s) {
    print_row({s.name, std::to_string(s.cores),
               s.freq_ghz > 0 ? fmt(s.freq_ghz, 1) : "-",
               fmt(s.peak_gflops, 1), fmt(s.bandwidth_gibs, 1),
               std::to_string(s.cache.l1d / 1024),
               std::to_string(s.cache.l2 / 1024),
               s.cache.l3 > 0 ? std::to_string(s.cache.l3 / (1 << 20))
                              : "-"},
              w);
  };
  for (const PlatformSpec& s : table3_platforms()) row(s);

  std::printf("\n[host] probing this machine (SIMD backend: %s)...\n",
              simd_backend_name());
  row(host_platform());

  const AlphaResult alpha = measure_alpha(16u << 20);
  std::printf(
      "\n[host] Section 6.2 alpha microbenchmark: streaming %.1f GB/s, "
      "non-streaming %.1f GB/s -> alpha = %.2f\n",
      alpha.streaming_gbps, alpha.strided_gbps, alpha.alpha);
  return 0;
}
