#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "autotune/tuner.h"
#include "baselines/acl_direct.h"
#include "baselines/acl_gemm.h"
#include "baselines/im2col_conv.h"
#include "baselines/indirect_conv.h"
#include "baselines/nchwc_conv.h"
#include "core/alpha.h"
#include "core/ndirect.h"
#include "runtime/cpu_info.h"
#include "runtime/timer.h"
#include "tensor/rng.h"
#include "tensor/transforms.h"

// Build-identity stamps, injected by bench/CMakeLists.txt so each
// BENCH_*.json records what produced it; the fallbacks keep non-CMake
// builds compiling.
#ifndef NDIRECT_GIT_SHA
#define NDIRECT_GIT_SHA "unknown"
#endif
#ifndef NDIRECT_COMPILER_ID
#define NDIRECT_COMPILER_ID "unknown"
#endif
#ifndef NDIRECT_BUILD_FLAGS
#define NDIRECT_BUILD_FLAGS ""
#endif

namespace ndirect::bench {

BenchConfig BenchConfig::from_env() {
  BenchConfig cfg;
  cfg.full = env_flag("NDIRECT_BENCH_FULL");
  if (cfg.full) {
    cfg.batch = static_cast<int>(ThreadPool::global().size());
    cfg.spatial_divisor = 1;
    cfg.min_seconds = 0.5;
  }
  cfg.batch = static_cast<int>(env_long("NDIRECT_BENCH_BATCH", cfg.batch));
  cfg.min_seconds = env_long("NDIRECT_BENCH_MS", 0) > 0
                        ? env_long("NDIRECT_BENCH_MS", 0) / 1000.0
                        : cfg.min_seconds;
  cfg.threads =
      static_cast<int>(env_long("NDIRECT_THREADS",
                                static_cast<long>(
                                    ThreadPool::global().size())));
  return cfg;
}

ConvParams scale_layer(const ConvParams& paper, const BenchConfig& cfg) {
  ConvParams p = paper;
  p.N = cfg.batch;
  if (cfg.spatial_divisor > 1) {
    // Keep the input large enough for the kernel plus a couple of
    // output rows so every layer still exercises the tiled loops.
    const int min_hw = std::max(p.R + 2 * p.str, 14);
    p.H = std::max(min_hw, p.H / cfg.spatial_divisor);
    p.W = std::max(min_hw, p.W / cfg.spatial_divisor);
  }
  return p;
}

double time_gflops(const std::function<void()>& fn, double flops,
                   double min_seconds) {
  fn();  // warm-up
  // Best-repetition timing: clocks on shared/thermally-limited hosts
  // drift by 2x and more between reps; the fastest rep is the least
  // contaminated estimate and is applied identically to every method.
  double best_rep = 1e30;
  WallTimer total;
  do {
    WallTimer t;
    fn();
    best_rep = std::min(best_rep, t.seconds());
  } while (total.seconds() < min_seconds);
  return flops / best_rep / 1e9;
}

double measure_method_gflops(ConvMethod method, const ConvParams& p,
                             const BenchConfig& cfg) {
  Tensor input = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor filter = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(input, 1);
  fill_random(filter, 2);
  const double flops = static_cast<double>(p.flops());

  switch (method) {
    case ConvMethod::Ndirect: {
      NdirectOptions opts;
      opts.threads = cfg.threads;
      const NdirectConv conv(p, opts);
      return time_gflops([&] { (void)conv.run(input, filter); }, flops,
                         cfg.min_seconds);
    }
    case ConvMethod::Im2colGemm: {
      return time_gflops([&] { (void)im2col_conv_nchw(input, filter, p); },
                         flops, cfg.min_seconds);
    }
    case ConvMethod::LibxsmmStyle: {
      // Section 7.3: the NCHW->NCHWc transform is excluded ("we only
      // measure the performance of LIBXSMM's micro-kernels").
      const NchwcConvConfig ncfg{};
      const Tensor in_b = nchwc_transform_input(input, p, ncfg.c_block);
      const Tensor f_b =
          nchwc_transform_filter(filter, p, ncfg.c_block, ncfg.k_block);
      return time_gflops(
          [&] { (void)nchwc_conv_blocked(in_b, f_b, p, ncfg); }, flops,
          cfg.min_seconds);
    }
    case ConvMethod::XnnpackStyle: {
      // Native NHWC layout, operator pre-built (XNNPACK's setup phase).
      const Tensor in_nhwc = nchw_to_nhwc(input);
      const IndirectConvOperator op(kcrs_to_krsc(filter), p);
      return time_gflops([&] { (void)op.run(in_nhwc); }, flops,
                         cfg.min_seconds);
    }
    case ConvMethod::AclDirect: {
      return time_gflops(
          [&] { (void)acl_direct_conv_nchw(input, filter, p); }, flops,
          cfg.min_seconds);
    }
    case ConvMethod::AclGemm: {
      return time_gflops(
          [&] { (void)acl_gemm_conv_nchw(input, filter, p); }, flops,
          cfg.min_seconds);
    }
    case ConvMethod::AnsorTuned: {
      TuneOptions topts;
      topts.generations = cfg.full ? 8 : 3;
      topts.population = cfg.full ? 32 : 12;
      topts.measure_top = cfg.full ? 4 : 2;
      topts.measure_seconds = cfg.full ? 0.05 : 0.02;
      topts.threads = cfg.threads;
      const TuneResult r = tune_conv(p, topts);
      const Schedule best = r.best;
      return time_gflops(
          [&] { (void)tuned_conv(input, filter, p, best, cfg.threads); },
          flops, cfg.min_seconds);
    }
  }
  return 0;
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 10;
    std::printf("%*s", w, cells[i].c_str());
  }
  std::printf("\n");
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double log_sum = 0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

namespace {

std::string json_quote(const std::string& v) {
  std::string quoted = "\"";
  for (char c : v) {
    if (c == '"' || c == '\\') quoted += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string host_key() {
  const CpuInfo info = probe_host_cpu();
  std::string key;
  bool dash = true;  // suppress leading/duplicate dashes
  for (char c : info.name) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      key += c;
      dash = false;
    } else if (c >= 'A' && c <= 'Z') {
      key += static_cast<char>(c - 'A' + 'a');
      dash = false;
    } else if (!dash) {
      key += '-';
      dash = true;
    }
  }
  while (!key.empty() && key.back() == '-') key.pop_back();
  if (key.empty()) key = "host";
  return key + "-" + std::to_string(info.logical_cores) + "c";
}

std::string host_metadata_json() {
  const CpuInfo info = probe_host_cpu();
  char alpha_buf[32];
  std::snprintf(alpha_buf, sizeof(alpha_buf), "%.3f", host_alpha());
  std::string s = "{";
  s += "\"key\": " + json_quote(host_key());
  s += ", \"cpu\": " + json_quote(info.name);
  s += ", \"cores\": " + std::to_string(info.logical_cores);
  // Dot-product capability stamp: per-host baselines must distinguish
  // machines whose int8 rows ran UDOT/SDOT from emulation-only hosts.
  s += ", \"asimddp\": ";
  s += info.asimddp ? "true" : "false";
  s += ", \"i8mm\": ";
  s += info.i8mm ? "true" : "false";
  s += ", \"alpha\": " + std::string(alpha_buf);
  s += ", \"git_sha\": " + json_quote(NDIRECT_GIT_SHA);
  s += ", \"compiler\": " + json_quote(NDIRECT_COMPILER_ID);
  s += ", \"flags\": " + json_quote(NDIRECT_BUILD_FLAGS);
  s += "}";
  return s;
}

void JsonReport::add(const std::string& key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  fields_.emplace_back(key, buf);
}

void JsonReport::add(const std::string& key, std::uint64_t v) {
  fields_.emplace_back(key, std::to_string(v));
}

void JsonReport::add(const std::string& key, const std::string& v) {
  std::string quoted = "\"";
  for (char c : v) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  fields_.emplace_back(key, quoted);
}

void JsonReport::add_raw(const std::string& key, const std::string& json) {
  fields_.emplace_back(key, json);
}

void JsonReport::add_telemetry(const std::string& key,
                               const TelemetrySnapshot& t) {
  if (t.empty()) return;
  add_raw(key, t.to_json());
}

bool JsonReport::write() const {
  std::string path = "BENCH_" + name_ + ".json";
  if (const char* dir = std::getenv("NDIRECT_BENCH_DIR");
      dir != nullptr && *dir != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best-effort
    path = (std::filesystem::path(dir) / path).string();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"host\": %s%s\n", host_metadata_json().c_str(),
               fields_.empty() ? "" : ",");
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    std::fprintf(f, "  \"%s\": %s%s\n", fields_[i].first.c_str(),
                 fields_[i].second.c_str(),
                 i + 1 < fields_.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace ndirect::bench
