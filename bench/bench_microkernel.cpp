// Per-block micro-kernel throughput, including the ragged edge tiles
// the policy registry specializes (partial-width wn < Vw, partial-
// channel kn < Vk with kn % 4 != 0, and both at once).
//
// Each shape resolves its kernel exactly the way the engine does: the
// tail block is the rounded-up multiple of 4 covering wn, and the tile
// dispatches to the interior policy kernel when it is full and to the
// masked-store edge kernel otherwise. Before the policy registry the
// same shapes ran a runtime-loop kernel with a scalar ragged store, so
// the ragged rows here are the headline of the registry's win; the
// full-tile row is the control that the interior path did not move.
//
// Results go to stdout and to BENCH_microkernel.json; the "gflops"
// leaves are gated against bench/baselines/<host>/ by bench_compare.py.
#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/microkernel.h"

#include "bench_util.h"

using namespace ndirect;
using namespace ndirect::bench;

namespace {

struct Shape {
  const char* name;
  int vw, vk, S, str;  // the conv's register block and geometry
  int tc, R;           // channel depth and filter height of one tile
  int wn, kn;          // the ragged extent actually stored
};

// The ragged shapes mirror real tails: ResNet-50 conv over a 7-wide
// output with the paper's 12x8 S=3 block (wn=7), a K tail that is not
// a multiple of 4 (kn=5), a both-ragged corner on the S=1 block, and a
// stride-2 S=7 stem tail. tc * R is sized so one tile's working set
// stays L1-resident: this measures the kernel, not the cache.
// The tc=8 rows are channel-tail tiles (e.g. C = 72 with tc = 64
// leaves an 8-deep remainder tile): with only tc * R compute rows per
// store, the store path is a first-order cost and the masked vector
// stores show their full effect.
const Shape kShapes[] = {
    {"w_tail_12x8_s3_wn7", 12, 8, 3, 1, 64, 3, 7, 8},
    {"k_tail_12x8_s3_kn5", 12, 8, 3, 1, 64, 3, 12, 5},
    {"wk_tail_8x12_s1", 8, 12, 1, 1, 256, 1, 5, 10},
    {"w_tail_20x4_s7_wn13", 20, 4, 7, 2, 3, 7, 13, 4},
    {"k_tail_1x1_12x8_tc8", 12, 8, 1, 1, 8, 1, 12, 5},
    {"w_tail_8x8_s3_tc8_wn6", 8, 8, 3, 1, 8, 3, 6, 8},
    {"wk_tail_12x8_s3_tc8", 12, 8, 3, 1, 8, 3, 7, 5},
    {"full_12x8_s3", 12, 8, 3, 1, 64, 3, 12, 8},
};

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  print_header("Micro-kernel: per-block GFLOPS incl. ragged edge tiles");
  print_row({"shape", "kernel", "class", "GFLOPS"}, {22, 12, 12, 9});

  JsonReport report("microkernel");
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);

  for (const Shape& s : kShapes) {
    // The engine's tail rounding: the smallest multiple-of-4 block
    // covering wn (capped at the conv's vw).
    const int vw_used = std::min(s.vw, (s.wn + 3) / 4 * 4);
    const int packw = (vw_used - 1) * s.str + s.S;
    std::vector<float> pack(static_cast<std::size_t>(s.tc) * s.R * packw +
                            4);
    std::vector<float> ftile(static_cast<std::size_t>(s.tc) * s.R * s.S *
                             s.vk);
    std::vector<float> out(static_cast<std::size_t>(s.vk) * s.vw);
    for (float& v : pack) v = dist(rng);
    for (float& v : ftile) v = dist(rng);

    MicroArgs a;
    a.pack = pack.data();
    a.pack_c_stride = std::int64_t{s.R} * packw;
    a.pack_r_stride = packw;
    a.ftile = ftile.data();
    a.f_c_stride = std::int64_t{s.R} * s.S * s.vk;
    a.tc = s.tc;
    a.R = s.R;
    a.S = s.S;
    a.str = s.str;
    a.packw = packw;
    a.out = out.data();
    a.out_k_stride = s.vw;
    a.out_w_stride = 1;
    a.wn = s.wn;
    a.kn = s.kn;

    const KernelResolution kres =
        resolve_kernel(vw_used, s.vk, s.S, s.str);
    const bool interior = s.wn == vw_used && s.kn == s.vk;
    ComputeKernelFn fn = interior ? kres.interior : kres.edge;
    const double flops = 2.0 * s.wn * s.kn * s.tc * s.R * s.S;
    const double gflops = time_gflops(
        [&] {
          if (fn) {
            fn(a);
          } else {
            compute_kernel_generic(a, vw_used, s.vk);
          }
        },
        flops, cfg.min_seconds);

    char kernel[16];
    std::snprintf(kernel, sizeof kernel, "%dx%d S%d/%d", vw_used, s.vk,
                  s.S, s.str);
    const char* cls = fn == nullptr ? "generic"
                                    : kernel_class_name(kres.cls);
    print_row({s.name, kernel, cls, fmt(gflops, 3)}, {22, 12, 12, 9});

    char leaf[160];
    std::snprintf(leaf, sizeof leaf,
                  "{\"kernel\": \"%s\", \"class\": \"%s\", \"tile\": "
                  "\"wn%d kn%d\", \"gflops\": %.3f}",
                  kernel, cls, s.wn, s.kn, gflops);
    report.add_raw(s.name, leaf);
  }

  report.write();
  return 0;
}
