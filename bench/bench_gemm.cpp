// Google-benchmark microbenchmarks for the substrates: the Goto SGEMM
// (our OpenBLAS stand-in), its 8x12 micro-kernel, the nDirect
// micro-kernels, and the packing kernels. These are the building-block
// numbers behind every figure bench.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/filter_transform.h"
#include "core/microkernel.h"
#include "gemm/blocking.h"
#include "gemm/gemm.h"
#include "gemm/microkernel.h"
#include "gemm/pack.h"
#include "runtime/aligned_buffer.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace ndirect {
namespace {

void BM_SgemmSquare(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Tensor a = make_matrix(n, n), b = make_matrix(n, n), c = make_matrix(n, n);
  fill_random(a, 1);
  fill_random(b, 2);
  for (auto _ : state) {
    sgemm(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * n * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SgemmSquare)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// Conv-shaped GEMM: ResNet layer 3 lowered by im2col (batch 1).
void BM_SgemmConvShaped(benchmark::State& state) {
  const std::int64_t m = 64, n = 3136, k = 576;
  Tensor a = make_matrix(m, k), b = make_matrix(k, n), c = make_matrix(m, n);
  fill_random(a, 1);
  fill_random(b, 2);
  for (auto _ : state) {
    sgemm(m, n, k, a.data(), k, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * m * n * k * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SgemmConvShaped);

void BM_GemmMicrokernel8x12(benchmark::State& state) {
  const int kc = static_cast<int>(state.range(0));
  AlignedBuffer<float> pa(static_cast<std::size_t>(kGemmMR) * kc);
  AlignedBuffer<float> pb(static_cast<std::size_t>(kGemmNR) * kc);
  AlignedBuffer<float> c(kGemmMR * kGemmNR);
  for (std::size_t i = 0; i < pa.size(); ++i) pa[i] = 0.5f;
  for (std::size_t i = 0; i < pb.size(); ++i) pb[i] = 0.25f;
  for (auto _ : state) {
    gemm_microkernel_8x12(kc, pa.data(), pb.data(), c.data(), kGemmNR,
                          false);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * kGemmMR * kGemmNR * kc *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmMicrokernel8x12)->Arg(64)->Arg(256);

// nDirect main micro-kernel (12x8, 3x3 window) on an L1-resident tile:
// the Algorithm 3 inner loop in isolation.
void BM_NdirectMicrokernel12x8(benchmark::State& state) {
  const int tc = static_cast<int>(state.range(0));
  const int R = 3, S = 3, vw = 12, vk = 8;
  const int packw = vw + S - 1;
  AlignedBuffer<float> pack(static_cast<std::size_t>(tc) * R * packw + 4);
  AlignedBuffer<float> ftile(static_cast<std::size_t>(tc) * R * S * vk);
  AlignedBuffer<float> out(static_cast<std::size_t>(vk) * vw);
  for (std::size_t i = 0; i < pack.size(); ++i) pack[i] = 0.5f;
  for (std::size_t i = 0; i < ftile.size(); ++i) ftile[i] = 0.25f;

  MicroArgs a;
  a.pack = pack.data();
  a.pack_c_stride = R * packw;
  a.pack_r_stride = packw;
  a.ftile = ftile.data();
  a.f_c_stride = R * S * vk;
  a.tc = tc;
  a.R = R;
  a.S = S;
  a.str = 1;
  a.packw = packw;
  a.out = out.data();
  a.out_k_stride = vw;
  a.out_w_stride = 1;
  a.wn = vw;
  a.kn = vk;
  a.accumulate = false;

  ComputeKernelFn fn = find_unrolled_kernel(vw, vk, S, 1);
  for (auto _ : state) {
    fn(a);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * tc * R * S * vw * vk *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NdirectMicrokernel12x8)->Arg(16)->Arg(64);

// The same tile through the runtime-parameterized kernel: the gap is
// what the Ansor-substitute "generic codegen" loses.
void BM_NdirectMicrokernelGeneric(benchmark::State& state) {
  const int tc = static_cast<int>(state.range(0));
  const int R = 3, S = 3, vw = 12, vk = 8;
  const int packw = vw + S - 1;
  AlignedBuffer<float> pack(static_cast<std::size_t>(tc) * R * packw + 4);
  AlignedBuffer<float> ftile(static_cast<std::size_t>(tc) * R * S * vk);
  AlignedBuffer<float> out(static_cast<std::size_t>(vk) * vw);
  for (std::size_t i = 0; i < pack.size(); ++i) pack[i] = 0.5f;
  for (std::size_t i = 0; i < ftile.size(); ++i) ftile[i] = 0.25f;

  MicroArgs a;
  a.pack = pack.data();
  a.pack_c_stride = R * packw;
  a.pack_r_stride = packw;
  a.ftile = ftile.data();
  a.f_c_stride = R * S * vk;
  a.tc = tc;
  a.R = R;
  a.S = S;
  a.str = 1;
  a.packw = packw;
  a.out = out.data();
  a.out_k_stride = vw;
  a.out_w_stride = 1;
  a.wn = vw;
  a.kn = vk;
  a.accumulate = false;

  for (auto _ : state) {
    compute_kernel_generic(a, vw, vk);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * tc * R * S * vw * vk *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NdirectMicrokernelGeneric)->Arg(16)->Arg(64);

void BM_PackWindow(benchmark::State& state) {
  const int tc = static_cast<int>(state.range(0));
  const int R = 3, packw = 14, H = 56, W = 56;
  Tensor image = make_input_nchw(1, tc, H, W);
  fill_random(image, 3);
  AlignedBuffer<float> pack(static_cast<std::size_t>(tc) * R * packw + 4);
  PackGeometry g;
  g.src = image.data();
  g.chan_stride = H * W;
  g.row_stride = W;
  g.col_stride = 1;
  g.H = H;
  g.W = W;
  g.ih0 = 10;
  g.iw0 = 10;
  for (auto _ : state) {
    pack_window(pack.data(), g, tc, R, packw);
    benchmark::DoNotOptimize(pack.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          tc * R * packw * 4);
}
BENCHMARK(BM_PackWindow)->Arg(16)->Arg(64);

void BM_FilterTransformTile(benchmark::State& state) {
  const int K = 64, C = 64, R = 3, S = 3, vk = 8;
  Tensor filter = make_filter_kcrs(K, C, R, S);
  fill_random(filter, 4);
  AlignedBuffer<float> tile(static_cast<std::size_t>(K) * C * R * S);
  for (auto _ : state) {
    transform_filter_tile(filter.data(), K, C, R, S, 0, K, 0, C, vk,
                          tile.data());
    benchmark::DoNotOptimize(tile.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          K * C * R * S * 4);
}
BENCHMARK(BM_FilterTransformTile);

}  // namespace
}  // namespace ndirect

BENCHMARK_MAIN();
