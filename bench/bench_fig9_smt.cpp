// Fig. 9: convolution performance with hyper-threading enabled
// (ThunderX2: 4 hardware threads per core, batch = logical cores).
//
// Paper claim: nDirect outperforms XNNPACK (the best baseline under
// SMT) by a geomean of 1.28x.
//
// [modelled]: the analytical model with the SMT latency-hiding kappa
// reduction at threads = 4 x cores. [measured]: the host pool is
// oversubscribed 4 tasks per worker, which exercises the same
// round-robin task stacking the engine uses for SMT.
#include <cstdio>

#include "bench_util.h"
#include "platform/specs.h"
#include "runtime/thread_pool.h"

using namespace ndirect;
using namespace ndirect::bench;

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  print_header("Fig. 9: impact of hyper-threading (ThunderX2, 4 SMT)");

  const PlatformSpec& tx2 = platform_by_name("ThunderX2");
  const int logical = tx2.cores * tx2.smt_per_core;
  std::printf("\n[modelled] ThunderX2, %d logical threads, N=%d, GFLOPS:\n",
              logical, logical);
  const std::vector<int> w = {6, 13, 10, 10, 11};
  print_row({"layer", "im2col+GEMM", "XNNPACK", "LIBXSMM", "NDIRECT"}, w);
  std::vector<double> vs_xnn;
  for (const ConvLayer& proto : table4_resnet_layers(logical)) {
    std::vector<std::string> cells = {std::to_string(proto.id)};
    double xnn = 0;
    for (ConvMethod m : {ConvMethod::Im2colGemm, ConvMethod::XnnpackStyle,
                         ConvMethod::LibxsmmStyle}) {
      const double g =
          estimate_conv_perf(tx2, proto.params, m, logical).gflops;
      if (m == ConvMethod::XnnpackStyle) xnn = g;
      cells.push_back(fmt(g));
    }
    const double nd =
        estimate_conv_perf(tx2, proto.params, ConvMethod::Ndirect, logical)
            .gflops;
    cells.push_back(fmt(nd));
    print_row(cells, w);
    vs_xnn.push_back(nd / xnn);
  }
  std::printf("  geomean NDIRECT / XNNPACK: %.2fx (paper: 1.28x)\n",
              geomean(vs_xnn));

  // Measured: oversubscribe the host pool 4x.
  BenchConfig smt = cfg;
  smt.threads = static_cast<int>(ThreadPool::global().size()) * 4;
  std::printf("\n[measured] host, %d logical tasks on %zu worker(s), "
              "batch=%d, GFLOPS:\n",
              smt.threads, ThreadPool::global().size(), smt.batch);
  print_row({"layer", "im2col+GEMM", "XNNPACK", "LIBXSMM", "NDIRECT"}, w);
  std::vector<double> m_vs_xnn;
  for (const ConvLayer& layer : table4_resnet_layers(1)) {
    const ConvParams p = scale_layer(layer.params, smt);
    std::vector<std::string> cells = {std::to_string(layer.id)};
    double xnn = 0;
    for (ConvMethod m : {ConvMethod::Im2colGemm, ConvMethod::XnnpackStyle,
                         ConvMethod::LibxsmmStyle}) {
      const double g = measure_method_gflops(m, p, smt);
      if (m == ConvMethod::XnnpackStyle) xnn = g;
      cells.push_back(fmt(g, 2));
    }
    const double nd = measure_method_gflops(ConvMethod::Ndirect, p, smt);
    cells.push_back(fmt(nd, 2));
    print_row(cells, w);
    m_vs_xnn.push_back(nd / xnn);
  }
  std::printf("  geomean NDIRECT / XNNPACK: %.2fx\n", geomean(m_vs_xnn));
  return 0;
}
