// Sections 3.3 and 10.1: datatype and vector-width portability.
//
// Prints (a) the Eq. 3/4 register blocks the solver derives for each
// datatype/ISA instance the paper names, and (b) measured host
// throughput of the FP32 / FP64 / FP16-storage / INT16-quantized
// convolution paths on a ResNet layer, with correctness deltas against
// their references.
#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.h"
#include "core/conv_fp16.h"
#include "core/conv_fp64.h"
#include "core/fai.h"
#include "core/ndirect.h"
#include "core/quantized.h"
#include "runtime/timer.h"
#include "tensor/rng.h"

using namespace ndirect;
using namespace ndirect::bench;

namespace {

// Measure the int8 engine on `p` with the fp32 dequantize epilogue (the
// end-to-end inference configuration). The packed-filter cache is off so
// the run includes the filter transform, matching the Section 7.4
// methodology the fp32 row uses. GFLOPS are fp32-equivalent.
double time_int8_gflops(const ConvParams& p, Int8Backend backend,
                        double min_seconds) {
  std::vector<std::uint8_t> in(static_cast<std::size_t>(p.input_elems()));
  std::vector<std::int8_t> flt(
      static_cast<std::size_t>(p.filter_elems()));
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint8_t>((i * 97 + 13) & 0xff);
  }
  for (std::size_t i = 0; i < flt.size(); ++i) {
    flt[i] = static_cast<std::int8_t>(((i * 61 + 7) & 0xff) - 128);
  }
  std::vector<float> scales(static_cast<std::size_t>(p.K), 1.0f / 16384);
  std::vector<float> out(static_cast<std::size_t>(p.output_elems()));
  Int8Epilogue ep;
  ep.dequant_scale = scales.data();
  Int8Output dst;
  dst.f32 = out.data();
  Int8ConvOptions opt;
  opt.backend = backend;
  opt.cache_packed_filter = false;
  const Int8Conv conv(p, opt);
  return time_gflops(
      [&] { conv.run(in.data(), 128, flt.data(), ep, dst); },
      static_cast<double>(p.flops()), min_seconds);
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  JsonReport report("dtypes");

  print_header(
      "Eq. 3/4 register blocks across datatypes and vector widths");
  const std::vector<int> w = {16, 8, 8, 8, 8, 12};
  print_row({"ISA instance", "lanes", "regs", "Vw", "Vk", "FAI(3x3)"}, w);
  struct Isa {
    const char* name;
    int lanes, regs;
  };
  const Isa isas[] = {
      {"ARMv8 FP64", 2, 32},    {"ARMv8 FP32", 4, 32},
      {"ARMv8.2 FP16", 8, 32},  {"SVE-256 FP32", 8, 32},
      {"SVE-512 FP32", 16, 32}, {"AVX-512 FP32", 16, 32},
  };
  for (const Isa& isa : isas) {
    const RegisterBlock b = solve_register_block(3, isa.lanes, isa.regs);
    print_row({isa.name, std::to_string(isa.lanes),
               std::to_string(isa.regs), std::to_string(b.vw),
               std::to_string(b.vk), fmt(fai_microkernel(b.vw, b.vk, 3), 2)},
              w);
  }
  std::printf("(the paper's instantiation is the ARMv8 FP32 row: "
              "Vw=12, Vk=8)\n");

  // Measured datatype paths on a scaled ResNet layer 10.
  const ConvParams p = scale_layer(table4_layer(10, 1).params, cfg);
  std::printf("\n[measured] host, layer 10 scaled to %s:\n",
              p.to_string().c_str());
  const std::vector<int> w2 = {16, 12, 16};
  print_row({"datatype", "GFLOPS", "max err vs ref"}, w2);
  const double flops = static_cast<double>(p.flops());

  // FP32 (the paper's engine).
  {
    Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
    Tensor flt = make_filter_kcrs(p.K, p.C, p.R, p.S);
    fill_random(in, 1);
    fill_random(flt, 2);
    const NdirectConv conv(p, {.threads = cfg.threads});
    const double g = time_gflops([&] { (void)conv.run(in, flt); }, flops,
                                 cfg.min_seconds);
    print_row({"FP32", fmt(g, 2), "-"}, w2);
    report.add("layer10.fp32_gflops", g);
  }

  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);

  // FP64.
  {
    std::vector<double> in(static_cast<std::size_t>(p.input_elems()));
    std::vector<double> flt(static_cast<std::size_t>(p.filter_elems()));
    std::vector<double> out(static_cast<std::size_t>(p.output_elems()));
    std::vector<double> ref(out.size());
    for (double& v : in) v = dist(rng);
    for (double& v : flt) v = dist(rng);
    const double g = time_gflops(
        [&] { ndirect_conv_fp64(in.data(), flt.data(), out.data(), p); },
        flops, cfg.min_seconds);
    naive_conv_fp64(in.data(), flt.data(), ref.data(), p);
    double err = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      err = std::max(err, std::fabs(out[i] - ref[i]));
    }
    print_row({"FP64", fmt(g, 2), fmt(err, 12)}, w2);
  }

  // FP16 storage / FP32 compute.
  {
    std::vector<fp16_t> in(static_cast<std::size_t>(p.input_elems()));
    std::vector<fp16_t> flt(static_cast<std::size_t>(p.filter_elems()));
    std::vector<fp16_t> out(static_cast<std::size_t>(p.output_elems()));
    for (fp16_t& v : in) v = fp32_to_fp16(static_cast<float>(dist(rng)));
    for (fp16_t& v : flt) v = fp32_to_fp16(static_cast<float>(dist(rng)));
    const double g = time_gflops(
        [&] { ndirect_conv_fp16(in.data(), flt.data(), out.data(), p); },
        flops, cfg.min_seconds);
    print_row({"FP16 storage", fmt(g, 2), "(~1e-2 rel, see tests)"}, w2);
  }

  // INT16 quantized.
  {
    Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
    Tensor flt = make_filter_kcrs(p.K, p.C, p.R, p.S);
    fill_random(in, 4);
    fill_random(flt, 5);
    const std::int32_t qmax =
        choose_qmax(std::int64_t{p.C} * p.R * p.S);
    const QuantizedTensor qin = quantize_tensor(
        in.data(), static_cast<std::size_t>(p.input_elems()), qmax);
    const QuantizedTensor qflt = quantize_tensor(
        flt.data(), static_cast<std::size_t>(p.filter_elems()), qmax);
    std::vector<std::int32_t> acc(
        static_cast<std::size_t>(p.output_elems()));
    const double g = time_gflops(
        [&] {
          ndirect_conv_int16(qin.values.data(), qflt.values.data(),
                             acc.data(), p);
        },
        flops, cfg.min_seconds);
    print_row({"INT16 (qmax=" + std::to_string(qmax) + ")", fmt(g, 2),
               "exact int32"},
              w2);
    report.add("layer10.int16_gflops", g);
  }

  // INT8 on the same layer, for the single-layer dtype ladder.
  {
    const double g =
        time_int8_gflops(p, int8_preferred_backend(), cfg.min_seconds);
    print_row({"INT8 (" +
                   std::string(int8_backend_name(int8_preferred_backend())) +
                   ")",
               fmt(g, 2), "exact int32 (see tests)"},
              w2);
    report.add("layer10.int8_gflops", g);
  }
  std::printf(
      "\n(FP64/FP16/INT16 run clarity-first generic kernels; FP32 and "
      "INT8 carry the unrolled policy-registry forms.)\n");

  // Section 14: the int8 path on the bandwidth-bound Table 4 layers
  // (late 1x1 convolutions — low arithmetic intensity, where the 4x
  // byte-traffic reduction pays the most). Both the preferred backend
  // and the forced widening-emulation path are timed; on a
  // dot-product-capable ARM host the preferred column is the SDOT
  // kernels.
  print_header("INT8 vs FP32 on bandwidth-bound Table 4 layers");
  const std::vector<int> w3 = {22, 10, 14, 14, 10};
  print_row({"layer", "fp32", "int8 " +
                 std::string(int8_backend_name(int8_preferred_backend())),
             "int8 emulated", "speedup"},
            w3);
  for (const int id : {17, 22, 23}) {
    const ConvParams lp = scale_layer(table4_layer(id, 1).params, cfg);
    Tensor in = make_input_nchw(lp.N, lp.C, lp.H, lp.W);
    Tensor flt = make_filter_kcrs(lp.K, lp.C, lp.R, lp.S);
    fill_random(in, 6);
    fill_random(flt, 7);
    const NdirectConv fconv(lp, {.threads = cfg.threads});
    const double f32 =
        time_gflops([&] { (void)fconv.run(in, flt); },
                    static_cast<double>(lp.flops()), cfg.min_seconds);
    const double i8 =
        time_int8_gflops(lp, int8_preferred_backend(), cfg.min_seconds);
    const double i8emu =
        time_int8_gflops(lp, Int8Backend::kEmulated, cfg.min_seconds);
    const std::string label = "layer" + std::to_string(id);
    print_row({label + " " + lp.to_string(), fmt(f32, 1), fmt(i8, 1),
               fmt(i8emu, 1), fmt(i8 / f32, 2) + "x"},
              w3);
    report.add(label + ".fp32_gflops", f32);
    report.add(label + ".int8_gflops", i8);
    report.add(label + ".int8_emulated_gflops", i8emu);
    report.add(label + ".int8_speedup", i8 / f32);
  }
  report.add("int8_backend",
             std::string(int8_backend_name(int8_preferred_backend())));
  report.write();
  return 0;
}
