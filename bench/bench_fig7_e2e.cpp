// Fig. 7: end-to-end inference of ResNet-50/101 and VGG-16/19,
// normalized to the Ansor baseline (paper: Phytium 2000+ with N=64 and
// ThunderX2 with N=32).
//
// [modelled]: per-layer conv times from the analytical model summed over
// the real conv stack of each network, plus an elementwise-traffic term;
// Ansor gets the operator-fusion discount on the elementwise term (the
// mechanism Section 8.3 credits for its ThunderX2 win).
// [measured]: the graph executor on this host with the conv backend
// swapped (ndirect / im2col+GEMM / tuned schedules); the tuned backend
// additionally gets BatchNorm folding, our fusion-pass equivalent.
#include <cstdio>
#include <map>
#include <string>

#include "autotune/tuner.h"

#include "bench_util.h"
#include "core/filter_transform.h"
#include "nn/models.h"
#include "nn/optimize.h"
#include "platform/specs.h"
#include "runtime/timer.h"
#include "tensor/rng.h"

using namespace ndirect;
using namespace ndirect::bench;

namespace {

// Modelled end-to-end seconds for one batch on a paper platform.
double modelled_e2e_seconds(const std::string& model_name,
                            const PlatformSpec& spec, ConvMethod method) {
  ModelOptions opts;
  opts.backend = ConvBackend::Naive;  // graph is only inspected
  auto net = build_model(model_name, spec.cores, opts);

  double conv_seconds = 0;
  double elem_bytes = 0;
  for (ConvOp* conv : net->conv_ops()) {
    const ConvParams& p = conv->params();
    const double gflops =
        estimate_conv_perf(spec, p, method, spec.cores).gflops;
    conv_seconds += static_cast<double>(p.flops()) / (gflops * 1e9);
    // Library-path glue around each conv — BN (read+write), ReLU
    // (read+write), residual adds, framework buffer traffic: ~10
    // activation passes of its output tensor at inference batch sizes.
    elem_bytes += 10.0 * 4.0 * static_cast<double>(p.output_elems());
  }
  const double bw = spec.bandwidth_gibs * 1.073741824 * 1e9;
  double elem_seconds = elem_bytes / bw;
  if (method == ConvMethod::AnsorTuned) {
    elem_seconds *= 0.15;  // operator fusion removes the elementwise trips
  }
  return conv_seconds + elem_seconds;
}

void modelled_panel(const char* platform_name) {
  const PlatformSpec& spec = platform_by_name(platform_name);
  std::printf("\n[modelled] %s (N=%d), speedup normalized to Ansor:\n",
              platform_name, spec.cores);
  const std::vector<int> w = {12, 16, 8, 18};
  print_row({"model", "MXNet+NDIRECT", "Ansor", "MXNet+OpenBLAS"}, w);
  for (const char* model :
       {"ResNet-50", "ResNet-101", "VGG-16", "VGG-19"}) {
    const double t_nd =
        modelled_e2e_seconds(model, spec, ConvMethod::Ndirect);
    const double t_ansor =
        modelled_e2e_seconds(model, spec, ConvMethod::AnsorTuned);
    const double t_blas =
        modelled_e2e_seconds(model, spec, ConvMethod::Im2colGemm);
    print_row({model, fmt(t_ansor / t_nd, 2) + "x", "1.00x",
               fmt(t_ansor / t_blas, 2) + "x"},
              w);
  }
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();

  print_header("Fig. 7: end-to-end inference");
  modelled_panel("Phytium 2000+");
  modelled_panel("ThunderX2");
  std::printf(
      "\npaper: 1.19x-1.45x over Ansor on Phytium 2000+, 0.88x-0.98x on "
      "ThunderX2 (Ansor's whole-graph tuning + fusion, which the model "
      "only partially captures via the elementwise term).\n");

  // Measured: reduced models unless NDIRECT_BENCH_FULL=1.
  ModelOptions mopts;
  mopts.channel_divisor = cfg.full ? 1 : 8;
  mopts.image_size = cfg.full ? 224 : 64;
  std::printf(
      "\n[measured] host: batch=%d, channels/%d, image %dx%d, "
      "normalized to the tuned backend\n",
      cfg.batch, mopts.channel_divisor, mopts.image_size,
      mopts.image_size);
  const std::vector<int> w = {12, 16, 8, 18, 12};
  print_row({"model", "MXNet+NDIRECT", "Ansor", "MXNet+OpenBLAS",
             "(tuned ms)"},
            w);
  for (const char* model :
       {"ResNet-50", "ResNet-101", "VGG-16", "VGG-19"}) {
    Tensor input =
        make_input_nchw(cfg.batch, 3, mopts.image_size, mopts.image_size);
    fill_random(input, 3);

    auto time_backend = [&](ConvBackend backend, bool fold) {
      ModelOptions o = mopts;
      o.backend = backend;
      auto net = build_model(model, cfg.batch, o);
      if (fold) fold_batchnorm(*net);
      if (backend == ConvBackend::Tuned) {
        // Tune each distinct conv shape once (tuning time excluded,
        // matching the paper's treatment of Ansor's search overhead).
        std::map<std::string, Schedule> tuned;
        for (ConvOp* conv : net->conv_ops()) {
          const std::string key = conv->params().to_string();
          auto it = tuned.find(key);
          if (it == tuned.end()) {
            TuneOptions topts;
            topts.generations = cfg.full ? 6 : 2;
            topts.population = cfg.full ? 24 : 8;
            topts.measure_top = cfg.full ? 3 : 1;
            topts.measure_seconds = 0.01;
            topts.threads = cfg.threads;
            it = tuned.emplace(key, tune_conv(conv->params(), topts).best)
                     .first;
          }
          conv->set_schedule(it->second);
        }
      }
      (void)net->run(input);  // warm-up
      WallTimer t;
      int reps = 0;
      do {
        (void)net->run(input);
        ++reps;
      } while (t.seconds() < cfg.min_seconds);
      return t.seconds() / reps;
    };

    const double t_nd = time_backend(ConvBackend::Ndirect, false);
    const double t_tuned = time_backend(ConvBackend::Tuned, true);
    const double t_gemm = time_backend(ConvBackend::Im2colGemm, false);
    print_row({model, fmt(t_tuned / t_nd, 2) + "x", "1.00x",
               fmt(t_tuned / t_gemm, 2) + "x", fmt(t_tuned * 1e3, 1)},
              w);
  }

  // ------------------------------------------------------------------
  // Zero-overhead inference path: ResNet-50 forward with the seed
  // per-call behaviour (filter transform every forward, BN/ReLU as
  // separate passes) vs. the optimized path (packed-filter cache, BN
  // folded, ReLU fused into the conv store epilogue).
  // ------------------------------------------------------------------
  {
    Tensor input =
        make_input_nchw(cfg.batch, 3, mopts.image_size, mopts.image_size);
    fill_random(input, 5);
    ModelOptions o = mopts;
    o.backend = ConvBackend::Ndirect;

    auto time_net = [&](Graph& net) {
      (void)net.run(input);  // warm-up (packs filters, grows arenas)
      WallTimer t;
      int reps = 0;
      do {
        (void)net.run(input);
        ++reps;
      } while (t.seconds() < cfg.min_seconds);
      return t.seconds() / reps;
    };

    auto before_net = build_model("ResNet-50", cfg.batch, o);
    for (ConvOp* conv : before_net->conv_ops())
      conv->set_filter_cache(false);
    const double t_before = time_net(*before_net);

    auto after_net = build_model("ResNet-50", cfg.batch, o);
    fold_batchnorm(*after_net);
    fuse_conv_relu(*after_net);
    const double t_after = time_net(*after_net);

    // Steady state must run no filter transforms at all.
    const std::uint64_t tf0 = transform_filter_tile_calls();
    (void)after_net->run(input);
    const std::uint64_t transforms = transform_filter_tile_calls() - tf0;

    std::printf(
        "\n[measured] ResNet-50 zero-overhead inference path: "
        "%.1f ms -> %.1f ms (%.2fx); steady-state filter transforms "
        "per forward: %llu\n",
        t_before * 1e3, t_after * 1e3,
        t_after > 0 ? t_before / t_after : 0.0,
        static_cast<unsigned long long>(transforms));
  }
  return 0;
}
