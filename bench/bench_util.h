// Shared harness utilities for the figure/table benchmarks.
//
// Every bench prints two sections:
//   [measured]  numbers measured on this host (reduced problem sizes by
//               default; set NDIRECT_BENCH_FULL=1 for paper-scale runs),
//   [modelled]  the analytical model evaluated on the paper's Table 3
//               platforms at paper-scale, which reproduces the published
//               figures' shape.
// Measurement methodology follows Section 7.4: LIBXSMM-style is timed on
// pre-transformed tensors (transform excluded), XNNPACK-style on its
// native NHWC with the operator pre-built, nDirect *includes* its
// on-the-fly filter transform, im2col+GEMM includes the im2col stage.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "platform/perf_model.h"
#include "platform/workloads.h"
#include "runtime/env.h"
#include "runtime/telemetry.h"
#include "tensor/tensor.h"

namespace ndirect::bench {

/// Problem scaling for host measurements.
struct BenchConfig {
  bool full = false;      ///< NDIRECT_BENCH_FULL=1
  int batch = 1;          ///< measured batch size
  int spatial_divisor = 2;  ///< H/W divided by this in quick mode
  double min_seconds = 0.1;  ///< per measurement
  int threads = 0;        ///< 0 = all hardware threads

  static BenchConfig from_env();
};

/// Scale a Table 4 layer for host measurement per the config (batch and
/// spatial size shrink in quick mode; kernel/channels keep the paper's
/// values so the kernels exercise the same code paths).
ConvParams scale_layer(const ConvParams& paper, const BenchConfig& cfg);

/// Time `fn` until `min_seconds` elapsed (after one warm-up call);
/// returns GFLOPS for the given per-call flop count.
double time_gflops(const std::function<void()>& fn, double flops,
                   double min_seconds);

/// Measure one method on the host for a layer, with each method's
/// native-layout setup excluded per Section 7.4. AnsorTuned uses the
/// schedule tuner with a small budget (larger when cfg.full).
double measure_method_gflops(ConvMethod method, const ConvParams& p,
                             const BenchConfig& cfg);

/// Fixed-width table printing.
void print_header(const std::string& title);
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);
std::string fmt(double v, int decimals = 1);

/// Geometric mean of positive values.
double geomean(const std::vector<double>& values);

/// Filesystem-safe identity of the measuring host — the sanitized CPU
/// model plus the logical core count (e.g. "intel-xeon-8375c-4c").
/// bench_compare.py keys its committed baselines by this string, so two
/// different machines never gate against each other's numbers.
std::string host_key();

/// The "host" object stamped into every BENCH_*.json: cpu model, core
/// count, the measured pack/compute alpha, and the git SHA + compiler +
/// flags the binary was built from.
std::string host_metadata_json();

/// Machine-readable result sink shared by the benches: collect keyed
/// values in insertion order, then write() emits BENCH_<name>.json —
/// into $NDIRECT_BENCH_DIR when set (created if missing), else the
/// working directory — so drivers and dashboards can diff runs without
/// scraping the human tables. Every file leads with the host_metadata
/// object, which is what lets bench_compare.py match baselines to the
/// machine that produced them.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void add(const std::string& key, double v);
  void add(const std::string& key, std::uint64_t v);
  void add(const std::string& key, const std::string& v);  ///< quoted
  /// Pre-formatted JSON value (nested object / array), inserted verbatim.
  void add_raw(const std::string& key, const std::string& json);
  /// Telemetry snapshot as a nested object (counters, phase fractions,
  /// busy stats). Skipped when the snapshot is empty — telemetry is
  /// optional in the bench schema, and a disabled build contributes no
  /// row rather than a row of zeros.
  void add_telemetry(const std::string& key, const TelemetrySnapshot& t);

  /// Write BENCH_<name>.json; prints the path on success.
  bool write() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace ndirect::bench
