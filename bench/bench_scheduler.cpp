// Static vs work-stealing schedule on the PTn x PTk grid.
//
// The paper's Eq. 5/6 mapping is static: each thread owns one slice of
// the (row, K-block) space, so wall time is the slowest slice. That is
// optimal when slices are even and cores are equal, and pessimal when
// either fails:
//
//   1. skewed layers — ResNet-50 conv5_x at batch 1 has 7 output rows,
//      so a PTn > 1 grid hands some threads one row chunk and others
//      two (a 2x imbalance baked in at plan time),
//   2. non-divisor thread counts — 7 threads force a degenerate 1x7 or
//      7x1 static grid, while the stealing scheduler seeds the best
//      partial grid (e.g. 3x2) and lets the remainder steal,
//   3. unequal cores (big.LITTLE, co-tenants) — not reproducible here,
//      but the same mechanism covers it.
//
// Each case runs both schedules on the same pool and tensors; stealing
// also reports its steal count and per-worker tile imbalance from
// SchedulerStats. Results go to stdout and BENCH_scheduler.json.
// Single-core hosts still run everything (the comparison degenerates to
// scheduler-overhead-only, which is itself worth tracking).
#include <cstdio>
#include <string>
#include <vector>

#include "core/ndirect.h"
#include "core/report.h"
#include "platform/workloads.h"
#include "runtime/thread_pool.h"
#include "tensor/rng.h"

#include "bench_util.h"

using namespace ndirect;
using namespace ndirect::bench;

namespace {

struct Case {
  std::string name;
  ConvParams params;
  int threads;  ///< worker count for both schedules
};

struct Result {
  double static_gflops = 0;
  double steal_gflops = 0;
  SchedulerStats stats{};        ///< from the stealing run
  TelemetrySnapshot telemetry;   ///< from one extra untimed stealing run
  std::string report_text;       ///< ConvReport for that run
  double alpha = 0;              ///< plan's pack/compute cost ratio
  int ptn = 0, ptk = 0;          ///< the solved stealing-grid split
};

Result run_case(const Case& c, ThreadPool& pool, const BenchConfig& cfg) {
  Tensor input = make_input_nchw(c.params.N, c.params.C, c.params.H,
                                 c.params.W);
  Tensor filter = make_filter_kcrs(c.params.K, c.params.C, c.params.R,
                                   c.params.S);
  fill_random(input, 5);
  fill_random(filter, 6);
  const double flops = static_cast<double>(c.params.flops());

  Result r;
  NdirectOptions stat;
  stat.pool = &pool;
  stat.threads = c.threads;
  stat.schedule = SchedulePolicy::kStatic;
  const NdirectConv sconv(c.params, stat);
  r.static_gflops = time_gflops([&] { (void)sconv.run(input, filter); },
                                flops, cfg.min_seconds);

  NdirectOptions steal = stat;
  steal.schedule = SchedulePolicy::kStealing;
  steal.sched_stats = &r.stats;
  const NdirectConv wconv(c.params, steal);
  r.steal_gflops = time_gflops([&] { (void)wconv.run(input, filter); },
                               flops, cfg.min_seconds);
  r.alpha = wconv.plan().alpha;
  r.ptn = wconv.plan().mapping.ptn;
  r.ptk = wconv.plan().mapping.ptk;

  // Telemetry is collected in one extra run OUTSIDE the timed loops so
  // the GFLOPS columns measure the same code the ≤1%-overhead claim is
  // made about.
  if (telemetry_enabled()) {
    NdirectOptions tele = steal;
    tele.sched_stats = nullptr;
    tele.telemetry = &r.telemetry;
    const NdirectConv tconv(c.params, tele);
    (void)tconv.run(input, filter);
    r.report_text = build_conv_report(tconv, r.telemetry).to_text();
  }
  return r;
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  print_header("Scheduler: static slice vs locality-aware stealing");

  const int hw = static_cast<int>(ThreadPool::global().size());
  // A divisor-friendly count for the balanced case, a prime count for
  // the non-divisor case; both capped so oversubscription stays mild on
  // small hosts.
  const int even_threads = std::max(4, hw - hw % 4);
  const int prime_threads = 7;
  ThreadPool pool(static_cast<std::size_t>(
      std::max(even_threads, prime_threads)));

  std::vector<Case> cases;
  // Balanced reference: conv3_x-scale layer, rows and K divide evenly
  // (batch fixed at 4 regardless of quick-mode scaling so the row space
  // actually covers the grid).
  ConvParams balanced = scale_layer(table4_layer(9, 4).params, cfg);
  balanced.N = 4;
  cases.push_back({"balanced conv3_x N=4", balanced, even_threads});
  // Skew 1: conv5_x at batch 1 — 7 output rows against a PTn > 1 grid.
  cases.push_back({"skewed conv5_x N=1", table4_layer(21, 1).params,
                   even_threads});
  // Skew 2: ragged K tail — K = 84 splits unevenly over 8 K-groups.
  cases.push_back(
      {"ragged-K 28x28 K=84",
       {.N = 1, .C = 64, .H = 28, .W = 28, .K = 84, .R = 3, .S = 3,
        .str = 1, .pad = 1},
       even_threads});
  // Non-divisor: 7 threads; static is stuck with 1x7 / 7x1.
  cases.push_back({"non-divisor 7T conv4_x N=1",
                   table4_layer(16, 1).params, prime_threads});

  const std::vector<int> w = {28, 10, 10, 9, 8, 11};
  print_row({"case", "static", "steal", "ratio", "steals", "imbalance"},
            w);
  std::string rows_json = "[";
  std::string skew_report;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    const Result r = run_case(c, pool, cfg);
    const double ratio =
        r.static_gflops > 0 ? r.steal_gflops / r.static_gflops : 0;
    const std::uint64_t imbalance =
        r.stats.max_worker_tiles - r.stats.min_worker_tiles;
    print_row({c.name, fmt(r.static_gflops, 2), fmt(r.steal_gflops, 2),
               fmt(ratio, 3), std::to_string(r.stats.steals),
               std::to_string(imbalance)},
              w);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"case\": \"%s\", \"threads\": %d, "
        "\"static_gflops\": %.3f, \"stealing_gflops\": %.3f, "
        "\"ratio\": %.4f, \"tiles\": %llu, \"steals\": %llu, "
        "\"imbalance\": %llu, \"alpha\": %.3f, \"ptn\": %d, "
        "\"ptk\": %d",
        i == 0 ? "" : ", ", c.name.c_str(), c.threads, r.static_gflops,
        r.steal_gflops, ratio,
        static_cast<unsigned long long>(r.stats.tiles),
        static_cast<unsigned long long>(r.stats.steals),
        static_cast<unsigned long long>(imbalance), r.alpha, r.ptn,
        r.ptk);
    rows_json += buf;
    if (!r.telemetry.empty())
      rows_json += ", \"telemetry\": " + r.telemetry.to_json();
    rows_json += "}";
    // Full predicted-vs-measured report for the case the scheduler
    // exists for: the skewed layer where the static split idles.
    if (c.name.rfind("skewed", 0) == 0 && !r.report_text.empty())
      skew_report = r.report_text;
  }
  rows_json += "]";
  if (!skew_report.empty()) std::printf("\n%s", skew_report.c_str());

  std::printf(
      "\nratio > 1 means stealing wins; expected ~1.0 on the balanced\n"
      "case (seed assignment identical, claim overhead only) and > 1 on\n"
      "the skewed/non-divisor cases when cores > 1.\n");

  JsonReport report("scheduler");
  report.add("hardware_threads", static_cast<std::uint64_t>(hw));
  report.add_raw("cases", rows_json);
  report.write();
  return 0;
}
