// Per-call fixed overhead of the inference path.
//
// The end-to-end benches measure throughput on layers big enough that
// the kernel dominates; this bench measures everything *around* the
// kernel — the costs a small late-stage layer (ResNet-50 conv5_x at
// N=1 runs in microseconds) cannot amortize:
//
//   1. thread-pool round-trip: latency of run() with empty tasks, for
//      the spin-then-park dispatch vs. the park-immediately fallback
//      (NDIRECT_POOL_SPIN=0, the seed's mutex+condvar behaviour),
//   2. single-layer conv latency (p50/p95) in the seed configuration
//      (per-call heap allocation of pack/ftile, on-the-fly filter
//      transform every call, parked pool) vs. the inference-opt
//      configuration (persistent scratch arena, cached packed filter,
//      spinning pool),
//   3. proof that steady-state opt-mode calls run zero filter
//      transforms and zero arena growths.
//
// Results go to stdout and to BENCH_dispatch.json in the working
// directory.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/filter_transform.h"
#include "core/ndirect.h"
#include "runtime/scratch.h"
#include "runtime/thread_pool.h"
#include "runtime/timer.h"
#include "tensor/rng.h"

#include "bench_util.h"

using namespace ndirect;
using namespace ndirect::bench;

namespace {

struct Percentiles {
  double p50 = 0, p95 = 0;
};

Percentiles percentiles(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  Percentiles r;
  if (samples.empty()) return r;
  r.p50 = samples[samples.size() / 2];
  r.p95 = samples[static_cast<std::size_t>(
      static_cast<double>(samples.size() - 1) * 0.95)];
  return r;
}

/// Latency distribution of `fn` in microseconds.
Percentiles time_calls(const std::function<void()>& fn, int reps) {
  fn();  // warm-up
  std::vector<double> us(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    fn();
    us[static_cast<std::size_t>(i)] = t.seconds() * 1e6;
  }
  return percentiles(us);
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::from_env();
  print_header("Dispatch: per-call fixed overhead");

  // ------------------------------------------------------------------
  // 1. Pool round-trip latency (empty work): spin vs. park dispatch.
  // ------------------------------------------------------------------
  const std::size_t pool_threads = 4;
  const int rt_reps = cfg.full ? 20000 : 3000;
  ThreadPool spin_pool(pool_threads);  // spin budget from env/default
  ThreadPool park_pool(pool_threads, 0);  // park immediately (seed-like)
  auto noop = [](std::size_t) {};
  const Percentiles rt_spin = time_calls(
      [&] { spin_pool.run(pool_threads, noop); }, rt_reps);
  const Percentiles rt_park = time_calls(
      [&] { park_pool.run(pool_threads, noop); }, rt_reps);

  std::printf("\n[measured] empty-work pool round-trip, %zu threads "
              "(%d reps):\n", pool_threads, rt_reps);
  const std::vector<int> w = {26, 12, 12};
  print_row({"dispatch", "p50 (us)", "p95 (us)"}, w);
  print_row({"spin-then-park", fmt(rt_spin.p50, 2), fmt(rt_spin.p95, 2)},
            w);
  print_row({"park (seed-like)", fmt(rt_park.p50, 2), fmt(rt_park.p95, 2)},
            w);

  // ------------------------------------------------------------------
  // 2. Small-layer conv latency: seed vs. inference-opt configuration.
  //    ResNet-50 conv5_x (7x7 spatial), N=1 — the paper's hardest case
  //    for fixed costs. Channels shrink 4x in quick mode.
  // ------------------------------------------------------------------
  const int chan = cfg.full ? 512 : 128;
  const ConvParams layer{.N = 1, .C = chan, .H = 7, .W = 7, .K = chan,
                         .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor input = make_input_nchw(layer.N, layer.C, layer.H, layer.W);
  Tensor filter = make_filter_kcrs(layer.K, layer.C, layer.R, layer.S);
  Tensor out = make_output_nchw(layer.N, layer.K, layer.P(), layer.Q());
  fill_random(input, 11);
  fill_random(filter, 12);

  NdirectOptions seed_opts;
  seed_opts.persistent_scratch = false;  // heap-alloc pack/ftile per call
  seed_opts.cache_packed_filter = false;  // transform per call
  seed_opts.pool = &park_pool;
  const NdirectConv seed_conv(layer, seed_opts);

  NdirectOptions opt_opts;
  opt_opts.cache_packed_filter = true;
  opt_opts.pool = &spin_pool;
  const NdirectConv opt_conv(layer, opt_opts);
  opt_conv.prepare_filter(filter.data());  // pack once, ahead of serving

  const int conv_reps = cfg.full ? 3000 : 500;
  const Percentiles lat_seed = time_calls(
      [&] { seed_conv.run_into(input.data(), filter.data(), out.data()); },
      conv_reps);
  const Percentiles lat_opt = time_calls(
      [&] { opt_conv.run_into(input.data(), filter.data(), out.data()); },
      conv_reps);

  std::printf("\n[measured] conv5_x-style layer %s, N=1 (%d reps):\n",
              layer.to_string().c_str(), conv_reps);
  print_row({"configuration", "p50 (us)", "p95 (us)"}, w);
  print_row({"seed (alloc+transform+park)", fmt(lat_seed.p50, 1),
             fmt(lat_seed.p95, 1)}, w);
  print_row({"inference-opt", fmt(lat_opt.p50, 1), fmt(lat_opt.p95, 1)},
            w);

  // Fixed-overhead estimate: the optimized configuration's kernel work
  // is identical (same plan, same micro-kernels), so the latency delta
  // IS the per-call fixed cost removed; the dispatch round-trip delta
  // bounds the pool's share of it.
  const double overhead_removed_us = lat_seed.p50 - lat_opt.p50;
  const double overhead_ratio =
      lat_opt.p50 > 0 ? lat_seed.p50 / lat_opt.p50 : 0;
  std::printf("\nper-call cost removed: %.1f us (p50 ratio %.2fx)\n",
              overhead_removed_us, overhead_ratio);

  // ------------------------------------------------------------------
  // 3. Steady-state hygiene: no transforms, no arena growth.
  // ------------------------------------------------------------------
  const std::uint64_t t0 = transform_filter_tile_calls();
  const std::uint64_t g0 = scratch_grow_events();
  for (int i = 0; i < 100; ++i)
    opt_conv.run_into(input.data(), filter.data(), out.data());
  const std::uint64_t transforms = transform_filter_tile_calls() - t0;
  const std::uint64_t grows = scratch_grow_events() - g0;
  std::printf("steady-state (100 calls): filter transforms = %llu, "
              "arena growths = %llu%s\n",
              static_cast<unsigned long long>(transforms),
              static_cast<unsigned long long>(grows),
              transforms == 0 && grows == 0 ? "  [zero-overhead OK]"
                                            : "  [UNEXPECTED]");

  // ------------------------------------------------------------------
  // JSON record for the driver / tracking dashboards.
  // ------------------------------------------------------------------
  auto pcts = [](const Percentiles& p) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"p50\": %.3f, \"p95\": %.3f}",
                  p.p50, p.p95);
    return std::string(buf);
  };
  JsonReport report("dispatch");
  report.add("pool_threads", static_cast<std::uint64_t>(pool_threads));
  report.add_raw("round_trip_spin_us", pcts(rt_spin));
  report.add_raw("round_trip_park_us", pcts(rt_park));
  report.add("layer", layer.to_string());
  report.add_raw("conv_seed_us", pcts(lat_seed));
  report.add_raw("conv_opt_us", pcts(lat_opt));
  report.add("fixed_overhead_removed_us", overhead_removed_us);
  report.add("p50_ratio", overhead_ratio);
  report.add("steady_state_transforms", transforms);
  report.add("steady_state_arena_growths", grows);
  report.write();
  return 0;
}
