// Metrics-plane overhead benchmark: what one instrument write costs,
// and what the whole observability path costs the serving layer.
//
// Two sections:
//
//  [record]   ns per operation for the three instrument kinds, single
//             threaded and with 8 threads hammering the *same*
//             histogram cell (the registry's worst case — real servers
//             shard naturally across instruments, so contended is an
//             upper bound, not the expected cost).
//
//  [serving]  the acceptance check for DESIGN.md §16: the same
//             saturating burst through the same max_batch=8 server,
//             observe=on vs observe=off, interleaved repetitions so
//             host noise cancels. Every served request pays ~6
//             instrument writes plus the SLO ring update on the on
//             path; the bar is < 1% goodput delta. Keys
//             goodput_qps_observe_{on,off} are gated higher-is-better
//             by bench_compare.py against the committed per-host
//             baseline, so a regression in the record path trips CI
//             even when nobody reads the printed table.
//
//  [scrape]   the admin-plane acceptance check for DESIGN.md §17: the
//             same saturating burst with a live 1 Hz /metrics scraper
//             attached vs none. A scrape renders the whole registry
//             under its mutex while the hot paths keep writing
//             lock-free cells, so the bar is the same < 1% goodput
//             delta; keys goodput_qps_scrape_{on,off} gate it per
//             host.
//
//   NDIRECT_BENCH_MS=2000 ./bench/bench_metrics   # scales the burst
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "nn/graph.h"
#include "runtime/env.h"
#include "runtime/http.h"
#include "runtime/metrics.h"
#include "runtime/timer.h"
#include "serve/admin.h"
#include "serve/server.h"
#include "tensor/rng.h"

using namespace ndirect;
using namespace ndirect::serve;

namespace {

constexpr int kC = 3, kH = 8, kW = 8;
constexpr int kMaxBatch = 8;

/// Same tiny net as bench_serving: fixed per-forward cost dominates, so
/// per-request serving overhead (where the instruments live) is a
/// visible fraction of the runtime — the harshest realistic regime for
/// the < 1% bar.
std::unique_ptr<Graph> make_net(int batch) {
  auto g = std::make_unique<Graph>(batch, kC, kH, kW);
  ConvParams p{.N = batch, .C = kC, .H = kH, .W = kW, .K = 4,
               .R = 3, .S = 3, .str = 1, .pad = 1};
  NodeId n = g->add(
      std::make_unique<ConvOp>(p, ConvBackend::Ndirect, /*seed=*/11,
                               /*bias=*/true),
      {0});
  g->add(std::make_unique<ReluOp>(), {n});
  return g;
}

/// ns per call of `fn` over `iters` iterations (no warm-up: the
/// instruments have no cold path once registered).
template <typename Fn>
double record_ns(std::uint64_t iters, Fn&& fn) {
  WallTimer t;
  for (std::uint64_t i = 0; i < iters; ++i) fn(i);
  return t.seconds() / static_cast<double>(iters) * 1e9;
}

/// Spread histogram samples across buckets — a constant value would
/// keep one bucket's cache line hot and flatter the number.
std::uint64_t spread(std::uint64_t i) {
  return (i * 2654435761ull) & 0xFFFFFull;
}

/// Saturating burst of `n_req` requests through a max_batch=8 server;
/// returns served requests per second (the burst goodput — nothing has
/// a deadline, so served == on-time). With `admin_port` > 0 a scraper
/// thread GETs /metrics from that admin plane once immediately and
/// then at 1 Hz for the duration of the burst — the production shape
/// of a Prometheus scrape against a saturated server.
double burst_goodput_qps(bool observe, int n_req, LatencyModel* model,
                         const Tensor& img, int admin_port = 0) {
  ServerOptions opts;
  opts.name = observe ? "bench-on" : "bench-off";
  opts.observe = observe;
  opts.max_batch = kMaxBatch;
  opts.default_deadline_ns = kNeverNs;
  opts.admission_control = false;
  opts.max_linger_ns = 0;
  opts.model = model;
  Server server(make_net, opts);
  std::atomic<bool> stop{false};
  std::thread scraper;
  if (admin_port > 0) {
    scraper = std::thread([&stop, admin_port] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)http_get("127.0.0.1", admin_port, "/metrics");
        for (int i = 0;
             i < 20 && !stop.load(std::memory_order_relaxed); ++i)
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  }
  // Bounded in-flight window: enough queued work to keep the lanes
  // saturated, without letting the queue grow with the burst length
  // (an unbounded backlog makes per-batch queue maintenance, not the
  // instruments, the thing being measured).
  std::deque<std::future<ServeResult>> inflight;
  WallTimer t;
  for (int i = 0; i < n_req; ++i) {
    inflight.push_back(server.submit(img.clone()));
    if (inflight.size() >= 1024) {
      (void)inflight.front().get();
      inflight.pop_front();
    }
  }
  for (auto& f : inflight) (void)f.get();
  const double qps = static_cast<double>(n_req) / t.seconds();
  if (scraper.joinable()) {
    stop.store(true);
    scraper.join();
  }
  return qps;
}

}  // namespace

int main() {
  const auto bench_ms = env_long("NDIRECT_BENCH_MS", 1000);

  bench::print_header("metrics plane: record cost and serving overhead");

  MetricsRegistry& reg = MetricsRegistry::global();
  CounterCell* c = reg.counter("bench_metrics_counter", {},
                               "bench instrument");
  GaugeCell* g = reg.gauge("bench_metrics_gauge", {},
                           "bench instrument");
  HistogramCell* h = reg.histogram("bench_metrics_hist_ns", {},
                                   "bench instrument");

  constexpr std::uint64_t kIters = 1 << 22;
  const double counter_ns = record_ns(kIters, [&](std::uint64_t) {
    c->inc();
  });
  const double gauge_ns = record_ns(kIters, [&](std::uint64_t i) {
    g->set(static_cast<std::int64_t>(i));
  });
  const double hist_ns = record_ns(kIters, [&](std::uint64_t i) {
    h->record(spread(i));
  });

  // Contended: 8 threads on the SAME histogram cell. Reported as ns of
  // wall time per operation per thread — i.e. what one thread
  // experiences while seven others fight it for the bucket lines.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1 << 19;
  WallTimer ct;
  {
    std::vector<std::thread> threads;
    for (int w = 0; w < kThreads; ++w)
      threads.emplace_back([&, w] {
        for (std::uint64_t i = 0; i < kPerThread; ++i)
          h->record(spread(i + static_cast<std::uint64_t>(w) * 977));
      });
    for (std::thread& th : threads) th.join();
  }
  const double hist_contended_ns =
      ct.seconds() / static_cast<double>(kPerThread) * 1e9;

  const std::vector<int> widths = {26, 12};
  bench::print_row({"instrument", "ns/op"}, widths);
  bench::print_row({"counter inc", bench::fmt(counter_ns, 2)}, widths);
  bench::print_row({"gauge set", bench::fmt(gauge_ns, 2)}, widths);
  bench::print_row({"histogram record", bench::fmt(hist_ns, 2)}, widths);
  bench::print_row(
      {"histogram record (8 thr)", bench::fmt(hist_contended_ns, 2)},
      widths);

  // Serving overhead: interleaved on/off pairs, pooled. The request
  // count scales with NDIRECT_BENCH_MS so a longer run buys tighter
  // numbers, not more repetitions of the same noise.
  const int n_req = static_cast<int>(
      std::max<long>(1000, bench_ms * 2));
  AffineLatencyModel model(5'000, 2'000);
  Tensor img = make_input_nchw(1, kC, kH, kW);
  fill_random(img, 7);
  (void)burst_goodput_qps(true, n_req / 2, &model, img);  // warm
  (void)burst_goodput_qps(false, n_req / 2, &model, img);

  constexpr int kReps = 3;
  double on_qps = 0, off_qps = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    off_qps += burst_goodput_qps(false, n_req, &model, img);
    on_qps += burst_goodput_qps(true, n_req, &model, img);
  }
  on_qps /= kReps;
  off_qps /= kReps;
  const double overhead_pct =
      off_qps > 0 ? (off_qps - on_qps) / off_qps * 100.0 : 0.0;

  std::printf(
      "\n  burst goodput: observe=off %.0f qps, observe=on %.0f qps\n"
      "  observability overhead: %.2f%% (acceptance bar: < 1%%)\n",
      off_qps, on_qps, overhead_pct);

  // Scrape under saturation: same burst (observe=on both sides), with
  // and without a live 1 Hz /metrics scraper through the admin plane.
  // The burst is sized from the measured goodput to last ~2 s so the
  // scraper fires 2-3 times at its production cadence — against the
  // [serving] burst (tens of ms) the single immediate scrape would be
  // amortized over almost nothing and read as a huge fake overhead.
  AdminServer admin;
  admin.start();
  const int n_scrape = std::max(
      n_req, static_cast<int>(std::min(on_qps * 2.0, 4e6)));
  (void)burst_goodput_qps(true, n_scrape / 2, &model, img,
                          admin.port());  // warm
  double scrape_on_qps = 0, scrape_off_qps = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    scrape_off_qps += burst_goodput_qps(true, n_scrape, &model, img);
    scrape_on_qps +=
        burst_goodput_qps(true, n_scrape, &model, img, admin.port());
  }
  scrape_on_qps /= kReps;
  scrape_off_qps /= kReps;
  const double scrape_overhead_pct =
      scrape_off_qps > 0
          ? (scrape_off_qps - scrape_on_qps) / scrape_off_qps * 100.0
          : 0.0;
  admin.stop();

  std::printf(
      "  burst goodput: scraper off %.0f qps, 1 Hz scraper %.0f qps\n"
      "  scrape-under-load overhead: %.2f%% (acceptance bar: < 1%%)\n",
      scrape_off_qps, scrape_on_qps, scrape_overhead_pct);

  bench::JsonReport json("metrics");
  json.add("counter_inc_ns", counter_ns);
  json.add("gauge_set_ns", gauge_ns);
  json.add("histogram_record_ns", hist_ns);
  json.add("histogram_record_contended_ns", hist_contended_ns);
  json.add("goodput_qps_observe_off", off_qps);
  json.add("goodput_qps_observe_on", on_qps);
  json.add("observability_overhead_pct", overhead_pct);
  json.add("goodput_qps_scrape_off", scrape_off_qps);
  json.add("goodput_qps_scrape_on", scrape_on_qps);
  json.add("scrape_overhead_pct", scrape_overhead_pct);
  json.write();
  return 0;
}
