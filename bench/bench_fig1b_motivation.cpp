// Fig. 1b: motivation — % of theoretical peak achieved by prior conv
// implementations on the 64-core Phytium 2000+ (ResNet-50 layers 1-20,
// batch = core count).
//
// [modelled] reproduces the published figure's setting; [measured] runs
// the same methods on this host.
#include <cstdio>

#include "bench_util.h"
#include "platform/specs.h"

using namespace ndirect;
using namespace ndirect::bench;

int main() {
  const BenchConfig cfg = BenchConfig::from_env();

  print_header(
      "Fig. 1b [modelled]: % of peak on Phytium 2000+ (64 cores, N=64)");
  const PlatformSpec& phytium = platform_by_name("Phytium 2000+");
  const std::vector<int> w = {6, 13, 10, 10, 8, 10, 12, 9};
  print_row({"layer", "im2col+GEMM", "XNNPACK", "LIBXSMM", "Ansor",
             "ACL_GEMM", "ACL_DIRECT", "NDIRECT"},
            w);
  std::vector<std::vector<double>> sums(7);
  for (const ConvLayer& layer : table4_resnet_layers(phytium.cores)) {
    std::vector<std::string> cells = {std::to_string(layer.id)};
    int mi = 0;
    for (ConvMethod m :
         {ConvMethod::Im2colGemm, ConvMethod::XnnpackStyle,
          ConvMethod::LibxsmmStyle, ConvMethod::AnsorTuned,
          ConvMethod::AclGemm, ConvMethod::AclDirect,
          ConvMethod::Ndirect}) {
      const PerfEstimate e =
          estimate_conv_perf(phytium, layer.params, m, phytium.cores);
      cells.push_back(fmt(e.pct_peak));
      sums[static_cast<std::size_t>(mi++)].push_back(e.pct_peak);
    }
    print_row(cells, w);
  }
  std::vector<std::string> geo = {"Geo"};
  for (auto& v : sums) geo.push_back(fmt(geomean(v)));
  print_row(geo, w);

  print_header("Fig. 1b [measured]: % of host peak (same methods)");
  std::printf("host, batch=%d, spatial/%d, threads=%d\n", cfg.batch,
              cfg.spatial_divisor, cfg.threads);
  const double host_peak = host_platform().peak_gflops;
  print_row({"layer", "im2col+GEMM", "XNNPACK", "LIBXSMM", "Ansor",
             "ACL_GEMM", "ACL_DIRECT", "NDIRECT"},
            w);
  for (const ConvLayer& layer : table4_resnet_layers(1)) {
    const ConvParams p = scale_layer(layer.params, cfg);
    std::vector<std::string> cells = {std::to_string(layer.id)};
    for (ConvMethod m :
         {ConvMethod::Im2colGemm, ConvMethod::XnnpackStyle,
          ConvMethod::LibxsmmStyle, ConvMethod::AnsorTuned,
          ConvMethod::AclGemm, ConvMethod::AclDirect,
          ConvMethod::Ndirect}) {
      const double g = measure_method_gflops(m, p, cfg);
      cells.push_back(fmt(100 * g / host_peak));
    }
    print_row(cells, w);
  }
  return 0;
}
