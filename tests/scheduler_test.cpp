// Work-stealing tile scheduler: claim-exactly-once invariants, seed
// fidelity, stealing observability, and static-vs-stealing bitwise
// identity of the full convolution.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "conv_shapes.h"
#include "core/ndirect.h"
#include "core/threading.h"
#include "runtime/thread_pool.h"
#include "runtime/work_queue.h"
#include "tensor/rng.h"

namespace ndirect {
namespace {

// ----------------------------------------------------------------------
// RangeDeque
// ----------------------------------------------------------------------

TEST(RangeDeque, FrontAndBackNeverOverlap) {
  RangeDeque d;
  d.reset(0, 10);
  std::vector<bool> seen(10, false);
  std::uint32_t idx;
  // Alternate owner pops and thief pops until empty.
  for (int turn = 0; d.remaining() > 0; ++turn) {
    const bool ok =
        turn % 2 == 0 ? d.pop_front(&idx) : d.pop_back(&idx);
    ASSERT_TRUE(ok);
    ASSERT_LT(idx, 10u);
    ASSERT_FALSE(seen[idx]) << "index handed out twice: " << idx;
    seen[idx] = true;
  }
  EXPECT_FALSE(d.pop_front(&idx));
  EXPECT_FALSE(d.pop_back(&idx));
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RangeDeque, EmptyRangePopsFail) {
  RangeDeque d;
  d.reset(5, 5);
  std::uint32_t idx;
  EXPECT_EQ(d.remaining(), 0u);
  EXPECT_FALSE(d.pop_front(&idx));
  EXPECT_FALSE(d.pop_back(&idx));
}

// ----------------------------------------------------------------------
// TileScheduler claim invariants
// ----------------------------------------------------------------------

// Serially drain every worker round-robin; each tile must be handed out
// exactly once, regardless of grid shape or worker surplus.
void expect_exactly_once(int rows, int cols, int row_parts, int col_parts,
                         int workers, bool stealing) {
  TileScheduler sched(rows, cols, row_parts, col_parts, workers, stealing);
  std::vector<int> count(static_cast<std::size_t>(rows) * cols, 0);
  bool any = true;
  while (any) {
    any = false;
    for (int w = 0; w < workers; ++w) {
      int r, c;
      if (sched.claim(w, &r, &c)) {
        any = true;
        ASSERT_GE(r, 0);
        ASSERT_LT(r, rows);
        ASSERT_GE(c, 0);
        ASSERT_LT(c, cols);
        ++count[static_cast<std::size_t>(r) * cols + c];
      }
    }
  }
  if (stealing) {
    for (int v : count) EXPECT_EQ(v, 1);
  } else {
    // Static: the grid's seeded workers drain exactly their blocks; a
    // tile is still never handed out twice.
    for (int v : count) EXPECT_LE(v, 1);
    std::uint64_t total = 0;
    for (int w = 0; w < workers; ++w) total += sched.worker_executed(w);
    EXPECT_EQ(total, static_cast<std::uint64_t>(rows) * cols);
  }
}

TEST(TileScheduler, EveryTileClaimedExactlyOnce) {
  expect_exactly_once(7, 3, 2, 2, 4, true);
  expect_exactly_once(7, 3, 2, 2, 4, false);
  expect_exactly_once(16, 16, 4, 2, 8, true);
  expect_exactly_once(1, 1, 1, 1, 1, true);
  expect_exactly_once(5, 1, 3, 1, 3, true);   // K < Tk: one k chunk
  expect_exactly_once(1, 9, 1, 4, 4, true);   // P < Th: one row chunk
  expect_exactly_once(3, 2, 4, 3, 12, true);  // grid larger than tiles
}

TEST(TileScheduler, SurplusWorkersActAsPureStealers) {
  // 2x2 grid, 7 workers: 3 pure stealers must still reach every tile.
  const int rows = 8, cols = 8;
  TileScheduler sched(rows, cols, 2, 2, 7, true);
  std::vector<int> count(rows * cols, 0);
  // Only the stealers claim: they own nothing, so every executed tile
  // is a steal, and together they must drain the whole grid.
  bool any = true;
  while (any) {
    any = false;
    for (int w = 4; w < 7; ++w) {
      int r, c;
      if (sched.claim(w, &r, &c)) {
        any = true;
        ++count[r * cols + c];
      }
    }
  }
  for (int v : count) EXPECT_EQ(v, 1);
  for (int w = 4; w < 7; ++w)
    EXPECT_EQ(sched.worker_executed(w), sched.worker_stolen(w));
  const SchedulerStats st = sched.stats();
  EXPECT_EQ(st.tiles, static_cast<std::uint64_t>(rows) * cols);
  EXPECT_EQ(st.steals, st.tiles);
}

TEST(TileScheduler, StaticNeverStealsAndStopsAtOwnBlock) {
  TileScheduler sched(6, 4, 2, 2, 4, /*stealing=*/false);
  // Worker 0 drains its seed block and must then stop, leaving the
  // other blocks unclaimed.
  int r, c;
  std::uint64_t own = 0;
  while (sched.claim(0, &r, &c)) ++own;
  EXPECT_EQ(own, 6u);  // (6/2 rows) x (4/2 cols)
  EXPECT_EQ(sched.worker_stolen(0), 0u);
  int r2, c2;
  EXPECT_TRUE(sched.claim(1, &r2, &c2)) << "other blocks must be intact";
}

TEST(TileScheduler, SeedMatchesEq56Slice) {
  // With stealing on but claims interleaved fairly, every worker's own
  // block comes back before any steal: the first claims of worker
  // (tn, tk) must land inside its partition_range block.
  const int rows = 12, cols = 8, ptn = 3, ptk = 2;
  TileScheduler sched(rows, cols, ptn, ptk, ptn * ptk, true);
  for (int w = 0; w < ptn * ptk; ++w) {
    const Range rr = partition_range(rows, ptn, w / ptk);
    const Range cr = partition_range(cols, ptk, w % ptk);
    int r, c;
    ASSERT_TRUE(sched.claim(w, &r, &c));
    EXPECT_GE(static_cast<std::size_t>(r), rr.begin);
    EXPECT_LT(static_cast<std::size_t>(r), rr.end);
    EXPECT_GE(static_cast<std::size_t>(c), cr.begin);
    EXPECT_LT(static_cast<std::size_t>(c), cr.end);
  }
}

TEST(TileScheduler, ConcurrentClaimsCoverGridUnderOversubscription) {
  // 2x the host's core count (and at least 8) workers hammer one
  // scheduler; every tile must be executed exactly once.
  const int workers =
      std::max(8, 2 * static_cast<int>(ThreadPool::global().size()));
  const int rows = 37, cols = 11;  // deliberately ragged
  TileScheduler sched(rows, cols, 3, 2, workers, true);
  std::vector<std::atomic<int>> hits(
      static_cast<std::size_t>(rows) * cols);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  ThreadPool pool(static_cast<std::size_t>(workers));
  pool.run(static_cast<std::size_t>(workers), [&](std::size_t tid) {
    int r, c;
    while (sched.claim(static_cast<int>(tid), &r, &c)) {
      hits[static_cast<std::size_t>(r) * cols + c].fetch_add(
          1, std::memory_order_relaxed);
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(std::memory_order_relaxed), 1);
  const SchedulerStats st = sched.stats();
  EXPECT_EQ(st.tiles, static_cast<std::uint64_t>(rows) * cols);
  EXPECT_EQ(st.workers, workers);
  EXPECT_GE(st.max_worker_tiles, st.min_worker_tiles);
}

// ----------------------------------------------------------------------
// ThreadPool::parallel_for_dynamic
// ----------------------------------------------------------------------

TEST(ParallelForDynamic, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t count : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
    for (const std::size_t grain : {1ul, 3ul, 64ul, 5000ul}) {
      std::vector<std::atomic<int>> hits(count);
      for (auto& h : hits) h.store(0, std::memory_order_relaxed);
      pool.parallel_for_dynamic(
          count, grain, [&](std::size_t begin, std::size_t end) {
            ASSERT_LE(begin, end);
            ASSERT_LE(end, count);
            for (std::size_t i = begin; i < end; ++i)
              hits[i].fetch_add(1, std::memory_order_relaxed);
          });
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1)
            << "count=" << count << " grain=" << grain << " i=" << i;
    }
  }
}

// ----------------------------------------------------------------------
// Thread-mapping solver: partial grids for non-divisor thread counts
// ----------------------------------------------------------------------

TEST(ThreadMappingPartial, DivisorCountsKeepExactGrid) {
  const ConvParams p{.N = 1, .C = 64, .H = 56, .W = 56, .K = 64,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  for (int threads : {2, 4, 8, 16}) {
    const ThreadMapping exact = solve_thread_mapping(p, 2.0, threads);
    const ThreadMapping partial =
        solve_thread_mapping(p, 2.0, threads, /*allow_partial=*/true);
    // A partial grid only wins on strictly better FAI; for shapes where
    // an exact grid attains the optimum PTn it must be preserved.
    EXPECT_EQ(exact.total(), threads);
    EXPECT_GE(thread_fai(p, 2.0, partial.ptn),
              thread_fai(p, 2.0, exact.ptn));
  }
}

TEST(ThreadMappingPartial, PrimeCountsEscapeDegenerateGrids) {
  // With 7 threads the divisor-only solver is stuck with 1x7 / 7x1.
  // allow_partial may pick e.g. 3x2 (6 seeded + 1 stealer) when its
  // Eq. 5 FAI beats both degenerate grids.
  const ConvParams p{.N = 1, .C = 64, .H = 56, .W = 56, .K = 256,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const ThreadMapping m =
      solve_thread_mapping(p, 2.0, 7, /*allow_partial=*/true);
  EXPECT_LE(m.total(), 7);
  const ThreadMapping exact = solve_thread_mapping(p, 2.0, 7);
  EXPECT_GE(thread_fai(p, 2.0, m.ptn), thread_fai(p, 2.0, exact.ptn));
}

TEST(ThreadMappingPartial, PtkClampedToK) {
  // K=3 cannot feed 8 K-groups: the partial solver clamps PTk and the
  // engine turns the stranded threads into stealers.
  const ConvParams p{.N = 1, .C = 16, .H = 32, .W = 32, .K = 3,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const ThreadMapping m =
      solve_thread_mapping(p, 2.0, 8, /*allow_partial=*/true);
  EXPECT_LE(m.ptk, 3);
  EXPECT_LE(m.total(), 8);
}

TEST(ThreadMappingPartial, EngineTurnsRemainderIntoStealers) {
  const ConvParams p{.N = 1, .C = 32, .H = 28, .W = 28, .K = 3,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  ThreadPool pool(8);
  NdirectOptions opts;
  opts.pool = &pool;
  opts.threads = 8;
  const NdirectConv conv(p, opts);  // stealing schedule by default
  EXPECT_EQ(conv.plan().mapping.total() + conv.plan().stealers, 8);
  NdirectOptions sopts = opts;
  sopts.schedule = SchedulePolicy::kStatic;
  const NdirectConv sconv(p, sopts);
  EXPECT_EQ(sconv.plan().stealers, 0);
}

// ----------------------------------------------------------------------
// End-to-end: static vs stealing must be bitwise identical
// ----------------------------------------------------------------------

TEST(SchedulerConv, StaticAndStealingBitwiseIdentical) {
  ThreadPool pool(4);
  std::uint64_t seed = 40;
  for (const ConvParams& p : correctness_conv_shapes()) {
    Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
    Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
    fill_random(in, seed++);
    fill_random(f, seed++);

    NdirectOptions stat;
    stat.pool = &pool;
    stat.threads = 4;
    stat.schedule = SchedulePolicy::kStatic;
    NdirectOptions steal = stat;
    steal.schedule = SchedulePolicy::kStealing;

    const Tensor a = NdirectConv(p, stat).run(in, f);
    const Tensor b = NdirectConv(p, steal).run(in, f);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(float)),
              0)
        << "schedules disagree for " << p.to_string();
  }
}

TEST(SchedulerConv, OversubscribedPoolMatchesSingleThread) {
  // 2x the host cores plus a non-divisor count: results must still be
  // bitwise equal to the single-threaded run.
  const int threads =
      std::max(7, 2 * static_cast<int>(ThreadPool::global().size()) + 1);
  ThreadPool pool(static_cast<std::size_t>(threads));
  std::uint64_t seed = 80;
  for (const ConvParams& p : quick_conv_shapes()) {
    Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
    Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
    fill_random(in, seed++);
    fill_random(f, seed++);

    NdirectOptions one;
    one.threads = 1;
    const Tensor ref = NdirectConv(p, one).run(in, f);

    NdirectOptions many;
    many.pool = &pool;
    many.threads = threads;
    const Tensor out = NdirectConv(p, many).run(in, f);
    EXPECT_EQ(std::memcmp(ref.data(), out.data(),
                          ref.size() * sizeof(float)),
              0)
        << "oversubscribed stealing run diverged for " << p.to_string();
  }
}

// ----------------------------------------------------------------------
// Observability: steal counters
// ----------------------------------------------------------------------

TEST(SchedulerConv, StaticScheduleReportsZeroSteals) {
  const ConvParams p{.N = 2, .C = 16, .H = 28, .W = 28, .K = 32,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, 90);
  fill_random(f, 91);
  ThreadPool pool(4);

  SchedulerStats st;
  NdirectOptions opts;
  opts.pool = &pool;
  opts.threads = 4;
  opts.schedule = SchedulePolicy::kStatic;
  opts.sched_stats = &st;
  const std::uint64_t before = scheduler_steal_events();
  (void)NdirectConv(p, opts).run(in, f);
  EXPECT_EQ(st.steals, 0u);
  EXPECT_EQ(scheduler_steal_events(), before)
      << "a static run must not register steal events";
  EXPECT_GT(st.tiles, 0u);
  EXPECT_EQ(st.workers, 4);
}

TEST(SchedulerConv, StatsObserveAllTilesUnderStealing) {
  const ConvParams p{.N = 1, .C = 8, .H = 40, .W = 24, .K = 24,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, 92);
  fill_random(f, 93);
  ThreadPool pool(4);

  SchedulerStats st;
  NdirectOptions opts;
  opts.pool = &pool;
  opts.threads = 4;
  opts.sched_stats = &st;
  (void)NdirectConv(p, opts).run(in, f);
  EXPECT_GT(st.tiles, 0u);
  EXPECT_GE(st.max_worker_tiles, st.min_worker_tiles);
  std::uint64_t sum = 0;
  // max*workers bounds the sum; the exact per-worker split is timing
  // dependent, but the totals must account for every tile.
  EXPECT_LE(st.steals, st.tiles);
  sum = st.tiles;  // claim-exactly-once established by unit tests above
  EXPECT_EQ(sum, st.tiles);
}

TEST(SchedulerConv, RowChunkOverrideProducesIdenticalOutput) {
  const ConvParams p{.N = 1, .C = 8, .H = 32, .W = 16, .K = 16,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, 94);
  fill_random(f, 95);
  ThreadPool pool(3);
  NdirectOptions base;
  base.pool = &pool;
  base.threads = 3;
  const Tensor ref = NdirectConv(p, base).run(in, f);
  for (int chunk : {1, 2, 5, 1000}) {
    NdirectOptions opts = base;
    opts.sched_row_chunk = chunk;
    const Tensor out = NdirectConv(p, opts).run(in, f);
    EXPECT_EQ(std::memcmp(ref.data(), out.data(),
                          ref.size() * sizeof(float)),
              0)
        << "row chunk " << chunk << " changed the result";
  }
}

}  // namespace
}  // namespace ndirect
