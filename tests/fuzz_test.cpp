// Randomized property sweep: nDirect (all execution modes) against
// Algorithm 1 on ~40 randomly generated valid shapes, a DAG fuzzer
// proving the concurrent graph executor bitwise-identical to
// sequential execution on 100+ random branchy topologies, plus
// public-API validation behaviour.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <thread>

#include "baselines/naive_conv.h"
#include "core/ndirect.h"
#include "nn/graph.h"
#include "tensor/compare.h"
#include "tensor/rng.h"
#include "tensor/transforms.h"

#include "graph_gen.h"

namespace ndirect {
namespace {

ConvParams random_params(std::mt19937_64& rng) {
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  for (;;) {
    ConvParams p;
    p.N = pick(1, 3);
    p.C = pick(1, 40);
    p.K = pick(1, 40);
    p.R = pick(1, 5);
    p.S = pick(1, 5);
    p.str = pick(1, 3);
    p.pad = pick(0, 3);
    p.H = pick(1, 30);
    p.W = pick(1, 30);
    if (p.valid() && p.output_elems() > 0 &&
        p.input_elems() < 200'000) {
      return p;
    }
  }
}

class RandomShapeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomShapeFuzz, AllModesMatchNaive) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const ConvParams p = random_params(rng);
  SCOPED_TRACE(p.to_string());

  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, rng());
  fill_random(f, rng());
  const Tensor ref = naive_conv_nchw(in, f, p);

  // Default plan, fused packing.
  EXPECT_TRUE(allclose(ndirect_conv(in, f, p), ref));

  // Sequential packing + ahead-of-time filter.
  NdirectOptions seq;
  seq.fuse_packing = false;
  seq.aot_filter = true;
  EXPECT_TRUE(allclose(ndirect_conv(in, f, p, seq), ref));

  // Random valid forced register block.
  const auto blocks = feasible_register_blocks(p.S);
  NdirectOptions forced;
  forced.force_rb =
      blocks[std::uniform_int_distribution<std::size_t>(
          0, blocks.size() - 1)(rng)];
  EXPECT_TRUE(allclose(ndirect_conv(in, f, p, forced), ref))
      << "vw=" << forced.force_rb.vw << " vk=" << forced.force_rb.vk;

  // NHWC path.
  const NdirectConv conv(p);
  EXPECT_TRUE(
      allclose(nhwc_to_nchw(conv.run_nhwc(nchw_to_nhwc(in), f)), ref));

  // Multi-threaded grid.
  ThreadPool pool(3);
  NdirectOptions mt;
  mt.pool = &pool;
  mt.threads = 3;
  EXPECT_TRUE(allclose(ndirect_conv(in, f, p, mt), ref));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomShapeFuzz, ::testing::Range(0, 40));

// ----------------------------------------------------------------------
// DAG fuzzer: concurrent == sequential, bitwise, on random topologies
// ----------------------------------------------------------------------

/// One fuzz iteration: build a random branchy DAG (random split/merge/
/// add/concat over conv/relu/pool), run it sequentially once, then
/// assert every concurrent configuration reproduces that output
/// bit-for-bit — the same guarantee the tile scheduler gives within one
/// conv, lifted to whole graphs. Each seed checks:
///   1. the default concurrent executor on a small shared pool,
///   2. repeated runs (schedule nondeterminism must not surface),
///   3. an OVERSUBSCRIBED pool (threads > cores) with seeded
///      sub-rectangle budgets + stealers from plan_concurrency.
class DagFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DagFuzz, ConcurrentExecutionBitwiseIdenticalToSequential) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  // Sweep the input batch across the sizes the serving layer coalesces
  // to (single request, partial batch, full batch) — the executor
  // guarantees must hold at every N, not just the generator's default.
  static constexpr int kBatches[] = {1, 3, 8};
  auto g = testgen::build_random_dag(seed, kBatches[seed % 3]);
  const TensorShape& in_shape = g->shape_of(0);
  Tensor input =
      make_input_nchw(in_shape.N, in_shape.C, in_shape.H, in_shape.W);
  fill_random(input, seed * 31 + 7);

  GraphRunOptions seq;
  seq.concurrent = false;
  const Tensor expected = g->run(input, seq);
  const std::size_t bytes = expected.size() * sizeof(float);

  ThreadPool pool(3);
  g->set_conv_pool(&pool);
  for (int rep = 0; rep < 2; ++rep) {
    const Tensor got = g->run(input, {});
    ASSERT_EQ(got.size(), expected.size());
    ASSERT_EQ(std::memcmp(got.data(), expected.data(), bytes), 0)
        << "seed " << seed << " rep " << rep;
  }

  // Oversubscribed pool + explicit concurrency plan: more pool threads
  // than cores, convs seeded with sub-rectangles, remainder stealing.
  const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
  ThreadPool wide(2 * hc + 1);
  g->set_conv_pool(&wide);
  g->plan_concurrency();
  const Tensor wide_out = g->run(input, {});
  ASSERT_EQ(wide_out.size(), expected.size());
  ASSERT_EQ(std::memcmp(wide_out.data(), expected.data(), bytes), 0)
      << "seed " << seed << " oversubscribed";
}

INSTANTIATE_TEST_SUITE_P(Topologies, DagFuzz, ::testing::Range(0, 110));

// ----------------------------------------------------------------------
// Batch invariance: graph(N=k) slice i == graph(N=1) on image i
// ----------------------------------------------------------------------

/// The premise the serving layer's dynamic batching stands on: the same
/// seed built at batch k computes, for every slice of a batched input,
/// bitwise the same output as the batch-1 build on that image alone.
/// Holds because conv weights derive from (seed, K, C, R, S) — never N —
/// and the tile scheduler keeps every output element's reduction inside
/// one tile claim regardless of N (DESIGN.md §10).
class DagBatchInvariance : public ::testing::TestWithParam<int> {};

TEST_P(DagBatchInvariance, BatchedSlicesMatchSingleImageRuns) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const int k = 2 + GetParam() % 3;  // batch 2..4
  auto g1 = testgen::build_random_dag(seed, 1);
  auto gk = testgen::build_random_dag(seed, k);
  const TensorShape s1 = g1->shape_of(0);
  ASSERT_EQ(gk->shape_of(0).N, k);
  ASSERT_EQ(gk->node_count(), g1->node_count());

  // Distinct random image per slice, assembled into the batched input.
  const std::size_t per_in = static_cast<std::size_t>(s1.elems());
  Tensor batched = make_input_nchw(k, s1.C, s1.H, s1.W);
  std::vector<Tensor> singles;
  for (int i = 0; i < k; ++i) {
    Tensor img = make_input_nchw(1, s1.C, s1.H, s1.W);
    fill_random(img, seed * 131 + static_cast<std::uint64_t>(i));
    std::memcpy(batched.data() + static_cast<std::size_t>(i) * per_in,
                img.data(), per_in * sizeof(float));
    singles.push_back(std::move(img));
  }

  const Tensor out_k = gk->run(batched);
  const std::size_t per_out = out_k.size() / static_cast<std::size_t>(k);
  for (int i = 0; i < k; ++i) {
    const Tensor out_1 = g1->run(singles[static_cast<std::size_t>(i)]);
    ASSERT_EQ(out_1.size(), per_out);
    ASSERT_EQ(std::memcmp(out_1.data(),
                          out_k.data() +
                              static_cast<std::size_t>(i) * per_out,
                          per_out * sizeof(float)),
              0)
        << "seed " << seed << " slice " << i << " of batch " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, DagBatchInvariance,
                         ::testing::Range(0, 24));

// ----------------------------------------------------------------------
// Public-API validation
// ----------------------------------------------------------------------

TEST(ApiValidation, InvalidParamsThrow) {
  ConvParams bad{.N = 1, .C = 1, .H = 2, .W = 2, .K = 1,
                 .R = 5, .S = 5, .str = 1, .pad = 0};
  EXPECT_THROW(NdirectConv conv(bad), std::invalid_argument);
  bad = {.N = 0, .C = 1, .H = 2, .W = 2, .K = 1,
         .R = 1, .S = 1, .str = 1, .pad = 0};
  EXPECT_THROW(NdirectConv conv(bad), std::invalid_argument);
}

TEST(ApiValidation, MismatchedTensorsThrow) {
  const ConvParams p{.N = 1, .C = 4, .H = 8, .W = 8, .K = 4,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const NdirectConv conv(p);
  Tensor good_in = make_input_nchw(1, 4, 8, 8);
  Tensor good_f = make_filter_kcrs(4, 4, 3, 3);
  good_in.fill_zero();
  good_f.fill_zero();

  Tensor wrong_c = make_input_nchw(1, 5, 8, 8);
  wrong_c.fill_zero();
  EXPECT_THROW((void)conv.run(wrong_c, good_f), std::invalid_argument);

  Tensor wrong_k = make_filter_kcrs(8, 4, 3, 3);
  wrong_k.fill_zero();
  EXPECT_THROW((void)conv.run(good_in, wrong_k), std::invalid_argument);

  // NHWC tensor passed to the NCHW entry point.
  Tensor nhwc = make_input_nhwc(1, 8, 8, 4);
  nhwc.fill_zero();
  EXPECT_THROW((void)conv.run(nhwc, good_f), std::invalid_argument);

  // And vice versa.
  EXPECT_THROW((void)conv.run_nhwc(good_in, good_f),
               std::invalid_argument);

  // The happy path still works.
  EXPECT_NO_THROW((void)conv.run(good_in, good_f));
}

}  // namespace
}  // namespace ndirect
