// PMU backend (runtime/perf_counters.h): null-backend fallback, delta
// arithmetic, runtime gating, and the engine integration that fills the
// Counter::kPmu* telemetry rows. Hardware-dependent assertions skip
// when perf_event_open is unavailable (non-Linux, perf_event_paranoid,
// seccomp) — the fallback tests run everywhere, which is exactly the
// acceptance contract: binaries behave identically with zeroed fields.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "core/ndirect.h"
#include "platform/workloads.h"
#include "runtime/perf_counters.h"
#include "runtime/telemetry.h"
#include "runtime/thread_pool.h"
#include "tensor/rng.h"

namespace ndirect {
namespace {

/// Restores the process PMU mode on scope exit so a test that flips it
/// cannot leak into later tests (mirrors telemetry_test's guards).
struct PmuGuard {
  int saved = pmu_mode();
  ~PmuGuard() { set_pmu_mode(saved); }
};

ConvParams small_conv() {
  return {.N = 1, .C = 16, .H = 20, .W = 20, .K = 32, .R = 3, .S = 3,
          .str = 1, .pad = 1};
}

/// Run one conv with a telemetry sink and return the snapshot.
TelemetrySnapshot run_with_telemetry(const ConvParams& p,
                                     bool fuse_packing = false) {
  Tensor input = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor filter = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(input, 11);
  fill_random(filter, 12);
  TelemetrySnapshot snap;
  NdirectOptions opts;
  opts.telemetry = &snap;
  opts.fuse_packing = fuse_packing;
  const NdirectConv conv(p, opts);
  (void)conv.run(input, filter);
  return snap;
}

// ----------------------------------------------------------------------
// Null backend / fallback
// ----------------------------------------------------------------------

TEST(PmuNullBackend, UnopenedCountersReadZeroWithoutCrashing) {
  PmuThreadCounters counters;
  EXPECT_FALSE(counters.active());
  for (int i = 0; i < kPmuEventCount; ++i)
    EXPECT_FALSE(counters.event_available(static_cast<PmuEvent>(i)));
  const PmuSample s = counters.read();
  EXPECT_FALSE(s.valid);
  for (int i = 0; i < kPmuEventCount; ++i)
    EXPECT_EQ(s.v[i], 0u);
  counters.close();  // idempotent on a never-opened group
  EXPECT_FALSE(counters.active());
}

TEST(PmuNullBackend, DeltaOfInvalidSamplesIsInvalidAndZero) {
  PmuSample a, b;
  b.valid = true;
  b.v[0] = 100;
  const PmuSample d = pmu_delta(a, b);
  EXPECT_FALSE(d.valid);
  for (int i = 0; i < kPmuEventCount; ++i)
    EXPECT_EQ(d.v[i], 0u);
}

TEST(PmuSampleTest, DeltaSubtractsPerEventAndSaturates) {
  PmuSample a, b;
  a.valid = b.valid = true;
  a.v[0] = 10;
  b.v[0] = 25;
  a.v[1] = 50;
  b.v[1] = 40;  // multiplex-scaled counters can regress
  const PmuSample d = pmu_delta(a, b);
  ASSERT_TRUE(d.valid);
  EXPECT_EQ(d.value(PmuEvent::kCycles), 15u);
  EXPECT_EQ(d.value(PmuEvent::kInstructions), 0u);  // saturated
}

TEST(PmuModeTest, SetClampsAndCompiledOutStaysZero) {
  PmuGuard guard;
  set_pmu_mode(7);
  EXPECT_EQ(pmu_mode(), kPmuCompiled ? 2 : 0);
  set_pmu_mode(-3);
  EXPECT_EQ(pmu_mode(), 0);
  set_pmu_mode(1);
  EXPECT_EQ(pmu_mode(), kPmuCompiled ? 1 : 0);
}

TEST(PmuEventNames, AreStableSnakeCase) {
  EXPECT_STREQ(pmu_event_name(PmuEvent::kCycles), "cycles");
  EXPECT_STREQ(pmu_event_name(PmuEvent::kL1DMisses), "l1d_misses");
  EXPECT_STREQ(pmu_event_name(PmuEvent::kStalledCycles),
               "stalled_cycles");
}

// ----------------------------------------------------------------------
// Hardware sanity (skipped when the host forbids perf_event_open)
// ----------------------------------------------------------------------

TEST(PmuHardware, CountsInstructionsAcrossParallelWork) {
  if (!pmu_available()) GTEST_SKIP() << "perf_event_open unavailable";
  ThreadPool pool(2);
  std::atomic<std::uint64_t> total_instr{0};
  std::atomic<int> active_groups{0};
  std::atomic<int> instr_groups{0};
  pool.run(2, [&](std::size_t) {
    PmuThreadCounters& counters = this_thread_pmu();
    if (!counters.open()) return;
    active_groups.fetch_add(1);
    if (counters.event_available(PmuEvent::kInstructions))
      instr_groups.fetch_add(1);
    const PmuSample t0 = counters.read();
    // Enough user-space work to register (volatile defeats DCE).
    volatile double acc = 0;
    for (int i = 0; i < 100000; ++i) acc = acc + 1.0;
    const PmuSample d = pmu_delta(t0, counters.read());
    EXPECT_TRUE(d.valid);
    EXPECT_GT(d.value(PmuEvent::kCycles), 0u);
    total_instr.fetch_add(d.value(PmuEvent::kInstructions));
  });
  // pmu_available() means groups open; each thread measured its own.
  EXPECT_GT(active_groups.load(), 0);
  if (instr_groups.load() > 0) EXPECT_GT(total_instr.load(), 0u);
}

// ----------------------------------------------------------------------
// Engine integration: the acceptance contract, one ctest case each way
// ----------------------------------------------------------------------

TEST(PmuEngine, DisabledModeYieldsZeroedPmuFields) {
  if (!telemetry_enabled()) GTEST_SKIP() << "telemetry disabled";
  PmuGuard guard;
  set_pmu_mode(0);
  const TelemetrySnapshot snap = run_with_telemetry(small_conv());
  ASSERT_FALSE(snap.empty());
  EXPECT_FALSE(snap.has_pmu());
  EXPECT_EQ(snap.total(Counter::kPmuCycles), 0u);
  EXPECT_EQ(snap.total(Counter::kPmuInstructions), 0u);
  EXPECT_EQ(snap.total(Counter::kPmuL1DMisses), 0u);
  EXPECT_EQ(snap.total(Counter::kPmuLLCMisses), 0u);
  EXPECT_EQ(snap.total(Counter::kPmuStalledCycles), 0u);
  // The non-PMU telemetry is unaffected either way.
  EXPECT_GT(snap.total(Counter::kTilesClaimed), 0u);
}

TEST(PmuEngine, EnabledModeFillsPerTaskDeltas) {
  if (!telemetry_enabled()) GTEST_SKIP() << "telemetry disabled";
  if (!pmu_available()) GTEST_SKIP() << "perf_event_open unavailable";
  PmuGuard guard;
  set_pmu_mode(1);
  const TelemetrySnapshot snap = run_with_telemetry(small_conv());
  ASSERT_FALSE(snap.empty());
  EXPECT_TRUE(snap.has_pmu());
  EXPECT_GT(snap.total(Counter::kPmuCycles), 0u);
  // Mode 1 never attributes phases.
  EXPECT_EQ(snap.total(Counter::kPmuPackL1DMisses), 0u);
  EXPECT_EQ(snap.total(Counter::kPmuMicroL1DMisses), 0u);
}

TEST(PmuEngine, PhaseModeSplitsL1DConservatively) {
  if (!telemetry_enabled()) GTEST_SKIP() << "telemetry disabled";
  if (!pmu_available()) GTEST_SKIP() << "perf_event_open unavailable";
  PmuGuard guard;
  set_pmu_mode(2);
  const TelemetrySnapshot snap =
      run_with_telemetry(small_conv(), /*fuse_packing=*/false);
  ASSERT_FALSE(snap.empty());
  EXPECT_TRUE(snap.has_pmu());
  // Per construction pack + micro == the task L1D total (the split is
  // clamped against the same group's task delta), so the totals agree
  // exactly — including the all-zero case where L1D was unavailable.
  EXPECT_EQ(snap.total(Counter::kPmuPackL1DMisses) +
                snap.total(Counter::kPmuMicroL1DMisses),
            snap.total(Counter::kPmuL1DMisses));
}

TEST(PmuSnapshot, MergeConservesPmuCounters) {
  TelemetrySnapshot a, b;
  a.workers.resize(1);
  b.workers.resize(2);
  a.workers[0].v[static_cast<int>(Counter::kPmuCycles)] = 100;
  b.workers[0].v[static_cast<int>(Counter::kPmuCycles)] = 40;
  b.workers[1].v[static_cast<int>(Counter::kPmuCycles)] = 60;
  b.workers[1].v[static_cast<int>(Counter::kPmuLLCMisses)] = 7;
  a.merge(b);
  ASSERT_EQ(a.workers.size(), 2u);
  EXPECT_EQ(a.total(Counter::kPmuCycles), 200u);
  EXPECT_EQ(a.total(Counter::kPmuLLCMisses), 7u);
  EXPECT_TRUE(a.has_pmu());
}

TEST(PmuSnapshot, JsonCarriesPmuCountersAndPerWorkerMisses) {
  TelemetrySnapshot snap;
  snap.workers.resize(1);
  snap.workers[0].v[static_cast<int>(Counter::kPmuL1DMisses)] = 123;
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"pmu_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"pmu_l1d_misses\": 123"), std::string::npos);
  EXPECT_NE(json.find("\"l1d_misses\": 123"), std::string::npos);
  EXPECT_NE(json.find("\"llc_misses\": 0"), std::string::npos);
}

}  // namespace
}  // namespace ndirect
