// Correctness of every baseline convolution against Algorithm 1.
#include <gtest/gtest.h>

#include "baselines/acl_direct.h"
#include "baselines/acl_gemm.h"
#include "baselines/im2col_conv.h"
#include "baselines/indirect_conv.h"
#include "baselines/naive_conv.h"
#include "baselines/nchwc_conv.h"
#include "conv_shapes.h"
#include "tensor/compare.h"
#include "tensor/rng.h"
#include "tensor/transforms.h"

namespace ndirect {
namespace {

struct ConvInputs {
  Tensor input;
  Tensor filter;
  Tensor reference;
};

ConvInputs make_case(const ConvParams& p, std::uint64_t seed) {
  ConvInputs c{make_input_nchw(p.N, p.C, p.H, p.W),
               make_filter_kcrs(p.K, p.C, p.R, p.S), Tensor{}};
  fill_random(c.input, seed);
  fill_random(c.filter, seed + 1);
  c.reference = naive_conv_nchw(c.input, c.filter, p);
  return c;
}

TEST(NaiveConv, IdentityKernelCopiesInput) {
  // A single-channel 1x1 filter of value 1 must reproduce the input.
  const ConvParams p{.N = 1, .C = 1, .H = 4, .W = 5, .K = 1,
                     .R = 1, .S = 1, .str = 1, .pad = 0};
  Tensor in = make_input_nchw(1, 1, 4, 5);
  fill_pattern(in);
  Tensor f = make_filter_kcrs(1, 1, 1, 1);
  f.fill(1.0f);
  const Tensor out = naive_conv_nchw(in, f, p);
  EXPECT_TRUE(allclose(out, in, 0.0, 0.0));
}

TEST(NaiveConv, KnownAnswer3x3) {
  // All-ones 3x3 input and filter, no pad: single output = 9.
  const ConvParams p{.N = 1, .C = 1, .H = 3, .W = 3, .K = 1,
                     .R = 3, .S = 3, .str = 1, .pad = 0};
  Tensor in = make_input_nchw(1, 1, 3, 3);
  in.fill(1.0f);
  Tensor f = make_filter_kcrs(1, 1, 3, 3);
  f.fill(1.0f);
  const Tensor out = naive_conv_nchw(in, f, p);
  ASSERT_EQ(out.element_count(), 1);
  EXPECT_FLOAT_EQ(out[0], 9.0f);
}

TEST(NaiveConv, PaddingContributesZero) {
  // With pad=1, the corner output sees only 4 of the 9 filter taps.
  const ConvParams p{.N = 1, .C = 1, .H = 3, .W = 3, .K = 1,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(1, 1, 3, 3);
  in.fill(1.0f);
  Tensor f = make_filter_kcrs(1, 1, 3, 3);
  f.fill(1.0f);
  const Tensor out = naive_conv_nchw(in, f, p);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 4.0f);  // corner
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 1), 6.0f);  // edge
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 9.0f);  // center
}

TEST(NaiveConv, NhwcAgreesWithNchw) {
  for (const ConvParams& p : quick_conv_shapes()) {
    Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
    Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
    fill_random(in, 100);
    fill_random(f, 101);
    const Tensor ref = naive_conv_nchw(in, f, p);
    const Tensor out_nhwc =
        naive_conv_nhwc(nchw_to_nhwc(in), kcrs_to_krsc(f), p);
    const Tensor out = nhwc_to_nchw(out_nhwc);
    EXPECT_TRUE(allclose(out, ref))
        << p.to_string() << " " << compare_tensors(out, ref).to_string();
  }
}

class BaselineConvSweep : public ::testing::TestWithParam<ConvParams> {};

TEST_P(BaselineConvSweep, Im2colMatchesNaive) {
  const ConvParams p = GetParam();
  const ConvInputs c = make_case(p, 7);
  const Tensor out = im2col_conv_nchw(c.input, c.filter, p);
  EXPECT_TRUE(allclose(out, c.reference))
      << compare_tensors(out, c.reference).to_string();
}

TEST_P(BaselineConvSweep, NchwcMatchesNaive) {
  const ConvParams p = GetParam();
  const ConvInputs c = make_case(p, 8);
  const Tensor out = nchwc_conv_nchw(c.input, c.filter, p);
  EXPECT_TRUE(allclose(out, c.reference))
      << compare_tensors(out, c.reference).to_string();
}

TEST_P(BaselineConvSweep, IndirectMatchesNaive) {
  const ConvParams p = GetParam();
  const ConvInputs c = make_case(p, 9);
  const Tensor out = indirect_conv_nchw(c.input, c.filter, p);
  EXPECT_TRUE(allclose(out, c.reference))
      << compare_tensors(out, c.reference).to_string();
}

TEST_P(BaselineConvSweep, AclGemmMatchesNaive) {
  const ConvParams p = GetParam();
  const ConvInputs c = make_case(p, 11);
  const Tensor out = acl_gemm_conv_nchw(c.input, c.filter, p);
  EXPECT_TRUE(allclose(out, c.reference))
      << compare_tensors(out, c.reference).to_string();
}

TEST_P(BaselineConvSweep, AclDirectMatchesNaive) {
  const ConvParams p = GetParam();
  const ConvInputs c = make_case(p, 10);
  const Tensor out = acl_direct_conv_nchw(c.input, c.filter, p);
  EXPECT_TRUE(allclose(out, c.reference))
      << compare_tensors(out, c.reference).to_string();
}

INSTANTIATE_TEST_SUITE_P(Shapes, BaselineConvSweep,
                         ::testing::ValuesIn(correctness_conv_shapes()));

TEST(Im2col, ColumnMatrixMatchesGatherReference) {
  const ConvParams p{.N = 1, .C = 2, .H = 5, .W = 6, .K = 1,
                     .R = 3, .S = 3, .str = 2, .pad = 1};
  Tensor in = make_input_nchw(1, p.C, p.H, p.W);
  fill_random(in, 11);
  const int P = p.P(), Q = p.Q();
  std::vector<float> col(static_cast<std::size_t>(p.C) * p.R * p.S * P * Q);
  im2col_nchw(in.data(), p, col.data());
  for (int c = 0; c < p.C; ++c)
    for (int r = 0; r < p.R; ++r)
      for (int s = 0; s < p.S; ++s)
        for (int oj = 0; oj < P; ++oj)
          for (int oi = 0; oi < Q; ++oi) {
            const int ij = p.str * oj + r - p.pad;
            const int ii = p.str * oi + s - p.pad;
            const float expect =
                (ij < 0 || ij >= p.H || ii < 0 || ii >= p.W)
                    ? 0.0f
                    : in.at4(0, c, ij, ii);
            const std::size_t idx =
                static_cast<std::size_t>(((c * p.R + r) * p.S + s)) * P * Q +
                static_cast<std::size_t>(oj) * Q + oi;
            ASSERT_EQ(col[idx], expect)
                << "c=" << c << " r=" << r << " s=" << s << " oj=" << oj
                << " oi=" << oi;
          }
}

TEST(Im2col, IdentityDetection) {
  EXPECT_TRUE(im2col_is_identity(
      {.N = 1, .C = 1, .H = 4, .W = 4, .K = 1, .R = 1, .S = 1, .str = 1, .pad = 0}));
  EXPECT_FALSE(im2col_is_identity(
      {.N = 1, .C = 1, .H = 4, .W = 4, .K = 1, .R = 3, .S = 3, .str = 1, .pad = 1}));
  EXPECT_FALSE(im2col_is_identity(
      {.N = 1, .C = 1, .H = 4, .W = 4, .K = 1, .R = 1, .S = 1, .str = 2, .pad = 0}));
}

TEST(Im2col, PhaseTimerSeparatesIm2colFromGemm) {
  const ConvParams p{.N = 1, .C = 8, .H = 16, .W = 16, .K = 8,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const ConvInputs c = make_case(p, 12);
  PhaseTimer pt;
  Im2colOptions opts;
  opts.phase_timer = &pt;
  (void)im2col_conv_nchw(c.input, c.filter, p, &opts);
  EXPECT_GT(pt.seconds("im2col"), 0.0);
  EXPECT_GT(pt.seconds("micro-kernel"), 0.0);
}

TEST(Im2col, OneByOneSkipsIm2colPhase) {
  const ConvParams p{.N = 1, .C = 8, .H = 16, .W = 16, .K = 8,
                     .R = 1, .S = 1, .str = 1, .pad = 0};
  const ConvInputs c = make_case(p, 13);
  PhaseTimer pt;
  Im2colOptions opts;
  opts.phase_timer = &pt;
  (void)im2col_conv_nchw(c.input, c.filter, p, &opts);
  EXPECT_EQ(pt.seconds("im2col"), 0.0);
}

TEST(NchwcConv, BlockedOutputLayout) {
  const ConvParams p{.N = 1, .C = 4, .H = 6, .W = 6, .K = 8,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, 14);
  fill_random(f, 15);
  const NchwcConvConfig cfg{};
  const Tensor in_b = nchwc_transform_input(in, p, cfg.c_block);
  const Tensor f_b = nchwc_transform_filter(f, p, cfg.c_block, cfg.k_block);
  const Tensor out_b = nchwc_conv_blocked(in_b, f_b, p, cfg);
  EXPECT_EQ(out_b.rank(), 5);
  EXPECT_EQ(out_b.dim(0), p.N);
  EXPECT_EQ(out_b.dim(1), p.K / cfg.k_block);
  EXPECT_EQ(out_b.dim(4), cfg.k_block);
}

TEST(NchwcConv, TransformFoldsPadding) {
  const ConvParams p{.N = 1, .C = 4, .H = 3, .W = 3, .K = 4,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  in.fill(1.0f);
  const Tensor blocked = nchwc_transform_input(in, p, 4);
  EXPECT_EQ(blocked.dim(2), p.H + 2);  // padded height
  EXPECT_EQ(blocked.dim(3), p.W + 2);
  // Border ring must be zero.
  for (int w = 0; w < 5; ++w)
    for (int ci = 0; ci < 4; ++ci) {
      EXPECT_EQ(blocked.data()[(0 * 5 + w) * 4 + ci], 0.0f);  // top row
    }
}

TEST(IndirectConv, OperatorIsReusableAcrossBatches) {
  const ConvParams p{.N = 2, .C = 6, .H = 8, .W = 8, .K = 9,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, 16);
  fill_random(f, 17);
  const Tensor ref = naive_conv_nchw(in, f, p);

  const Tensor in_nhwc = nchw_to_nhwc(in);
  IndirectConvOperator op(kcrs_to_krsc(f), p);
  const Tensor out1 = op.run(in_nhwc);
  const Tensor out2 = op.run(in_nhwc);  // second run, same operator
  EXPECT_TRUE(allclose(nhwc_to_nchw(out1), ref));
  EXPECT_TRUE(allclose(nhwc_to_nchw(out2), ref));
}

}  // namespace
}  // namespace ndirect
