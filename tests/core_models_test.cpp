// Tests for nDirect's analytical models: the register-block solver
// (Eq. 3/4), the cache-tiling solver (Eq. 1/2), the thread-mapping model
// (Eq. 5/6), and the alpha microbenchmark.
#include <gtest/gtest.h>

#include <cmath>

#include "core/alpha.h"
#include "core/fai.h"
#include "core/threading.h"
#include "core/tiling.h"
#include "simd/vec128.h"

namespace ndirect {
namespace {

// ----------------------------------------------------------------------
// Eq. 3 / Eq. 4: register blocking
// ----------------------------------------------------------------------

TEST(Fai, RegisterCostMatchesEq3ForPaperExample) {
  // Vw=12, Vk=8, S=3: ceil(14/4) + 8/4 + 96/4 = 4 + 2 + 24 = 30.
  EXPECT_EQ(register_cost(12, 8, 3), 30);
}

TEST(Fai, FaiMatchesEq4ForPaperExample) {
  // FAI = 2*3*12*8 / (12+3-1 + 3*8) = 576/38.
  EXPECT_NEAR(fai_microkernel(12, 8, 3), 576.0 / 38.0, 1e-12);
}

TEST(Fai, FaiEqualsBruteForceOpAndLoadCount) {
  // Property: Eq. 4 must equal (flops) / (elements loaded) counted
  // directly from the micro-kernel's structure: per L9 iteration the
  // kernel loads (Vw+S-1) input floats once and Vk filter floats per s,
  // and performs 2*Vw*Vk flops per s.
  for (int S : {1, 3, 5, 7}) {
    for (const RegisterBlock& b : feasible_register_blocks(S)) {
      const double flops = 2.0 * b.vw * b.vk * S;
      const double loads = (b.vw + S - 1) + static_cast<double>(S) * b.vk;
      EXPECT_NEAR(fai_microkernel(b.vw, b.vk, S), flops / loads, 1e-12);
    }
  }
}

TEST(Fai, FeasibleBlocksRespectBudgetAndAlignment) {
  for (int S : {1, 2, 3, 5, 7}) {
    const auto blocks = feasible_register_blocks(S);
    EXPECT_FALSE(blocks.empty());
    for (const RegisterBlock& b : blocks) {
      EXPECT_LE(register_cost(b.vw, b.vk, S), kNumVecRegs);
      EXPECT_EQ(b.vk % kVecLanes, 0);
      EXPECT_EQ(b.vw % kVecLanes, 0);
    }
  }
}

TEST(Fai, SolverReproducesPaperChoiceFor3x3) {
  // Section 5.2.3: "the optimal value of Vk and Vw are 8 and 12".
  const RegisterBlock b = solve_register_block(3);
  EXPECT_EQ(b.vw, 12);
  EXPECT_EQ(b.vk, 8);
}

TEST(Fai, SolverIsOptimalOverEnumeration) {
  for (int S : {1, 2, 3, 5, 7}) {
    const RegisterBlock best = solve_register_block(S);
    const double best_fai = fai_microkernel(best.vw, best.vk, S);
    for (const RegisterBlock& b : feasible_register_blocks(S)) {
      EXPECT_LE(fai_microkernel(b.vw, b.vk, S), best_fai + 1e-9)
          << "S=" << S << " rival vw=" << b.vw << " vk=" << b.vk;
    }
  }
}

TEST(Fai, SolverNearContinuousLagrangeOptimum) {
  // The paper solves the relaxed problem with Lagrange multipliers; the
  // integer solution's FAI must be within 20% of the relaxed optimum
  // FAI evaluated on a fine grid of real-valued feasible points.
  for (int S : {1, 3, 5}) {
    double relaxed_best = 0;
    for (double vw = 1; vw <= 32; vw += 0.25) {
      for (double vk = 1; vk <= 32; vk += 0.25) {
        const double regs = (vw + S - 1) / 4 + vk / 4 + vw * vk / 4;
        if (regs > kNumVecRegs) continue;
        const double fai = 2.0 * S * vw * vk / ((vw + S - 1) + S * vk);
        relaxed_best = std::max(relaxed_best, fai);
      }
    }
    const RegisterBlock b = solve_register_block(S);
    EXPECT_GE(fai_microkernel(b.vw, b.vk, S), 0.8 * relaxed_best)
        << "S=" << S;
  }
}

// ----------------------------------------------------------------------
// Eq. 1 / Eq. 2: cache tiling
// ----------------------------------------------------------------------

CacheInfo paper_cache(std::size_t l1, std::size_t l2, std::size_t l3) {
  CacheInfo c;
  c.l1d = l1;
  c.l2 = l2;
  c.l3 = l3;
  return c;
}

TEST(Tiling, SolutionSatisfiesEq1AndEq2) {
  const RegisterBlock rb{12, 8};
  // Table 3 cache configurations.
  const CacheInfo configs[] = {
      paper_cache(32 << 10, 2 << 20, 0),          // Phytium 2000+
      paper_cache(64 << 10, 512 << 10, 64 << 20), // KP920
      paper_cache(32 << 10, 256 << 10, 32 << 20), // ThunderX2
      paper_cache(32 << 10, 1 << 20, 0),          // RPi 4
  };
  const ConvParams shapes[] = {
      {.N = 1, .C = 64, .H = 56, .W = 56, .K = 64, .R = 3, .S = 3, .str = 1, .pad = 1},
      {.N = 1, .C = 512, .H = 28, .W = 28, .K = 1024, .R = 1, .S = 1, .str = 2, .pad = 0},
      {.N = 1, .C = 3, .H = 224, .W = 224, .K = 64, .R = 7, .S = 7, .str = 2, .pad = 3},
  };
  for (const CacheInfo& cache : configs) {
    for (const ConvParams& p : shapes) {
      const TilingPlan t = solve_tiling(cache, rb, p);
      EXPECT_TRUE(t.satisfies_l1(cache, rb, p.R, p.S))
          << "L1=" << cache.l1d << " " << p.to_string() << " tc=" << t.tc;
      EXPECT_TRUE(t.satisfies_l2(cache, rb, p.R, p.S))
          << "L2=" << cache.l2 << " " << p.to_string() << " tk=" << t.tk;
      EXPECT_GE(t.tc, 1);
      EXPECT_LE(t.tc, p.C);
      EXPECT_EQ(t.tk % rb.vk, 0);
      EXPECT_GE(t.th, 1);
      EXPECT_LE(t.th, p.P());
    }
  }
}

TEST(Tiling, TcIsMaximalUnderEq1) {
  // Growing Tc by one channel must violate Eq. 1 (unless capped by C).
  const RegisterBlock rb{12, 8};
  const CacheInfo cache = paper_cache(32 << 10, 2 << 20, 0);
  const ConvParams p{.N = 1, .C = 4096, .H = 56, .W = 56, .K = 64,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const TilingPlan t = solve_tiling(cache, rb, p);
  ASSERT_LT(t.tc, p.C);  // not capped
  TilingPlan bigger = t;
  bigger.tc = t.tc + 1;
  EXPECT_FALSE(bigger.satisfies_l1(cache, rb, p.R, p.S));
}

TEST(Tiling, NoL3MeansNoRowBlocking) {
  const RegisterBlock rb{12, 8};
  const CacheInfo cache = paper_cache(32 << 10, 2 << 20, 0);
  const ConvParams p{.N = 1, .C = 64, .H = 56, .W = 56, .K = 64,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  EXPECT_EQ(solve_tiling(cache, rb, p).th, p.P());
}

TEST(Tiling, SmallerL2ShrinksTk) {
  const RegisterBlock rb{12, 8};
  const ConvParams p{.N = 1, .C = 256, .H = 14, .W = 14, .K = 1024,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const TilingPlan big = solve_tiling(paper_cache(32 << 10, 2 << 20, 0), rb, p);
  const TilingPlan small =
      solve_tiling(paper_cache(32 << 10, 256 << 10, 0), rb, p);
  EXPECT_LT(small.tk, big.tk);
}

TEST(Tiling, TinyCacheStillProducesValidTiles) {
  const RegisterBlock rb{12, 8};
  const CacheInfo cache = paper_cache(4 << 10, 16 << 10, 0);
  const ConvParams p{.N = 1, .C = 512, .H = 7, .W = 7, .K = 2048,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const TilingPlan t = solve_tiling(cache, rb, p);
  EXPECT_GE(t.tc, 1);
  EXPECT_GE(t.tk, rb.vk);
}

// ----------------------------------------------------------------------
// Eq. 5 / Eq. 6: thread mapping
// ----------------------------------------------------------------------

TEST(Threading, ContinuousOptimumMatchesEq6) {
  const ConvParams p{.N = 64, .C = 64, .H = 56, .W = 56, .K = 64,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const double alpha = 2.0;
  const double expect = std::sqrt(2.0 * 64 * 56 * 56 / (64.0 * 9));
  EXPECT_NEAR(ptn_continuous(p, alpha), expect, 1e-9);
}

TEST(Threading, FaiPeaksAtContinuousOptimum) {
  const ConvParams p{.N = 64, .C = 64, .H = 56, .W = 56, .K = 256,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const double alpha = 3.0;
  const double star = ptn_continuous(p, alpha);
  const double peak = thread_fai(p, alpha, static_cast<int>(star));
  EXPECT_GT(peak, thread_fai(p, alpha, 1) * 0.999);
  EXPECT_GT(peak, thread_fai(p, alpha, static_cast<int>(star * 8)));
}

TEST(Threading, MappingMultipliesToThreadCount) {
  const ConvParams p{.N = 64, .C = 64, .H = 56, .W = 56, .K = 256,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  for (int threads : {1, 2, 4, 8, 16, 32, 64}) {
    const ThreadMapping m = solve_thread_mapping(p, 2.0, threads);
    EXPECT_EQ(m.total(), threads) << "threads=" << threads;
    EXPECT_GE(m.ptn, 1);
    EXPECT_GE(m.ptk, 1);
  }
}

TEST(Threading, MappingIsBestDivisorByEq5) {
  const ConvParams p{.N = 64, .C = 512, .H = 14, .W = 14, .K = 512,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const double alpha = 2.0;
  const int threads = 64;
  const ThreadMapping m = solve_thread_mapping(p, alpha, threads);
  for (int ptn = 1; ptn <= threads; ++ptn) {
    if (threads % ptn != 0) continue;
    if (std::int64_t{ptn} > std::int64_t{p.N} * p.P()) continue;
    if (threads / ptn > p.K) continue;
    EXPECT_LE(thread_fai(p, alpha, ptn), thread_fai(p, alpha, m.ptn) + 1e-9)
        << "ptn=" << ptn;
  }
}

TEST(Threading, LargeBatchShiftsThreadsTowardN) {
  // More batch rows -> the model spends more threads on PTn.
  const ConvParams small_n{.N = 1, .C = 64, .H = 14, .W = 14, .K = 1024,
                           .R = 1, .S = 1, .str = 1, .pad = 0};
  const ConvParams large_n{.N = 64, .C = 64, .H = 14, .W = 14, .K = 1024,
                           .R = 1, .S = 1, .str = 1, .pad = 0};
  const ThreadMapping ms = solve_thread_mapping(small_n, 2.0, 16);
  const ThreadMapping ml = solve_thread_mapping(large_n, 2.0, 16);
  EXPECT_GE(ml.ptn, ms.ptn);
}

TEST(Threading, LargeKShiftsThreadsTowardK) {
  const ConvParams small_k{.N = 16, .C = 64, .H = 56, .W = 56, .K = 16,
                           .R = 3, .S = 3, .str = 1, .pad = 1};
  const ConvParams large_k{.N = 16, .C = 64, .H = 56, .W = 56, .K = 2048,
                           .R = 3, .S = 3, .str = 1, .pad = 1};
  const ThreadMapping ms = solve_thread_mapping(small_k, 2.0, 16);
  const ThreadMapping ml = solve_thread_mapping(large_k, 2.0, 16);
  EXPECT_GE(ml.ptk, ms.ptk);
}

TEST(Threading, SingleThreadIsIdentity) {
  const ConvParams p{.N = 4, .C = 16, .H = 8, .W = 8, .K = 32,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const ThreadMapping m = solve_thread_mapping(p, 2.0, 1);
  EXPECT_EQ(m.ptn, 1);
  EXPECT_EQ(m.ptk, 1);
}

TEST(Threading, SlicesTileTheIterationSpace) {
  const ThreadMapping m{4, 3};
  const std::int64_t rows = 103, kblocks = 17;
  std::vector<int> row_hits(rows, 0), k_hits(kblocks, 0);
  for (int tid = 0; tid < m.total(); ++tid) {
    const ThreadSlice s = thread_slice(m, tid, rows, kblocks);
    // Every (row, kblock) pair is covered exactly once across the grid.
    for (std::size_t r = s.rows.begin; r < s.rows.end; ++r) row_hits[r]++;
    for (std::size_t k = s.k_blocks.begin; k < s.k_blocks.end; ++k)
      k_hits[k]++;
  }
  for (std::int64_t r = 0; r < rows; ++r) EXPECT_EQ(row_hits[r], m.ptk);
  for (std::int64_t k = 0; k < kblocks; ++k) EXPECT_EQ(k_hits[k], m.ptn);
}

// ----------------------------------------------------------------------
// Alpha microbenchmark
// ----------------------------------------------------------------------

TEST(Alpha, MeasurementIsInValidRange) {
  const AlphaResult r = measure_alpha(4u << 20);
  EXPECT_GE(r.alpha, 1.0);
  EXPECT_LE(r.alpha, 16.0);
  EXPECT_GT(r.streaming_gbps, 0.0);
  EXPECT_GT(r.strided_gbps, 0.0);
}

TEST(Alpha, HostAlphaIsCachedAndStable) {
  const double a1 = host_alpha();
  const double a2 = host_alpha();
  EXPECT_EQ(a1, a2);
  EXPECT_GE(a1, 1.0);
}

}  // namespace
}  // namespace ndirect
