// Direct unit tests for the nDirect micro-kernels: each kernel variant
// (generic, runtime-S specialized, fully unrolled, fused) against a
// scalar tile oracle, plus store-path behaviours (NCHW transpose, NHWC
// direct, ragged, accumulate, epilogue).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/fai.h"

#include "core/filter_transform.h"
#include "core/microkernel.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace ndirect {
namespace {

struct TileProblem {
  int vw, vk, tc, R, S, str;
  int packw() const { return (vw - 1) * str + S; }
};

// Scalar oracle: out[w][k] = sum_{c,r,s} pack[c][r][w*str+s] * flt[c][r][s][k].
std::vector<float> oracle(const TileProblem& t,
                          const std::vector<float>& pack,
                          const std::vector<float>& ftile) {
  std::vector<float> out(static_cast<std::size_t>(t.vw) * t.vk, 0.0f);
  for (int c = 0; c < t.tc; ++c)
    for (int r = 0; r < t.R; ++r)
      for (int s = 0; s < t.S; ++s)
        for (int w = 0; w < t.vw; ++w)
          for (int k = 0; k < t.vk; ++k) {
            const float x =
                pack[static_cast<std::size_t>((c * t.R + r)) * t.packw() +
                     w * t.str + s];
            const float f =
                ftile[static_cast<std::size_t>(
                    ((c * t.R + r) * t.S + s)) * t.vk +
                      k];
            out[static_cast<std::size_t>(w) * t.vk + k] += x * f;
          }
  return out;
}

struct TileData {
  std::vector<float> pack;   // +4 slack for whole-vector loads
  std::vector<float> ftile;
  MicroArgs args;
  std::vector<float> out;    // staging [vw][vk], w-major like oracle
};

TileData make_tile(const TileProblem& t, unsigned seed) {
  TileData d;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  d.pack.resize(static_cast<std::size_t>(t.tc) * t.R * t.packw() + 4);
  d.ftile.resize(static_cast<std::size_t>(t.tc) * t.R * t.S * t.vk);
  for (float& v : d.pack) v = dist(rng);
  for (float& v : d.ftile) v = dist(rng);
  d.out.assign(static_cast<std::size_t>(t.vw) * t.vk, 0.0f);

  MicroArgs& a = d.args;
  a.pack = d.pack.data();
  a.pack_c_stride = std::int64_t{t.R} * t.packw();
  a.pack_r_stride = t.packw();
  a.ftile = d.ftile.data();
  a.f_c_stride = std::int64_t{t.R} * t.S * t.vk;
  a.tc = t.tc;
  a.R = t.R;
  a.S = t.S;
  a.str = t.str;
  a.packw = t.packw();
  a.out = d.out.data();
  // Store as [k][w] planes of width vw: out_k_stride = vw, w stride 1
  // (the NCHW shape with P*Q == vw).
  a.out_k_stride = t.vw;
  a.out_w_stride = 1;
  a.wn = t.vw;
  a.kn = t.vk;
  a.accumulate = false;
  return d;
}

// d.out is [k][w]; oracle returns [w][k].
void expect_matches_oracle(const TileProblem& t, const TileData& d,
                           const std::vector<float>& want,
                           float tol = 1e-4f) {
  for (int w = 0; w < t.vw; ++w) {
    for (int k = 0; k < t.vk; ++k) {
      ASSERT_NEAR(d.out[static_cast<std::size_t>(k) * t.vw + w],
                  want[static_cast<std::size_t>(w) * t.vk + k], tol)
          << "w=" << w << " k=" << k;
    }
  }
}

TEST(Microkernel, GenericMatchesOracleAcrossShapes) {
  const TileProblem problems[] = {
      {12, 8, 5, 3, 3, 1}, {8, 12, 7, 1, 1, 1}, {12, 8, 3, 3, 3, 2},
      {4, 4, 2, 5, 5, 1},  {20, 4, 4, 7, 7, 2}, {16, 8, 6, 2, 2, 1},
  };
  unsigned seed = 1;
  for (const TileProblem& t : problems) {
    TileData d = make_tile(t, seed++);
    compute_kernel_generic(d.args, t.vw, t.vk);
    expect_matches_oracle(t, d, oracle(t, d.pack, d.ftile));
  }
}

TEST(Microkernel, RuntimeSpecializedMatchesGeneric) {
  const TileProblem t{12, 8, 6, 3, 3, 1};
  TileData d1 = make_tile(t, 10);
  TileData d2 = make_tile(t, 10);
  ComputeKernelFn fn = find_compute_kernel(t.vw, t.vk);
  ASSERT_NE(fn, nullptr);
  fn(d1.args);
  compute_kernel_generic(d2.args, t.vw, t.vk);
  for (std::size_t i = 0; i < d1.out.size(); ++i) {
    ASSERT_NEAR(d1.out[i], d2.out[i], 1e-5f) << i;
  }
}

TEST(Microkernel, UnrolledMatchesOracleForEveryInstantiation) {
  // Every (vw, vk, S, str) in the unrolled dispatch list.
  struct Inst {
    int vw, vk, S, str;
  };
  const Inst insts[] = {
      {8, 12, 1, 1}, {8, 12, 1, 2},  {12, 8, 1, 1}, {12, 8, 1, 2},
      {12, 8, 3, 1}, {12, 8, 3, 2},  {24, 4, 5, 1}, {24, 4, 5, 2},
      {20, 4, 7, 1}, {20, 4, 7, 2},
  };
  unsigned seed = 20;
  for (const Inst& i : insts) {
    ComputeKernelFn fn = find_unrolled_kernel(i.vw, i.vk, i.S, i.str);
    ASSERT_NE(fn, nullptr) << i.vw << "x" << i.vk << " S" << i.S << " str"
                           << i.str;
    const TileProblem t{i.vw, i.vk, 4, i.S, i.S, i.str};
    TileData d = make_tile(t, seed++);
    fn(d.args);
    expect_matches_oracle(t, d, oracle(t, d.pack, d.ftile));
  }
}

TEST(Microkernel, AccumulateAddsToExistingOutput) {
  const TileProblem t{12, 8, 3, 3, 3, 1};
  TileData d = make_tile(t, 30);
  for (float& v : d.out) v = 2.5f;
  d.args.accumulate = true;
  ComputeKernelFn fn = find_compute_kernel(t.vw, t.vk);
  ASSERT_NE(fn, nullptr);
  fn(d.args);
  const std::vector<float> want = oracle(t, d.pack, d.ftile);
  for (int w = 0; w < t.vw; ++w) {
    for (int k = 0; k < t.vk; ++k) {
      ASSERT_NEAR(d.out[static_cast<std::size_t>(k) * t.vw + w],
                  2.5f + want[static_cast<std::size_t>(w) * t.vk + k],
                  1e-4f);
    }
  }
}

TEST(Microkernel, RaggedStoreTouchesOnlyValidRegion) {
  const TileProblem t{12, 8, 3, 3, 3, 1};
  TileData d = make_tile(t, 31);
  for (float& v : d.out) v = -99.0f;
  d.args.wn = 7;
  d.args.kn = 5;
  ComputeKernelFn fn = find_compute_kernel(t.vw, t.vk);
  fn(d.args);
  const std::vector<float> want = oracle(t, d.pack, d.ftile);
  for (int w = 0; w < t.vw; ++w) {
    for (int k = 0; k < t.vk; ++k) {
      const float got = d.out[static_cast<std::size_t>(k) * t.vw + w];
      if (w < 7 && k < 5) {
        ASSERT_NEAR(got, want[static_cast<std::size_t>(w) * t.vk + k],
                    1e-4f);
      } else {
        ASSERT_EQ(got, -99.0f) << "w=" << w << " k=" << k;
      }
    }
  }
}

TEST(Microkernel, NhwcStoreLayout) {
  // out strides for NHWC: k contiguous, w stride = vk.
  const TileProblem t{8, 8, 2, 3, 3, 1};
  TileData d = make_tile(t, 32);
  d.args.out_k_stride = 1;
  d.args.out_w_stride = t.vk;
  ComputeKernelFn fn = find_compute_kernel(t.vw, t.vk);
  ASSERT_NE(fn, nullptr);
  fn(d.args);
  const std::vector<float> want = oracle(t, d.pack, d.ftile);
  for (int w = 0; w < t.vw; ++w) {
    for (int k = 0; k < t.vk; ++k) {
      ASSERT_NEAR(d.out[static_cast<std::size_t>(w) * t.vk + k],
                  want[static_cast<std::size_t>(w) * t.vk + k], 1e-4f);
    }
  }
}

TEST(Microkernel, EpilogueBiasAndReluInStorePath) {
  const TileProblem t{12, 8, 3, 3, 3, 1};
  TileData d = make_tile(t, 33);
  std::vector<float> bias(static_cast<std::size_t>(t.vk));
  for (int k = 0; k < t.vk; ++k) {
    bias[static_cast<std::size_t>(k)] = 0.5f * static_cast<float>(k - 4);
  }
  d.args.bias = bias.data();
  d.args.relu = true;
  ComputeKernelFn fn = find_compute_kernel(t.vw, t.vk);
  fn(d.args);
  const std::vector<float> want = oracle(t, d.pack, d.ftile);
  for (int w = 0; w < t.vw; ++w) {
    for (int k = 0; k < t.vk; ++k) {
      const float expect = std::max(
          0.0f, want[static_cast<std::size_t>(w) * t.vk + k] +
                    bias[static_cast<std::size_t>(k)]);
      ASSERT_NEAR(d.out[static_cast<std::size_t>(k) * t.vw + w], expect,
                  1e-4f);
    }
  }
}

TEST(Microkernel, FusedKernelPacksAndComputes) {
  // The fused kernel must (a) produce the same tile as pack+compute and
  // (b) leave the pack buffer filled with the gathered window.
  const int C = 5, H = 9, W = 11, R = 3, S = 3;
  Tensor image = make_input_nchw(1, C, H, W);
  fill_random(image, 40);
  const TileProblem t{12, 8, C, R, S, 1};
  TileData d = make_tile(t, 41);

  PackGeometry g;
  g.src = image.data();
  g.chan_stride = H * W;
  g.row_stride = W;
  g.col_stride = 1;
  g.H = H;
  g.W = W;
  g.ih0 = -1;  // window overlaps the top padding
  g.iw0 = -1;

  FusedKernelFn fused = find_fused_kernel(t.vw, t.vk);
  ASSERT_NE(fused, nullptr);
  fused(d.args, g);

  // Reference: standalone pack, then oracle on the packed buffer.
  std::vector<float> ref_pack(
      static_cast<std::size_t>(C) * R * t.packw() + 4);
  pack_window(ref_pack.data(), g, C, R, t.packw());
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(C) * R * t.packw(); ++i) {
    ASSERT_EQ(d.pack[i], ref_pack[i]) << "pack index " << i;
  }
  const std::vector<float> want = oracle(t, d.pack, d.ftile);
  expect_matches_oracle(t, d, want);
}

TEST(Microkernel, DispatchTableConsistency) {
  // Every compute specialization has a fused sibling and vice versa.
  for (int vw = 4; vw <= 24; vw += 4) {
    for (int vk = 4; vk <= 24; vk += 4) {
      EXPECT_EQ(find_compute_kernel(vw, vk) != nullptr,
                find_fused_kernel(vw, vk) != nullptr)
          << vw << "x" << vk;
    }
  }
  // The paper's blocks are specialized.
  EXPECT_NE(find_compute_kernel(12, 8), nullptr);
  EXPECT_NE(find_compute_kernel(8, 12), nullptr);
  // Unrolled lookups reject non-instantiated (S, str) combos.
  EXPECT_EQ(find_unrolled_kernel(12, 8, 2, 1), nullptr);
  EXPECT_EQ(find_unrolled_kernel(12, 8, 3, 3), nullptr);
}

// ---------------------------------------------------------------------
// Policy registry (template-generated kernel table).

TEST(PolicyRegistry, MatchesEq3FeasibilityAndIsComplete) {
  // kernel_block_feasible is the constexpr mirror of Eq. 3; it must
  // agree with the runtime predicate everywhere, including at kernel
  // widths the registry does not instantiate.
  for (int S : {1, 2, 3, 5, 7, 11}) {
    for (int vw = 4; vw <= kMaxVw; vw += 4) {
      for (int vk = 4; vk <= kMaxVk; vk += 4) {
        EXPECT_EQ(kernel_block_feasible(vw, vk, S),
                  register_block_feasible(vw, vk, S))
            << vw << "x" << vk << " S" << S;
      }
    }
  }
  EXPECT_FALSE(kernel_block_feasible(13, 8, 3));  // vw % 4
  EXPECT_FALSE(kernel_block_feasible(12, 6, 3));  // vk % 4
  EXPECT_FALSE(kernel_block_feasible(28, 4, 1));  // vw > kMaxVw

  // The registry instantiates every feasible block for each unrolled S,
  // in two stride variants x two tail modes — nothing missing, nothing
  // extra, no duplicates.
  std::size_t expect = 0;
  for (int S : {1, 3, 5, 7}) {
    for (int vw = 4; vw <= kMaxVw; vw += 4) {
      for (int vk = 4; vk <= kMaxVk; vk += 4) {
        if (kernel_block_feasible(vw, vk, S)) expect += 4;
      }
    }
  }
  const std::vector<KernelEntry>& reg = kernel_registry();
  EXPECT_EQ(reg.size(), expect);
  EXPECT_EQ(reg.size(), 216u);  // 54 blocks x 2 strides x 2 tail modes
  std::set<std::array<int, 5>> seen;
  for (const KernelEntry& e : reg) {
    EXPECT_TRUE(kernel_block_feasible(e.vw, e.vk, e.S))
        << e.vw << "x" << e.vk << " S" << e.S;
    EXPECT_TRUE(e.str == 1 || e.str == 2) << e.str;
    EXPECT_NE(e.compute, nullptr);
    EXPECT_NE(e.fused, nullptr);
    seen.insert({e.vw, e.vk, e.S, e.str, static_cast<int>(e.tail)});
  }
  EXPECT_EQ(seen.size(), reg.size()) << "duplicate registry entries";
}

TEST(PolicyRegistry, BlocksEnumerateTheS1FeasibleSet) {
  // The runtime-S table (what the autotuner samples) covers exactly the
  // S=1 feasible set — the superset, since Eq. 3 cost grows with S.
  const std::vector<RegisterBlock>& blocks = microkernel_blocks();
  EXPECT_EQ(blocks.size(), feasible_register_blocks(1).size());
  EXPECT_EQ(blocks.size(), 14u);
  for (const RegisterBlock& b : blocks) {
    EXPECT_TRUE(register_block_feasible(b.vw, b.vk, 1))
        << b.vw << "x" << b.vk;
    EXPECT_NE(find_compute_kernel(b.vw, b.vk), nullptr);
    EXPECT_NE(find_fused_kernel(b.vw, b.vk), nullptr);
  }
}

TEST(PolicyRegistry, ResolveKernelClassifies) {
  // Registry hit: fully unrolled, separate interior and edge kernels.
  KernelResolution r = resolve_kernel(12, 8, 3, 1);
  EXPECT_EQ(r.cls, KernelClass::kUnrolled);
  EXPECT_STREQ(r.reason, "");
  EXPECT_NE(r.interior, nullptr);
  EXPECT_NE(r.edge, nullptr);
  EXPECT_NE(r.interior_fused, nullptr);
  EXPECT_NE(r.edge_fused, nullptr);
  EXPECT_NE(r.interior, r.edge);

  // S outside {1, 3, 5, 7}: runtime-S specialization, one kernel for
  // both tile kinds.
  r = resolve_kernel(12, 8, 2, 1);
  EXPECT_EQ(r.cls, KernelClass::kSpecialized);
  EXPECT_NE(std::string(r.reason).find("kernel width"), std::string::npos)
      << r.reason;
  EXPECT_NE(r.interior, nullptr);
  EXPECT_EQ(r.interior, r.edge);

  // Stride outside {1, 2}.
  r = resolve_kernel(12, 8, 3, 3);
  EXPECT_EQ(r.cls, KernelClass::kSpecialized);
  EXPECT_NE(std::string(r.reason).find("stride"), std::string::npos)
      << r.reason;

  // Feasible at S=1 but over the Eq. 3 budget at S=7.
  r = resolve_kernel(24, 4, 7, 1);
  EXPECT_EQ(r.cls, KernelClass::kSpecialized);
  EXPECT_NE(std::string(r.reason).find("Eq. 3"), std::string::npos)
      << r.reason;
  EXPECT_NE(r.interior, nullptr);

  // Outside the feasible set entirely: generic.
  r = resolve_kernel(20, 8, 3, 1);
  EXPECT_EQ(r.cls, KernelClass::kGeneric);
  EXPECT_EQ(r.interior, nullptr);
  EXPECT_EQ(r.edge, nullptr);

  EXPECT_STREQ(kernel_class_name(KernelClass::kUnrolled), "unrolled");
  EXPECT_STREQ(kernel_class_name(KernelClass::kSpecialized),
               "specialized");
  EXPECT_STREQ(kernel_class_name(KernelClass::kGeneric), "generic");
}

// Run one registry entry and the generic kernel on identically-seeded
// tiles and require bitwise-equal output planes: both issue the same
// per-accumulator FMA sequence (same c, r, s, w, k order; lane-FMA and
// dup+FMA round identically), so any difference is a store-path bug.
// The sentinel fill doubles as an untouched-region check. epi selects
// the epilogue: 0 = plain (also checked against the scalar oracle),
// 1 = accumulate, 2 = bias + relu.
void expect_policy_matches_generic(const KernelEntry& e, int wn, int kn,
                                   int epi, bool nhwc, unsigned seed) {
  const TileProblem t{e.vw, e.vk, 3, 2, e.S, e.str};
  TileData d1 = make_tile(t, seed);
  TileData d2 = make_tile(t, seed);
  std::vector<float> bias(static_cast<std::size_t>(t.vk));
  for (int k = 0; k < t.vk; ++k) {
    bias[static_cast<std::size_t>(k)] = 0.25f * static_cast<float>(k - 3);
  }
  for (TileData* d : {&d1, &d2}) {
    MicroArgs& a = d->args;
    a.wn = wn;
    a.kn = kn;
    if (nhwc) {
      a.out_k_stride = 1;
      a.out_w_stride = t.vk;
    }
    const float fill = epi == 1 ? 2.5f : -77.0f;
    for (float& v : d->out) v = fill;
    a.accumulate = epi == 1;
    if (epi == 2) {
      a.bias = bias.data();
      a.relu = true;
    }
  }
  e.compute(d1.args);
  compute_kernel_generic(d2.args, t.vw, t.vk);
  for (std::size_t i = 0; i < d1.out.size(); ++i) {
    ASSERT_EQ(d1.out[i], d2.out[i])
        << e.vw << "x" << e.vk << " S" << e.S << " str" << e.str
        << (e.tail == TailMode::kEdge ? " edge" : " interior") << " wn="
        << wn << " kn=" << kn << " epi=" << epi
        << (nhwc ? " nhwc" : " nchw") << " out[" << i << "]";
  }
  if (epi == 0) {
    const std::vector<float> want = oracle(t, d1.pack, d1.ftile);
    for (int w = 0; w < wn; ++w) {
      for (int k = 0; k < kn; ++k) {
        const std::size_t idx = static_cast<std::size_t>(
            k * d1.args.out_k_stride + w * d1.args.out_w_stride);
        ASSERT_NEAR(d1.out[idx],
                    want[static_cast<std::size_t>(w) * t.vk + k], 1e-4f)
            << e.vw << "x" << e.vk << " S" << e.S << " w=" << w
            << " k=" << k;
      }
    }
  }
}

TEST(PolicyRegistry, ParitySweepEveryPolicyMatchesOracleAndGeneric) {
  // Every registered policy, every epilogue; edge policies additionally
  // at partial-width, partial-channel (kn % 4 != 0), and both-ragged
  // shapes.
  unsigned seed = 100;
  for (const KernelEntry& e : kernel_registry()) {
    std::vector<std::pair<int, int>> shapes;
    shapes.emplace_back(e.vw, e.vk);
    if (e.tail == TailMode::kEdge) {
      shapes.emplace_back(e.vw, e.vk - 1);
      shapes.emplace_back(e.vw - 1, e.vk);
      shapes.emplace_back(e.vw / 2 + 1, e.vk / 2 + 1);
    }
    for (const auto& [wn, kn] : shapes) {
      for (int epi = 0; epi < 3; ++epi) {
        expect_policy_matches_generic(e, wn, kn, epi, /*nhwc=*/false,
                                      seed++);
      }
    }
  }
}

TEST(PolicyRegistry, EdgeStoreNhwcParity) {
  // The edge store's NHWC path (partial k-vectors, no transpose) on a
  // both-ragged tile with the full bias+relu epilogue.
  unsigned seed = 900;
  for (const KernelEntry& e : kernel_registry()) {
    if (e.tail != TailMode::kEdge) continue;
    expect_policy_matches_generic(e, e.vw - 1, e.vk - 1, /*epi=*/2,
                                  /*nhwc=*/true, seed++);
  }
}

TEST(PolicyRegistry, FusedPolicyMatchesPackThenCompute) {
  // Every fused policy kernel against standalone pack + generic
  // compute on a real image window overlapping the padding.
  const int C = 3, H = 7, W = 29;
  Tensor image = make_input_nchw(1, C, H, W);
  fill_random(image, 50);
  unsigned seed = 500;
  for (const KernelEntry& e : kernel_registry()) {
    const TileProblem t{e.vw, e.vk, C, 2, e.S, e.str};
    TileData df = make_tile(t, seed);
    TileData dr = make_tile(t, seed);
    ++seed;
    const bool edge = e.tail == TailMode::kEdge;
    const int wn = edge ? std::max(1, t.vw - 3) : t.vw;
    const int kn = edge ? std::max(1, t.vk - 3) : t.vk;
    for (TileData* d : {&df, &dr}) {
      d->args.wn = wn;
      d->args.kn = kn;
      for (float& v : d->out) v = -5.0f;
    }
    PackGeometry g;
    g.src = image.data();
    g.chan_stride = H * W;
    g.row_stride = W;
    g.col_stride = 1;
    g.H = H;
    g.W = W;
    g.ih0 = -1;  // window overlaps the top/left padding
    g.iw0 = -1;
    e.fused(df.args, g);
    pack_window(dr.pack.data(), g, C, t.R, t.packw());
    compute_kernel_generic(dr.args, t.vw, t.vk);
    for (std::size_t i = 0; i < df.out.size(); ++i) {
      ASSERT_EQ(df.out[i], dr.out[i])
          << e.vw << "x" << e.vk << " S" << e.S << " str" << e.str
          << (edge ? " edge" : " interior") << " out[" << i << "]";
    }
  }
}

}  // namespace
}  // namespace ndirect
