// Tests for the datatype/ISA generalization (Sections 3.3 and 10.1):
// the lanes/registers-parameterized Eq. 3/4 solver and the FP64
// convolution path.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "conv_shapes.h"
#include "core/conv_fp16.h"
#include "core/quantized.h"
#include "core/conv_fp64.h"
#include "core/fp16.h"
#include "core/fai.h"
#include "simd/vec128.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace ndirect {
namespace {

// ----------------------------------------------------------------------
// Generalized Eq. 3 / Eq. 4
// ----------------------------------------------------------------------

TEST(GeneralizedSolver, DefaultsMatchPaperInstance) {
  // lanes=4, regs=32 must reproduce the FP32/ARMv8 result.
  const RegisterBlock fp32 = solve_register_block(3, 4, 32);
  EXPECT_EQ(fp32.vw, 12);
  EXPECT_EQ(fp32.vk, 8);
}

TEST(GeneralizedSolver, RegisterCostScalesWithLanes) {
  // FP64 on 128-bit: 2 lanes. (8,6) for S=3: ceil(10/2)+3+24 = 32.
  EXPECT_EQ(register_cost(8, 6, 3, 2), 32);
  // FP16 on 128-bit: 8 lanes. (16,16) for S=3: ceil(18/8)+2+32 = 37.
  EXPECT_EQ(register_cost(16, 16, 3, 8), 37);
}

TEST(GeneralizedSolver, EveryIsaInstanceIsFeasibleAndOptimal) {
  struct Isa {
    const char* name;
    int lanes, regs;
  };
  const Isa isas[] = {
      {"ARMv8 FP32", 4, 32},  {"ARMv8 FP64", 2, 32},
      {"ARMv8 FP16", 8, 32},  {"SVE-256 FP32", 8, 32},
      {"SVE-512 FP32", 16, 32}, {"AVX-512 FP32", 16, 32},
  };
  for (const Isa& isa : isas) {
    for (int S : {1, 3, 5, 7}) {
      const RegisterBlock b = solve_register_block(S, isa.lanes, isa.regs);
      EXPECT_TRUE(register_block_feasible(b.vw, b.vk, S, isa.lanes,
                                          isa.regs))
          << isa.name << " S=" << S;
      // Optimality over the enumerated space.
      const double best = fai_microkernel(b.vw, b.vk, S);
      for (const RegisterBlock& rival :
           feasible_register_blocks(S, isa.lanes, isa.regs)) {
        EXPECT_LE(fai_microkernel(rival.vw, rival.vk, S), best + 1e-9)
            << isa.name << " S=" << S;
      }
    }
  }
}

TEST(GeneralizedSolver, WiderVectorsRaiseAchievableFai) {
  // Section 10.1: wider SVE vectors admit larger blocks. The optimal
  // FAI must be non-decreasing in the lane count.
  double prev = 0;
  for (int lanes : {2, 4, 8, 16}) {
    const RegisterBlock b = solve_register_block(3, lanes, 32);
    const double fai = fai_microkernel(b.vw, b.vk, 3);
    EXPECT_GE(fai, prev) << "lanes=" << lanes;
    prev = fai;
  }
}

TEST(GeneralizedSolver, MoreRegistersNeverHurt) {
  const RegisterBlock small = solve_register_block(3, 4, 16);
  const RegisterBlock big = solve_register_block(3, 4, 32);
  EXPECT_GE(fai_microkernel(big.vw, big.vk, 3),
            fai_microkernel(small.vw, small.vk, 3));
}

// ----------------------------------------------------------------------
// FP64 SIMD primitives
// ----------------------------------------------------------------------

TEST(Vec128d, RoundTripAndFma) {
  const double a[2] = {1.5, -2.5};
  double out[2];
  vstore_f64(out, vload_f64(a));
  EXPECT_EQ(out[0], 1.5);
  EXPECT_EQ(out[1], -2.5);
  vstore_f64(out, vfma_f64(vdup_f64(1.0), vload_f64(a), vdup_f64(10.0)));
  EXPECT_EQ(out[0], 16.0);
  EXPECT_EQ(out[1], -24.0);
  vstore_f64(out, vadd_f64(vzero_f64(), vdup_f64(3.0)));
  EXPECT_EQ(out[0], 3.0);
}

// ----------------------------------------------------------------------
// FP64 convolution
// ----------------------------------------------------------------------

struct F64Buffers {
  std::vector<double> input, filter, out, ref;
};

F64Buffers make_f64_case(const ConvParams& p, unsigned seed) {
  F64Buffers b;
  b.input.resize(static_cast<std::size_t>(p.input_elems()));
  b.filter.resize(static_cast<std::size_t>(p.filter_elems()));
  b.out.resize(static_cast<std::size_t>(p.output_elems()), -1.0);
  b.ref.resize(b.out.size());
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (double& v : b.input) v = dist(rng);
  for (double& v : b.filter) v = dist(rng);
  return b;
}

class Fp64Sweep : public ::testing::TestWithParam<ConvParams> {};

TEST_P(Fp64Sweep, MatchesNaiveFp64) {
  const ConvParams p = GetParam();
  F64Buffers b = make_f64_case(p, 123);
  naive_conv_fp64(b.input.data(), b.filter.data(), b.ref.data(), p);
  ndirect_conv_fp64(b.input.data(), b.filter.data(), b.out.data(), p);
  double max_err = 0;
  std::size_t worst = 0;
  for (std::size_t i = 0; i < b.out.size(); ++i) {
    const double err = std::fabs(b.out[i] - b.ref[i]);
    if (err > max_err) {
      max_err = err;
      worst = i;
    }
  }
  EXPECT_LT(max_err, 1e-10) << "worst at " << worst;
}

INSTANTIATE_TEST_SUITE_P(Shapes, Fp64Sweep,
                         ::testing::ValuesIn(quick_conv_shapes()));

TEST(Fp64Conv, PlanUsesTwoLaneBlocks) {
  const ConvParams p{.N = 1, .C = 32, .H = 14, .W = 14, .K = 32,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  CacheInfo cache{32 << 10, 512 << 10, 0, false};
  const Fp64Plan plan = solve_fp64_plan(p, cache);
  EXPECT_EQ(plan.rb.vw % 2, 0);
  EXPECT_EQ(plan.rb.vk % 2, 0);
  EXPECT_TRUE(
      register_block_feasible(plan.rb.vw, plan.rb.vk, 3, 2, 32));
  // The FP64 block must be smaller than the FP32 one (half the lanes).
  const RegisterBlock fp32 = solve_register_block(3);
  EXPECT_LT(plan.rb.vw * plan.rb.vk, fp32.vw * fp32.vk);
}

TEST(Fp64Conv, HigherPrecisionThanFp32) {
  // The same problem computed in FP64 must be closer to the long-double
  // reference than the FP32 engine's result cast to double.
  const ConvParams p{.N = 1, .C = 48, .H = 10, .W = 10, .K = 16,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  F64Buffers b = make_f64_case(p, 321);
  naive_conv_fp64(b.input.data(), b.filter.data(), b.ref.data(), p);
  ndirect_conv_fp64(b.input.data(), b.filter.data(), b.out.data(), p);
  double f64_err = 0;
  for (std::size_t i = 0; i < b.out.size(); ++i) {
    f64_err = std::max(f64_err, std::fabs(b.out[i] - b.ref[i]));
  }
  EXPECT_LT(f64_err, 1e-12);
}

TEST(Fp64Conv, MultiThreadedMatchesSingle) {
  const ConvParams p{.N = 2, .C = 16, .H = 12, .W = 12, .K = 24,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  F64Buffers b = make_f64_case(p, 222);
  std::vector<double> out2(b.out.size());
  ThreadPool single(1), multi(4);
  ndirect_conv_fp64(b.input.data(), b.filter.data(), b.out.data(), p,
                    &single);
  ndirect_conv_fp64(b.input.data(), b.filter.data(), out2.data(), p,
                    &multi);
  for (std::size_t i = 0; i < b.out.size(); ++i) {
    ASSERT_EQ(b.out[i], out2[i]) << i;  // bitwise identical
  }
}

// ----------------------------------------------------------------------
// FP16 conversions
// ----------------------------------------------------------------------

TEST(Fp16, KnownValuesRoundTrip) {
  struct Case {
    float f;
    fp16_t h;
  };
  const Case cases[] = {
      {0.0f, 0x0000},      {1.0f, 0x3C00},    {-2.0f, 0xC000},
      {0.5f, 0x3800},      {65504.0f, 0x7BFF},
      {0.099975586f, 0x2E66},  // closest half to 0.1
      {6.103515625e-05f, 0x0400},  // smallest normal 2^-14
      {5.9604644775390625e-08f, 0x0001},  // smallest subnormal 2^-24
  };
  for (const Case& c : cases) {
    EXPECT_EQ(fp32_to_fp16_soft(c.f), c.h) << c.f;
    EXPECT_EQ(fp16_to_fp32_soft(c.h), c.f) << c.h;
  }
}

TEST(Fp16, SpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(fp32_to_fp16_soft(inf), 0x7C00);
  EXPECT_EQ(fp32_to_fp16_soft(-inf), 0xFC00);
  EXPECT_EQ(fp32_to_fp16_soft(1e10f), 0x7C00);   // overflow -> inf
  EXPECT_EQ(fp32_to_fp16_soft(65520.0f), 0x7C00);  // ties to inf
  EXPECT_EQ(fp32_to_fp16_soft(65519.0f), 0x7BFF);  // just below: max
  EXPECT_EQ(fp32_to_fp16_soft(1e-10f), 0x0000);  // underflow -> 0
  EXPECT_EQ(fp32_to_fp16_soft(-0.0f), 0x8000);
  EXPECT_TRUE(std::isnan(
      fp16_to_fp32_soft(fp32_to_fp16_soft(std::nanf("")))));
  EXPECT_TRUE(std::isinf(fp16_to_fp32_soft(0x7C00)));
}

TEST(Fp16, EveryHalfValueRoundTripsExactly) {
  // fp16 -> fp32 -> fp16 must be the identity on all 65536 bit
  // patterns except NaNs (payloads may canonicalize).
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const auto h = static_cast<fp16_t>(bits);
    const float f = fp16_to_fp32_soft(h);
    if (std::isnan(f)) continue;
    ASSERT_EQ(fp32_to_fp16_soft(f), h) << "bits=" << bits;
  }
}

#if defined(__F16C__)
TEST(Fp16, SoftwareMatchesHardwareExhaustively) {
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const auto h = static_cast<fp16_t>(bits);
    const float hw = _cvtsh_ss(h);
    const float sw = fp16_to_fp32_soft(h);
    if (std::isnan(hw)) {
      ASSERT_TRUE(std::isnan(sw)) << bits;
    } else {
      ASSERT_EQ(hw, sw) << bits;
    }
  }
}

TEST(Fp16, SoftwareNarrowingMatchesHardwareOnSamples) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<float> dist(-70000.0f, 70000.0f);
  for (int i = 0; i < 100000; ++i) {
    const float f = dist(rng);
    ASSERT_EQ(fp32_to_fp16_soft(f),
              static_cast<fp16_t>(_cvtss_sh(f, _MM_FROUND_TO_NEAREST_INT)))
        << f;
  }
  std::uniform_real_distribution<float> tiny(-1e-4f, 1e-4f);
  for (int i = 0; i < 100000; ++i) {
    const float f = tiny(rng);
    ASSERT_EQ(fp32_to_fp16_soft(f),
              static_cast<fp16_t>(_cvtss_sh(f, _MM_FROUND_TO_NEAREST_INT)))
        << f;
  }
}
#endif

// ----------------------------------------------------------------------
// FP16 convolution
// ----------------------------------------------------------------------

class Fp16Sweep : public ::testing::TestWithParam<ConvParams> {};

TEST_P(Fp16Sweep, MatchesNaiveFp16) {
  const ConvParams p = GetParam();
  std::vector<fp16_t> in(static_cast<std::size_t>(p.input_elems()));
  std::vector<fp16_t> flt(static_cast<std::size_t>(p.filter_elems()));
  std::vector<fp16_t> out(static_cast<std::size_t>(p.output_elems()));
  std::vector<fp16_t> ref(out.size());
  std::mt19937_64 rng(55);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (fp16_t& v : in) v = fp32_to_fp16(dist(rng));
  for (fp16_t& v : flt) v = fp32_to_fp16(dist(rng));

  naive_conv_fp16(in.data(), flt.data(), ref.data(), p);
  ndirect_conv_fp16(in.data(), flt.data(), out.data(), p);

  // Both accumulate in >= fp32 then narrow once; results may differ by
  // one ULP where the fp32 sums straddle a half-precision tie.
  int ulp_diffs = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float a = fp16_to_fp32(out[i]);
    const float b = fp16_to_fp32(ref[i]);
    const float tol =
        2.0f * std::max(std::fabs(b) * 0.001f, 0.002f);
    ASSERT_NEAR(a, b, tol) << "i=" << i;
    ulp_diffs += out[i] != ref[i];
  }
  // The overwhelming majority must agree bit-exactly.
  EXPECT_LT(ulp_diffs, static_cast<int>(out.size()) / 20 + 4);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Fp16Sweep,
                         ::testing::ValuesIn(quick_conv_shapes()));

TEST(Fp16Conv, HalvesTheTensorFootprint) {
  const ConvParams p{.N = 1, .C = 8, .H = 8, .W = 8, .K = 8,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  EXPECT_EQ(sizeof(fp16_t) * p.input_elems(),
            sizeof(float) * p.input_elems() / 2);
}

// ----------------------------------------------------------------------
// INT16 quantized convolution
// ----------------------------------------------------------------------

TEST(Int16, QmaxRespectsOverflowContract) {
  for (std::int64_t len : {1LL, 9LL, 576LL, 4608LL, 100000LL}) {
    const std::int32_t q = choose_qmax(len);
    EXPECT_LE(static_cast<std::int64_t>(q) * q * len,
              (1LL << 31) - 1)
        << "len=" << len;
    EXPECT_GE(q, 1);
    EXPECT_LE(q, 32767);
  }
  EXPECT_EQ(choose_qmax(1), 32767);
}

TEST(Int16, QuantizeDequantizeBoundsError) {
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<float> dist(-3.0f, 3.0f);
  std::vector<float> data(1000);
  for (float& v : data) v = dist(rng);
  const std::int32_t qmax = 2048;
  const QuantizedTensor q = quantize_tensor(data.data(), data.size(), qmax);
  std::vector<float> back(data.size());
  dequantize(q, back.data());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(back[i], data[i], q.scale * 0.5f + 1e-7f) << i;
  }
}

TEST(Int16, ZeroTensorQuantizesSafely) {
  std::vector<float> zeros(16, 0.0f);
  const QuantizedTensor q = quantize_tensor(zeros.data(), zeros.size(), 100);
  for (std::int16_t v : q.values) EXPECT_EQ(v, 0);
  EXPECT_GT(q.scale, 0.0f);
}

class Int16Sweep : public ::testing::TestWithParam<ConvParams> {};

TEST_P(Int16Sweep, AccumulatorsMatchInt64ReferenceExactly) {
  const ConvParams p = GetParam();
  const std::int32_t qmax = choose_qmax(std::int64_t{p.C} * p.R * p.S);
  std::mt19937_64 rng(77);
  std::uniform_int_distribution<std::int32_t> dist(-qmax, qmax);
  std::vector<std::int16_t> in(static_cast<std::size_t>(p.input_elems()));
  std::vector<std::int16_t> flt(
      static_cast<std::size_t>(p.filter_elems()));
  for (auto& v : in) v = static_cast<std::int16_t>(dist(rng));
  for (auto& v : flt) v = static_cast<std::int16_t>(dist(rng));

  std::vector<std::int32_t> out(
      static_cast<std::size_t>(p.output_elems()));
  std::vector<std::int64_t> ref(out.size());
  ndirect_conv_int16(in.data(), flt.data(), out.data(), p);
  naive_conv_int16(in.data(), flt.data(), ref.data(), p);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(static_cast<std::int64_t>(out[i]), ref[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Int16Sweep,
                         ::testing::ValuesIn(quick_conv_shapes()));

TEST(Int16, QuantizedPipelineApproximatesFp32) {
  const ConvParams p{.N = 1, .C = 16, .H = 12, .W = 12, .K = 16,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor flt = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, 41);
  fill_random(flt, 42);
  const std::vector<float> qout =
      quantized_conv_fp32(in.data(), flt.data(), p);

  // fp32 reference via the fp64 naive path for a tight target.
  std::vector<double> din(in.size()), dflt(flt.size());
  for (std::size_t i = 0; i < in.size(); ++i) din[i] = in[i];
  for (std::size_t i = 0; i < flt.size(); ++i) dflt[i] = flt[i];
  std::vector<double> ref(qout.size());
  naive_conv_fp64(din.data(), dflt.data(), ref.data(), p);

  // Error budget: one quantization step per operand across the
  // reduction, well under 1% of the typical output magnitude here.
  double max_err = 0, max_mag = 0;
  for (std::size_t i = 0; i < qout.size(); ++i) {
    max_err = std::max(max_err, std::fabs(qout[i] - ref[i]));
    max_mag = std::max(max_mag, std::fabs(ref[i]));
  }
  EXPECT_LT(max_err, 0.02 * max_mag);
}

}  // namespace
}  // namespace ndirect
