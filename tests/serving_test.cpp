// Deterministic serving-layer tests (DESIGN.md §15).
//
// Every timing-sensitive test here runs the server against a
// VirtualClock: time moves only when the test calls advance()/set(),
// so admission, batch sizing, lingering, in-queue shedding and
// shutdown are asserted with EXACT times — no sleeps, no "within 50ms"
// margins, no wall-clock flakiness (the suite must survive
// `ctest --repeat until-fail:100 -L serving`). The latency model is an
// injected AffineLatencyModel, so every predicted value in a plan is a
// number the test computed itself. Real-clock coverage is limited to
// one multi-producer smoke test whose assertions are order-insensitive
// conservation properties (also the TSan target).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/shutdown.h"
#include "runtime/trace.h"
#include "serve/batching.h"
#include "serve/clock.h"
#include "serve/latency_model.h"
#include "serve/serve_report.h"
#include "serve/server.h"
#include "tensor/rng.h"

#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_THREAD__) || __has_feature(thread_sanitizer)
// The refcounted release of a future's stored exception runs inside
// the system libstdc++ (eh_ptr.cc, COW-string dtor), which is not
// built with TSan: the atomic decrement that orders "test thread read
// e.what()" before "executor thread frees the exception object" is
// invisible to the tool, so cross-thread teardown of a
// promise-delivered exception reports as a race. Suppress exactly
// that shape; everything else still trips.
extern "C" const char* __tsan_default_suppressions() {
  return "race:std::__exception_ptr::exception_ptr::_M_release\n"
         "race:std::runtime_error::~runtime_error\n";
}
#endif

namespace ndirect::serve {
namespace {

constexpr std::uint64_t kMs = 1'000'000;  ///< ns per millisecond

// ----------------------------------------------------------------------
// Test graph factory: input -> (poison?) -> conv3x3 -> relu on a tiny
// 2x8x8 image, weights fixed by seed so every batch size computes the
// same function.
// ----------------------------------------------------------------------

constexpr float kPoisonValue = 666.0f;

/// Pass-through op that throws when any input element equals
/// kPoisonValue — the hook for failure-injection tests.
class PoisonOp final : public Op {
 public:
  const char* name() const override { return "poison"; }
  TensorShape infer(const std::vector<TensorShape>& in) const override {
    return in.at(0);
  }
  Tensor forward(const std::vector<const Tensor*>& in) const override {
    const Tensor& x = *in.at(0);
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] == kPoisonValue)
        throw std::runtime_error("poisoned input");
    }
    return x.clone();
  }
};

std::unique_ptr<Graph> make_test_graph(int batch, std::uint64_t seed,
                                       bool poison = false) {
  auto g = std::make_unique<Graph>(batch, 2, 8, 8);
  NodeId tail = 0;
  if (poison) tail = g->add(std::make_unique<PoisonOp>(), {tail});
  const ConvParams p{.N = batch, .C = 2, .H = 8, .W = 8, .K = 4,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  tail = g->add(
      std::make_unique<ConvOp>(p, ConvBackend::Ndirect, seed, true),
      {tail});
  g->add(std::make_unique<ReluOp>(), {tail});
  return g;
}

GraphFactory make_factory(std::uint64_t seed, bool poison = false) {
  return [seed, poison](int batch) {
    return make_test_graph(batch, seed, poison);
  };
}

Tensor make_image(std::uint64_t seed) {
  Tensor t = make_input_nchw(1, 2, 8, 8);
  fill_random(t, seed);
  return t;
}

/// Every submitted request is accounted exactly once.
void expect_conserved(const ServerStatsSnapshot& s) {
  EXPECT_EQ(s.submitted,
            s.served + s.shed_total() + s.failed + s.queued);
}

ShedReason shed_reason_of(std::future<ServeResult>& f) {
  try {
    (void)f.get();
  } catch (const ShedError& e) {
    return e.reason();
  }
  ADD_FAILURE() << "future did not throw ShedError";
  return ShedReason::kShutdown;
}

// ----------------------------------------------------------------------
// VirtualClock
// ----------------------------------------------------------------------

TEST(VirtualClockTest, StartsAtConstructionTime) {
  EXPECT_EQ(VirtualClock().now_ns(), 0u);
  EXPECT_EQ(VirtualClock(42).now_ns(), 42u);
}

TEST(VirtualClockTest, AdvanceAccumulatesAndSetIsMonotonic) {
  VirtualClock clock;
  clock.advance(10);
  clock.advance(5);
  EXPECT_EQ(clock.now_ns(), 15u);
  clock.set(100);
  EXPECT_EQ(clock.now_ns(), 100u);
  clock.set(40);  // backwards jumps are ignored
  EXPECT_EQ(clock.now_ns(), 100u);
}

TEST(VirtualClockTest, WaitUntilPastTimeReturnsWithoutBlocking) {
  VirtualClock clock(50);
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lk(mu);
  clock.wait_until(cv, lk, 50);  // t == now: no wait
  clock.wait_until(cv, lk, 10);  // t < now: no wait
  EXPECT_TRUE(lk.owns_lock());
}

TEST(VirtualClockTest, AdvanceWakesBlockedWaiter) {
  VirtualClock clock;
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> reached{false};
  std::thread waiter([&] {
    std::unique_lock<std::mutex> lk(mu);
    while (clock.now_ns() < 100) clock.wait_until(cv, lk, 100);
    reached.store(true);
  });
  clock.advance(60);
  EXPECT_FALSE(reached.load());  // time is 60: cannot have crossed 100
  clock.advance(60);             // 120: waiter must wake and finish
  waiter.join();
  EXPECT_TRUE(reached.load());
}

TEST(VirtualClockTest, SetWakesMultipleWaitersAcrossMutexes) {
  VirtualClock clock;
  std::atomic<int> done{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&clock, &done, i] {
      std::mutex mu;
      std::condition_variable cv;
      const std::uint64_t t = 10u * static_cast<std::uint64_t>(i + 1);
      {
        std::unique_lock<std::mutex> lk(mu);
        while (clock.now_ns() < t) clock.wait_until(cv, lk, t);
      }
      // The stack cv dies with this lambda while set() may still be
      // notifying from its snapshot: unregister (which drains any
      // in-flight pass) before letting it go out of scope.
      clock.unregister_waiter(&cv);
      done.fetch_add(1);
    });
  }
  clock.set(30);  // covers all three targets in one jump
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(done.load(), 3);
}

TEST(VirtualClockTest, UnregisterThenRewaitStillWakes) {
  // Unregistering must fully detach the cv (safe to destroy) without
  // poisoning it for later rounds: the same cv re-registered by a
  // fresh wait_until is woken like any other waiter.
  VirtualClock clock;
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<int> phase{0};
  std::thread waiter([&] {
    {
      std::unique_lock<std::mutex> lk(mu);
      while (clock.now_ns() < 100) clock.wait_until(cv, lk, 100);
    }
    clock.unregister_waiter(&cv);
    phase.store(1);
    {
      std::unique_lock<std::mutex> lk(mu);
      while (clock.now_ns() < 200) clock.wait_until(cv, lk, 200);
    }
    clock.unregister_waiter(&cv);
    phase.store(2);
  });
  clock.advance(100);
  while (phase.load() < 1) std::this_thread::yield();
  clock.advance(100);
  waiter.join();
  EXPECT_EQ(phase.load(), 2);
}

TEST(RealClockTest, PastDeadlineReturnsImmediately) {
  RealClock& clock = RealClock::instance();
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lk(mu);
  clock.wait_until(cv, lk, 0);  // long past: returns, no wait
  EXPECT_TRUE(lk.owns_lock());
  EXPECT_GT(clock.now_ns(), 0u);
}

TEST(RealClockTest, TimedWaitReturnsAfterDeadline) {
  RealClock& clock = RealClock::instance();
  std::mutex mu;
  std::condition_variable cv;
  const std::uint64_t t = clock.now_ns() + 2'000'000;  // 2ms
  std::unique_lock<std::mutex> lk(mu);
  while (clock.now_ns() < t) clock.wait_until(cv, lk, t);
  EXPECT_GE(clock.now_ns(), t);
}

// ----------------------------------------------------------------------
// plan_batch / admission: pure-function tests with exact numbers
// ----------------------------------------------------------------------

Request req(std::uint64_t arrival, std::uint64_t deadline) {
  Request r;
  r.arrival_ns = arrival;
  r.deadline_ns = deadline;
  return r;
}

TEST(PlanBatchTest, EmptyQueuePlansNothing) {
  const AffineLatencyModel model(10, 5);
  const std::deque<Request> empty;
  EXPECT_EQ(plan_batch(empty, 0, 8, model, true).size, 0);
}

TEST(PlanBatchTest, GrowsWhileTightestDeadlineHolds) {
  const AffineLatencyModel model(10, 10);  // predict(k) = 10 + 10k
  std::deque<Request> q;
  q.push_back(req(0, 100));
  q.push_back(req(1, 100));
  q.push_back(req(2, 35));  // predict(3)=40 > 35: stop at 2
  q.push_back(req(3, 100));
  const BatchPlan plan = plan_batch(q, 0, 8, model, true);
  EXPECT_EQ(plan.size, 2);
  EXPECT_EQ(plan.predicted_ns, 30u);
  EXPECT_EQ(plan.tightest_deadline_ns, 100u);
}

TEST(PlanBatchTest, HeadIsAlwaysTakenEvenWhenModelSaysInfeasible) {
  const AffineLatencyModel model(1000, 0);
  std::deque<Request> q;
  q.push_back(req(0, 5));  // hopeless, but expiry shedding owns that
  const BatchPlan plan = plan_batch(q, 0, 8, model, true);
  EXPECT_EQ(plan.size, 1);
}

TEST(PlanBatchTest, PartialBatchLingersUntilDeadlineBudgetExhausted) {
  const AffineLatencyModel model(10, 10);
  std::deque<Request> q;
  q.push_back(req(0, 200));
  q.push_back(req(5, 150));
  const BatchPlan plan = plan_batch(q, 20, 8, model, true);
  EXPECT_EQ(plan.size, 2);
  // launch_at = tightest - predict(2) = 150 - 30.
  EXPECT_EQ(plan.launch_at, 120u);
}

TEST(PlanBatchTest, FullBatchLaunchesNow) {
  const AffineLatencyModel model(10, 10);
  std::deque<Request> q;
  q.push_back(req(0, 1000));
  q.push_back(req(1, 1000));
  const BatchPlan plan = plan_batch(q, 7, 2, model, true);
  EXPECT_EQ(plan.size, 2);
  EXPECT_EQ(plan.launch_at, 7u);
}

TEST(PlanBatchTest, DrainingNeverLingers) {
  const AffineLatencyModel model(10, 10);
  std::deque<Request> q;
  q.push_back(req(0, 1000));
  const BatchPlan plan =
      plan_batch(q, 3, 8, model, /*more_arrivals_possible=*/false);
  EXPECT_EQ(plan.size, 1);
  EXPECT_EQ(plan.launch_at, 3u);
}

TEST(PlanBatchTest, NoDeadlineAndNoLingerCapLaunchesImmediately) {
  const AffineLatencyModel model(10, 10);
  std::deque<Request> q;
  q.push_back(req(0, kNeverNs));
  const BatchPlan plan = plan_batch(q, 9, 8, model, true);
  EXPECT_EQ(plan.size, 1);
  EXPECT_EQ(plan.launch_at, 9u);  // nothing bounds a longer wait
}

TEST(PlanBatchTest, MaxLingerCapsTheWait) {
  const AffineLatencyModel model(10, 10);
  std::deque<Request> q;
  q.push_back(req(100, kNeverNs));
  const BatchPlan capped =
      plan_batch(q, 110, 8, model, true, /*max_linger_ns=*/50);
  EXPECT_EQ(capped.launch_at, 150u);  // head arrival + linger cap

  // A deadline tighter than the cap wins.
  q.front().deadline_ns = 140;
  const BatchPlan tight = plan_batch(q, 110, 8, model, true, 50);
  EXPECT_EQ(tight.launch_at, 120u);  // 140 - predict(1)=20
}

TEST(PlanBatchTest, LaunchAtNeverPrecedesNow) {
  const AffineLatencyModel model(10, 10);
  std::deque<Request> q;
  q.push_back(req(0, 25));  // latest = 25 - 20 = 5, already past
  const BatchPlan plan = plan_batch(q, 10, 8, model, true);
  EXPECT_EQ(plan.launch_at, 10u);
}

TEST(AdmissionTest, EstimateAccountsBacklogLanesAndOwnBatch) {
  const AffineLatencyModel model(10, 0);  // predict(k) = 10
  // 5 queued, max_batch 2, 1 lane: 2 full batches (20) + own ride (10).
  EXPECT_EQ(estimate_finish_ns(0, 5, 0, 2, 1, model), 30u);
  // Two lanes split the backlog.
  EXPECT_EQ(estimate_finish_ns(0, 5, 0, 2, 2, model), 20u);
  // A busy lane pushes the start out.
  EXPECT_EQ(estimate_finish_ns(0, 0, 100, 2, 1, model), 110u);
}

TEST(AdmissionTest, DeadlineBoundaryIsInclusive) {
  const AffineLatencyModel model(10, 0);
  EXPECT_TRUE(admit(0, 30, 5, 0, 2, 1, model));   // finish == deadline
  EXPECT_FALSE(admit(0, 29, 5, 0, 2, 1, model));  // one ns short
  EXPECT_TRUE(admit(0, kNeverNs, 1'000'000, 0, 2, 1, model));
}

TEST(RequestQueueTest, TakeExpiredShedsOnlyHopelessRequests) {
  RequestQueue q;
  std::lock_guard<std::mutex> lk(q.mutex());
  q.push(req(0, 100));       // feasible: 100 >= now+predict = 60
  q.push(req(0, 59));        // hopeless
  q.push(req(0, 60));        // boundary: deadline == finish stays
  q.push(req(0, kNeverNs));  // no deadline never expires
  const std::vector<Request> shed = q.take_expired(50, 10);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].deadline_ns, 59u);
  EXPECT_EQ(q.size(), 3u);
}

TEST(RequestQueueTest, PopFrontIsFifo) {
  RequestQueue q;
  std::lock_guard<std::mutex> lk(q.mutex());
  for (std::uint64_t i = 0; i < 4; ++i) {
    Request r = req(i, kNeverNs);
    r.id = i;
    q.push(std::move(r));
  }
  const std::vector<Request> batch = q.pop_front(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[1].id, 1u);
  EXPECT_EQ(batch[2].id, 2u);
  EXPECT_EQ(q.pending().front().id, 3u);
}

// ----------------------------------------------------------------------
// GraphLatencyModel (synthetic spec: no host microbenchmarks)
// ----------------------------------------------------------------------

PlatformSpec synthetic_spec() {
  PlatformSpec s;
  s.name = "synthetic";
  s.cores = 4;
  s.freq_ghz = 2.0;
  s.peak_gflops = 64.0;
  s.bandwidth_gibs = 16.0;
  return s;
}

TEST(GraphLatencyModelTest, PredictionGrowsWithBatchAndCalibrates) {
  const PlatformSpec spec = synthetic_spec();
  auto g = make_test_graph(1, /*seed=*/7);
  GraphLatencyModel model(*g, &spec, /*threads=*/2,
                          /*fixed_overhead_ns=*/100'000);
  const std::uint64_t p1 = model.predict_ns(1);
  const std::uint64_t p4 = model.predict_ns(4);
  EXPECT_GT(p1, 100'000u);  // at least the fixed overhead
  EXPECT_GE(p4, p1);        // monotone in batch
  EXPECT_DOUBLE_EQ(model.scale(), 1.0);

  // Observing a 2x-slower reality moves the scale up (EWMA, not a
  // jump) and inflates future predictions by the same factor.
  model.observe(1, p1 * 2);
  EXPECT_GT(model.scale(), 1.0);
  EXPECT_LT(model.scale(), 2.0);
  EXPECT_GT(model.predict_ns(1), p1);

  // The clamp stops a pathological outlier from wedging admission.
  for (int i = 0; i < 50; ++i) model.observe(1, p1 * 10'000);
  EXPECT_LE(model.scale(), 20.0);
}

// ----------------------------------------------------------------------
// Server + VirtualClock: exact end-to-end serving behaviour
// ----------------------------------------------------------------------

struct Harness {
  VirtualClock clock;
  AffineLatencyModel model;
  Server server;

  explicit Harness(ServerOptions opts, std::uint64_t base_ns = kMs,
                   std::uint64_t per_item_ns = 0, bool poison = false)
      : model(base_ns, per_item_ns),
        server(make_factory(/*seed=*/11, poison), [&] {
          opts.clock = &clock;
          opts.model = &model;
          opts.calibrate = false;
          return opts;
        }()) {}
};

TEST(ServerTest, ServesSingleRequestWithoutDeadline) {
  ServerOptions opts;
  opts.max_batch = 4;
  Harness h(opts);
  std::future<ServeResult> f =
      h.server.submit(make_image(1), kNeverNs);
  const ServeResult res = f.get();
  EXPECT_EQ(res.stats.batch_size, 1);
  EXPECT_EQ(res.stats.queue_wait_ns, 0u);
  EXPECT_EQ(res.stats.deadline_slack_ns,
            std::numeric_limits<std::int64_t>::max());
  const ServerStatsSnapshot s = h.server.stats();
  EXPECT_EQ(s.served, 1u);
  EXPECT_EQ(s.admitted, 1u);
  expect_conserved(s);
}

TEST(ServerTest, BatchOutputBitwiseMatchesSingleImageForward) {
  // Generous equal deadlines force lingering until the batch is full,
  // so all four requests coalesce into one deterministic batch.
  ServerOptions opts;
  opts.max_batch = 4;
  Harness h(opts);
  auto ref_graph = make_test_graph(1, /*seed=*/11);

  std::vector<Tensor> inputs;
  std::vector<std::future<ServeResult>> futs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    Tensor img = make_image(100 + i);
    inputs.push_back(img.clone());
    futs.push_back(h.server.submit(std::move(img), 100 * kMs));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const ServeResult res = futs[i].get();
    EXPECT_EQ(res.stats.batch_size, 4);
    const Tensor expect = ref_graph->run(inputs[i]);
    ASSERT_EQ(res.output.size(), expect.size());
    EXPECT_EQ(std::memcmp(res.output.data(), expect.data(),
                          expect.size() * sizeof(float)),
              0)
        << "request " << i << " diverged from its solo forward";
  }
  const ServerStatsSnapshot s = h.server.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.batched_requests, 4u);
  EXPECT_DOUBLE_EQ(s.mean_batch(), 4.0);
  expect_conserved(s);
}

TEST(ServerTest, PartialBatchLaunchesExactlyAtDeadlineBudget) {
  // predict(k) = 1ms flat; two requests with 10ms budgets linger until
  // launch_at = 10ms - 1ms = 9ms, which only the test can make happen.
  ServerOptions opts;
  opts.max_batch = 8;
  Harness h(opts);
  std::future<ServeResult> f1 =
      h.server.submit(make_image(1), 10 * kMs);
  std::future<ServeResult> f2 =
      h.server.submit(make_image(2), 10 * kMs);
  h.clock.advance(9 * kMs);
  for (std::future<ServeResult>* f : {&f1, &f2}) {
    const ServeResult res = f->get();
    EXPECT_EQ(res.stats.batch_size, 2);
    EXPECT_EQ(res.stats.launch_ns, 9 * kMs);
    EXPECT_EQ(res.stats.queue_wait_ns, 9 * kMs);
    EXPECT_EQ(res.stats.done_ns, 9 * kMs);  // virtual time stands still
    EXPECT_EQ(res.stats.deadline_slack_ns,
              static_cast<std::int64_t>(1 * kMs));
    EXPECT_EQ(res.stats.predicted_batch_ns, 1 * kMs);
  }
  expect_conserved(h.server.stats());
}

TEST(ServerTest, FifoPrefixBatchingWithinOneDeadlineClass) {
  // max_batch 2: r1+r2 fill a batch and launch at t=0 with zero wait;
  // r3 lingers alone until its deadline budget runs out at 99ms. Any
  // non-FIFO composition would produce different queue waits.
  ServerOptions opts;
  opts.max_batch = 2;
  Harness h(opts);
  std::future<ServeResult> f1 =
      h.server.submit(make_image(1), 100 * kMs);
  std::future<ServeResult> f2 =
      h.server.submit(make_image(2), 100 * kMs);
  const ServeResult r1 = f1.get();
  const ServeResult r2 = f2.get();
  EXPECT_EQ(r1.stats.batch_size, 2);
  EXPECT_EQ(r2.stats.batch_size, 2);
  EXPECT_EQ(r1.stats.queue_wait_ns, 0u);
  EXPECT_EQ(r2.stats.queue_wait_ns, 0u);

  std::future<ServeResult> f3 =
      h.server.submit(make_image(3), 100 * kMs);
  h.clock.advance(99 * kMs);
  const ServeResult r3 = f3.get();
  EXPECT_EQ(r3.stats.batch_size, 1);
  EXPECT_EQ(r3.stats.queue_wait_ns, 99 * kMs);
  const ServerStatsSnapshot s = h.server.stats();
  EXPECT_EQ(s.batches, 2u);
  expect_conserved(s);
}

TEST(ServerTest, ShedsOnArrivalWhenModelPredictsMiss) {
  // predict(1) = 10ms against a 1ms budget: reject at the door.
  ServerOptions opts;
  Harness h(opts, /*base_ns=*/10 * kMs);
  std::future<ServeResult> f = h.server.submit(make_image(1), 1 * kMs);
  EXPECT_EQ(shed_reason_of(f), ShedReason::kAdmission);
  const ServerStatsSnapshot s = h.server.stats();
  EXPECT_EQ(s.shed_admission, 1u);
  EXPECT_EQ(s.admitted, 0u);
  EXPECT_EQ(
      h.server.telemetry().total(Counter::kServeShedArrival), 1u);
  expect_conserved(s);
}

TEST(ServerTest, AdmissionControlOffShedsInQueueInstead) {
  ServerOptions opts;
  opts.admission_control = false;
  Harness h(opts, /*base_ns=*/10 * kMs);
  std::future<ServeResult> f = h.server.submit(make_image(1), 1 * kMs);
  EXPECT_EQ(shed_reason_of(f), ShedReason::kDeadlineExpired);
  const ServerStatsSnapshot s = h.server.stats();
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.shed_expired, 1u);
  EXPECT_EQ(h.server.telemetry().total(Counter::kServeShedQueue), 1u);
  expect_conserved(s);
}

TEST(ServerTest, ShedsQueuedRequestWhenClockJumpsPastDeadline) {
  // Feasible at submit (1ms predict vs 10ms budget), so it lingers for
  // company; jumping the clock straight past the deadline must shed it
  // through the expiry path, never launch it.
  ServerOptions opts;
  Harness h(opts);
  std::future<ServeResult> f = h.server.submit(make_image(1), 10 * kMs);
  h.clock.advance(20 * kMs);
  EXPECT_EQ(shed_reason_of(f), ShedReason::kDeadlineExpired);
  const ServerStatsSnapshot s = h.server.stats();
  EXPECT_EQ(s.shed_expired, 1u);
  EXPECT_EQ(s.served, 0u);
  expect_conserved(s);
}

TEST(ServerTest, ExceptionFailsExactlyTheAffectedBatch) {
  // Pairs [r1,r2] [r3,r4] [r5,r6] by the FIFO argument; r3 carries the
  // poison value, so exactly r3 and r4 must see the graph's exception
  // — and the server keeps serving r5, r6 afterwards.
  ServerOptions opts;
  opts.max_batch = 2;
  Harness h(opts, kMs, 0, /*poison=*/true);
  std::vector<std::future<ServeResult>> futs;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    Tensor img = make_image(i);
    if (i == 3) img[0] = kPoisonValue;
    futs.push_back(h.server.submit(std::move(img), 100 * kMs));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const bool affected = i == 2 || i == 3;  // r3, r4
    if (affected) {
      EXPECT_THROW(
          {
            try {
              (void)futs[i].get();
            } catch (const std::runtime_error& e) {
              EXPECT_STREQ(e.what(), "poisoned input");
              throw;
            }
          },
          std::runtime_error)
          << "request " << i + 1;
    } else {
      EXPECT_NO_THROW((void)futs[i].get()) << "request " << i + 1;
    }
  }
  const ServerStatsSnapshot s = h.server.stats();
  EXPECT_EQ(s.served, 4u);
  EXPECT_EQ(s.failed, 2u);
  EXPECT_EQ(s.batches, 2u);  // the failed launch is not a completion
  expect_conserved(s);
}

TEST(ServerTest, DrainShutdownServesEveryInFlightRequest) {
  // Three lingering requests (1s budgets): shutdown(drain) must launch
  // them immediately as one batch instead of waiting for the budget.
  ServerOptions opts;
  opts.max_batch = 4;
  Harness h(opts);
  std::vector<std::future<ServeResult>> futs;
  for (std::uint64_t i = 1; i <= 3; ++i)
    futs.push_back(h.server.submit(make_image(i), 1000 * kMs));
  h.server.shutdown(/*drain=*/true);
  for (std::future<ServeResult>& f : futs) {
    const ServeResult res = f.get();
    EXPECT_EQ(res.stats.batch_size, 3);
  }
  const ServerStatsSnapshot s = h.server.stats();
  EXPECT_EQ(s.served, 3u);
  EXPECT_EQ(s.queued, 0u);
  expect_conserved(s);
}

TEST(ServerTest, NonDrainShutdownShedsTheQueue) {
  ServerOptions opts;
  opts.max_batch = 4;
  Harness h(opts);
  std::vector<std::future<ServeResult>> futs;
  for (std::uint64_t i = 1; i <= 3; ++i)
    futs.push_back(h.server.submit(make_image(i), 1000 * kMs));
  h.server.shutdown(/*drain=*/false);
  for (std::future<ServeResult>& f : futs)
    EXPECT_EQ(shed_reason_of(f), ShedReason::kShutdown);
  const ServerStatsSnapshot s = h.server.stats();
  EXPECT_EQ(s.shed_shutdown, 3u);
  EXPECT_EQ(s.served, 0u);
  expect_conserved(s);
}

TEST(ServerTest, SubmitAfterShutdownIsShed) {
  ServerOptions opts;
  Harness h(opts);
  h.server.shutdown();
  std::future<ServeResult> f = h.server.submit(make_image(1), kNeverNs);
  EXPECT_EQ(shed_reason_of(f), ShedReason::kShutdown);
  const ServerStatsSnapshot s = h.server.stats();
  EXPECT_EQ(s.shed_shutdown, 1u);
  expect_conserved(s);
}

TEST(ServerTest, RejectsMalformedInputShapes) {
  ServerOptions opts;
  Harness h(opts);
  Tensor wrong_c = make_input_nchw(1, 3, 8, 8);
  wrong_c.fill_zero();
  EXPECT_THROW((void)h.server.submit(std::move(wrong_c), kNeverNs),
               std::invalid_argument);
  Tensor batched = make_input_nchw(2, 2, 8, 8);
  batched.fill_zero();
  EXPECT_THROW((void)h.server.submit(std::move(batched), kNeverNs),
               std::invalid_argument);
  EXPECT_EQ(h.server.stats().submitted, 0u);
}

TEST(ServerTest, TelemetryCountersMirrorStats) {
  ServerOptions opts;
  opts.max_batch = 2;
  Harness h(opts);
  std::vector<std::future<ServeResult>> futs;
  futs.push_back(h.server.submit(make_image(1), 100 * kMs));
  futs.push_back(h.server.submit(make_image(2), 100 * kMs));
  for (std::future<ServeResult>& f : futs) (void)f.get();
  std::future<ServeResult> rejected =
      h.server.submit(make_image(3), /*budget=*/1);  // 1ns: hopeless
  EXPECT_EQ(shed_reason_of(rejected), ShedReason::kAdmission);

  const ServerStatsSnapshot s = h.server.stats();
  const WorkerTelemetry& t = h.server.telemetry();
  EXPECT_EQ(t.total(Counter::kServeAdmitted), s.admitted);
  EXPECT_EQ(t.total(Counter::kServeShedArrival), s.shed_admission);
  EXPECT_EQ(t.total(Counter::kServeBatches), s.batches);
  EXPECT_EQ(t.value(0, Counter::kServeAdmitted), s.admitted)
      << "admission events belong to slot 0";
  expect_conserved(s);
}

TEST(ServerTest, ServeReportAggregatesBatchRecords) {
  ServerOptions opts;
  opts.max_batch = 2;
  Harness h(opts);
  std::vector<std::future<ServeResult>> futs;
  for (std::uint64_t i = 1; i <= 4; ++i)
    futs.push_back(h.server.submit(make_image(i), 100 * kMs));
  for (std::future<ServeResult>& f : futs) (void)f.get();

  const ServeReport rep = build_serve_report(h.server);
  EXPECT_EQ(rep.submitted, 4u);
  EXPECT_EQ(rep.served, 4u);
  EXPECT_EQ(rep.batches, 2u);
  EXPECT_DOUBLE_EQ(rep.mean_batch, 2.0);
  ASSERT_EQ(rep.rows.size(), 1u);
  EXPECT_EQ(rep.rows[0].batch_size, 2);
  EXPECT_EQ(rep.rows[0].count, 2u);
  EXPECT_GT(rep.rows[0].mean_measured_ms, 0.0);
  EXPECT_NE(rep.to_text().find("serve report"), std::string::npos);
  EXPECT_NE(rep.to_json().find("\"batches\": 2"), std::string::npos);
  EXPECT_EQ(rep.model_scale, 0.0);  // affine model: no calibration
}

TEST(ServerTest, MultipleExecutorLanesShareThePool) {
  ServerOptions opts;
  opts.executors = 2;
  opts.max_batch = 2;
  Harness h(opts);
  std::vector<std::future<ServeResult>> futs;
  for (std::uint64_t i = 1; i <= 8; ++i)
    futs.push_back(h.server.submit(make_image(i), kNeverNs));
  for (std::future<ServeResult>& f : futs) {
    const ServeResult res = f.get();
    EXPECT_GE(res.stats.batch_size, 1);
    EXPECT_LE(res.stats.batch_size, 2);
  }
  const ServerStatsSnapshot s = h.server.stats();
  EXPECT_EQ(s.served, 8u);
  expect_conserved(s);
}

// ----------------------------------------------------------------------
// Stress / fuzz: conservation under randomized arrivals and deadlines
// ----------------------------------------------------------------------

/// Seeded random traffic against the VirtualClock: arbitrary budget
/// mixes and clock jumps, with and without admission control. The
/// invariant is conservation: every request resolves exactly once —
/// a value, a ShedError, or a graph failure — and the stats ledger
/// agrees with the futures.
class ServingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ServingFuzz, EveryRequestServedOrShedExactlyOnce) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  std::mt19937_64 rng(seed * 9176 + 3);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  VirtualClock clock;
  AffineLatencyModel model(kMs, kMs / 4);
  ServerOptions opts;
  opts.clock = &clock;
  opts.model = &model;
  opts.calibrate = false;
  opts.max_batch = pick(1, 6);
  opts.executors = pick(1, 2);
  opts.admission_control = pick(0, 1) == 1;
  Server server(make_factory(seed), opts);

  const int n = 60;
  std::vector<std::future<ServeResult>> futs;
  for (int i = 0; i < n; ++i) {
    const int kind = pick(0, 3);
    const std::uint64_t budget =
        kind == 0 ? kNeverNs
        : kind == 1 ? static_cast<std::uint64_t>(pick(0, 2)) * kMs / 2
                    : static_cast<std::uint64_t>(pick(2, 80)) * kMs;
    futs.push_back(server.submit(make_image(seed * 1000 +
                                            static_cast<std::uint64_t>(i)),
                                 budget));
    if (pick(0, 2) == 0)
      clock.advance(static_cast<std::uint64_t>(pick(0, 30)) * kMs);
  }
  clock.advance(200 * kMs);
  server.shutdown(/*drain=*/true);

  std::uint64_t served = 0, shed = 0;
  for (std::future<ServeResult>& f : futs) {
    try {
      (void)f.get();
      ++served;
    } catch (const ShedError&) {
      ++shed;
    }
  }
  EXPECT_EQ(served + shed, static_cast<std::uint64_t>(n))
      << "a request was lost or double-resolved";
  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(n));
  EXPECT_EQ(s.served, served);
  EXPECT_EQ(s.shed_total(), shed);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.queued, 0u);
  expect_conserved(s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServingFuzz, ::testing::Range(0, 10));

/// Real-clock, multi-producer smoke test: 4 threads race submissions
/// against live executor lanes. Assertions are order-insensitive
/// (conservation only) — this is the TSan target for the serving
/// layer's locking.
TEST(ServingStress, MultiProducerRealClockConservation) {
  AffineLatencyModel model(kMs / 2, 0);
  ServerOptions opts;
  opts.model = &model;
  opts.calibrate = false;
  opts.max_batch = 4;
  opts.executors = 2;
  opts.max_linger_ns = kMs;  // keep no-deadline requests moving
  Server server(make_factory(99), opts);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 25;
  std::vector<std::future<ServeResult>> futs(
      static_cast<std::size_t>(kProducers * kPerProducer));
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(p));
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t budget =
            (rng() % 3 == 0) ? kNeverNs : 200 * kMs;
        futs[static_cast<std::size_t>(p * kPerProducer + i)] =
            server.submit(
                make_image(static_cast<std::uint64_t>(p * 1000 + i)),
                budget);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  server.shutdown(/*drain=*/true);

  std::uint64_t served = 0, shed = 0;
  for (std::future<ServeResult>& f : futs) {
    try {
      (void)f.get();
      ++served;
    } catch (const ShedError&) {
      ++shed;
    }
  }
  EXPECT_EQ(served + shed,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.served, served);
  EXPECT_EQ(s.shed_total(), shed);
  EXPECT_EQ(s.queued, 0u);
  expect_conserved(s);
}

// ----------------------------------------------------------------------
// Observability: request ids, registry instruments, serve spans, the
// SLO watchdog and exit-hook shutdown (DESIGN.md §16)
// ----------------------------------------------------------------------

TEST(ObservabilityTest, RequestIdsAreAssignedInSubmitOrder) {
  ServerOptions opts;
  opts.name = "obs-ids";
  opts.max_batch = 2;
  Harness h(opts);
  std::vector<std::future<ServeResult>> futs;
  for (std::uint64_t i = 0; i < 4; ++i)
    futs.push_back(h.server.submit(make_image(i + 1), 100 * kMs));
  // A shed request consumes an id too: ids are submit-order, not
  // admit-order.
  std::future<ServeResult> rejected =
      h.server.submit(make_image(9), /*budget=*/1);
  EXPECT_EQ(shed_reason_of(rejected), ShedReason::kAdmission);
  // Advance to the linger launch boundary (budget - predict(1)), not
  // past the deadline: the executor may still be in its cold graph
  // build (real time) and must not find the requests expired.
  h.clock.advance(99 * kMs);
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(futs[i].get().stats.request_id, i);
}

TEST(ObservabilityTest, RegistryPercentilesMatchExactStatsWithinOneBucket) {
  // The PR's acceptance criterion: the log-bucketed e2e histogram must
  // answer p50/p95/p99 within one bucket width of the exact
  // percentiles derived from per-request ServeStats — under a
  // VirtualClock, where every latency is an exact number the test
  // controls. Each request lingers alone until its deadline budget
  // forces a launch, so e2e_i = budget_i - predict(1) by construction.
  ServerOptions opts;
  opts.name = "obs-acceptance";
  opts.max_batch = 8;
  Harness h(opts);  // predict(k) = 1ms flat
  std::vector<std::uint64_t> exact;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const std::uint64_t budget = (i + 2) * kMs;  // waits 1ms..50ms
    std::future<ServeResult> f = h.server.submit(make_image(i + 1), budget);
    h.clock.advance(budget - kMs);  // reach launch_at exactly
    const ServeResult res = f.get();
    const std::uint64_t e2e = res.stats.done_ns - res.stats.arrival_ns;
    EXPECT_EQ(e2e, (i + 1) * kMs);
    exact.push_back(e2e);
    // Park the clock well past this request so the next one is alone.
    h.clock.advance(100 * kMs);
  }
  std::sort(exact.begin(), exact.end());

  ASSERT_NE(h.server.instruments(), nullptr);
  const HistogramSnapshot e2e_hist =
      h.server.instruments()->e2e_ns->snapshot();
  ASSERT_EQ(e2e_hist.count, exact.size());
  for (const double q : {0.50, 0.95, 0.99}) {
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::max<double>(1.0, std::ceil(q * static_cast<double>(
                                                exact.size()))));
    const std::uint64_t truth = exact[rank - 1];
    const std::uint64_t got = e2e_hist.quantile(q);
    // Same bucket = within one bucket width, the layout's guarantee.
    EXPECT_EQ(HistogramLayout::bucket_of(got),
              HistogramLayout::bucket_of(truth))
        << "q=" << q << " exact=" << truth << " histogram=" << got;
  }

  // The queue-wait histogram saw the same distribution shifted by
  // nothing (execution takes zero virtual time), so counts agree.
  EXPECT_EQ(h.server.instruments()->queue_wait_ns->snapshot().count,
            exact.size());
}

TEST(ObservabilityTest, InstrumentsMirrorStatsLedger) {
  ServerOptions opts;
  opts.name = "obs-ledger";
  opts.max_batch = 2;
  Harness h(opts);
  std::vector<std::future<ServeResult>> futs;
  for (std::uint64_t i = 0; i < 4; ++i)
    futs.push_back(h.server.submit(make_image(i + 1), 100 * kMs));
  for (std::future<ServeResult>& f : futs) (void)f.get();
  std::future<ServeResult> rejected =
      h.server.submit(make_image(9), /*budget=*/1);
  EXPECT_EQ(shed_reason_of(rejected), ShedReason::kAdmission);

  const ServerStatsSnapshot s = h.server.stats();
  const ServeInstruments* obs = h.server.instruments();
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->submitted->value(), s.submitted);
  EXPECT_EQ(obs->admitted->value(), s.admitted);
  EXPECT_EQ(obs->served->value(), s.served);
  EXPECT_EQ(obs->batches->value(), s.batches);
  EXPECT_EQ(obs->shed[static_cast<int>(ShedReason::kAdmission)]->value(),
            s.shed_admission);
  EXPECT_EQ(obs->queue_depth->value(), 0);
  EXPECT_EQ(obs->e2e_ns->snapshot().count, s.served);
  // Per-batch-size family: all four requests ran as two 2-batches.
  EXPECT_EQ(obs->execute_by_batch[2]->snapshot().count, s.batches);
  expect_conserved(s);

  // The exposition surface sees those same instruments.
  const std::string text = h.server.metrics_text();
  EXPECT_NE(
      text.find("ndirect_serve_requests_total{server=\"obs-ledger\"} 5"),
      std::string::npos);
  EXPECT_NE(text.find("# EOF"), std::string::npos);
}

TEST(ObservabilityTest, ObserveOffStaysOutOfTheRegistry) {
  ServerOptions opts;
  opts.name = "obs-off";
  opts.observe = false;
  Harness h(opts);
  std::future<ServeResult> f = h.server.submit(make_image(1), 100 * kMs);
  h.clock.advance(99 * kMs);  // lone request lingers until launch_at
  (void)f.get();
  EXPECT_EQ(h.server.instruments(), nullptr);
  EXPECT_EQ(h.server.metrics_text().find("server=\"obs-off\""),
            std::string::npos);
}

TEST(ObservabilityTest, ServeSpansCarryRequestIds) {
  TraceSession& ts = TraceSession::global();
  ts.start(8192);
  {
    ServerOptions opts;
    opts.name = "obs-spans";
    opts.max_batch = 2;
    Harness h(opts);
    std::vector<std::future<ServeResult>> futs;
    futs.push_back(h.server.submit(make_image(1), 100 * kMs));
    futs.push_back(h.server.submit(make_image(2), 100 * kMs));
    for (std::future<ServeResult>& f : futs) (void)f.get();
  }
  ts.stop();
  bool saw_queue = false, saw_execute = false, saw_respond = false;
  for (const TraceEvent& ev : ts.events()) {
    const std::string name = ev.name;
    if (name == "serve_queue") {
      ASSERT_EQ(ev.ph, 'X');
      ASSERT_STREQ(ev.arg1_name, "req");
      EXPECT_GE(ev.arg1, 0);
      EXPECT_LE(ev.arg1, 1);
      ASSERT_STREQ(ev.arg2_name, "batch");
      EXPECT_EQ(ev.arg2, 2);
      saw_queue = true;
    } else if (name == "serve_execute") {
      if (ev.ph == 'B') {
        ASSERT_STREQ(ev.arg1_name, "batch");
        EXPECT_EQ(ev.arg1, 2);
      }
      saw_execute = true;
    } else if (name == "serve_respond") {
      if (ev.ph == 'B') {
        ASSERT_STREQ(ev.arg1_name, "req");
        EXPECT_EQ(ev.arg1, 0);  // head request of the batch
      }
      saw_respond = true;
    }
  }
  ts.clear();
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(saw_respond);
}

TEST(ObservabilityTest, ExitHookDrainsLiveServerBeforeExporters) {
  // Satellite-6 regression test: a server still alive when the exit
  // chain runs is drained by its hook (LIFO: servers before the
  // metrics/trace exporters), and its later destruction is a clean
  // no-op double-shutdown.
  ServerOptions opts;
  opts.name = "obs-exit";
  auto h = std::make_unique<Harness>(opts);
  std::future<ServeResult> f = h->server.submit(make_image(1), kNeverNs);
  (void)f.get();
  run_exit_hooks();  // what atexit would do, with the server still live
  std::future<ServeResult> after =
      h->server.submit(make_image(2), kNeverNs);
  EXPECT_EQ(shed_reason_of(after), ShedReason::kShutdown);
  const ServerStatsSnapshot s = h->server.stats();
  EXPECT_EQ(s.served, 1u);
  EXPECT_EQ(s.queued, 0u);
  h.reset();  // destructor: unregister (already-run token) + shutdown
}

// ----------------------------------------------------------------------
// SloMonitor: rolling windows and rule-based diagnoses, on exact time
// ----------------------------------------------------------------------

constexpr std::uint64_t kSec = 1'000'000'000;

TEST(SloMonitorTest, WindowsRollOverExactSecondBoundaries) {
  SloMonitor mon;
  mon.record_served(0, 5 * kMs, true);
  mon.record_served(kSec / 2, 10 * kMs, true);     // second 0
  mon.record_served(3 * kSec, 20 * kMs, false);    // second 3
  mon.record_shed(3 * kSec + 1, ShedReason::kAdmission);

  // 1s window at t=3.5s: only second 3.
  SloWindowStats w1 = mon.window(3 * kSec + kSec / 2, 1);
  EXPECT_EQ(w1.served, 1u);
  EXPECT_EQ(w1.on_time, 0u);
  EXPECT_EQ(w1.shed, 1u);
  EXPECT_EQ(w1.shed_by_reason[static_cast<int>(ShedReason::kAdmission)],
            1u);
  EXPECT_DOUBLE_EQ(w1.goodput_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(w1.shed_fraction(), 0.5);

  // 10s window: everything so far.
  SloWindowStats w10 = mon.window(3 * kSec + kSec / 2, 10);
  EXPECT_EQ(w10.served, 3u);
  EXPECT_EQ(w10.on_time, 2u);
  EXPECT_EQ(w10.shed, 1u);
  EXPECT_EQ(w10.p99_ns,
            HistogramLayout::upper_bound(
                HistogramLayout::bucket_of(20 * kMs)));

  // Far in the future the ring has recycled those seconds: empty.
  SloWindowStats later = mon.window(200 * kSec, 60);
  EXPECT_EQ(later.finished(), 0u);
  EXPECT_DOUBLE_EQ(later.goodput_fraction(), 1.0);  // vacuous truth
}

TEST(SloMonitorTest, StaleRingSlicesAreNotResurrected) {
  SloMonitor mon;
  mon.record_served(0, kMs, true);
  // Exactly kRingSeconds later the same slice index recurs; the old
  // second-0 data must not leak into the new second's window.
  const std::uint64_t wrap =
      static_cast<std::uint64_t>(SloMonitor::kRingSeconds) * kSec;
  mon.record_served(wrap, 2 * kMs, true);
  SloWindowStats w = mon.window(wrap, 1);
  EXPECT_EQ(w.served, 1u);
  EXPECT_EQ(w.p99_ns, HistogramLayout::upper_bound(
                          HistogramLayout::bucket_of(2 * kMs)));
}

TEST(SloMonitorTest, P99BreachNamesCalibrationWhenModelUnderpredicts) {
  SloConfig cfg;
  cfg.target_p99_ns = 10 * kMs;
  SloMonitor mon(cfg);
  for (int i = 0; i < 100; ++i)
    mon.record_served(kSec / 2, 50 * kMs, true);
  SloEvidence ev;
  ev.model_ratio = 2.0;
  ev.model_scale = 1.4;
  const std::vector<std::string> diags = mon.evaluate(kSec / 2, ev);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("e2e p99"), std::string::npos);
  EXPECT_NE(diags[0].find("EWMA calibration lagging"),
            std::string::npos);

  // Inside the SLO: silence.
  SloMonitor quiet(cfg);
  quiet.record_served(kSec / 2, 5 * kMs, true);
  EXPECT_TRUE(quiet.evaluate(kSec / 2, ev).empty());
}

TEST(SloMonitorTest, GoodputBreachAttributesDominantLossMode) {
  SloConfig cfg;
  cfg.min_goodput_fraction = 0.9;
  SloMonitor late(cfg);
  for (int i = 0; i < 10; ++i)
    late.record_served(0, 5 * kMs, /*on_time=*/i < 5);
  std::vector<std::string> diags = late.evaluate(0, SloEvidence{});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("goodput"), std::string::npos);
  EXPECT_NE(diags[0].find("served-late dominates"), std::string::npos);

  SloMonitor shedding(cfg);
  shedding.record_served(0, 5 * kMs, true);
  for (int i = 0; i < 9; ++i)
    shedding.record_shed(0, ShedReason::kDeadlineExpired);
  diags = shedding.evaluate(0, SloEvidence{});
  ASSERT_GE(diags.size(), 1u);
  EXPECT_NE(diags[0].find("shedding dominates"), std::string::npos);
  EXPECT_NE(diags[0].find("deadline_expired"), std::string::npos);
}

TEST(SloMonitorTest, ShedSpikeAgainstBaselineIsCalledOut) {
  SloConfig cfg;
  cfg.max_shed_fraction = 0.2;
  SloMonitor mon(cfg);
  // 59 quiet seconds of pure service, then one second of heavy shed.
  for (int s = 0; s < 59; ++s)
    for (int i = 0; i < 10; ++i)
      mon.record_served(static_cast<std::uint64_t>(s) * kSec, 2 * kMs,
                        true);
  const std::uint64_t now = 59 * kSec;
  mon.record_served(now, 2 * kMs, true);
  for (int i = 0; i < 9; ++i)
    mon.record_shed(now, ShedReason::kDeadlineExpired);
  SloEvidence ev;
  ev.filter_repacks = 3;
  const std::vector<std::string> diags = mon.evaluate(now, ev);
  ASSERT_GE(diags.size(), 1u);
  const std::string& d = diags.back();
  EXPECT_NE(d.find("shed fraction"), std::string::npos);
  EXPECT_NE(d.find("1s spike"), std::string::npos);
  EXPECT_NE(d.find("filter-cache repacks seen: 3"), std::string::npos);
}

TEST(ObservabilityTest, ServerFeedsSloWindowsAndReport) {
  ServerOptions opts;
  opts.name = "obs-slo";
  opts.max_batch = 8;
  opts.slo.target_p99_ns = kMs;  // 1ms ceiling the traffic will breach
  Harness h(opts);  // predict(1) = 1ms flat
  // One lingering request: waits 9ms for company that never comes, so
  // e2e = 9ms — an exact, deliberate p99 breach.
  std::future<ServeResult> f = h.server.submit(make_image(1), 10 * kMs);
  h.clock.advance(9 * kMs);
  const ServeResult res = f.get();
  EXPECT_EQ(res.stats.done_ns - res.stats.arrival_ns, 9 * kMs);

  const SloWindowStats w = h.server.slo().window(h.server.now_ns(), 60);
  EXPECT_EQ(w.served, 1u);
  EXPECT_EQ(w.on_time, 1u);
  EXPECT_GT(w.p99_ns, kMs);

  const ServeReport rep = build_serve_report(h.server);
  ASSERT_EQ(rep.slo_windows.size(), 3u);
  EXPECT_EQ(rep.slo_windows[2].served, 1u);
  EXPECT_GT(rep.e2e_p99_ms, 1.0);
  bool has_breach = false;
  for (const std::string& d : rep.diagnoses)
    if (d.find("SLO breach: e2e p99") != std::string::npos)
      has_breach = true;
  EXPECT_TRUE(has_breach);
  // JSON stays a valid document with the SLO rows folded in — the
  // diagnoses strings are free text, so run the whole document through
  // a strict parser to prove the escaping holds.
  const std::string j = rep.to_json();
  EXPECT_NE(j.find("\"slo_windows\""), std::string::npos);
  if (std::system("python3 -c pass > /dev/null 2>&1") == 0) {
    const std::string path = testing::TempDir() + "serve_report.json";
    {
      std::ofstream out(path);
      out << j;
    }
    EXPECT_EQ(std::system(("python3 -m json.tool " + path +
                           " > /dev/null 2>&1")
                              .c_str()),
              0)
        << "json.tool rejected the serve report document";
  }
}

}  // namespace
}  // namespace ndirect::serve
