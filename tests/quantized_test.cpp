// Int8 path tests (DESIGN.md §14): overflow contract, exact-integer
// parity across SDOT/emulated/scalar backends, requantize epilogue
// edge cases, zero-point compensation, nn-graph integration, and the
// quantized ResNet-50 drift bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <random>
#include <vector>

#include "autotune/tuner.h"
#include "conv_shapes.h"
#include "core/quantized.h"
#include "core/quantized_microkernel.h"
#include "nn/models.h"
#include "nn/optimize.h"
#include "platform/workloads.h"
#include "runtime/cpu_info.h"
#include "tensor/rng.h"

namespace ndirect {
namespace {

std::vector<std::uint8_t> random_u8(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(0, 255);
  std::vector<std::uint8_t> v(n);
  for (auto& x : v) x = static_cast<std::uint8_t>(dist(rng));
  return v;
}

std::vector<std::int8_t> random_s8(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(-127, 127);
  std::vector<std::int8_t> v(n);
  for (auto& x : v) x = static_cast<std::int8_t>(dist(rng));
  return v;
}

std::vector<float> random_f32(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

// fp32 reference convolution (double accumulation).
std::vector<float> naive_conv_f32(const std::vector<float>& input,
                                  const std::vector<float>& filter,
                                  const ConvParams& p) {
  const int P = p.P(), Q = p.Q();
  std::vector<float> out(static_cast<std::size_t>(p.output_elems()));
  for (int n = 0; n < p.N; ++n)
    for (int k = 0; k < p.K; ++k)
      for (int oj = 0; oj < P; ++oj)
        for (int oi = 0; oi < Q; ++oi) {
          double sum = 0;
          for (int c = 0; c < p.C; ++c)
            for (int r = 0; r < p.R; ++r) {
              const int ij = p.str * oj + r - p.pad;
              if (ij < 0 || ij >= p.H) continue;
              for (int s = 0; s < p.S; ++s) {
                const int ii = p.str * oi + s - p.pad;
                if (ii < 0 || ii >= p.W) continue;
                sum += static_cast<double>(
                           input[static_cast<std::size_t>(
                               ((std::int64_t{n} * p.C + c) * p.H + ij) *
                                   p.W +
                               ii)]) *
                       filter[static_cast<std::size_t>(
                           ((std::int64_t{k} * p.C + c) * p.R + r) * p.S +
                           s)];
              }
            }
          out[static_cast<std::size_t>(
              ((std::int64_t{n} * p.K + k) * P + oj) * Q + oi)] =
              static_cast<float>(sum);
        }
  return out;
}

std::vector<std::int32_t> run_raw(const ConvParams& p,
                                  const std::vector<std::uint8_t>& in,
                                  int zp,
                                  const std::vector<std::int8_t>& flt,
                                  const Int8ConvOptions& opt,
                                  Int8RunStats* stats = nullptr) {
  std::vector<std::int32_t> out(
      static_cast<std::size_t>(p.output_elems()));
  Int8Output dst;
  dst.i32 = out.data();
  const Int8Conv conv(p, opt);
  conv.run(in.data(), zp, flt.data(), Int8Epilogue{}, dst, stats);
  return out;
}

// ----------------------------------------------------------------------
// choose_qmax_int8: the 2^31 overflow contract
// ----------------------------------------------------------------------

TEST(ChooseQmaxInt8, SmallReductionsGetFullRange) {
  EXPECT_EQ(choose_qmax_int8(1), 127);
  EXPECT_EQ(choose_qmax_int8(512 * 3 * 3), 127);  // largest ResNet CRS
  EXPECT_EQ(choose_qmax_int8(0), 127);            // degenerate input
}

TEST(ChooseQmaxInt8, ExactOverflowBoundary) {
  // 133144 * 127^2 = 2147479576 <= 2^31 - 1, but 133145 * 127^2
  // overflows — the sqrt/floor shortcut gets this boundary wrong.
  EXPECT_EQ(choose_qmax_int8(133144), 127);
  EXPECT_EQ(choose_qmax_int8(133145), 126);
  const std::int64_t len = 133145;
  const std::int64_t q = choose_qmax_int8(len);
  EXPECT_LE(len * q * q, std::numeric_limits<std::int32_t>::max());
  EXPECT_GT(len * (q + 1) * (q + 1),
            std::numeric_limits<std::int32_t>::max());
}

TEST(ChooseQmaxInt8, NeverOverflowsForAnyLength) {
  for (const std::int64_t len :
       {std::int64_t{1}, std::int64_t{1000}, std::int64_t{133144},
        std::int64_t{133145}, std::int64_t{1} << 20,
        std::int64_t{1} << 31, std::int64_t{1} << 40}) {
    const std::int64_t q = choose_qmax_int8(len);
    ASSERT_GE(q, 1);
    ASSERT_LE(q, 127);
    if (len < (std::int64_t{1} << 31)) {
      EXPECT_LE(len * q * q, std::numeric_limits<std::int32_t>::max())
          << "len=" << len;
    }
  }
}

// ----------------------------------------------------------------------
// Exact integer correctness and backend parity
// ----------------------------------------------------------------------

TEST(Int8Conv, RawInt32MatchesNaiveBitwise) {
  const int zps[] = {0, 7, 128, 255};
  int i = 0;
  for (const ConvParams& p : correctness_conv_shapes()) {
    const auto in = random_u8(
        static_cast<std::size_t>(p.input_elems()), 11 + i);
    const auto flt = random_s8(
        static_cast<std::size_t>(p.filter_elems()), 23 + i);
    const int zp = zps[i++ % 4];
    const auto got = run_raw(p, in, zp, flt, {});
    std::vector<std::int32_t> want(got.size());
    naive_conv_int8(in.data(), zp, flt.data(), want.data(), p);
    ASSERT_EQ(got, want) << p << " zp=" << zp;
  }
}

TEST(Int8Conv, BackendsAreBitwiseIdentical) {
  // The exhaustive parity sweep: every correctness shape (ragged W/K
  // tails, strides, pads) through the scalar generic, the emulated
  // vec128 kernels, and — on a dot-product host — the SDOT kernels.
  std::vector<Int8Backend> backends = {Int8Backend::kScalar,
                                       Int8Backend::kEmulated};
  if (int8_preferred_backend() == Int8Backend::kDot) {
    backends.push_back(Int8Backend::kDot);
  }
  int i = 0;
  for (const ConvParams& p : correctness_conv_shapes()) {
    const auto in = random_u8(
        static_cast<std::size_t>(p.input_elems()), 101 + i);
    const auto flt = random_s8(
        static_cast<std::size_t>(p.filter_elems()), 202 + i);
    const int zp = 37 + (i++ % 100);
    std::vector<std::vector<std::int32_t>> outs;
    for (const Int8Backend b : backends) {
      Int8ConvOptions opt;
      opt.backend = b;
      outs.push_back(run_raw(p, in, zp, flt, opt));
    }
    for (std::size_t j = 1; j < outs.size(); ++j) {
      ASSERT_EQ(outs[0], outs[j])
          << p << " backend " << int8_backend_name(backends[j]);
    }
  }
}

TEST(Int8Conv, ForcedBlocksStayExact) {
  // Non-default register blocks (the auto-tuner's search moves) must
  // not change results.
  const ConvParams p{.N = 1, .C = 7, .H = 9, .W = 11, .K = 13, .R = 3,
                     .S = 3, .str = 1, .pad = 1};
  const auto in =
      random_u8(static_cast<std::size_t>(p.input_elems()), 5);
  const auto flt =
      random_s8(static_cast<std::size_t>(p.filter_elems()), 6);
  std::vector<std::int32_t> want(
      static_cast<std::size_t>(p.output_elems()));
  naive_conv_int8(in.data(), 100, flt.data(), want.data(), p);
  for (const RegisterBlock rb : int8_microkernel_blocks()) {
    if (!kernel_block_feasible(rb.vw, rb.vk, p.S)) continue;
    Int8ConvOptions opt;
    opt.force_block = rb;
    ASSERT_EQ(run_raw(p, in, 100, flt, opt), want)
        << "vw=" << rb.vw << " vk=" << rb.vk;
  }
}

TEST(Int8Conv, ZeroPointCompensationCancelsConstantInput) {
  // Input identically equal to the zero point represents real 0
  // everywhere, so every accumulator must come out exactly 0 — this is
  // what makes border padding exact.
  const ConvParams p{.N = 1, .C = 5, .H = 8, .W = 8, .K = 9, .R = 3,
                     .S = 3, .str = 1, .pad = 1};
  for (const int zp : {0, 1, 100, 128, 255}) {
    const std::vector<std::uint8_t> in(
        static_cast<std::size_t>(p.input_elems()),
        static_cast<std::uint8_t>(zp));
    const auto flt =
        random_s8(static_cast<std::size_t>(p.filter_elems()), 7);
    const auto out = run_raw(p, in, zp, flt, {});
    for (const std::int32_t v : out) ASSERT_EQ(v, 0) << "zp=" << zp;
  }
}

// ----------------------------------------------------------------------
// Requantize epilogue edge cases
// ----------------------------------------------------------------------

// 1x1 conv with C=K=1 and unit filter: raw acc = u - zp, a transparent
// harness for the requantize formula.
ConvParams identity_params(int w) {
  return {.N = 1, .C = 1, .H = 1, .W = w, .K = 1, .R = 1, .S = 1,
          .str = 1, .pad = 0};
}

std::vector<std::int8_t> run_s8(const ConvParams& p,
                                const std::vector<std::uint8_t>& in,
                                int zp,
                                const std::vector<std::int8_t>& flt,
                                const Int8Epilogue& ep) {
  std::vector<std::int8_t> out(
      static_cast<std::size_t>(p.output_elems()));
  Int8Output dst;
  dst.s8 = out.data();
  const Int8Conv conv(p, {});
  conv.run(in.data(), zp, flt.data(), ep, dst);
  return out;
}

TEST(Requantize, SaturatesAtPlusMinus127) {
  const ConvParams p = identity_params(4);
  const std::vector<std::uint8_t> in = {255, 0, 200, 56};  // acc ±127ish
  const std::vector<std::int8_t> flt = {1};
  const float scale = 1000.0f;  // drives everything past the s8 range
  Int8Epilogue ep;
  ep.requant_scale = &scale;
  const auto out = run_s8(p, in, 128, flt, ep);
  EXPECT_EQ(out[0], 127);   // acc=+127, huge scale -> clamp high
  EXPECT_EQ(out[1], -127);  // acc=-128 -> clamp low (symmetric range)
  EXPECT_EQ(out[2], 127);
  EXPECT_EQ(out[3], -127);
}

TEST(Requantize, RoundsHalfToEven) {
  const ConvParams p = identity_params(6);
  // acc = u - 128: 1, 3, 5, -1, -3, 2.
  const std::vector<std::uint8_t> in = {129, 131, 133, 127, 125, 130};
  const std::vector<std::int8_t> flt = {1};
  const float scale = 0.5f;  // products: .5, 1.5, 2.5, -.5, -1.5, 1.
  Int8Epilogue ep;
  ep.requant_scale = &scale;
  const auto out = run_s8(p, in, 128, flt, ep);
  EXPECT_EQ(out[0], 0);   // 0.5 -> 0 (ties to even, not 1)
  EXPECT_EQ(out[1], 2);   // 1.5 -> 2
  EXPECT_EQ(out[2], 2);   // 2.5 -> 2 (not 3)
  EXPECT_EQ(out[3], 0);   // -0.5 -> 0
  EXPECT_EQ(out[4], -2);  // -1.5 -> -2
  EXPECT_EQ(out[5], 1);   // exact 1.0
}

TEST(Requantize, BiasZeroPointAndRelu) {
  const ConvParams p = identity_params(3);
  const std::vector<std::uint8_t> in = {138, 118, 128};  // acc 10,-10,0
  const std::vector<std::int8_t> flt = {1};
  const float scale = 1.0f;
  const std::int32_t bias = 5;
  Int8Epilogue ep;
  ep.requant_scale = &scale;
  ep.bias_i32 = &bias;
  ep.out_zero_point = 3;
  const auto plain = run_s8(p, in, 128, flt, ep);
  EXPECT_EQ(plain[0], 18);  // (10+5)*1 + 3
  EXPECT_EQ(plain[1], -2);  // (-10+5)*1 + 3
  EXPECT_EQ(plain[2], 8);   // (0+5)*1 + 3
  ep.relu = true;  // clamps at the output zero point
  const auto relued = run_s8(p, in, 128, flt, ep);
  EXPECT_EQ(relued[0], 18);
  EXPECT_EQ(relued[1], 3);
  EXPECT_EQ(relued[2], 8);
}

TEST(Requantize, S8MatchesScalarFormulaOnRandomConvs) {
  // The s8 epilogue applied to the engine's raw accumulators must
  // reproduce the documented formula exactly, per channel.
  const ConvParams p{.N = 1, .C = 6, .H = 7, .W = 9, .K = 10, .R = 3,
                     .S = 3, .str = 1, .pad = 1};
  const auto in =
      random_u8(static_cast<std::size_t>(p.input_elems()), 42);
  const auto flt =
      random_s8(static_cast<std::size_t>(p.filter_elems()), 43);
  const int zp = 119;
  std::vector<float> scales(static_cast<std::size_t>(p.K));
  std::vector<std::int32_t> bias(static_cast<std::size_t>(p.K));
  std::mt19937_64 rng(44);
  std::uniform_real_distribution<float> sdist(1e-4f, 5e-3f);
  std::uniform_int_distribution<std::int32_t> bdist(-500, 500);
  for (int k = 0; k < p.K; ++k) {
    scales[static_cast<std::size_t>(k)] = sdist(rng);
    bias[static_cast<std::size_t>(k)] = bdist(rng);
  }
  Int8Epilogue ep;
  ep.requant_scale = scales.data();
  ep.bias_i32 = bias.data();
  ep.out_zero_point = -7;
  const auto got = run_s8(p, in, zp, flt, ep);
  const auto raw = run_raw(p, in, zp, flt, {});
  const std::int64_t plane = std::int64_t{p.P()} * p.Q();
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto k =
        static_cast<std::size_t>((static_cast<std::int64_t>(i) / plane) %
                                 p.K);
    const std::int32_t a = raw[i] + bias[k];
    const std::int32_t want =
        std::clamp<std::int32_t>(
            static_cast<std::int32_t>(std::nearbyintf(
                static_cast<float>(a) * scales[k])) - 7,
            -127, 127);
    ASSERT_EQ(static_cast<std::int32_t>(got[i]), want) << i;
  }
}

// ----------------------------------------------------------------------
// Quantization helpers and fp32 round trip
// ----------------------------------------------------------------------

TEST(QuantizeHelpers, ActivationRangeAlwaysCoversZero) {
  const std::vector<float> positive = {0.5f, 1.0f, 2.0f};
  const QuantizedActivation q =
      quantize_activation_u8(positive.data(), positive.size());
  // All-positive data: zero_point sits at 0 and 0.0 is exact.
  EXPECT_EQ(q.zero_point, 0);
  const std::vector<float> negative = {-1.0f, -0.25f};
  const QuantizedActivation qn =
      quantize_activation_u8(negative.data(), negative.size());
  EXPECT_EQ(qn.zero_point, 255);
}

TEST(QuantizeHelpers, PerChannelScalesTrackChannelRanges) {
  const ConvParams p{.N = 1, .C = 2, .H = 4, .W = 4, .K = 3, .R = 3,
                     .S = 3, .str = 1, .pad = 1};
  auto flt = random_f32(static_cast<std::size_t>(p.filter_elems()), 9);
  // Blow up channel 1 by 100x: its scale must scale with it while the
  // others stay put.
  const std::int64_t crs = std::int64_t{p.C} * p.R * p.S;
  for (std::int64_t e = 0; e < crs; ++e) {
    flt[static_cast<std::size_t>(crs + e)] *= 100.0f;
  }
  const QuantizedFilterI8 q = quantize_filter_i8(flt.data(), p);
  EXPECT_GT(q.scales[1], 30.0f * q.scales[0]);
  EXPECT_LT(q.scales[2], 3.0f * q.scales[0]);
}

TEST(Int8Conv, PerChannelBeatsPerTensorOnSkewedFilters) {
  const ConvParams p{.N = 1, .C = 4, .H = 8, .W = 8, .K = 4, .R = 3,
                     .S = 3, .str = 1, .pad = 1};
  const auto in_f =
      random_f32(static_cast<std::size_t>(p.input_elems()), 50);
  auto flt_f = random_f32(static_cast<std::size_t>(p.filter_elems()), 51);
  const std::int64_t crs = std::int64_t{p.C} * p.R * p.S;
  // Channel 0 is 50x larger than the rest: a per-tensor scale wastes
  // nearly all of the small channels' resolution.
  for (std::int64_t e = 0; e < crs; ++e) {
    flt_f[static_cast<std::size_t>(e)] *= 50.0f;
  }
  const auto ref = naive_conv_f32(in_f, flt_f, p);

  const auto got = int8_conv_fp32(in_f.data(), flt_f.data(), p);

  // Per-tensor baseline: one global scale, same engine.
  const QuantizedActivation qin = quantize_activation_u8(
      in_f.data(), static_cast<std::size_t>(p.input_elems()));
  float max_abs = 0;
  for (const float v : flt_f) max_abs = std::max(max_abs, std::fabs(v));
  const float gscale = max_abs / 127.0f;
  std::vector<std::int8_t> gflt(flt_f.size());
  for (std::size_t i = 0; i < flt_f.size(); ++i) {
    gflt[i] = static_cast<std::int8_t>(std::clamp<std::int32_t>(
        static_cast<std::int32_t>(std::lrintf(flt_f[i] / gscale)), -127,
        127));
  }
  const auto raw = run_raw(p, qin.values, qin.zero_point, gflt, {});
  std::vector<float> per_tensor(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    per_tensor[i] = qin.scale * gscale * static_cast<float>(raw[i]);
  }

  // Compare only the small channels (k >= 1): channel 0 sets the
  // global scale, so its error is identical under both schemes and
  // would mask the resolution the small channels lose.
  const std::size_t plane =
      static_cast<std::size_t>(p.P()) * static_cast<std::size_t>(p.Q());
  auto max_err = [&](const std::vector<float>& v) {
    double m = 0;
    for (std::size_t i = plane; i < v.size(); ++i) {
      m = std::max(m, std::fabs(static_cast<double>(v[i]) - ref[i]));
    }
    return m;
  };
  const double pc = max_err(got), pt = max_err(per_tensor);
  EXPECT_LT(pc, 0.25 * pt)
      << "per-channel err " << pc << " vs per-tensor " << pt;
}

TEST(Int8Conv, Fp32RoundTripIsAccurate) {
  for (const ConvParams& p : correctness_conv_shapes()) {
    const auto in_f =
        random_f32(static_cast<std::size_t>(p.input_elems()), 60);
    const auto flt_f =
        random_f32(static_cast<std::size_t>(p.filter_elems()), 61);
    const auto ref = naive_conv_f32(in_f, flt_f, p);
    const auto got = int8_conv_fp32(in_f.data(), flt_f.data(), p);
    double ref_mag = 1e-6;
    for (const float v : ref) {
      ref_mag = std::max(ref_mag, std::fabs(static_cast<double>(v)));
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i], ref[i], 0.02 * ref_mag) << p << " at " << i;
    }
  }
}

TEST(Int8Conv, FusedBiasAndReluMatchUnfused) {
  const ConvParams p{.N = 2, .C = 5, .H = 7, .W = 9, .K = 6, .R = 3,
                     .S = 3, .str = 1, .pad = 1};
  const auto in_f =
      random_f32(static_cast<std::size_t>(p.input_elems()), 70);
  const auto flt_f =
      random_f32(static_cast<std::size_t>(p.filter_elems()), 71);
  const auto bias = random_f32(static_cast<std::size_t>(p.K), 72);
  const auto plain = int8_conv_fp32(in_f.data(), flt_f.data(), p);
  const auto fused =
      int8_conv_fp32(in_f.data(), flt_f.data(), p, bias.data(), true);
  const std::int64_t plane = std::int64_t{p.P()} * p.Q();
  for (std::size_t i = 0; i < fused.size(); ++i) {
    const auto k =
        static_cast<std::size_t>((static_cast<std::int64_t>(i) / plane) %
                                 p.K);
    const float want = std::max(0.0f, plain[i] + bias[k]);
    ASSERT_NEAR(fused[i], want, 1e-4f) << i;
  }
}

// ----------------------------------------------------------------------
// Kernel registry, fallback accounting, Table 4 coverage
// ----------------------------------------------------------------------

TEST(Int8Registry, InstantiatesTheFullPolicyGrid) {
  std::size_t expected = 0;
  for (const int S : {1, 3, 5, 7}) {
    for (int vw = 4; vw <= kMaxVw; vw += 4) {
      for (int vk = 4; vk <= kMaxVk; vk += 4) {
        if (kernel_block_feasible(vw, vk, S)) ++expected;
      }
    }
  }
  expected *= 2;  // strides 1, 2
  expected *= NDIRECT_INT8_DOT_COMPILED ? 2 : 1;  // backends
  EXPECT_EQ(int8_kernel_registry().size(), expected);
  for (const I8KernelEntry& e : int8_kernel_registry()) {
    EXPECT_NE(e.fn, nullptr);
    EXPECT_TRUE(kernel_block_feasible(e.vw, e.vk, e.S));
  }
}

TEST(Int8Registry, PreferredBackendRespectsForceNoDotprod) {
  setenv("NDIRECT_FORCE_NO_DOTPROD", "1", 1);
  EXPECT_EQ(int8_preferred_backend(), Int8Backend::kEmulated);
  unsetenv("NDIRECT_FORCE_NO_DOTPROD");
  if (!NDIRECT_INT8_DOT_COMPILED) {
    EXPECT_EQ(int8_preferred_backend(), Int8Backend::kEmulated);
  }
  // The hardware claim must be consistent with the compile target: a
  // kDot preference requires both the compiled kernels and the
  // ASIMDDP hwcap.
  if (int8_preferred_backend() == Int8Backend::kDot) {
    EXPECT_TRUE(NDIRECT_INT8_DOT_COMPILED);
    EXPECT_TRUE(probe_host_cpu().asimddp);
  }
}

TEST(Int8Conv, NoGenericFallbackAcrossTable4) {
  // Every Table 4 layer must resolve to a policy kernel (the acceptance
  // gate: generic-fallback count stays 0 on the quantized suite).
  for (const ConvLayer& layer : table4_layers(1)) {
    const Int8Conv conv(layer.params);
    EXPECT_NE(conv.backend(), Int8Backend::kScalar)
        << "layer " << layer.id << ": " << layer.params.to_string();
  }
  // And an actual run of a late ResNet layer confirms the counter.
  const ConvParams p = table4_layer(21, 1).params;
  const auto in =
      random_u8(static_cast<std::size_t>(p.input_elems()), 80);
  const auto flt =
      random_s8(static_cast<std::size_t>(p.filter_elems()), 81);
  Int8RunStats stats;
  run_raw(p, in, 128, flt, {}, &stats);
  EXPECT_GT(stats.tiles, 0u);
  EXPECT_EQ(stats.generic_fallback, 0u);
  EXPECT_NE(stats.backend, Int8Backend::kScalar);
}

TEST(Int8Conv, ScalarBackendCountsEveryTileAsFallback) {
  const ConvParams p{.N = 1, .C = 4, .H = 6, .W = 6, .K = 4, .R = 3,
                     .S = 3, .str = 1, .pad = 1};
  const auto in =
      random_u8(static_cast<std::size_t>(p.input_elems()), 90);
  const auto flt =
      random_s8(static_cast<std::size_t>(p.filter_elems()), 91);
  Int8ConvOptions opt;
  opt.backend = Int8Backend::kScalar;
  Int8RunStats stats;
  run_raw(p, in, 128, flt, opt, &stats);
  EXPECT_GT(stats.tiles, 0u);
  EXPECT_EQ(stats.generic_fallback, stats.tiles);
}

TEST(Int8Autotune, SweepsTheRegistryBlocks) {
  const ConvParams p{.N = 1, .C = 16, .H = 14, .W = 14, .K = 16, .R = 3,
                     .S = 3, .str = 1, .pad = 1};
  const Int8TuneResult r = autotune_int8_block(p, 0.2);
  EXPECT_FALSE(r.trials.empty());
  EXPECT_GT(r.best_gflops, 0.0);
  EXPECT_TRUE(kernel_block_feasible(r.best.vw, r.best.vk, p.S));
}

// ----------------------------------------------------------------------
// nn-graph integration and the ResNet-50 drift bound
// ----------------------------------------------------------------------

TEST(QuantizedNn, ConvOpQuantizedTracksFp32) {
  const ConvParams p{.N = 1, .C = 8, .H = 14, .W = 14, .K = 12, .R = 3,
                     .S = 3, .str = 1, .pad = 1};
  ConvOp op(p, ConvBackend::Ndirect, 777, /*bias=*/true);
  op.set_fused_relu(true);
  Tensor x({p.N, p.C, p.H, p.W}, Layout::NCHW);
  fill_random(x, 31);
  const Tensor ref = op.forward({&x});
  op.set_quantized(true);
  const Tensor got = op.forward({&x});
  EXPECT_EQ(op.quantized_stats().generic_fallback, 0u);
  double ref_mag = 1e-6;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ref_mag = std::max(ref_mag, std::fabs(static_cast<double>(ref[i])));
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], 0.03 * ref_mag) << i;
  }
  // Back to fp32 restores the exact original path.
  op.set_quantized(false);
  const Tensor back = op.forward({&x});
  for (std::size_t i = 0; i < back.size(); ++i) {
    ASSERT_EQ(back[i], ref[i]);
  }
}

TEST(QuantizedNn, QuantizeConvsPassSwitchesNdirectConvsOnly) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  auto net = build_resnet50(1, opts);
  const int convs = static_cast<int>(net->conv_ops().size());
  EXPECT_EQ(quantize_convs(*net), convs);
  for (ConvOp* c : net->conv_ops()) EXPECT_TRUE(c->quantized());
}

TEST(QuantizedNn, ResNet50DriftWithinBound) {
  // End-to-end quantized inference: the whole (reduced) ResNet-50 with
  // every conv in int8. The documented drift bound (EXPERIMENTS.md):
  // the final softmax distribution moves by < 0.05 L-inf relative to
  // fp32 — per-channel filter scales plus per-layer activation
  // recalibration keep ~25 chained quantized convs this tight.
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  auto fp32_net = build_resnet50(1, opts);
  auto int8_net = build_resnet50(1, opts);  // same seed, same weights
  fold_batchnorm(*fp32_net);
  fuse_conv_relu(*fp32_net);
  fold_batchnorm(*int8_net);
  fuse_conv_relu(*int8_net);
  EXPECT_GT(quantize_convs(*int8_net), 0);

  Tensor input({1, 3, 32, 32}, Layout::NCHW);
  fill_random(input, 99);
  const Tensor ref = fp32_net->run(input);
  const Tensor got = int8_net->run(input);
  ASSERT_EQ(ref.size(), got.size());
  double drift = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    drift = std::max(
        drift, std::fabs(static_cast<double>(ref[i]) - got[i]));
  }
  EXPECT_LT(drift, 0.05) << "softmax L-inf drift";
  // No conv fell back to the scalar generic kernel.
  for (ConvOp* c : int8_net->conv_ops()) {
    EXPECT_EQ(c->quantized_stats().generic_fallback, 0u);
  }
}

}  // namespace
}  // namespace ndirect
