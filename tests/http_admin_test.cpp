// Admin-plane tests: the embedded HTTP server's protocol corners and
// the AdminServer endpoints over live serve::Server instances
// (DESIGN.md §17).
//
// Lifecycle tests drive readiness deterministically: a gated
// GraphFactory parks the server's warm-up (or its drain-time batch
// build) on a test-controlled latch, so /readyz is asserted to answer
// 503 *while* the server is provably warming or draining — no sleeps,
// no "probably still starting" races. The concurrent-scrape test is
// the TSan target: client threads hammer /metrics, /readyz and /slo
// while a VirtualClock-driven server serves real traffic.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "runtime/http.h"
#include "runtime/metrics.h"
#include "runtime/shutdown.h"
#include "runtime/trace.h"
#include "serve/admin.h"
#include "serve/clock.h"
#include "serve/latency_model.h"
#include "serve/server.h"
#include "tensor/rng.h"

#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_THREAD__) || __has_feature(thread_sanitizer)
#define NDIRECT_TSAN 1
// Same suppression as serving_test.cpp: the refcounted release of a
// future's stored exception runs inside the system libstdc++, which is
// not TSan-instrumented, so its teardown reports as a race.
extern "C" const char* __tsan_default_suppressions() {
  return "race:std::__exception_ptr::exception_ptr::_M_release\n"
         "race:std::runtime_error::~runtime_error\n";
}
#else
#define NDIRECT_TSAN 0
#endif

namespace ndirect::serve {
namespace {

constexpr std::uint64_t kMs = 1'000'000;

// ----------------------------------------------------------------------
// Test graph + gated factory
// ----------------------------------------------------------------------

std::unique_ptr<Graph> make_test_graph(int batch, std::uint64_t seed) {
  auto g = std::make_unique<Graph>(batch, 2, 8, 8);
  const ConvParams p{.N = batch, .C = 2, .H = 8, .W = 8, .K = 4,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const NodeId conv = g->add(
      std::make_unique<ConvOp>(p, ConvBackend::Ndirect, seed, true),
      {0});
  g->add(std::make_unique<ReluOp>(), {conv});
  return g;
}

Tensor make_image(std::uint64_t seed) {
  Tensor t = make_input_nchw(1, 2, 8, 8);
  fill_random(t, seed);
  return t;
}

/// Latch the tests park a GraphFactory on: arm(batch) makes the next
/// factory call for that batch size block until release(); the test
/// waits on await_blocked() so assertions run while the build is
/// provably in flight.
class FactoryGate {
 public:
  void arm(int batch) {
    std::lock_guard<std::mutex> lk(mu_);
    armed_.insert(batch);
    open_ = false;
  }

  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_ = true;
      armed_.clear();
    }
    cv_.notify_all();
  }

  void await_blocked() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return waiting_ > 0; });
  }

  void enter(int batch) {
    std::unique_lock<std::mutex> lk(mu_);
    if (open_ || armed_.count(batch) == 0) return;
    ++waiting_;
    cv_.notify_all();
    cv_.wait(lk, [this] { return open_; });
    --waiting_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::set<int> armed_;
  bool open_ = false;
  int waiting_ = 0;
};

GraphFactory gated_factory(std::uint64_t seed, FactoryGate& gate) {
  return [seed, &gate](int batch) {
    gate.enter(batch);
    return make_test_graph(batch, seed);
  };
}

GraphFactory plain_factory(std::uint64_t seed) {
  return [seed](int batch) { return make_test_graph(batch, seed); };
}

/// One raw TCP round trip: send `payload` verbatim, read to EOF — for
/// the malformed-request paths the well-formed client cannot produce.
std::string raw_request(int port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::string out;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    (void)!::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL);
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return out;
}

// ----------------------------------------------------------------------
// HttpServer: protocol behaviour
// ----------------------------------------------------------------------

TEST(HttpServerTest, RoutesDispatchAndErrorPaths) {
  HttpServer srv;
  srv.route("GET", "/hello", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "hi";
    return r;
  });
  srv.route("POST", "/echo", [](const HttpRequest& req) {
    HttpResponse r;
    r.body = req.body;
    return r;
  });
  srv.route("GET", "/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  srv.start();
  ASSERT_GT(srv.port(), 0);

  HttpClientResponse ok = http_get("127.0.0.1", srv.port(), "/hello");
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "hi");

  HttpClientResponse echo =
      http_post("127.0.0.1", srv.port(), "/echo", "payload bytes");
  ASSERT_TRUE(echo.ok) << echo.error;
  EXPECT_EQ(echo.status, 200);
  EXPECT_EQ(echo.body, "payload bytes");

  EXPECT_EQ(http_get("127.0.0.1", srv.port(), "/nope").status, 404);
  // Known path, wrong method: 405, not 404.
  EXPECT_EQ(http_post("127.0.0.1", srv.port(), "/hello").status, 405);
  EXPECT_EQ(http_get("127.0.0.1", srv.port(), "/boom").status, 500);

  EXPECT_GE(srv.requests_handled(), 5u);
  srv.stop();
  srv.stop();  // idempotent
  EXPECT_FALSE(srv.running());
}

TEST(HttpServerTest, QueryParamsParseAndPathStaysExact) {
  HttpServer srv;
  srv.route("GET", "/q", [](const HttpRequest& req) {
    HttpResponse r;
    r.body = req.query_param("a") + "|" + req.query_param("b", "dflt") +
             "|" + req.query;
    return r;
  });
  srv.start();
  HttpClientResponse got =
      http_get("127.0.0.1", srv.port(), "/q?a=1&c=3");
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.status, 200);  // query string must not break routing
  EXPECT_EQ(got.body, "1|dflt|a=1&c=3");
}

TEST(HttpServerTest, MalformedRequestLineAnswers400) {
  HttpServer srv;
  srv.route("GET", "/", [](const HttpRequest&) { return HttpResponse{}; });
  srv.start();
  const std::string reply =
      raw_request(srv.port(), "NOT-AN-HTTP-REQUEST\r\n\r\n");
  EXPECT_NE(reply.find("400 Bad Request"), std::string::npos) << reply;
}

TEST(HttpServerTest, OversizedRequestAnswers400) {
  HttpServerOptions opts;
  opts.max_request_bytes = 256;
  HttpServer srv(opts);
  srv.route("POST", "/big", [](const HttpRequest&) {
    return HttpResponse{};
  });
  srv.start();
  HttpClientResponse got = http_post("127.0.0.1", srv.port(), "/big",
                                     std::string(4096, 'x'));
  // The server answers 400 as soon as the cap trips; depending on
  // timing the client may instead see the connection reset mid-send.
  if (got.ok) EXPECT_EQ(got.status, 400);
}

TEST(HttpServerTest, ConcurrentClientsAllAnswered) {
  HttpServer srv;
  std::atomic<int> hits{0};
  srv.route("GET", "/count", [&hits](const HttpRequest&) {
    hits.fetch_add(1);
    HttpResponse r;
    r.body = "ok";
    return r;
  });
  srv.start();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::atomic<int> good{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const HttpClientResponse r =
            http_get("127.0.0.1", srv.port(), "/count");
        if (r.ok && r.status == 200 && r.body == "ok") good.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(good.load(), kThreads * kPerThread);
  EXPECT_EQ(hits.load(), kThreads * kPerThread);
  EXPECT_EQ(srv.requests_handled(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

// ----------------------------------------------------------------------
// AdminServer endpoints
// ----------------------------------------------------------------------

TEST(AdminServerTest, MetricsHealthzAndContentTypes) {
  AdminServer admin;
  admin.start();
  ASSERT_GT(admin.port(), 0);

  const HttpClientResponse health =
      http_get("127.0.0.1", admin.port(), "/healthz");
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const HttpClientResponse metrics =
      http_get("127.0.0.1", admin.port(), "/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("openmetrics-text"),
            std::string::npos)
      << metrics.content_type;
  EXPECT_NE(metrics.body.find("# EOF"), std::string::npos);
  // The exposition describes the observability plane itself.
  EXPECT_NE(metrics.body.find("ndirect_trace_dropped_events"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("ndirect_metrics_instruments"),
            std::string::npos);

  admin.stop();
  EXPECT_FALSE(admin.running());
}

TEST(AdminServerTest, ReadyzFollowsServerLifecycle) {
  AdminServer admin;
  admin.start();

  // No server registered: not ready.
  HttpClientResponse r = http_get("127.0.0.1", admin.port(), "/readyz");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"ready\": false"), std::string::npos);

  VirtualClock clock;
  AffineLatencyModel model(kMs, 0);
  FactoryGate gate;
  gate.arm(1);  // park the warm-up's batch-1 probe build

  ServerOptions opts;
  opts.name = "lifecycle";
  opts.max_batch = 4;
  opts.clock = &clock;
  opts.model = &model;
  opts.calibrate = false;
  std::unique_ptr<Server> server;
  std::thread ctor([&] {
    server = std::make_unique<Server>(gated_factory(11, gate), opts);
  });

  // The constructor is provably inside the probe build now: the server
  // must already be visible and warming.
  gate.await_blocked();
  r = http_get("127.0.0.1", admin.port(), "/readyz");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"state\": \"warming\""), std::string::npos)
      << r.body;

  gate.release();
  ctor.join();
  ASSERT_TRUE(server->ready());
  r = http_get("127.0.0.1", admin.port(), "/readyz");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"ready\": true"), std::string::npos);

  // Two requests with distant deadlines linger in the queue (the lane
  // waits for company until deadline minus predicted, far in virtual
  // time), so drain-time shutdown coalesces them into one batch-2
  // launch whose cold graph build parks on the re-armed gate: the
  // server is provably draining while we probe.
  gate.arm(2);
  std::future<ServeResult> f1 =
      server->submit(make_image(1), 1000 * kMs);
  std::future<ServeResult> f2 =
      server->submit(make_image(2), 1000 * kMs);
  std::thread drainer([&] { server->shutdown(/*drain=*/true); });
  gate.await_blocked();
  r = http_get("127.0.0.1", admin.port(), "/readyz");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"state\": \"draining\""), std::string::npos)
      << r.body;

  gate.release();
  drainer.join();
  (void)f1.get();
  (void)f2.get();
  EXPECT_EQ(server->state(), ServeState::kStopped);
  r = http_get("127.0.0.1", admin.port(), "/readyz");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"state\": \"stopped\""), std::string::npos);

  server.reset();  // unregisters
  r = http_get("127.0.0.1", admin.port(), "/readyz");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"servers\": []"), std::string::npos);
}

TEST(AdminServerTest, SloAndReportEndpoints) {
  AdminServer admin;
  admin.start();

  VirtualClock clock;
  AffineLatencyModel model(kMs, 0);
  ServerOptions opts;
  opts.name = "tenant-a";
  opts.max_batch = 2;
  opts.max_linger_ns = 0;  // launch immediately: no clock advances
  opts.clock = &clock;
  opts.model = &model;
  opts.calibrate = false;
  Server server(plain_factory(11), opts);
  for (int i = 0; i < 4; ++i)
    (void)server.submit(make_image(static_cast<std::uint64_t>(i)),
                        kNeverNs)
        .get();

  const HttpClientResponse slo =
      http_get("127.0.0.1", admin.port(), "/slo");
  ASSERT_TRUE(slo.ok) << slo.error;
  EXPECT_EQ(slo.status, 200);
  EXPECT_NE(slo.content_type.find("application/json"),
            std::string::npos);
  EXPECT_NE(slo.body.find("\"name\": \"tenant-a\""), std::string::npos);
  EXPECT_NE(slo.body.find("\"window_s\": 60"), std::string::npos);
  EXPECT_NE(slo.body.find("\"diagnoses\""), std::string::npos);

  const HttpClientResponse rep =
      http_get("127.0.0.1", admin.port(), "/report");
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.status, 200);
  EXPECT_NE(rep.body.find("\"report\": {"), std::string::npos);
  EXPECT_NE(rep.body.find("\"served\": 4"), std::string::npos);
  EXPECT_NE(rep.body.find("\"goodput_fraction\""), std::string::npos);
}

TEST(AdminServerTest, TraceEndpointsRoundTrip) {
  AdminServer admin;
  admin.start();

  HttpClientResponse start = http_post("127.0.0.1", admin.port(),
                                       "/trace/start?events=512");
  ASSERT_TRUE(start.ok) << start.error;
  EXPECT_EQ(start.status, 200);
  EXPECT_NE(start.body.find("\"tracing\": true"), std::string::npos);
  EXPECT_NE(start.body.find("\"capacity\": 512"), std::string::npos);
  EXPECT_TRUE(TraceSession::global().enabled());

  TraceSession::global().complete("admin-test-span", 0, 100);

  // Wrong method on a trace route: 405, and the session stays up.
  EXPECT_EQ(http_get("127.0.0.1", admin.port(), "/trace/stop").status,
            405);
  EXPECT_TRUE(TraceSession::global().enabled());

  const HttpClientResponse stop =
      http_post("127.0.0.1", admin.port(), "/trace/stop");
  ASSERT_TRUE(stop.ok) << stop.error;
  EXPECT_EQ(stop.status, 200);
  EXPECT_FALSE(TraceSession::global().enabled());
  EXPECT_NE(stop.body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(stop.body.find("admin-test-span"), std::string::npos);
  TraceSession::global().clear();
}

TEST(AdminServerTest, AdminHookClosesTransportBeforeServersDrain) {
  // The LIFO chain with re-fronting must run: admin stop, then server
  // drain. The sentinel hook registered *between* the server and the
  // admin's re-fronted hook observes exactly that half-way state.
  AdminServer& admin = AdminServer::global();
  admin.start();
  ASSERT_TRUE(admin.running());

  VirtualClock clock;
  AffineLatencyModel model(kMs, 0);
  ServerOptions opts;
  opts.max_batch = 2;
  opts.max_linger_ns = 0;
  opts.clock = &clock;
  opts.model = &model;
  opts.calibrate = false;
  Server server(plain_factory(11), opts);

  bool admin_stopped_first = false;
  ServeState state_at_sentinel = ServeState::kStopped;
  const std::uint64_t sentinel =
      register_exit_hook("test-sentinel", [&] {
        admin_stopped_first = !admin.running();
        state_at_sentinel = server.state();
      });
  // The sentinel registered after the server re-fronted the admin
  // hook, so re-front once more; the chain now runs admin, sentinel,
  // server drain — the sentinel observes the half-way state.
  admin.refresh_exit_hook();

  run_exit_hooks();
  unregister_exit_hook(sentinel);

  EXPECT_FALSE(admin.running());
  EXPECT_EQ(server.state(), ServeState::kStopped);
  // The sentinel ran after the admin hook but before the server's
  // drain hook: transport already closed, server not yet stopped.
  EXPECT_TRUE(admin_stopped_first);
  EXPECT_EQ(state_at_sentinel, ServeState::kReady);
}

TEST(AdminServerTest, GlobalAdminStaysDownWithoutEnv) {
  if (std::getenv("NDIRECT_ADMIN_PORT") != nullptr)
    GTEST_SKIP() << "NDIRECT_ADMIN_PORT is set in this environment";
  EXPECT_FALSE(AdminServer::global().running());
  EXPECT_EQ(AdminServer::global().port(), 0);
}

// ----------------------------------------------------------------------
// Concurrent scrape under live traffic (the TSan target)
// ----------------------------------------------------------------------

TEST(AdminServerTest, ConcurrentScrapeWhileServing) {
  AdminServer admin;
  admin.start();

  VirtualClock clock;
  AffineLatencyModel model(kMs, 0);
  ServerOptions opts;
  opts.name = "scrape-target";
  opts.max_batch = 4;
  opts.executors = 2;
  opts.max_linger_ns = 0;  // batches launch without clock advances
  opts.clock = &clock;
  opts.model = &model;
  opts.calibrate = false;
  Server server(plain_factory(11), opts);

  constexpr int kScrapers = 4;
  constexpr int kScrapesEach = 12;
  constexpr int kRequests = 48;
  std::atomic<int> scrape_failures{0};

  std::vector<std::thread> scrapers;
  for (int t = 0; t < kScrapers; ++t) {
    scrapers.emplace_back([&, t] {
      const char* paths[] = {"/metrics", "/readyz", "/slo"};
      for (int i = 0; i < kScrapesEach; ++i) {
        const char* path = paths[(t + i) % 3];
        const HttpClientResponse r =
            http_get("127.0.0.1", admin.port(), path);
        if (!r.ok || r.status != 200) {
          scrape_failures.fetch_add(1);
          continue;
        }
        if (std::string(path) == "/metrics" &&
            r.body.find("# EOF") == std::string::npos)
          scrape_failures.fetch_add(1);
      }
    });
  }

  std::vector<std::future<ServeResult>> futs;
  futs.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i)
    futs.push_back(server.submit(
        make_image(static_cast<std::uint64_t>(i)), kNeverNs));
  std::uint64_t served = 0;
  for (std::future<ServeResult>& f : futs) {
    (void)f.get();
    ++served;
  }
  for (std::thread& t : scrapers) t.join();

  EXPECT_EQ(served, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(scrape_failures.load(), 0);
  EXPECT_EQ(admin.requests_handled(),
            static_cast<std::uint64_t>(kScrapers * kScrapesEach));
  const ServerStatsSnapshot s = server.stats();
  EXPECT_EQ(s.served, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.submitted, s.served + s.shed_total() + s.failed + s.queued);
}

// ----------------------------------------------------------------------
// SIGTERM graceful shutdown (fork-based; not under TSan)
// ----------------------------------------------------------------------

TEST(SignalShutdownTest, SigtermRunsExitHooksAndExitsZero) {
#if NDIRECT_TSAN
  GTEST_SKIP() << "fork-based signal test is not TSan-clean";
#else
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm the handlers, prove the hook chain ran by flipping
    // the exit status from 7 to 0 inside a registered hook.
    if (!install_signal_shutdown()) _exit(6);
    static std::atomic<bool> hook_ran{false};
    register_exit_hook("signal-test", [] { hook_ran.store(true); });
    raise(SIGTERM);
    for (int i = 0; i < 5000; ++i) {
      if (hook_ran.load()) break;
      usleep(1000);
    }
    // The watcher calls std::exit(0) after the chain; if we are still
    // alive long enough to reach this, fail loudly.
    usleep(5'000'000);
    _exit(7);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child killed by signal "
                                 << WTERMSIG(status);
  EXPECT_EQ(WEXITSTATUS(status), 0);
#endif
}

TEST(SignalShutdownTest, SecondInstallIsNoOp) {
#if NDIRECT_TSAN
  GTEST_SKIP() << "signal handler install shared with fork test";
#else
  // Whichever call is first wins; within one process every later call
  // reports "already installed".
  const bool first = install_signal_shutdown();
  EXPECT_FALSE(install_signal_shutdown());
  (void)first;
#endif
}

}  // namespace
}  // namespace ndirect::serve
