// Correctness tests for the nDirect engine and micro-kernels.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "baselines/naive_conv.h"
#include "conv_shapes.h"
#include "core/filter_transform.h"
#include "core/microkernel.h"
#include "core/ndirect.h"
#include "runtime/scratch.h"
#include "tensor/compare.h"
#include "tensor/rng.h"
#include "tensor/transforms.h"

namespace ndirect {
namespace {

// ----------------------------------------------------------------------
// Filter transform
// ----------------------------------------------------------------------

TEST(FilterTransform, TileMatchesWholeTensorTransform) {
  // The tiled on-the-fly transform must produce byte-identical blocks of
  // the ahead-of-time KPacked layout (restricted to the tile's channels).
  const int K = 20, C = 10, R = 3, S = 3, vk = 8;
  Tensor f = make_filter_kcrs(K, C, R, S);
  fill_random(f, 1);
  const Tensor whole = pack_filter_kpacked(f, vk);

  const int kt = 8, tkn = 16, ct = 3, tcn = 5;
  std::vector<float> tile(static_cast<std::size_t>((tkn + vk - 1) / vk) *
                          tcn * R * S * vk);
  transform_filter_tile(f.data(), K, C, R, S, kt, tkn, ct, tcn, vk,
                        tile.data());

  for (int kb = 0; kb < tkn / vk; ++kb) {
    for (int c = 0; c < tcn; ++c) {
      for (int e = 0; e < R * S * vk; ++e) {
        const std::int64_t tile_idx =
            (static_cast<std::int64_t>(kb) * tcn + c) * R * S * vk + e;
        const std::int64_t whole_idx =
            (static_cast<std::int64_t>(kt / vk + kb) * C + (ct + c)) * R *
                S * vk +
            e;
        ASSERT_EQ(tile[tile_idx], whole.data()[whole_idx])
            << "kb=" << kb << " c=" << c << " e=" << e;
      }
    }
  }
}

TEST(FilterTransform, RaggedKBlockIsZeroPadded) {
  const int K = 10, C = 2, R = 1, S = 1, vk = 8;
  Tensor f = make_filter_kcrs(K, C, R, S);
  f.fill(1.0f);
  // Tile covering k in [8, 16): only k=8,9 exist.
  std::vector<float> tile(static_cast<std::size_t>(1) * C * R * S * vk,
                          -1.0f);
  transform_filter_tile(f.data(), K, C, R, S, 8, 8, 0, C, vk, tile.data());
  for (int c = 0; c < C; ++c) {
    for (int ki = 0; ki < vk; ++ki) {
      const float expect = ki < 2 ? 1.0f : 0.0f;
      EXPECT_EQ(tile[c * vk + ki], expect) << "c=" << c << " ki=" << ki;
    }
  }
}

// ----------------------------------------------------------------------
// Packing micro-kernel
// ----------------------------------------------------------------------

TEST(PackWindow, MatchesGatherReferenceNchw) {
  const int C = 3, H = 6, W = 7;
  Tensor in = make_input_nchw(1, C, H, W);
  fill_random(in, 2);
  const int R = 3, packw = 5;
  // Window with its top-left corner hanging into the padding.
  PackGeometry g;
  g.src = in.data();
  g.chan_stride = H * W;
  g.row_stride = W;
  g.col_stride = 1;
  g.H = H;
  g.W = W;
  g.ih0 = -1;
  g.iw0 = -1;
  std::vector<float> pack(static_cast<std::size_t>(C) * R * packw, -1.0f);
  pack_window(pack.data(), g, C, R, packw);
  for (int c = 0; c < C; ++c)
    for (int r = 0; r < R; ++r)
      for (int t = 0; t < packw; ++t) {
        const int ih = g.ih0 + r, iw = g.iw0 + t;
        const float expect = (ih < 0 || ih >= H || iw < 0 || iw >= W)
                                 ? 0.0f
                                 : in.at4(0, c, ih, iw);
        ASSERT_EQ(pack[(c * R + r) * packw + t], expect)
            << "c=" << c << " r=" << r << " t=" << t;
      }
}

TEST(PackWindow, MatchesGatherReferenceNhwcStrides) {
  const int C = 4, H = 5, W = 6;
  Tensor in = make_input_nhwc(1, H, W, C);
  fill_random(in, 3);
  const int R = 2, packw = 8;  // window wider than W: right side zeros
  PackGeometry g;
  g.src = in.data();  // channel 0
  g.chan_stride = 1;
  g.row_stride = static_cast<std::int64_t>(W) * C;
  g.col_stride = C;
  g.H = H;
  g.W = W;
  g.ih0 = 4;  // second row hangs off the bottom
  g.iw0 = 2;
  std::vector<float> pack(static_cast<std::size_t>(C) * R * packw, -1.0f);
  pack_window(pack.data(), g, C, R, packw);
  for (int c = 0; c < C; ++c)
    for (int r = 0; r < R; ++r)
      for (int t = 0; t < packw; ++t) {
        const int ih = g.ih0 + r, iw = g.iw0 + t;
        const float expect = (ih < 0 || ih >= H || iw < 0 || iw >= W)
                                 ? 0.0f
                                 : in.at4(0, ih, iw, c);
        ASSERT_EQ(pack[(c * R + r) * packw + t], expect);
      }
}

// ----------------------------------------------------------------------
// Full convolutions vs Algorithm 1
// ----------------------------------------------------------------------

struct CaseData {
  Tensor input;
  Tensor filter;
  Tensor reference;
};

CaseData make_case(const ConvParams& p, std::uint64_t seed) {
  CaseData c{make_input_nchw(p.N, p.C, p.H, p.W),
             make_filter_kcrs(p.K, p.C, p.R, p.S), Tensor{}};
  fill_random(c.input, seed);
  fill_random(c.filter, seed + 1);
  c.reference = naive_conv_nchw(c.input, c.filter, p);
  return c;
}

class NdirectSweep : public ::testing::TestWithParam<ConvParams> {};

TEST_P(NdirectSweep, FusedPackingMatchesNaive) {
  const ConvParams p = GetParam();
  const CaseData c = make_case(p, 21);
  const Tensor out = ndirect_conv(c.input, c.filter, p);
  EXPECT_TRUE(allclose(out, c.reference))
      << compare_tensors(out, c.reference).to_string();
}

TEST_P(NdirectSweep, SequentialPackingMatchesNaive) {
  const ConvParams p = GetParam();
  const CaseData c = make_case(p, 22);
  NdirectOptions opts;
  opts.fuse_packing = false;
  const Tensor out = ndirect_conv(c.input, c.filter, p, opts);
  EXPECT_TRUE(allclose(out, c.reference))
      << compare_tensors(out, c.reference).to_string();
}

TEST_P(NdirectSweep, AheadOfTimeFilterMatchesNaive) {
  const ConvParams p = GetParam();
  const CaseData c = make_case(p, 23);
  NdirectOptions opts;
  opts.aot_filter = true;
  const Tensor out = ndirect_conv(c.input, c.filter, p, opts);
  EXPECT_TRUE(allclose(out, c.reference))
      << compare_tensors(out, c.reference).to_string();
}

TEST_P(NdirectSweep, NhwcMatchesNaive) {
  const ConvParams p = GetParam();
  const CaseData c = make_case(p, 24);
  const NdirectConv conv(p);
  const Tensor out_nhwc = conv.run_nhwc(nchw_to_nhwc(c.input), c.filter);
  EXPECT_EQ(out_nhwc.layout(), Layout::NHWC);
  const Tensor out = nhwc_to_nchw(out_nhwc);
  EXPECT_TRUE(allclose(out, c.reference))
      << compare_tensors(out, c.reference).to_string();
}

TEST_P(NdirectSweep, MultiThreadedGridMatchesNaive) {
  const ConvParams p = GetParam();
  const CaseData c = make_case(p, 25);
  ThreadPool pool(4);
  NdirectOptions opts;
  opts.pool = &pool;
  opts.threads = 4;
  const Tensor out = ndirect_conv(c.input, c.filter, p, opts);
  EXPECT_TRUE(allclose(out, c.reference))
      << compare_tensors(out, c.reference).to_string();
}

TEST_P(NdirectSweep, TinyTilesForceMultiTilePaths) {
  // Forcing Tc/Tk/Th to minimum legal values makes every loop level
  // iterate, exercising C-tile accumulation and filter tile reloads.
  const ConvParams p = GetParam();
  const CaseData c = make_case(p, 26);
  NdirectOptions opts;
  opts.force_rb = {8, 4};
  opts.force_tiling = {2, 4, 2};  // tc=2, tk=vk, th=2
  const Tensor out = ndirect_conv(c.input, c.filter, p, opts);
  EXPECT_TRUE(allclose(out, c.reference))
      << compare_tensors(out, c.reference).to_string();
}

TEST_P(NdirectSweep, GenericKernelFallbackMatchesNaive) {
  // A register block with no template specialization must route through
  // compute_kernel_generic / fused_kernel_generic.
  const ConvParams p = GetParam();
  const CaseData c = make_case(p, 27);
  NdirectOptions opts;
  opts.force_rb = {20, 4};  // instantiated
  ASSERT_NE(find_compute_kernel(20, 4), nullptr);
  opts.force_rb = {20, 8};  // NOT instantiated -> generic path
  ASSERT_EQ(find_compute_kernel(20, 8), nullptr);
  const Tensor out = ndirect_conv(c.input, c.filter, p, opts);
  EXPECT_TRUE(allclose(out, c.reference))
      << compare_tensors(out, c.reference).to_string();
}

TEST_P(NdirectSweep, CachedFilterMatchesFreshBitExact) {
  // Inference path: the packed-filter cache must change nothing about
  // the arithmetic — cached-packed and fresh-packed (on-the-fly
  // transform every call) results are bitwise identical, and the
  // second cached run (pure cache hit) matches the first.
  const ConvParams p = GetParam();
  const CaseData c = make_case(p, 28);
  NdirectOptions cached_opts;
  cached_opts.cache_packed_filter = true;
  const NdirectConv cached(p, cached_opts);
  const NdirectConv fresh(p);
  const Tensor a = cached.run(c.input, c.filter);  // packs into cache
  const Tensor b = cached.run(c.input, c.filter);  // cache hit
  const Tensor d = fresh.run(c.input, c.filter);
  EXPECT_TRUE(allclose(a, b, 0.0, 0.0))
      << compare_tensors(a, b).to_string();
  EXPECT_TRUE(allclose(a, d, 0.0, 0.0))
      << compare_tensors(a, d).to_string();
  EXPECT_TRUE(allclose(a, c.reference))
      << compare_tensors(a, c.reference).to_string();
}

TEST_P(NdirectSweep, CachedFilterMatchesFreshBitExactNhwc) {
  const ConvParams p = GetParam();
  const CaseData c = make_case(p, 29);
  const Tensor input_nhwc = nchw_to_nhwc(c.input);
  NdirectOptions cached_opts;
  cached_opts.cache_packed_filter = true;
  const NdirectConv cached(p, cached_opts);
  const NdirectConv fresh(p);
  const Tensor a = cached.run_nhwc(input_nhwc, c.filter);
  const Tensor b = cached.run_nhwc(input_nhwc, c.filter);
  const Tensor d = fresh.run_nhwc(input_nhwc, c.filter);
  EXPECT_TRUE(allclose(a, b, 0.0, 0.0))
      << compare_tensors(a, b).to_string();
  EXPECT_TRUE(allclose(a, d, 0.0, 0.0))
      << compare_tensors(a, d).to_string();
  EXPECT_TRUE(allclose(nhwc_to_nchw(a), c.reference))
      << compare_tensors(nhwc_to_nchw(a), c.reference).to_string();
}

TEST_P(NdirectSweep, CachedFilterAgreesWithGenericReference)  {
  // Third independent witness: the cached-packed result vs. the
  // generic (non-specialized) kernel path. The generic kernel
  // accumulates in the same order, so this too is bit-exact.
  const ConvParams p = GetParam();
  const CaseData c = make_case(p, 30);
  NdirectOptions cached_opts;
  cached_opts.cache_packed_filter = true;
  const NdirectConv cached(p, cached_opts);
  NdirectOptions generic_opts;
  generic_opts.generic_kernel_only = true;
  const NdirectConv generic(p, generic_opts);
  const Tensor a = cached.run(c.input, c.filter);
  const Tensor g = generic.run(c.input, c.filter);
  EXPECT_TRUE(allclose(a, g, 0.0, 0.0))
      << compare_tensors(a, g).to_string();
}

INSTANTIATE_TEST_SUITE_P(Shapes, NdirectSweep,
                         ::testing::ValuesIn(correctness_conv_shapes()));

// ----------------------------------------------------------------------
// Packed-filter cache lifecycle
// ----------------------------------------------------------------------

TEST(NdirectFilterCache, TransformsStopAfterFirstRun) {
  const ConvParams p = quick_conv_shapes().front();
  const CaseData c = make_case(p, 31);
  NdirectOptions opts;
  opts.cache_packed_filter = true;
  const NdirectConv conv(p, opts);
  (void)conv.run(c.input, c.filter);  // packs once
  const std::uint64_t warm = transform_filter_tile_calls();
  for (int i = 0; i < 5; ++i) (void)conv.run(c.input, c.filter);
  EXPECT_EQ(transform_filter_tile_calls(), warm)
      << "steady-state runs must not re-transform the filter";
}

TEST(NdirectFilterCache, PrepareWarmInvalidateCycle) {
  const ConvParams p = quick_conv_shapes().front();
  CaseData c = make_case(p, 32);
  NdirectOptions opts;
  opts.cache_packed_filter = true;
  NdirectConv conv(p, opts);

  EXPECT_FALSE(conv.filter_cache_warm(c.filter.data()));
  const float* packed = conv.prepare_filter(c.filter.data());
  EXPECT_NE(packed, nullptr);
  EXPECT_TRUE(conv.filter_cache_warm(c.filter.data()));
  // prepare_filter is idempotent and stable for the same weights.
  EXPECT_EQ(conv.prepare_filter(c.filter.data()), packed);

  // Mutate the weights in place (what fold_batchnorm does), invalidate,
  // and check the next run uses the new values.
  for (std::size_t i = 0; i < c.filter.size(); ++i)
    c.filter.data()[i] *= 2.0f;
  conv.invalidate_filter_cache();
  EXPECT_FALSE(conv.filter_cache_warm(c.filter.data()));
  const Tensor out = conv.run(c.input, c.filter);
  const Tensor ref = naive_conv_nchw(c.input, c.filter, p);
  EXPECT_TRUE(allclose(out, ref)) << compare_tensors(out, ref).to_string();
  EXPECT_TRUE(conv.filter_cache_warm(c.filter.data()));
}

TEST(NdirectFilterCache, CacheIsKeyedByFilterPointer) {
  const ConvParams p = quick_conv_shapes().front();
  const CaseData c = make_case(p, 33);
  Tensor other = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(other, 99);
  NdirectOptions opts;
  opts.cache_packed_filter = true;
  const NdirectConv conv(p, opts);
  (void)conv.run(c.input, c.filter);
  EXPECT_TRUE(conv.filter_cache_warm(c.filter.data()));
  EXPECT_FALSE(conv.filter_cache_warm(other.data()));
  // A different weight tensor re-packs and computes correctly.
  const Tensor out = conv.run(c.input, other);
  const Tensor ref = naive_conv_nchw(c.input, other, p);
  EXPECT_TRUE(allclose(out, ref)) << compare_tensors(out, ref).to_string();
  EXPECT_TRUE(conv.filter_cache_warm(other.data()));
}

TEST(NdirectFilterCache, ConcurrentRunsWithDifferentFiltersAreSafe) {
  // Two threads hammer the SAME engine (shared cache) with different
  // weight tensors. Each filter pointer owns an immutable packed entry,
  // so neither thread can overwrite a buffer the other is mid-read —
  // every iteration must produce the correct result for its weights.
  const ConvParams p = quick_conv_shapes().front();
  const CaseData a = make_case(p, 36);
  Tensor filter_b = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(filter_b, 98);
  const Tensor ref_b = naive_conv_nchw(a.input, filter_b, p);
  NdirectOptions opts;
  opts.cache_packed_filter = true;
  const NdirectConv conv(p, opts);

  constexpr int kIters = 50;
  std::atomic<int> mismatches{0};
  auto hammer = [&](const Tensor& filter, const Tensor& ref) {
    for (int i = 0; i < kIters; ++i) {
      const Tensor out = conv.run(a.input, filter);
      if (!allclose(out, ref)) mismatches.fetch_add(1);
    }
  };
  std::thread t1(hammer, std::cref(a.filter), std::cref(a.reference));
  std::thread t2(hammer, std::cref(filter_b), std::cref(ref_b));
  t1.join();
  t2.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(NdirectFilterCache, StaleContentsAtSameAddressAreRepacked) {
  // Allocator address reuse (or in-place mutation without invalidate):
  // the pointer key matches but the contents changed. The sampled
  // content fingerprint must reject the stale entry and re-pack instead
  // of silently serving the old weights.
  const ConvParams p = quick_conv_shapes().front();
  CaseData c = make_case(p, 37);
  NdirectOptions opts;
  opts.cache_packed_filter = true;
  const NdirectConv conv(p, opts);
  (void)conv.run(c.input, c.filter);  // packs the original weights
  const std::uint64_t warm = transform_filter_tile_calls();
  // A "different tensor" appears at the same address.
  for (std::size_t i = 0; i < c.filter.size(); ++i)
    c.filter.data()[i] = 0.25f - c.filter.data()[i];
  const Tensor ref = naive_conv_nchw(c.input, c.filter, p);
  const Tensor out = conv.run(c.input, c.filter);
  EXPECT_GT(transform_filter_tile_calls(), warm)
      << "a stale pointer hit must re-pack, not serve old weights";
  EXPECT_TRUE(allclose(out, ref)) << compare_tensors(out, ref).to_string();
  // The re-packed entry is warm: steady state transforms nothing.
  const std::uint64_t repacked = transform_filter_tile_calls();
  (void)conv.run(c.input, c.filter);
  EXPECT_EQ(transform_filter_tile_calls(), repacked);
}

TEST(NdirectFilterCache, OffByDefaultAndNoopPrepare) {
  const ConvParams p = quick_conv_shapes().front();
  const CaseData c = make_case(p, 34);
  const NdirectConv conv(p);  // cache_packed_filter defaults to false
  EXPECT_EQ(conv.prepare_filter(c.filter.data()), nullptr);
  EXPECT_FALSE(conv.filter_cache_warm(c.filter.data()));
}

// ----------------------------------------------------------------------
// Scratch arena steady state: no heap growth inside run_nest workers
// ----------------------------------------------------------------------

TEST(NdirectArena, SteadyStateRunsDoNotGrowScratch) {
  const ConvParams p = correctness_conv_shapes().front();
  const CaseData c = make_case(p, 35);
  ThreadPool pool(3);  // persistent workers -> persistent arenas
  NdirectOptions opts;
  opts.pool = &pool;
  opts.threads = 3;
  opts.cache_packed_filter = true;
  const NdirectConv conv(p, opts);
  const std::uint64_t grows = scratch_grow_events();
  (void)conv.run(c.input, c.filter);  // warm-up grows the arenas
  const std::uint64_t transforms = transform_filter_tile_calls();
  for (int i = 0; i < 10; ++i) {
    const Tensor out = conv.run(c.input, c.filter);
    ASSERT_TRUE(allclose(out, c.reference));
  }
  // Claim-based dispatch makes the set of threads serving a given run
  // schedule-dependent, so a worker that sat out the warm-up run may
  // still grow its arena on a later run. The steady-state invariant is
  // that growth is bounded by participants -- each thread grows its
  // pack and filter-tile slots at most once, ever -- never by run
  // count (a regrow bug adds ~2 events per run, ~20 over this loop).
  EXPECT_LE(scratch_grow_events() - grows, 2 * (pool.size() + 1))
      << "steady-state calls must reuse the per-thread arenas";
  EXPECT_EQ(transform_filter_tile_calls(), transforms);
}

// ----------------------------------------------------------------------
// Plan/engine behaviours
// ----------------------------------------------------------------------

TEST(NdirectPlan, UsesSolvedRegisterBlockFor3x3) {
  const ConvParams p{.N = 1, .C = 64, .H = 28, .W = 28, .K = 64,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const NdirectConv conv(p);
  EXPECT_EQ(conv.plan().rb.vw, 12);
  EXPECT_EQ(conv.plan().rb.vk, 8);
  EXPECT_EQ(conv.plan().packw, 11 * 1 + 3);
}

TEST(NdirectPlan, PackwAccountsForStride) {
  const ConvParams p{.N = 1, .C = 8, .H = 28, .W = 28, .K = 8,
                     .R = 3, .S = 3, .str = 2, .pad = 1};
  const NdirectConv conv(p);
  EXPECT_EQ(conv.plan().packw, (conv.plan().rb.vw - 1) * 2 + 3);
}

TEST(NdirectPlan, RespectsCacheOverride) {
  CacheInfo tiny;
  tiny.l1d = 8 << 10;
  tiny.l2 = 64 << 10;
  tiny.l3 = 0;
  CacheInfo big;
  big.l1d = 64 << 10;
  big.l2 = 2 << 20;
  big.l3 = 0;
  const ConvParams p{.N = 1, .C = 256, .H = 14, .W = 14, .K = 256,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  NdirectOptions o1, o2;
  o1.cache = &tiny;
  o2.cache = &big;
  const NdirectConv c1(p, o1), c2(p, o2);
  EXPECT_LT(c1.plan().tiling.tc, c2.plan().tiling.tc);
}

TEST(NdirectEngine, RepeatedRunsAreDeterministic) {
  const ConvParams p{.N = 1, .C = 16, .H = 12, .W = 12, .K = 16,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const CaseData c = make_case(p, 30);
  const NdirectConv conv(p);
  const Tensor a = conv.run(c.input, c.filter);
  const Tensor b = conv.run(c.input, c.filter);
  EXPECT_TRUE(allclose(a, b, 0.0, 0.0));  // bitwise identical
}

TEST(NdirectEngine, PhaseTimerRecordsTransformAndMicrokernel) {
  if (!kTelemetryCompiled)
    GTEST_SKIP() << "phase timing needs NDIRECT_TELEMETRY=ON";
  const ConvParams p{.N = 1, .C = 16, .H = 12, .W = 12, .K = 16,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const CaseData c = make_case(p, 31);
  PhaseTimer pt;
  NdirectOptions opts;
  opts.threads = 1;
  opts.fuse_packing = false;
  opts.phase_timer = &pt;
  (void)ndirect_conv(c.input, c.filter, p, opts);
  EXPECT_GT(pt.seconds("transform"), 0.0);
  EXPECT_GT(pt.seconds("packing"), 0.0);
  EXPECT_GT(pt.seconds("micro-kernel"), 0.0);
}

TEST(NdirectEngine, FusedModeFoldsPackingIntoMicrokernelPhase) {
  if (!kTelemetryCompiled)
    GTEST_SKIP() << "phase timing needs NDIRECT_TELEMETRY=ON";
  const ConvParams p{.N = 1, .C = 16, .H = 12, .W = 12, .K = 16,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const CaseData c = make_case(p, 32);
  PhaseTimer pt;
  NdirectOptions opts;
  opts.threads = 1;
  opts.fuse_packing = true;
  opts.phase_timer = &pt;
  (void)ndirect_conv(c.input, c.filter, p, opts);
  EXPECT_EQ(pt.seconds("packing"), 0.0);
  EXPECT_GT(pt.seconds("micro-kernel"), 0.0);
}

TEST(NdirectEngine, ManyThreadConfigurationsAgree) {
  const ConvParams p{.N = 4, .C = 12, .H = 16, .W = 16, .K = 24,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const CaseData c = make_case(p, 33);
  for (int threads : {1, 2, 3, 5, 8}) {
    ThreadPool pool(threads);
    NdirectOptions opts;
    opts.pool = &pool;
    opts.threads = threads;
    const Tensor out = ndirect_conv(c.input, c.filter, p, opts);
    EXPECT_TRUE(allclose(out, c.reference)) << "threads=" << threads;
  }
}

TEST(NdirectEngine, OversubscribedThreadGridStillCorrect) {
  // More logical threads than the pool has workers (the SMT experiment's
  // mechanism: tasks stack round-robin onto pool threads).
  const ConvParams p{.N = 2, .C = 8, .H = 12, .W = 12, .K = 16,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  const CaseData c = make_case(p, 34);
  ThreadPool pool(2);
  NdirectOptions opts;
  opts.pool = &pool;
  opts.threads = 8;
  const Tensor out = ndirect_conv(c.input, c.filter, p, opts);
  EXPECT_TRUE(allclose(out, c.reference));
}

}  // namespace
}  // namespace ndirect
