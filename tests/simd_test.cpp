// Tests for the NEON-model 128-bit SIMD abstraction.
#include <gtest/gtest.h>

#include <cmath>

#include "simd/vec128.h"

namespace ndirect {
namespace {

TEST(Vec128, LoadStoreRoundTrip) {
  const float src[4] = {1.5f, -2.25f, 3.0f, 0.0f};
  float dst[4] = {};
  vstore(dst, vload(src));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], src[i]);
}

TEST(Vec128, UnalignedLoad) {
  alignas(64) float buf[9] = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  float dst[4];
  vstore(dst, vload(buf + 1));  // deliberately misaligned by 4 bytes
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], static_cast<float>(i + 1));
}

TEST(Vec128, ZeroAndBroadcast) {
  float z[4], d[4];
  vstore(z, vzero());
  vstore(d, vdup(7.5f));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(z[i], 0.0f);
    EXPECT_EQ(d[i], 7.5f);
  }
}

TEST(Vec128, Arithmetic) {
  const float a[4] = {1, 2, 3, 4}, b[4] = {10, 20, 30, 40};
  float sum[4], diff[4], prod[4], mx[4], mn[4];
  vstore(sum, vadd(vload(a), vload(b)));
  vstore(diff, vsub(vload(b), vload(a)));
  vstore(prod, vmul(vload(a), vload(b)));
  vstore(mx, vmax(vload(a), vload(b)));
  vstore(mn, vmin(vload(a), vload(b)));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sum[i], a[i] + b[i]);
    EXPECT_EQ(diff[i], b[i] - a[i]);
    EXPECT_EQ(prod[i], a[i] * b[i]);
    EXPECT_EQ(mx[i], b[i]);
    EXPECT_EQ(mn[i], a[i]);
  }
}

TEST(Vec128, FusedMultiplyAdd) {
  const float acc[4] = {1, 1, 1, 1}, a[4] = {2, 3, 4, 5},
              b[4] = {10, 10, 10, 10};
  float r[4];
  vstore(r, vfma(vload(acc), vload(a), vload(b)));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r[i], 1.0f + a[i] * 10.0f);
}

TEST(Vec128, LaneFmaMatchesScalar) {
  const float acc[4] = {0.5f, -1.0f, 2.0f, 0.0f};
  const float a[4] = {2, 3, 4, 5};
  const float b[4] = {1, 10, 100, 1000};
  float r0[4], r1[4], r2[4], r3[4];
  vstore(r0, vfma_lane<0>(vload(acc), vload(a), vload(b)));
  vstore(r1, vfma_lane<1>(vload(acc), vload(a), vload(b)));
  vstore(r2, vfma_lane<2>(vload(acc), vload(a), vload(b)));
  vstore(r3, vfma_lane<3>(vload(acc), vload(a), vload(b)));
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(r0[i], acc[i] + a[0] * b[i]);
    EXPECT_FLOAT_EQ(r1[i], acc[i] + a[1] * b[i]);
    EXPECT_FLOAT_EQ(r2[i], acc[i] + a[2] * b[i]);
    EXPECT_FLOAT_EQ(r3[i], acc[i] + a[3] * b[i]);
  }
}

TEST(Vec128, LaneExtraction) {
  const float a[4] = {11, 22, 33, 44};
  const vec128f v = vload(a);
  EXPECT_EQ(vget_lane<0>(v), 11.0f);
  EXPECT_EQ(vget_lane<1>(v), 22.0f);
  EXPECT_EQ(vget_lane<2>(v), 33.0f);
  EXPECT_EQ(vget_lane<3>(v), 44.0f);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(vget_lane_dyn(v, i), a[i]);
}

TEST(Vec128, ReduceAdd) {
  const float a[4] = {1.5f, 2.5f, -3.0f, 10.0f};
  EXPECT_FLOAT_EQ(vreduce_add(vload(a)), 11.0f);
}

TEST(Vec128, Transpose4x4) {
  float m[4][4];
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) m[i][j] = static_cast<float>(i * 10 + j);
  vec128f r0 = vload(m[0]), r1 = vload(m[1]), r2 = vload(m[2]),
          r3 = vload(m[3]);
  vtranspose4x4(r0, r1, r2, r3);
  float t[4][4];
  vstore(t[0], r0);
  vstore(t[1], r1);
  vstore(t[2], r2);
  vstore(t[3], r3);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) EXPECT_EQ(t[i][j], m[j][i]);
}

TEST(Vec128, TransposeIsAnInvolution) {
  float m[4][4];
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) m[i][j] = static_cast<float>(i * 4 + j) * 0.5f;
  vec128f r[4] = {vload(m[0]), vload(m[1]), vload(m[2]), vload(m[3])};
  vtranspose4x4(r[0], r[1], r[2], r[3]);
  vtranspose4x4(r[0], r[1], r[2], r[3]);
  for (int i = 0; i < 4; ++i) {
    float row[4];
    vstore(row, r[i]);
    for (int j = 0; j < 4; ++j) EXPECT_EQ(row[j], m[i][j]);
  }
}

TEST(Vec128, ConstantsMatchTheNeonModel) {
  EXPECT_EQ(kVecLanes, 4);
  EXPECT_EQ(kNumVecRegs, 32);
}

TEST(Vec128, BackendNameIsKnown) {
  const std::string name = simd_backend_name();
  EXPECT_TRUE(name == "neon" || name == "sse" || name == "scalar");
}

TEST(Vec128, PartialLoadZeroFillsUpperLanes) {
  const float src[4] = {1.5f, -2.25f, 3.0f, 4.75f};
  float dst[4];
  vstore(dst, vload_partial<1>(src));
  EXPECT_EQ(dst[0], src[0]);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(dst[i], 0.0f) << i;
  vstore(dst, vload_partial<2>(src));
  for (int i = 0; i < 2; ++i) EXPECT_EQ(dst[i], src[i]) << i;
  for (int i = 2; i < 4; ++i) EXPECT_EQ(dst[i], 0.0f) << i;
  vstore(dst, vload_partial<3>(src));
  for (int i = 0; i < 3; ++i) EXPECT_EQ(dst[i], src[i]) << i;
  EXPECT_EQ(dst[3], 0.0f);
  vstore(dst, vload_partial<4>(src));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], src[i]) << i;
}

TEST(Vec128, PartialStoreTouchesExactlyNLanes) {
  const float src[4] = {10.0f, 20.0f, 30.0f, 40.0f};
  // A sentinel beyond every store width proves nothing past lane N-1
  // is written — partial stores must be safe at buffer ends.
  float dst[5];
  auto reset = [&] {
    for (float& v : dst) v = -9.0f;
  };
  reset();
  vstore_partial<1>(dst, vload(src));
  EXPECT_EQ(dst[0], 10.0f);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(dst[i], -9.0f) << i;
  reset();
  vstore_partial<2>(dst, vload(src));
  EXPECT_EQ(dst[0], 10.0f);
  EXPECT_EQ(dst[1], 20.0f);
  for (int i = 2; i < 5; ++i) EXPECT_EQ(dst[i], -9.0f) << i;
  reset();
  vstore_partial<3>(dst, vload(src));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(dst[i], src[i]) << i;
  }
  for (int i = 3; i < 5; ++i) EXPECT_EQ(dst[i], -9.0f) << i;
  reset();
  vstore_partial<4>(dst, vload(src));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], src[i]) << i;
  EXPECT_EQ(dst[4], -9.0f);
}

TEST(Vec128, RuntimeLaneHelpersMatchTemplates) {
  const float src[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  for (int n = 1; n <= 4; ++n) {
    float a[4], b[4];
    vstore(a, vload_lanes(src, n));
    switch (n) {
      case 1: vstore(b, vload_partial<1>(src)); break;
      case 2: vstore(b, vload_partial<2>(src)); break;
      case 3: vstore(b, vload_partial<3>(src)); break;
      default: vstore(b, vload_partial<4>(src)); break;
    }
    for (int i = 0; i < 4; ++i) EXPECT_EQ(a[i], b[i]) << n << " " << i;

    float sa[5], sb[5];
    for (int i = 0; i < 5; ++i) sa[i] = sb[i] = -3.0f;
    vstore_lanes(sa, vload(src), n);
    switch (n) {
      case 1: vstore_partial<1>(sb, vload(src)); break;
      case 2: vstore_partial<2>(sb, vload(src)); break;
      case 3: vstore_partial<3>(sb, vload(src)); break;
      default: vstore_partial<4>(sb, vload(src)); break;
    }
    for (int i = 0; i < 5; ++i) EXPECT_EQ(sa[i], sb[i]) << n << " " << i;
  }
}

}  // namespace
}  // namespace ndirect
