// Tests for the Section 10.2 extensions: depthwise / depthwise-separable
// convolution and 3D convolution.
#include <gtest/gtest.h>

#include "core/conv3d.h"
#include "core/grouped.h"
#include "core/depthwise.h"
#include "core/ndirect.h"
#include "tensor/compare.h"
#include "tensor/rng.h"

namespace ndirect {
namespace {

// ----------------------------------------------------------------------
// Depthwise
// ----------------------------------------------------------------------

struct DwCase {
  DepthwiseParams p;
};

std::vector<DepthwiseParams> depthwise_shapes() {
  return {
      {.N = 1, .C = 4, .H = 8, .W = 8, .R = 3, .S = 3, .str = 1, .pad = 1},
      {.N = 2, .C = 3, .H = 9, .W = 11, .R = 3, .S = 3, .str = 1, .pad = 0},
      {.N = 1, .C = 8, .H = 14, .W = 14, .R = 3, .S = 3, .str = 2, .pad = 1},
      {.N = 1, .C = 5, .H = 12, .W = 12, .R = 5, .S = 5, .str = 1, .pad = 2},
      {.N = 1, .C = 2, .H = 7, .W = 31, .R = 3, .S = 3, .str = 1, .pad = 1},
      {.N = 1, .C = 16, .H = 4, .W = 4, .R = 3, .S = 3, .str = 1, .pad = 1},
      // MobileNet-style layers
      {.N = 1, .C = 32, .H = 28, .W = 28, .R = 3, .S = 3, .str = 1, .pad = 1},
      {.N = 1, .C = 32, .H = 28, .W = 28, .R = 3, .S = 3, .str = 2, .pad = 1},
  };
}

class DepthwiseSweep
    : public ::testing::TestWithParam<DepthwiseParams> {};

TEST_P(DepthwiseSweep, MatchesReference) {
  const DepthwiseParams p = GetParam();
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.C, 1, p.R, p.S);
  fill_random(in, 61);
  fill_random(f, 62);
  const Tensor ref = depthwise_conv_reference(in, f, p);
  const Tensor out = depthwise_conv_nchw(in, f, p);
  EXPECT_TRUE(allclose(out, ref))
      << compare_tensors(out, ref).to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DepthwiseSweep, ::testing::ValuesIn(depthwise_shapes()),
    [](const auto& info) {
      const DepthwiseParams& p = info.param;
      return "N" + std::to_string(p.N) + "C" + std::to_string(p.C) + "H" +
             std::to_string(p.H) + "W" + std::to_string(p.W) + "R" +
             std::to_string(p.R) + "s" + std::to_string(p.str) + "p" +
             std::to_string(p.pad);
    });

TEST(Depthwise, IdentityFilterCopiesCenter) {
  // 3x3 filter with a single 1 in the middle = identity (pad 1).
  const DepthwiseParams p{.N = 1, .C = 2, .H = 5, .W = 5,
                          .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(1, 2, 5, 5);
  fill_pattern(in);
  Tensor f = make_filter_kcrs(2, 1, 3, 3);
  f.fill_zero();
  f.at4(0, 0, 1, 1) = 1.0f;
  f.at4(1, 0, 1, 1) = 1.0f;
  const Tensor out = depthwise_conv_nchw(in, f, p);
  EXPECT_TRUE(allclose(out, in, 0.0, 0.0));
}

TEST(Depthwise, ChannelsDoNotMix) {
  // Zeroing one channel's filter zeroes exactly that output channel.
  const DepthwiseParams p{.N = 1, .C = 3, .H = 6, .W = 6,
                          .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(1, 3, 6, 6);
  in.fill(1.0f);
  Tensor f = make_filter_kcrs(3, 1, 3, 3);
  f.fill(1.0f);
  for (int r = 0; r < 3; ++r)
    for (int s = 0; s < 3; ++s) f.at4(1, 0, r, s) = 0.0f;
  const Tensor out = depthwise_conv_nchw(in, f, p);
  for (int h = 0; h < 6; ++h)
    for (int w = 0; w < 6; ++w) {
      EXPECT_EQ(out.at4(0, 1, h, w), 0.0f);
      EXPECT_GT(out.at4(0, 0, h, w), 0.0f);
    }
}

TEST(Depthwise, MultiThreadedMatchesSingle) {
  const DepthwiseParams p{.N = 2, .C = 12, .H = 10, .W = 10,
                          .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.C, 1, p.R, p.S);
  fill_random(in, 63);
  fill_random(f, 64);
  ThreadPool single(1), multi(4);
  const Tensor a = depthwise_conv_nchw(in, f, p, &single);
  const Tensor b = depthwise_conv_nchw(in, f, p, &multi);
  EXPECT_TRUE(allclose(a, b, 0.0, 0.0));
}

TEST(SeparableConv, EqualsDepthwiseThenPointwiseReference) {
  const DepthwiseParams dw{.N = 1, .C = 8, .H = 10, .W = 10,
                           .R = 3, .S = 3, .str = 1, .pad = 1};
  const int K = 12;
  Tensor in = make_input_nchw(dw.N, dw.C, dw.H, dw.W);
  Tensor dwf = make_filter_kcrs(dw.C, 1, dw.R, dw.S);
  Tensor pwf = make_filter_kcrs(K, dw.C, 1, 1);
  fill_random(in, 65);
  fill_random(dwf, 66);
  fill_random(pwf, 67);

  const Tensor out = separable_conv_nchw(in, dwf, pwf, dw, K);

  // Reference: depthwise reference followed by a naive 1x1 convolution.
  const Tensor mid = depthwise_conv_reference(in, dwf, dw);
  const ConvParams pw{.N = dw.N, .C = dw.C, .H = dw.P(), .W = dw.Q(),
                      .K = K, .R = 1, .S = 1, .str = 1, .pad = 0};
  Tensor ref = make_output_nchw(pw.N, K, pw.P(), pw.Q());
  for (int n = 0; n < pw.N; ++n)
    for (int k = 0; k < K; ++k)
      for (int h = 0; h < pw.P(); ++h)
        for (int w = 0; w < pw.Q(); ++w) {
          double sum = 0;
          for (int c = 0; c < pw.C; ++c) {
            sum += static_cast<double>(mid.at4(n, c, h, w)) *
                   static_cast<double>(pwf.at4(k, c, 0, 0));
          }
          ref.at4(n, k, h, w) = static_cast<float>(sum);
        }
  EXPECT_TRUE(allclose(out, ref))
      << compare_tensors(out, ref).to_string();
}

// ----------------------------------------------------------------------
// 3D convolution
// ----------------------------------------------------------------------

std::vector<Conv3dParams> conv3d_shapes() {
  return {
      {.N = 1, .C = 2, .D = 4, .H = 6, .W = 6, .K = 3,
       .T = 3, .R = 3, .S = 3, .str = 1, .pad = 1, .pad_d = 1},
      {.N = 1, .C = 3, .D = 5, .H = 8, .W = 8, .K = 4,
       .T = 3, .R = 3, .S = 3, .str = 1, .pad = 0, .pad_d = 0},
      {.N = 2, .C = 2, .D = 6, .H = 8, .W = 8, .K = 2,
       .T = 3, .R = 3, .S = 3, .str = 2, .pad = 1, .pad_d = 1},
      {.N = 1, .C = 4, .D = 3, .H = 5, .W = 9, .K = 5,
       .T = 1, .R = 1, .S = 1, .str = 1, .pad = 0, .pad_d = 0},
      {.N = 1, .C = 2, .D = 7, .H = 6, .W = 6, .K = 3,
       .T = 5, .R = 3, .S = 3, .str = 1, .pad = 1, .pad_d = 2},
  };
}

class Conv3dSweep : public ::testing::TestWithParam<Conv3dParams> {};

TEST_P(Conv3dSweep, MatchesReference) {
  const Conv3dParams p = GetParam();
  Tensor in({p.N, p.C, p.D, p.H, p.W}, Layout::Linear);
  Tensor f({p.K, p.C, p.T, p.R, p.S}, Layout::Linear);
  fill_random(in, 71);
  fill_random(f, 72);
  const Tensor ref = conv3d_reference(in, f, p);
  const Tensor out = conv3d_ndirect(in, f, p);
  EXPECT_TRUE(allclose(out, ref))
      << compare_tensors(out, ref).to_string();
}

INSTANTIATE_TEST_SUITE_P(Shapes, Conv3dSweep,
                         ::testing::ValuesIn(conv3d_shapes()),
                         [](const auto& info) {
                           return "case" + std::to_string(info.index);
                         });

TEST(Conv3d, DegeneratesTo2dWhenDepthIsOne) {
  // D=1, T=1: conv3d must equal a plain 2D nDirect convolution.
  const Conv3dParams p3{.N = 1, .C = 4, .D = 1, .H = 8, .W = 8, .K = 6,
                        .T = 1, .R = 3, .S = 3, .str = 1, .pad = 1,
                        .pad_d = 0};
  Tensor in3({1, 4, 1, 8, 8}, Layout::Linear);
  Tensor f3({6, 4, 1, 3, 3}, Layout::Linear);
  fill_random(in3, 73);
  fill_random(f3, 74);
  const Tensor out3 = conv3d_ndirect(in3, f3, p3);

  const ConvParams p2{.N = 1, .C = 4, .H = 8, .W = 8, .K = 6,
                      .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in2 = make_input_nchw(1, 4, 8, 8);
  Tensor f2 = make_filter_kcrs(6, 4, 3, 3);
  std::memcpy(in2.data(), in3.data(), sizeof(float) * in2.size());
  std::memcpy(f2.data(), f3.data(), sizeof(float) * f2.size());
  const Tensor out2 = ndirect_conv(in2, f2, p2);

  ASSERT_EQ(out3.size(), out2.size());
  for (std::size_t i = 0; i < out2.size(); ++i) {
    ASSERT_NEAR(out3[i], out2[i], 1e-4);
  }
}

TEST(Conv3d, FlopCountConsistent) {
  const Conv3dParams p{.N = 2, .C = 3, .D = 4, .H = 5, .W = 6, .K = 7,
                       .T = 3, .R = 3, .S = 3, .str = 1, .pad = 1,
                       .pad_d = 1};
  EXPECT_EQ(p.flops(),
            2LL * 2 * 7 * p.Dout() * p.P() * p.Q() * 3 * 3 * 3 * 3);
  EXPECT_EQ(p.Dout(), 4);
}

// ----------------------------------------------------------------------
// Grouped convolution
// ----------------------------------------------------------------------

struct GroupedCase {
  ConvParams p;
  int groups;
};

std::vector<GroupedCase> grouped_shapes() {
  return {
      {{.N = 1, .C = 8, .H = 8, .W = 8, .K = 8, .R = 3, .S = 3, .str = 1, .pad = 1}, 2},
      {{.N = 2, .C = 12, .H = 10, .W = 10, .K = 24, .R = 3, .S = 3, .str = 1, .pad = 1}, 4},
      {{.N = 1, .C = 16, .H = 14, .W = 14, .K = 32, .R = 1, .S = 1, .str = 1, .pad = 0}, 8},
      {{.N = 1, .C = 18, .H = 9, .W = 9, .K = 6, .R = 3, .S = 3, .str = 2, .pad = 1}, 3},
      // ResNeXt-style: 32 groups
      {{.N = 1, .C = 64, .H = 7, .W = 7, .K = 64, .R = 3, .S = 3, .str = 1, .pad = 1}, 32},
  };
}

class GroupedSweep : public ::testing::TestWithParam<GroupedCase> {};

TEST_P(GroupedSweep, MatchesReference) {
  const auto& [p, groups] = GetParam();
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C / groups, p.R, p.S);
  fill_random(in, 201);
  fill_random(f, 202);
  const Tensor ref = grouped_conv_reference(in, f, p, groups);
  const Tensor out = grouped_conv_nchw(in, f, p, groups);
  EXPECT_TRUE(allclose(out, ref))
      << compare_tensors(out, ref).to_string();
}

INSTANTIATE_TEST_SUITE_P(Shapes, GroupedSweep,
                         ::testing::ValuesIn(grouped_shapes()),
                         [](const auto& info) {
                           return "g" + std::to_string(info.param.groups) +
                                  "_case" + std::to_string(info.index);
                         });

TEST(GroupedConv, OneGroupEqualsStandardConv) {
  const ConvParams p{.N = 1, .C = 8, .H = 10, .W = 10, .K = 12,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, 203);
  fill_random(f, 204);
  const Tensor grouped = grouped_conv_nchw(in, f, p, 1);
  const Tensor standard = ndirect_conv(in, f, p);
  EXPECT_TRUE(allclose(grouped, standard, 0.0, 0.0));
}

TEST(GroupedConv, FullGroupsEqualsDepthwise) {
  // groups == C == K degenerates to depthwise convolution.
  const DepthwiseParams dw{.N = 1, .C = 6, .H = 9, .W = 9,
                           .R = 3, .S = 3, .str = 1, .pad = 1};
  const ConvParams p{.N = 1, .C = 6, .H = 9, .W = 9, .K = 6,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(1, 6, 9, 9);
  Tensor f = make_filter_kcrs(6, 1, 3, 3);
  fill_random(in, 205);
  fill_random(f, 206);
  const Tensor grouped = grouped_conv_nchw(in, f, p, 6);
  const Tensor depthwise = depthwise_conv_nchw(in, f, dw);
  EXPECT_TRUE(allclose(grouped, depthwise));
}

TEST(GroupedConv, MalformedGroupsThrow) {
  const ConvParams p{.N = 1, .C = 8, .H = 8, .W = 8, .K = 8,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(1, 8, 8, 8);
  Tensor f4 = make_filter_kcrs(8, 4, 3, 3);
  in.fill_zero();
  f4.fill_zero();
  // 3 does not divide C=8.
  EXPECT_THROW((void)grouped_conv_nchw(in, f4, p, 3),
               std::invalid_argument);
  // Filter C-dim mismatch for groups=4 (needs C/groups = 2).
  EXPECT_THROW((void)grouped_conv_nchw(in, f4, p, 4),
               std::invalid_argument);
  // groups=2 with matching [8, 4, 3, 3] filter is fine.
  EXPECT_NO_THROW((void)grouped_conv_nchw(in, f4, p, 2));
}

}  // namespace
}  // namespace ndirect
