// Tests for the runtime substrate: aligned buffers, partitioning,
// thread pool, timers.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "runtime/aligned_buffer.h"
#include "runtime/cpu_info.h"
#include "runtime/partition.h"
#include "runtime/scratch.h"
#include "runtime/thread_pool.h"
#include "runtime/timer.h"

namespace ndirect {
namespace {

TEST(AlignedBuffer, AllocatesCacheLineAligned) {
  AlignedBuffer<float> buf(7);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes,
            0u);
  EXPECT_EQ(buf.size(), 7u);
}

TEST(AlignedBuffer, ZeroFill) {
  AlignedBuffer<float> buf(100);
  buf.fill_zero();
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<float> a(10);
  a[0] = 42.0f;
  float* p = a.data();
  AlignedBuffer<float> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42.0f);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBuffer, EnsureGrowsOnlyWhenNeeded) {
  AlignedBuffer<float> buf(16);
  float* p = buf.data();
  buf.ensure(8);
  EXPECT_EQ(buf.data(), p);  // no reallocation
  buf.ensure(32);
  EXPECT_GE(buf.size(), 32u);
}

TEST(AlignedBuffer, EmptyBufferIsSafe) {
  AlignedBuffer<float> buf;
  EXPECT_TRUE(buf.empty());
  buf.fill_zero();  // must not crash
  AlignedBuffer<float> moved(std::move(buf));
  EXPECT_TRUE(moved.empty());
}

TEST(Partition, CoversRangeExactlyOnce) {
  for (std::size_t count : {0u, 1u, 7u, 64u, 100u, 1001u}) {
    for (std::size_t parts : {1u, 2u, 3u, 7u, 64u}) {
      std::vector<int> hits(count, 0);
      for (std::size_t i = 0; i < parts; ++i) {
        const Range r = partition_range(count, parts, i);
        for (std::size_t j = r.begin; j < r.end; ++j) ++hits[j];
      }
      for (std::size_t j = 0; j < count; ++j) {
        EXPECT_EQ(hits[j], 1) << "count=" << count << " parts=" << parts
                              << " j=" << j;
      }
    }
  }
}

TEST(Partition, ChunkSizesDifferByAtMostOne) {
  const Range r0 = partition_range(10, 3, 0);
  const Range r1 = partition_range(10, 3, 1);
  const Range r2 = partition_range(10, 3, 2);
  EXPECT_EQ(r0.size(), 4u);
  EXPECT_EQ(r1.size(), 3u);
  EXPECT_EQ(r2.size(), 3u);
  EXPECT_EQ(r0.begin, 0u);
  EXPECT_EQ(r2.end, 10u);
}

TEST(Partition, MorePartsThanWork) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    total += partition_range(3, 8, i).size();
  }
  EXPECT_EQ(total, 3u);
}

TEST(ThreadPool, RunExecutesEveryTaskOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.run(100, [&](std::size_t tid) { hits[tid]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, OversubscriptionRunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.run(16, [&](std::size_t) { count++; });  // 8 tasks per thread
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, ParallelForSumsCorrectly) {
  ThreadPool pool(3);
  std::vector<int> data(10007);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<long long> sum{0};
  pool.parallel_for(data.size(), [&](std::size_t b, std::size_t e) {
    long long local = 0;
    for (std::size_t i = b; i < e; ++i) local += data[i];
    sum += local;
  });
  EXPECT_EQ(sum.load(), 10007LL * 10006 / 2);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(4);
  for (int iter = 0; iter < 50; ++iter) {
    std::atomic<int> count{0};
    pool.run(8, [&](std::size_t) { count++; });
    ASSERT_EQ(count.load(), 8);
  }
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.run(5, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, ZeroTasksIsNoOp) {
  ThreadPool pool(2);
  pool.run(0, [&](std::size_t) { FAIL(); });
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, ConcurrentCallersSerializeSafely) {
  // Several caller threads share one pool; every task of every call
  // must run exactly once. Jobs occupy independent slots and execute
  // concurrently; each caller must see exactly its own job complete.
  ThreadPool pool(3);
  constexpr int kCallers = 4, kTasksPerCall = 25, kCallsPerCaller = 20;
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int call = 0; call < kCallsPerCaller; ++call) {
        pool.run(kTasksPerCall, [&](std::size_t) { total++; });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * kTasksPerCall * kCallsPerCaller);
}

TEST(ThreadPool, GlobalPoolExists) {
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

// ----------------------------------------------------------------------
// Spin-then-park dispatch path
// ----------------------------------------------------------------------

TEST(ThreadPool, SpinBudgetConstructorOverride) {
  ThreadPool pool(2, 123);
  EXPECT_EQ(pool.spin_iters(), 123);
  std::atomic<int> count{0};
  pool.run(4, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, RepeatedSubMicrosecondDispatches) {
  // A stream of back-to-back tiny dispatches keeps workers inside their
  // spin window; every task must still run exactly once per call.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  constexpr int kCalls = 5000;
  for (int i = 0; i < kCalls; ++i) {
    pool.run(4, [&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 4L * kCalls);
}

TEST(ThreadPool, ParkedWorkersRewakeCorrectly) {
  // Let every worker exhaust its spin budget and park, then dispatch
  // again: the condvar fallback must wake them all.
  ThreadPool pool(3, 64);  // tiny budget so parking happens fast
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    pool.run(3, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 3) << "round " << round;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST(ThreadPool, ZeroSpinPoolParksImmediately) {
  // NDIRECT_POOL_SPIN=0 semantics: pure mutex+condvar operation (the
  // seed behaviour, kept as the A/B baseline) must stay correct.
  ThreadPool pool(3, 0);
  EXPECT_EQ(pool.spin_iters(), 0);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.run(6, [&](std::size_t) { count++; });
    ASSERT_EQ(count.load(), 6);
  }
}

TEST(ThreadPool, ConcurrentCallersWithTinyTasks) {
  // Multiple caller threads hammering one pool with sub-microsecond
  // tasks: slot arm/retire churns fast, and tasks must never be lost
  // or run twice. (The TSan tier exercises the atomic handshake here.)
  ThreadPool pool(2);
  constexpr int kCallers = 4, kCallsPerCaller = 300;
  std::atomic<long> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int i = 0; i < kCallsPerCaller; ++i) {
        pool.run(3, [&](std::size_t) { total++; });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 3L * kCallers * kCallsPerCaller);
}

TEST(ThreadPool, OversubscribedConcurrentCallers) {
  // num_tasks > size() from several callers at once: round-robin
  // stacking and dispatch serialization must compose.
  ThreadPool pool(2, 256);
  constexpr int kCallers = 3, kTasks = 16, kCalls = 50;
  std::atomic<long> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int i = 0; i < kCalls; ++i) {
        pool.run(kTasks, [&](std::size_t) { total++; });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), long{kCallers} * kTasks * kCalls);
}

TEST(ThreadPool, EveryTaskIndexDeliveredExactlyOnce) {
  // The dispatch contract: fn(tid) for every tid in [0, n) exactly
  // once, with tid -> OS-thread placement unspecified (tasks are
  // claimed dynamically so concurrent jobs can share the workers).
  ThreadPool pool(2);
  std::array<std::atomic<int>, 8> hits{};
  pool.run(8, [&](std::size_t tid) { hits[tid]++; });
  for (std::size_t tid = 0; tid < 8; ++tid) {
    EXPECT_EQ(hits[tid].load(), 1) << "tid " << tid;
  }
}

TEST(ThreadPool, ConcurrentJobsOverlapInTime) {
  // The re-entrant dispatch must let two callers' jobs execute
  // CONCURRENTLY: job A's tasks block until job B has started running,
  // which can only finish if B's tasks run while A still occupies its
  // slot. (With serializing dispatch this deadlocks; the short poll
  // bounds the failure to a test timeout, not a hang.)
  ThreadPool pool(2);
  std::atomic<bool> b_started{false};
  std::thread caller_a([&] {
    pool.run(2, [&](std::size_t) {
      for (int i = 0; i < 200000 && !b_started.load(); ++i) {
        std::this_thread::yield();
      }
    });
  });
  std::thread caller_b([&] {
    pool.run(2, [&](std::size_t) { b_started.store(true); });
  });
  caller_a.join();
  caller_b.join();
  EXPECT_TRUE(b_started.load());
}

TEST(ThreadPool, NestedRunFromInsideTask) {
  // A task that itself dispatches on the same pool (a grouped conv's
  // inner conv, a graph op calling parallel_for): the nested run()
  // grabs its own job slot and the submitter self-drains, so this can
  // never deadlock and every nested task runs exactly once.
  ThreadPool pool(3);
  std::atomic<int> outer{0}, inner{0};
  pool.run(3, [&](std::size_t) {
    outer++;
    pool.run(4, [&](std::size_t) { inner++; });
  });
  EXPECT_EQ(outer.load(), 3);
  EXPECT_EQ(inner.load(), 3 * 4);
}

TEST(ThreadPool, SlotExhaustionFallsBackInline) {
  // More concurrent callers than job slots: the surplus callers must
  // execute inline (correct, just unshared) instead of failing.
  ThreadPool pool(2);
  constexpr int kCallers = ThreadPool::kMaxConcurrentJobs + 4;
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        pool.run(5, [&](std::size_t) { total++; });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * 50 * 5);
}

// ----------------------------------------------------------------------
// Scratch arena
// ----------------------------------------------------------------------

TEST(ScratchArena, GrowOnlyAndStablePointers) {
  ScratchArena arena;
  float* p = arena.floats(ScratchSlot::kPack, 100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLineBytes, 0u);
  const std::uint64_t grows = arena.grow_count();
  // Smaller or equal requests reuse the same storage without growth.
  EXPECT_EQ(arena.floats(ScratchSlot::kPack, 50), p);
  EXPECT_EQ(arena.floats(ScratchSlot::kPack, 100), p);
  EXPECT_EQ(arena.grow_count(), grows);
  // A larger request grows exactly once.
  float* q = arena.floats(ScratchSlot::kPack, 200);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(arena.grow_count(), grows + 1);
}

TEST(ScratchArena, SlotsAreIndependent) {
  ScratchArena arena;
  float* a = arena.floats(ScratchSlot::kPack, 64);
  float* b = arena.floats(ScratchSlot::kFilterTile, 64);
  ASSERT_NE(a, b);
  a[0] = 1.0f;
  b[0] = 2.0f;
  // Re-requesting either slot must not disturb the other.
  EXPECT_EQ(arena.floats(ScratchSlot::kPack, 32), a);
  EXPECT_EQ(a[0], 1.0f);
  EXPECT_EQ(b[0], 2.0f);
}

TEST(ScratchArena, NamespacesNeverAlias) {
  // Namespace ns isolates a nested engine invocation's buffers from the
  // outer one's on the same thread (re-entrant pool dispatch).
  ScratchArena arena;
  float* outer = arena.floats(0, ScratchSlot::kPack, 64);
  float* inner = arena.floats(1, ScratchSlot::kPack, 64);
  ASSERT_NE(outer, inner);
  outer[0] = 1.0f;
  inner[0] = 2.0f;
  EXPECT_EQ(arena.floats(0, ScratchSlot::kPack, 64), outer);
  EXPECT_EQ(arena.floats(1, ScratchSlot::kPack, 64), inner);
  EXPECT_EQ(outer[0], 1.0f);
  EXPECT_EQ(inner[0], 2.0f);
  // The 2-arg overload is namespace 0.
  EXPECT_EQ(arena.floats(ScratchSlot::kPack, 32), outer);
}

TEST(ScratchArena, DepthGuardTracksNesting) {
  const ScratchDepth d0;
  EXPECT_EQ(d0.level(), 0);
  {
    const ScratchDepth d1;
    EXPECT_EQ(d1.level(), 1);
    const ScratchDepth d2;
    EXPECT_EQ(d2.level(), 2);
  }
  const ScratchDepth d1_again;
  EXPECT_EQ(d1_again.level(), 1);
}

TEST(ScratchArena, ReleaseFreesAndReallocates) {
  ScratchArena arena;
  arena.floats(ScratchSlot::kAux0, 128);
  EXPECT_GT(arena.capacity_bytes(), 0u);
  arena.release();
  EXPECT_EQ(arena.capacity_bytes(), 0u);
  EXPECT_NE(arena.floats(ScratchSlot::kAux0, 16), nullptr);
}

TEST(ScratchArena, ThreadLocalInstancesAreDistinct) {
  ScratchArena* main_arena = &this_thread_scratch();
  EXPECT_EQ(main_arena, &this_thread_scratch());  // stable per thread
  ScratchArena* other_arena = nullptr;
  std::thread t([&] { other_arena = &this_thread_scratch(); });
  t.join();
  EXPECT_NE(main_arena, other_arena);
}

TEST(ScratchArena, GlobalGrowCounterTracksGrowth) {
  ScratchArena arena;
  const std::uint64_t before = scratch_grow_events();
  arena.floats(ScratchSlot::kAux1, 4096);
  EXPECT_GT(scratch_grow_events(), before);
  // Reuse does not move the global counter from this arena.
  const std::uint64_t warm = scratch_grow_events();
  arena.floats(ScratchSlot::kAux1, 4096);
  EXPECT_EQ(arena.grow_count(), 1u);
  EXPECT_GE(scratch_grow_events(), warm);  // other threads may grow
}

TEST(Timer, MeasuresMonotonicallyIncreasingTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double first = t.seconds();
  for (int i = 0; i < 100000; ++i) sink += i;
  const double second = t.seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
}

TEST(PhaseTimer, AccumulatesAndNormalizes) {
  PhaseTimer pt;
  pt.add("a", 1.0);
  pt.add("b", 3.0);
  pt.add("a", 1.0);
  EXPECT_DOUBLE_EQ(pt.seconds("a"), 2.0);
  EXPECT_DOUBLE_EQ(pt.seconds("b"), 3.0);
  EXPECT_DOUBLE_EQ(pt.total(), 5.0);
  EXPECT_DOUBLE_EQ(pt.fraction("a"), 0.4);
  EXPECT_DOUBLE_EQ(pt.fraction("missing"), 0.0);
  pt.clear();
  EXPECT_DOUBLE_EQ(pt.total(), 0.0);
}

TEST(PhaseTimer, ScopeAddsElapsedTime) {
  PhaseTimer pt;
  {
    auto scope = pt.scope("work");
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink += i;
  }
  EXPECT_GT(pt.seconds("work"), 0.0);
}

TEST(CpuInfo, ProbeReturnsSaneValues) {
  const CpuInfo info = probe_host_cpu();
  EXPECT_GE(info.logical_cores, 1);
  EXPECT_GE(info.cache.l1d, 4u * 1024);
  EXPECT_GE(info.cache.l2, info.cache.l1d);
}

}  // namespace
}  // namespace ndirect
