// Tests for the runtime substrate: aligned buffers, partitioning,
// thread pool, timers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "runtime/aligned_buffer.h"
#include "runtime/cpu_info.h"
#include "runtime/partition.h"
#include "runtime/thread_pool.h"
#include "runtime/timer.h"

namespace ndirect {
namespace {

TEST(AlignedBuffer, AllocatesCacheLineAligned) {
  AlignedBuffer<float> buf(7);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes,
            0u);
  EXPECT_EQ(buf.size(), 7u);
}

TEST(AlignedBuffer, ZeroFill) {
  AlignedBuffer<float> buf(100);
  buf.fill_zero();
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<float> a(10);
  a[0] = 42.0f;
  float* p = a.data();
  AlignedBuffer<float> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42.0f);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBuffer, EnsureGrowsOnlyWhenNeeded) {
  AlignedBuffer<float> buf(16);
  float* p = buf.data();
  buf.ensure(8);
  EXPECT_EQ(buf.data(), p);  // no reallocation
  buf.ensure(32);
  EXPECT_GE(buf.size(), 32u);
}

TEST(AlignedBuffer, EmptyBufferIsSafe) {
  AlignedBuffer<float> buf;
  EXPECT_TRUE(buf.empty());
  buf.fill_zero();  // must not crash
  AlignedBuffer<float> moved(std::move(buf));
  EXPECT_TRUE(moved.empty());
}

TEST(Partition, CoversRangeExactlyOnce) {
  for (std::size_t count : {0u, 1u, 7u, 64u, 100u, 1001u}) {
    for (std::size_t parts : {1u, 2u, 3u, 7u, 64u}) {
      std::vector<int> hits(count, 0);
      for (std::size_t i = 0; i < parts; ++i) {
        const Range r = partition_range(count, parts, i);
        for (std::size_t j = r.begin; j < r.end; ++j) ++hits[j];
      }
      for (std::size_t j = 0; j < count; ++j) {
        EXPECT_EQ(hits[j], 1) << "count=" << count << " parts=" << parts
                              << " j=" << j;
      }
    }
  }
}

TEST(Partition, ChunkSizesDifferByAtMostOne) {
  const Range r0 = partition_range(10, 3, 0);
  const Range r1 = partition_range(10, 3, 1);
  const Range r2 = partition_range(10, 3, 2);
  EXPECT_EQ(r0.size(), 4u);
  EXPECT_EQ(r1.size(), 3u);
  EXPECT_EQ(r2.size(), 3u);
  EXPECT_EQ(r0.begin, 0u);
  EXPECT_EQ(r2.end, 10u);
}

TEST(Partition, MorePartsThanWork) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    total += partition_range(3, 8, i).size();
  }
  EXPECT_EQ(total, 3u);
}

TEST(ThreadPool, RunExecutesEveryTaskOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.run(100, [&](std::size_t tid) { hits[tid]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, OversubscriptionRunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.run(16, [&](std::size_t) { count++; });  // 8 tasks per thread
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, ParallelForSumsCorrectly) {
  ThreadPool pool(3);
  std::vector<int> data(10007);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<long long> sum{0};
  pool.parallel_for(data.size(), [&](std::size_t b, std::size_t e) {
    long long local = 0;
    for (std::size_t i = b; i < e; ++i) local += data[i];
    sum += local;
  });
  EXPECT_EQ(sum.load(), 10007LL * 10006 / 2);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(4);
  for (int iter = 0; iter < 50; ++iter) {
    std::atomic<int> count{0};
    pool.run(8, [&](std::size_t) { count++; });
    ASSERT_EQ(count.load(), 8);
  }
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.run(5, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, ZeroTasksIsNoOp) {
  ThreadPool pool(2);
  pool.run(0, [&](std::size_t) { FAIL(); });
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, ConcurrentCallersSerializeSafely) {
  // Several caller threads share one pool; every task of every call
  // must run exactly once (run() dispatches serialize internally).
  ThreadPool pool(3);
  constexpr int kCallers = 4, kTasksPerCall = 25, kCallsPerCaller = 20;
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int call = 0; call < kCallsPerCaller; ++call) {
        pool.run(kTasksPerCall, [&](std::size_t) { total++; });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * kTasksPerCall * kCallsPerCaller);
}

TEST(ThreadPool, GlobalPoolExists) {
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(Timer, MeasuresMonotonicallyIncreasingTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double first = t.seconds();
  for (int i = 0; i < 100000; ++i) sink += i;
  const double second = t.seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
}

TEST(PhaseTimer, AccumulatesAndNormalizes) {
  PhaseTimer pt;
  pt.add("a", 1.0);
  pt.add("b", 3.0);
  pt.add("a", 1.0);
  EXPECT_DOUBLE_EQ(pt.seconds("a"), 2.0);
  EXPECT_DOUBLE_EQ(pt.seconds("b"), 3.0);
  EXPECT_DOUBLE_EQ(pt.total(), 5.0);
  EXPECT_DOUBLE_EQ(pt.fraction("a"), 0.4);
  EXPECT_DOUBLE_EQ(pt.fraction("missing"), 0.0);
  pt.clear();
  EXPECT_DOUBLE_EQ(pt.total(), 0.0);
}

TEST(PhaseTimer, ScopeAddsElapsedTime) {
  PhaseTimer pt;
  {
    auto scope = pt.scope("work");
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink += i;
  }
  EXPECT_GT(pt.seconds("work"), 0.0);
}

TEST(CpuInfo, ProbeReturnsSaneValues) {
  const CpuInfo info = probe_host_cpu();
  EXPECT_GE(info.logical_cores, 1);
  EXPECT_GE(info.cache.l1d, 4u * 1024);
  EXPECT_GE(info.cache.l2, info.cache.l1d);
}

}  // namespace
}  // namespace ndirect
