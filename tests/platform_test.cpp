// Tests for the platform descriptors (Table 3), workloads (Table 4) and
// the analytical performance model. The model tests assert the
// *qualitative* claims of the paper's evaluation, not absolute numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "platform/perf_model.h"
#include "platform/specs.h"
#include "platform/workloads.h"

namespace ndirect {
namespace {

// ----------------------------------------------------------------------
// Table 3
// ----------------------------------------------------------------------

TEST(Specs, Table3ValuesAreVerbatim) {
  const auto specs = table3_platforms();
  ASSERT_EQ(specs.size(), 4u);
  const PlatformSpec& phytium = specs[0];
  EXPECT_EQ(phytium.name, "Phytium 2000+");
  EXPECT_EQ(phytium.cores, 64);
  EXPECT_DOUBLE_EQ(phytium.peak_gflops, 1126.4);
  EXPECT_DOUBLE_EQ(phytium.freq_ghz, 2.2);
  EXPECT_EQ(phytium.cache.l1d, 32u * 1024);
  EXPECT_EQ(phytium.cache.l2, 2u * 1024 * 1024);
  EXPECT_EQ(phytium.cache.l3, 0u);
  EXPECT_TRUE(phytium.cache.l2_shared);

  const PlatformSpec& kp920 = specs[1];
  EXPECT_EQ(kp920.cores, 64);
  EXPECT_DOUBLE_EQ(kp920.peak_gflops, 2662.4);
  EXPECT_EQ(kp920.cache.l3, 64ull * 1024 * 1024);

  const PlatformSpec& tx2 = specs[2];
  EXPECT_EQ(tx2.cores, 32);
  EXPECT_EQ(tx2.smt_per_core, 4);

  const PlatformSpec& rpi = specs[3];
  EXPECT_EQ(rpi.cores, 4);
  EXPECT_DOUBLE_EQ(rpi.peak_gflops, 56.8);
}

TEST(Specs, LookupByName) {
  EXPECT_EQ(platform_by_name("KP920").cores, 64);
  EXPECT_EQ(platform_by_name("RPi 4").cores, 4);
  EXPECT_THROW(platform_by_name("M1"), std::invalid_argument);
}

TEST(Specs, PeakMicrobenchmarkIsPositive) {
  const double peak = measure_peak_gflops_single_core();
  EXPECT_GT(peak, 0.5);    // any machine manages half a GFLOP
  EXPECT_LT(peak, 10000);  // and no single core does 10 TFLOPS FP32
}

TEST(Specs, HostPlatformIsProbedOnce) {
  const PlatformSpec& a = host_platform();
  const PlatformSpec& b = host_platform();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.cores, 1);
  EXPECT_GT(a.peak_gflops, 0);
  EXPECT_GT(a.bandwidth_gibs, 0);
}

// ----------------------------------------------------------------------
// Table 4
// ----------------------------------------------------------------------

TEST(Workloads, TwentyEightLayersWithExpectedMembership) {
  const auto layers = table4_layers(64);
  ASSERT_EQ(layers.size(), 28u);
  for (const ConvLayer& l : layers) {
    EXPECT_TRUE(l.params.valid()) << "layer " << l.id;
    EXPECT_EQ(l.params.N, 64);
    EXPECT_EQ(l.network, l.id <= 23 ? "ResNet-50" : "VGG-16");
  }
}

TEST(Workloads, SpotCheckAgainstTable4) {
  // Layer 1: 3 -> 64 channels, 224x224, 7x7, stride 2.
  const ConvLayer l1 = table4_layer(1, 8);
  EXPECT_EQ(l1.params.C, 3);
  EXPECT_EQ(l1.params.K, 64);
  EXPECT_EQ(l1.params.H, 224);
  EXPECT_EQ(l1.params.R, 7);
  EXPECT_EQ(l1.params.str, 2);
  EXPECT_EQ(l1.params.pad, 3);
  EXPECT_EQ(l1.params.P(), 112);

  // Layer 17: 1024 -> 2048, 14x14, 1x1, stride 2.
  const ConvLayer l17 = table4_layer(17, 8);
  EXPECT_EQ(l17.params.C, 1024);
  EXPECT_EQ(l17.params.K, 2048);
  EXPECT_EQ(l17.params.R, 1);
  EXPECT_EQ(l17.params.pad, 0);
  EXPECT_EQ(l17.params.P(), 7);

  // Layer 24 (VGG): 64 -> 64, 224x224, 3x3, stride 1.
  const ConvLayer l24 = table4_layer(24, 8);
  EXPECT_EQ(l24.network, "VGG-16");
  EXPECT_EQ(l24.params.H, 224);
  EXPECT_EQ(l24.params.P(), 224);  // same-padded
}

TEST(Workloads, ReconstructedRowsMatchResNetArchitecture) {
  // Rows 15/16/21 are reconstructed (see workloads.h); their output
  // shapes must chain correctly within ResNet-50.
  const ConvLayer l15 = table4_layer(15, 1);
  EXPECT_EQ(l15.params.C, 512);
  EXPECT_EQ(l15.params.K, 512);
  EXPECT_EQ(l15.params.P(), 7);  // 14 -> 7, stride 2
  const ConvLayer l16 = table4_layer(16, 1);
  EXPECT_EQ(l16.params.P(), 14);
  const ConvLayer l21 = table4_layer(21, 1);
  EXPECT_EQ(l21.params.H, 7);
  EXPECT_EQ(l21.params.P(), 7);
}

TEST(Workloads, ResnetSubsetIsFirstTwenty) {
  const auto layers = table4_resnet_layers(4);
  ASSERT_EQ(layers.size(), 20u);
  EXPECT_EQ(layers.front().id, 1);
  EXPECT_EQ(layers.back().id, 20);
}

TEST(Workloads, InvalidIdThrows) {
  EXPECT_THROW(table4_layer(0, 1), std::out_of_range);
  EXPECT_THROW(table4_layer(29, 1), std::out_of_range);
}

// ----------------------------------------------------------------------
// Performance model: the paper's qualitative claims
// ----------------------------------------------------------------------

PerfEstimate model(const char* platform, int layer_id,
                   ConvMethod method) {
  const PlatformSpec& spec = platform_by_name(platform);
  const ConvLayer layer = table4_layer(layer_id, spec.cores);
  return estimate_conv_perf(spec, layer.params, method, spec.cores);
}

TEST(PerfModel, NdirectWinsOnAlmostEveryLayer) {
  // Fig. 4: "nDirect performs best overall and consistently outperforms
  // the baseline methods across CONV layers and platforms."
  for (const char* platform : {"Phytium 2000+", "KP920", "ThunderX2"}) {
    int wins = 0;
    for (int id = 1; id <= 28; ++id) {
      const double nd = model(platform, id, ConvMethod::Ndirect).gflops;
      bool best = true;
      for (ConvMethod m :
           {ConvMethod::Im2colGemm, ConvMethod::LibxsmmStyle,
            ConvMethod::XnnpackStyle, ConvMethod::AclDirect}) {
        best &= nd >= model(platform, id, m).gflops;
      }
      wins += best;
    }
    EXPECT_GE(wins, 26) << platform;  // "most test cases"
  }
}

TEST(PerfModel, NdirectReaches70To80PctOnStride1_3x3) {
  // Section 8.1: "For most layers with str=1 ... 70%-80% of the CPU peak
  // performance", highest on R=S=3.
  for (int id : {3, 10, 16, 21, 26, 27, 28}) {  // 3x3 stride-1 layers
    const PerfEstimate e = model("Phytium 2000+", id, ConvMethod::Ndirect);
    EXPECT_GE(e.pct_peak, 60.0) << "layer " << id;
    EXPECT_LE(e.pct_peak, 90.0) << "layer " << id;
  }
}

TEST(PerfModel, Stride2DipsBelowStride1) {
  // Section 8.1: stride-2 layers pay an FAI penalty.
  const double s1 = model("Phytium 2000+", 10, ConvMethod::Ndirect).pct_peak;
  const double s2 = model("Phytium 2000+", 9, ConvMethod::Ndirect).pct_peak;
  EXPECT_LT(s2, s1);
}

TEST(PerfModel, OneByOneBelow3x3) {
  const double c3 = model("Phytium 2000+", 3, ConvMethod::Ndirect).pct_peak;
  const double c1 = model("Phytium 2000+", 5, ConvMethod::Ndirect).pct_peak;
  EXPECT_LT(c1, c3);
}

TEST(PerfModel, LibxsmmAroundHalfPeakAndBestBaseline) {
  // Fig. 1b: LIBXSMM (micro-kernels only) delivers ~50% of peak and is
  // the best-performing baseline; im2col+GEMM achieves ~40%.
  double lib_sum = 0, im2col_sum = 0;
  int count = 0;
  for (int id = 1; id <= 20; ++id) {
    lib_sum += model("Phytium 2000+", id, ConvMethod::LibxsmmStyle).pct_peak;
    im2col_sum +=
        model("Phytium 2000+", id, ConvMethod::Im2colGemm).pct_peak;
    ++count;
  }
  const double lib_avg = lib_sum / count, im2col_avg = im2col_sum / count;
  EXPECT_GT(lib_avg, 35.0);
  EXPECT_LT(lib_avg, 60.0);
  EXPECT_GT(im2col_avg, 20.0);
  EXPECT_LT(im2col_avg, lib_avg);
}

TEST(PerfModel, AclCollapsesOnMultiCore) {
  // Section 3.2: "ACL's direct convolution achieves only 5% of the
  // multi-core peak performance on Phytium 2000+".
  double worst = 100, sum = 0;
  for (int id = 1; id <= 20; ++id) {
    const double pct =
        model("Phytium 2000+", id, ConvMethod::AclDirect).pct_peak;
    worst = std::min(worst, pct);
    sum += pct;
  }
  EXPECT_LT(sum / 20, 12.0);
  EXPECT_LT(worst, 6.0);
}

TEST(PerfModel, NdirectOverAnsorMatchesFig6Band) {
  // Fig. 6: average speedup 1.92x / 1.82x / 1.51x on Phytium / KP920 /
  // ThunderX2, and nDirect wins every individual layer.
  for (const char* platform : {"Phytium 2000+", "KP920", "ThunderX2"}) {
    double geo = 0;
    for (int id = 1; id <= 20; ++id) {
      const double nd = model(platform, id, ConvMethod::Ndirect).gflops;
      const double an = model(platform, id, ConvMethod::AnsorTuned).gflops;
      EXPECT_GE(nd, an) << platform << " layer " << id;
      geo += std::log(nd / an);
    }
    geo = std::exp(geo / 20);
    EXPECT_GT(geo, 1.2) << platform;
    EXPECT_LT(geo, 2.5) << platform;
  }
}

TEST(PerfModel, AclGemmSitsBetweenAclDirectAndIm2col) {
  // Fig. 1b ordering: ACL_GEMM above ACL_DIRECT, below im2col+OpenBLAS.
  double gemm_sum = 0, direct_sum = 0, im2col_sum = 0;
  for (int id = 1; id <= 20; ++id) {
    gemm_sum += model("Phytium 2000+", id, ConvMethod::AclGemm).pct_peak;
    direct_sum +=
        model("Phytium 2000+", id, ConvMethod::AclDirect).pct_peak;
    im2col_sum +=
        model("Phytium 2000+", id, ConvMethod::Im2colGemm).pct_peak;
  }
  EXPECT_GT(gemm_sum, direct_sum);
  EXPECT_LT(gemm_sum, im2col_sum);
}

TEST(PerfModel, SmtOversubscriptionHelpsOnThunderX2) {
  // Fig. 9 runs 4 threads/core on ThunderX2; latency hiding must not
  // hurt and typically helps nDirect.
  const PlatformSpec& tx2 = platform_by_name("ThunderX2");
  const ConvLayer layer = table4_layer(10, tx2.cores * 4);
  const PerfEstimate base =
      estimate_conv_perf(tx2, layer.params, ConvMethod::Ndirect, tx2.cores);
  const PerfEstimate smt = estimate_conv_perf(
      tx2, layer.params, ConvMethod::Ndirect, tx2.cores * 4);
  EXPECT_GE(smt.gflops, base.gflops);
}

TEST(PerfModel, MemoryBoundCapsBandwidthHeavyMethods) {
  // ACL's K-split makes every thread stream the whole input; its
  // estimate must be memory-bound on the bandwidth-poor Phytium.
  const PerfEstimate e = model("Phytium 2000+", 5, ConvMethod::AclDirect);
  EXPECT_LE(e.memory_bound, e.compute_bound);
  EXPECT_EQ(e.gflops, std::min(e.compute_bound, e.memory_bound));
}

TEST(PerfModel, EstimatesNeverExceedPeakOrGoNegative) {
  for (const PlatformSpec& spec : table3_platforms()) {
    for (const ConvLayer& layer : table4_layers(spec.cores)) {
      for (ConvMethod m : all_methods()) {
        const PerfEstimate e =
            estimate_conv_perf(spec, layer.params, m, spec.cores);
        EXPECT_GT(e.gflops, 0) << spec.name << " " << method_name(m);
        EXPECT_LE(e.gflops, spec.peak_gflops * 1.0001)
            << spec.name << " " << method_name(m) << " layer " << layer.id;
      }
    }
  }
}

TEST(PerfModel, KP920FastestInAbsoluteTerms) {
  // Fig. 4 middle panel tops out near 2000 GFLOPS; KP920 must dominate
  // the other platforms in absolute predicted throughput.
  const double kp = model("KP920", 26, ConvMethod::Ndirect).gflops;
  const double ph = model("Phytium 2000+", 26, ConvMethod::Ndirect).gflops;
  const double tx = model("ThunderX2", 26, ConvMethod::Ndirect).gflops;
  const double rp = model("RPi 4", 26, ConvMethod::Ndirect).gflops;
  EXPECT_GT(kp, ph);
  EXPECT_GT(kp, tx);
  EXPECT_GT(ph, rp);
}

}  // namespace
}  // namespace ndirect
