// Randomized branchy graph topologies for the DAG fuzzer and the
// graph-executor concurrency tests.
//
// Every generated graph is a DAG over conv/relu/maxpool/add/concat ops
// with random split points (any existing node can sprout a new branch)
// and random merges (add of two same-shaped nodes, channel concat of
// same-N/H/W nodes). All leaves are folded into the output through
// gavgpool -> concat -> relu, so every branch affects the result and a
// scheduling bug anywhere in the DAG shows up in the final tensor.
#pragma once

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "nn/graph.h"

namespace ndirect {
namespace testgen {

inline std::unique_ptr<ConvOp> make_conv(const TensorShape& s, int k,
                                         int r, int str,
                                         std::uint64_t seed) {
  ConvParams p{.N = s.N, .C = s.C, .H = s.H, .W = s.W, .K = k,
               .R = r, .S = r, .str = str, .pad = r / 2};
  return std::make_unique<ConvOp>(p, ConvBackend::Ndirect, seed,
                                  /*bias=*/(seed & 1) != 0);
}

/// Random branchy DAG seeded from `seed`. Shapes stay small enough for
/// >= 100 fuzz iterations in CI; topology width is unbounded by design
/// (that is what the concurrent executor must survive).
///
/// `batch` > 0 overrides the input batch dimension N while keeping the
/// topology, channel counts and conv weights of the same seed bitwise
/// identical (the random N draw still happens, its value is just
/// discarded — the RNG stream must not shift). The serving layer leans
/// on this: factory(batch) must build the same function at every batch
/// size, and the batch-invariance fuzz compares N=1 slices across N.
inline std::unique_ptr<Graph> build_random_dag(std::uint64_t seed,
                                               int batch = 0) {
  std::mt19937_64 rng(seed);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  const int drawn_n = pick(1, 2);
  const int N = batch > 0 ? batch : drawn_n;
  const int C = pick(2, 6);
  const int H = pick(6, 14);
  const int W = pick(6, 14);
  auto g = std::make_unique<Graph>(N, C, H, W);

  std::vector<NodeId> grown = {0};  // candidates for new consumers
  const int ops = pick(5, 12);
  for (int i = 0; i < ops; ++i) {
    const NodeId src = grown[static_cast<std::size_t>(
        pick(0, static_cast<int>(grown.size()) - 1))];
    const TensorShape s = g->shape_of(src);
    NodeId added = -1;
    switch (pick(0, 5)) {
      case 0:
      case 1: {  // conv (weighted: the op under test)
        const int r = pick(0, 2) == 0 ? 1 : 3;
        if (s.H < r || s.W < r) break;
        const int str = s.H >= 6 && s.W >= 6 && pick(0, 3) == 0 ? 2 : 1;
        added = g->add(make_conv(s, pick(3, 12), r, str, seed + i), {src});
        break;
      }
      case 2:
        added = g->add(std::make_unique<ReluOp>(), {src});
        break;
      case 3: {  // maxpool 2x2/2
        if (s.H < 2 || s.W < 2) break;
        added = g->add(std::make_unique<MaxPoolOp>(2, 2, 0), {src});
        break;
      }
      case 4: {  // residual add: needs a second node of identical shape
        for (NodeId other : grown) {
          if (other != src && g->shape_of(other) == s) {
            added = g->add(std::make_unique<AddOp>(), {src, other});
            break;
          }
        }
        break;
      }
      case 5: {  // channel concat of same-N/H/W nodes
        std::vector<NodeId> peers;
        for (NodeId other : grown) {
          const TensorShape& o = g->shape_of(other);
          if (other != src && o.N == s.N && o.H == s.H && o.W == s.W) {
            peers.push_back(other);
          }
        }
        if (!peers.empty()) {
          added = g->add(std::make_unique<ConcatOp>(),
                         {src, peers[static_cast<std::size_t>(pick(
                                   0, static_cast<int>(peers.size()) - 1))]});
        }
        break;
      }
    }
    if (added >= 0) grown.push_back(added);
  }

  // Fold every leaf into the output so no branch is dead code. Snapshot
  // the node count first: the folding adds nodes, which must be neither
  // scanned as leaves nor indexed into `consumed`.
  const NodeId grown_count = g->node_count();
  std::vector<bool> consumed(static_cast<std::size_t>(grown_count),
                             false);
  for (NodeId id = 1; id < grown_count; ++id) {
    for (NodeId in : g->inputs_of(id)) {
      consumed[static_cast<std::size_t>(in)] = true;
    }
  }
  std::vector<NodeId> pooled;
  for (NodeId id = 0; id < grown_count; ++id) {
    if (!consumed[static_cast<std::size_t>(id)]) {
      pooled.push_back(
          g->add(std::make_unique<GlobalAvgPoolOp>(), {id}));
    }
  }
  NodeId tail = pooled.size() == 1
                    ? pooled[0]
                    : g->add(std::make_unique<ConcatOp>(), pooled);
  g->add(std::make_unique<ReluOp>(), {tail});
  return g;
}

}  // namespace testgen
}  // namespace ndirect
