// Tests for the store-time epilogue (bias + ReLU fusion) and the
// conv+ReLU graph fusion pass.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/naive_conv.h"
#include "conv_shapes.h"
#include "core/ndirect.h"
#include "nn/models.h"
#include "nn/optimize.h"
#include "tensor/compare.h"
#include "tensor/rng.h"
#include "tensor/transforms.h"

namespace ndirect {
namespace {

Tensor reference_with_epilogue(const Tensor& input, const Tensor& filter,
                               const ConvParams& p,
                               const std::vector<float>& bias, bool relu) {
  Tensor ref = naive_conv_nchw(input, filter, p);
  const std::int64_t hw = std::int64_t{p.P()} * p.Q();
  for (int n = 0; n < p.N; ++n) {
    for (int k = 0; k < p.K; ++k) {
      float* plane =
          ref.data() + (std::int64_t{n} * p.K + k) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        float v = plane[i];
        if (!bias.empty()) v += bias[static_cast<std::size_t>(k)];
        if (relu) v = std::max(v, 0.0f);
        plane[i] = v;
      }
    }
  }
  return ref;
}

std::vector<float> make_bias(int K) {
  std::vector<float> bias(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    bias[static_cast<std::size_t>(k)] =
        0.25f * static_cast<float>(k % 7 - 3);
  }
  return bias;
}

class EpilogueSweep : public ::testing::TestWithParam<ConvParams> {};

TEST_P(EpilogueSweep, BiasAndReluMatchReference) {
  const ConvParams p = GetParam();
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, 81);
  fill_random(f, 82);
  const std::vector<float> bias = make_bias(p.K);
  const Tensor ref = reference_with_epilogue(in, f, p, bias, true);

  const NdirectConv conv(p);
  ConvEpilogue epi;
  epi.bias = bias.data();
  epi.relu = true;
  const Tensor out = conv.run(in, f, epi);
  EXPECT_TRUE(allclose(out, ref))
      << compare_tensors(out, ref).to_string();
}

INSTANTIATE_TEST_SUITE_P(Shapes, EpilogueSweep,
                         ::testing::ValuesIn(correctness_conv_shapes()));

TEST(Epilogue, BiasOnly) {
  const ConvParams p{.N = 1, .C = 8, .H = 10, .W = 10, .K = 12,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, 83);
  fill_random(f, 84);
  const std::vector<float> bias = make_bias(p.K);
  const Tensor ref = reference_with_epilogue(in, f, p, bias, false);
  const NdirectConv conv(p);
  const Tensor out = conv.run(in, f, {bias.data(), false});
  EXPECT_TRUE(allclose(out, ref));
  // Some values must actually be negative (ReLU genuinely off).
  bool any_negative = false;
  for (std::size_t i = 0; i < out.size(); ++i) any_negative |= out[i] < 0;
  EXPECT_TRUE(any_negative);
}

TEST(Epilogue, ReluOnlyClampsEverything) {
  const ConvParams p{.N = 1, .C = 8, .H = 10, .W = 10, .K = 12,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, 85);
  fill_random(f, 86);
  const NdirectConv conv(p);
  const Tensor out = conv.run(in, f, {nullptr, true});
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_GE(out[i], 0.0f);
  const Tensor ref =
      reference_with_epilogue(in, f, p, {}, /*relu=*/true);
  EXPECT_TRUE(allclose(out, ref));
}

TEST(Epilogue, AppliedOnlyAfterFinalCTile) {
  // Force tiny Tc so several C tiles accumulate; the ReLU must clamp
  // the *final* sum, not intermediate partials (which would corrupt
  // later accumulation).
  const ConvParams p{.N = 1, .C = 24, .H = 8, .W = 8, .K = 8,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, 87);
  fill_random(f, 88);
  NdirectOptions opts;
  opts.force_rb = {8, 4};
  opts.force_tiling = {3, 4, 2};  // 8 C tiles
  const NdirectConv conv(p, opts);
  const Tensor out = conv.run(in, f, {nullptr, true});
  const Tensor ref = reference_with_epilogue(in, f, p, {}, true);
  EXPECT_TRUE(allclose(out, ref))
      << compare_tensors(out, ref).to_string();
}

TEST(Epilogue, NhwcPathSupportsEpilogue) {
  const ConvParams p{.N = 1, .C = 8, .H = 9, .W = 9, .K = 16,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Tensor in = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor f = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(in, 89);
  fill_random(f, 90);
  const std::vector<float> bias = make_bias(p.K);
  const Tensor ref = reference_with_epilogue(in, f, p, bias, true);
  const NdirectConv conv(p);
  const Tensor out_nhwc =
      conv.run_nhwc(nchw_to_nhwc(in), f, {bias.data(), true});
  EXPECT_TRUE(allclose(nhwc_to_nchw(out_nhwc), ref));
}

// ----------------------------------------------------------------------
// Graph-level conv+ReLU fusion
// ----------------------------------------------------------------------

TEST(FuseConvRelu, PreservesVggOutputs) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  auto net = build_vgg16(1, opts);
  Tensor in = make_input_nchw(1, 3, 32, 32);
  fill_random(in, 91);
  const Tensor before = net->run(in);
  const int fused = fuse_conv_relu(*net);
  EXPECT_EQ(fused, 13);  // every VGG-16 conv is followed by ReLU
  const Tensor after = net->run(in);
  EXPECT_TRUE(allclose(before, after, 1e-3, 1e-3));
}

TEST(FuseConvRelu, WalksThroughFoldedBatchNorm) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  auto net = build_resnet50(1, opts);
  Tensor in = make_input_nchw(1, 3, 32, 32);
  fill_random(in, 92);
  const Tensor before = net->run(in);
  ASSERT_EQ(fold_batchnorm(*net), 53);
  // conv->bn->relu chains fuse; the post-residual ReLUs (fed by Add) do
  // not. ResNet-50: stem + 2 per bottleneck = 1 + 2*16 = 33.
  EXPECT_EQ(fuse_conv_relu(*net), 33);
  const Tensor after = net->run(in);
  EXPECT_TRUE(allclose(before, after, 1e-3, 1e-3))
      << compare_tensors(before, after).to_string();
}

TEST(FuseConvRelu, FusionIsBackendInvariant) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  opts.backend = ConvBackend::Ndirect;
  auto net = build_vgg16(1, opts);
  fuse_conv_relu(*net);
  Tensor in = make_input_nchw(1, 3, 32, 32);
  fill_random(in, 93);
  const Tensor nd = net->run(in);
  for (ConvOp* conv : net->conv_ops()) {
    conv->set_backend(ConvBackend::Im2colGemm);
  }
  const Tensor gemm = net->run(in);
  EXPECT_TRUE(allclose(nd, gemm, 1e-3, 1e-3));
}

TEST(FuseConvRelu, DoesNotFuseResidualRelu) {
  // A relu fed by an Add must stay a ReLU op.
  Graph g(1, 4, 8, 8);
  const ConvParams p{.N = 1, .C = 4, .H = 8, .W = 8, .K = 4,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  NodeId c1 = g.add(std::make_unique<ConvOp>(p, ConvBackend::Ndirect, 1,
                                             false),
                    {0});
  NodeId add = g.add(std::make_unique<AddOp>(), {c1, c1});
  g.add(std::make_unique<ReluOp>(), {add});
  EXPECT_EQ(fuse_conv_relu(g), 0);
}

}  // namespace
}  // namespace ndirect
