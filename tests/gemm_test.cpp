// Tests for the Goto SGEMM substrate.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "gemm/blocking.h"
#include "gemm/gemm.h"
#include "gemm/microkernel.h"
#include "gemm/pack.h"
#include "tensor/compare.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace ndirect {
namespace {

Tensor random_matrix(std::int64_t rows, std::int64_t cols,
                     std::uint64_t seed) {
  Tensor m = make_matrix(rows, cols);
  fill_random(m, seed);
  return m;
}

TEST(GemmPack, PackAIsKMajorWithZeroTail) {
  // 5 x 3 block, MR = 8: one panel, rows 5..7 zero.
  const int mc = 5, kc = 3;
  Tensor a = random_matrix(8, 8, 1);
  std::vector<float> packed(kGemmMR * kc, -1.0f);
  gemm_pack_a(a.data(), 8, mc, kc, packed.data());
  for (int k = 0; k < kc; ++k)
    for (int i = 0; i < kGemmMR; ++i) {
      const float expect = i < mc ? a[i * 8 + k] : 0.0f;
      EXPECT_EQ(packed[k * kGemmMR + i], expect) << "k=" << k << " i=" << i;
    }
}

TEST(GemmPack, PackBIsKMajorWithZeroTail) {
  const int kc = 4, nc = 14;  // 14 = 12 + ragged 2
  Tensor b = random_matrix(4, 16, 2);
  const int panels = (nc + kGemmNR - 1) / kGemmNR;
  std::vector<float> packed(panels * kGemmNR * kc, -1.0f);
  gemm_pack_b(b.data(), 16, kc, nc, packed.data());
  for (int j0 = 0, panel = 0; j0 < nc; j0 += kGemmNR, ++panel) {
    for (int k = 0; k < kc; ++k)
      for (int j = 0; j < kGemmNR; ++j) {
        const float expect = j0 + j < nc ? b[k * 16 + j0 + j] : 0.0f;
        EXPECT_EQ(packed[(panel * kc + k) * kGemmNR + j], expect);
      }
  }
}

TEST(GemmMicrokernel, FullTileMatchesReference) {
  const int kc = 37;
  Tensor a = random_matrix(kGemmMR, kc, 3);
  Tensor b = random_matrix(kc, kGemmNR, 4);
  std::vector<float> pa(kGemmMR * kc), pb(kc * kGemmNR);
  gemm_pack_a(a.data(), kc, kGemmMR, kc, pa.data());
  gemm_pack_b(b.data(), kGemmNR, kc, kGemmNR, pb.data());

  Tensor c = make_matrix(kGemmMR, kGemmNR);
  gemm_microkernel_8x12(kc, pa.data(), pb.data(), c.data(), kGemmNR, false);

  Tensor ref = make_matrix(kGemmMR, kGemmNR);
  sgemm_reference(kGemmMR, kGemmNR, kc, a.data(), kc, b.data(), kGemmNR,
                  ref.data(), kGemmNR);
  EXPECT_TRUE(allclose(c, ref)) << compare_tensors(c, ref).to_string();
}

TEST(GemmMicrokernel, AccumulateAddsToExistingC) {
  const int kc = 5;
  Tensor a = random_matrix(kGemmMR, kc, 5);
  Tensor b = random_matrix(kc, kGemmNR, 6);
  std::vector<float> pa(kGemmMR * kc), pb(kc * kGemmNR);
  gemm_pack_a(a.data(), kc, kGemmMR, kc, pa.data());
  gemm_pack_b(b.data(), kGemmNR, kc, kGemmNR, pb.data());

  Tensor c = make_matrix(kGemmMR, kGemmNR);
  c.fill(2.0f);
  gemm_microkernel_8x12(kc, pa.data(), pb.data(), c.data(), kGemmNR, true);

  Tensor ref = make_matrix(kGemmMR, kGemmNR);
  ref.fill(2.0f);
  sgemm_reference(kGemmMR, kGemmNR, kc, a.data(), kc, b.data(), kGemmNR,
                  ref.data(), kGemmNR, /*accumulate=*/true);
  EXPECT_TRUE(allclose(c, ref));
}

TEST(GemmMicrokernel, EdgeTileWritesOnlyValidRegion) {
  const int kc = 3, mr = 5, nr = 7;
  Tensor a = random_matrix(mr, kc, 7);
  Tensor b = random_matrix(kc, nr, 8);
  std::vector<float> pa(kGemmMR * kc), pb(kc * kGemmNR);
  gemm_pack_a(a.data(), kc, mr, kc, pa.data());
  gemm_pack_b(b.data(), nr, kc, nr, pb.data());

  Tensor c = make_matrix(kGemmMR, kGemmNR);
  c.fill(-99.0f);
  gemm_microkernel_edge(kc, pa.data(), pb.data(), c.data(), kGemmNR, mr, nr,
                        false);
  // Outside the mr x nr region the canary must survive.
  for (int i = 0; i < kGemmMR; ++i)
    for (int j = 0; j < kGemmNR; ++j) {
      if (i >= mr || j >= nr) {
        EXPECT_EQ(c[i * kGemmNR + j], -99.0f);
      }
    }
  Tensor ref = make_matrix(mr, nr);
  sgemm_reference(mr, nr, kc, a.data(), kc, b.data(), nr, ref.data(), nr);
  for (int i = 0; i < mr; ++i)
    for (int j = 0; j < nr; ++j)
      EXPECT_NEAR(c[i * kGemmNR + j], ref[i * nr + j], 1e-4);
}

TEST(GemmBlocking, RespectsMicroTileMultiples) {
  CacheInfo cache;
  cache.l1d = 32 * 1024;
  cache.l2 = 512 * 1024;
  cache.l3 = 32 * 1024 * 1024;
  const GemmBlocking b = GemmBlocking::from_cache(cache);
  EXPECT_GT(b.kc, 0);
  EXPECT_EQ(b.mc % kGemmMR, 0);
  EXPECT_EQ(b.nc % kGemmNR, 0);
  // The A panel must actually fit in half the L2 it was sized for.
  EXPECT_LE(static_cast<std::size_t>(b.mc) * b.kc * sizeof(float),
            cache.l2);
}

TEST(GemmBlocking, NoL3FallsBackToDefaultNc) {
  CacheInfo cache;
  cache.l3 = 0;
  const GemmBlocking b = GemmBlocking::from_cache(cache);
  EXPECT_GT(b.nc, 0);
}

struct GemmShape {
  int m, n, k;
};

class SgemmShapes : public ::testing::TestWithParam<GemmShape> {};

TEST_P(SgemmShapes, MatchesReference) {
  const auto [m, n, k] = GetParam();
  Tensor a = random_matrix(m, k, 11);
  Tensor b = random_matrix(k, n, 12);
  Tensor c = make_matrix(m, n);
  Tensor ref = make_matrix(m, n);
  sgemm(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  sgemm_reference(m, n, k, a.data(), k, b.data(), n, ref.data(), n);
  EXPECT_TRUE(allclose(c, ref)) << "m=" << m << " n=" << n << " k=" << k
                                << " " << compare_tensors(c, ref).to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SgemmShapes,
    ::testing::Values(
        GemmShape{1, 1, 1}, GemmShape{8, 12, 16}, GemmShape{7, 11, 13},
        GemmShape{64, 64, 64}, GemmShape{100, 100, 100},
        GemmShape{128, 384, 256},   // larger than one MC x KC panel
        GemmShape{257, 131, 67},    // every dimension ragged
        GemmShape{1, 512, 64},      // single row
        GemmShape{512, 1, 64},      // single column
        GemmShape{64, 3136, 27},    // conv-shaped: 3x3x3 kernel, 56x56 out
        GemmShape{256, 196, 2304})  // conv-shaped: layer 16 of Table 4
);

class SgemmSimpleShapes : public ::testing::TestWithParam<GemmShape> {};

TEST_P(SgemmSimpleShapes, MatchesReference) {
  const auto [m, n, k] = GetParam();
  Tensor a = random_matrix(m, k, 31);
  Tensor b = random_matrix(k, n, 32);
  Tensor c = make_matrix(m, n);
  Tensor ref = make_matrix(m, n);
  sgemm_simple(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  sgemm_reference(m, n, k, a.data(), k, b.data(), n, ref.data(), n);
  EXPECT_TRUE(allclose(c, ref)) << "m=" << m << " n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Shapes, SgemmSimpleShapes,
                         ::testing::Values(GemmShape{1, 1, 1},
                                           GemmShape{7, 11, 13},
                                           GemmShape{64, 100, 300},
                                           GemmShape{33, 129, 65}));

TEST(SgemmSimple, AccumulateFlagAddsToC) {
  const int m = 9, n = 14, k = 21;
  Tensor a = random_matrix(m, k, 33);
  Tensor b = random_matrix(k, n, 34);
  Tensor c = make_matrix(m, n);
  fill_random(c, 35);
  Tensor ref = c.clone();
  sgemm_simple(m, n, k, a.data(), k, b.data(), n, c.data(), n, true);
  sgemm_reference(m, n, k, a.data(), k, b.data(), n, ref.data(), n, true);
  EXPECT_TRUE(allclose(c, ref));
}

TEST(Sgemm, AccumulateFlagAddsToC) {
  const int m = 33, n = 29, k = 41;
  Tensor a = random_matrix(m, k, 13);
  Tensor b = random_matrix(k, n, 14);
  Tensor c = make_matrix(m, n);
  fill_random(c, 15);
  Tensor ref = c.clone();
  sgemm(m, n, k, a.data(), k, b.data(), n, c.data(), n, true);
  sgemm_reference(m, n, k, a.data(), k, b.data(), n, ref.data(), n, true);
  EXPECT_TRUE(allclose(c, ref));
}

TEST(Sgemm, MultiPanelReductionSplitsCorrectly) {
  // k much larger than KC forces several reduction slices.
  GemmContext ctx;
  ctx.blocking.kc = 32;
  ctx.blocking.mc = 16;
  ctx.blocking.nc = 24;
  const int m = 40, n = 52, k = 200;
  Tensor a = random_matrix(m, k, 16);
  Tensor b = random_matrix(k, n, 17);
  Tensor c = make_matrix(m, n);
  Tensor ref = make_matrix(m, n);
  sgemm(m, n, k, a.data(), k, b.data(), n, c.data(), n, false, &ctx);
  sgemm_reference(m, n, k, a.data(), k, b.data(), n, ref.data(), n);
  EXPECT_TRUE(allclose(c, ref));
}

TEST(Sgemm, ZeroKClearsOrKeepsC) {
  Tensor c = make_matrix(3, 3);
  c.fill(5.0f);
  sgemm(3, 3, 0, nullptr, 1, nullptr, 1, c.data(), 3, /*accumulate=*/true);
  EXPECT_EQ(c[0], 5.0f);
  sgemm(3, 3, 0, nullptr, 1, nullptr, 1, c.data(), 3, /*accumulate=*/false);
  EXPECT_EQ(c[0], 0.0f);
}

TEST(Sgemm, StridedCMatrixLeavesGapsUntouched) {
  // ldc > n: the gap columns must keep their canary.
  const int m = 9, n = 10, k = 8, ldc = 13;
  Tensor a = random_matrix(m, k, 18);
  Tensor b = random_matrix(k, n, 19);
  Tensor c = make_matrix(m, ldc);
  c.fill(-7.0f);
  sgemm(m, n, k, a.data(), k, b.data(), n, c.data(), ldc);
  for (int i = 0; i < m; ++i)
    for (int j = n; j < ldc; ++j) EXPECT_EQ(c[i * ldc + j], -7.0f);
}

TEST(Sgemm, PhaseTimerSplitsPackingAndMicrokernel) {
  GemmContext ctx;
  PhaseTimer pt;
  ctx.phase_timer = &pt;
  const int m = 64, n = 64, k = 64;
  Tensor a = random_matrix(m, k, 20);
  Tensor b = random_matrix(k, n, 21);
  Tensor c = make_matrix(m, n);
  sgemm(m, n, k, a.data(), k, b.data(), n, c.data(), n, false, &ctx);
  EXPECT_GT(pt.seconds("packing"), 0.0);
  EXPECT_GT(pt.seconds("micro-kernel"), 0.0);
}

}  // namespace
}  // namespace ndirect
