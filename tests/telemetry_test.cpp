// Telemetry/trace layer: per-worker counter aggregation against the
// scheduler oracle, Chrome-trace well-formedness, zero-overhead
// gating, per-instance scheduler attribution, and the ConvReport
// predicted-vs-measured join.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/ndirect.h"
#include "core/report.h"
#include "nn/graph.h"
#include "platform/specs.h"
#include "platform/workloads.h"
#include "runtime/thread_pool.h"
#include "runtime/trace.h"
#include "runtime/work_queue.h"
#include "tensor/rng.h"

namespace ndirect {
namespace {

struct ConvData {
  Tensor input;
  Tensor filter;
};

ConvData make_data(const ConvParams& p, std::uint64_t seed) {
  ConvData d{make_input_nchw(p.N, p.C, p.H, p.W),
             make_filter_kcrs(p.K, p.C, p.R, p.S)};
  fill_random(d.input, seed);
  fill_random(d.filter, seed + 1);
  return d;
}

/// A conv big enough to produce several macro-tiles on a 4-worker grid.
ConvParams medium_conv() {
  return {.N = 2, .C = 16, .H = 24, .W = 24, .K = 32, .R = 3, .S = 3,
          .str = 1, .pad = 1};
}

/// Restores the runtime telemetry switch on scope exit, so a test that
/// flips it cannot leak the disabled state into later tests.
struct TelemetryGuard {
  ~TelemetryGuard() { set_telemetry_enabled(kTelemetryCompiled); }
};

/// Stops and clears the global trace session on scope exit.
struct TraceGuard {
  ~TraceGuard() { TraceSession::global().clear(); }
};

// ----------------------------------------------------------------------
// WorkerTelemetry / TelemetrySnapshot units
// ----------------------------------------------------------------------

TEST(WorkerTelemetry, SnapshotAggregatesSlots) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  WorkerTelemetry tel(3);
  tel.add(0, Counter::kTilesClaimed, 4);
  tel.add(1, Counter::kTilesClaimed, 2);
  tel.add(2, Counter::kMicrokernelNs, 500'000'000);  // 0.5 s
  tel.add(-1, Counter::kTilesClaimed, 99);  // out of range: dropped
  tel.add(3, Counter::kTilesClaimed, 99);
  EXPECT_EQ(tel.total(Counter::kTilesClaimed), 6u);

  const TelemetrySnapshot snap = tel.snapshot(1.0);
  ASSERT_EQ(snap.workers.size(), 3u);
  EXPECT_EQ(snap.total(Counter::kTilesClaimed), 6u);
  EXPECT_DOUBLE_EQ(snap.phase_seconds(Counter::kMicrokernelNs), 0.5);
  EXPECT_DOUBLE_EQ(snap.busy_fraction(2), 0.5);
  EXPECT_DOUBLE_EQ(snap.busy_fraction(0), 0.0);

  tel.reset();
  EXPECT_EQ(tel.total(Counter::kTilesClaimed), 0u);
}

TEST(WorkerTelemetry, MergeAddsPerWorkerRowsAndGrows) {
  TelemetrySnapshot a, b;
  a.workers.resize(1);
  a.workers[0].v[0] = 3;
  a.wall_seconds = 0.25;
  b.workers.resize(2);
  b.workers[0].v[0] = 1;
  b.workers[1].v[0] = 7;
  b.wall_seconds = 0.5;
  a.merge(b);
  ASSERT_EQ(a.workers.size(), 2u);
  EXPECT_EQ(a.workers[0].v[0], 4u);
  EXPECT_EQ(a.workers[1].v[0], 7u);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 0.75);
}

TEST(WorkerTelemetry, SnapshotJsonRoundTripsThroughAStrictParser) {
  // The exported document must satisfy a real parser, not just our own
  // substring checks: pipe it through `python3 -m json.tool`, which
  // rejects bare control bytes, trailing commas and unbalanced
  // braces. (The escaping bug this guards against: un-escaped control
  // characters in string fields made strict parsers reject the dump.)
  if (std::system("python3 -c pass > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "python3 not available";
  TelemetrySnapshot snap;
  snap.workers.resize(3);
  snap.workers[0].v[static_cast<int>(Counter::kTilesClaimed)] = 41;
  snap.workers[1].v[static_cast<int>(Counter::kLocalSteals)] = 7;
  snap.workers[2].v[static_cast<int>(Counter::kPackNs)] = 123456789;
  snap.wall_seconds = 0.125;
  const std::string path =
      testing::TempDir() + "telemetry_roundtrip.json";
  {
    std::ofstream out(path);
    out << snap.to_json();
  }
  const std::string cmd =
      "python3 -m json.tool " + path + " > /dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0)
      << "json.tool rejected the snapshot document";
}

TEST(WorkerTelemetry, SnapshotJsonCarriesCountersAndFractions) {
  TelemetrySnapshot snap;
  snap.workers.resize(2);
  snap.workers[0].v[static_cast<int>(Counter::kTilesClaimed)] = 5;
  snap.wall_seconds = 0.1;
  const std::string j = snap.to_json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"tiles_claimed\": 5"), std::string::npos);
  EXPECT_NE(j.find("\"phase_fractions\""), std::string::npos);
  EXPECT_NE(j.find("\"busy_fraction\""), std::string::npos);
  EXPECT_NE(j.find("\"per_worker\""), std::string::npos);
}

// ----------------------------------------------------------------------
// Engine counters vs the scheduler oracle
// ----------------------------------------------------------------------

TEST(EngineTelemetry, TileClaimsSumToMacroTileCount) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  const ConvParams p = medium_conv();
  const ConvData d = make_data(p, 7);
  ThreadPool pool(4);

  TelemetrySnapshot snap;
  SchedulerStats stats;
  NdirectOptions opts;
  opts.pool = &pool;
  opts.threads = 4;
  opts.telemetry = &snap;
  opts.sched_stats = &stats;
  (void)ndirect_conv(d.input, d.filter, p, opts);

  ASSERT_FALSE(snap.empty());
  ASSERT_EQ(static_cast<int>(snap.workers.size()), stats.workers);
  // The acceptance invariant: per-worker claims sum to exactly the
  // macro-tile count the scheduler handed out.
  EXPECT_EQ(snap.total(Counter::kTilesClaimed), stats.tiles);
  EXPECT_GT(stats.tiles, 0u);
  // Steal attribution agrees with the scheduler's own breakdown.
  EXPECT_EQ(snap.total(Counter::kLocalSteals), stats.local_steals);
  EXPECT_EQ(snap.total(Counter::kNeighbourSteals), stats.neighbour_steals);
  EXPECT_EQ(snap.total(Counter::kGlobalSteals), stats.global_steals);
  EXPECT_EQ(stats.local_steals + stats.neighbour_steals +
                stats.global_steals,
            stats.steals);
  EXPECT_GT(snap.wall_seconds, 0.0);
  for (int w = 0; w < stats.workers; ++w) {
    EXPECT_GE(snap.busy_fraction(w), 0.0);
    EXPECT_LE(snap.busy_fraction(w), 1.0);
  }
}

TEST(EngineTelemetry, SerialRunMatchesSerialOracle) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  const ConvParams p = medium_conv();
  const ConvData d = make_data(p, 8);

  TelemetrySnapshot snap;
  SchedulerStats stats;
  NdirectOptions opts;
  opts.threads = 1;
  opts.telemetry = &snap;
  opts.sched_stats = &stats;
  (void)ndirect_conv(d.input, d.filter, p, opts);

  ASSERT_EQ(snap.workers.size(), 1u);
  EXPECT_EQ(snap.workers[0].value(Counter::kTilesClaimed), stats.tiles);
  EXPECT_EQ(snap.workers[0].steals(), 0u);
  EXPECT_GT(snap.phase_seconds(Counter::kMicrokernelNs), 0.0);
}

TEST(EngineTelemetry, PhaseTimerWorksAtAnyWorkerCount) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  const ConvParams p = medium_conv();
  const ConvData d = make_data(p, 9);
  ThreadPool pool(4);

  PhaseTimer pt;
  TelemetrySnapshot snap;
  NdirectOptions opts;
  opts.pool = &pool;
  opts.threads = 4;  // the seed only supported phase timing at 1 thread
  opts.fuse_packing = false;
  opts.phase_timer = &pt;
  opts.telemetry = &snap;
  (void)ndirect_conv(d.input, d.filter, p, opts);

  EXPECT_GT(pt.seconds("transform"), 0.0);
  EXPECT_GT(pt.seconds("packing"), 0.0);
  EXPECT_GT(pt.seconds("micro-kernel"), 0.0);
  // The compatibility view is an aggregation of the per-worker phase
  // counters, not an independent measurement.
  EXPECT_DOUBLE_EQ(pt.seconds("micro-kernel"),
                   snap.phase_seconds(Counter::kMicrokernelNs));
  EXPECT_DOUBLE_EQ(pt.seconds("transform"),
                   snap.phase_seconds(Counter::kTransformNs));
}

TEST(EngineTelemetry, RuntimeDisableClearsSinkAndRecordsNothing) {
  TelemetryGuard guard;
  const ConvParams p = medium_conv();
  const ConvData d = make_data(p, 10);

  set_telemetry_enabled(false);
  TelemetrySnapshot snap;
  snap.workers.resize(3);  // stale data from an imagined earlier run
  snap.wall_seconds = 42;
  NdirectOptions opts;
  opts.threads = 2;
  opts.telemetry = &snap;
  (void)ndirect_conv(d.input, d.filter, p, opts);
  // A disabled run must not leave stale telemetry behind.
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.wall_seconds, 0.0);
}

TEST(EngineTelemetry, FilterCacheHitCounted) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  const ConvParams p = medium_conv();
  const ConvData d = make_data(p, 11);

  TelemetrySnapshot snap;
  NdirectOptions opts;
  opts.threads = 2;
  opts.cache_packed_filter = true;
  opts.telemetry = &snap;
  const NdirectConv conv(p, opts);
  (void)conv.run(d.input, d.filter);
  EXPECT_EQ(snap.total(Counter::kCacheHits), 0u);  // cold pack
  (void)conv.run(d.input, d.filter);
  EXPECT_EQ(snap.total(Counter::kCacheHits), 1u);  // warm hit
}

// ----------------------------------------------------------------------
// Per-instance scheduler attribution
// ----------------------------------------------------------------------

TEST(SchedulerTelemetry, PerInstanceStealEventsAndClasses) {
  // Worker 1 owns no tiles on a 1x1 grid: every claim it makes is a
  // distance-0 alias steal of worker 0's seed.
  TileScheduler sched(8, 1, 1, 1, /*workers=*/2, /*stealing=*/true);
  TileScheduler idle(8, 1, 1, 1, 2, true);
  int row = 0, col = 0;
  std::uint64_t claimed = 0;
  while (sched.claim(1, &row, &col)) ++claimed;
  EXPECT_EQ(claimed, 8u);
  EXPECT_EQ(sched.worker_executed(1), 8u);
  EXPECT_EQ(sched.worker_steals(1, StealClass::kLocal), 8u);
  EXPECT_EQ(sched.worker_steals(1, StealClass::kNeighbour), 0u);
  EXPECT_EQ(sched.worker_steals(1, StealClass::kGlobal), 0u);
  EXPECT_EQ(sched.steal_events(), 8u);
  // Attribution is per instance: the untouched scheduler saw nothing
  // (the process-global scheduler_steal_events() would not tell these
  // two apart).
  EXPECT_EQ(idle.steal_events(), 0u);

  const SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.steals, 8u);
  EXPECT_EQ(stats.local_steals, 8u);
  EXPECT_EQ(stats.neighbour_steals + stats.global_steals, 0u);
}

TEST(SchedulerTelemetry, StealClassesPartitionTheStealCount) {
  // One worker drains a 2x2-partitioned grid: its own seed first, then
  // pass-1 (same row) and pass-2 (Manhattan) victims.
  TileScheduler sched(6, 6, 2, 2, 4, true);
  int row = 0, col = 0;
  while (sched.claim(0, &row, &col)) {
  }
  const SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.tiles, 36u);
  EXPECT_GT(stats.steals, 0u);
  EXPECT_EQ(stats.local_steals + stats.neighbour_steals +
                stats.global_steals,
            stats.steals);
  std::uint64_t by_class = 0;
  for (int c = 0; c < kStealClassCount; ++c) {
    by_class += sched.worker_steals(0, static_cast<StealClass>(c));
  }
  EXPECT_EQ(by_class, stats.steals);
}

// ----------------------------------------------------------------------
// Trace session
// ----------------------------------------------------------------------

/// Per-tid LIFO check over the session's (ts-sorted) events: every 'E'
/// closes the innermost open 'B' of the same name on the same lane, and
/// no lane ends with an open span.
void expect_balanced(const std::vector<TraceEvent>& events) {
  std::map<std::uint32_t, std::vector<std::string>> open;
  std::uint64_t last_ts = 0;
  for (const TraceEvent& e : events) {
    ASSERT_NE(e.name, nullptr);
    EXPECT_GE(e.ts_ns, last_ts) << "events not sorted by timestamp";
    last_ts = e.ts_ns;
    if (e.ph == 'B') {
      open[e.tid].emplace_back(e.name);
    } else if (e.ph == 'E') {
      auto& stack = open[e.tid];
      ASSERT_FALSE(stack.empty())
          << "'E' " << e.name << " with no open span on tid " << e.tid;
      EXPECT_EQ(stack.back(), e.name);
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

TEST(Trace, ConvRunProducesBalancedSortedEvents) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  TraceGuard guard;
  const ConvParams p = medium_conv();
  const ConvData d = make_data(p, 12);
  ThreadPool pool(4);

  TraceSession& tr = TraceSession::global();
  tr.start(std::size_t{1} << 14);
  NdirectOptions opts;
  opts.pool = &pool;
  opts.threads = 4;
  (void)ndirect_conv(d.input, d.filter, p, opts);
  tr.stop();

  EXPECT_EQ(tr.dropped(), 0u);
  const std::vector<TraceEvent> events = tr.events();
  ASSERT_FALSE(events.empty());
  expect_balanced(events);

  int runs = 0, tiles = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "ndirect.run" && e.ph == 'B') ++runs;
    if (std::string(e.name) == "tile") {
      ++tiles;
      EXPECT_EQ(e.ph, 'X');
    }
  }
  EXPECT_EQ(runs, 1);
  EXPECT_GT(tiles, 0);
}

TEST(Trace, JsonIsChromeTraceShaped) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  TraceGuard guard;
  const ConvParams p = medium_conv();
  const ConvData d = make_data(p, 13);

  TraceSession& tr = TraceSession::global();
  tr.start(std::size_t{1} << 12);
  NdirectOptions opts;
  opts.threads = 2;
  (void)ndirect_conv(d.input, d.filter, p, opts);
  tr.stop();

  const std::string j = tr.json();
  EXPECT_EQ(j.front(), '{');
  ASSERT_GE(j.size(), 3u);
  EXPECT_EQ(j.substr(j.size() - 3), "]}\n");
  EXPECT_NE(j.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(j.find("\"ndirect.run\""), std::string::npos);
  // Lane labels ride along as Chrome metadata events.
  EXPECT_NE(j.find("thread_name"), std::string::npos);
  EXPECT_NE(j.find("\"ph\": \"M\""), std::string::npos);
}

TEST(Trace, FullRingCountsDropsInsteadOfBlocking) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  TraceGuard guard;
  TraceSession& tr = TraceSession::global();
  tr.start(8);
  EXPECT_EQ(tr.capacity(), 8u);
  for (int i = 0; i < 20; ++i) tr.complete("ev", 0, 1);
  tr.stop();
  EXPECT_EQ(tr.size(), 8u);
  EXPECT_EQ(tr.dropped(), 12u);
  EXPECT_EQ(tr.events().size(), 8u);
}

TEST(Trace, EdgeOrphanedSpansArePrunedFromExport) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  TraceGuard guard;
  TraceSession& tr = TraceSession::global();
  // A session started mid-span (over the admin plane's POST
  // /trace/start) sees the 'E' of a 'B' it never recorded; one
  // stopped mid-span records a 'B' whose 'E' never arrives. Both
  // unmatched halves must vanish from the export while matched pairs
  // — including pairs nested inside the dangling 'B' — survive.
  tr.start(64);
  tr.end("pre-session");    // its 'B' predates the session
  tr.begin("matched");
  tr.end("matched");
  tr.begin("cut-by-stop");  // its 'E' never arrives
  tr.begin("inner");
  tr.end("inner");
  tr.stop();

  const std::vector<TraceEvent> evs = tr.events();
  ASSERT_EQ(evs.size(), 4u);
  for (const TraceEvent& e : evs) {
    const std::string name = e.name;
    EXPECT_TRUE(name == "matched" || name == "inner") << name;
  }
  expect_balanced(evs);
}

TEST(Trace, OffSessionRecordsNothing) {
  TraceGuard guard;
  TraceSession& tr = TraceSession::global();
  tr.clear();
  EXPECT_FALSE(trace_on());
  tr.complete("ignored", 0, 1);
  tr.begin("ignored");
  tr.end("ignored");
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.events().size(), 0u);
}

// ----------------------------------------------------------------------
// Concurrent graph lanes
// ----------------------------------------------------------------------

std::unique_ptr<ConvOp> graph_conv(const TensorShape& s, int k,
                                   std::uint64_t seed) {
  ConvParams p{.N = s.N, .C = s.C, .H = s.H, .W = s.W, .K = k,
               .R = 3, .S = 3, .str = 1, .pad = 1};
  return std::make_unique<ConvOp>(p, ConvBackend::Ndirect, seed,
                                  /*bias=*/false);
}

TEST(Trace, ConcurrentGraphProducesPerRunnerLanes) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  TraceGuard guard;
  // Two independent conv branches merged by add: width 2, so the
  // concurrent executor spawns a second runner thread. The convs are
  // sized to take a few ms each, so runner 1 reliably claims the second
  // branch while runner 0 is still inside the first (and the pool
  // workers the convs dispatch onto contribute their own lanes too).
  Graph g(1, 32, 32, 32);
  const NodeId a = g.add(graph_conv(g.shape_of(0), 64, 1), {0});
  const NodeId b = g.add(graph_conv(g.shape_of(0), 64, 2), {0});
  g.add(std::make_unique<AddOp>(), {a, b});
  g.plan_concurrency();
  Tensor input = make_input_nchw(1, 32, 32, 32);
  fill_random(input, 3);

  TraceSession& tr = TraceSession::global();
  tr.start(std::size_t{1} << 14);
  GraphRunOptions conc;
  conc.runners = 2;
  // A single run can (rarely) finish both branches on one runner before
  // the other thread wakes; a few runs in the same session make at
  // least one multi-lane run a near-certainty without timing games.
  for (int rep = 0; rep < 3; ++rep) (void)g.run(input, conc);
  tr.stop();

  const std::vector<TraceEvent> events = tr.events();
  ASSERT_FALSE(events.empty());
  expect_balanced(events);
  std::set<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_GE(tids.size(), 2u) << "expected events from several lanes";

  bool has_runner_lane = false;
  for (const std::string& name : trace_lane_names()) {
    if (name.rfind("graph-runner-", 0) == 0) has_runner_lane = true;
  }
  EXPECT_TRUE(has_runner_lane);
}

// ----------------------------------------------------------------------
// ConvReport
// ----------------------------------------------------------------------

TEST(ConvReportTest, JoinsMeasuredAndPredicted) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  const ConvParams p = medium_conv();
  const ConvData d = make_data(p, 14);
  ThreadPool pool(4);

  // Synthetic spec: keeps the test off the host-probing microbenchmarks
  // and makes the prediction deterministic.
  PlatformSpec spec;
  spec.name = "synthetic";
  spec.cores = 4;
  spec.freq_ghz = 2.0;
  spec.peak_gflops = 100.0;
  spec.bandwidth_gibs = 10.0;
  spec.cache.l1d = 32 << 10;
  spec.cache.l2 = 1 << 20;
  spec.cache.l3 = 0;

  TelemetrySnapshot snap;
  NdirectOptions opts;
  opts.pool = &pool;
  opts.threads = 4;
  opts.telemetry = &snap;
  const NdirectConv conv(p, opts);
  (void)conv.run(d.input, d.filter);
  ASSERT_FALSE(snap.empty());

  const ConvReport report = build_conv_report(conv, snap, &spec);
  EXPECT_EQ(report.platform, "synthetic");
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.measured_gflops, 0.0);
  EXPECT_GT(report.predicted_gflops, 0.0);
  EXPECT_GT(report.model_ratio, 0.0);
  EXPECT_DOUBLE_EQ(report.peak_gflops, 100.0);
  EXPECT_GT(report.mapping_fai, 0.0);
  EXPECT_GE(report.best_fai, report.mapping_fai);
  EXPECT_EQ(report.tiles, snap.total(Counter::kTilesClaimed));
  EXPECT_EQ(report.workers.size(), snap.workers.size());
  for (const ConvReport::Worker& w : report.workers) {
    EXPECT_GE(w.busy_fraction, 0.0);
    EXPECT_LE(w.busy_fraction, 1.0);
  }

  const std::string text = report.to_text();
  EXPECT_NE(text.find("ConvReport"), std::string::npos);
  EXPECT_NE(text.find("predicted"), std::string::npos);
  EXPECT_NE(text.find("measured"), std::string::npos);

  const std::string j = report.to_json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"measured_gflops\""), std::string::npos);
  EXPECT_NE(j.find("\"predicted_gflops\""), std::string::npos);
  EXPECT_NE(j.find("\"per_worker\""), std::string::npos);
}

// ----------------------------------------------------------------------
// Generic-fallback counter (the issue's acceptance invariant)
// ----------------------------------------------------------------------

TEST(EngineTelemetry, ZeroGenericFallbackAcrossTable4) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  // Every Table 4 layer — shrunk to test size but keeping each layer's
  // (R, S, stride, padding) shape — must run entirely on registry
  // kernels: the policy table covers the main block, the W-tail block,
  // and every ragged edge tile, so the generic runtime-loop kernel is
  // never invoked.
  ThreadPool pool(2);
  for (const ConvLayer& layer : table4_layers(1)) {
    ConvParams p = layer.params;
    p.C = std::min(p.C, 32);
    p.K = std::min(p.K, 32);
    p.H = std::min(p.H, 28);
    p.W = std::min(p.W, 28);
    const ConvData d = make_data(p, 77);
    TelemetrySnapshot snap;
    NdirectOptions opts;
    opts.pool = &pool;
    opts.threads = 2;
    opts.telemetry = &snap;
    (void)ndirect_conv(d.input, d.filter, p, opts);
    EXPECT_EQ(snap.total(Counter::kGenericFallback), 0u)
        << "layer " << layer.id << " (" << p.R << "x" << p.S << " str"
        << p.str << ") hit the generic kernel";
  }
}

TEST(EngineTelemetry, ForcedUnregisteredBlockCountsFallbacks) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  // Forcing a block outside the Eq. 3 feasible set drives every tile
  // through the generic path, and the counter must say so.
  const ConvParams p = medium_conv();
  const ConvData d = make_data(p, 78);
  TelemetrySnapshot snap;
  NdirectOptions opts;
  opts.force_rb = {20, 8};  // infeasible: no registry or runtime kernel
  opts.telemetry = &snap;
  (void)ndirect_conv(d.input, d.filter, p, opts);
  EXPECT_GT(snap.total(Counter::kGenericFallback), 0u);
}

}  // namespace
}  // namespace ndirect
