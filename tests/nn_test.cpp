// Tests for the graph executor, the operators, the model builders and
// the BN-folding optimization.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/models.h"
#include "nn/optimize.h"
#include "tensor/compare.h"
#include "tensor/rng.h"

namespace ndirect {
namespace {

Tensor random_input(int N, int C, int H, int W, std::uint64_t seed) {
  Tensor t = make_input_nchw(N, C, H, W);
  fill_random(t, seed);
  return t;
}

// ----------------------------------------------------------------------
// Individual ops
// ----------------------------------------------------------------------

TEST(Ops, ReluClampsNegatives) {
  Graph g(1, 2, 2, 2);
  g.add(std::make_unique<ReluOp>(), {0});
  Tensor in = make_input_nchw(1, 2, 2, 2);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(i) - 4.0f;
  }
  const Tensor out = g.run(in);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], std::max(0.0f, in[i]));
  }
}

TEST(Ops, BatchNormAppliesPerChannelAffine) {
  BatchNormOp bn(3, 7);
  Tensor in = random_input(2, 3, 4, 4, 1);
  const Tensor out = bn.forward({&in});
  for (int n = 0; n < 2; ++n)
    for (int c = 0; c < 3; ++c)
      for (int h = 0; h < 4; ++h)
        for (int w = 0; w < 4; ++w) {
          const float expect =
              bn.scale()[static_cast<std::size_t>(c)] * in.at4(n, c, h, w) +
              bn.shift()[static_cast<std::size_t>(c)];
          ASSERT_NEAR(out.at4(n, c, h, w), expect, 1e-6);
        }
}

TEST(Ops, MaxPoolKnownAnswer) {
  MaxPoolOp pool(2, 2, 0);
  Tensor in = make_input_nchw(1, 1, 4, 4);
  for (std::size_t i = 0; i < 16; ++i) in[i] = static_cast<float>(i);
  const Tensor out = pool.forward({&in});
  ASSERT_EQ(out.element_count(), 4);
  EXPECT_EQ(out[0], 5.0f);
  EXPECT_EQ(out[1], 7.0f);
  EXPECT_EQ(out[2], 13.0f);
  EXPECT_EQ(out[3], 15.0f);
}

TEST(Ops, MaxPoolPaddingNeverWins) {
  // All-negative input with padding: zeros must NOT leak into the max.
  MaxPoolOp pool(3, 2, 1);
  Tensor in = make_input_nchw(1, 1, 4, 4);
  in.fill(-5.0f);
  const Tensor out = pool.forward({&in});
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], -5.0f);
}

TEST(Ops, GlobalAvgPoolAverages) {
  GlobalAvgPoolOp pool;
  Tensor in = make_input_nchw(1, 2, 3, 3);
  for (std::size_t i = 0; i < 9; ++i) in[i] = 2.0f;        // channel 0
  for (std::size_t i = 9; i < 18; ++i) in[i] = -4.0f;      // channel 1
  const Tensor out = pool.forward({&in});
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], -4.0f);
}

TEST(Ops, AddIsElementwise) {
  AddOp add;
  Tensor a = random_input(1, 2, 3, 3, 2);
  Tensor b = random_input(1, 2, 3, 3, 3);
  const Tensor out = add.forward({&a, &b});
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], a[i] + b[i]);
  }
}

TEST(Ops, SoftmaxIsANormalizedDistribution) {
  SoftmaxOp sm;
  Tensor in({2, 10, 1, 1}, Layout::NCHW);
  fill_random(in, 4);
  const Tensor out = sm.forward({&in});
  for (int n = 0; n < 2; ++n) {
    double sum = 0;
    for (int i = 0; i < 10; ++i) {
      const float v = out[static_cast<std::size_t>(n * 10 + i)];
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, FcMatchesManualDotProduct) {
  FcOp fc(6, 3, 11);
  Tensor in({1, 6, 1, 1}, Layout::NCHW);
  fill_random(in, 5);
  const Tensor out = fc.forward({&in});
  ASSERT_EQ(out.element_count(), 3);
  // Verify against an independently computed y = Wx + b using the op's
  // own deterministic construction (re-run through a second instance).
  FcOp fc2(6, 3, 11);
  const Tensor out2 = fc2.forward({&in});
  EXPECT_TRUE(allclose(out, out2, 0.0, 0.0));
}

TEST(Ops, ShapeMismatchesThrow) {
  Graph g(1, 3, 8, 8);
  const ConvParams wrong{.N = 1, .C = 4, .H = 8, .W = 8, .K = 8,
                         .R = 3, .S = 3, .str = 1, .pad = 1};
  EXPECT_THROW(g.add(std::make_unique<ConvOp>(wrong, ConvBackend::Naive,
                                              1, false),
                     {0}),
               std::invalid_argument);
  EXPECT_THROW(g.add(std::make_unique<AddOp>(), {0}),
               std::invalid_argument);  // wrong arity
}

// ----------------------------------------------------------------------
// Conv backends agree end-to-end
// ----------------------------------------------------------------------

TEST(ConvBackends, AllBackendsAgreeOnASmallNet) {
  ModelOptions base;
  base.channel_divisor = 16;
  base.image_size = 32;
  base.backend = ConvBackend::Naive;
  auto reference_net = build_resnet50(1, base);
  const Tensor input = random_input(1, 3, 32, 32, 9);
  const Tensor ref = reference_net->run(input);

  for (ConvBackend backend : {ConvBackend::Ndirect, ConvBackend::Im2colGemm,
                              ConvBackend::Tuned}) {
    ModelOptions opts = base;
    opts.backend = backend;
    auto net = build_resnet50(1, opts);
    const Tensor out = net->run(input);
    EXPECT_TRUE(allclose(out, ref, 1e-3, 1e-3))
        << conv_backend_name(backend) << " "
        << compare_tensors(out, ref).to_string();
  }
}

TEST(ConvBackends, BackendSwapInPlaceKeepsWeights) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  opts.backend = ConvBackend::Ndirect;
  auto net = build_vgg16(1, opts);
  const Tensor input = random_input(1, 3, 32, 32, 10);
  const Tensor out_nd = net->run(input);
  for (ConvOp* conv : net->conv_ops()) {
    conv->set_backend(ConvBackend::Im2colGemm);
  }
  const Tensor out_gemm = net->run(input);
  EXPECT_TRUE(allclose(out_nd, out_gemm, 1e-3, 1e-3));
}

// ----------------------------------------------------------------------
// Model builders
// ----------------------------------------------------------------------

TEST(Models, ResNet50TopologyAtFullScale) {
  ModelOptions opts;
  opts.backend = ConvBackend::Naive;  // never run, just built
  auto net = build_resnet50(1, opts);
  // 1 stem + 3*3 + (3+4+6+3 first blocks have 1 extra projection) + ...
  // ResNet-50 has 53 convolutions (49 in blocks + 4 projections counted).
  EXPECT_EQ(net->conv_ops().size(), 53u);
  const TensorShape out = net->output_shape();
  EXPECT_EQ(out.C, 1000);
  EXPECT_EQ(out.H, 1);
  // Conv flops of ResNet-50 at batch 1 are ~3.8 GFLOP x 2 (MACs*2 ~ 7.7e9).
  EXPECT_NEAR(static_cast<double>(net->conv_flops()), 7.7e9, 1.0e9);
}

TEST(Models, ResNet101HasMoreBlocks) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  auto net50 = build_resnet50(1, opts);
  auto net101 = build_resnet101(1, opts);
  EXPECT_EQ(net101->conv_ops().size(), 104u);  // 3+4+23+3 blocks
  EXPECT_GT(net101->node_count(), net50->node_count());
}

TEST(Models, Vgg16And19ConvCounts) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  EXPECT_EQ(build_vgg16(1, opts)->conv_ops().size(), 13u);
  EXPECT_EQ(build_vgg19(1, opts)->conv_ops().size(), 16u);
}

TEST(Models, MobileNetUsesDepthwiseSeparableBlocks) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 64;
  auto net = build_mobilenet(1, opts);
  // 1 stem conv + 13 pointwise convs; 13 depthwise ops counted via
  // profiling keys.
  EXPECT_EQ(net->conv_ops().size(), 14u);
  PhaseTimer timer;
  const Tensor out =
      net->run_profiled(random_input(1, 3, 64, 64, 14), timer);
  EXPECT_GT(timer.seconds("dwconv"), 0.0);
  EXPECT_EQ(net->output_shape().C, 1000);
  // Output is a softmax distribution.
  double sum = 0;
  for (int c = 0; c < 1000; ++c) sum += out[static_cast<std::size_t>(c)];
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(Models, MobileNetBackendsAgree) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  opts.backend = ConvBackend::Naive;
  auto ref_net = build_mobilenet(1, opts);
  const Tensor input = random_input(1, 3, 32, 32, 15);
  const Tensor ref = ref_net->run(input);
  opts.backend = ConvBackend::Ndirect;
  auto nd_net = build_mobilenet(1, opts);
  const Tensor out = nd_net->run(input);
  EXPECT_TRUE(allclose(out, ref, 1e-3, 1e-3));
}

TEST(Models, BuildByName) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  for (const char* name :
       {"ResNet-50", "ResNet-101", "VGG-16", "VGG-19", "MobileNet"}) {
    auto net = build_model(name, 1, opts);
    EXPECT_EQ(net->output_shape().C, 1000) << name;
  }
  EXPECT_THROW(build_model("AlexNet", 1, opts), std::invalid_argument);
}

TEST(Models, RunProfiledAccountsConvTime) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  auto net = build_resnet50(1, opts);
  PhaseTimer timer;
  (void)net->run_profiled(random_input(1, 3, 32, 32, 11), timer);
  EXPECT_GT(timer.seconds("conv"), 0.0);
  EXPECT_GT(timer.seconds("relu"), 0.0);
  EXPECT_GT(timer.seconds("batchnorm"), 0.0);
}

// ----------------------------------------------------------------------
// BatchNorm folding (the fusion extension)
// ----------------------------------------------------------------------

TEST(FoldBatchNorm, PreservesResNetOutputs) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  auto net = build_resnet50(1, opts);
  const Tensor input = random_input(1, 3, 32, 32, 12);
  const Tensor before = net->run(input);
  const int folded = fold_batchnorm(*net);
  EXPECT_EQ(folded, 53);  // every conv in ResNet-50 is followed by BN
  const Tensor after = net->run(input);
  EXPECT_TRUE(allclose(before, after, 1e-3, 1e-3))
      << compare_tensors(before, after).to_string();
}

TEST(FoldBatchNorm, FoldingSpeedsUpOrMatchesNodeWork) {
  // After folding, a profiled run spends zero time in batchnorm.
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  auto net = build_resnet50(1, opts);
  fold_batchnorm(*net);
  PhaseTimer timer;
  (void)net->run_profiled(random_input(1, 3, 32, 32, 13), timer);
  EXPECT_EQ(timer.seconds("batchnorm"), 0.0);
  EXPECT_GT(timer.seconds("identity"), 0.0);
}

TEST(FoldBatchNorm, VggHasNothingToFold) {
  ModelOptions opts;
  opts.channel_divisor = 16;
  opts.image_size = 32;
  auto net = build_vgg16(1, opts);
  EXPECT_EQ(fold_batchnorm(*net), 0);
}

}  // namespace
}  // namespace ndirect
