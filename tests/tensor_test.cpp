// Tests for tensors, conv parameters, and layout transforms.
#include <gtest/gtest.h>

#include "tensor/compare.h"
#include "tensor/conv_params.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tensor/transforms.h"

namespace ndirect {
namespace {

TEST(ConvParams, OutputShapeBasic) {
  // ResNet-50 layer 1: 224x224, 7x7, stride 2, pad 3 -> 112x112.
  const ConvParams p{.N = 1, .C = 3, .H = 224, .W = 224, .K = 64,
                     .R = 7, .S = 7, .str = 2, .pad = 3};
  EXPECT_EQ(p.P(), 112);
  EXPECT_EQ(p.Q(), 112);
  EXPECT_TRUE(p.valid());
}

TEST(ConvParams, OutputShapeUnpaddedStride2) {
  // ResNet 1x1 stride-2 projection: 56 -> 28.
  const ConvParams p{.N = 1, .C = 256, .H = 56, .W = 56, .K = 512,
                     .R = 1, .S = 1, .str = 2, .pad = 0};
  EXPECT_EQ(p.P(), 28);
  EXPECT_EQ(p.Q(), 28);
}

TEST(ConvParams, FlopCount) {
  const ConvParams p{.N = 2, .C = 3, .H = 8, .W = 8, .K = 4,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  // 2 * N*K*P*Q*C*R*S = 2 * 2*4*8*8*3*3*3
  EXPECT_EQ(p.flops(), 2LL * 2 * 4 * 8 * 8 * 3 * 3 * 3);
}

TEST(ConvParams, InvalidWhenKernelExceedsPaddedInput) {
  ConvParams p{.N = 1, .C = 1, .H = 2, .W = 2, .K = 1,
               .R = 5, .S = 5, .str = 1, .pad = 0};
  EXPECT_FALSE(p.valid());
  p.pad = 2;  // padded input is 6x6 >= 5x5
  EXPECT_TRUE(p.valid());
}

TEST(Tensor, ShapeAndIndexing) {
  Tensor t({2, 3, 4, 5}, Layout::NCHW);
  EXPECT_EQ(t.rank(), 4);
  EXPECT_EQ(t.element_count(), 120);
  t.fill_zero();
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[119], 9.0f);  // last element
  EXPECT_EQ(t.at4(0, 0, 0, 0), 0.0f);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t({4, 4}, Layout::Matrix);
  fill_pattern(t);
  Tensor c = t.clone();
  c[0] += 1.0f;
  EXPECT_NE(t[0], c[0]);
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_EQ(t[i], c[i]);
}

TEST(Tensor, FillRandomIsDeterministic) {
  Tensor a({100}, Layout::Linear), b({100}, Layout::Linear);
  fill_random(a, 42);
  fill_random(b, 42);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  fill_random(b, 43);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_diff |= a[i] != b[i];
  EXPECT_TRUE(any_diff);
}

TEST(Compare, DetectsMismatch) {
  Tensor a({10}, Layout::Linear), b({10}, Layout::Linear);
  a.fill(1.0f);
  b.fill(1.0f);
  EXPECT_TRUE(allclose(a, b));
  b[7] = 2.0f;
  const CompareResult r = compare_tensors(a, b);
  EXPECT_EQ(r.worst_index, 7u);
  EXPECT_FALSE(allclose(a, b));
}

TEST(Compare, ShapeMismatchIsNotClose) {
  Tensor a({10}, Layout::Linear), b({11}, Layout::Linear);
  a.fill_zero();
  b.fill_zero();
  EXPECT_FALSE(allclose(a, b));
}

TEST(Transforms, NchwNhwcRoundTrip) {
  Tensor t = make_input_nchw(2, 3, 5, 7);
  fill_random(t, 1);
  const Tensor back = nhwc_to_nchw(nchw_to_nhwc(t));
  EXPECT_TRUE(allclose(t, back, 0.0, 0.0));
}

TEST(Transforms, NhwcPlacesChannelsInnermost) {
  Tensor t = make_input_nchw(1, 2, 2, 2);
  fill_pattern(t);
  const Tensor nhwc = nchw_to_nhwc(t);
  EXPECT_EQ(nhwc.layout(), Layout::NHWC);
  EXPECT_EQ(nhwc.at4(0, 1, 0, 1), t.at4(0, 1, 1, 0));
}

TEST(Transforms, KcrsKrscRoundTrip) {
  Tensor f = make_filter_kcrs(6, 5, 3, 3);
  fill_random(f, 2);
  const Tensor back = krsc_to_kcrs(kcrs_to_krsc(f));
  EXPECT_TRUE(allclose(f, back, 0.0, 0.0));
}

TEST(Transforms, NchwcRoundTripWithRaggedChannels) {
  Tensor t = make_input_nchw(2, 7, 3, 4);  // 7 % 4 != 0
  fill_random(t, 3);
  const Tensor blocked = nchw_to_nchwc(t, 4);
  EXPECT_EQ(blocked.dim(1), 2);  // ceil(7/4)
  EXPECT_EQ(blocked.dim(4), 4);
  const Tensor back = nchwc_to_nchw(blocked, 7);
  EXPECT_TRUE(allclose(t, back, 0.0, 0.0));
}

TEST(Transforms, NchwcPadLanesAreZero) {
  Tensor t = make_input_nchw(1, 5, 2, 2);
  t.fill(1.0f);
  const Tensor blocked = nchw_to_nchwc(t, 4);
  // Channels 5..7 of block 1 must be zero.
  const float* d = blocked.data();
  const std::int64_t HW = 2 * 2;
  for (std::int64_t hw = 0; hw < HW; ++hw) {
    for (int ci = 1; ci < 4; ++ci) {  // block 1, lanes 1..3 = channels 5..7
      EXPECT_EQ(d[(1 * HW + hw) * 4 + ci], 0.0f);
    }
  }
}

TEST(Transforms, KcrsckLayoutCorrect) {
  Tensor f = make_filter_kcrs(8, 4, 3, 3);
  fill_random(f, 4);
  const Tensor blocked = kcrs_to_kcrsck(f, 4, 4);
  EXPECT_EQ(blocked.dim(0), 2);  // K blocks
  EXPECT_EQ(blocked.dim(1), 1);  // C blocks
  // Spot-check: element (k=5, c=2, r=1, s=2) lives at
  // [kb=1][cb=0][r=1][s=2][ci=2][ki=1].
  const float* d = blocked.data();
  const std::int64_t idx =
      ((((1 * 1 + 0) * 3 + 1) * 3 + 2) * 4 + 2) * 4 + 1;
  EXPECT_EQ(d[idx], f.at4(5, 2, 1, 2));
}

TEST(Transforms, KPackedMatchesDefinition) {
  const int K = 10, C = 3, R = 3, S = 3, Vk = 8;
  Tensor f = make_filter_kcrs(K, C, R, S);
  fill_random(f, 5);
  const Tensor packed = pack_filter_kpacked(f, Vk);
  EXPECT_EQ(packed.dim(0), 2);  // ceil(10/8)
  const float* d = packed.data();
  for (int k = 0; k < K; ++k)
    for (int c = 0; c < C; ++c)
      for (int r = 0; r < R; ++r)
        for (int s = 0; s < S; ++s) {
          const std::int64_t idx =
              ((((k / Vk) * C + c) * R + r) * S + s) * Vk + (k % Vk);
          ASSERT_EQ(d[idx], f.at4(k, c, r, s));
        }
  // Padded K lanes are zero.
  for (int c = 0; c < C; ++c)
    for (int r = 0; r < R; ++r)
      for (int s = 0; s < S; ++s)
        for (int ki = K % Vk; ki < Vk; ++ki) {
          const std::int64_t idx =
              (((1 * C + c) * R + r) * S + s) * Vk + ki;
          ASSERT_EQ(d[idx], 0.0f);
        }
}

}  // namespace
}  // namespace ndirect
