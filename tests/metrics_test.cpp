// Metrics-plane tests: histogram bucket math, lock-free instruments,
// registry semantics, OpenMetrics exposition, the exit-hook chain and
// the background exporter (DESIGN.md §16).
//
// Everything here runs against the process-global registry, so each
// test uses metric names prefixed with its own test name — get-or-
// create semantics make cross-test interference a silent corruption
// vector otherwise. The multi-writer tests are in the `threading`
// ctest label and must stay TSan-clean.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/shutdown.h"
#include "runtime/telemetry.h"
#include "runtime/trace.h"

namespace ndirect {
namespace {

using Layout = HistogramLayout;

// ----------------------------------------------------------------------
// HistogramLayout: bucket boundary math
// ----------------------------------------------------------------------

TEST(HistogramLayoutTest, UnitBucketsBelowSubBucketCount) {
  for (std::uint64_t v = 0; v < Layout::kSubBuckets; ++v) {
    EXPECT_EQ(Layout::bucket_of(v), static_cast<int>(v));
    EXPECT_EQ(Layout::lower_bound(static_cast<int>(v)), v);
    EXPECT_EQ(Layout::upper_bound(static_cast<int>(v)), v);
  }
}

TEST(HistogramLayoutTest, BucketsAreContiguousAndOrdered) {
  // Every bucket's lower bound is exactly the previous bucket's upper
  // bound + 1: no gaps, no overlaps, across the whole range.
  for (int b = 1; b < Layout::kOverflowBucket; ++b) {
    EXPECT_EQ(Layout::lower_bound(b), Layout::upper_bound(b - 1) + 1)
        << "gap/overlap at bucket " << b;
    EXPECT_GE(Layout::upper_bound(b), Layout::lower_bound(b));
  }
}

TEST(HistogramLayoutTest, BoundsRoundTripThroughBucketOf) {
  // bucket_of(lower_bound(b)) == bucket_of(upper_bound(b)) == b, and
  // the values just outside land in the neighbours.
  for (int b = 0; b < Layout::kOverflowBucket; ++b) {
    const std::uint64_t lo = Layout::lower_bound(b);
    const std::uint64_t hi = Layout::upper_bound(b);
    EXPECT_EQ(Layout::bucket_of(lo), b);
    EXPECT_EQ(Layout::bucket_of(hi), b);
    if (lo > 0) {
      EXPECT_EQ(Layout::bucket_of(lo - 1), b - 1);
    }
    EXPECT_EQ(Layout::bucket_of(hi + 1), b + 1);
  }
}

TEST(HistogramLayoutTest, RelativeBucketWidthIsBounded) {
  // Past the unit buckets, width / lower_bound <= 1 / kSubBuckets.
  for (int b = Layout::kSubBuckets + 1; b < Layout::kOverflowBucket;
       ++b) {
    const double lo = static_cast<double>(Layout::lower_bound(b));
    const double width =
        static_cast<double>(Layout::upper_bound(b) -
                            Layout::lower_bound(b) + 1);
    EXPECT_LE(width / lo, 1.0 / Layout::kSubBuckets + 1e-12)
        << "bucket " << b << " too wide";
  }
}

TEST(HistogramLayoutTest, OverflowSaturates) {
  const std::uint64_t top =
      Layout::lower_bound(Layout::kOverflowBucket);
  EXPECT_EQ(Layout::bucket_of(top - 1), Layout::kOverflowBucket - 1);
  EXPECT_EQ(Layout::bucket_of(top), Layout::kOverflowBucket);
  EXPECT_EQ(Layout::bucket_of(~std::uint64_t{0}),
            Layout::kOverflowBucket);
  EXPECT_EQ(Layout::upper_bound(Layout::kOverflowBucket),
            ~std::uint64_t{0});
}

// ----------------------------------------------------------------------
// HistogramCell / HistogramSnapshot
// ----------------------------------------------------------------------

TEST(HistogramCellTest, QuantilesExactToOneBucket) {
  HistogramCell cell;
  for (std::uint64_t v = 1; v <= 1000; ++v) cell.record(v);
  const HistogramSnapshot snap = cell.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 500'500u);
  for (const double q : {0.5, 0.95, 0.99}) {
    // The exact rank-th value, same rank definition as quantile().
    const std::uint64_t rank =
        static_cast<std::uint64_t>(q * 1000.0 + 0.9999);
    const std::uint64_t exact = rank;  // values are 1..1000
    const std::uint64_t got = snap.quantile(q);
    // Within the one bucket that holds the exact value.
    EXPECT_EQ(got, Layout::upper_bound(Layout::bucket_of(exact)))
        << "q=" << q;
    EXPECT_GE(got, exact);
  }
  EXPECT_EQ(snap.quantile(0.0), Layout::upper_bound(Layout::bucket_of(1)));
  EXPECT_EQ(snap.quantile(1.0),
            Layout::upper_bound(Layout::bucket_of(1000)));
}

TEST(HistogramCellTest, EmptyQuantileIsZero) {
  EXPECT_EQ(HistogramCell().snapshot().quantile(0.5), 0u);
}

TEST(HistogramCellTest, OverflowCountsAreConservedAndQueryable) {
  HistogramCell cell;
  cell.record(1);
  cell.record(~std::uint64_t{0});  // overflow bucket (sum saturates by
                                   // wrapping; count must not)
  const HistogramSnapshot snap = cell.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.counts[Layout::kOverflowBucket], 1u);
  EXPECT_EQ(snap.quantile(1.0), ~std::uint64_t{0});
}

TEST(HistogramCellTest, ConcurrentWritersConserveEveryCount) {
  // 8 writers x 50k records into ONE cell: total count, per-bucket
  // sums and the value sum must all come out exact — the lock-free
  // claim is precisely this conservation.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  HistogramCell cell;
  std::atomic<std::uint64_t> expect_sum{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&cell, &expect_sum, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      std::uint64_t local = 0;
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t v = rng() % 1'000'000;
        cell.record(v);
        local += v;
      }
      expect_sum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (std::thread& w : writers) w.join();
  const HistogramSnapshot snap = cell.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.sum, expect_sum.load());
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(HistogramSnapshotTest, MergeMatchesSingleWriterGroundTruth) {
  // Per-worker cells merged after the fact == one cell that saw
  // everything: same counts, same sum, same quantiles.
  constexpr int kWorkers = 4;
  HistogramCell all;
  HistogramCell per[kWorkers];
  std::mt19937_64 rng(42);
  for (int i = 0; i < 40'000; ++i) {
    const std::uint64_t v = rng() % 10'000'000;
    all.record(v);
    per[i % kWorkers].record(v);
  }
  HistogramSnapshot merged;
  for (const HistogramCell& c : per) merged.merge(c.snapshot());
  const HistogramSnapshot truth = all.snapshot();
  EXPECT_EQ(merged.count, truth.count);
  EXPECT_EQ(merged.sum, truth.sum);
  for (int b = 0; b < Layout::kBuckets; ++b)
    ASSERT_EQ(merged.counts[b], truth.counts[b]) << "bucket " << b;
  for (const double q : {0.01, 0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(merged.quantile(q), truth.quantile(q)) << "q=" << q;
}

// ----------------------------------------------------------------------
// MetricsRegistry
// ----------------------------------------------------------------------

TEST(MetricsRegistryTest, GetOrCreateReturnsStableIdentity) {
  MetricsRegistry reg;
  CounterCell* a = reg.counter("reqs", {{"server", "a"}});
  CounterCell* b = reg.counter("reqs", {{"server", "b"}});
  EXPECT_NE(a, b);  // different label sets = different instruments
  EXPECT_EQ(reg.counter("reqs", {{"server", "a"}}), a);
  EXPECT_EQ(reg.size(), 2u);
  a->inc(3);
  EXPECT_EQ(a->value(), 3u);
  EXPECT_EQ(b->value(), 0u);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry reg;
  (void)reg.counter("thing");
  EXPECT_THROW((void)reg.gauge("thing"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("thing"), std::logic_error);
}

TEST(MetricsRegistryTest, ResetValuesKeepsHandlesValid) {
  MetricsRegistry reg;
  CounterCell* c = reg.counter("c");
  GaugeCell* g = reg.gauge("g");
  HistogramCell* h = reg.histogram("h");
  c->inc(5);
  g->set(-7);
  h->record(123);
  reg.reset_values();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->snapshot().count, 0u);
  EXPECT_EQ(reg.counter("c"), c);  // registration survived
}

// ----------------------------------------------------------------------
// OpenMetrics exposition
// ----------------------------------------------------------------------

TEST(ExpositionTest, FormatLabelsEscapes) {
  EXPECT_EQ(format_labels({}), "");
  EXPECT_EQ(format_labels({{"a", "x"}, {"b", "y"}}),
            "{a=\"x\",b=\"y\"}");
  EXPECT_EQ(format_labels({{"a", "q\"b\\c\nd"}}),
            "{a=\"q\\\"b\\\\c\\nd\"}");
}

TEST(ExpositionTest, TextRendersAllKindsAndTerminates) {
  MetricsRegistry reg;
  reg.counter("hits", {{"server", "a"}}, "hit count")->inc(7);
  reg.counter("hits", {{"server", "b"}})->inc(2);
  reg.gauge("depth", {}, "queue depth")->set(-3);
  HistogramCell* h = reg.histogram("lat_ns", {}, "latency");
  h->record(5);
  h->record(100);
  const std::string text = reg.text();

  // Family block: HELP/TYPE once per name, counters exported with the
  // _total suffix, every label set sampled.
  EXPECT_NE(text.find("# HELP hits hit count"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hits counter"), std::string::npos);
  EXPECT_NE(text.find("hits_total{server=\"a\"} 7"), std::string::npos);
  EXPECT_NE(text.find("hits_total{server=\"b\"} 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth -3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ns histogram"), std::string::npos);
  // Cumulative buckets: the le="+Inf" bucket equals _count.
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 2"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum 105"), std::string::npos);
  // Required terminator, exactly at the end.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(ExpositionTest, HistogramBucketsAreCumulativeNonDecreasing) {
  MetricsRegistry reg;
  HistogramCell* h = reg.histogram("d_ns");
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1000; ++i) h->record(rng() % 100'000);
  const std::string text = reg.text();
  std::istringstream in(text);
  std::string line;
  double prev = -1.0;
  int buckets = 0;
  while (std::getline(in, line)) {
    if (line.rfind("d_ns_bucket{", 0) != 0) continue;
    const double v = std::stod(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, prev) << "cumulative bucket series decreased: " << line;
    prev = v;
    ++buckets;
  }
  EXPECT_GT(buckets, 1);
  EXPECT_EQ(prev, 1000.0);  // +Inf bucket == count
}

// ----------------------------------------------------------------------
// Exit-hook chain (runtime/shutdown.h)
// ----------------------------------------------------------------------

TEST(ExitHooksTest, RunLifoAndOnlyOnce) {
  std::vector<int> order;
  const std::uint64_t t1 =
      register_exit_hook("one", [&order] { order.push_back(1); });
  const std::uint64_t t2 =
      register_exit_hook("two", [&order] { order.push_back(2); });
  run_exit_hooks();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));  // LIFO
  run_exit_hooks();                            // idempotent
  EXPECT_EQ(order.size(), 2u);
  unregister_exit_hook(t1);  // already-run tokens: no-op
  unregister_exit_hook(t2);
}

TEST(ExitHooksTest, UnregisteredHookNeverRuns) {
  bool ran = false;
  const std::uint64_t t =
      register_exit_hook("gone", [&ran] { ran = true; });
  unregister_exit_hook(t);
  run_exit_hooks();
  EXPECT_FALSE(ran);
}

TEST(ExitHooksTest, HooksRegisteredDuringRunStillExecute) {
  // A hook that registers another hook must not deadlock the chain,
  // and the new hook still runs in the same pass (the chain drains
  // until empty — nothing registered at exit time is silently lost).
  bool inner = false;
  register_exit_hook("outer", [&inner] {
    register_exit_hook("inner", [&inner] { inner = true; });
  });
  run_exit_hooks();
  EXPECT_TRUE(inner);
}

// ----------------------------------------------------------------------
// MetricsExporter
// ----------------------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(MetricsExporterTest, DumpNowWritesTheGlobalExposition) {
  MetricsRegistry::global()
      .counter("metrics_test_dump_marker")
      ->inc(41);
  const std::string path =
      testing::TempDir() + "metrics_test_dump.prom";
  MetricsExporter& exp = MetricsExporter::global();
  exp.start(path, /*interval_ms=*/3'600'000);  // no periodic firing
  ASSERT_TRUE(exp.running());
  const std::uint64_t before = exp.dump_count();
  ASSERT_TRUE(exp.dump_now());
  EXPECT_GT(exp.dump_count(), before);
  const std::string text = read_file(path);
  EXPECT_NE(text.find("metrics_test_dump_marker_total 41"),
            std::string::npos);
  EXPECT_NE(text.find("# EOF"), std::string::npos);
  exp.stop();
  EXPECT_FALSE(exp.running());
  exp.stop();  // idempotent
}

TEST(MetricsExporterTest, FlightRecordExportsTraceRingToo) {
  const std::string path =
      testing::TempDir() + "metrics_test_flight.prom";
  MetricsExporter& exp = MetricsExporter::global();
  exp.start(path, /*interval_ms=*/3'600'000);
  TraceSession& ts = TraceSession::global();
  ts.start(1024);
  ts.instant("metrics_test_flight_marker");
  exp.flight_record();
  ts.clear();
  exp.stop();
  EXPECT_NE(read_file(path).find("# EOF"), std::string::npos);
  const std::string trace = read_file(path + ".trace.json");
  EXPECT_NE(trace.find("metrics_test_flight_marker"),
            std::string::npos);
  std::remove((path + ".trace.json").c_str());
}

// ----------------------------------------------------------------------
// Engine telemetry re-export
// ----------------------------------------------------------------------

TEST(PublishMetricsTest, SnapshotTotalsLandInRegistryCounters) {
  TelemetrySnapshot snap;
  snap.workers.resize(2);
  snap.workers[0].v[static_cast<int>(Counter::kTilesClaimed)] = 3;
  snap.workers[1].v[static_cast<int>(Counter::kTilesClaimed)] = 4;
  CounterCell* cell = MetricsRegistry::global().counter(
      "ndirect_engine_tiles_claimed");
  const std::uint64_t before = cell->value();
  snap.publish_metrics();
  EXPECT_EQ(cell->value(), before + 7);
  snap.publish_metrics();  // deltas add, they do not overwrite
  EXPECT_EQ(cell->value(), before + 14);
  TelemetrySnapshot empty;
  empty.publish_metrics();  // no workers: no-op, no crash
  EXPECT_EQ(cell->value(), before + 14);
}

}  // namespace
}  // namespace ndirect
