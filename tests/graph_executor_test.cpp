// Concurrency tests for the scheduler-aware graph executor: bitwise
// determinism across sequential/concurrent execution, dependency-safe
// completion ordering, thread-safe profiling, and concurrent
// filter-cache sharing. Runs under the `threading` ctest label so the
// TSan tier (scripts/build-tsan.sh) race-checks every path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/ndirect.h"
#include "core/threading.h"
#include "nn/graph.h"
#include "nn/models.h"
#include "runtime/thread_pool.h"
#include "tensor/rng.h"

#include "graph_gen.h"

using namespace ndirect;

namespace {

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what;
}

/// A split-merge block shaped like a ResNet projection bottleneck: two
/// conv branches off one node, merged by add, plus a concat side exit.
std::unique_ptr<Graph> build_split_block(int batch) {
  auto g = std::make_unique<Graph>(batch, 8, 14, 14);
  const TensorShape in = g->shape_of(0);
  const NodeId a1 = g->add(testgen::make_conv(in, 16, 3, 1, 11), {0});
  const NodeId a2 =
      g->add(testgen::make_conv(g->shape_of(a1), 16, 3, 1, 12), {a1});
  const NodeId b1 = g->add(testgen::make_conv(in, 16, 1, 1, 13), {0});
  const NodeId sum = g->add(std::make_unique<AddOp>(), {a2, b1});
  const NodeId act = g->add(std::make_unique<ReluOp>(), {sum});
  const NodeId cat = g->add(std::make_unique<ConcatOp>(), {act, b1});
  g->add(testgen::make_conv(g->shape_of(cat), 8, 1, 1, 14), {cat});
  return g;
}

Tensor input_for(const Graph& g, std::uint64_t seed) {
  const TensorShape& s = g.shape_of(0);
  Tensor t = make_input_nchw(s.N, s.C, s.H, s.W);
  fill_random(t, seed);
  return t;
}

}  // namespace

TEST(GraphExecutor, LevelsRespectTopology) {
  auto g = build_split_block(1);
  const auto levels = g->levels();
  ASSERT_GE(levels.size(), 2u);
  EXPECT_EQ(levels[0], std::vector<NodeId>{0});
  // Both branch heads depend only on the input: level 1, width 2.
  EXPECT_EQ(levels[1].size(), 2u);
  EXPECT_GE(g->max_width(), 2);
  // A node's level is strictly above all of its inputs' levels.
  std::vector<int> level_of(static_cast<std::size_t>(g->node_count()));
  for (std::size_t l = 0; l < levels.size(); ++l) {
    for (NodeId id : levels[l]) {
      level_of[static_cast<std::size_t>(id)] = static_cast<int>(l);
    }
  }
  for (NodeId id = 1; id < g->node_count(); ++id) {
    for (NodeId in : g->inputs_of(id)) {
      EXPECT_LT(level_of[static_cast<std::size_t>(in)],
                level_of[static_cast<std::size_t>(id)]);
    }
  }
}

TEST(GraphExecutor, SplitBlockConcurrentMatchesSequentialBitwise) {
  ThreadPool pool(4);
  auto g = build_split_block(2);
  g->set_conv_pool(&pool);
  g->plan_concurrency();
  const Tensor input = input_for(*g, 77);

  GraphRunOptions seq;
  seq.concurrent = false;
  const Tensor expected = g->run(input, seq);

  for (int rep = 0; rep < 5; ++rep) {
    GraphRunStats stats;
    GraphRunOptions conc;
    conc.stats = &stats;
    const Tensor got = g->run(input, conc);
    expect_bitwise_equal(expected, got, "concurrent rep");
    EXPECT_GE(stats.runners, 2);
    EXPECT_EQ(stats.completion_order.size(),
              static_cast<std::size_t>(g->node_count()) - 1);
  }
}

TEST(GraphExecutor, ResNetSplitPathsDeterministic) {
  // Real topology: downscaled ResNet-50 (projection-shortcut splits in
  // every stage). Concurrent execution must be bitwise-identical to
  // sequential, run after run.
  ThreadPool pool(4);
  ModelOptions mo;
  mo.channel_divisor = 8;
  mo.image_size = 32;
  auto g = build_resnet50(1, mo);
  g->set_conv_pool(&pool);
  g->plan_concurrency();
  EXPECT_GE(g->max_width(), 2);
  const Tensor input = input_for(*g, 5);

  GraphRunOptions seq;
  seq.concurrent = false;
  const Tensor expected = g->run(input, seq);
  for (int rep = 0; rep < 3; ++rep) {
    const Tensor got = g->run(input, {});
    expect_bitwise_equal(expected, got, "resnet rep");
  }
}

TEST(GraphExecutor, CompletionOrderRespectsDependencies) {
  ThreadPool pool(3);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto g = testgen::build_random_dag(seed);
    g->set_conv_pool(&pool);
    const Tensor input = input_for(*g, seed);
    GraphRunStats stats;
    GraphRunOptions opts;
    opts.stats = &stats;
    (void)g->run(input, opts);
    ASSERT_EQ(stats.completion_order.size(),
              static_cast<std::size_t>(g->node_count()) - 1);
    std::vector<int> pos(static_cast<std::size_t>(g->node_count()), -1);
    for (std::size_t i = 0; i < stats.completion_order.size(); ++i) {
      pos[static_cast<std::size_t>(stats.completion_order[i])] =
          static_cast<int>(i);
    }
    for (NodeId id = 1; id < g->node_count(); ++id) {
      ASSERT_GE(pos[static_cast<std::size_t>(id)], 0);
      for (NodeId in : g->inputs_of(id)) {
        if (in == 0) continue;  // the input node never "completes"
        EXPECT_LT(pos[static_cast<std::size_t>(in)],
                  pos[static_cast<std::size_t>(id)])
            << "node " << id << " completed before its input " << in
            << " (seed " << seed << ")";
      }
    }
  }
}

TEST(GraphExecutor, ProfiledTotalsConsistentUnderOverlap) {
  ThreadPool pool(4);
  auto g = build_split_block(1);
  g->set_conv_pool(&pool);
  const Tensor input = input_for(*g, 9);

  // Expected per-op-name node counts from the topology.
  std::map<std::string, long> node_counts;
  for (NodeId id = 1; id < g->node_count(); ++id) {
    ++node_counts[g->op_of(id)->name()];
  }

  PhaseTimer timer;
  GraphRunStats stats;
  GraphRunOptions opts;
  opts.timer = &timer;
  opts.stats = &stats;
  const Tensor out = g->run(input, opts);
  EXPECT_GT(out.size(), 0u);
  EXPECT_GE(stats.runners, 2);
  for (const auto& [name, count] : node_counts) {
    EXPECT_EQ(timer.count(name), count) << name;
    EXPECT_GE(timer.seconds(name), 0.0) << name;
  }
  EXPECT_GT(timer.total(), 0.0);
}

TEST(GraphExecutor, FilterCacheSharedByConcurrentBranches) {
  // Two engine copies share one FilterCache (the two-branches-one-
  // filter case: e.g. weight-tied siblings). Concurrent prepare+run
  // must serve ONE packed copy to both and identical outputs.
  ConvParams p{.N = 1, .C = 8, .H = 14, .W = 14, .K = 16, .R = 3,
               .S = 3, .str = 1, .pad = 1};
  ThreadPool pool(4);
  NdirectOptions o;
  o.cache_packed_filter = true;
  o.pool = &pool;
  const NdirectConv a(p, o);
  const NdirectConv b = a;  // shares a's cache

  Tensor input = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor filter = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(input, 21);
  fill_random(filter, 22);

  const float* packed_a = nullptr;
  const float* packed_b = nullptr;
  Tensor out_a, out_b;
  std::thread ta([&] {
    packed_a = a.prepare_filter(filter.data());
    out_a = a.run(input, filter);
  });
  std::thread tb([&] {
    packed_b = b.prepare_filter(filter.data());
    out_b = b.run(input, filter);
  });
  ta.join();
  tb.join();

  ASSERT_NE(packed_a, nullptr);
  EXPECT_EQ(packed_a, packed_b) << "second branch must hit, not re-pack";
  EXPECT_TRUE(a.filter_cache_warm(filter.data()));
  EXPECT_TRUE(b.filter_cache_warm(filter.data()));
  expect_bitwise_equal(out_a, out_b, "shared-cache outputs");
}

TEST(GraphExecutor, WorkerBudgetAndStealersNeverChangeResults) {
  // Seeding a sub-rectangle of the grid plus pure stealers is a pure
  // scheduling choice: outputs stay bitwise-identical to the full-pool
  // plan (the property plan_concurrency relies on).
  ConvParams p{.N = 1, .C = 6, .H = 13, .W = 13, .K = 10, .R = 3,
               .S = 3, .str = 1, .pad = 1};
  ThreadPool pool(4);
  Tensor input = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor filter = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(input, 31);
  fill_random(filter, 32);

  NdirectOptions full;
  full.pool = &pool;
  const Tensor expected = NdirectConv(p, full).run(input, filter);

  for (int budget = 1; budget <= 3; ++budget) {
    NdirectOptions sub = full;
    sub.threads = budget;
    sub.extra_stealers = static_cast<int>(pool.size()) - budget;
    const Tensor got = NdirectConv(p, sub).run(input, filter);
    expect_bitwise_equal(expected, got, "budgeted conv");
  }
}

TEST(GraphExecutor, PartitionWorkersProportionalAndTotal) {
  const std::vector<int> even = partition_workers(8, {1.0, 1.0});
  EXPECT_EQ(even, (std::vector<int>{4, 4}));
  const std::vector<int> skew = partition_workers(8, {3.0, 1.0});
  EXPECT_EQ(skew[0] + skew[1], 8);
  EXPECT_GT(skew[0], skew[1]);
  // Every branch gets at least one worker even when outnumbered.
  const std::vector<int> tight = partition_workers(2, {1.0, 1.0, 1.0});
  EXPECT_EQ(tight, (std::vector<int>{1, 1, 1}));
  const std::vector<int> zero = partition_workers(4, {0.0, 0.0});
  EXPECT_EQ(zero[0] + zero[1], 4);
}

TEST(GraphExecutor, ExceptionInBranchPropagates) {
  struct ThrowingOp final : Op {
    const char* name() const override { return "throwing"; }
    TensorShape infer(const std::vector<TensorShape>& in) const override {
      return in.at(0);
    }
    Tensor forward(const std::vector<const Tensor*>&) const override {
      throw std::runtime_error("branch failed");
    }
  };
  auto g = std::make_unique<Graph>(1, 4, 8, 8);
  const TensorShape in = g->shape_of(0);
  const NodeId a = g->add(testgen::make_conv(in, 8, 3, 1, 3), {0});
  const NodeId b = g->add(std::make_unique<ThrowingOp>(), {0});
  const NodeId ga = g->add(std::make_unique<GlobalAvgPoolOp>(), {a});
  const NodeId gb = g->add(std::make_unique<GlobalAvgPoolOp>(), {b});
  g->add(std::make_unique<ConcatOp>(), {ga, gb});
  const Tensor input = input_for(*g, 1);
  EXPECT_THROW((void)g->run(input, {}), std::runtime_error);
  // The graph stays usable after a failed run.
  GraphRunOptions seq;
  seq.concurrent = false;
  EXPECT_THROW((void)g->run(input, seq), std::runtime_error);
}

TEST(GraphExecutor, RandomDagsUnderOversubscribedPool) {
  // A handful of fuzz seeds under heavy oversubscription (pool threads
  // >> cores on CI) — primarily a TSan target; the full >= 100-seed
  // sweep lives in fuzz_test.
  const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
  ThreadPool pool(2 * hc + 1);
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    auto g = testgen::build_random_dag(seed);
    g->set_conv_pool(&pool);
    g->plan_concurrency();
    const Tensor input = input_for(*g, seed);
    GraphRunOptions seq;
    seq.concurrent = false;
    const Tensor expected = g->run(input, seq);
    const Tensor got = g->run(input, {});
    expect_bitwise_equal(expected, got, "oversubscribed dag");
  }
}
