// Shared convolution shape sweep used by every conv-correctness suite.
#pragma once

#include <ostream>
#include <vector>

#include "tensor/conv_params.h"

namespace ndirect {

inline std::ostream& operator<<(std::ostream& os, const ConvParams& p) {
  return os << p.to_string();
}

/// Small-but-adversarial shapes: every combination of ragged channel
/// counts, strides, pads, kernel sizes, and degenerate spatial dims that
/// the tiled kernels must survive, plus downscaled Table 4 layers.
inline std::vector<ConvParams> correctness_conv_shapes() {
  return {
      // 1x1 kernels (GEMM-shaped path)
      {.N = 1, .C = 8, .H = 6, .W = 6, .K = 8, .R = 1, .S = 1, .str = 1, .pad = 0},
      {.N = 2, .C = 5, .H = 7, .W = 9, .K = 10, .R = 1, .S = 1, .str = 1, .pad = 0},
      {.N = 1, .C = 16, .H = 8, .W = 8, .K = 32, .R = 1, .S = 1, .str = 2, .pad = 0},
      // 3x3 kernels, the paper's running example
      {.N = 1, .C = 4, .H = 8, .W = 8, .K = 8, .R = 3, .S = 3, .str = 1, .pad = 1},
      {.N = 2, .C = 3, .H = 10, .W = 14, .K = 6, .R = 3, .S = 3, .str = 1, .pad = 0},
      {.N = 1, .C = 7, .H = 9, .W = 11, .K = 13, .R = 3, .S = 3, .str = 1, .pad = 1},
      {.N = 1, .C = 8, .H = 12, .W = 12, .K = 16, .R = 3, .S = 3, .str = 2, .pad = 1},
      {.N = 3, .C = 2, .H = 5, .W = 5, .K = 3, .R = 3, .S = 3, .str = 2, .pad = 0},
      // 5x5 / 7x7 kernels
      {.N = 1, .C = 3, .H = 12, .W = 12, .K = 4, .R = 5, .S = 5, .str = 1, .pad = 2},
      {.N = 1, .C = 3, .H = 20, .W = 20, .K = 8, .R = 7, .S = 7, .str = 2, .pad = 3},
      // non-square kernels and inputs
      {.N = 1, .C = 4, .H = 9, .W = 17, .K = 5, .R = 3, .S = 1, .str = 1, .pad = 0},
      {.N = 1, .C = 4, .H = 17, .W = 9, .K = 5, .R = 1, .S = 3, .str = 1, .pad = 1},
      // degenerate spatial sizes
      {.N = 1, .C = 6, .H = 3, .W = 3, .K = 6, .R = 3, .S = 3, .str = 1, .pad = 0},
      {.N = 1, .C = 2, .H = 1, .W = 24, .K = 4, .R = 1, .S = 3, .str = 1, .pad = 1},
      {.N = 2, .C = 12, .H = 2, .W = 2, .K = 24, .R = 1, .S = 1, .str = 1, .pad = 0},
      // wide-W shapes exercising the Vw micro-kernel tail (W % 12 != 0)
      {.N = 1, .C = 4, .H = 4, .W = 25, .K = 16, .R = 3, .S = 3, .str = 1, .pad = 1},
      {.N = 1, .C = 4, .H = 4, .W = 13, .K = 9, .R = 3, .S = 3, .str = 1, .pad = 1},
      // K tails (K % 8, K % 4 nonzero)
      {.N = 1, .C = 8, .H = 6, .W = 14, .K = 7, .R = 3, .S = 3, .str = 1, .pad = 1},
      {.N = 1, .C = 8, .H = 6, .W = 14, .K = 21, .R = 3, .S = 3, .str = 1, .pad = 1},
      // downscaled Table 4 layers (spatial and channels reduced ~4x)
      {.N = 2, .C = 3, .H = 56, .W = 56, .K = 16, .R = 7, .S = 7, .str = 2, .pad = 3},
      {.N = 2, .C = 16, .H = 14, .W = 14, .K = 16, .R = 3, .S = 3, .str = 1, .pad = 1},
      {.N = 2, .C = 32, .H = 14, .W = 14, .K = 64, .R = 1, .S = 1, .str = 2, .pad = 0},
      {.N = 2, .C = 64, .H = 7, .W = 7, .K = 32, .R = 3, .S = 3, .str = 2, .pad = 1},
      {.N = 1, .C = 128, .H = 3, .W = 3, .K = 128, .R = 3, .S = 3, .str = 1, .pad = 1},
  };
}

/// A reduced sweep for the more expensive end-to-end style suites.
inline std::vector<ConvParams> quick_conv_shapes() {
  return {
      {.N = 1, .C = 4, .H = 8, .W = 8, .K = 8, .R = 3, .S = 3, .str = 1, .pad = 1},
      {.N = 2, .C = 5, .H = 7, .W = 9, .K = 10, .R = 1, .S = 1, .str = 1, .pad = 0},
      {.N = 1, .C = 8, .H = 12, .W = 12, .K = 16, .R = 3, .S = 3, .str = 2, .pad = 1},
      {.N = 1, .C = 3, .H = 20, .W = 20, .K = 8, .R = 7, .S = 7, .str = 2, .pad = 3},
  };
}

}  // namespace ndirect
