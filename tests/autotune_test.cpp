// Tests for the schedule search: space validity, cost-model ordering,
// tuner convergence, and tuned-schedule correctness.
#include <gtest/gtest.h>

#include <set>

#include "autotune/cost_model.h"
#include "autotune/space.h"
#include "autotune/registry.h"
#include "autotune/tuner.h"

#include <fstream>
#include "baselines/naive_conv.h"
#include "tensor/compare.h"
#include "tensor/rng.h"

namespace ndirect {
namespace {

const ConvParams kShape{.N = 1, .C = 16, .H = 14, .W = 14, .K = 32,
                        .R = 3, .S = 3, .str = 1, .pad = 1};

TEST(ScheduleValid, RejectsStructurallyBrokenSchedules) {
  Schedule s{.vw = 12, .vk = 8, .tc = 8, .tk = 16, .th = 4, .ptn = 1};
  EXPECT_TRUE(schedule_valid(s, kShape, 1));

  Schedule bad = s;
  bad.vk = 6;  // not a vector multiple
  EXPECT_FALSE(schedule_valid(bad, kShape, 1));
  bad = s;
  bad.tk = 20;  // not a multiple of vk
  EXPECT_FALSE(schedule_valid(bad, kShape, 1));
  bad = s;
  bad.tc = 17;  // > C
  EXPECT_FALSE(schedule_valid(bad, kShape, 1));
  bad = s;
  bad.th = 15;  // > P
  EXPECT_FALSE(schedule_valid(bad, kShape, 1));
  bad = s;
  bad.ptn = 3;  // does not divide threads=4
  EXPECT_FALSE(schedule_valid(bad, kShape, 4));
  bad = s;
  bad.vw = 28;  // beyond the generic kernel's bound
  EXPECT_FALSE(schedule_valid(bad, kShape, 1));
}

TEST(ScheduleSpace, SamplesAreAlwaysValid) {
  ScheduleSpace space(kShape, 4, 7);
  for (int i = 0; i < 200; ++i) {
    const Schedule s = space.sample();
    EXPECT_TRUE(schedule_valid(s, kShape, 4)) << s.to_string();
  }
}

TEST(ScheduleSpace, SamplesAreDiverse) {
  ScheduleSpace space(kShape, 4, 8);
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) seen.insert(space.sample().to_string());
  EXPECT_GT(seen.size(), 30u);
}

TEST(ScheduleSpace, MutationChangesOneDimensionAndStaysValid) {
  ScheduleSpace space(kShape, 4, 9);
  const Schedule base = space.sample();
  for (int i = 0; i < 100; ++i) {
    const Schedule m = space.mutate(base);
    EXPECT_TRUE(schedule_valid(m, kShape, 4)) << m.to_string();
  }
}

TEST(ScheduleSpace, CrossoverMixesParents) {
  ScheduleSpace space(kShape, 1, 10);
  Schedule a{.vw = 4, .vk = 4, .tc = 1, .tk = 4, .th = 1, .ptn = 1,
             .aot_filter = false};
  Schedule b{.vw = 12, .vk = 8, .tc = 16, .tk = 32, .th = 14, .ptn = 1,
             .aot_filter = true};
  for (int i = 0; i < 50; ++i) {
    const Schedule c = space.crossover(a, b);
    EXPECT_TRUE(schedule_valid(c, kShape, 1));
    EXPECT_TRUE((c.vw == a.vw || c.vw == b.vw)) << c.to_string();
    EXPECT_TRUE((c.tc == a.tc || c.tc == b.tc)) << c.to_string();
  }
}

TEST(ScheduleSpace, SpaceIsLargeEnoughToNeedSearch) {
  ScheduleSpace space(kShape, 4, 11);
  EXPECT_GT(space.approximate_size(), 1000u);
}

TEST(CostModel, PrefersEq3FeasibleRegisterTiles) {
  CostModel model;
  model.cache = {32 << 10, 512 << 10, 0, false};
  Schedule good{.vw = 12, .vk = 8, .tc = 8, .tk = 16, .th = 14, .ptn = 1};
  Schedule spilling = good;
  spilling.vw = 24;
  spilling.vk = 20;  // 24*20/4 = 120 accumulator registers
  EXPECT_GT(model.score(good, kShape), model.score(spilling, kShape));
}

TEST(CostModel, PenalizesCacheOverflowingTiles) {
  CostModel model;
  model.cache = {16 << 10, 64 << 10, 0, false};
  const ConvParams p{.N = 1, .C = 512, .H = 14, .W = 14, .K = 512,
                     .R = 3, .S = 3, .str = 1, .pad = 1};
  Schedule fits{.vw = 12, .vk = 8, .tc = 4, .tk = 16, .th = 14, .ptn = 1};
  Schedule spills = fits;
  spills.tc = 512;  // L1 working set far beyond 16 KB
  EXPECT_GT(model.score(fits, p), model.score(spills, p));
}

TEST(CostModel, PenalizesRaggedRemainders) {
  CostModel model;
  model.cache = {32 << 10, 512 << 10, 0, false};
  // Q = 14: vw=12 covers 14 as 12+2 (58% useful second tile); vw=8
  // covers as 8+6. K=32: vk=8 divides exactly.
  Schedule clean{.vw = 8, .vk = 8, .tc = 16, .tk = 32, .th = 14, .ptn = 1};
  Schedule ragged = clean;
  ragged.vw = 12;
  const double s_clean = model.score(clean, kShape);
  const double s_ragged = model.score(ragged, kShape);
  // Not asserting which wins overall (FAI differs too); assert the
  // remainder factor is visible: scale both by FAI to isolate it.
  const double fai_clean = 2.0 * 3 * 8 * 8 / ((8 - 1) + 3.0 + 3 * 8);
  const double fai_ragged = 2.0 * 3 * 12 * 8 / ((12 - 1) + 3.0 + 3 * 8);
  EXPECT_GT(s_clean / fai_clean, s_ragged / fai_ragged);
}

TEST(CostModel, ThreadSplitFactorFollowsEq5) {
  CostModel model;
  model.cache = {32 << 10, 512 << 10, 0, false};
  model.threads = 8;
  model.alpha = 2.0;
  // Large-K layer: Eq. 5 wants threads on K, so ptn=8 (all threads on
  // rows) must score below ptn=1 or 2.
  const ConvParams p{.N = 1, .C = 64, .H = 14, .W = 14, .K = 2048,
                     .R = 1, .S = 1, .str = 1, .pad = 0};
  Schedule rows{.vw = 12, .vk = 8, .tc = 16, .tk = 32, .th = 14, .ptn = 8};
  Schedule cols = rows;
  cols.ptn = 1;
  EXPECT_GT(model.score(cols, p), model.score(rows, p));
}

TEST(TunedConv, ArbitraryValidSchedulesAreCorrect) {
  Tensor in = make_input_nchw(kShape.N, kShape.C, kShape.H, kShape.W);
  Tensor f = make_filter_kcrs(kShape.K, kShape.C, kShape.R, kShape.S);
  fill_random(in, 41);
  fill_random(f, 42);
  const Tensor ref = naive_conv_nchw(in, f, kShape);

  ScheduleSpace space(kShape, 2, 12);
  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) {
    const Schedule s = space.sample();
    const Tensor out = tuned_conv(in, f, kShape, s, 2, &pool);
    EXPECT_TRUE(allclose(out, ref)) << s.to_string();
  }
}

TEST(Tuner, FindsScheduleAndRecordsTrials) {
  TuneOptions opts;
  opts.generations = 3;
  opts.population = 12;
  opts.measure_top = 2;
  opts.measure_seconds = 0.005;
  opts.threads = 1;
  const TuneResult r = tune_conv(kShape, opts);
  EXPECT_GT(r.best_gflops, 0.0);
  EXPECT_TRUE(schedule_valid(r.best, kShape, 1));
  EXPECT_EQ(r.cost_evaluations, 3 * 12);
  EXPECT_GT(r.measurements, 0);
  EXPECT_LE(r.measurements, 3 * 2);
  EXPECT_EQ(r.measured.size(), static_cast<std::size_t>(r.measurements));
}

TEST(Tuner, BestGflopsIsMaxOfMeasured) {
  TuneOptions opts;
  opts.generations = 2;
  opts.population = 8;
  opts.measure_top = 3;
  opts.measure_seconds = 0.005;
  opts.threads = 1;
  const TuneResult r = tune_conv(kShape, opts);
  double max_measured = 0;
  for (const TrialRecord& t : r.measured) {
    max_measured = std::max(max_measured, t.measured_gflops);
  }
  EXPECT_DOUBLE_EQ(r.best_gflops, max_measured);
}

TEST(Tuner, MoreGenerationsNeverHurt) {
  // The incumbent-best is monotone in the number of generations when
  // seeded identically (the early generations are a prefix).
  TuneOptions small;
  small.generations = 1;
  small.population = 8;
  small.measure_top = 2;
  small.measure_seconds = 0.004;
  small.threads = 1;
  small.seed = 5;
  TuneOptions large = small;
  large.generations = 4;
  const TuneResult rs = tune_conv(kShape, small);
  const TuneResult rl = tune_conv(kShape, large);
  // Measurement noise exists; allow 25% slack but require the larger
  // budget to stay in the same ballpark or better.
  EXPECT_GE(rl.best_gflops, 0.75 * rs.best_gflops);
}

TEST(Tuner, TunedResultRunsCorrectly) {
  TuneOptions opts;
  opts.generations = 2;
  opts.population = 8;
  opts.measure_top = 2;
  opts.measure_seconds = 0.004;
  opts.threads = 1;
  const TuneResult r = tune_conv(kShape, opts);

  Tensor in = make_input_nchw(kShape.N, kShape.C, kShape.H, kShape.W);
  Tensor f = make_filter_kcrs(kShape.K, kShape.C, kShape.R, kShape.S);
  fill_random(in, 51);
  fill_random(f, 52);
  const Tensor ref = naive_conv_nchw(in, f, kShape);
  const Tensor out = tuned_conv(in, f, kShape, r.best, 1);
  EXPECT_TRUE(allclose(out, ref));
}

// ----------------------------------------------------------------------
// Schedule registry
// ----------------------------------------------------------------------

TEST(Registry, PutFindRoundTrip) {
  ScheduleRegistry reg;
  EXPECT_TRUE(reg.empty());
  const Schedule s{.vw = 12, .vk = 8, .tc = 8, .tk = 16, .th = 4,
                   .ptn = 1};
  reg.put(kShape, {s, 12.5, 1});
  ASSERT_TRUE(reg.find(kShape).has_value());
  EXPECT_EQ(reg.find(kShape)->schedule, s);
  EXPECT_DOUBLE_EQ(reg.find(kShape)->gflops, 12.5);
  ConvParams other = kShape;
  other.K += 8;
  EXPECT_FALSE(reg.find(other).has_value());
}

TEST(Registry, KeepBestRetainsFasterEntry) {
  ScheduleRegistry reg;
  const Schedule fast{.vw = 12, .vk = 8, .tc = 8, .tk = 16, .th = 4,
                      .ptn = 1};
  const Schedule slow{.vw = 4, .vk = 4, .tc = 1, .tk = 4, .th = 1,
                      .ptn = 1};
  reg.put(kShape, {fast, 20.0, 1});
  reg.put(kShape, {slow, 5.0, 1});  // slower: ignored
  EXPECT_EQ(reg.find(kShape)->schedule, fast);
  reg.put(kShape, {slow, 30.0, 1});  // faster: replaces
  EXPECT_EQ(reg.find(kShape)->schedule, slow);
  reg.put(kShape, {fast, 1.0, 1}, /*keep_best=*/false);  // forced
  EXPECT_EQ(reg.find(kShape)->schedule, fast);
}

TEST(Registry, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "ndirect_registry.txt";
  ScheduleRegistry reg;
  const Schedule s1{.vw = 12, .vk = 8, .tc = 8, .tk = 16, .th = 4,
                    .ptn = 1, .aot_filter = true};
  ConvParams p2 = kShape;
  p2.K = 64;
  const Schedule s2{.vw = 8, .vk = 4, .tc = 4, .tk = 8, .th = 2, .ptn = 2};
  reg.put(kShape, {s1, 11.0, 1});
  reg.put(p2, {s2, 7.5, 2});
  ASSERT_TRUE(reg.save(path));

  int skipped = -1;
  const ScheduleRegistry loaded = ScheduleRegistry::load(path, &skipped);
  EXPECT_EQ(skipped, 0);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.find(kShape)->schedule, s1);
  EXPECT_TRUE(loaded.find(kShape)->schedule.aot_filter);
  EXPECT_EQ(loaded.find(p2)->schedule, s2);
  EXPECT_EQ(loaded.find(p2)->threads, 2);
}

TEST(Registry, MissingFileYieldsEmptyRegistry) {
  int skipped = -1;
  const ScheduleRegistry reg =
      ScheduleRegistry::load("/nonexistent/registry.txt", &skipped);
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(skipped, 0);
}

TEST(Registry, CorruptLinesAreSkippedNotFatal) {
  const std::string path = ::testing::TempDir() + "ndirect_corrupt.txt";
  {
    std::ofstream out(path);
    out << "# comment survives\n"
        << "1 16 14 14 32 3 3 1 1 12 8 8 16 4 1 0 1 10.5\n"  // valid
        << "garbage line\n"
        << "1 16 14 14 32 3 3 1 1 13 8 8 16 4 1 0 1 9.0\n"   // vw=13 bad
        << "1 16 14 14\n";                                    // truncated
  }
  int skipped = -1;
  const ScheduleRegistry reg = ScheduleRegistry::load(path, &skipped);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(skipped, 3);
  EXPECT_TRUE(reg.find(kShape).has_value());
}

}  // namespace
}  // namespace ndirect
