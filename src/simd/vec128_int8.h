// Portable 128-bit int8 dot-product primitives (the int8 companion of
// vec128.h), modelled on the ARMv8.2 dot-product extension.
//
// The workhorse is the 4-way dot product SDOT: each of the four 32-bit
// accumulator lanes gains the dot product of four consecutive signed
// bytes from each operand. One instruction therefore performs 16 MACs —
// 4x the arithmetic of an FP32 FMA on the same 128-bit register, which
// is exactly the lever that moves the paper's bandwidth-bound layers up
// the roofline.
//
// Three implementations share one exact-integer semantic:
//   * native   — vdotq_s32 when the compiler targets +dotprod
//                (__ARM_FEATURE_DOTPROD); only then is
//                NDIRECT_INT8_DOT_COMPILED 1,
//   * emulated — the widening-multiply ladder: NEON SMULL/SMLAL pairs
//                (vmull_s8 + vpaddlq_s16 + vpaddq_s32), SSE4.1
//                sign-extend + PMADDWD (exact, unlike PMADDUBSW whose
//                int16 pair saturation silently corrupts u8xs8 sums),
//                or scalar loops elsewhere,
//   * scalar   — plain C loops, the parity reference.
// All three produce bitwise-identical int32 accumulators (every path is
// exact integer arithmetic; nothing saturates before the accumulator),
// which the quantized parity sweep asserts.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

#include "simd/vec128.h"

#if defined(NDIRECT_SIMD_NEON) && defined(__ARM_FEATURE_DOTPROD)
#define NDIRECT_INT8_DOT_COMPILED 1
#else
#define NDIRECT_INT8_DOT_COMPILED 0
#endif

namespace ndirect {

/// 16 signed bytes (4 groups of 4 channels in the int8 kernel layout).
struct vec128b {
#if defined(NDIRECT_SIMD_NEON)
  int8x16_t v;
#elif defined(NDIRECT_SIMD_SSE)
  __m128i v;
#else
  std::int8_t v[16];
#endif
};

/// 4 int32 accumulator lanes.
struct vec128i {
#if defined(NDIRECT_SIMD_NEON)
  int32x4_t v;
#elif defined(NDIRECT_SIMD_SSE)
  __m128i v;
#else
  std::int32_t v[4];
#endif
};

// ---------------------------------------------------------------------------
// Loads / stores
// ---------------------------------------------------------------------------

inline vec128b vload_b(const std::int8_t* p) {
#if defined(NDIRECT_SIMD_NEON)
  return {vld1q_s8(p)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
#else
  vec128b r;
  std::memcpy(r.v, p, sizeof(r.v));
  return r;
#endif
}

inline vec128i vzero_i32() {
#if defined(NDIRECT_SIMD_NEON)
  return {vdupq_n_s32(0)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_setzero_si128()};
#else
  return {{0, 0, 0, 0}};
#endif
}

inline vec128i vdup_i32(std::int32_t x) {
#if defined(NDIRECT_SIMD_NEON)
  return {vdupq_n_s32(x)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_set1_epi32(x)};
#else
  return {{x, x, x, x}};
#endif
}

inline vec128i vload_i32(const std::int32_t* p) {
#if defined(NDIRECT_SIMD_NEON)
  return {vld1q_s32(p)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
#else
  vec128i r;
  std::memcpy(r.v, p, sizeof(r.v));
  return r;
#endif
}

inline void vstore_i32(std::int32_t* p, vec128i a) {
#if defined(NDIRECT_SIMD_NEON)
  vst1q_s32(p, a.v);
#elif defined(NDIRECT_SIMD_SSE)
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a.v);
#else
  std::memcpy(p, a.v, sizeof(a.v));
#endif
}

inline vec128i vadd_i32(vec128i a, vec128i b) {
#if defined(NDIRECT_SIMD_NEON)
  return {vaddq_s32(a.v, b.v)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_add_epi32(a.v, b.v)};
#else
  return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2],
           a.v[3] + b.v[3]}};
#endif
}

/// Convert 4 int32 lanes to float (the requantize/dequantize epilogue's
/// first step).
inline vec128f vcvt_f32_i32(vec128i a) {
#if defined(NDIRECT_SIMD_NEON)
  return {vcvtq_f32_s32(a.v)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_cvtepi32_ps(a.v)};
#else
  return {{static_cast<float>(a.v[0]), static_cast<float>(a.v[1]),
           static_cast<float>(a.v[2]), static_cast<float>(a.v[3])}};
#endif
}

/// Broadcast one 32-bit lane (a 4-channel input group) across the
/// vector — the int8 analogue of the lane operand in vfma_lane.
template <int Lane>
inline vec128b vdup_group(vec128b x) {
  static_assert(Lane >= 0 && Lane < 4);
#if defined(NDIRECT_SIMD_NEON)
  return {vreinterpretq_s8_s32(
      vdupq_laneq_s32(vreinterpretq_s32_s8(x.v), Lane))};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_shuffle_epi32(x.v, _MM_SHUFFLE(Lane, Lane, Lane, Lane))};
#else
  vec128b r;
  for (int g = 0; g < 4; ++g) {
    std::memcpy(r.v + 4 * g, x.v + 4 * Lane, 4);
  }
  return r;
#endif
}

/// In-register 4x4 int32 transpose (K-vectorized accumulators ->
/// W-contiguous rows, mirroring vtranspose4x4 for the fp32 store).
inline void vtranspose4x4_i32(vec128i& r0, vec128i& r1, vec128i& r2,
                              vec128i& r3) {
#if defined(NDIRECT_SIMD_NEON)
  const int32x4x2_t t01 = vtrnq_s32(r0.v, r1.v);
  const int32x4x2_t t23 = vtrnq_s32(r2.v, r3.v);
  r0.v = vcombine_s32(vget_low_s32(t01.val[0]), vget_low_s32(t23.val[0]));
  r1.v = vcombine_s32(vget_low_s32(t01.val[1]), vget_low_s32(t23.val[1]));
  r2.v =
      vcombine_s32(vget_high_s32(t01.val[0]), vget_high_s32(t23.val[0]));
  r3.v =
      vcombine_s32(vget_high_s32(t01.val[1]), vget_high_s32(t23.val[1]));
#elif defined(NDIRECT_SIMD_SSE)
  const __m128i a01 = _mm_unpacklo_epi32(r0.v, r1.v);
  const __m128i a23 = _mm_unpacklo_epi32(r2.v, r3.v);
  const __m128i b01 = _mm_unpackhi_epi32(r0.v, r1.v);
  const __m128i b23 = _mm_unpackhi_epi32(r2.v, r3.v);
  r0.v = _mm_unpacklo_epi64(a01, a23);
  r1.v = _mm_unpackhi_epi64(a01, a23);
  r2.v = _mm_unpacklo_epi64(b01, b23);
  r3.v = _mm_unpackhi_epi64(b01, b23);
#else
  std::int32_t m[4][4];
  vstore_i32(m[0], r0);
  vstore_i32(m[1], r1);
  vstore_i32(m[2], r2);
  vstore_i32(m[3], r3);
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) {
      const std::int32_t t = m[i][j];
      m[i][j] = m[j][i];
      m[j][i] = t;
    }
  r0 = vload_i32(m[0]);
  r1 = vload_i32(m[1]);
  r2 = vload_i32(m[2]);
  r3 = vload_i32(m[3]);
#endif
}

// ---------------------------------------------------------------------------
// The 4-way dot product
// ---------------------------------------------------------------------------

#if NDIRECT_INT8_DOT_COMPILED
/// Native SDOT: acc lane i += dot(a[4i..4i+3], b[4i..4i+3]).
inline vec128i vdot_s8_native(vec128i acc, vec128b a, vec128b b) {
  return {vdotq_s32(acc.v, a.v, b.v)};
}
#endif

/// Widening-multiply emulation of SDOT with identical (exact) results:
/// s8 x s8 products fit int16, pairwise sums fit int32 — nothing
/// saturates on any path.
inline vec128i vdot_s8_emul(vec128i acc, vec128b a, vec128b b) {
#if defined(NDIRECT_SIMD_NEON)
  const int16x8_t p_lo = vmull_s8(vget_low_s8(a.v), vget_low_s8(b.v));
  const int16x8_t p_hi = vmull_s8(vget_high_s8(a.v), vget_high_s8(b.v));
  const int32x4_t s_lo = vpaddlq_s16(p_lo);  // pairs -> 4 int32
  const int32x4_t s_hi = vpaddlq_s16(p_hi);
  return {vaddq_s32(acc.v, vpaddq_s32(s_lo, s_hi))};
#elif defined(NDIRECT_SIMD_SSE) && defined(__SSE4_1__)
  // Sign-extend both byte halves to int16 and PMADDWD them: exact
  // int32 pair sums, then one HADD folds pairs into the 4 group dots.
  const __m128i a_lo = _mm_cvtepi8_epi16(a.v);
  const __m128i b_lo = _mm_cvtepi8_epi16(b.v);
  const __m128i a_hi = _mm_cvtepi8_epi16(_mm_srli_si128(a.v, 8));
  const __m128i b_hi = _mm_cvtepi8_epi16(_mm_srli_si128(b.v, 8));
  const __m128i m_lo = _mm_madd_epi16(a_lo, b_lo);  // 4 pair-sums
  const __m128i m_hi = _mm_madd_epi16(a_hi, b_hi);
  return {_mm_add_epi32(acc.v, _mm_hadd_epi32(m_lo, m_hi))};
#else
  std::int8_t av[16], bv[16];
  std::int32_t accv[4];
  std::memcpy(av, &a, 16);
  std::memcpy(bv, &b, 16);
  vstore_i32(accv, acc);
  for (int g = 0; g < 4; ++g) {
    std::int32_t dot = 0;
    for (int i = 0; i < 4; ++i) {
      dot += static_cast<std::int32_t>(av[4 * g + i]) *
             static_cast<std::int32_t>(bv[4 * g + i]);
    }
    accv[g] += dot;
  }
  return vload_i32(accv);
#endif
}

/// Backend-selected dot product for the kernel generator: UseDot picks
/// the native SDOT (only instantiated when the target compiles it).
template <bool UseDot>
inline vec128i vdot_s8(vec128i acc, vec128b a, vec128b b) {
#if NDIRECT_INT8_DOT_COMPILED
  if constexpr (UseDot) {
    return vdot_s8_native(acc, a, b);
  } else {
    return vdot_s8_emul(acc, a, b);
  }
#else
  static_assert(!UseDot,
                "native dot kernels require a +dotprod compile target");
  return vdot_s8_emul(acc, a, b);
#endif
}

/// Round float lanes to nearest-even integers (the requantize rounding
/// contract). NEON FRINTN / SSE4.1 ROUNDPS round-to-nearest are RNE by
/// definition; the scalar path assumes the default FE_TONEAREST mode.
inline vec128f vround_ne(vec128f a) {
#if defined(NDIRECT_SIMD_NEON)
  return {vrndnq_f32(a.v)};
#elif defined(NDIRECT_SIMD_SSE) && defined(__SSE4_1__)
  return {_mm_round_ps(a.v, _MM_FROUND_TO_NEAREST_INT |
                                _MM_FROUND_NO_EXC)};
#else
  float t[4];
  vstore(t, a);
  for (float& x : t) x = std::nearbyintf(x);
  return vload(t);
#endif
}

}  // namespace ndirect
