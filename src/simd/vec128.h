// Portable 128-bit SIMD vector of 4 floats, modelled on ARMv8 NEON.
//
// The paper's kernels are written against NEON: 32 x 128-bit registers,
// fused multiply-accumulate, and lane-broadcast FMA (FMLA with a lane
// operand). This header reproduces exactly that operation set:
//   * on aarch64 it compiles to the NEON intrinsics the paper uses,
//   * on x86-64 it maps to SSE (+FMA when available),
//   * elsewhere it falls back to scalar code.
// All nDirect/GEMM/baseline micro-kernels are written against this type,
// so the instruction mix (loads, lane FMAs, stores) matches Algorithm 3
// independent of the host ISA.
#pragma once

#include <cstddef>
#include <cstring>

#if defined(__aarch64__)
#include <arm_neon.h>
#define NDIRECT_SIMD_NEON 1
#elif defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__)
#include <immintrin.h>
#define NDIRECT_SIMD_SSE 1
#else
#define NDIRECT_SIMD_SCALAR 1
#endif

namespace ndirect {

/// Number of FP32 lanes in one vector register (the paper's "4").
inline constexpr int kVecLanes = 4;

/// Number of architectural 128-bit vector registers assumed by the
/// register-budget constraint (Eq. 3). ARMv8 provides V0-V31.
inline constexpr int kNumVecRegs = 32;

struct vec128f {
#if defined(NDIRECT_SIMD_NEON)
  float32x4_t v;
#elif defined(NDIRECT_SIMD_SSE)
  __m128 v;
#else
  float v[4];
#endif
};

// ---------------------------------------------------------------------------
// Construction / memory
// ---------------------------------------------------------------------------

inline vec128f vzero() {
#if defined(NDIRECT_SIMD_NEON)
  return {vdupq_n_f32(0.0f)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_setzero_ps()};
#else
  return {{0.0f, 0.0f, 0.0f, 0.0f}};
#endif
}

inline vec128f vdup(float x) {
#if defined(NDIRECT_SIMD_NEON)
  return {vdupq_n_f32(x)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_set1_ps(x)};
#else
  return {{x, x, x, x}};
#endif
}

/// Unaligned load of 4 consecutive floats.
inline vec128f vload(const float* p) {
#if defined(NDIRECT_SIMD_NEON)
  return {vld1q_f32(p)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_loadu_ps(p)};
#else
  vec128f r;
  std::memcpy(r.v, p, sizeof(r.v));
  return r;
#endif
}

/// Unaligned store of 4 consecutive floats.
inline void vstore(float* p, vec128f a) {
#if defined(NDIRECT_SIMD_NEON)
  vst1q_f32(p, a.v);
#elif defined(NDIRECT_SIMD_SSE)
  _mm_storeu_ps(p, a.v);
#else
  std::memcpy(p, a.v, sizeof(a.v));
#endif
}

/// Partial-lane load: the first N floats of p land in lanes [0, N); the
/// remaining lanes are zero. Unlike vload, reads exactly N floats — safe
/// at the very end of a buffer. N must be in [1, 4]; N == 4 is vload.
template <int N>
inline vec128f vload_partial(const float* p) {
  static_assert(N >= 1 && N <= 4);
  if constexpr (N == 4) {
    return vload(p);
  } else {
#if defined(NDIRECT_SIMD_NEON)
    if constexpr (N == 1) {
      return {vld1q_lane_f32(p, vdupq_n_f32(0.0f), 0)};
    } else if constexpr (N == 2) {
      return {vcombine_f32(vld1_f32(p), vdup_n_f32(0.0f))};
    } else {
      const float32x4_t lo = vcombine_f32(vld1_f32(p), vdup_n_f32(0.0f));
      return {vld1q_lane_f32(p + 2, lo, 2)};
    }
#elif defined(NDIRECT_SIMD_SSE)
    if constexpr (N == 1) {
      return {_mm_load_ss(p)};
    } else if constexpr (N == 2) {
      // 8-byte load into the low half, upper half zero.
      return {_mm_castpd_ps(_mm_load_sd(reinterpret_cast<const double*>(p)))};
    } else {
      const __m128 lo =
          _mm_castpd_ps(_mm_load_sd(reinterpret_cast<const double*>(p)));
      return {_mm_movelh_ps(lo, _mm_load_ss(p + 2))};
    }
#else
    vec128f r = vzero();
    std::memcpy(r.v, p, sizeof(float) * N);
    return r;
#endif
  }
}

/// Partial-lane store: writes lanes [0, N) to p and touches exactly N
/// floats of memory — the masked counterpart of vstore for ragged tile
/// edges. N must be in [1, 4]; N == 4 is vstore.
template <int N>
inline void vstore_partial(float* p, vec128f a) {
  static_assert(N >= 1 && N <= 4);
  if constexpr (N == 4) {
    vstore(p, a);
  } else {
#if defined(NDIRECT_SIMD_NEON)
    if constexpr (N == 1) {
      vst1q_lane_f32(p, a.v, 0);
    } else if constexpr (N == 2) {
      vst1_f32(p, vget_low_f32(a.v));
    } else {
      vst1_f32(p, vget_low_f32(a.v));
      vst1q_lane_f32(p + 2, a.v, 2);
    }
#elif defined(NDIRECT_SIMD_SSE)
    if constexpr (N == 1) {
      _mm_store_ss(p, a.v);
    } else if constexpr (N == 2) {
      _mm_store_sd(reinterpret_cast<double*>(p), _mm_castps_pd(a.v));
    } else {
      _mm_store_sd(reinterpret_cast<double*>(p), _mm_castps_pd(a.v));
      _mm_store_ss(p + 2, _mm_movehl_ps(a.v, a.v));
    }
#else
    std::memcpy(p, a.v, sizeof(float) * N);
#endif
  }
}

/// Runtime-lane-count wrappers over vload_partial/vstore_partial, for
/// code whose ragged extent is only known per tile. n must be in [1, 4].
inline vec128f vload_lanes(const float* p, int n) {
  switch (n) {
    case 1: return vload_partial<1>(p);
    case 2: return vload_partial<2>(p);
    case 3: return vload_partial<3>(p);
    default: return vload_partial<4>(p);
  }
}

inline void vstore_lanes(float* p, vec128f a, int n) {
  switch (n) {
    case 1: vstore_partial<1>(p, a); break;
    case 2: vstore_partial<2>(p, a); break;
    case 3: vstore_partial<3>(p, a); break;
    default: vstore_partial<4>(p, a); break;
  }
}

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

inline vec128f vadd(vec128f a, vec128f b) {
#if defined(NDIRECT_SIMD_NEON)
  return {vaddq_f32(a.v, b.v)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_add_ps(a.v, b.v)};
#else
  return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2],
           a.v[3] + b.v[3]}};
#endif
}

inline vec128f vsub(vec128f a, vec128f b) {
#if defined(NDIRECT_SIMD_NEON)
  return {vsubq_f32(a.v, b.v)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_sub_ps(a.v, b.v)};
#else
  return {{a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2],
           a.v[3] - b.v[3]}};
#endif
}

inline vec128f vmul(vec128f a, vec128f b) {
#if defined(NDIRECT_SIMD_NEON)
  return {vmulq_f32(a.v, b.v)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_mul_ps(a.v, b.v)};
#else
  return {{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2],
           a.v[3] * b.v[3]}};
#endif
}

inline vec128f vmax(vec128f a, vec128f b) {
#if defined(NDIRECT_SIMD_NEON)
  return {vmaxq_f32(a.v, b.v)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_max_ps(a.v, b.v)};
#else
  vec128f r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
#endif
}

inline vec128f vmin(vec128f a, vec128f b) {
#if defined(NDIRECT_SIMD_NEON)
  return {vminq_f32(a.v, b.v)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_min_ps(a.v, b.v)};
#else
  vec128f r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return r;
#endif
}

/// acc + a*b (fused on NEON and on x86 when -mfma is available).
inline vec128f vfma(vec128f acc, vec128f a, vec128f b) {
#if defined(NDIRECT_SIMD_NEON)
  return {vfmaq_f32(acc.v, a.v, b.v)};
#elif defined(NDIRECT_SIMD_SSE)
#if defined(__FMA__)
  return {_mm_fmadd_ps(a.v, b.v, acc.v)};
#else
  return {_mm_add_ps(acc.v, _mm_mul_ps(a.v, b.v))};
#endif
#else
  vec128f r;
  for (int i = 0; i < 4; ++i) r.v[i] = acc.v[i] + a.v[i] * b.v[i];
  return r;
#endif
}

/// acc + a[Lane]*b : the scalar-vector FMA of Algorithm 3 (NEON FMLA with
/// a lane operand). Lane must be in [0, 3].
template <int Lane>
inline vec128f vfma_lane(vec128f acc, vec128f a, vec128f b) {
  static_assert(Lane >= 0 && Lane < 4);
#if defined(NDIRECT_SIMD_NEON)
  return {vfmaq_laneq_f32(acc.v, b.v, a.v, Lane)};
#elif defined(NDIRECT_SIMD_SSE)
  const __m128 lane =
      _mm_shuffle_ps(a.v, a.v, _MM_SHUFFLE(Lane, Lane, Lane, Lane));
#if defined(__FMA__)
  return {_mm_fmadd_ps(lane, b.v, acc.v)};
#else
  return {_mm_add_ps(acc.v, _mm_mul_ps(lane, b.v))};
#endif
#else
  vec128f r;
  for (int i = 0; i < 4; ++i) r.v[i] = acc.v[i] + a.v[Lane] * b.v[i];
  return r;
#endif
}

// ---------------------------------------------------------------------------
// Lane access / horizontal ops
// ---------------------------------------------------------------------------

template <int Lane>
inline float vget_lane(vec128f a) {
  static_assert(Lane >= 0 && Lane < 4);
#if defined(NDIRECT_SIMD_NEON)
  return vgetq_lane_f32(a.v, Lane);
#elif defined(NDIRECT_SIMD_SSE)
  return _mm_cvtss_f32(
      _mm_shuffle_ps(a.v, a.v, _MM_SHUFFLE(Lane, Lane, Lane, Lane)));
#else
  return a.v[Lane];
#endif
}

inline float vget_lane_dyn(vec128f a, int lane) {
  float tmp[4];
  vstore(tmp, a);
  return tmp[lane];
}

/// Horizontal sum of the 4 lanes.
inline float vreduce_add(vec128f a) {
#if defined(NDIRECT_SIMD_NEON)
  return vaddvq_f32(a.v);
#elif defined(NDIRECT_SIMD_SSE)
  __m128 shuf = _mm_shuffle_ps(a.v, a.v, _MM_SHUFFLE(2, 3, 0, 1));
  __m128 sums = _mm_add_ps(a.v, shuf);
  shuf = _mm_movehl_ps(shuf, sums);
  sums = _mm_add_ss(sums, shuf);
  return _mm_cvtss_f32(sums);
#else
  return a.v[0] + a.v[1] + a.v[2] + a.v[3];
#endif
}

/// In-register 4x4 transpose. Used to convert the micro-kernel's
/// K-vectorized accumulators into W-contiguous rows before an NCHW store.
inline void vtranspose4x4(vec128f& r0, vec128f& r1, vec128f& r2,
                          vec128f& r3) {
#if defined(NDIRECT_SIMD_NEON)
  const float32x4x2_t t01 = vtrnq_f32(r0.v, r1.v);
  const float32x4x2_t t23 = vtrnq_f32(r2.v, r3.v);
  r0.v = vcombine_f32(vget_low_f32(t01.val[0]), vget_low_f32(t23.val[0]));
  r1.v = vcombine_f32(vget_low_f32(t01.val[1]), vget_low_f32(t23.val[1]));
  r2.v = vcombine_f32(vget_high_f32(t01.val[0]), vget_high_f32(t23.val[0]));
  r3.v = vcombine_f32(vget_high_f32(t01.val[1]), vget_high_f32(t23.val[1]));
#elif defined(NDIRECT_SIMD_SSE)
  _MM_TRANSPOSE4_PS(r0.v, r1.v, r2.v, r3.v);
#else
  float m[4][4];
  vstore(m[0], r0);
  vstore(m[1], r1);
  vstore(m[2], r2);
  vstore(m[3], r3);
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) {
      const float t = m[i][j];
      m[i][j] = m[j][i];
      m[j][i] = t;
    }
  r0 = vload(m[0]);
  r1 = vload(m[1]);
  r2 = vload(m[2]);
  r3 = vload(m[3]);
#endif
}

/// Software prefetch hint (no-op where unsupported).
inline void vprefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

// ---------------------------------------------------------------------------
// FP64: 128-bit vector of 2 doubles (the Section 3.3 datatype extension).
// ---------------------------------------------------------------------------

inline constexpr int kVecLanesF64 = 2;

struct vec128d {
#if defined(NDIRECT_SIMD_NEON)
  float64x2_t v;
#elif defined(NDIRECT_SIMD_SSE)
  __m128d v;
#else
  double v[2];
#endif
};

inline vec128d vzero_f64() {
#if defined(NDIRECT_SIMD_NEON)
  return {vdupq_n_f64(0.0)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_setzero_pd()};
#else
  return {{0.0, 0.0}};
#endif
}

inline vec128d vdup_f64(double x) {
#if defined(NDIRECT_SIMD_NEON)
  return {vdupq_n_f64(x)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_set1_pd(x)};
#else
  return {{x, x}};
#endif
}

inline vec128d vload_f64(const double* p) {
#if defined(NDIRECT_SIMD_NEON)
  return {vld1q_f64(p)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_loadu_pd(p)};
#else
  vec128d r;
  std::memcpy(r.v, p, sizeof(r.v));
  return r;
#endif
}

inline void vstore_f64(double* p, vec128d a) {
#if defined(NDIRECT_SIMD_NEON)
  vst1q_f64(p, a.v);
#elif defined(NDIRECT_SIMD_SSE)
  _mm_storeu_pd(p, a.v);
#else
  std::memcpy(p, a.v, sizeof(a.v));
#endif
}

inline vec128d vadd_f64(vec128d a, vec128d b) {
#if defined(NDIRECT_SIMD_NEON)
  return {vaddq_f64(a.v, b.v)};
#elif defined(NDIRECT_SIMD_SSE)
  return {_mm_add_pd(a.v, b.v)};
#else
  return {{a.v[0] + b.v[0], a.v[1] + b.v[1]}};
#endif
}

/// acc + a*b for doubles (fused where the ISA provides it).
inline vec128d vfma_f64(vec128d acc, vec128d a, vec128d b) {
#if defined(NDIRECT_SIMD_NEON)
  return {vfmaq_f64(acc.v, a.v, b.v)};
#elif defined(NDIRECT_SIMD_SSE)
#if defined(__FMA__)
  return {_mm_fmadd_pd(a.v, b.v, acc.v)};
#else
  return {_mm_add_pd(acc.v, _mm_mul_pd(a.v, b.v))};
#endif
#else
  return {{acc.v[0] + a.v[0] * b.v[0], acc.v[1] + a.v[1] * b.v[1]}};
#endif
}

/// Name of the active backend, for logging/bench headers.
inline const char* simd_backend_name() {
#if defined(NDIRECT_SIMD_NEON)
  return "neon";
#elif defined(NDIRECT_SIMD_SSE)
  return "sse";
#else
  return "scalar";
#endif
}

}  // namespace ndirect
