#include "baselines/im2col_conv.h"

#include <cassert>
#include <cstring>

#include "runtime/aligned_buffer.h"

namespace ndirect {

void im2col_nchw(const float* image, const ConvParams& p, float* col) {
  const int P = p.P(), Q = p.Q();
  const std::int64_t col_width = std::int64_t{P} * Q;
  // Row (c, r, s) of the column matrix holds, for every output position
  // (oj, oi), the input element I[c][oj*str + r - pad][oi*str + s - pad].
  for (int c = 0; c < p.C; ++c) {
    const float* channel =
        image + static_cast<std::int64_t>(c) * p.H * p.W;
    for (int r = 0; r < p.R; ++r) {
      for (int s = 0; s < p.S; ++s) {
        float* row =
            col + ((static_cast<std::int64_t>(c) * p.R + r) * p.S + s) *
                      col_width;
        for (int oj = 0; oj < P; ++oj) {
          const int ij = p.str * oj + r - p.pad;
          float* dst = row + static_cast<std::int64_t>(oj) * Q;
          if (ij < 0 || ij >= p.H) {
            std::memset(dst, 0, sizeof(float) * static_cast<std::size_t>(Q));
            continue;
          }
          const float* src_row = channel + static_cast<std::int64_t>(ij) * p.W;
          if (p.str == 1) {
            // Contiguous span with zero borders on both ends.
            const int ii0 = s - p.pad;  // input col for oi = 0
            int oi = 0;
            for (; oi < Q && ii0 + oi < 0; ++oi) dst[oi] = 0.0f;
            int oi_hi = Q;
            while (oi_hi > oi && ii0 + (oi_hi - 1) >= p.W) --oi_hi;
            if (oi_hi > oi) {
              std::memcpy(dst + oi, src_row + ii0 + oi,
                          sizeof(float) *
                              static_cast<std::size_t>(oi_hi - oi));
            }
            for (oi = oi_hi; oi < Q; ++oi) dst[oi] = 0.0f;
          } else {
            for (int oi = 0; oi < Q; ++oi) {
              const int ii = p.str * oi + s - p.pad;
              dst[oi] = (ii < 0 || ii >= p.W) ? 0.0f : src_row[ii];
            }
          }
        }
      }
    }
  }
}

Tensor im2col_conv_nchw(const Tensor& input, const Tensor& filter,
                        const ConvParams& p, const Im2colOptions* opts) {
  assert(p.valid());
  assert(input.layout() == Layout::NCHW && filter.layout() == Layout::KCRS);
  static const Im2colOptions default_opts{};
  const Im2colOptions& o = opts != nullptr ? *opts : default_opts;

  const int P = p.P(), Q = p.Q();
  const std::int64_t gemm_k = std::int64_t{p.C} * p.R * p.S;
  const std::int64_t gemm_n = std::int64_t{P} * Q;
  Tensor out = make_output_nchw(p.N, p.K, P, Q);

  GemmContext gemm_ctx = o.gemm;
  gemm_ctx.phase_timer = o.phase_timer;

  const bool identity = im2col_is_identity(p);
  AlignedBuffer<float> col;
  if (!identity) {
    col.reset(static_cast<std::size_t>(gemm_k * gemm_n));
  }

  for (int n = 0; n < p.N; ++n) {
    const float* image =
        input.data() + static_cast<std::int64_t>(n) * p.C * p.H * p.W;
    const float* b = image;
    if (!identity) {
      WallTimer t;
      im2col_nchw(image, p, col.data());
      if (o.phase_timer != nullptr) o.phase_timer->add("im2col", t.seconds());
      b = col.data();
    }
    float* c = out.data() + static_cast<std::int64_t>(n) * p.K * gemm_n;
    // filter viewed as the [K, C*R*S] matrix (KCRS is already row-major
    // in exactly that order).
    sgemm(p.K, gemm_n, gemm_k, filter.data(), gemm_k, b, gemm_n, c, gemm_n,
          /*accumulate=*/false, &gemm_ctx);
  }
  return out;
}

}  // namespace ndirect
