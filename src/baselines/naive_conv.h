// Algorithm 1 of the paper: the naive seven-loop direct convolution.
// This is the correctness oracle every optimized implementation is
// tested against. Accumulation is done in double to give a tight
// reference for FP32 error bounds.
#pragma once

#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace ndirect {

/// input NCHW [N,C,H,W], filter KCRS [K,C,R,S] -> output NCHW [N,K,P,Q].
Tensor naive_conv_nchw(const Tensor& input, const Tensor& filter,
                       const ConvParams& p);

/// input NHWC [N,H,W,C], filter KRSC [K,R,S,C] -> output NHWC [N,P,Q,K].
Tensor naive_conv_nhwc(const Tensor& input, const Tensor& filter,
                       const ConvParams& p);

}  // namespace ndirect
