// ACL-style direct convolution baseline.
//
// Reproduces the behaviour the paper criticizes in Section 3.2: the ARM
// Compute Library's direct convolution parallelizes only the K (output
// channel) dimension, ignoring batch size and input shape, so multi-batch
// work accumulates linearly per thread and utilization collapses (~5% of
// peak on Phytium 2000+ in the paper). The inner loop is still SIMD
// (vectorized over output width), so the gap measured against it comes
// from the parallelization strategy, not from scalar code.
#pragma once

#include "runtime/thread_pool.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace ndirect {

/// input NCHW, filter KCRS -> output NCHW. Parallel over K only.
Tensor acl_direct_conv_nchw(const Tensor& input, const Tensor& filter,
                            const ConvParams& p,
                            ThreadPool* pool = nullptr);

}  // namespace ndirect
