// XNNPACK-style indirect convolution baseline (Dukhan, arXiv:1907.02129).
//
// Works on NHWC activations. Instead of materializing an im2col matrix,
// an *indirection buffer* of input-row pointers is built: for each output
// position, R*S pointers to the C-contiguous input rows the kernel window
// touches (out-of-bounds rows point at a shared zero row). The GEMM-shaped
// micro-kernel then walks pointers instead of a packed matrix, which
// removes the im2col transform and its memory traffic while keeping the
// GEMM inner loop. Filters are prepacked to [R*S, C, K-blocks] once
// (weight prep, done ahead of time as XNNPACK does at operator setup).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/aligned_buffer.h"
#include "runtime/thread_pool.h"
#include "runtime/timer.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace ndirect {

/// Precomputed state reusable across runs with the same shape
/// (XNNPACK's "operator" concept).
class IndirectConvOperator {
 public:
  /// `filter` is KRSC. Builds the packed weights and the indirection
  /// pattern for the given shape.
  IndirectConvOperator(const Tensor& filter, const ConvParams& p);

  /// input NHWC [N,H,W,C] -> output NHWC [N,P,Q,K].
  Tensor run(const Tensor& input, ThreadPool* pool = nullptr,
             PhaseTimer* phase_timer = nullptr) const;

  const ConvParams& params() const { return params_; }

  /// Output positions per micro-kernel tile / K channels per tile.
  static constexpr int kMR = 6;
  static constexpr int kNR = 8;

 private:
  ConvParams params_;
  // Packed filter: [R*S][C][ceil(K/NR)*NR], K zero-padded.
  AlignedBuffer<float> packed_filter_;
  std::int64_t k_padded_ = 0;
  // Indirection offsets for one image, in elements relative to the image
  // base: entry [(oj*Q + oi)*R*S + (r*S + s)] = offset of input row
  // (ij, ii) or -1 for a padding row. Stored as offsets (not raw
  // pointers) so one table serves every image in the batch.
  std::vector<std::int64_t> indirection_;
  AlignedBuffer<float> zero_row_;
};

struct IndirectOptions {
  ThreadPool* pool = nullptr;
  PhaseTimer* phase_timer = nullptr;
};

/// Framework-layout convenience wrapper: NCHW/KCRS in, NCHW out (layout
/// conversions timed as "transform" when a phase timer is given).
Tensor indirect_conv_nchw(const Tensor& input, const Tensor& filter,
                          const ConvParams& p,
                          const IndirectOptions* opts = nullptr);

}  // namespace ndirect
