#include "baselines/indirect_conv.h"

#include <cassert>

#include "simd/vec128.h"
#include "tensor/transforms.h"

namespace ndirect {
namespace {

// Micro-kernel: mn (<= kMR) output positions x kNR output channels.
// ptrs[m*RS + rs] = C-contiguous input row for position m, window cell rs.
// packed filter rows: [rs][c][k_padded], k-slice at column k0.
void indirect_microkernel(int mn, int rs_count, int C,
                          const float* const* ptrs,
                          const float* packed_filter,
                          std::int64_t k_padded, std::int64_t k0,
                          float* out, std::int64_t ldo, int kn) {
  constexpr int kMR = IndirectConvOperator::kMR;
  vec128f acc[kMR][2];
  for (int m = 0; m < kMR; ++m) acc[m][0] = acc[m][1] = vzero();

  for (int rs = 0; rs < rs_count; ++rs) {
    const float* fbase =
        packed_filter + static_cast<std::int64_t>(rs) * C * k_padded + k0;
    for (int c = 0; c < C; ++c) {
      const vec128f f0 = vload(fbase + 0);
      const vec128f f1 = vload(fbase + 4);
      fbase += k_padded;
      for (int m = 0; m < mn; ++m) {
        const vec128f x = vdup(ptrs[m * rs_count + rs][c]);
        acc[m][0] = vfma(acc[m][0], x, f0);
        acc[m][1] = vfma(acc[m][1], x, f1);
      }
    }
  }

  if (kn == IndirectConvOperator::kNR) {
    for (int m = 0; m < mn; ++m) {
      vstore(out + m * ldo + 0, acc[m][0]);
      vstore(out + m * ldo + 4, acc[m][1]);
    }
  } else {
    float tmp[IndirectConvOperator::kNR];
    for (int m = 0; m < mn; ++m) {
      vstore(tmp + 0, acc[m][0]);
      vstore(tmp + 4, acc[m][1]);
      for (int j = 0; j < kn; ++j) out[m * ldo + j] = tmp[j];
    }
  }
}

}  // namespace

IndirectConvOperator::IndirectConvOperator(const Tensor& filter,
                                           const ConvParams& p)
    : params_(p) {
  assert(filter.layout() == Layout::KRSC && filter.rank() == 4);
  assert(filter.dim(0) == p.K && filter.dim(1) == p.R &&
         filter.dim(2) == p.S && filter.dim(3) == p.C);

  k_padded_ = (p.K + kNR - 1) / kNR * kNR;
  const std::int64_t rs = std::int64_t{p.R} * p.S;
  packed_filter_.reset(static_cast<std::size_t>(rs * p.C * k_padded_));
  packed_filter_.fill_zero();
  // KRSC -> [rs][c][k]: transposes K to the innermost (vectorized) dim.
  for (int k = 0; k < p.K; ++k)
    for (int r = 0; r < p.R; ++r)
      for (int s = 0; s < p.S; ++s)
        for (int c = 0; c < p.C; ++c) {
          packed_filter_[static_cast<std::size_t>(
              ((std::int64_t{r} * p.S + s) * p.C + c) * k_padded_ + k)] =
              filter.at4(k, r, s, c);
        }

  const int P = p.P(), Q = p.Q();
  indirection_.resize(static_cast<std::size_t>(std::int64_t{P} * Q * rs));
  std::size_t idx = 0;
  for (int oj = 0; oj < P; ++oj)
    for (int oi = 0; oi < Q; ++oi)
      for (int r = 0; r < p.R; ++r)
        for (int s = 0; s < p.S; ++s) {
          const int ij = p.str * oj + r - p.pad;
          const int ii = p.str * oi + s - p.pad;
          const bool oob = ij < 0 || ij >= p.H || ii < 0 || ii >= p.W;
          indirection_[idx++] =
              oob ? -1
                  : (std::int64_t{ij} * p.W + ii) * p.C;
        }

  zero_row_.reset(static_cast<std::size_t>(p.C));
  zero_row_.fill_zero();
}

Tensor IndirectConvOperator::run(const Tensor& input, ThreadPool* pool,
                                 PhaseTimer* phase_timer) const {
  const ConvParams& p = params_;
  assert(input.layout() == Layout::NHWC);
  assert(input.dim(0) == p.N && input.dim(1) == p.H &&
         input.dim(2) == p.W && input.dim(3) == p.C);
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();

  const int P = p.P(), Q = p.Q();
  const std::int64_t rs = std::int64_t{p.R} * p.S;
  const std::int64_t positions = std::int64_t{P} * Q;
  Tensor out = make_output_nhwc(p.N, P, Q, p.K);

  WallTimer t;
  // Parallel over (n, position-tile). Each task materializes the pointer
  // rows for its tile from the shared offset table.
  const std::int64_t m_tiles = (positions + kMR - 1) / kMR;
  const std::int64_t work = p.N * m_tiles;
  tp.parallel_for(
      static_cast<std::size_t>(work),
      [&](std::size_t begin, std::size_t end) {
        const float* ptrs[kMR * 64];  // kMR rows x up to 8x8 window
        assert(rs <= 64);
        for (std::size_t item = begin; item < end; ++item) {
          const std::int64_t tile = static_cast<std::int64_t>(item) % m_tiles;
          const std::int64_t n = static_cast<std::int64_t>(item) / m_tiles;
          const float* image =
              input.data() + n * std::int64_t{p.H} * p.W * p.C;
          const std::int64_t pos0 = tile * kMR;
          const int mn =
              static_cast<int>(std::min<std::int64_t>(kMR, positions - pos0));
          for (int m = 0; m < mn; ++m) {
            const std::int64_t* offs =
                indirection_.data() + (pos0 + m) * rs;
            for (std::int64_t j = 0; j < rs; ++j) {
              ptrs[m * rs + j] =
                  offs[j] < 0 ? zero_row_.data() : image + offs[j];
            }
          }
          float* out_base =
              out.data() + (n * positions + pos0) * p.K;
          for (std::int64_t k0 = 0; k0 < p.K; k0 += kNR) {
            const int kn =
                static_cast<int>(std::min<std::int64_t>(kNR, p.K - k0));
            indirect_microkernel(mn, static_cast<int>(rs), p.C, ptrs,
                                 packed_filter_.data(), k_padded_, k0,
                                 out_base + k0, p.K, kn);
          }
        }
      });
  if (phase_timer != nullptr) phase_timer->add("micro-kernel", t.seconds());
  return out;
}

Tensor indirect_conv_nchw(const Tensor& input, const Tensor& filter,
                          const ConvParams& p, const IndirectOptions* opts) {
  static const IndirectOptions default_opts{};
  const IndirectOptions& o = opts != nullptr ? *opts : default_opts;

  WallTimer t;
  const Tensor in_nhwc = nchw_to_nhwc(input);
  const Tensor flt_krsc = kcrs_to_krsc(filter);
  IndirectConvOperator op(flt_krsc, p);
  if (o.phase_timer != nullptr) o.phase_timer->add("transform", t.seconds());

  Tensor out_nhwc = op.run(in_nhwc, o.pool, o.phase_timer);

  WallTimer t2;
  Tensor out = nhwc_to_nchw(out_nhwc);
  if (o.phase_timer != nullptr)
    o.phase_timer->add("transform", t2.seconds());
  return out;
}

}  // namespace ndirect
