#include "baselines/acl_direct.h"

#include <cassert>

#include "simd/vec128.h"

namespace ndirect {
namespace {

// Compute output row (n, k, oj) for stride-1 interior columns with SIMD
// over 4 output positions; borders and strided cases fall back to scalar.
void conv_row(const float* image, const float* kflt, float* out_row,
              const ConvParams& p, int oj) {
  const int Q = p.Q();
  const std::int64_t hw = std::int64_t{p.H} * p.W;

  auto scalar_at = [&](int oi) {
    float sum = 0.0f;
    for (int c = 0; c < p.C; ++c) {
      const float* chan = image + c * hw;
      const float* frow = kflt + std::int64_t{c} * p.R * p.S;
      for (int r = 0; r < p.R; ++r) {
        const int ij = p.str * oj + r - p.pad;
        if (ij < 0 || ij >= p.H) continue;
        for (int s = 0; s < p.S; ++s) {
          const int ii = p.str * oi + s - p.pad;
          if (ii < 0 || ii >= p.W) continue;
          sum += chan[std::int64_t{ij} * p.W + ii] * frow[r * p.S + s];
        }
      }
    }
    return sum;
  };

  if (p.str != 1) {
    for (int oi = 0; oi < Q; ++oi) out_row[oi] = scalar_at(oi);
    return;
  }

  // Stride 1: columns [lo, hi) read no horizontally padded element.
  const int lo = p.pad;
  const int hi = std::max(lo, std::min(Q, p.W - p.S + 1 + p.pad));
  for (int oi = 0; oi < lo; ++oi) out_row[oi] = scalar_at(oi);
  int oi = lo;
  for (; oi + 4 <= hi; oi += 4) {
    vec128f acc = vzero();
    for (int c = 0; c < p.C; ++c) {
      const float* chan = image + c * hw;
      const float* frow = kflt + std::int64_t{c} * p.R * p.S;
      for (int r = 0; r < p.R; ++r) {
        const int ij = oj + r - p.pad;
        if (ij < 0 || ij >= p.H) continue;
        const float* in_row = chan + std::int64_t{ij} * p.W - p.pad;
        for (int s = 0; s < p.S; ++s) {
          acc = vfma(acc, vload(in_row + oi + s), vdup(frow[r * p.S + s]));
        }
      }
    }
    vstore(out_row + oi, acc);
  }
  for (; oi < Q; ++oi) out_row[oi] = scalar_at(oi);
}

}  // namespace

Tensor acl_direct_conv_nchw(const Tensor& input, const Tensor& filter,
                            const ConvParams& p, ThreadPool* pool) {
  assert(p.valid());
  assert(input.layout() == Layout::NCHW && filter.layout() == Layout::KCRS);
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();

  const int P = p.P(), Q = p.Q();
  Tensor out = make_output_nchw(p.N, p.K, P, Q);

  // The criticized strategy: threads split K; N and H stay sequential
  // inside every thread.
  tp.parallel_for(
      static_cast<std::size_t>(p.K),
      [&](std::size_t k_begin, std::size_t k_end) {
        for (std::size_t k = k_begin; k < k_end; ++k) {
          const float* kflt =
              filter.data() + static_cast<std::int64_t>(k) * p.C * p.R * p.S;
          for (int n = 0; n < p.N; ++n) {
            const float* image =
                input.data() + std::int64_t{n} * p.C * p.H * p.W;
            float* out_plane =
                out.data() +
                (std::int64_t{n} * p.K + static_cast<std::int64_t>(k)) * P *
                    Q;
            for (int oj = 0; oj < P; ++oj) {
              conv_row(image, kflt, out_plane + std::int64_t{oj} * Q, p, oj);
            }
          }
        }
      });
  return out;
}

}  // namespace ndirect
