// LIBXSMM-style direct convolution baseline.
//
// Reproduces the approach of Georganas et al. (SC'18) / LIBXSMM:
//  * blocked activation layout NCHWc (c = SIMD-width channels innermost),
//  * blocked filter layout KCRSck,
//  * a batch-reduce-GEMM-shaped micro-kernel that accumulates a small
//    [w_tile x k_block] register tile over (C-block, R, S),
//  * explicit data-layout transform performed before the convolution
//    (the paper times this stage separately in Fig. 1a and excludes it
//    from the Fig. 4 numbers, which we mirror via PhaseTimer).
//
// The register tile is deliberately the small-GEMM shape LIBXSMM's JIT
// emits for 128-bit ISAs (6 x 4 here) rather than nDirect's 12 x 8; the
// resulting lower arithmetic intensity is exactly the performance gap the
// paper attributes to LIBXSMM (Section 3.2, opportunity #2).
#pragma once

#include "runtime/thread_pool.h"
#include "runtime/timer.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace ndirect {

struct NchwcConvConfig {
  int c_block = 4;  ///< input-channel SIMD blocking (one 128-bit vector)
  int k_block = 4;  ///< output-channel SIMD blocking (one 128-bit vector)
  int w_tile = 6;   ///< output positions per micro-kernel call
};

/// NCHW activations -> zero-padded NCHWc. Padding is folded into the
/// layout transform (LIBXSMM requires physically padded inputs).
Tensor nchwc_transform_input(const Tensor& input, const ConvParams& p,
                             int c_block);

/// KCRS filters -> KCRSck.
Tensor nchwc_transform_filter(const Tensor& filter, const ConvParams& p,
                              int c_block, int k_block);

/// Convolve blocked tensors: input [N, CB, Hp, Wp, c] (already padded),
/// filter [KB, CB, R, S, c, k] -> output [N, KB, P, Q, k].
Tensor nchwc_conv_blocked(const Tensor& input, const Tensor& filter,
                          const ConvParams& p, const NchwcConvConfig& cfg,
                          ThreadPool* pool = nullptr);

struct NchwcOptions {
  NchwcConvConfig cfg{};
  ThreadPool* pool = nullptr;
  PhaseTimer* phase_timer = nullptr;  ///< "transform" + "micro-kernel"
};

/// Framework-layout convenience wrapper: NCHW/KCRS in, NCHW out, with the
/// format conversions executed (and separately timed) inside.
Tensor nchwc_conv_nchw(const Tensor& input, const Tensor& filter,
                       const ConvParams& p,
                       const NchwcOptions* opts = nullptr);

}  // namespace ndirect
