// The im2col+GEMM convolution baseline (MXNet/Caffe convention):
// for each image, the input patch tensor is flattened into a
// [C*R*S, P*Q] column matrix and multiplied by the [K, C*R*S] filter
// matrix using the Goto SGEMM. 1x1 stride-1 unpadded convolutions skip
// the im2col stage entirely (they are already GEMM-shaped), matching the
// paper's observation about ResNet layers 19-20.
#pragma once

#include "gemm/gemm.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace ndirect {

/// Expand one image (C x H x W floats at `image`) into the column matrix
/// `col` of shape [C*R*S, P*Q] (row-major), inserting zeros for padding.
void im2col_nchw(const float* image, const ConvParams& p, float* col);

/// Whether the im2col stage can be skipped (input already GEMM-shaped).
inline bool im2col_is_identity(const ConvParams& p) {
  return p.R == 1 && p.S == 1 && p.str == 1 && p.pad == 0;
}

struct Im2colOptions {
  GemmContext gemm{};               ///< blocking/pool for the SGEMM
  PhaseTimer* phase_timer = nullptr;  ///< adds "im2col" + GEMM phases
};

/// input NCHW, filter KCRS -> output NCHW.
Tensor im2col_conv_nchw(const Tensor& input, const Tensor& filter,
                        const ConvParams& p,
                        const Im2colOptions* opts = nullptr);

}  // namespace ndirect
