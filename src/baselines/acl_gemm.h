// ACL_GEMM baseline (the sixth method in the paper's Fig. 1b).
//
// The ARM Compute Library's GEMM-based convolution: the same
// im2col lowering as the MXNet/OpenBLAS pipeline, but driven by a
// library-generic GEMM (no operand packing, no Goto register tile),
// parallelized over output rows. It sits between ACL_DIRECT and
// im2col+OpenBLAS in the paper's motivation figure.
#pragma once

#include "runtime/thread_pool.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace ndirect {

/// input NCHW, filter KCRS -> output NCHW.
Tensor acl_gemm_conv_nchw(const Tensor& input, const Tensor& filter,
                          const ConvParams& p, ThreadPool* pool = nullptr);

}  // namespace ndirect
