#include "baselines/acl_gemm.h"

#include <cassert>

#include "baselines/im2col_conv.h"
#include "gemm/gemm.h"
#include "runtime/aligned_buffer.h"
#include "runtime/partition.h"

namespace ndirect {

Tensor acl_gemm_conv_nchw(const Tensor& input, const Tensor& filter,
                          const ConvParams& p, ThreadPool* pool) {
  assert(p.valid());
  assert(input.layout() == Layout::NCHW && filter.layout() == Layout::KCRS);
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();

  const int P = p.P(), Q = p.Q();
  const std::int64_t gemm_k = std::int64_t{p.C} * p.R * p.S;
  const std::int64_t gemm_n = std::int64_t{P} * Q;
  Tensor out = make_output_nchw(p.N, p.K, P, Q);
  const bool identity = im2col_is_identity(p);

  AlignedBuffer<float> col;
  if (!identity) col.reset(static_cast<std::size_t>(gemm_k * gemm_n));

  for (int n = 0; n < p.N; ++n) {
    const float* image =
        input.data() + static_cast<std::int64_t>(n) * p.C * p.H * p.W;
    const float* b = image;
    if (!identity) {
      im2col_nchw(image, p, col.data());
      b = col.data();
    }
    float* c = out.data() + static_cast<std::int64_t>(n) * p.K * gemm_n;
    // Parallel over output-channel row strips, simple GEMM per strip.
    tp.parallel_for(
        static_cast<std::size_t>(p.K),
        [&](std::size_t k_begin, std::size_t k_end) {
          const std::int64_t rows =
              static_cast<std::int64_t>(k_end - k_begin);
          sgemm_simple(rows, gemm_n, gemm_k,
                       filter.data() +
                           static_cast<std::int64_t>(k_begin) * gemm_k,
                       gemm_k, b, gemm_n,
                       c + static_cast<std::int64_t>(k_begin) * gemm_n,
                       gemm_n);
        });
  }
  return out;
}

}  // namespace ndirect
