#include "baselines/naive_conv.h"

#include <cassert>

namespace ndirect {

Tensor naive_conv_nchw(const Tensor& input, const Tensor& filter,
                       const ConvParams& p) {
  assert(p.valid());
  assert(input.layout() == Layout::NCHW);
  assert(filter.layout() == Layout::KCRS);
  assert(input.dim(0) == p.N && input.dim(1) == p.C &&
         input.dim(2) == p.H && input.dim(3) == p.W);
  assert(filter.dim(0) == p.K && filter.dim(1) == p.C &&
         filter.dim(2) == p.R && filter.dim(3) == p.S);

  const int P = p.P(), Q = p.Q();
  Tensor out = make_output_nchw(p.N, p.K, P, Q);
  for (int n = 0; n < p.N; ++n) {
    for (int k = 0; k < p.K; ++k) {
      for (int oj = 0; oj < P; ++oj) {
        for (int oi = 0; oi < Q; ++oi) {
          double sum = 0.0;
          for (int c = 0; c < p.C; ++c) {
            for (int r = 0; r < p.R; ++r) {
              const int ij = p.str * oj + r - p.pad;
              if (ij < 0 || ij >= p.H) continue;
              for (int s = 0; s < p.S; ++s) {
                const int ii = p.str * oi + s - p.pad;
                if (ii < 0 || ii >= p.W) continue;
                sum += static_cast<double>(input.at4(n, c, ij, ii)) *
                       static_cast<double>(filter.at4(k, c, r, s));
              }
            }
          }
          out.at4(n, k, oj, oi) = static_cast<float>(sum);
        }
      }
    }
  }
  return out;
}

Tensor naive_conv_nhwc(const Tensor& input, const Tensor& filter,
                       const ConvParams& p) {
  assert(p.valid());
  assert(input.layout() == Layout::NHWC);
  assert(filter.layout() == Layout::KRSC);

  const int P = p.P(), Q = p.Q();
  Tensor out = make_output_nhwc(p.N, P, Q, p.K);
  for (int n = 0; n < p.N; ++n) {
    for (int oj = 0; oj < P; ++oj) {
      for (int oi = 0; oi < Q; ++oi) {
        for (int k = 0; k < p.K; ++k) {
          double sum = 0.0;
          for (int r = 0; r < p.R; ++r) {
            const int ij = p.str * oj + r - p.pad;
            if (ij < 0 || ij >= p.H) continue;
            for (int s = 0; s < p.S; ++s) {
              const int ii = p.str * oi + s - p.pad;
              if (ii < 0 || ii >= p.W) continue;
              for (int c = 0; c < p.C; ++c) {
                sum += static_cast<double>(input.at4(n, ij, ii, c)) *
                       static_cast<double>(filter.at4(k, r, s, c));
              }
            }
          }
          out.at4(n, oj, oi, k) = static_cast<float>(sum);
        }
      }
    }
  }
  return out;
}

}  // namespace ndirect
