#include "baselines/nchwc_conv.h"

#include <cassert>

#include "simd/vec128.h"
#include "tensor/transforms.h"

namespace ndirect {
namespace {

// Accumulate one [wn x k_block] tile of output row `oj` starting at
// output column `q0`, reading the padded blocked input. wn <= cfg.w_tile.
// This is the BRGEMM: a batch of CB*R*S tiny (wn x c) x (c x k) GEMMs
// reduced into the same register tile.
void brgemm_tile(const float* in, const float* flt, float* out_row,
                 const ConvParams& p, const NchwcConvConfig& cfg, int CB,
                 int Wp, int q0, int wn, int oj) {
  constexpr int kMaxWTile = 16;
  assert(cfg.k_block == 4 && cfg.c_block == 4);
  assert(wn <= kMaxWTile);
  vec128f acc[kMaxWTile];
  for (int w = 0; w < wn; ++w) acc[w] = vzero();

  const std::int64_t in_row_stride = std::int64_t{Wp} * cfg.c_block;
  for (int cb = 0; cb < CB; ++cb) {
    const float* in_block =
        in + static_cast<std::int64_t>(cb) * (p.H + 2 * p.pad) * in_row_stride;
    const float* f_block = flt + static_cast<std::int64_t>(cb) * p.R * p.S *
                                     cfg.c_block * cfg.k_block;
    for (int r = 0; r < p.R; ++r) {
      const float* in_row =
          in_block + (std::int64_t{oj} * p.str + r) * in_row_stride;
      for (int s = 0; s < p.S; ++s) {
        const float* f =
            f_block + (static_cast<std::int64_t>(r) * p.S + s) *
                          cfg.c_block * cfg.k_block;
        // Sequential loads, as LIBXSMM's generated code arranges them:
        // all filter vectors first, then per-position input vectors.
        const vec128f f0 = vload(f + 0);
        const vec128f f1 = vload(f + 4);
        const vec128f f2 = vload(f + 8);
        const vec128f f3 = vload(f + 12);
        for (int w = 0; w < wn; ++w) {
          const std::int64_t ii =
              (std::int64_t{q0} + w) * p.str + s;
          const vec128f x = vload(in_row + ii * cfg.c_block);
          acc[w] = vfma_lane<0>(acc[w], x, f0);
          acc[w] = vfma_lane<1>(acc[w], x, f1);
          acc[w] = vfma_lane<2>(acc[w], x, f2);
          acc[w] = vfma_lane<3>(acc[w], x, f3);
        }
      }
    }
  }
  for (int w = 0; w < wn; ++w) {
    vstore(out_row + (std::int64_t{q0} + w) * cfg.k_block, acc[w]);
  }
}

}  // namespace

Tensor nchwc_transform_input(const Tensor& input, const ConvParams& p,
                             int c_block) {
  assert(input.layout() == Layout::NCHW);
  const int Hp = p.H + 2 * p.pad, Wp = p.W + 2 * p.pad;
  const std::int64_t CB = (p.C + c_block - 1) / c_block;
  Tensor out({p.N, CB, Hp, Wp, c_block}, Layout::NCHWc);
  out.fill_zero();
  float* dst = out.data();
  const float* src = input.data();
  for (int n = 0; n < p.N; ++n)
    for (int c = 0; c < p.C; ++c) {
      const std::int64_t cb = c / c_block, ci = c % c_block;
      for (int h = 0; h < p.H; ++h) {
        const float* src_row =
            src + ((static_cast<std::int64_t>(n) * p.C + c) * p.H + h) * p.W;
        float* dst_row =
            dst + (((static_cast<std::int64_t>(n) * CB + cb) * Hp +
                    (h + p.pad)) *
                       Wp +
                   p.pad) *
                      c_block +
            ci;
        for (int w = 0; w < p.W; ++w) dst_row[w * c_block] = src_row[w];
      }
    }
  return out;
}

Tensor nchwc_transform_filter(const Tensor& filter, const ConvParams& p,
                              int c_block, int k_block) {
  (void)p;
  return kcrs_to_kcrsck(filter, c_block, k_block);
}

Tensor nchwc_conv_blocked(const Tensor& input, const Tensor& filter,
                          const ConvParams& p, const NchwcConvConfig& cfg,
                          ThreadPool* pool) {
  assert(input.layout() == Layout::NCHWc && input.rank() == 5);
  assert(filter.layout() == Layout::KCRSck && filter.rank() == 6);
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();

  const int P = p.P(), Q = p.Q();
  const std::int64_t CB = input.dim(1);
  const std::int64_t KB = filter.dim(0);
  const int Wp = p.W + 2 * p.pad;
  Tensor out({p.N, KB, P, Q, cfg.k_block}, Layout::NCHWc);

  const std::int64_t in_image_stride =
      CB * (p.H + 2 * p.pad) * std::int64_t{Wp} * cfg.c_block;
  const std::int64_t flt_block_stride =
      CB * p.R * p.S * cfg.c_block * cfg.k_block;
  const std::int64_t out_row_stride = std::int64_t{Q} * cfg.k_block;

  // LIBXSMM parallelizes over the (n, kb, oj) loop nest.
  const std::int64_t work = std::int64_t{p.N} * KB * P;
  tp.parallel_for(
      static_cast<std::size_t>(work),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t item = begin; item < end; ++item) {
          const std::int64_t oj = static_cast<std::int64_t>(item) % P;
          const std::int64_t kb = (static_cast<std::int64_t>(item) / P) % KB;
          const std::int64_t n = static_cast<std::int64_t>(item) / (P * KB);
          const float* in = input.data() + n * in_image_stride;
          const float* flt = filter.data() + kb * flt_block_stride;
          float* out_row = out.data() + ((n * KB + kb) * P + oj) *
                                            out_row_stride;
          int q0 = 0;
          for (; q0 + cfg.w_tile <= Q; q0 += cfg.w_tile) {
            brgemm_tile(in, flt, out_row, p, cfg, static_cast<int>(CB), Wp,
                        q0, cfg.w_tile, static_cast<int>(oj));
          }
          if (q0 < Q) {
            brgemm_tile(in, flt, out_row, p, cfg, static_cast<int>(CB), Wp,
                        q0, Q - q0, static_cast<int>(oj));
          }
        }
      });
  return out;
}

Tensor nchwc_conv_nchw(const Tensor& input, const Tensor& filter,
                       const ConvParams& p, const NchwcOptions* opts) {
  static const NchwcOptions default_opts{};
  const NchwcOptions& o = opts != nullptr ? *opts : default_opts;

  Tensor in_blocked, flt_blocked;
  {
    WallTimer t;
    in_blocked = nchwc_transform_input(input, p, o.cfg.c_block);
    flt_blocked =
        nchwc_transform_filter(filter, p, o.cfg.c_block, o.cfg.k_block);
    if (o.phase_timer != nullptr)
      o.phase_timer->add("transform", t.seconds());
  }
  Tensor out_blocked;
  {
    WallTimer t;
    out_blocked = nchwc_conv_blocked(in_blocked, flt_blocked, p, o.cfg,
                                     o.pool);
    if (o.phase_timer != nullptr)
      o.phase_timer->add("micro-kernel", t.seconds());
  }
  WallTimer t;
  Tensor out = nchwc_to_nchw(out_blocked, p.K);
  if (o.phase_timer != nullptr) o.phase_timer->add("transform", t.seconds());
  return out;
}

}  // namespace ndirect
