// Process-wide metrics registry: lock-free instruments with an
// OpenMetrics text exposition (DESIGN.md §16).
//
// The registry is the *live* complement to the per-run telemetry
// snapshots (runtime/telemetry.h): counters, gauges and log-bucketed
// latency histograms that are registered once by (name, labels) and
// then written from hot paths with relaxed atomic ops on cache-line-
// padded slots — no locks, no allocation, no line bouncing between
// unrelated instruments. Registration (get-or-create under one mutex)
// is the cold path; call sites cache the returned handle.
//
// Exposition: text() renders the whole registry in the OpenMetrics /
// Prometheus text format on demand. Three surfaces consume it:
//   * NDIRECT_METRICS_FILE=<path> starts a background dump thread at
//     load time that rewrites <path> every NDIRECT_METRICS_INTERVAL_MS
//     (default 1000) — point any file-tailing scraper at it;
//   * serve::Server::metrics_text() returns it on request;
//   * SIGUSR2 triggers a flight record: an immediate metrics dump plus
//     a flush of the chrome-trace ring (runtime/trace.h) when tracing.
// Shutdown ordering is owned by runtime/shutdown.h, not static
// destructors: the dump thread joins before the trace exporter runs.
//
// Histograms are HDR-style log-bucketed: each power-of-two octave is
// split into kSubBuckets linear sub-buckets, so relative bucket width
// is bounded (~1/kSubBuckets) across the whole range and quantile
// queries are exact to within one bucket. Values above the top octave
// land in a saturating overflow bucket; counts are conserved exactly
// under any number of concurrent writers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/aligned_buffer.h"

namespace ndirect {

/// One key="value" pair on an instrument. Ordered; two instruments
/// with the same name and equal label vectors are the same instrument.
struct MetricLabel {
  std::string key;
  std::string value;
};
using MetricLabels = std::vector<MetricLabel>;

/// Log-bucketed histogram layout, shared by the lock-free instrument
/// and the plain snapshot. HDR-style: values below kSubBuckets get one
/// unit-width bucket each; every power-of-two octave [2^m, 2^(m+1))
/// with m >= log2(kSubBuckets) is split into kSubBuckets equal
/// sub-buckets of width 2^(m - kSubBucketBits), so the relative bucket
/// width is bounded by 1/kSubBuckets (12.5%) across the whole range.
/// Values past the top octave land in one saturating overflow bucket.
/// With nanosecond values the covered range is [0, 16 << 39) ≈ 2.4 h.
struct HistogramLayout {
  static constexpr int kSubBucketBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 40;  ///< sub-divided octaves (shifts)
  static constexpr int kBuckets = (kOctaves + 1) * kSubBuckets + 1;
  static constexpr int kOverflowBucket = kBuckets - 1;

  /// Bucket index for `v`.
  static int bucket_of(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<int>(v);
    const int msb = 63 - __builtin_clzll(v);
    const int shift = msb - kSubBucketBits;  ///< sub-bucket width log2
    if (shift >= kOctaves) return kOverflowBucket;
    // v >> shift is in [kSubBuckets, 2*kSubBuckets).
    return (shift + 1) * kSubBuckets +
           static_cast<int>((v >> shift) - kSubBuckets);
  }

  /// Inclusive upper bound of bucket `b` — the largest value the
  /// bucket holds (the OpenMetrics `le` value); UINT64_MAX for the
  /// overflow bucket.
  static std::uint64_t upper_bound(int b) {
    if (b >= kOverflowBucket) return ~std::uint64_t{0};
    if (b < kSubBuckets) return static_cast<std::uint64_t>(b);
    const int shift = b / kSubBuckets - 1;
    const std::uint64_t sub = static_cast<std::uint64_t>(b % kSubBuckets);
    return ((kSubBuckets + sub + 1) << shift) - 1;
  }

  /// Inclusive lower bound of bucket `b`.
  static std::uint64_t lower_bound(int b) {
    if (b <= 0) return 0;
    if (b <= kSubBuckets) return static_cast<std::uint64_t>(b);
    if (b >= kOverflowBucket)
      return (std::uint64_t{2 * kSubBuckets} << (kOctaves - 1));
    return upper_bound(b - 1) + 1;
  }
};

/// Plain (non-atomic) histogram aggregate: what snapshot() returns and
/// what quantile queries and cross-worker merges operate on.
struct HistogramSnapshot {
  std::uint64_t counts[HistogramLayout::kBuckets] = {};
  std::uint64_t count = 0;  ///< total recorded values
  std::uint64_t sum = 0;    ///< sum of recorded values (saturating)

  /// Accumulate `other` into this snapshot (exact: counts and sums add).
  void merge(const HistogramSnapshot& other);

  /// Value at quantile q in [0, 1]: the upper bound of the bucket that
  /// contains the ceil(q * count)-th recorded value (so the answer is
  /// exact to within one bucket width). 0 when empty.
  std::uint64_t quantile(double q) const;
};

/// Monotonic counter. inc() is one relaxed fetch_add.
class CounterCell {
 public:
  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }  ///< test hook

 private:
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> v_{0};
};

/// Gauge: a settable signed level. set()/add() are single relaxed ops.
class GaugeCell {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }  ///< test hook

 private:
  alignas(kCacheLineBytes) std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed latency histogram. record() is two relaxed fetch_adds
/// (bucket, sum) on this cell's own cache lines — multi-writer safe,
/// counts conserved exactly. There is deliberately no separate count
/// atomic: snapshot() derives the count from the bucket totals, so a
/// record() costs one less contended RMW on the serving hot path.
class HistogramCell {
 public:
  void record(std::uint64_t v) {
    buckets_[HistogramLayout::bucket_of(v)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Not linearizable against concurrent record() (a racing write may
  /// be counted in a bucket but not yet in `sum`, or vice versa);
  /// totals are exact once writers quiesce.
  HistogramSnapshot snapshot() const;

  void reset() {  ///< test hook; not safe against concurrent record()
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  alignas(kCacheLineBytes) std::atomic<std::uint64_t>
      buckets_[HistogramLayout::kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
};

/// Registry of named instruments. Registration is get-or-create and
/// idempotent: the same (name, labels) always returns the same cell,
/// whose address is stable for the registry's lifetime (instruments
/// are never removed). Hot paths hold the returned pointer; they never
/// touch the registry again.
class MetricsRegistry {
 public:
  /// The process-wide instance (what the exposition surfaces export).
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  CounterCell* counter(const std::string& name, MetricLabels labels = {},
                       const std::string& help = "");
  GaugeCell* gauge(const std::string& name, MetricLabels labels = {},
                   const std::string& help = "");
  HistogramCell* histogram(const std::string& name,
                           MetricLabels labels = {},
                           const std::string& help = "");

  /// Number of registered instruments (all kinds).
  std::size_t size() const;

  /// The whole registry in the OpenMetrics text exposition format:
  /// one family block per metric name (# HELP / # TYPE, then one
  /// sample line per label set; histograms expand to cumulative
  /// <name>_bucket{le="..."} series plus _count/_sum), terminated by
  /// the required "# EOF" line. Histogram `le` bounds and quantile
  /// queries agree: both use HistogramLayout::upper_bound.
  std::string text() const;

  /// Drop every instrument value back to zero (registration survives;
  /// handles stay valid). Test hook — not for production paths.
  void reset_values();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    std::string name;
    MetricLabels labels;
    std::string help;
    Kind kind;
    std::unique_ptr<CounterCell> counter;
    std::unique_ptr<GaugeCell> gauge;
    std::unique_ptr<HistogramCell> histogram;
  };

  Instrument* find_or_create(const std::string& name,
                             MetricLabels&& labels,
                             const std::string& help, Kind kind);

  mutable std::mutex mu_;  ///< guards instruments_ (cold path only)
  std::vector<std::unique_ptr<Instrument>> instruments_;
};

/// Render one label set as {k1="v1",k2="v2"} with OpenMetrics escaping
/// ("" for an empty set). Exposed for the exposition tests.
std::string format_labels(const MetricLabels& labels);

// ---------------------------------------------------------------------------
// Background exposition: periodic file dumps + SIGUSR2 flight record.
// ---------------------------------------------------------------------------

/// The background dump thread behind NDIRECT_METRICS_FILE. start() is
/// idempotent; stop() joins the thread after one final dump and is
/// safe to call any number of times (including when never started).
/// Shutdown ordering: runtime/shutdown.h runs stop() before the
/// NDIRECT_TRACE atexit export, so the thread never races static
/// destruction (the bug class this replaces).
class MetricsExporter {
 public:
  static MetricsExporter& global();

  /// Begin dumping MetricsRegistry::global().text() to `path` every
  /// `interval_ms` milliseconds (writes are atomic: temp file +
  /// rename). Also installs the SIGUSR2 flight-record handler.
  void start(const std::string& path, long interval_ms = 1000);

  /// Final dump, then join the thread. Idempotent.
  void stop();

  bool running() const;

  /// Write the exposition to the configured path right now (also what
  /// the SIGUSR2 handler schedules). Returns false on I/O failure or
  /// when no path is configured.
  bool dump_now();

  /// The flight record: dump metrics now and, when the global trace
  /// session has events, export the trace ring next to the metrics
  /// file (<path>.trace.json) without stopping the session. Called by
  /// the dump thread when SIGUSR2 was observed; callable directly from
  /// tests.
  void flight_record();

  /// Dumps completed since start() (test/observability hook).
  std::uint64_t dump_count() const;

 private:
  void loop();

  mutable std::mutex mu_;
  std::mutex stop_mu_;  ///< serializes stop() callers
  std::string path_;
  long interval_ms_ = 1000;
  std::thread thread_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::atomic<std::uint64_t> dumps_{0};
};

}  // namespace ndirect
