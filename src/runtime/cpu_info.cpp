#include "runtime/cpu_info.h"

#include <fstream>
#include <thread>

#include <unistd.h>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#endif

namespace ndirect {
namespace {

// Read e.g. "32K" / "2048K" / "1M" from a sysfs cache size file.
std::size_t read_sysfs_cache_size(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::string text;
  in >> text;
  if (text.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
  }
  if (i < text.size()) {
    if (text[i] == 'K' || text[i] == 'k') value *= 1024;
    if (text[i] == 'M' || text[i] == 'm') value *= 1024 * 1024;
  }
  return value;
}

std::string read_sysfs_string(const std::string& path) {
  std::ifstream in(path);
  std::string text;
  if (in) std::getline(in, text);
  return text;
}

// The human CPU model string: "model name" on x86, "Hardware" on many
// ARM kernels (which list per-core implementer/part codes instead).
// Empty when /proc/cpuinfo has neither.
std::string probe_cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line, hardware;
  while (in && std::getline(in, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = line.substr(0, colon);
    while (!key.empty() && (key.back() == ' ' || key.back() == '\t'))
      key.pop_back();
    std::size_t v = colon + 1;
    while (v < line.size() && (line[v] == ' ' || line[v] == '\t')) ++v;
    if (key == "model name") return line.substr(v);
    if (key == "Hardware") hardware = line.substr(v);
  }
  return hardware;
}

}  // namespace

CpuInfo probe_host_cpu() {
  CpuInfo info;
  const unsigned hc = std::thread::hardware_concurrency();
  info.logical_cores = hc == 0 ? 1 : static_cast<int>(hc);
  const std::string model = probe_cpu_model();
  if (!model.empty()) info.name = model;

#if defined(__aarch64__) && defined(__linux__)
  // HWCAP bits per the kernel's arch/arm64/include/uapi/asm/hwcap.h;
  // defined locally so old libc headers don't hide the features.
  constexpr unsigned long kHwcapAsimddp = 1ul << 20;
  constexpr unsigned long kHwcap2I8mm = 1ul << 13;
  info.asimddp = (getauxval(AT_HWCAP) & kHwcapAsimddp) != 0;
  info.i8mm = (getauxval(AT_HWCAP2) & kHwcap2I8mm) != 0;
#endif

#ifdef _SC_LEVEL1_DCACHE_SIZE
  if (long s = sysconf(_SC_LEVEL1_DCACHE_SIZE); s > 0)
    info.cache.l1d = static_cast<std::size_t>(s);
  if (long s = sysconf(_SC_LEVEL2_CACHE_SIZE); s > 0)
    info.cache.l2 = static_cast<std::size_t>(s);
  if (long s = sysconf(_SC_LEVEL3_CACHE_SIZE); s > 0)
    info.cache.l3 = static_cast<std::size_t>(s);
#endif

  // sysfs is more reliable than sysconf on some kernels; prefer it when
  // present. Index layout: index0=L1d, index1=L1i, index2=L2, index3=L3.
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/";
  for (int idx = 0; idx < 6; ++idx) {
    const std::string dir = base + "index" + std::to_string(idx) + "/";
    const std::string level = read_sysfs_string(dir + "level");
    const std::string type = read_sysfs_string(dir + "type");
    const std::size_t size = read_sysfs_cache_size(dir + "size");
    if (size == 0) continue;
    if (level == "1" && (type == "Data" || type == "Unified"))
      info.cache.l1d = size;
    else if (level == "2")
      info.cache.l2 = size;
    else if (level == "3")
      info.cache.l3 = size;
  }
  return info;
}

}  // namespace ndirect
