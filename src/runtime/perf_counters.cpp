#include "runtime/perf_counters.h"

#include <atomic>
#include <cstring>

#include "runtime/env.h"

#if defined(__linux__) && !defined(NDIRECT_PMU_DISABLED)
#define NDIRECT_PMU_LINUX 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define NDIRECT_PMU_LINUX 0
#endif

namespace ndirect {
namespace {

int initial_pmu_mode() {
  if (!kPmuCompiled) return 0;
  const char* v = std::getenv("NDIRECT_PMU");
  if (v == nullptr || *v == '\0') return 1;
  const std::string s(v);
  if (s == "0" || s == "off" || s == "false") return 0;
  if (s == "2" || s == "phase") return 2;
  return 1;
}

std::atomic<int> g_mode{initial_pmu_mode()};

#if NDIRECT_PMU_LINUX

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

EventSpec event_spec(PmuEvent e) {
  switch (e) {
    case PmuEvent::kCycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
    case PmuEvent::kInstructions:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
    case PmuEvent::kL1DMisses:
      return {PERF_TYPE_HW_CACHE,
              PERF_COUNT_HW_CACHE_L1D |
                  (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                  (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)};
    case PmuEvent::kLLCMisses:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES};
    case PmuEvent::kStalledCycles:
      return {PERF_TYPE_HARDWARE,
              PERF_COUNT_HW_STALLED_CYCLES_BACKEND};
  }
  return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
}

int open_event(PmuEvent e, int group_fd) {
  const EventSpec spec = event_spec(e);
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  // User-space only: works at perf_event_paranoid <= 2 without
  // CAP_PERFMON, and keeps the engine's own syscalls (the group reads)
  // out of the counts.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
              group_fd, /*flags=*/0));
}

#endif  // NDIRECT_PMU_LINUX

}  // namespace

const char* pmu_event_name(PmuEvent e) {
  switch (e) {
    case PmuEvent::kCycles: return "cycles";
    case PmuEvent::kInstructions: return "instructions";
    case PmuEvent::kL1DMisses: return "l1d_misses";
    case PmuEvent::kLLCMisses: return "llc_misses";
    case PmuEvent::kStalledCycles: return "stalled_cycles";
  }
  return "unknown";
}

PmuSample pmu_delta(const PmuSample& a, const PmuSample& b) {
  PmuSample d;
  d.valid = a.valid && b.valid;
  if (!d.valid) return d;
  for (int i = 0; i < kPmuEventCount; ++i)
    d.v[i] = b.v[i] >= a.v[i] ? b.v[i] - a.v[i] : 0;
  return d;
}

PmuThreadCounters::~PmuThreadCounters() { close(); }

bool PmuThreadCounters::open() {
#if NDIRECT_PMU_LINUX
  if (open_attempted_) return active();
  open_attempted_ = true;
  const int leader = open_event(PmuEvent::kCycles, -1);
  if (leader < 0) return false;  // null backend: paranoid/EPERM/seccomp
  leader_fd_ = leader;
  fd_[static_cast<int>(PmuEvent::kCycles)] = leader;
  for (int i = 1; i < kPmuEventCount; ++i) {
    // Optional members: an event this kernel/PMU lacks is skipped, not
    // fatal — its delta stays 0 and event_available() says so.
    fd_[i] = open_event(static_cast<PmuEvent>(i), leader);
  }
  for (int i = 0; i < kPmuEventCount; ++i) {
    if (fd_[i] >= 0) ioctl(fd_[i], PERF_EVENT_IOC_ID, &id_[i]);
  }
  ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  // A leader that opened but cannot be read (some hardened kernels) is
  // still a null backend.
  if (!read().valid) {
    close();
    return false;
  }
  return true;
#else
  open_attempted_ = true;
  return false;
#endif
}

void PmuThreadCounters::close() {
#if NDIRECT_PMU_LINUX
  for (int i = 0; i < kPmuEventCount; ++i) {
    if (fd_[i] >= 0) ::close(fd_[i]);
    fd_[i] = -1;
  }
#endif
  leader_fd_ = -1;
}

PmuSample PmuThreadCounters::read() const {
  PmuSample s;
#if NDIRECT_PMU_LINUX
  if (leader_fd_ < 0) return s;
  // PERF_FORMAT_GROUP|ID layout:
  //   u64 nr; u64 time_enabled; u64 time_running; {u64 value; u64 id;}[nr]
  std::uint64_t buf[3 + 2 * kPmuEventCount];
  const ssize_t n = ::read(leader_fd_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return s;
  const std::uint64_t nr = buf[0];
  const std::uint64_t enabled = buf[1], running = buf[2];
  if (3 + 2 * nr > sizeof(buf) / sizeof(buf[0])) return s;
  for (std::uint64_t c = 0; c < nr; ++c) {
    const std::uint64_t value = buf[3 + 2 * c];
    const std::uint64_t id = buf[3 + 2 * c + 1];
    for (int i = 0; i < kPmuEventCount; ++i) {
      if (fd_[i] >= 0 && id_[i] == id) {
        // Multiplex scaling: extrapolate by enabled/running when the
        // kernel time-shared the PMU among groups.
        s.v[i] = running > 0 && running < enabled
                     ? static_cast<std::uint64_t>(
                           static_cast<double>(value) *
                           (static_cast<double>(enabled) /
                            static_cast<double>(running)))
                     : value;
        break;
      }
    }
  }
  s.valid = true;
#endif
  return s;
}

PmuThreadCounters& this_thread_pmu() {
  thread_local PmuThreadCounters counters;
  return counters;
}

int pmu_mode() {
  return kPmuCompiled ? g_mode.load(std::memory_order_relaxed) : 0;
}

void set_pmu_mode(int mode) {
  if (!kPmuCompiled) return;
  g_mode.store(mode < 0 ? 0 : mode > 2 ? 2 : mode,
               std::memory_order_relaxed);
}

bool pmu_available() {
  // Probed once by opening a real group on the first calling thread:
  // availability (paranoid level, seccomp, hardware) is process-wide
  // even though the groups themselves are per thread.
  static const bool available = [] {
    if (!kPmuCompiled) return false;
    PmuThreadCounters probe;
    const bool ok = probe.open();
    probe.close();
    return ok;
  }();
  return available;
}

}  // namespace ndirect
