#include "runtime/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "runtime/env.h"
#include "runtime/shutdown.h"
#include "runtime/telemetry.h"

namespace ndirect {

namespace trace_detail {
std::atomic<bool> g_on{false};
}  // namespace trace_detail

namespace {

// Lane registry: names are cold-path (once per thread / per rename), so
// a mutex is fine; the hot path only reads the cached thread_local id.
// Both statics are intentionally leaked: the registry is first touched
// lazily (after the NDIRECT_TRACE atexit export was registered), so a
// destroyed-in-reverse-order static would be dead by the time the
// at-exit export reads the lane names.
std::mutex& lane_mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}
std::vector<std::string>& lane_names_locked() {
  static std::vector<std::string>* names = new std::vector<std::string>;
  return *names;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    if (static_cast<unsigned char>(ch) < 0x20) continue;
    out += ch;
  }
  return out;
}

// Remove span events orphaned by a session edge. A session started
// mid-span records the 'E' of a 'B' that predates it; one stopped
// mid-span records a 'B' whose 'E' never arrives. Either breaks the
// LIFO nesting trace viewers (and check_trace.py) insist on, so the
// export drops exactly the unmatched halves: an 'E' that does not
// close the innermost open 'B' of its lane, and any 'B' still open at
// the end of the buffer. Matched pairs nested inside a dropped 'B'
// survive — removing only the unmatched enclosing event keeps the
// remaining events properly nested.
void prune_unbalanced_spans(std::vector<TraceEvent>* evs) {
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> open;
  std::vector<char> drop(evs->size(), 0);
  for (std::size_t i = 0; i < evs->size(); ++i) {
    const TraceEvent& ev = (*evs)[i];
    if (ev.ph == 'B') {
      open[ev.tid].push_back(i);
    } else if (ev.ph == 'E') {
      std::vector<std::size_t>& stack = open[ev.tid];
      if (!stack.empty() &&
          std::strcmp((*evs)[stack.back()].name, ev.name) == 0) {
        stack.pop_back();
      } else {
        drop[i] = 1;
      }
    }
  }
  for (const auto& [tid, stack] : open)
    for (std::size_t i : stack) drop[i] = 1;
  std::size_t w = 0;
  for (std::size_t i = 0; i < evs->size(); ++i)
    if (!drop[i]) (*evs)[w++] = (*evs)[i];
  evs->resize(w);
}

void append_microseconds(std::string* out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  *out += buf;
}

}  // namespace

int trace_lane() {
  thread_local int lane = [] {
    std::lock_guard<std::mutex> lock(lane_mutex());
    auto& names = lane_names_locked();
    const int id = static_cast<int>(names.size());
    names.push_back("thread-" + std::to_string(id));
    return id;
  }();
  return lane;
}

void set_trace_lane_name(const std::string& name) {
  const int lane = trace_lane();
  std::lock_guard<std::mutex> lock(lane_mutex());
  lane_names_locked()[static_cast<std::size_t>(lane)] = name;
}

std::vector<std::string> trace_lane_names() {
  std::lock_guard<std::mutex> lock(lane_mutex());
  return lane_names_locked();
}

TraceSession& TraceSession::global() {
  // Leaked like the lane registry: whether this TU's statics are
  // constructed before or after another TU registers the first exit
  // hook (and with it the atexit(run_exit_hooks) callback) is link-
  // order luck, so a destructible session could be torn down before
  // the trace-export hook runs and the export would read a freed ring.
  static TraceSession* session = new TraceSession;
  return *session;
}

void TraceSession::start(std::size_t capacity) {
  if (!kTelemetryCompiled) return;
  trace_detail::g_on.store(false, std::memory_order_release);
  if (capacity == 0) {
    const long env = env_long("NDIRECT_TRACE_EVENTS",
                              static_cast<long>(kDefaultCapacity));
    capacity = env > 0 ? static_cast<std::size_t>(env) : kDefaultCapacity;
  }
  // Not safe against threads still recording from a previous session;
  // start/stop are control-plane calls made while the traced work is
  // quiescent.
  ring_.assign(capacity, TraceEvent{});
  cursor_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ns_.store(monotonic_ns(), std::memory_order_relaxed);
  trace_detail::g_on.store(true, std::memory_order_release);
}

void TraceSession::stop() {
  trace_detail::g_on.store(false, std::memory_order_release);
}

void TraceSession::clear() {
  stop();
  ring_.clear();
  cursor_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

std::uint64_t TraceSession::now_ns() const {
  const std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  return epoch == 0 ? 0 : monotonic_ns() - epoch;
}

void TraceSession::record(const TraceEvent& ev) {
  const std::size_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= ring_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring_[idx] = ev;
}

void TraceSession::complete(const char* name, std::uint64_t ts_ns,
                            std::uint64_t dur_ns, const char* arg1_name,
                            std::int64_t arg1, const char* arg2_name,
                            std::int64_t arg2) {
  if (!trace_on()) return;
  TraceEvent ev;
  ev.name = name;
  ev.ph = 'X';
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.tid = static_cast<std::uint32_t>(trace_lane());
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  ev.arg2_name = arg2_name;
  ev.arg2 = arg2;
  record(ev);
}

void TraceSession::begin(const char* name, const char* arg1_name,
                         std::int64_t arg1) {
  if (!trace_on()) return;
  TraceEvent ev;
  ev.name = name;
  ev.ph = 'B';
  ev.ts_ns = now_ns();
  ev.tid = static_cast<std::uint32_t>(trace_lane());
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  record(ev);
}

void TraceSession::end(const char* name) {
  if (!trace_on()) return;
  TraceEvent ev;
  ev.name = name;
  ev.ph = 'E';
  ev.ts_ns = now_ns();
  ev.tid = static_cast<std::uint32_t>(trace_lane());
  record(ev);
}

void TraceSession::instant(const char* name) {
  if (!trace_on()) return;
  TraceEvent ev;
  ev.name = name;
  ev.ph = 'i';
  ev.ts_ns = now_ns();
  ev.tid = static_cast<std::uint32_t>(trace_lane());
  record(ev);
}

void TraceSession::counter(const char* name, const char* arg1_name,
                           std::int64_t arg1, const char* arg2_name,
                           std::int64_t arg2) {
  if (!trace_on()) return;
  TraceEvent ev;
  ev.name = name;
  ev.ph = 'C';
  ev.ts_ns = now_ns();
  ev.tid = static_cast<std::uint32_t>(trace_lane());
  ev.arg1_name = arg1_name;
  ev.arg1 = arg1;
  ev.arg2_name = arg2_name;
  ev.arg2 = arg2;
  record(ev);
}

std::size_t TraceSession::size() const {
  return std::min(cursor_.load(std::memory_order_relaxed), ring_.size());
}

std::size_t TraceSession::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::size_t TraceSession::capacity() const { return ring_.size(); }

std::vector<TraceEvent> TraceSession::events() const {
  const std::size_t n = size();
  std::vector<TraceEvent> evs;
  evs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (ring_[i].name == nullptr) continue;  // torn mid-record slot
    evs.push_back(ring_[i]);
  }
  // Nested 'X' spans are recorded at their *end* (the enclosing span
  // lands in the ring after its children); sorting by start timestamp
  // restores the per-lane monotonic order the trace viewers expect.
  std::stable_sort(evs.begin(), evs.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  prune_unbalanced_spans(&evs);
  return evs;
}

std::string TraceSession::json() const {
  const std::vector<TraceEvent> evs = events();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"otherData\": "
                    "{\"dropped\": " +
                    std::to_string(dropped()) + "}, \"traceEvents\": [\n";
  bool first = true;
  const std::vector<std::string> lanes = trace_lane_names();
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": " +
           std::to_string(lane) + ", \"args\": {\"name\": \"" +
           json_escape(lanes[lane]) + "\"}}";
  }
  for (const TraceEvent& ev : evs) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\": \"";
    out += json_escape(ev.name);
    out += "\", \"cat\": \"ndirect\", \"ph\": \"";
    out += ev.ph;
    out += "\", \"pid\": 1, \"tid\": " + std::to_string(ev.tid) +
           ", \"ts\": ";
    append_microseconds(&out, ev.ts_ns);
    if (ev.ph == 'X') {
      out += ", \"dur\": ";
      append_microseconds(&out, ev.dur_ns);
    }
    if (ev.arg1_name != nullptr || ev.arg2_name != nullptr) {
      out += ", \"args\": {";
      if (ev.arg1_name != nullptr) {
        out += "\"" + json_escape(ev.arg1_name) +
               "\": " + std::to_string(ev.arg1);
      }
      if (ev.arg2_name != nullptr) {
        if (ev.arg1_name != nullptr) out += ", ";
        out += "\"" + json_escape(ev.arg2_name) +
               "\": " + std::to_string(ev.arg2);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool TraceSession::export_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = json();
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

namespace {

/// NDIRECT_TRACE=<path>: start tracing at load time, export at exit —
/// observability for unmodified binaries (every example and bench gets
/// tracing for free). Master-gated by NDIRECT_TELEMETRY.
///
/// The export runs through the runtime/shutdown.h hook chain, not a
/// bare std::atexit: hooks registered later (the metrics dump thread,
/// any live serve::Server) run first, so by the time the ring is
/// exported every server lane has drained and joined and nothing is
/// still recording (the old ordering depended on static-destruction
/// luck).
struct TraceEnvAutoStart {
  TraceEnvAutoStart() {
    const char* path = std::getenv("NDIRECT_TRACE");
    if (path == nullptr || *path == '\0' || !telemetry_enabled()) return;
    exporting_path() = path;
    TraceSession::global().start();
    register_exit_hook("trace-export", [] {
      TraceSession& session = TraceSession::global();
      session.stop();
      if (session.export_json(exporting_path())) {
        std::fprintf(stderr, "ndirect: trace written to %s (%zu events)\n",
                     exporting_path().c_str(), session.size());
      } else {
        std::fprintf(stderr, "ndirect: failed to write trace to %s\n",
                     exporting_path().c_str());
      }
    });
  }
  static std::string& exporting_path() {
    static std::string* path = new std::string;  // leaked: read at exit
    return *path;
  }
};
const TraceEnvAutoStart g_trace_autostart;

}  // namespace

}  // namespace ndirect
