// Aligned heap storage used by every tensor and packing buffer in the
// library. Kernels assume 64-byte alignment so that 128-bit vector loads
// never straddle cache lines and so buffers start on a cache-line boundary.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

namespace ndirect {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Owning, cache-line-aligned, uninitialized-by-default storage for
/// trivially copyable element types. Move-only.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer is for POD-like element types");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { reset(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Reallocate to hold `count` elements. Contents are NOT preserved.
  void reset(std::size_t count) {
    release();
    if (count == 0) return;
    // One cache line of tail slack: SIMD kernels may read (never write)
    // a few lanes past the last element of a row-oriented buffer.
    const std::size_t bytes =
        ((count * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes) *
            kCacheLineBytes +
        kCacheLineBytes;
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    data_ = static_cast<T*>(p);
    size_ = count;
  }

  /// Grow-only reallocation: keeps the allocation if already big enough.
  void ensure(std::size_t count) {
    if (count > size_) reset(count);
  }

  void fill_zero() {
    if (data_ != nullptr) std::memset(data_, 0, size_ * sizeof(T));
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  void release() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ndirect
