// Per-worker counter/timer registry: the always-available observability
// substrate under engine, scheduler, pool and graph instrumentation.
//
// The hot path is strictly per-worker: every worker owns one
// cache-line-padded slot and only ever writes its own counters with
// relaxed atomic adds, so recording never takes a lock and never
// bounces a line between cores. Readers aggregate after the run (the
// dispatch join is the happens-before edge), snapshotting the slots
// into a plain TelemetrySnapshot that the caller owns.
//
// Gating is two-level:
//   * compile time — configure with -DNDIRECT_TELEMETRY=OFF and every
//     recording call collapses to a no-op (kTelemetryCompiled = false);
//   * run time — the NDIRECT_TELEMETRY env var (default on) or
//     set_telemetry_enabled(false) turns collection off without a
//     rebuild; the engine then skips the timer reads entirely.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/aligned_buffer.h"

namespace ndirect {

/// Named per-worker counters. The *_ns entries are phase-time
/// accumulators (nanoseconds a worker spent inside that phase); the
/// rest are event counts.
enum class Counter : int {
  kTilesClaimed = 0,   ///< macro-tiles this worker executed
  kLocalSteals,        ///< distance-0 steals (pure stealer -> alias seed)
  kNeighbourSteals,    ///< pass-1 steals (same PTn row of the grid)
  kGlobalSteals,       ///< pass-2 steals (Manhattan-distance scan)
  kPackNs,             ///< input-window packing time
  kTransformNs,        ///< on-the-fly filter transform time
  kMicrokernelNs,      ///< micro-kernel (and fused-pack) time
  kEpilogueNs,         ///< unfused epilogue passes (reserved: the
                       ///< Ndirect store epilogue is folded into the
                       ///< micro-kernel and costs no separate phase)
  kCacheHits,          ///< packed-filter cache hits serving this run
  kGenericFallback,    ///< micro-kernel calls that fell back to the
                       ///< runtime-loop generic kernel (un-specialized
                       ///< block — the tuning-gap signal; 0 when every
                       ///< tile ran a registry kernel)
  // Hardware (PMU) counters, filled from per-thread perf_event_open
  // group deltas (runtime/perf_counters.h) when NDIRECT_PMU is on and
  // the host allows it; all zero otherwise. The first five mirror
  // PmuEvent order and are per-task deltas attributed to the worker
  // that executed the task.
  kPmuCycles,          ///< CPU cycles (user space)
  kPmuInstructions,    ///< retired instructions
  kPmuL1DMisses,       ///< L1D read misses
  kPmuLLCMisses,       ///< last-level-cache misses (≈ DRAM lines)
  kPmuStalledCycles,   ///< backend-stall cycles
  // Phase attribution (NDIRECT_PMU=2 only): L1D misses split between
  // the explicit pack phase and everything else (micro-kernel, fused
  // pack, filter transform) so "is packing hidden?" is measurable.
  kPmuPackL1DMisses,   ///< L1D misses inside pack_window calls
  kPmuMicroL1DMisses,  ///< L1D misses in the compute/fused remainder
  // Serving-layer events (serve/server.h). The server's registry uses
  // slot 0 for the admission (submit) side — written by arbitrary
  // caller threads, which relaxed fetch_add tolerates — and slots
  // 1..E for its executor lanes.
  kServeAdmitted,      ///< requests accepted into the request queue
  kServeShedArrival,   ///< requests rejected at admission (predicted
                       ///< deadline miss or stopped server)
  kServeShedQueue,     ///< requests shed while queued (deadline
                       ///< expired / non-drain shutdown)
  kServeBatches,       ///< coalesced batches launched
};
inline constexpr int kCounterCount = 21;

/// Stable snake_case name used in JSON exports and reports.
const char* counter_name(Counter c);

#if defined(NDIRECT_TELEMETRY_DISABLED)
inline constexpr bool kTelemetryCompiled = false;
#else
inline constexpr bool kTelemetryCompiled = true;
#endif

/// Runtime master switch. Initialized once from the NDIRECT_TELEMETRY
/// env var (default on); tests and embedders may override in-process.
/// Always false when compiled out.
bool telemetry_enabled();
void set_telemetry_enabled(bool on);

/// Steady-clock nanoseconds; the time base for all phase counters (and
/// the same clock the trace session stamps events with).
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Post-run aggregate: one plain row per worker plus the run's wall
/// time. Copyable/serializable; what NdirectOptions::telemetry returns
/// and what ConvReport and the bench JSON rows consume.
struct TelemetrySnapshot {
  struct Worker {
    std::uint64_t v[kCounterCount] = {};

    std::uint64_t value(Counter c) const {
      return v[static_cast<int>(c)];
    }
    /// Seconds this worker spent in instrumented phases.
    double busy_seconds() const;
    std::uint64_t steals() const {
      return value(Counter::kLocalSteals) +
             value(Counter::kNeighbourSteals) +
             value(Counter::kGlobalSteals);
    }
  };

  /// Any hardware-counter data present? (False when the PMU backend is
  /// null or NDIRECT_PMU=0 — the fields then serialize as zeros.)
  bool has_pmu() const {
    return total(Counter::kPmuCycles) > 0 ||
           total(Counter::kPmuInstructions) > 0;
  }

  std::vector<Worker> workers;
  double wall_seconds = 0;

  bool empty() const { return workers.empty(); }
  std::uint64_t total(Counter c) const;
  /// Summed phase time in seconds (for the *_ns counters).
  double phase_seconds(Counter c) const;
  /// Share of this phase in the total instrumented phase time [0,1].
  double phase_fraction(Counter c) const;
  /// Worker busy time over the run's wall time [0,1] (0 if no wall).
  double busy_fraction(int worker) const;

  /// Accumulate `other` into this snapshot (counters add per worker
  /// row, wall times add). Grows the worker list as needed; used to
  /// fold the per-conv snapshots of a graph run into one row.
  void merge(const TelemetrySnapshot& other);

  /// {"workers":N,"wall_seconds":...,"counters":{...},
  ///  "phase_fractions":{...},"busy_fraction":{...},"per_worker":[...]}
  /// Every string field is JSON-escaped; the output round-trips
  /// through a strict parser (python3 -m json.tool in CI).
  std::string to_json() const;

  /// Re-export this snapshot's totals into the process-wide metrics
  /// registry (runtime/metrics.h): one monotonic counter
  /// `ndirect_engine_<counter_name>` per engine counter, incremented
  /// by this snapshot's value. Call with per-run deltas only (the
  /// engine's per-run snapshot, not an accumulating sink) — the
  /// registry adds, it does not overwrite. No-op for an all-zero
  /// snapshot; a handful of relaxed atomic adds otherwise.
  void publish_metrics() const;
};

/// The live registry a run writes into: `workers` cache-line-padded
/// slots of relaxed atomics. add() is wait-free and contention-free as
/// long as each worker sticks to its own slot (the engine's contract).
class WorkerTelemetry {
 public:
  /// `workers` may be 0: a disabled registry where add() still accepts
  /// (and drops) writes, so call sites need no null checks.
  explicit WorkerTelemetry(int workers);

  void add(int worker, Counter c, std::uint64_t delta) {
    if constexpr (!kTelemetryCompiled) {
      (void)worker, (void)c, (void)delta;
      return;
    }
    if (worker < 0 || static_cast<std::size_t>(worker) >= slots_.size())
      return;
    slots_[static_cast<std::size_t>(worker)]
        .v[static_cast<int>(c)]
        .fetch_add(delta, std::memory_order_relaxed);
  }

  int workers() const { return static_cast<int>(slots_.size()); }
  std::uint64_t value(int worker, Counter c) const;
  std::uint64_t total(Counter c) const;
  void reset();

  /// Aggregate the slots into a plain snapshot. Call after the run's
  /// join (not linearizable against concurrent add()).
  TelemetrySnapshot snapshot(double wall_seconds) const;

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::atomic<std::uint64_t> v[kCounterCount] = {};
  };
  std::vector<Slot> slots_;
};

}  // namespace ndirect
