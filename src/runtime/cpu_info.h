// Host CPU/cache probing. The tiling model (Eq. 1-2) needs L1/L2/L3 sizes;
// on the paper's platforms these come from Table 3, on the host they are
// probed from sysconf/sysfs with conservative fallbacks.
#pragma once

#include <cstddef>
#include <string>

namespace ndirect {

/// Cache capacities in bytes (0 means "absent", e.g. no L3 on Phytium).
struct CacheInfo {
  std::size_t l1d = 32 * 1024;
  std::size_t l2 = 512 * 1024;
  std::size_t l3 = 0;
  bool l2_shared = false;  ///< L2 shared between a core cluster (Phytium)?
};

struct CpuInfo {
  std::string name = "host";
  int logical_cores = 1;
  CacheInfo cache;
  /// ARMv8.2 dot-product extension (HWCAP asimddp): UDOT/SDOT issue four
  /// int8 MACs per 32-bit lane — the int8 path's 4x arithmetic lever.
  /// Always false on non-aarch64 hosts.
  bool asimddp = false;
  /// ARMv8.6 int8 matrix-multiply extension (HWCAP2 i8mm): adds USDOT /
  /// SMMLA. Detected for the host stamp; no kernel uses it yet.
  bool i8mm = false;
};

/// Probe the calling machine. Never fails: unknown values keep defaults.
CpuInfo probe_host_cpu();

}  // namespace ndirect
