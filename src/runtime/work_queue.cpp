#include "runtime/work_queue.h"

#include <algorithm>
#include <cstdlib>

#include "runtime/partition.h"

namespace ndirect {
namespace {

std::atomic<std::uint64_t> g_steal_events{0};

}  // namespace

std::uint64_t scheduler_steal_events() {
  return g_steal_events.load(std::memory_order_relaxed);
}

TileScheduler::TileScheduler(int rows, int cols, int row_parts,
                             int col_parts, int workers, bool stealing)
    : rows_(rows),
      cols_(cols),
      row_parts_(row_parts < 1 ? 1 : row_parts),
      col_parts_(col_parts < 1 ? 1 : col_parts),
      stealing_(stealing),
      queues_(static_cast<std::size_t>(
          std::max(workers, row_parts_ * col_parts_))) {
  // Seed worker (tn, tk) with the block Eq. 5/6 would assign: row
  // chunks split over row_parts in n-major order, k chunks over
  // col_parts. Extra workers (index >= grid size) own empty blocks.
  for (int w = 0; w < static_cast<int>(queues_.size()); ++w) {
    WorkerQueue& q = queues_[static_cast<std::size_t>(w)];
    if (w < row_parts_ * col_parts_) {
      const int tn = w / col_parts_;
      const int tk = w % col_parts_;
      const Range rr = partition_range(static_cast<std::size_t>(rows_),
                                       static_cast<std::size_t>(row_parts_),
                                       static_cast<std::size_t>(tn));
      const Range cr = partition_range(static_cast<std::size_t>(cols_),
                                       static_cast<std::size_t>(col_parts_),
                                       static_cast<std::size_t>(tk));
      q.row0 = static_cast<std::uint32_t>(rr.begin);
      q.row1 = static_cast<std::uint32_t>(rr.end);
      q.col0 = static_cast<std::uint32_t>(cr.begin);
      q.col1 = static_cast<std::uint32_t>(cr.end);
    }
    const std::uint32_t count = (q.row1 - q.row0) * (q.col1 - q.col0);
    q.deque.reset(0, count);
  }
}

void TileScheduler::map_local(const WorkerQueue& q, std::uint32_t local,
                              int* row, int* col) const {
  // Row-major over the seed block, k chunks innermost: the owner's
  // front-to-back traversal visits all k chunks of one row chunk before
  // moving on, matching the static nest's L2 -> L4 order.
  const std::uint32_t width = q.col1 - q.col0;
  *row = static_cast<int>(q.row0 + local / width);
  *col = static_cast<int>(q.col0 + local % width);
}

bool TileScheduler::steal_from(int thief, int victim, StealClass cls,
                               int* row, int* col) {
  WorkerQueue& v = queues_[static_cast<std::size_t>(victim)];
  std::uint32_t local;
  if (!v.deque.pop_back(&local)) return false;
  map_local(v, local, row, col);
  WorkerQueue& t = queues_[static_cast<std::size_t>(thief)];
  t.executed.fetch_add(1, std::memory_order_relaxed);
  t.stolen.fetch_add(1, std::memory_order_relaxed);
  t.stolen_class[static_cast<int>(cls)].fetch_add(
      1, std::memory_order_relaxed);
  g_steal_events.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool TileScheduler::claim(int worker, int* row, int* col) {
  WorkerQueue& own = queues_[static_cast<std::size_t>(worker)];
  std::uint32_t local;
  if (own.deque.pop_front(&local)) {
    map_local(own, local, row, col);
    own.executed.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (!stealing_) return false;

  // Virtual grid position for victim ordering; pure stealers borrow the
  // position of the seeded worker they alias round-robin, so a stealer
  // fleet spreads across the grid instead of mobbing worker 0.
  const int grid = row_parts_ * col_parts_;
  const int pos = worker < grid ? worker : worker % grid;
  const int tn = pos / col_parts_;
  const int tk = pos % col_parts_;

  // A pure stealer's nearest victim is the seeded worker whose grid
  // position it aliases (distance 0, unreachable by the d >= 1 scans).
  if (worker >= grid &&
      steal_from(worker, pos, StealClass::kLocal, row, col))
    return true;

  // Pass 1 — same PTn row, nearest k group first. These victims cover
  // the same output rows as the thief, so a stolen tile re-reads input
  // rows the thief has already packed and only pays for new filter
  // tiles (the smaller tensor).
  for (int d = 1; d < col_parts_; ++d) {
    for (const int vtk : {tk - d, tk + d}) {
      if (vtk < 0 || vtk >= col_parts_ || vtk == tk) continue;
      if (steal_from(worker, tn * col_parts_ + vtk,
                     StealClass::kNeighbour, row, col))
        return true;
    }
  }

  // Pass 2 — everything else by Manhattan distance in the worker grid.
  // Re-probing pass-1 victims is harmless (their deques report empty in
  // one load). The scan is O(grid * distance), trivial next to a tile.
  const int maxd = row_parts_ + col_parts_;
  for (int d = 1; d <= maxd; ++d) {
    for (int v = 0; v < grid; ++v) {
      if (v == worker) continue;  // own deque already drained
      const int vtn = v / col_parts_, vtk = v % col_parts_;
      const int dist = std::abs(vtn - tn) + std::abs(vtk - tk);
      if (dist != d) continue;
      if (steal_from(worker, v, StealClass::kGlobal, row, col))
        return true;
    }
  }
  // Every deque observed empty. Work only ever leaves deques, so no
  // unclaimed tile remains.
  return false;
}

std::uint64_t TileScheduler::steal_events() const {
  std::uint64_t total = 0;
  for (const WorkerQueue& q : queues_)
    total += q.stolen.load(std::memory_order_relaxed);
  return total;
}

SchedulerStats TileScheduler::stats() const {
  SchedulerStats s;
  s.tiles = tiles();
  s.workers = workers();
  s.min_worker_tiles = ~0ull;
  for (const WorkerQueue& q : queues_) {
    const std::uint64_t e = q.executed.load(std::memory_order_relaxed);
    s.steals += q.stolen.load(std::memory_order_relaxed);
    s.local_steals +=
        q.stolen_class[static_cast<int>(StealClass::kLocal)].load(
            std::memory_order_relaxed);
    s.neighbour_steals +=
        q.stolen_class[static_cast<int>(StealClass::kNeighbour)].load(
            std::memory_order_relaxed);
    s.global_steals +=
        q.stolen_class[static_cast<int>(StealClass::kGlobal)].load(
            std::memory_order_relaxed);
    s.max_worker_tiles = std::max(s.max_worker_tiles, e);
    s.min_worker_tiles = std::min(s.min_worker_tiles, e);
  }
  if (queues_.empty()) s.min_worker_tiles = 0;
  return s;
}

}  // namespace ndirect
