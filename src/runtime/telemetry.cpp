#include "runtime/telemetry.h"

#include <cstdio>
#include <mutex>

#include "runtime/env.h"
#include "runtime/metrics.h"

namespace ndirect {
namespace {

std::atomic<bool> g_enabled{
    kTelemetryCompiled && env_flag("NDIRECT_TELEMETRY", true)};

constexpr Counter kPhaseCounters[] = {Counter::kPackNs, Counter::kTransformNs,
                                      Counter::kMicrokernelNs,
                                      Counter::kEpilogueNs};

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// JSON string escaping for every string field the snapshot emits:
/// quote/backslash get escaped, control bytes become \u00XX (a bare
/// control byte makes strict parsers reject the document).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string json_string(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

}  // namespace

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kTilesClaimed: return "tiles_claimed";
    case Counter::kLocalSteals: return "local_steals";
    case Counter::kNeighbourSteals: return "neighbour_steals";
    case Counter::kGlobalSteals: return "global_steals";
    case Counter::kPackNs: return "pack_ns";
    case Counter::kTransformNs: return "transform_ns";
    case Counter::kMicrokernelNs: return "microkernel_ns";
    case Counter::kEpilogueNs: return "epilogue_ns";
    case Counter::kCacheHits: return "cache_hits";
    case Counter::kGenericFallback: return "generic_fallback";
    case Counter::kPmuCycles: return "pmu_cycles";
    case Counter::kPmuInstructions: return "pmu_instructions";
    case Counter::kPmuL1DMisses: return "pmu_l1d_misses";
    case Counter::kPmuLLCMisses: return "pmu_llc_misses";
    case Counter::kPmuStalledCycles: return "pmu_stalled_cycles";
    case Counter::kPmuPackL1DMisses: return "pmu_pack_l1d_misses";
    case Counter::kPmuMicroL1DMisses: return "pmu_micro_l1d_misses";
    case Counter::kServeAdmitted: return "serve_admitted";
    case Counter::kServeShedArrival: return "serve_shed_arrival";
    case Counter::kServeShedQueue: return "serve_shed_queue";
    case Counter::kServeBatches: return "serve_batches";
  }
  return "unknown";
}

bool telemetry_enabled() {
  return kTelemetryCompiled && g_enabled.load(std::memory_order_relaxed);
}

void set_telemetry_enabled(bool on) {
  g_enabled.store(kTelemetryCompiled && on, std::memory_order_relaxed);
}

double TelemetrySnapshot::Worker::busy_seconds() const {
  std::uint64_t ns = 0;
  for (Counter c : kPhaseCounters) ns += value(c);
  return static_cast<double>(ns) * 1e-9;
}

std::uint64_t TelemetrySnapshot::total(Counter c) const {
  std::uint64_t t = 0;
  for (const Worker& w : workers) t += w.value(c);
  return t;
}

double TelemetrySnapshot::phase_seconds(Counter c) const {
  return static_cast<double>(total(c)) * 1e-9;
}

double TelemetrySnapshot::phase_fraction(Counter c) const {
  std::uint64_t all = 0;
  for (Counter pc : kPhaseCounters) all += total(pc);
  return all > 0 ? static_cast<double>(total(c)) /
                       static_cast<double>(all)
                 : 0.0;
}

double TelemetrySnapshot::busy_fraction(int worker) const {
  if (worker < 0 ||
      static_cast<std::size_t>(worker) >= workers.size() ||
      wall_seconds <= 0)
    return 0.0;
  const double f =
      workers[static_cast<std::size_t>(worker)].busy_seconds() /
      wall_seconds;
  return f > 1.0 ? 1.0 : f;
}

void TelemetrySnapshot::merge(const TelemetrySnapshot& other) {
  if (other.workers.size() > workers.size())
    workers.resize(other.workers.size());
  for (std::size_t w = 0; w < other.workers.size(); ++w)
    for (int c = 0; c < kCounterCount; ++c)
      workers[w].v[c] += other.workers[w].v[c];
  wall_seconds += other.wall_seconds;
}

std::string TelemetrySnapshot::to_json() const {
  std::string s = "{\"workers\": " + std::to_string(workers.size()) +
                  ", \"wall_seconds\": " + fmt_double(wall_seconds) +
                  ", \"counters\": {";
  for (int c = 0; c < kCounterCount; ++c) {
    if (c > 0) s += ", ";
    s += json_string(counter_name(static_cast<Counter>(c))) + ": " +
         std::to_string(total(static_cast<Counter>(c)));
  }
  s += "}, \"phase_fractions\": {";
  bool first = true;
  for (Counter pc : kPhaseCounters) {
    if (!first) s += ", ";
    first = false;
    s += json_string(counter_name(pc)) + ": " +
         fmt_double(phase_fraction(pc));
  }
  s += "}, \"busy_fraction\": {";
  double mn = 1.0, mx = 0.0, sum = 0.0;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const double f = busy_fraction(static_cast<int>(w));
    mn = f < mn ? f : mn;
    mx = f > mx ? f : mx;
    sum += f;
  }
  if (workers.empty()) mn = 0.0;
  s += "\"min\": " + fmt_double(mn) + ", \"max\": " + fmt_double(mx) +
       ", \"mean\": " +
       fmt_double(workers.empty() ? 0.0
                                  : sum / static_cast<double>(
                                              workers.size()));
  s += "}, \"per_worker\": [";
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (w > 0) s += ", ";
    s += "{\"tiles\": " +
         std::to_string(workers[w].value(Counter::kTilesClaimed)) +
         ", \"steals\": " + std::to_string(workers[w].steals()) +
         ", \"busy\": " + fmt_double(workers[w].busy_seconds()) +
         ", \"l1d_misses\": " +
         std::to_string(workers[w].value(Counter::kPmuL1DMisses)) +
         ", \"llc_misses\": " +
         std::to_string(workers[w].value(Counter::kPmuLLCMisses)) + "}";
  }
  s += "]}";
  return s;
}

void TelemetrySnapshot::publish_metrics() const {
  if (workers.empty()) return;
  // One registry counter per engine counter, resolved once per
  // process (the handles are stable for the registry's lifetime) and
  // then bumped with relaxed adds — safe from any thread.
  static CounterCell* cells[kCounterCount];
  static std::once_flag once;
  std::call_once(once, [] {
    MetricsRegistry& reg = MetricsRegistry::global();
    for (int c = 0; c < kCounterCount; ++c) {
      cells[c] = reg.counter(
          std::string("ndirect_engine_") +
              counter_name(static_cast<Counter>(c)),
          {}, "engine telemetry counter re-exported per conv run");
    }
  });
  for (int c = 0; c < kCounterCount; ++c) {
    const std::uint64_t v = total(static_cast<Counter>(c));
    if (v > 0) cells[c]->inc(v);
  }
}

WorkerTelemetry::WorkerTelemetry(int workers)
    : slots_(static_cast<std::size_t>(
          !kTelemetryCompiled || workers < 0 ? 0 : workers)) {}

std::uint64_t WorkerTelemetry::value(int worker, Counter c) const {
  if (worker < 0 || static_cast<std::size_t>(worker) >= slots_.size())
    return 0;
  return slots_[static_cast<std::size_t>(worker)]
      .v[static_cast<int>(c)]
      .load(std::memory_order_relaxed);
}

std::uint64_t WorkerTelemetry::total(Counter c) const {
  std::uint64_t t = 0;
  for (const Slot& s : slots_)
    t += s.v[static_cast<int>(c)].load(std::memory_order_relaxed);
  return t;
}

void WorkerTelemetry::reset() {
  for (Slot& s : slots_)
    for (auto& a : s.v) a.store(0, std::memory_order_relaxed);
}

TelemetrySnapshot WorkerTelemetry::snapshot(double wall_seconds) const {
  TelemetrySnapshot snap;
  snap.wall_seconds = wall_seconds;
  snap.workers.resize(slots_.size());
  for (std::size_t w = 0; w < slots_.size(); ++w)
    for (int c = 0; c < kCounterCount; ++c)
      snap.workers[w].v[c] =
          slots_[w].v[c].load(std::memory_order_relaxed);
  return snap;
}

}  // namespace ndirect
