#include "runtime/http.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace ndirect {

namespace {

bool iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Send the whole buffer, tolerating partial writes. MSG_NOSIGNAL so a
/// client that hung up mid-response costs an errno, not a SIGPIPE.
bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n =
        ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Outcome of reading one request off a connection.
enum class ReadStatus { kOk, kBadRequest, kTooLarge, kDisconnect };

/// Read until the header block (and any Content-Length body) is
/// complete, the deadline passes, the size cap trips, or the peer
/// hangs up. poll-based so a stalled client never pins the handler
/// past the deadline.
ReadStatus read_request(int fd, std::size_t max_bytes, long timeout_ms,
                        std::string* raw, std::size_t* header_end,
                        std::size_t* body_len) {
  const std::uint64_t deadline = steady_ms() +
                                 static_cast<std::uint64_t>(
                                     timeout_ms > 0 ? timeout_ms : 0);
  *header_end = std::string::npos;
  *body_len = 0;
  char buf[4096];
  for (;;) {
    if (*header_end == std::string::npos) {
      const std::size_t pos = raw->find("\r\n\r\n");
      if (pos != std::string::npos) {
        *header_end = pos + 4;
        // Content-Length decides how much body to wait for; chunked
        // or other transfer encodings are not supported (400 later).
        std::size_t want = 0;
        std::size_t line_start = raw->find("\r\n") + 2;
        while (line_start < *header_end - 2) {
          const std::size_t line_end = raw->find("\r\n", line_start);
          const std::string line =
              raw->substr(line_start, line_end - line_start);
          const std::size_t colon = line.find(':');
          if (colon != std::string::npos &&
              iequals(trim(line.substr(0, colon)), "content-length")) {
            const std::string v = trim(line.substr(colon + 1));
            char* end = nullptr;
            const unsigned long long parsed =
                std::strtoull(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0')
              return ReadStatus::kBadRequest;
            want = static_cast<std::size_t>(parsed);
          }
          line_start = line_end + 2;
        }
        if (*header_end + want > max_bytes) return ReadStatus::kTooLarge;
        *body_len = want;
      }
    }
    if (*header_end != std::string::npos &&
        raw->size() >= *header_end + *body_len)
      return ReadStatus::kOk;
    if (raw->size() >= max_bytes) return ReadStatus::kTooLarge;

    const std::uint64_t now = steady_ms();
    if (now >= deadline) return ReadStatus::kDisconnect;
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr =
        ::poll(&pfd, 1, static_cast<int>(deadline - now));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kDisconnect;
    }
    if (pr == 0) return ReadStatus::kDisconnect;  // timed out
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kDisconnect;
    }
    if (n == 0)
      return raw->empty() ? ReadStatus::kDisconnect
                          : ReadStatus::kBadRequest;  // truncated
    raw->append(buf, static_cast<std::size_t>(n));
  }
}

/// Parse the complete request text into an HttpRequest. Returns false
/// on any malformation (the caller answers 400).
bool parse_request(const std::string& raw, std::size_t header_end,
                   std::size_t body_len, HttpRequest* req) {
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || line_end >= header_end)
    return false;
  const std::string line = raw.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  req->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (req->method.empty() || target.empty() || target[0] != '/')
    return false;
  if (version.rfind("HTTP/1.", 0) != 0) return false;
  const std::size_t q = target.find('?');
  if (q == std::string::npos) {
    req->path = std::move(target);
  } else {
    req->path = target.substr(0, q);
    req->query = target.substr(q + 1);
  }

  std::size_t pos = line_end + 2;
  while (pos < header_end - 2) {
    const std::size_t end = raw.find("\r\n", pos);
    if (end == std::string::npos || end > header_end - 2) return false;
    const std::string h = raw.substr(pos, end - pos);
    const std::size_t colon = h.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    req->headers.emplace_back(trim(h.substr(0, colon)),
                              trim(h.substr(colon + 1)));
    pos = end + 2;
  }
  if (const std::string* te = req->header("transfer-encoding");
      te != nullptr && !iequals(*te, "identity"))
    return false;  // chunked bodies are out of scope for an admin plane
  req->body = raw.substr(header_end, body_len);
  return true;
}

std::string render_response(const HttpResponse& res) {
  std::string out = "HTTP/1.1 " + std::to_string(res.status) + " " +
                    http_status_reason(res.status) + "\r\n";
  out += "Content-Type: " + res.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(res.body.size()) + "\r\n";
  for (const auto& [k, v] : res.headers) out += k + ": " + v + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += res.body;
  return out;
}

HttpResponse plain_error(int status, const std::string& message) {
  HttpResponse res;
  res.status = status;
  res.body = message + "\n";
  return res;
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
  for (const auto& [k, v] : headers)
    if (iequals(k, name)) return &v;
  return nullptr;
}

std::string HttpRequest::query_param(const std::string& key,
                                     const std::string& fallback) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(pos, end - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key &&
        eq + 1 < pair.size())
      return pair.substr(eq + 1);
    pos = end + 1;
  }
  return fallback;
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  options_.handler_threads = std::max(1, options_.handler_threads);
  options_.max_request_bytes =
      std::max<std::size_t>(512, options_.max_request_bytes);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& method, const std::string& path,
                       HttpHandler handler) {
  for (auto& [key, h] : routes_) {
    if (key.first == method && key.second == path) {
      h = std::move(handler);
      return;
    }
  }
  routes_.push_back({{method, path}, std::move(handler)});
}

void HttpServer::start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (running_) return;

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    throw std::runtime_error("HttpServer: socket() failed: " +
                             std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("HttpServer: bad bind address '" +
                             options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, options_.backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("HttpServer: cannot listen on " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port) + ": " + err);
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen);
  bound_port_ = static_cast<int>(ntohs(addr.sin_port));

  listen_fd_ = fd;
  stop_requested_ = false;
  running_ = true;
  listener_ = std::thread([this] { listen_loop(); });
  handlers_.reserve(static_cast<std::size_t>(options_.handler_threads));
  for (int i = 0; i < options_.handler_threads; ++i)
    handlers_.emplace_back([this] { handler_loop(); });
}

void HttpServer::stop() {
  std::thread listener;
  std::vector<std::thread> handlers;
  std::deque<int> pending;
  int listen_fd = -1;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    // shutdown() forces the blocking accept() to return immediately.
    // The fd itself is closed only after the listener joined, so the
    // descriptor number cannot be recycled under a racing accept().
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    listen_fd = listen_fd_;
    listen_fd_ = -1;
    listener = std::move(listener_);
    handlers = std::move(handlers_);
    pending = std::move(conn_queue_);
    conn_queue_.clear();
  }
  conn_cv_.notify_all();
  if (listener.joinable()) listener.join();
  for (std::thread& t : handlers)
    if (t.joinable()) t.join();
  if (listen_fd >= 0) ::close(listen_fd);
  for (const int fd : pending) ::close(fd);  // unanswered, by design
}

bool HttpServer::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return running_;
}

int HttpServer::port() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bound_port_;
}

std::uint64_t HttpServer::requests_handled() const {
  return handled_.load(std::memory_order_relaxed);
}

void HttpServer::listen_loop() {
  for (;;) {
    int fd;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_requested_) return;
      fd = listen_fd_;
    }
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener closed (stop) or unrecoverable
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_requested_) {
        ::close(conn);
        return;
      }
      conn_queue_.push_back(conn);
    }
    conn_cv_.notify_one();
  }
}

void HttpServer::handler_loop() {
  for (;;) {
    int fd;
    {
      std::unique_lock<std::mutex> lk(mu_);
      conn_cv_.wait(lk, [this] {
        return stop_requested_ || !conn_queue_.empty();
      });
      if (stop_requested_) return;
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // Bound the response write too: a client that stops reading costs
  // at most write_timeout_ms per send, not a parked handler thread.
  struct timeval tv;
  tv.tv_sec = options_.write_timeout_ms / 1000;
  tv.tv_usec = (options_.write_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::string raw;
  std::size_t header_end = 0, body_len = 0;
  const ReadStatus rs =
      read_request(fd, options_.max_request_bytes,
                   options_.read_timeout_ms, &raw, &header_end, &body_len);

  HttpResponse res;
  HttpRequest req;
  switch (rs) {
    case ReadStatus::kDisconnect:
      return;  // nothing answerable arrived
    case ReadStatus::kTooLarge:
      res = plain_error(400, "request exceeds size cap");
      break;
    case ReadStatus::kBadRequest:
      res = plain_error(400, "malformed request");
      break;
    case ReadStatus::kOk: {
      if (!parse_request(raw, header_end, body_len, &req)) {
        res = plain_error(400, "malformed request");
        break;
      }
      const HttpHandler* handler = nullptr;
      std::string allowed;  // methods registered for this path
      for (const auto& [key, h] : routes_) {
        if (key.second != req.path) continue;
        if (!allowed.empty()) allowed += ", ";
        allowed += key.first;
        if (key.first == req.method) handler = &h;
      }
      if (handler == nullptr) {
        if (allowed.empty()) {
          res = plain_error(404, "no route for " + req.path);
        } else {
          res = plain_error(405, req.method + " not allowed for " +
                                     req.path);
          res.headers.push_back({"Allow", allowed});
        }
        break;
      }
      try {
        res = (*handler)(req);
      } catch (const std::exception& e) {
        res = plain_error(500, std::string("handler error: ") + e.what());
      } catch (...) {
        res = plain_error(500, "handler error");
      }
      break;
    }
  }

  const std::string wire = render_response(res);
  (void)send_all(fd, wire.data(), wire.size());
  handled_.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

HttpClientResponse http_fetch(const std::string& host, int port,
                              const std::string& method,
                              const std::string& path,
                              const std::string& body, long timeout_ms) {
  HttpClientResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    out.error = "socket() failed";
    return out;
  }
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    out.error = "bad host '" + host + "' (numeric IPv4 only)";
    return out;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    out.error = std::string("connect failed: ") + std::strerror(errno);
    ::close(fd);
    return out;
  }

  std::string wire = method + " " + path + " HTTP/1.1\r\n";
  wire += "Host: " + host + ":" + std::to_string(port) + "\r\n";
  wire += "Connection: close\r\n";
  if (!body.empty() || method == "POST")
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  wire += "\r\n" + body;
  if (!send_all(fd, wire.data(), wire.size())) {
    out.error = "send failed";
    ::close(fd);
    return out;
  }

  std::string raw;
  char buf[8192];
  const std::uint64_t deadline =
      steady_ms() + static_cast<std::uint64_t>(timeout_ms);
  for (;;) {
    if (steady_ms() >= deadline) {
      out.error = "response timed out";
      ::close(fd);
      return out;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      out.error = std::string("recv failed: ") + std::strerror(errno);
      ::close(fd);
      return out;
    }
    if (n == 0) break;  // server closed: response complete
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t header_end = raw.find("\r\n\r\n");
  const std::size_t line_end = raw.find("\r\n");
  if (header_end == std::string::npos || raw.rfind("HTTP/1.", 0) != 0) {
    out.error = "malformed response";
    return out;
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    out.error = "malformed status line";
    return out;
  }
  out.status = std::atoi(raw.c_str() + sp + 1);
  // Pull Content-Type out of the headers; everything else is the
  // caller's problem.
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t end = raw.find("\r\n", pos);
    if (end == std::string::npos || end > header_end) end = header_end;
    const std::string h = raw.substr(pos, end - pos);
    const std::size_t colon = h.find(':');
    if (colon != std::string::npos &&
        iequals(trim(h.substr(0, colon)), "content-type"))
      out.content_type = trim(h.substr(colon + 1));
    pos = end + 2;
  }
  out.body = raw.substr(header_end + 4);
  out.ok = true;
  return out;
}

}  // namespace ndirect
