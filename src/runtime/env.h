// Small environment-variable helpers used by benches and examples.
#pragma once

#include <cstdlib>
#include <string>

namespace ndirect {

inline long env_long(const char* name, long fallback) {
  if (const char* v = std::getenv(name)) {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v) return parsed;
  }
  return fallback;
}

inline bool env_flag(const char* name, bool fallback = false) {
  if (const char* v = std::getenv(name)) {
    const std::string s(v);
    return !(s == "0" || s == "false" || s == "off" || s.empty());
  }
  return fallback;
}

}  // namespace ndirect
