// Persistent worker-thread pool with static work partitioning and a
// low-latency spin-then-park dispatch path.
//
// The paper parallelizes with OpenMP static scheduling over a PTn x PTk
// logical thread grid (Section 6). We use an explicit pool so the thread
// count and the (thread id -> work slice) mapping are fully controlled by
// the library, which is what the Eq. 5/6 thread-mapping model requires.
//
// Dispatch protocol (see thread_pool.cpp for the memory-ordering
// argument): the submitter publishes the task and bumps an atomic
// generation counter; workers spin (pause/yield) on the generation for a
// bounded budget before parking on a condition variable, and announce
// completion through cache-line-aligned per-worker arrival slots (no
// shared counter: one would race across back-to-back generations). A
// back-to-back stream of convolutions therefore pays
// no mutex round-trips and no OS wakeups per call — the fixed cost the
// seed's mutex+condvar handshake charged every NdirectConv invocation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/aligned_buffer.h"

namespace ndirect {

/// Fixed-size pool. `run(n, fn)` invokes `fn(tid)` for tid in [0, n) with
/// at most `size()` OS threads; tids beyond the pool size are executed by
/// reusing workers (oversubscription, used by the SMT experiment).
class ThreadPool {
 public:
  /// `spin_iters` bounds the busy-wait budget (in pause iterations)
  /// before a waiter parks on a condition variable. -1 reads
  /// NDIRECT_POOL_SPIN (default kDefaultSpinIters); 0 parks immediately,
  /// reproducing the seed's mutex+condvar behaviour for A/B benches.
  explicit ThreadPool(std::size_t num_threads, long spin_iters = -1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }

  /// Busy-wait budget in effect (pause iterations before parking).
  long spin_iters() const { return spin_iters_; }

  /// Run fn(tid) for every tid in [0, num_tasks). Blocks until all done.
  /// Task tid is executed by OS thread (tid % size()); tid 0 runs on the
  /// calling thread. fn must not throw. Thread-safe: concurrent run()
  /// calls from different caller threads serialize against each other.
  void run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

  /// Static-partitioned parallel loop over [0, count): each of the pool's
  /// threads receives one contiguous chunk. fn(begin, end) per chunk.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Work-stealing parallel loop over [0, count): the range is cut into
  /// chunks of `grain` items, seeded contiguously across the pool's
  /// threads (same initial assignment as parallel_for), and exhausted
  /// threads steal remaining chunks from the back of other threads'
  /// ranges. fn(begin, end) per claimed chunk, so skewed per-item cost
  /// and noisy cores no longer pin the loop to the slowest thread.
  /// Chunk claim order is nondeterministic; fn must tolerate any order.
  void parallel_for_dynamic(
      std::size_t count, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool sized from NDIRECT_THREADS or hardware concurrency.
  static ThreadPool& global();

  static constexpr long kDefaultSpinIters = 4096;

 private:
  /// Per-worker state on its own cache line: the generation this worker
  /// last completed. Workers write only their own slot, so completion
  /// signalling never bounces a shared line between workers.
  struct alignas(kCacheLineBytes) WorkerSlot {
    std::atomic<std::uint64_t> done_gen{0};
    char pad[kCacheLineBytes - sizeof(std::atomic<std::uint64_t>)];
  };

  void worker_loop(std::size_t worker_index);
  void execute_slice(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::vector<WorkerSlot> slots_;  ///< one per worker (index 1..size-1)
  long spin_iters_ = kDefaultSpinIters;

  std::mutex submit_mutex_;  ///< serializes concurrent run() callers

  // Dispatch state. task_/num_tasks_ are published before the
  // generation_ bump and read only after observing it.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> stop_{false};
  std::size_t num_tasks_ = 0;
  const std::function<void(std::size_t)>* task_ = nullptr;

  // Park/wake fallback for workers that exhausted their spin budget.
  std::mutex wake_mutex_;
  std::condition_variable cv_start_;
  std::atomic<int> num_parked_{0};

  // Park/wake fallback for a submitter waiting on completion.
  std::mutex done_mutex_;
  std::condition_variable cv_done_;
  std::atomic<bool> caller_waiting_{false};
};

}  // namespace ndirect
