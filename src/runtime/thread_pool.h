// Persistent worker-thread pool with re-entrant, concurrent job dispatch
// and a low-latency spin-then-park wait path.
//
// The paper parallelizes with OpenMP static scheduling over a PTn x PTk
// logical thread grid (Section 6). We use an explicit pool so the thread
// count and the (task id -> work slice) mapping are fully controlled by
// the library, which is what the Eq. 5/6 thread-mapping model requires.
//
// Dispatch protocol (see thread_pool.cpp for the memory-ordering
// argument): a submitter claims one of a fixed set of job slots, publishes
// the task function, opens the slot's claim cursor, and bumps an atomic
// generation counter; workers spin (pause/yield) on the generation for a
// bounded budget before parking on a condition variable, then drain task
// indices from every open job through a lock-free epoch-tagged cursor.
// Because jobs live in independent slots, run() is fully re-entrant:
// several caller threads can dispatch at once and their jobs execute
// CONCURRENTLY, with idle workers draining whichever job still has
// unclaimed tasks — the property the scheduler-aware graph executor uses
// to let one convolution's stealers soak cores another branch left idle.
// A back-to-back stream of convolutions pays no mutex round-trips and no
// OS wakeups per call.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/aligned_buffer.h"

namespace ndirect {

/// Fixed-size pool. `run(n, fn)` invokes `fn(tid)` for tid in [0, n) with
/// at most `size()` OS threads; task counts beyond the pool size are
/// executed by reusing workers (oversubscription, used by the SMT
/// experiment). Which OS thread executes which tid is unspecified: tasks
/// are claimed dynamically so concurrent jobs can share the workers.
class ThreadPool {
 public:
  /// `spin_iters` bounds the busy-wait budget (in pause iterations)
  /// before a waiter parks on a condition variable. -1 reads
  /// NDIRECT_POOL_SPIN (default kDefaultSpinIters); 0 parks immediately,
  /// reproducing the seed's mutex+condvar behaviour for A/B benches.
  explicit ThreadPool(std::size_t num_threads, long spin_iters = -1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }

  /// Busy-wait budget in effect (pause iterations before parking).
  long spin_iters() const { return spin_iters_; }

  /// Run fn(tid) for every tid in [0, num_tasks). Blocks until all done.
  /// The caller participates (it claims tasks like a worker). fn must not
  /// throw. Thread-safe AND re-entrant: concurrent run() calls from
  /// different caller threads execute concurrently, sharing the worker
  /// threads; each caller returns when exactly its own tasks finished.
  void run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

  /// Static-partitioned parallel loop over [0, count): each of the pool's
  /// threads receives one contiguous chunk. fn(begin, end) per chunk.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Work-stealing parallel loop over [0, count): the range is cut into
  /// chunks of `grain` items, seeded contiguously across the pool's
  /// threads (same initial assignment as parallel_for), and exhausted
  /// threads steal remaining chunks from the back of other threads'
  /// ranges. fn(begin, end) per claimed chunk, so skewed per-item cost
  /// and noisy cores no longer pin the loop to the slowest thread.
  /// Chunk claim order is nondeterministic; fn must tolerate any order.
  void parallel_for_dynamic(
      std::size_t count, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool sized from NDIRECT_THREADS or hardware concurrency.
  static ThreadPool& global();

  static constexpr long kDefaultSpinIters = 4096;

  /// Jobs that can be in flight at once; further concurrent run() calls
  /// fall back to inline execution on their caller (correct, undegraded
  /// only in pathological fan-outs).
  static constexpr int kMaxConcurrentJobs = 8;

 private:
  // Claim-cursor packing: the low 16 bits of `word` are the next
  // unclaimed task index, the upper 48 bits an epoch (odd = job open or
  // being armed, even = slot free). Arm/retire bump the epoch, so a
  // claim CAS from a previous job can never land on a reused slot.
  static constexpr std::uint32_t kClosedCursor = 0xFFFF;
  static constexpr std::size_t kMaxTasksPerJob = kClosedCursor - 1;

  /// One in-flight run(): an epoch-tagged claim cursor plus a completion
  /// countdown, on its own cache line so claim traffic on one job does
  /// not bounce the others.
  /// (num_tasks/fn are atomics only because a worker holding a stale
  /// cursor snapshot may read them while the slot's next submitter
  /// re-arms; the values it reads are discarded when its claim CAS fails
  /// on the epoch. Publication ordering rides the word's release store.)
  struct alignas(kCacheLineBytes) JobSlot {
    std::atomic<std::uint64_t> word{0};  ///< epoch:48 | next-task:16
    std::atomic<std::uint32_t> pending{0};  ///< tasks not yet completed
    std::atomic<std::uint32_t> num_tasks{0};
    std::atomic<const std::function<void(std::size_t)>*> fn{nullptr};
  };

  void worker_loop(std::size_t worker_index);
  JobSlot* acquire_slot();
  /// Claim and execute one task of `job` if any remains. `epoch` != 0
  /// restricts the claim to that job instance (submitter side); 0
  /// accepts whatever job currently occupies the slot (worker side).
  bool claim_and_run(JobSlot& job, std::uint64_t epoch);
  void finish_task(JobSlot& job);
  void wait_job(JobSlot& job);

  std::vector<std::thread> workers_;
  std::array<JobSlot, kMaxConcurrentJobs> jobs_;
  long spin_iters_ = kDefaultSpinIters;

  /// Bumped once per dispatched job; the only thing workers wait on.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> stop_{false};

  // Park/wake fallback for workers that exhausted their spin budget.
  std::mutex wake_mutex_;
  std::condition_variable cv_start_;
  std::atomic<int> num_parked_{0};

  // Park/wake fallback for submitters waiting on their job's completion.
  std::mutex done_mutex_;
  std::condition_variable cv_done_;
  std::atomic<int> num_waiting_callers_{0};
};

}  // namespace ndirect
