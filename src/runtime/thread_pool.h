// Persistent worker-thread pool with static work partitioning.
//
// The paper parallelizes with OpenMP static scheduling over a PTn x PTk
// logical thread grid (Section 6). We use an explicit pool so the thread
// count and the (thread id -> work slice) mapping are fully controlled by
// the library, which is what the Eq. 5/6 thread-mapping model requires.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ndirect {

/// Fixed-size pool. `run(n, fn)` invokes `fn(tid)` for tid in [0, n) with
/// at most `size()` OS threads; tids beyond the pool size are executed by
/// reusing workers (oversubscription, used by the SMT experiment).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }

  /// Run fn(tid) for every tid in [0, num_tasks). Blocks until all done.
  /// Task tid is executed by OS thread (tid % size()); tid 0 runs on the
  /// calling thread. fn must not throw. Thread-safe: concurrent run()
  /// calls from different caller threads serialize against each other.
  void run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

  /// Static-partitioned parallel loop over [0, count): each of the pool's
  /// threads receives one contiguous chunk. fn(begin, end) per chunk.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool sized from NDIRECT_THREADS or hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t worker_index);
  void execute_slice(std::size_t worker_index);

  std::vector<std::thread> workers_;

  std::mutex submit_mutex_;  ///< serializes concurrent run() callers
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  std::size_t num_tasks_ = 0;
  std::size_t pending_workers_ = 0;
  const std::function<void(std::size_t)>* task_ = nullptr;
  bool stop_ = false;
};

}  // namespace ndirect
