// Deterministic process-exit ordering for the observability plane.
//
// Before this existed, exit behaviour depended on static-destruction
// luck: the NDIRECT_TRACE atexit exporter could run while a
// serve::Server's executor lanes were still draining (recording trace
// events into the ring mid-export), and the NDIRECT_METRICS_FILE dump
// thread had no defined join point at all. This registry replaces that
// with one explicit LIFO hook chain behind a single std::atexit
// registration:
//
//   registration order                exit order (LIFO)
//   1. trace autostart (static init)  3. export the trace ring
//   2. metrics exporter (static init) 2. final dump + join dump thread
//   3. live servers (runtime)         1. shutdown(drain) stragglers
//
// so by the time the trace ring is exported and the metrics file gets
// its final write, every server lane has joined and nothing records
// concurrently. Hooks unregister themselves when their owner is
// destroyed normally (a Server that died before exit runs nothing).
//
// Hooks run exactly once, in LIFO registration order, on the first of:
// process exit (atexit) or an explicit run_exit_hooks() call (tests).
#pragma once

#include <cstdint>
#include <functional>

namespace ndirect {

/// Register `fn` to run at process exit (LIFO). `name` appears in
/// nothing but debuggers; keep it short. Returns a token for
/// unregister_exit_hook. Thread-safe.
std::uint64_t register_exit_hook(const char* name,
                                 std::function<void()> fn);

/// Remove a registered hook. Safe against concurrent hook execution:
/// if the chain is already running, this blocks until the chain is
/// done (so an owner that unregisters in its destructor never has its
/// hook touch freed state). Unknown/already-run tokens are a no-op.
void unregister_exit_hook(std::uint64_t token);

/// Run all registered hooks now, LIFO, each at most once (idempotent:
/// a later atexit pass re-runs nothing). Test hook; atexit calls this.
void run_exit_hooks();

/// Install SIGTERM/SIGINT handlers that run the exit-hook chain once
/// — close the admin transport, drain live servers, final metrics
/// dump, trace export — and then exit(0). run_exit_hooks() is not
/// async-signal-safe, so the handler only writes one byte down a
/// self-pipe; a watcher thread (spawned here, not in the handler) does
/// the real work. The handlers install with SA_RESETHAND: a second
/// signal while the drain is still running kills the process with the
/// default disposition — the escape hatch against a hung drain.
///
/// Idempotent; returns true when this call installed the handlers.
/// Autostarts via NDIRECT_SIGNAL_SHUTDOWN=1 or as part of the
/// NDIRECT_ADMIN_PORT admin plane (serve/admin.cpp).
bool install_signal_shutdown();

}  // namespace ndirect
