// Static range partitioning used by the thread-mapping strategy.
#pragma once

#include <cstddef>

namespace ndirect {

/// Half-open index range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// Split [0, count) into `parts` contiguous chunks whose sizes differ by at
/// most one, and return chunk `index`. The first (count % parts) chunks get
/// the extra element — the OpenMP static-schedule convention.
inline Range partition_range(std::size_t count, std::size_t parts,
                             std::size_t index) {
  if (parts == 0) return {};
  const std::size_t base = count / parts;
  const std::size_t extra = count % parts;
  const std::size_t begin =
      index * base + (index < extra ? index : extra);
  const std::size_t len = base + (index < extra ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace ndirect
