#include "runtime/scratch.h"

#include <atomic>

namespace ndirect {
namespace {

std::atomic<std::uint64_t> g_grow_events{0};

}  // namespace

float* ScratchArena::floats(ScratchSlot slot, std::size_t count) {
  AlignedBuffer<float>& buf = slots_[static_cast<int>(slot)];
  if (count > buf.size()) {
    buf.reset(count);
    ++grows_;
    g_grow_events.fetch_add(1, std::memory_order_relaxed);
  }
  return buf.data();
}

std::size_t ScratchArena::capacity_bytes() const {
  std::size_t total = 0;
  for (const auto& buf : slots_) total += buf.size() * sizeof(float);
  return total;
}

void ScratchArena::release() {
  for (auto& buf : slots_) buf.reset(0);
}

ScratchArena& this_thread_scratch() {
  thread_local ScratchArena arena;
  return arena;
}

std::uint64_t scratch_grow_events() {
  return g_grow_events.load(std::memory_order_relaxed);
}

}  // namespace ndirect
