#include "runtime/scratch.h"

#include <atomic>

namespace ndirect {
namespace {

std::atomic<std::uint64_t> g_grow_events{0};

// Nesting depth of engine invocations live on this thread; see
// ScratchDepth. Thread-local, so no synchronization is needed.
thread_local int t_scratch_depth = 0;

}  // namespace

float* ScratchArena::floats(int ns, ScratchSlot slot, std::size_t count) {
  AlignedBuffer<float>* buf;
  if (ns <= 0) {
    buf = &slots_[static_cast<int>(slot)];
  } else {
    const std::size_t index =
        static_cast<std::size_t>(ns - 1) * kScratchSlotCount +
        static_cast<std::size_t>(slot);
    if (index >= extra_.size()) extra_.resize(index + 1);
    buf = &extra_[index];
  }
  if (count > buf->size()) {
    buf->reset(count);
    ++grows_;
    g_grow_events.fetch_add(1, std::memory_order_relaxed);
  }
  return buf->data();
}

std::size_t ScratchArena::capacity_bytes() const {
  std::size_t total = 0;
  for (const auto& buf : slots_) total += buf.size() * sizeof(float);
  for (const auto& buf : extra_) total += buf.size() * sizeof(float);
  return total;
}

void ScratchArena::release() {
  for (auto& buf : slots_) buf.reset(0);
  extra_.clear();
}

ScratchArena& this_thread_scratch() {
  thread_local ScratchArena arena;
  return arena;
}

std::uint64_t scratch_grow_events() {
  return g_grow_events.load(std::memory_order_relaxed);
}

ScratchDepth::ScratchDepth() : level_(t_scratch_depth++) {}

ScratchDepth::~ScratchDepth() { --t_scratch_depth; }

}  // namespace ndirect
