// Wall-clock timing utilities used by the benchmark harnesses and by the
// Fig. 1a phase-breakdown instrumentation.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>

namespace ndirect {

/// Monotonic wall-clock stopwatch with microsecond-or-better resolution.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations (e.g. "im2col", "packing",
/// "micro-kernel") across repeated runs; used for the Fig. 1a breakdown.
///
/// Thread-safe: add() and the readers take an internal mutex, so one
/// timer can be shared by concurrently running ops (the graph executor's
/// run_profiled does exactly that). The exception is phases(), which
/// returns a reference into the map — call it only while no writer is
/// active (i.e. after the run being profiled has completed).
class PhaseTimer {
 public:
  /// RAII scope: adds the scope's duration to the named phase on exit.
  class Scope {
   public:
    Scope(PhaseTimer& owner, std::string name)
        : owner_(owner), name_(std::move(name)) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { owner_.add(name_, timer_.seconds()); }

   private:
    PhaseTimer& owner_;
    std::string name_;
    WallTimer timer_;
  };

  Scope scope(std::string name) { return Scope(*this, std::move(name)); }

  void add(const std::string& name, double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    phases_[name] += seconds;
    ++counts_[name];
  }

  /// Number of add() calls recorded for a phase (0 if never seen).
  /// Distinguishes "phase ran fast" from "phase never ran" — e.g. the
  /// packed-filter cache must drive the "transform" count to zero on
  /// steady-state inference calls.
  long count(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counts_.find(name);
    return it == counts_.end() ? 0 : it->second;
  }

  double total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_locked();
  }

  double seconds(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return seconds_locked(name);
  }

  /// Phase share in [0,1] of the total accumulated time (0 if empty).
  double fraction(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const double t = total_locked();
    return t > 0 ? seconds_locked(name) / t : 0.0;
  }

  /// Unsynchronized view; only valid while no add() can be running.
  const std::map<std::string, double>& phases() const { return phases_; }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    phases_.clear();
    counts_.clear();
  }

 private:
  double total_locked() const {
    double t = 0;
    for (const auto& [_, s] : phases_) t += s;
    return t;
  }

  double seconds_locked(const std::string& name) const {
    auto it = phases_.find(name);
    return it == phases_.end() ? 0.0 : it->second;
  }

  mutable std::mutex mutex_;
  std::map<std::string, double> phases_;
  std::map<std::string, long> counts_;
};

}  // namespace ndirect
