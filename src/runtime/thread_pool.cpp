#include "runtime/thread_pool.h"

#include <cstdlib>

#include "runtime/partition.h"

namespace ndirect {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    ++generation_;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::execute_slice(std::size_t worker_index) {
  // Worker `worker_index` runs tasks worker_index, worker_index + P, ...
  // This round-robin rule is what lets run() oversubscribe: asking for
  // 4x more tasks than threads stacks 4 tasks per OS thread.
  for (std::size_t tid = worker_index; tid < num_tasks_; tid += size()) {
    (*task_)(tid);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return generation_ != seen_generation; });
      seen_generation = generation_;
      if (stop_) return;
    }
    execute_slice(worker_index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_workers_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_tasks == 1 || workers_.empty()) {
    for (std::size_t tid = 0; tid < num_tasks; ++tid) fn(tid);
    return;
  }
  // One dispatch at a time: a second caller would otherwise overwrite
  // task_/num_tasks_ while workers still read them.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    num_tasks_ = num_tasks;
    task_ = &fn;
    pending_workers_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  execute_slice(0);  // caller acts as worker 0
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return pending_workers_ == 0; });
    task_ = nullptr;
  }
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t nthreads = std::min(count, size());
  run(nthreads, [&](std::size_t tid) {
    const Range r = partition_range(count, nthreads, tid);
    if (!r.empty()) fn(r.begin, r.end);
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("NDIRECT_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hc == 0 ? 1 : hc);
  }());
  return pool;
}

}  // namespace ndirect
