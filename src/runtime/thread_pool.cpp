#include "runtime/thread_pool.h"

#include <cstdlib>

#include "runtime/env.h"
#include "runtime/partition.h"
#include "runtime/trace.h"
#include "runtime/work_queue.h"

namespace ndirect {
namespace {

// One iteration of polite busy-waiting: a pipeline-drain hint on the
// architectures we target, a scheduler yield elsewhere.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// Spin backoff: mostly pause instructions, with a scheduler yield every
// 64 iterations so oversubscribed hosts (more pool threads than cores)
// hand the core to whoever holds the work.
inline void spin_backoff(long iteration) {
  if (iteration % 64 == 63) {
    std::this_thread::yield();
  } else {
    cpu_relax();
  }
}

long resolve_spin_iters(long spin_iters) {
  if (spin_iters >= 0) return spin_iters;
  const long v = env_long("NDIRECT_POOL_SPIN", ThreadPool::kDefaultSpinIters);
  return v < 0 ? ThreadPool::kDefaultSpinIters : v;
}

inline std::uint64_t pack_word(std::uint64_t epoch, std::uint32_t cursor) {
  return epoch << 16 | cursor;
}
inline std::uint64_t epoch_of(std::uint64_t word) { return word >> 16; }
inline std::uint32_t cursor_of(std::uint64_t word) {
  return static_cast<std::uint32_t>(word & 0xFFFF);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, long spin_iters)
    : spin_iters_(resolve_spin_iters(spin_iters)) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  generation_.fetch_add(1, std::memory_order_seq_cst);
  // Empty critical section: a worker that checked the predicate before
  // the stores above either reached cv_start_.wait() (the notify below
  // lands) or will re-check and see stop_ — never a lost wakeup.
  { std::lock_guard<std::mutex> lock(wake_mutex_); }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

// Slot lifecycle. A slot's `word` carries (epoch, cursor); the epoch is
// bumped on ARM (even -> odd, cursor kClosedCursor: claimed but not yet
// claimable), again implicitly by OPEN only rewriting the cursor
// (epoch stays odd, cursor 0), and on RETIRE (odd -> even). A claim is a
// CAS on the whole word, so it can only succeed against the exact job
// instance whose cursor the claimer observed — a task index can never
// leak into a later job that reused the slot. The slot is retired only
// after `pending` reaches zero, and pending counts every claimed task,
// so the fields (`fn`, `num_tasks`) stay valid for the full lifetime of
// every claim.
ThreadPool::JobSlot* ThreadPool::acquire_slot() {
  for (auto& job : jobs_) {
    std::uint64_t w = job.word.load(std::memory_order_relaxed);
    if ((epoch_of(w) & 1) != 0) continue;  // active
    if (job.word.compare_exchange_strong(
            w, pack_word(epoch_of(w) + 1, kClosedCursor),
            std::memory_order_acq_rel, std::memory_order_relaxed)) {
      return &job;
    }
  }
  return nullptr;  // pathological fan-out; caller executes inline
}

bool ThreadPool::claim_and_run(JobSlot& job, std::uint64_t epoch) {
  std::uint64_t w = job.word.load(std::memory_order_acquire);
  while (true) {
    const std::uint64_t e = epoch_of(w);
    const std::uint32_t cursor = cursor_of(w);
    if ((e & 1) == 0 || cursor == kClosedCursor) return false;
    if (epoch != 0 && e != epoch) return false;
    // num_tasks is read outside the claim CAS, so a concurrently
    // re-armed slot could briefly show the next job's count; the CAS
    // below then fails on the epoch and the loop re-reads. A false
    // "exhausted" here is benign: the submitter's own claim loop (which
    // pins the epoch) guarantees every task is eventually claimed.
    if (cursor >= job.num_tasks) return false;
    if (job.word.compare_exchange_weak(w, pack_word(e, cursor + 1),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      // The successful CAS observed epoch `e` still open, and our
      // pending contribution now pins the slot, so fn/num_tasks are the
      // ones published before this epoch's open store.
      if (trace_on()) {
        TraceSession& tr = TraceSession::global();
        const std::uint64_t t0 = tr.now_ns();
        (*job.fn)(cursor);
        tr.complete("pool.task", t0, tr.now_ns() - t0, "tid",
                    static_cast<std::int64_t>(cursor));
      } else {
        (*job.fn)(cursor);
      }
      finish_task(job);
      return true;
    }
  }
}

void ThreadPool::finish_task(JobSlot& job) {
  // seq_cst Dekker-pairs with a parking submitter: it stores its waiter
  // count, then re-reads pending under the mutex; we decrement pending,
  // then read the waiter count. One side always observes the other, so
  // a parked submitter either sees zero here or gets the notify below.
  if (job.pending.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    if (num_waiting_callers_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lock(done_mutex_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::wait_job(JobSlot& job) {
  long spins = 0;
  while (job.pending.load(std::memory_order_acquire) != 0) {
    if (spins < spin_iters_) {
      spin_backoff(spins++);
      continue;
    }
    num_waiting_callers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(done_mutex_);
      // Completions of OTHER jobs also notify; the predicate re-checks
      // and sleeps again. Seq_cst load: the decisive read of the Dekker
      // pairing with finish_task.
      cv_done_.wait(lock, [&] {
        return job.pending.load(std::memory_order_seq_cst) == 0;
      });
    }
    num_waiting_callers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Register this OS thread's trace lane up front (once per pool
  // thread, mutex on the cold path only) so any session started later
  // still labels pool lanes properly.
  set_trace_lane_name("pool-worker-" + std::to_string(worker_index));
  std::uint64_t seen = 0;
  while (true) {
    // Wait for a new generation: spin for the budget, then park.
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    long spins = 0;
    while (gen == seen) {
      if (spins < spin_iters_) {
        spin_backoff(spins++);
      } else {
        std::unique_lock<std::mutex> lock(wake_mutex_);
        // seq_cst pairs with the submitter's generation bump followed by
        // its num_parked_ read: one side always observes the other, so
        // either we see the new generation here or the submitter sees us
        // parked and notifies.
        num_parked_.fetch_add(1, std::memory_order_seq_cst);
        cv_start_.wait(lock, [&] {
          // seq_cst loads: the predicate is the decisive read of the
          // Dekker pairing, so it must participate in the total order
          // with the submitter's generation bump (a relaxed load is not
          // guaranteed to observe it under the formal memory model).
          return generation_.load(std::memory_order_seq_cst) != seen ||
                 stop_.load(std::memory_order_seq_cst);
        });
        num_parked_.fetch_sub(1, std::memory_order_relaxed);
      }
      gen = generation_.load(std::memory_order_acquire);
    }
    if (stop_.load(std::memory_order_acquire)) return;
    seen = gen;

    // Drain every open job. Any job armed after the last fruitless scan
    // bumped the generation after its open store, so the outer loop's
    // next generation read re-enters this drain — no lost work.
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& job : jobs_) {
        while (claim_and_run(job, 0)) progress = true;
      }
    }
  }
}

void ThreadPool::run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_tasks == 1 || workers_.empty() || num_tasks > kMaxTasksPerJob) {
    // No workers to share with (or a task count beyond the cursor
    // width, which no real dispatch reaches): execute inline. This is
    // also what makes single-threaded nested dispatch (e.g. a grouped
    // convolution's inner conv) safe to issue from inside a task.
    for (std::size_t tid = 0; tid < num_tasks; ++tid) fn(tid);
    return;
  }
  JobSlot* job = acquire_slot();
  if (job == nullptr) {
    for (std::size_t tid = 0; tid < num_tasks; ++tid) fn(tid);
    return;
  }
  // Publish the job body, then open the cursor: workers acquire-load the
  // word, so an observed open cursor implies visible fn/num_tasks.
  const std::uint64_t epoch =
      epoch_of(job->word.load(std::memory_order_relaxed));
  job->num_tasks = static_cast<std::uint32_t>(num_tasks);
  job->fn = &fn;
  job->pending.store(static_cast<std::uint32_t>(num_tasks),
                     std::memory_order_relaxed);
  job->word.store(pack_word(epoch, 0), std::memory_order_release);

  generation_.fetch_add(1, std::memory_order_seq_cst);
  if (num_parked_.load(std::memory_order_seq_cst) > 0) {
    // Workers increment num_parked_ under wake_mutex_, so acquiring it
    // here serializes against any worker between its predicate check and
    // its wait — the notify cannot slip into that window.
    std::lock_guard<std::mutex> lock(wake_mutex_);
    cv_start_.notify_all();
  }

  // Participate: claim this job's tasks like a worker would. The epoch
  // pin is what guarantees liveness — even if every worker is busy with
  // other jobs, the submitter alone claims and runs every task.
  while (claim_and_run(*job, epoch)) {
  }
  // Tasks claimed by workers may still be executing; completion is the
  // per-job countdown, which cannot be corrupted by stragglers of other
  // jobs (each job has its own counter and the slot is not reused until
  // this wait returns).
  wait_job(*job);

  job->fn = nullptr;
  job->word.store(pack_word(epoch + 1, 0), std::memory_order_release);
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t nthreads = std::min(count, size());
  run(nthreads, [&](std::size_t tid) {
    const Range r = partition_range(count, nthreads, tid);
    if (!r.empty()) fn(r.begin, r.end);
  });
}

void ThreadPool::parallel_for_dynamic(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (count + grain - 1) / grain;
  const std::size_t nthreads = std::min(chunks, size());
  if (nthreads <= 1) {
    fn(0, count);
    return;
  }
  TileScheduler sched(static_cast<int>(chunks), 1,
                      static_cast<int>(nthreads), 1,
                      static_cast<int>(nthreads), /*stealing=*/true);
  run(nthreads, [&](std::size_t tid) {
    int chunk, col;
    while (sched.claim(static_cast<int>(tid), &chunk, &col)) {
      const std::size_t begin = static_cast<std::size_t>(chunk) * grain;
      fn(begin, std::min(count, begin + grain));
    }
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("NDIRECT_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hc == 0 ? 1 : hc);
  }());
  return pool;
}

}  // namespace ndirect
