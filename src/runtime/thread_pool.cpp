#include "runtime/thread_pool.h"

#include <cstdlib>

#include "runtime/env.h"
#include "runtime/partition.h"
#include "runtime/work_queue.h"

namespace ndirect {
namespace {

// One iteration of polite busy-waiting: a pipeline-drain hint on the
// architectures we target, a scheduler yield elsewhere.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// Spin backoff: mostly pause instructions, with a scheduler yield every
// 64 iterations so oversubscribed hosts (more pool threads than cores)
// hand the core to whoever holds the work.
inline void spin_backoff(long iteration) {
  if (iteration % 64 == 63) {
    std::this_thread::yield();
  } else {
    cpu_relax();
  }
}

long resolve_spin_iters(long spin_iters) {
  if (spin_iters >= 0) return spin_iters;
  const long v = env_long("NDIRECT_POOL_SPIN", ThreadPool::kDefaultSpinIters);
  return v < 0 ? ThreadPool::kDefaultSpinIters : v;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, long spin_iters)
    : spin_iters_(resolve_spin_iters(spin_iters)) {
  if (num_threads == 0) num_threads = 1;
  slots_ = std::vector<WorkerSlot>(num_threads);  // slot 0 unused (caller)
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  generation_.fetch_add(1, std::memory_order_seq_cst);
  // Empty critical section: a worker that checked the predicate before
  // the stores above either reached cv_start_.wait() (the notify below
  // lands) or will re-check and see stop_ — never a lost wakeup.
  { std::lock_guard<std::mutex> lock(wake_mutex_); }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::execute_slice(std::size_t worker_index) {
  // Worker `worker_index` runs tasks worker_index, worker_index + P, ...
  // This round-robin rule is what lets run() oversubscribe: asking for
  // 4x more tasks than threads stacks 4 tasks per OS thread.
  for (std::size_t tid = worker_index; tid < num_tasks_; tid += size()) {
    (*task_)(tid);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen = 0;
  while (true) {
    // Wait for a new generation: spin for the budget, then park.
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    long spins = 0;
    while (gen == seen) {
      if (spins < spin_iters_) {
        spin_backoff(spins++);
      } else {
        std::unique_lock<std::mutex> lock(wake_mutex_);
        // seq_cst pairs with the submitter's generation bump followed by
        // its num_parked_ read: one side always observes the other, so
        // either we see the new generation here or the submitter sees us
        // parked and notifies.
        num_parked_.fetch_add(1, std::memory_order_seq_cst);
        cv_start_.wait(lock, [&] {
          // seq_cst loads: the predicate is the decisive read of the
          // Dekker pairing, so it must participate in the total order
          // with the submitter's generation bump (a relaxed load is not
          // guaranteed to observe it under the formal memory model).
          return generation_.load(std::memory_order_seq_cst) != seen ||
                 stop_.load(std::memory_order_seq_cst);
        });
        num_parked_.fetch_sub(1, std::memory_order_relaxed);
      }
      gen = generation_.load(std::memory_order_acquire);
    }
    if (stop_.load(std::memory_order_acquire)) return;
    seen = gen;

    execute_slice(worker_index);
    // Publish arrival through this worker's own slot. The slot is the
    // ONLY completion signal: a shared countdown would race across
    // generations (run() returns once every slot shows `gen`, so a
    // straggler's decrement could land after the next run() re-armed
    // the counter and corrupt it). seq_cst Dekker-pairs with the
    // submitter, which stores caller_waiting_ and then re-reads the
    // slot: one side always observes the other, so a parked submitter
    // is either never parked on this slot or gets the notify below.
    slots_[worker_index].done_gen.store(seen, std::memory_order_seq_cst);
    if (caller_waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(done_mutex_);
      cv_done_.notify_one();
    }
  }
}

void ThreadPool::run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_tasks == 1 || workers_.empty()) {
    for (std::size_t tid = 0; tid < num_tasks; ++tid) fn(tid);
    return;
  }
  // One dispatch at a time: a second caller would otherwise overwrite
  // task_/num_tasks_ while workers still read them.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  num_tasks_ = num_tasks;
  task_ = &fn;
  const std::uint64_t gen =
      generation_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (num_parked_.load(std::memory_order_seq_cst) > 0) {
    // Workers increment num_parked_ under wake_mutex_, so acquiring it
    // here serializes against any worker between its predicate check and
    // its wait — the notify cannot slip into that window.
    std::lock_guard<std::mutex> lock(wake_mutex_);
    cv_start_.notify_all();
  }

  execute_slice(0);  // caller acts as worker 0

  // Wait for all workers to arrive. Completion is tracked only through
  // the per-worker arrival slots (each written by its owner, monotone
  // in the generation): unlike a shared countdown, a slot cannot be
  // corrupted by a straggler from the previous generation publishing
  // after this run() re-armed dispatch state.
  long spins = 0;
  std::size_t next_unarrived = 1;
  while (next_unarrived < size()) {
    if (slots_[next_unarrived].done_gen.load(std::memory_order_acquire) >=
        gen) {
      ++next_unarrived;
      continue;
    }
    if (spins < spin_iters_) {
      spin_backoff(spins++);
    } else {
      // Park until the slot we are blocked on arrives. Every arriving
      // worker that sees caller_waiting_ notifies under done_mutex_;
      // the predicate's seq_cst load pairs with the worker's seq_cst
      // slot store (Dekker), so the arrival is either visible here or
      // its worker saw caller_waiting_ and will take the mutex and
      // notify — no lost wakeup. Wakes for other slots re-check and
      // sleep again; the loop then parks on the next unarrived slot.
      caller_waiting_.store(true, std::memory_order_seq_cst);
      {
        std::unique_lock<std::mutex> lock(done_mutex_);
        cv_done_.wait(lock, [&] {
          return slots_[next_unarrived].done_gen.load(
                     std::memory_order_seq_cst) >= gen;
        });
      }
      caller_waiting_.store(false, std::memory_order_relaxed);
    }
  }
  task_ = nullptr;
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t nthreads = std::min(count, size());
  run(nthreads, [&](std::size_t tid) {
    const Range r = partition_range(count, nthreads, tid);
    if (!r.empty()) fn(r.begin, r.end);
  });
}

void ThreadPool::parallel_for_dynamic(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (count + grain - 1) / grain;
  const std::size_t nthreads = std::min(chunks, size());
  if (nthreads <= 1) {
    fn(0, count);
    return;
  }
  TileScheduler sched(static_cast<int>(chunks), 1,
                      static_cast<int>(nthreads), 1,
                      static_cast<int>(nthreads), /*stealing=*/true);
  run(nthreads, [&](std::size_t tid) {
    int chunk, col;
    while (sched.claim(static_cast<int>(tid), &chunk, &col)) {
      const std::size_t begin = static_cast<std::size_t>(chunk) * grain;
      fn(begin, std::min(count, begin + grain));
    }
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("NDIRECT_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hc == 0 ? 1 : hc);
  }());
  return pool;
}

}  // namespace ndirect
