// Hardware performance counters (PMU) for the telemetry layer.
//
// One perf_event_open group per OS thread — cycles as the leader plus
// instructions, L1D-read misses, LLC misses and backend-stall cycles as
// optional members — read with a single group read() so all five values
// come from the same scheduling interval and can be delta'd across a
// worker task or an engine phase. Per-thread scoping (pid=0, cpu=-1,
// no inherit) is what makes the deltas attributable to the pool worker
// that did the work: the engine reads the calling thread's group at
// task boundaries and adds the difference into that worker's telemetry
// slot.
//
// Fallback ladder (each step degrades, never fails):
//   1. full group: all five events counted;
//   2. optional members that the kernel/PMU rejects (common for
//      stalled-cycles, or L1D/LLC on partial PMUs) are simply absent —
//      their deltas read as 0 and event_available() reports them;
//   3. leader open fails (non-Linux build, perf_event_paranoid,
//      EPERM/ENOSYS in containers, -DNDIRECT_PMU=OFF): the null
//      backend — open() returns false, read() returns an invalid
//      all-zero sample, and every consumer keeps running with zeroed
//      PMU fields.
//
// Gating is two-level, mirroring runtime/telemetry.h:
//   * compile time — configure with -DNDIRECT_PMU=OFF and the backend
//     is the null one on every platform (kPmuCompiled = false);
//   * run time — NDIRECT_PMU: 0/off disables, 1/on (default) collects
//     per-task deltas, 2/phase additionally attributes L1D misses to
//     the pack vs compute phases inside the engine's tile loop (extra
//     group reads around each pack call; measurably more intrusive, so
//     opt-in). set_pmu_mode() overrides in-process.
//
// Values are multiplex-scaled: when the kernel time-shares the PMU
// (time_running < time_enabled), counts are extrapolated by the
// enabled/running ratio, the standard perf correction.
#pragma once

#include <cstdint>

namespace ndirect {

/// Events in the group, in read order. Kept in sync with the
/// Counter::kPmu* telemetry counters (telemetry.h).
enum class PmuEvent : int {
  kCycles = 0,     ///< PERF_COUNT_HW_CPU_CYCLES (group leader)
  kInstructions,   ///< PERF_COUNT_HW_INSTRUCTIONS
  kL1DMisses,      ///< L1D read misses (cache event)
  kLLCMisses,      ///< PERF_COUNT_HW_CACHE_MISSES (LLC)
  kStalledCycles,  ///< PERF_COUNT_HW_STALLED_CYCLES_BACKEND
};
inline constexpr int kPmuEventCount = 5;

/// Stable snake_case name ("cycles", "l1d_misses", ...).
const char* pmu_event_name(PmuEvent e);

#if defined(NDIRECT_PMU_DISABLED)
inline constexpr bool kPmuCompiled = false;
#else
inline constexpr bool kPmuCompiled = true;
#endif

/// One scaled reading of the whole group. `valid` is false when the
/// backend is null (values are then all zero); individual events the
/// ladder dropped read as 0 within a valid sample.
struct PmuSample {
  std::uint64_t v[kPmuEventCount] = {};
  bool valid = false;

  std::uint64_t value(PmuEvent e) const {
    return v[static_cast<int>(e)];
  }
};

/// Delta b - a per event, saturating at 0 (a multiplex-scaled counter
/// can regress by rounding). Invalid when either sample is.
PmuSample pmu_delta(const PmuSample& a, const PmuSample& b);

/// The counter group of one OS thread. Construction is free; open()
/// performs the perf_event_open ladder and is idempotent. The fds are
/// closed on destruction (thread exit for the thread_local instance).
class PmuThreadCounters {
 public:
  PmuThreadCounters() = default;
  ~PmuThreadCounters();

  PmuThreadCounters(const PmuThreadCounters&) = delete;
  PmuThreadCounters& operator=(const PmuThreadCounters&) = delete;

  /// Open the group on the calling thread (the thread that will be
  /// measured — the group counts this thread only). Returns active().
  /// Safe to call repeatedly; later calls are one branch.
  bool open();
  void close();

  /// True when the leader opened and reads succeed.
  bool active() const { return leader_fd_ >= 0; }

  /// True when `e` survived the open ladder (always false when
  /// !active()).
  bool event_available(PmuEvent e) const {
    return fd_[static_cast<int>(e)] >= 0;
  }

  /// One group read of the calling thread's counters, multiplex-scaled.
  /// Invalid (all zero) when !active() or the read fails.
  PmuSample read() const;

 private:
  int fd_[kPmuEventCount] = {-1, -1, -1, -1, -1};
  std::uint64_t id_[kPmuEventCount] = {};
  int leader_fd_ = -1;
  bool open_attempted_ = false;
};

/// The calling OS thread's lazily-opened group. Pool workers, graph
/// runners and the main thread each get their own; the engine calls
/// this once per worker task. open() is NOT called implicitly — call
/// sites gate on pmu_mode()/pmu_available() and open explicitly.
PmuThreadCounters& this_thread_pmu();

/// Runtime mode from NDIRECT_PMU: 0 = off, 1 = per-task deltas
/// (default), 2 = per-task deltas + per-phase L1D attribution.
/// Always 0 when compiled out.
int pmu_mode();
void set_pmu_mode(int mode);

/// True when a usable group can be opened on this host (probed once by
/// actually opening and reading one). False on non-Linux, under a
/// restrictive perf_event_paranoid, in seccomp'd containers, or when
/// compiled out — the null-backend cases.
bool pmu_available();

}  // namespace ndirect
