// Thread-safe trace-event ring buffer with Chrome tracing / Perfetto
// JSON export.
//
// Recording is a single relaxed fetch_add on a cursor plus a plain
// store into a preallocated slot — no locks, no allocation, bounded
// memory (events past the capacity are counted as dropped, never
// block). Events carry steady-clock timestamps relative to the session
// start and the recording OS thread's lane id; export_json() writes the
// standard {"traceEvents":[...]} object that chrome://tracing and
// https://ui.perfetto.dev open directly.
//
// Enablement: TraceSession::global().start() in-process, or set
// NDIRECT_TRACE=<path> in the environment — the session then starts at
// load time and exports to <path> at process exit (capacity via
// NDIRECT_TRACE_EVENTS, default 64k events). trace_on() is the hot-path
// guard: one relaxed atomic load, constant-false when the library is
// configured with -DNDIRECT_TELEMETRY=OFF.
//
// Export assumes the traced work has completed (the dispatch joins of
// pool/graph runs are the happens-before edges); events recorded while
// an export is running may be missed or torn and are simply skipped.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ndirect {

namespace trace_detail {
extern std::atomic<bool> g_on;
}  // namespace trace_detail

/// Hot-path guard: is the global session recording?
inline bool trace_on() {
#if defined(NDIRECT_TELEMETRY_DISABLED)
  return false;
#else
  return trace_detail::g_on.load(std::memory_order_relaxed);
#endif
}

/// One recorded event. Names are not copied: pass string literals or
/// other pointers that outlive the session (every in-tree call site
/// uses literals or Op::name()).
struct TraceEvent {
  const char* name = nullptr;
  const char* arg1_name = nullptr;  ///< optional integer arg, e.g. "row"
  const char* arg2_name = nullptr;
  std::int64_t arg1 = 0;
  std::int64_t arg2 = 0;
  std::uint64_t ts_ns = 0;   ///< since session start
  std::uint64_t dur_ns = 0;  ///< 'X' events only
  std::uint32_t tid = 0;     ///< recording thread's lane id
  char ph = 'X';             ///< 'X' complete, 'B' begin, 'E' end,
                             ///< 'i' instant, 'C' counter sample
};

/// Small id for the calling OS thread, stable for the thread's
/// lifetime, assigned on first use (0, 1, 2, ... in first-use order —
/// the process main thread is normally lane 0). This is the `tid` field
/// of every event the thread records.
int trace_lane();

/// Name the calling thread's lane ("pool-worker-3", "graph-runner-1");
/// exported as Chrome thread_name metadata so the timeline shows real
/// lane labels. Idempotent, cheap, callable whether or not a session is
/// active.
void set_trace_lane_name(const std::string& name);

/// Snapshot of the lane-name registry, indexed by lane id (test hook).
std::vector<std::string> trace_lane_names();

class TraceSession {
 public:
  static TraceSession& global();

  /// Begin recording into a fresh ring of `capacity` events (0 = the
  /// NDIRECT_TRACE_EVENTS env var, default kDefaultCapacity). Restarts
  /// reset the clock and drop previously recorded events. No-op when
  /// the library is built with -DNDIRECT_TELEMETRY=OFF.
  void start(std::size_t capacity = 0);
  void stop();   ///< stop recording; events stay exportable
  void clear();  ///< stop and discard events

  bool enabled() const { return trace_on(); }

  /// Nanoseconds since start() (0 when never started).
  std::uint64_t now_ns() const;

  /// Record a complete ('X') span that ran [ts_ns, ts_ns + dur_ns).
  void complete(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
                const char* arg1_name = nullptr, std::int64_t arg1 = 0,
                const char* arg2_name = nullptr, std::int64_t arg2 = 0);
  /// Duration ('B'/'E') pair; must be balanced on the same thread.
  void begin(const char* name, const char* arg1_name = nullptr,
             std::int64_t arg1 = 0);
  void end(const char* name);
  void instant(const char* name);
  /// Chrome counter-track sample ('C'): up to two named series under
  /// one counter name. The engine emits "pmu" counters (l1d/llc miss
  /// deltas) per worker task when both tracing and the PMU are on.
  void counter(const char* name, const char* arg1_name, std::int64_t arg1,
               const char* arg2_name = nullptr, std::int64_t arg2 = 0);

  std::size_t size() const;     ///< events recorded (<= capacity)
  std::size_t dropped() const;  ///< events lost to a full ring
  std::size_t capacity() const;

  /// Ordered copy of the recorded events (sorted by ts; test hook).
  /// 'B'/'E' spans cut by a session edge — an 'E' whose 'B' predates
  /// start(), a 'B' whose 'E' never arrived before stop() — are
  /// pruned so the export always nests LIFO, even for sessions
  /// started or stopped mid-traffic over the admin plane.
  std::vector<TraceEvent> events() const;

  /// The full Chrome-tracing JSON object as a string.
  std::string json() const;

  /// Write json() to `path`; returns false (and keeps the events) on
  /// I/O failure.
  bool export_json(const std::string& path) const;

  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

 private:
  void record(const TraceEvent& ev);

  std::vector<TraceEvent> ring_;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::size_t> dropped_{0};
  std::atomic<std::uint64_t> epoch_ns_{0};  ///< monotonic_ns() at start
};

}  // namespace ndirect
