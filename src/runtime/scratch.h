// Persistent per-thread scratch arenas for the kernel hot paths.
//
// Every convolution call needs small, short-lived working buffers (the
// packed input window, the on-the-fly transformed filter tile). The seed
// engine heap-allocated these inside each worker on every call, a fixed
// cost that dominates exactly the small late-stage layers (7x7 spatial)
// where the kernel itself runs in microseconds. An arena instead lives
// as long as its OS thread: buffers grow monotonically to the high-water
// mark of the shapes the thread has executed and are reused verbatim on
// every later call, so steady-state inference performs zero heap
// allocations inside the loop nest.
//
// Concurrency model: one arena per OS thread (`this_thread_scratch()`),
// never shared. Pool workers and caller threads each get their own, so
// concurrent convolutions on different pools or engines can never alias
// a buffer. Oversubscribed task ids reuse their OS thread's arena
// sequentially, which is safe because a task's scratch use ends before
// the next task starts on that thread.
#pragma once

#include <cstddef>
#include <cstdint>

#include "runtime/aligned_buffer.h"

namespace ndirect {

/// Independently grown buffers within one arena. A kernel that needs two
/// live buffers at once must use two distinct slots.
enum class ScratchSlot : int {
  kPack = 0,     ///< packed input window ([tc][R][packw] + vector slack)
  kFilterTile,   ///< on-the-fly transformed filter tile
  kAux0,         ///< free for other engines (fp16/grouped/depthwise)
  kAux1,
};

inline constexpr int kScratchSlotCount = 4;

/// A set of cache-line-aligned, grow-only float buffers owned by one OS
/// thread. Obtain via this_thread_scratch(); do not share across threads.
class ScratchArena {
 public:
  /// Buffer for `slot` holding at least `count` floats. Grows (and
  /// invalidates prior contents of that slot) only when `count` exceeds
  /// the slot's high-water mark; otherwise returns the existing storage
  /// untouched. The underlying allocation carries a cache line of tail
  /// slack, so kernels may read (not write) a few lanes past the end.
  float* floats(ScratchSlot slot, std::size_t count);

  /// Number of times any slot of this arena (re)allocated. Constant
  /// across calls once the arena is warm — tests assert on this.
  std::uint64_t grow_count() const { return grows_; }

  /// Current total capacity across slots, in bytes.
  std::size_t capacity_bytes() const;

  /// Free all slots (memory pressure / tests). The next floats() call
  /// reallocates.
  void release();

 private:
  AlignedBuffer<float> slots_[kScratchSlotCount];
  std::uint64_t grows_ = 0;
};

/// The calling OS thread's persistent arena (thread-local singleton;
/// created on first use, freed at thread exit).
ScratchArena& this_thread_scratch();

/// Process-wide count of arena growth events across all threads.
/// Monotonic; a window with no growth proves the hot path ran
/// allocation-free (see runtime_test).
std::uint64_t scratch_grow_events();

}  // namespace ndirect
