// Persistent per-thread scratch arenas for the kernel hot paths.
//
// Every convolution call needs small, short-lived working buffers (the
// packed input window, the on-the-fly transformed filter tile). The seed
// engine heap-allocated these inside each worker on every call, a fixed
// cost that dominates exactly the small late-stage layers (7x7 spatial)
// where the kernel itself runs in microseconds. An arena instead lives
// as long as its OS thread: buffers grow monotonically to the high-water
// mark of the shapes the thread has executed and are reused verbatim on
// every later call, so steady-state inference performs zero heap
// allocations inside the loop nest.
//
// Concurrency model: one arena per OS thread (`this_thread_scratch()`),
// never shared. Pool workers and caller threads each get their own, so
// concurrent convolutions on different pools or engines can never alias
// a buffer. Oversubscribed task ids reuse their OS thread's arena
// sequentially, which is safe because a task's scratch use ends before
// the next task starts on that thread.
//
// Namespaces: a single OS thread can nonetheless be inside TWO
// convolutions at once — the re-entrant pool lets a worker that finished
// its slice of conv A claim a task of conv B while A's buffers are still
// live further up its own call stack (nested dispatch has the same
// shape). Each nesting level therefore addresses a disjoint namespace of
// slots: `floats(ns, slot, n)` with ns = the thread's current
// ScratchDepth level. Level 0 is the fixed hot-path storage; deeper
// levels grow lazily and are only touched by re-entrant execution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/aligned_buffer.h"

namespace ndirect {

/// Independently grown buffers within one arena. A kernel that needs two
/// live buffers at once must use two distinct slots.
enum class ScratchSlot : int {
  kPack = 0,     ///< packed input window ([tc][R][packw] + vector slack)
  kFilterTile,   ///< on-the-fly transformed filter tile
  kAux0,         ///< free for other engines (fp16/grouped/depthwise)
  kAux1,
};

inline constexpr int kScratchSlotCount = 4;

/// A set of cache-line-aligned, grow-only float buffers owned by one OS
/// thread. Obtain via this_thread_scratch(); do not share across threads.
class ScratchArena {
 public:
  /// Buffer for `slot` holding at least `count` floats. Grows (and
  /// invalidates prior contents of that slot) only when `count` exceeds
  /// the slot's high-water mark; otherwise returns the existing storage
  /// untouched. The underlying allocation carries a cache line of tail
  /// slack, so kernels may read (not write) a few lanes past the end.
  float* floats(ScratchSlot slot, std::size_t count) {
    return floats(0, slot, count);
  }

  /// Same, within namespace `ns` (>= 0). Distinct namespaces never alias,
  /// so a task executing inside another task (re-entrant pool dispatch)
  /// addresses its own buffers by passing its nesting depth. Namespace 0
  /// is the pre-sized hot path; higher namespaces allocate on first use.
  float* floats(int ns, ScratchSlot slot, std::size_t count);

  /// Number of times any slot of this arena (re)allocated. Constant
  /// across calls once the arena is warm — tests assert on this.
  std::uint64_t grow_count() const { return grows_; }

  /// Current total capacity across slots, in bytes.
  std::size_t capacity_bytes() const;

  /// Free all slots (memory pressure / tests). The next floats() call
  /// reallocates.
  void release();

 private:
  AlignedBuffer<float> slots_[kScratchSlotCount];  ///< namespace 0
  /// Namespaces >= 1, laid out (ns-1)-major: entry
  /// (ns-1)*kScratchSlotCount + slot. Grown only by the owning thread.
  std::vector<AlignedBuffer<float>> extra_;
  std::uint64_t grows_ = 0;
};

/// The calling OS thread's persistent arena (thread-local singleton;
/// created on first use, freed at thread exit).
ScratchArena& this_thread_scratch();

/// RAII marker of one engine invocation on this thread. Construction
/// claims the thread's current nesting level (0 for the outermost
/// engine, 1 for an engine entered while level 0 is still live, ...);
/// destruction releases it. The claimed `level()` is the arena namespace
/// the invocation must pass to ScratchArena::floats, which is what keeps
/// a worker's re-entrant task from clobbering the pack buffer of the
/// convolution further down its own call stack.
class ScratchDepth {
 public:
  ScratchDepth();
  ~ScratchDepth();
  ScratchDepth(const ScratchDepth&) = delete;
  ScratchDepth& operator=(const ScratchDepth&) = delete;

  int level() const { return level_; }

 private:
  int level_;
};

/// Process-wide count of arena growth events across all threads.
/// Monotonic; a window with no growth proves the hot path ran
/// allocation-free (see runtime_test).
std::uint64_t scratch_grow_events();

}  // namespace ndirect
