// Locality-aware work-stealing scheduler over a 2D tile grid.
//
// The paper's Eq. 5/6 thread mapping hands every thread one static
// contiguous slice of the (row, k-block) iteration space, which pins
// wall time to the slowest thread whenever the slices are ragged (K or
// N*P not a multiple of the grid), the thread count has no good divisor
// split (7, 11 -> degenerate 1xT grids), or the cores are unequal
// (big.LITTLE, co-tenants). The scheduler here keeps the paper's
// mapping as the *seed* assignment — worker (tn, tk) starts on exactly
// the tiles Eq. 5/6 would have given it, preserving the cache-affinity
// argument — and lets exhausted workers steal, nearest neighbour in the
// PTn x PTk grid first (same-tn victims share the thief's input rows),
// then globally.
//
// Tiles are macro-tiles: correctness never depends on who executes a
// tile, because tiles partition disjoint output (row-chunk, k-chunk)
// blocks and the whole C reduction stays inside a tile. Stealing
// therefore cannot change results, only the execution schedule.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/aligned_buffer.h"

namespace ndirect {

/// Lock-free claimable range [begin, end) packed into one 64-bit atomic.
/// Owners pop from the front (preserving the seeded traversal order),
/// thieves pop from the back (taking the work the owner would reach
/// last, which is the coldest for the owner and no colder for the
/// thief). Both ends move through the same CAS word, so a front pop and
/// a back pop can never hand out the same index; indices are monotone
/// within a generation, so there is no ABA.
class RangeDeque {
 public:
  void reset(std::uint32_t begin, std::uint32_t end) {
    span_.store(pack(begin, end), std::memory_order_release);
  }

  /// Claim the lowest remaining index (owner side).
  bool pop_front(std::uint32_t* idx) {
    std::uint64_t s = span_.load(std::memory_order_acquire);
    while (true) {
      const std::uint32_t b = lo(s), e = hi(s);
      if (b >= e) return false;
      if (span_.compare_exchange_weak(s, pack(b + 1, e),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        *idx = b;
        return true;
      }
    }
  }

  /// Claim the highest remaining index (thief side).
  bool pop_back(std::uint32_t* idx) {
    std::uint64_t s = span_.load(std::memory_order_acquire);
    while (true) {
      const std::uint32_t b = lo(s), e = hi(s);
      if (b >= e) return false;
      if (span_.compare_exchange_weak(s, pack(b, e - 1),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        *idx = e - 1;
        return true;
      }
    }
  }

  std::uint32_t remaining() const {
    const std::uint64_t s = span_.load(std::memory_order_acquire);
    return hi(s) > lo(s) ? hi(s) - lo(s) : 0;
  }

 private:
  static std::uint64_t pack(std::uint32_t b, std::uint32_t e) {
    return static_cast<std::uint64_t>(e) << 32 | b;
  }
  static std::uint32_t lo(std::uint64_t s) {
    return static_cast<std::uint32_t>(s);
  }
  static std::uint32_t hi(std::uint64_t s) {
    return static_cast<std::uint32_t>(s >> 32);
  }

  std::atomic<std::uint64_t> span_{0};
};

/// Locality class of a successful steal, by how far the thief reached
/// in the PTn x PTk worker grid.
enum class StealClass : int {
  kLocal = 0,   ///< distance 0: a pure stealer draining its alias seed
  kNeighbour,   ///< pass 1: same PTn row (victim shares the input rows)
  kGlobal,      ///< pass 2: anywhere, by Manhattan distance
};
inline constexpr int kStealClassCount = 3;

/// Aggregate observability of one scheduled run.
struct SchedulerStats {
  std::uint64_t tiles = 0;   ///< tiles in the grid
  std::uint64_t steals = 0;  ///< tiles executed outside their seed worker
  std::uint64_t local_steals = 0;      ///< StealClass::kLocal share
  std::uint64_t neighbour_steals = 0;  ///< StealClass::kNeighbour share
  std::uint64_t global_steals = 0;     ///< StealClass::kGlobal share
  std::uint64_t max_worker_tiles = 0;  ///< most tiles any worker executed
  std::uint64_t min_worker_tiles = 0;  ///< fewest (imbalance = max - min)
  int workers = 0;
};

/// Scheduler for a rows x cols tile grid seeded over a
/// row_parts x col_parts worker grid (the Eq. 5/6 mapping at tile
/// granularity). `workers` may exceed row_parts * col_parts; the extra
/// workers own no tiles and act as pure stealers (how non-divisor
/// thread counts use their remainder threads). With `stealing` false it
/// degenerates to the paper's static mapping: each worker drains its
/// seed block and stops.
class TileScheduler {
 public:
  TileScheduler(int rows, int cols, int row_parts, int col_parts,
                int workers, bool stealing);

  /// Claim the next tile for `worker`: own seed block front-to-back
  /// first, then (if stealing) victims nearest in the worker grid.
  /// Returns false when no unclaimed tile remains anywhere this worker
  /// may take from.
  bool claim(int worker, int* row, int* col);

  int workers() const { return static_cast<int>(queues_.size()); }
  std::uint64_t tiles() const {
    return static_cast<std::uint64_t>(rows_) * cols_;
  }

  /// Tiles executed / stolen by one worker so far (test hooks).
  std::uint64_t worker_executed(int worker) const {
    return queues_[static_cast<std::size_t>(worker)].executed.load(
        std::memory_order_relaxed);
  }
  std::uint64_t worker_stolen(int worker) const {
    return queues_[static_cast<std::size_t>(worker)].stolen.load(
        std::memory_order_relaxed);
  }
  std::uint64_t worker_steals(int worker, StealClass cls) const {
    return queues_[static_cast<std::size_t>(worker)]
        .stolen_class[static_cast<int>(cls)]
        .load(std::memory_order_relaxed);
  }

  /// Successful steals by this scheduler instance alone. The process
  /// global scheduler_steal_events() mixes every scheduler in flight
  /// (concurrent graph branches each run their own); per-run attribution
  /// reads this or SchedulerStats instead.
  std::uint64_t steal_events() const;

  /// Aggregate after a run (not linearizable mid-run).
  SchedulerStats stats() const;

 private:
  /// One worker's seed block and claim state, on its own cache line so
  /// the owner's CAS traffic does not bounce neighbouring queues.
  struct alignas(kCacheLineBytes) WorkerQueue {
    RangeDeque deque;  ///< local indices into the seed block
    std::uint32_t row0 = 0, row1 = 0, col0 = 0, col1 = 0;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};  ///< sum of stolen_class[]
    std::atomic<std::uint64_t> stolen_class[kStealClassCount] = {};
  };

  void map_local(const WorkerQueue& q, std::uint32_t local, int* row,
                 int* col) const;
  bool steal_from(int thief, int victim, StealClass cls, int* row,
                  int* col);

  int rows_, cols_;
  int row_parts_, col_parts_;
  bool stealing_;
  std::vector<WorkerQueue> queues_;
};

/// Process-wide count of successful steals across all schedulers
/// (monotone, like scratch_grow_events); a window with no increase
/// proves a static-schedule run never stole.
std::uint64_t scheduler_steal_events();

}  // namespace ndirect
