// Minimal embedded HTTP/1.1 server for the admin plane (DESIGN.md §17).
//
// Dependency-free and deliberately small: one blocking-accept listener
// thread feeding a fixed pool of handler threads over a connection
// queue. Reads are poll-based with a per-connection deadline and a
// request-size cap, so a stalled or malicious client can pin a handler
// thread for at most `read_timeout_ms` and `max_request_bytes` of
// memory; responses always carry an exact Content-Length and
// `Connection: close` (one request per connection — the expected
// clients are scrapers at ~1 Hz and curl, not browsers).
//
// Routing is exact-path: route(method, path, handler) registers a
// handler returning an HttpResponse. The server owns the error paths a
// scraper can trigger: 400 (malformed / oversized request), 404
// (unknown path), 405 (known path, wrong method — with an Allow
// header), 500 (handler threw); handlers return 503 themselves when a
// resource is warming or draining (serve/admin.h's /readyz).
//
// This is an *admin* transport, not a data plane: correctness and
// bounded resource use over throughput. Inference traffic never flows
// through it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace ndirect {

/// One parsed request. Header keys are matched case-insensitively via
/// header(); the target's query string (after '?') is split off into
/// `query` so route paths stay exact.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (upper-case as sent)
  std::string path;    ///< target path, query stripped
  std::string query;   ///< raw query string ("" when absent)
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of the first header matching `name` case-insensitively, or
  /// nullptr when absent.
  const std::string* header(const std::string& name) const;

  /// Value of `key` in the query string ("k1=v1&k2=v2"), or `fallback`
  /// when absent/empty. No percent-decoding (admin values are plain).
  std::string query_param(const std::string& key,
                          const std::string& fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers, e.g. {"Allow", "GET"} on a 405.
  std::vector<std::pair<std::string, std::string>> headers;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";  ///< admin default: loopback
  int port = 0;                            ///< 0 = ephemeral (port())
  int handler_threads = 2;
  std::size_t max_request_bytes = 64 * 1024;
  long read_timeout_ms = 5000;   ///< per-connection request deadline
  long write_timeout_ms = 5000;  ///< socket send timeout
  int backlog = 16;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();  ///< stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register `handler` for exact (method, path). Must be called
  /// before start(); re-registering the same pair replaces the handler.
  void route(const std::string& method, const std::string& path,
             HttpHandler handler);

  /// Bind, listen, and spawn the listener + handler threads. Throws
  /// std::runtime_error when the address cannot be bound.
  void start();

  /// Close the listener, drain the connection queue (pending
  /// connections are closed unanswered), join every thread.
  /// Idempotent; safe from any thread including exit hooks.
  void stop();

  bool running() const;

  /// The bound port (resolves an ephemeral request) — valid after
  /// start(), 0 before.
  int port() const;

  /// Requests fully answered (any status) since start().
  std::uint64_t requests_handled() const;

  const HttpServerOptions& options() const { return options_; }

 private:
  void listen_loop();
  void handler_loop();
  void handle_connection(int fd);

  HttpServerOptions options_;
  std::vector<std::pair<std::pair<std::string, std::string>, HttpHandler>>
      routes_;  ///< ((method, path), handler)

  mutable std::mutex mu_;
  std::condition_variable conn_cv_;
  std::deque<int> conn_queue_;
  bool stop_requested_ = false;
  bool running_ = false;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::thread listener_;
  std::vector<std::thread> handlers_;
  std::atomic<std::uint64_t> handled_{0};
};

/// Reason phrase for an HTTP status code ("OK", "Not Found", ...).
const char* http_status_reason(int status);

// ---------------------------------------------------------------------------
// Minimal blocking client — enough for self-scrapes, tests, and the
// bench's 1 Hz scraper. One request per connection (Connection: close),
// response read to EOF.
// ---------------------------------------------------------------------------

struct HttpClientResponse {
  bool ok = false;     ///< transport-level success (any HTTP status)
  int status = 0;      ///< 0 when !ok
  std::string content_type;
  std::string body;
  std::string error;   ///< transport diagnostic when !ok
};

/// Perform one `method` request against host:port/path. `timeout_ms`
/// bounds connect, send and the whole response read.
HttpClientResponse http_fetch(const std::string& host, int port,
                              const std::string& method,
                              const std::string& path,
                              const std::string& body = "",
                              long timeout_ms = 5000);

inline HttpClientResponse http_get(const std::string& host, int port,
                                   const std::string& path,
                                   long timeout_ms = 5000) {
  return http_fetch(host, port, "GET", path, "", timeout_ms);
}

inline HttpClientResponse http_post(const std::string& host, int port,
                                    const std::string& path,
                                    const std::string& body = "",
                                    long timeout_ms = 5000) {
  return http_fetch(host, port, "POST", path, body, timeout_ms);
}

}  // namespace ndirect
