#include "runtime/shutdown.h"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include <unistd.h>

#include "runtime/env.h"

namespace ndirect {
namespace {

struct Hook {
  std::uint64_t token = 0;
  const char* name = "";
  std::function<void()> fn;
};

struct Chain {
  std::mutex mu;
  std::condition_variable done_cv;
  std::vector<Hook> hooks;  ///< run back-to-front (LIFO)
  std::uint64_t next_token = 1;
  bool atexit_registered = false;
  bool running = false;
  std::thread::id runner;
};

// Leaked on purpose: hooks are unregistered by owners whose
// destructors may run during static destruction, after a non-leaked
// chain would already be dead (the exact ordering bug this file
// exists to remove).
Chain& chain() {
  static Chain* c = new Chain;
  return *c;
}

}  // namespace

std::uint64_t register_exit_hook(const char* name,
                                 std::function<void()> fn) {
  Chain& c = chain();
  std::lock_guard<std::mutex> lk(c.mu);
  if (!c.atexit_registered) {
    c.atexit_registered = true;
    std::atexit(run_exit_hooks);
  }
  const std::uint64_t token = c.next_token++;
  c.hooks.push_back(Hook{token, name, std::move(fn)});
  return token;
}

void unregister_exit_hook(std::uint64_t token) {
  Chain& c = chain();
  std::unique_lock<std::mutex> lk(c.mu);
  // If the chain is mid-run on another thread, the hook may be
  // executing right now against state its owner is about to free:
  // block until the whole chain finished. From the runner thread
  // itself (a hook unregistering a sibling) there is nothing to wait
  // for — the currently executing hook was already popped.
  if (c.running && c.runner != std::this_thread::get_id())
    c.done_cv.wait(lk, [&c] { return !c.running; });
  for (auto it = c.hooks.begin(); it != c.hooks.end(); ++it) {
    if (it->token == token) {
      c.hooks.erase(it);
      return;
    }
  }
}

void run_exit_hooks() {
  Chain& c = chain();
  std::unique_lock<std::mutex> lk(c.mu);
  if (c.running) {  // concurrent caller: wait so "after" means after
    c.done_cv.wait(lk, [&c] { return !c.running; });
    return;
  }
  c.running = true;
  c.runner = std::this_thread::get_id();
  while (!c.hooks.empty()) {
    Hook h = std::move(c.hooks.back());
    c.hooks.pop_back();
    lk.unlock();
    try {
      h.fn();
    } catch (...) {
      // Exit hooks must never take the process down with them.
    }
    lk.lock();
  }
  c.running = false;
  c.done_cv.notify_all();
}

namespace {

int g_signal_pipe[2] = {-1, -1};

// Async-signal-safe by construction: one write() on a pre-opened pipe.
// Everything else (run_exit_hooks takes locks, joins threads) happens
// on the watcher thread the write wakes.
void on_shutdown_signal(int /*sig*/) {
  const unsigned char byte = 1;
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

bool install_signal_shutdown() {
  static std::atomic<bool> installed{false};
  bool expected = false;
  if (!installed.compare_exchange_strong(expected, true)) return false;
  if (::pipe(g_signal_pipe) != 0) {
    installed.store(false);
    return false;
  }
  // The watcher outlives any normal return path (detached, blocked on
  // the read); on a signal-free exit the process simply takes it down.
  std::thread([] {
    unsigned char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    run_exit_hooks();
    std::exit(0);
  }).detach();
  struct sigaction sa = {};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  // One-shot: a second SIGTERM/SIGINT while the drain is running hits
  // the default disposition and kills the process immediately.
  sa.sa_flags = SA_RESETHAND;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  return true;
}

namespace {

/// NDIRECT_SIGNAL_SHUTDOWN=1 opts into graceful signal handling with
/// no admin plane (the NDIRECT_ADMIN_PORT path installs it too).
struct SignalAutostart {
  SignalAutostart() {
    if (env_flag("NDIRECT_SIGNAL_SHUTDOWN")) install_signal_shutdown();
  }
};
const SignalAutostart g_signal_autostart;

}  // namespace

}  // namespace ndirect
