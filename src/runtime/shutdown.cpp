#include "runtime/shutdown.h"

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace ndirect {
namespace {

struct Hook {
  std::uint64_t token = 0;
  const char* name = "";
  std::function<void()> fn;
};

struct Chain {
  std::mutex mu;
  std::condition_variable done_cv;
  std::vector<Hook> hooks;  ///< run back-to-front (LIFO)
  std::uint64_t next_token = 1;
  bool atexit_registered = false;
  bool running = false;
  std::thread::id runner;
};

// Leaked on purpose: hooks are unregistered by owners whose
// destructors may run during static destruction, after a non-leaked
// chain would already be dead (the exact ordering bug this file
// exists to remove).
Chain& chain() {
  static Chain* c = new Chain;
  return *c;
}

}  // namespace

std::uint64_t register_exit_hook(const char* name,
                                 std::function<void()> fn) {
  Chain& c = chain();
  std::lock_guard<std::mutex> lk(c.mu);
  if (!c.atexit_registered) {
    c.atexit_registered = true;
    std::atexit(run_exit_hooks);
  }
  const std::uint64_t token = c.next_token++;
  c.hooks.push_back(Hook{token, name, std::move(fn)});
  return token;
}

void unregister_exit_hook(std::uint64_t token) {
  Chain& c = chain();
  std::unique_lock<std::mutex> lk(c.mu);
  // If the chain is mid-run on another thread, the hook may be
  // executing right now against state its owner is about to free:
  // block until the whole chain finished. From the runner thread
  // itself (a hook unregistering a sibling) there is nothing to wait
  // for — the currently executing hook was already popped.
  if (c.running && c.runner != std::this_thread::get_id())
    c.done_cv.wait(lk, [&c] { return !c.running; });
  for (auto it = c.hooks.begin(); it != c.hooks.end(); ++it) {
    if (it->token == token) {
      c.hooks.erase(it);
      return;
    }
  }
}

void run_exit_hooks() {
  Chain& c = chain();
  std::unique_lock<std::mutex> lk(c.mu);
  if (c.running) {  // concurrent caller: wait so "after" means after
    c.done_cv.wait(lk, [&c] { return !c.running; });
    return;
  }
  c.running = true;
  c.runner = std::this_thread::get_id();
  while (!c.hooks.empty()) {
    Hook h = std::move(c.hooks.back());
    c.hooks.pop_back();
    lk.unlock();
    try {
      h.fn();
    } catch (...) {
      // Exit hooks must never take the process down with them.
    }
    lk.lock();
  }
  c.running = false;
  c.done_cv.notify_all();
}

}  // namespace ndirect
