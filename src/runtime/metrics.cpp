#include "runtime/metrics.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "runtime/env.h"
#include "runtime/shutdown.h"
#include "runtime/trace.h"

namespace ndirect {

namespace {

/// OpenMetrics escaping for label values and help text: backslash,
/// double quote and newline get backslash escapes; other control
/// bytes are dropped.
std::string escape_text(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(ch) >= 0x20) out += ch;
    }
  }
  return out;
}

bool labels_equal(const MetricLabels& a, const MetricLabels& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].key != b[i].key || a[i].value != b[i].value) return false;
  return true;
}

std::uint64_t sig_flag_mask() { return 1; }

/// Set by the SIGUSR2 handler, consumed by the dump thread. An atomic
/// is async-signal-safe when lock-free; uint64_t always is here.
std::atomic<std::uint64_t> g_flight_requests{0};

extern "C" void sigusr2_handler(int) {
  g_flight_requests.fetch_or(sig_flag_mask(),
                             std::memory_order_relaxed);
}

}  // namespace

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (int b = 0; b < HistogramLayout::kBuckets; ++b)
    counts[b] += other.counts[b];
  count += other.count;
  sum += other.sum;
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target value, 1-based: ceil(q * count), at least 1.
  const double scaled = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(scaled);
  if (static_cast<double>(rank) < scaled) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (int b = 0; b < HistogramLayout::kBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) return HistogramLayout::upper_bound(b);
  }
  return HistogramLayout::upper_bound(HistogramLayout::kOverflowBucket);
}

HistogramSnapshot HistogramCell::snapshot() const {
  HistogramSnapshot snap;
  for (int b = 0; b < HistogramLayout::kBuckets; ++b) {
    snap.counts[b] = buckets_[b].load(std::memory_order_relaxed);
    snap.count += snap.counts[b];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked: instrument handles cached by static-duration owners must
  // stay valid through static destruction (same policy as the trace
  // lane registry).
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::find_or_create(
    const std::string& name, MetricLabels&& labels,
    const std::string& help, Kind kind) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ins : instruments_) {
    if (ins->name == name && labels_equal(ins->labels, labels)) {
      if (ins->kind != kind)
        throw std::logic_error(
            "MetricsRegistry: instrument '" + name +
            "' re-registered with a different kind");
      return ins.get();
    }
  }
  auto ins = std::make_unique<Instrument>();
  ins->name = name;
  ins->labels = std::move(labels);
  ins->help = help;
  ins->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      ins->counter = std::make_unique<CounterCell>();
      break;
    case Kind::kGauge:
      ins->gauge = std::make_unique<GaugeCell>();
      break;
    case Kind::kHistogram:
      ins->histogram = std::make_unique<HistogramCell>();
      break;
  }
  instruments_.push_back(std::move(ins));
  return instruments_.back().get();
}

CounterCell* MetricsRegistry::counter(const std::string& name,
                                      MetricLabels labels,
                                      const std::string& help) {
  return find_or_create(name, std::move(labels), help, Kind::kCounter)
      ->counter.get();
}

GaugeCell* MetricsRegistry::gauge(const std::string& name,
                                  MetricLabels labels,
                                  const std::string& help) {
  return find_or_create(name, std::move(labels), help, Kind::kGauge)
      ->gauge.get();
}

HistogramCell* MetricsRegistry::histogram(const std::string& name,
                                          MetricLabels labels,
                                          const std::string& help) {
  return find_or_create(name, std::move(labels), help, Kind::kHistogram)
      ->histogram.get();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return instruments_.size();
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& ins : instruments_) {
    switch (ins->kind) {
      case Kind::kCounter:
        ins->counter->reset();
        break;
      case Kind::kGauge:
        ins->gauge->reset();
        break;
      case Kind::kHistogram:
        ins->histogram->reset();
        break;
    }
  }
}

std::string format_labels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += escape_text(labels[i].key) + "=\"" +
           escape_text(labels[i].value) + "\"";
  }
  out += "}";
  return out;
}

namespace {

/// Labels with one extra `le` pair appended (histogram bucket lines).
std::string bucket_labels(const MetricLabels& labels,
                          const std::string& le) {
  MetricLabels with = labels;
  with.push_back({"le", le});
  return format_labels(with);
}

}  // namespace

std::string MetricsRegistry::text() const {
  // The global exposition describes the observability plane itself:
  // refresh the self-gauges before rendering, so every scrape carries
  // a current trace-ring drop count and instrument census. Must happen
  // before mu_ is taken (gauge() registers under it), and only for the
  // global registry — private test registries stay untouched.
  if (this == &global()) {
    MetricsRegistry& g = global();
    GaugeCell* dropped = g.gauge(
        "ndirect_trace_dropped_events", {},
        "Trace events lost to a full ring in the global trace session");
    GaugeCell* instruments = g.gauge(
        "ndirect_metrics_instruments", {},
        "Instruments registered in the global metrics registry");
    dropped->set(
        static_cast<std::int64_t>(TraceSession::global().dropped()));
    instruments->set(static_cast<std::int64_t>(g.size()));
  }
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  // One family block per metric name, in first-registration order;
  // every sample of a family (one per label set) stays inside its
  // block as OpenMetrics requires.
  std::vector<const Instrument*> ordered;
  ordered.reserve(instruments_.size());
  for (const auto& ins : instruments_) ordered.push_back(ins.get());

  std::vector<bool> emitted(ordered.size(), false);
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    if (emitted[i]) continue;
    const Instrument& head = *ordered[i];
    const char* type = head.kind == Kind::kCounter     ? "counter"
                       : head.kind == Kind::kGauge     ? "gauge"
                                                       : "histogram";
    if (!head.help.empty())
      out += "# HELP " + head.name + " " + escape_text(head.help) + "\n";
    out += "# TYPE " + head.name + " " + std::string(type) + "\n";
    for (std::size_t j = i; j < ordered.size(); ++j) {
      if (emitted[j] || ordered[j]->name != head.name) continue;
      emitted[j] = true;
      const Instrument& ins = *ordered[j];
      const std::string labels = format_labels(ins.labels);
      switch (ins.kind) {
        case Kind::kCounter:
          out += ins.name + "_total" + labels + " " +
                 std::to_string(ins.counter->value()) + "\n";
          break;
        case Kind::kGauge:
          out += ins.name + labels + " " +
                 std::to_string(ins.gauge->value()) + "\n";
          break;
        case Kind::kHistogram: {
          const HistogramSnapshot snap = ins.histogram->snapshot();
          std::uint64_t cum = 0;
          // Only the non-empty buckets are emitted (cumulative counts
          // stay monotone on the sparse support); the overflow bucket
          // is folded into the mandatory +Inf line below.
          for (int b = 0; b < HistogramLayout::kOverflowBucket; ++b) {
            if (snap.counts[b] == 0) continue;
            cum += snap.counts[b];
            out += ins.name + "_bucket" +
                   bucket_labels(
                       ins.labels,
                       std::to_string(HistogramLayout::upper_bound(b))) +
                   " " + std::to_string(cum) + "\n";
          }
          out += ins.name + "_bucket" +
                 bucket_labels(ins.labels, "+Inf") + " " +
                 std::to_string(snap.count) + "\n";
          out += ins.name + "_count" + labels + " " +
                 std::to_string(snap.count) + "\n";
          out += ins.name + "_sum" + labels + " " +
                 std::to_string(snap.sum) + "\n";
          break;
        }
      }
    }
  }
  out += "# EOF\n";
  return out;
}

// ---------------------------------------------------------------------------
// MetricsExporter
// ---------------------------------------------------------------------------

MetricsExporter& MetricsExporter::global() {
  static MetricsExporter* exporter = new MetricsExporter;
  return *exporter;
}

void MetricsExporter::start(const std::string& path, long interval_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  if (running_) return;
  path_ = path;
  interval_ms_ = interval_ms > 0 ? interval_ms : 1000;
  stop_requested_ = false;
  running_ = true;
  std::signal(SIGUSR2, sigusr2_handler);
  thread_ = std::thread([this] { loop(); });
}

void MetricsExporter::stop() {
  // Serializes concurrent stop() calls (exit hook + explicit caller).
  std::lock_guard<std::mutex> stop_lk(stop_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  dump_now();  // the final state always reaches the file
  std::lock_guard<std::mutex> lk(mu_);
  running_ = false;
}

bool MetricsExporter::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return running_;
}

std::uint64_t MetricsExporter::dump_count() const {
  return dumps_.load(std::memory_order_relaxed);
}

bool MetricsExporter::dump_now() {
  std::string path;
  {
    std::lock_guard<std::mutex> lk(mu_);
    path = path_;
  }
  if (path.empty()) return false;
  const std::string body = MetricsRegistry::global().text();
  // Atomic replace: a scraper tailing the file never sees a torn dump.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  dumps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MetricsExporter::flight_record() {
  (void)dump_now();
  TraceSession& session = TraceSession::global();
  if (session.size() > 0) {
    std::string path;
    {
      std::lock_guard<std::mutex> lk(mu_);
      path = path_;
    }
    if (!path.empty()) (void)session.export_json(path + ".trace.json");
  }
}

void MetricsExporter::loop() {
  // Wake in short slices so a SIGUSR2 flight record is serviced
  // promptly even under a long dump interval.
  constexpr long kSliceMs = 100;
  long since_dump_ms = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    const long slice = interval_ms_ < kSliceMs ? interval_ms_ : kSliceMs;
    cv_.wait_for(lk, std::chrono::milliseconds(slice));
    if (stop_requested_) break;
    const bool flight =
        g_flight_requests.exchange(0, std::memory_order_relaxed) != 0;
    since_dump_ms += slice;
    if (flight) {
      lk.unlock();
      flight_record();
      lk.lock();
      since_dump_ms = 0;
    } else if (since_dump_ms >= interval_ms_) {
      lk.unlock();
      (void)dump_now();
      lk.lock();
      since_dump_ms = 0;
    }
  }
}

namespace {

/// NDIRECT_METRICS_FILE=<path>: periodic OpenMetrics dumps for
/// unmodified binaries, interval from NDIRECT_METRICS_INTERVAL_MS.
/// The exit hook joins the dump thread before the NDIRECT_TRACE
/// exporter runs (LIFO order in runtime/shutdown.h) — no static-
/// destruction races.
struct MetricsEnvAutoStart {
  MetricsEnvAutoStart() {
    const char* path = std::getenv("NDIRECT_METRICS_FILE");
    if (path == nullptr || *path == '\0') return;
    MetricsExporter::global().start(
        path, env_long("NDIRECT_METRICS_INTERVAL_MS", 1000));
    register_exit_hook("metrics-exporter",
                       [] { MetricsExporter::global().stop(); });
  }
};
const MetricsEnvAutoStart g_metrics_autostart;

}  // namespace

}  // namespace ndirect
