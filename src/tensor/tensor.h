// Dense FP32 tensor with owning 64-byte-aligned storage.
//
// The layout tag records the *semantic* ordering of the dimensions so
// that conversions and kernels can assert they were handed the format
// they expect. Dims are stored outermost-first; element (i0, i1, ...)
// lives at offset ((i0*d1 + i1)*d2 + i2)*... — plain row-major.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "runtime/aligned_buffer.h"

namespace ndirect {

/// Semantic data layouts appearing in the paper.
enum class Layout {
  NCHW,    ///< activations: batch, channels, height, width (default)
  NHWC,    ///< activations: batch, height, width, channels
  NCHWc,   ///< LIBXSMM-style blocked activations: N, C/c, H, W, c
  KCRS,    ///< filters: out-ch, in-ch, kernel H, kernel W (default)
  KRSC,    ///< filters: XNNPACK order
  KCRSck,  ///< LIBXSMM-style blocked filters: K/k, C/c, R, S, c, k
  KPacked, ///< nDirect transformed filters: ceil(K/Vk), C, R, S, Vk
  Matrix,  ///< 2-D row-major matrix
  Linear,  ///< flat buffer
};

const char* layout_name(Layout layout);

class Tensor {
 public:
  Tensor() = default;

  Tensor(std::vector<std::int64_t> dims, Layout layout)
      : dims_(std::move(dims)), layout_(layout) {
    data_.reset(static_cast<std::size_t>(element_count()));
  }

  Tensor(std::initializer_list<std::int64_t> dims, Layout layout)
      : Tensor(std::vector<std::int64_t>(dims), layout) {}

  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;

  /// Deep copy (explicit: accidental copies of big tensors are bugs).
  Tensor clone() const {
    Tensor t(dims_, layout_);
    std::memcpy(t.data(), data(), sizeof(float) * size());
    return t;
  }

  Layout layout() const { return layout_; }
  const std::vector<std::int64_t>& dims() const { return dims_; }
  int rank() const { return static_cast<int>(dims_.size()); }

  std::int64_t dim(int i) const {
    assert(i >= 0 && i < rank());
    return dims_[static_cast<std::size_t>(i)];
  }

  std::int64_t element_count() const {
    std::int64_t n = 1;
    for (const std::int64_t d : dims_) n *= d;
    return dims_.empty() ? 0 : n;
  }
  std::size_t size() const {
    return static_cast<std::size_t>(element_count());
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill_zero() { data_.fill_zero(); }
  void fill(float v) {
    for (std::size_t i = 0; i < size(); ++i) data_[i] = v;
  }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 4-D accessors (activations / filters). Debug-checked.
  float& at4(std::int64_t a, std::int64_t b, std::int64_t c,
             std::int64_t d) {
    return data_[static_cast<std::size_t>(offset4(a, b, c, d))];
  }
  float at4(std::int64_t a, std::int64_t b, std::int64_t c,
            std::int64_t d) const {
    return data_[static_cast<std::size_t>(offset4(a, b, c, d))];
  }

  std::int64_t offset4(std::int64_t a, std::int64_t b, std::int64_t c,
                       std::int64_t d) const {
    assert(rank() == 4);
    assert(a >= 0 && a < dims_[0] && b >= 0 && b < dims_[1]);
    assert(c >= 0 && c < dims_[2] && d >= 0 && d < dims_[3]);
    return ((a * dims_[1] + b) * dims_[2] + c) * dims_[3] + d;
  }

  std::string shape_string() const;

 private:
  std::vector<std::int64_t> dims_;
  Layout layout_ = Layout::Linear;
  AlignedBuffer<float> data_;
};

/// Factory helpers for the shapes used throughout the library.
Tensor make_input_nchw(int N, int C, int H, int W);
Tensor make_input_nhwc(int N, int H, int W, int C);
Tensor make_filter_kcrs(int K, int C, int R, int S);
Tensor make_output_nchw(int N, int K, int P, int Q);
Tensor make_output_nhwc(int N, int P, int Q, int K);
Tensor make_matrix(std::int64_t rows, std::int64_t cols);

}  // namespace ndirect
