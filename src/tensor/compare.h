// Numeric tensor comparison used by correctness tests.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>

#include "tensor/tensor.h"

namespace ndirect {

struct CompareResult {
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  std::size_t worst_index = 0;
  bool shapes_match = true;

  std::string to_string() const {
    return "max_abs=" + std::to_string(max_abs_err) +
           " max_rel=" + std::to_string(max_rel_err) +
           " at=" + std::to_string(worst_index);
  }
};

inline CompareResult compare_tensors(const Tensor& a, const Tensor& b) {
  CompareResult r;
  if (a.size() != b.size()) {
    r.shapes_match = false;
    r.max_abs_err = r.max_rel_err = 1e30;
    return r;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double va = a[i], vb = b[i];
    const double abs_err = std::fabs(va - vb);
    const double denom = std::max(std::fabs(va), std::fabs(vb));
    const double rel_err = denom > 1e-12 ? abs_err / denom : abs_err;
    if (abs_err > r.max_abs_err) {
      r.max_abs_err = abs_err;
      r.worst_index = i;
    }
    r.max_rel_err = std::max(r.max_rel_err, rel_err);
  }
  return r;
}

/// FP32 accumulation-order-tolerant check. The reduction dimension of a
/// convolution is C*R*S; error grows roughly with its square root.
inline bool allclose(const Tensor& a, const Tensor& b,
                     double rel_tol = 1e-4, double abs_tol = 1e-4) {
  const CompareResult r = compare_tensors(a, b);
  return r.shapes_match &&
         (r.max_abs_err <= abs_tol || r.max_rel_err <= rel_tol);
}

}  // namespace ndirect
