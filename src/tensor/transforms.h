// Layout conversions between the formats used by the paper's baselines:
//   NCHW <-> NHWC           (framework activations)
//   KCRS <-> KRSC           (framework vs XNNPACK filters)
//   NCHW  -> NCHWc          (LIBXSMM blocked activations)
//   KCRS  -> KCRSck         (LIBXSMM blocked filters)
//   KCRS  -> KPacked        (nDirect filter transform, ahead-of-time form)
// Channel counts that do not divide the block size are zero-padded, which
// keeps the kernels branch-free at the tails.
#pragma once

#include "tensor/tensor.h"

namespace ndirect {

Tensor nchw_to_nhwc(const Tensor& in);
Tensor nhwc_to_nchw(const Tensor& in);

Tensor kcrs_to_krsc(const Tensor& filter);
Tensor krsc_to_kcrs(const Tensor& filter);

/// [N, C, H, W] -> [N, ceil(C/c), H, W, c], zero-padded in c.
Tensor nchw_to_nchwc(const Tensor& in, int c_block);
/// Inverse of nchw_to_nchwc (drops the zero padding).
Tensor nchwc_to_nchw(const Tensor& in, int C);

/// [K, C, R, S] -> [ceil(K/k), ceil(C/c), R, S, c, k], zero-padded.
Tensor kcrs_to_kcrsck(const Tensor& filter, int c_block, int k_block);

/// nDirect filter transform applied to the whole tensor at once:
/// [K, C, R, S] -> [ceil(K/Vk), C, R, S, Vk], zero-padded in K.
/// The on-the-fly tiled variant in src/core produces byte-identical
/// blocks of this layout (tested).
Tensor pack_filter_kpacked(const Tensor& filter, int vk);

}  // namespace ndirect
