// Deterministic pseudo-random tensor initialization for tests and benches.
#pragma once

#include <cstdint>
#include <random>

#include "tensor/tensor.h"

namespace ndirect {

/// Fill with uniform values in [-1, 1). Deterministic for a given seed.
inline void fill_random(Tensor& t, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  float* p = t.data();
  for (std::size_t i = 0; i < t.size(); ++i) p[i] = dist(rng);
}

/// Fill with a position-dependent, exactly-representable pattern so that
/// mismatches point at the exact broken index in correctness tests.
inline void fill_pattern(Tensor& t) {
  float* p = t.data();
  for (std::size_t i = 0; i < t.size(); ++i) {
    p[i] = static_cast<float>(static_cast<int>(i % 17) - 8) * 0.25f;
  }
}

}  // namespace ndirect
