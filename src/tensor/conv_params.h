// Convolution problem description, following the paper's Table 1 notation:
//   N batch, C input channels, H/W input height/width, K output channels,
//   R/S kernel height/width, str stride, P/Q output height/width.
#pragma once

#include <cstdint>
#include <string>

namespace ndirect {

struct ConvParams {
  int N = 1;    ///< batch size
  int C = 1;    ///< input channels
  int H = 1;    ///< input height
  int W = 1;    ///< input width
  int K = 1;    ///< output channels
  int R = 1;    ///< kernel height
  int S = 1;    ///< kernel width
  int str = 1;  ///< stride (same in both spatial dims, as in the paper)
  int pad = 0;  ///< zero padding (same on all four sides)

  /// Output height P = floor((H + 2*pad - R)/str) + 1.
  int P() const { return (H + 2 * pad - R) / str + 1; }
  /// Output width Q = floor((W + 2*pad - S)/str) + 1.
  int Q() const { return (W + 2 * pad - S) / str + 1; }

  bool valid() const {
    return N > 0 && C > 0 && H > 0 && W > 0 && K > 0 && R > 0 && S > 0 &&
           str > 0 && pad >= 0 && H + 2 * pad >= R && W + 2 * pad >= S;
  }

  std::int64_t input_elems() const {
    return std::int64_t{N} * C * H * W;
  }
  std::int64_t filter_elems() const {
    return std::int64_t{K} * C * R * S;
  }
  std::int64_t output_elems() const {
    return std::int64_t{N} * K * P() * Q();
  }

  /// Total floating-point operations (each MAC counts as 2 flops).
  std::int64_t flops() const {
    return 2 * std::int64_t{N} * K * P() * Q() * C * R * S;
  }

  std::string to_string() const {
    return "N" + std::to_string(N) + " C" + std::to_string(C) + " H" +
           std::to_string(H) + " W" + std::to_string(W) + " K" +
           std::to_string(K) + " R" + std::to_string(R) + "x" +
           std::to_string(S) + " str" + std::to_string(str) + " pad" +
           std::to_string(pad);
  }

  bool operator==(const ConvParams&) const = default;
};

}  // namespace ndirect
