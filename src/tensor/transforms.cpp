#include "tensor/transforms.h"

#include <cassert>

namespace ndirect {

Tensor nchw_to_nhwc(const Tensor& in) {
  assert(in.layout() == Layout::NCHW && in.rank() == 4);
  const std::int64_t N = in.dim(0), C = in.dim(1), H = in.dim(2),
                     W = in.dim(3);
  Tensor out({N, H, W, C}, Layout::NHWC);
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t c = 0; c < C; ++c)
      for (std::int64_t h = 0; h < H; ++h)
        for (std::int64_t w = 0; w < W; ++w)
          out.at4(n, h, w, c) = in.at4(n, c, h, w);
  return out;
}

Tensor nhwc_to_nchw(const Tensor& in) {
  assert(in.layout() == Layout::NHWC && in.rank() == 4);
  const std::int64_t N = in.dim(0), H = in.dim(1), W = in.dim(2),
                     C = in.dim(3);
  Tensor out({N, C, H, W}, Layout::NCHW);
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t h = 0; h < H; ++h)
      for (std::int64_t w = 0; w < W; ++w)
        for (std::int64_t c = 0; c < C; ++c)
          out.at4(n, c, h, w) = in.at4(n, h, w, c);
  return out;
}

Tensor kcrs_to_krsc(const Tensor& filter) {
  assert(filter.layout() == Layout::KCRS && filter.rank() == 4);
  const std::int64_t K = filter.dim(0), C = filter.dim(1),
                     R = filter.dim(2), S = filter.dim(3);
  Tensor out({K, R, S, C}, Layout::KRSC);
  for (std::int64_t k = 0; k < K; ++k)
    for (std::int64_t c = 0; c < C; ++c)
      for (std::int64_t r = 0; r < R; ++r)
        for (std::int64_t s = 0; s < S; ++s)
          out.at4(k, r, s, c) = filter.at4(k, c, r, s);
  return out;
}

Tensor krsc_to_kcrs(const Tensor& filter) {
  assert(filter.layout() == Layout::KRSC && filter.rank() == 4);
  const std::int64_t K = filter.dim(0), R = filter.dim(1),
                     S = filter.dim(2), C = filter.dim(3);
  Tensor out({K, C, R, S}, Layout::KCRS);
  for (std::int64_t k = 0; k < K; ++k)
    for (std::int64_t r = 0; r < R; ++r)
      for (std::int64_t s = 0; s < S; ++s)
        for (std::int64_t c = 0; c < C; ++c)
          out.at4(k, c, r, s) = filter.at4(k, r, s, c);
  return out;
}

Tensor nchw_to_nchwc(const Tensor& in, int c_block) {
  assert(in.layout() == Layout::NCHW && in.rank() == 4 && c_block > 0);
  const std::int64_t N = in.dim(0), C = in.dim(1), H = in.dim(2),
                     W = in.dim(3);
  const std::int64_t CB = (C + c_block - 1) / c_block;
  Tensor out({N, CB, H, W, c_block}, Layout::NCHWc);
  out.fill_zero();
  float* dst = out.data();
  const float* src = in.data();
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t c = 0; c < C; ++c) {
      const std::int64_t cb = c / c_block, ci = c % c_block;
      for (std::int64_t h = 0; h < H; ++h)
        for (std::int64_t w = 0; w < W; ++w) {
          dst[(((n * CB + cb) * H + h) * W + w) * c_block + ci] =
              src[((n * C + c) * H + h) * W + w];
        }
    }
  return out;
}

Tensor nchwc_to_nchw(const Tensor& in, int C) {
  assert(in.layout() == Layout::NCHWc && in.rank() == 5);
  const std::int64_t N = in.dim(0), CB = in.dim(1), H = in.dim(2),
                     W = in.dim(3), cb = in.dim(4);
  assert(C <= CB * cb);
  Tensor out({N, C, H, W}, Layout::NCHW);
  const float* src = in.data();
  float* dst = out.data();
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t c = 0; c < C; ++c) {
      const std::int64_t b = c / cb, i = c % cb;
      for (std::int64_t h = 0; h < H; ++h)
        for (std::int64_t w = 0; w < W; ++w) {
          dst[((n * C + c) * H + h) * W + w] =
              src[(((n * CB + b) * H + h) * W + w) * cb + i];
        }
    }
  return out;
}

Tensor kcrs_to_kcrsck(const Tensor& filter, int c_block, int k_block) {
  assert(filter.layout() == Layout::KCRS && filter.rank() == 4);
  const std::int64_t K = filter.dim(0), C = filter.dim(1),
                     R = filter.dim(2), S = filter.dim(3);
  const std::int64_t KB = (K + k_block - 1) / k_block;
  const std::int64_t CB = (C + c_block - 1) / c_block;
  Tensor out({KB, CB, R, S, c_block, std::int64_t{1} * k_block},
             Layout::KCRSck);
  out.fill_zero();
  float* dst = out.data();
  for (std::int64_t k = 0; k < K; ++k)
    for (std::int64_t c = 0; c < C; ++c) {
      const std::int64_t kb = k / k_block, ki = k % k_block;
      const std::int64_t cb = c / c_block, ci = c % c_block;
      for (std::int64_t r = 0; r < R; ++r)
        for (std::int64_t s = 0; s < S; ++s) {
          dst[((((kb * CB + cb) * R + r) * S + s) * c_block + ci) * k_block +
              ki] = filter.at4(k, c, r, s);
        }
    }
  return out;
}

Tensor pack_filter_kpacked(const Tensor& filter, int vk) {
  assert(filter.layout() == Layout::KCRS && filter.rank() == 4);
  assert(vk > 0);
  const std::int64_t K = filter.dim(0), C = filter.dim(1),
                     R = filter.dim(2), S = filter.dim(3);
  const std::int64_t KB = (K + vk - 1) / vk;
  Tensor out({KB, C, R, S, vk}, Layout::KPacked);
  out.fill_zero();
  float* dst = out.data();
  for (std::int64_t k = 0; k < K; ++k) {
    const std::int64_t kb = k / vk, ki = k % vk;
    for (std::int64_t c = 0; c < C; ++c)
      for (std::int64_t r = 0; r < R; ++r)
        for (std::int64_t s = 0; s < S; ++s) {
          dst[(((kb * C + c) * R + r) * S + s) * vk + ki] =
              filter.at4(k, c, r, s);
        }
  }
  return out;
}

}  // namespace ndirect
