#include "tensor/tensor.h"

namespace ndirect {

const char* layout_name(Layout layout) {
  switch (layout) {
    case Layout::NCHW: return "NCHW";
    case Layout::NHWC: return "NHWC";
    case Layout::NCHWc: return "NCHWc";
    case Layout::KCRS: return "KCRS";
    case Layout::KRSC: return "KRSC";
    case Layout::KCRSck: return "KCRSck";
    case Layout::KPacked: return "KPacked";
    case Layout::Matrix: return "Matrix";
    case Layout::Linear: return "Linear";
  }
  return "?";
}

std::string Tensor::shape_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(dims_[i]);
  }
  s += "] ";
  s += layout_name(layout_);
  return s;
}

Tensor make_input_nchw(int N, int C, int H, int W) {
  return Tensor({N, C, H, W}, Layout::NCHW);
}
Tensor make_input_nhwc(int N, int H, int W, int C) {
  return Tensor({N, H, W, C}, Layout::NHWC);
}
Tensor make_filter_kcrs(int K, int C, int R, int S) {
  return Tensor({K, C, R, S}, Layout::KCRS);
}
Tensor make_output_nchw(int N, int K, int P, int Q) {
  return Tensor({N, K, P, Q}, Layout::NCHW);
}
Tensor make_output_nhwc(int N, int P, int Q, int K) {
  return Tensor({N, P, Q, K}, Layout::NHWC);
}
Tensor make_matrix(std::int64_t rows, std::int64_t cols) {
  return Tensor({rows, cols}, Layout::Matrix);
}

}  // namespace ndirect
