// Search-space sampling and mutation for the schedule tuner.
#pragma once

#include <random>
#include <vector>

#include "autotune/schedule.h"
#include "core/fai.h"

namespace ndirect {

/// Generates random valid schedules and mutates existing ones within
/// the space described in schedule.h.
class ScheduleSpace {
 public:
  ScheduleSpace(const ConvParams& p, int threads, std::uint64_t seed);

  const ConvParams& params() const { return params_; }
  int threads() const { return threads_; }

  /// A uniformly random valid schedule.
  Schedule sample();

  /// Mutate one dimension of `s` (resampling until valid).
  Schedule mutate(const Schedule& s);

  /// Single-point crossover of two parents (field-wise choice).
  Schedule crossover(const Schedule& a, const Schedule& b);

  /// Number of candidate values per dimension (for space-size stats).
  std::size_t approximate_size() const;

 private:
  Schedule sample_once();

  ConvParams params_;
  int threads_;
  std::mt19937_64 rng_;
  /// (vw, vk) sampled jointly from the micro-kernel policy registry, so
  /// the tuner searches exactly the blocks that have specialized
  /// kernels instead of the raw multiples-of-4 grid (most of which
  /// would silently run generic).
  std::vector<RegisterBlock> block_choices_;
  std::vector<int> tc_choices_;
  std::vector<int> tk_mult_choices_;  ///< tk = mult * vk
  std::vector<int> th_choices_;
  std::vector<int> ptn_choices_;      ///< divisors of threads
};

}  // namespace ndirect
