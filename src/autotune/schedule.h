// Schedule representation for the search-based optimizer (the repo's
// Ansor substitute, Section 2.4 of the paper).
//
// Ansor searches a hierarchical space of loop tilings, annotations and
// thread bindings and compiles each candidate with a generic code
// generator. Our equivalent space is the parameterization of the direct
// convolution loop nest: the register tile (vw, vk), the three cache
// tiles (tc, tk, th), the thread split ptn, and whether input windows
// are packed. Candidates execute through the *runtime-parameterized*
// kernel (never the hand-unrolled Algorithm 3 form), which stands in
// for compiler-emitted code: the search can find a good schedule but
// not the packed sliding-window instruction pattern.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/conv_params.h"

namespace ndirect {

struct Schedule {
  int vw = 8;    ///< register tile width (output positions)
  int vk = 8;    ///< register tile depth (output channels), %4 == 0
  int tc = 8;    ///< C cache tile
  int tk = 8;    ///< K cache tile, multiple of vk
  int th = 4;    ///< output-row tile
  int ptn = 1;   ///< thread-grid rows (ptk = threads / ptn)
  bool aot_filter = false;  ///< transform the whole filter up front

  std::string to_string() const {
    return "vw" + std::to_string(vw) + " vk" + std::to_string(vk) +
           " tc" + std::to_string(tc) + " tk" + std::to_string(tk) +
           " th" + std::to_string(th) + " ptn" + std::to_string(ptn) +
           (aot_filter ? " aot" : " otf");
  }

  bool operator==(const Schedule&) const = default;
};

/// Structural validity of a schedule for a problem and thread count
/// (register-budget feasibility, divisibility, bounds).
bool schedule_valid(const Schedule& s, const ConvParams& p, int threads);

}  // namespace ndirect
