#include "autotune/space.h"

#include <algorithm>

#include "core/microkernel.h"

namespace ndirect {

bool schedule_valid(const Schedule& s, const ConvParams& p, int threads) {
  if (s.vw < 4 || s.vw > kMaxVw || s.vw % 4 != 0) return false;
  if (s.vk < 4 || s.vk > kMaxVk || s.vk % 4 != 0) return false;
  if (s.tc < 1 || s.tc > p.C) return false;
  if (s.tk < s.vk || s.tk % s.vk != 0) return false;
  if (s.th < 1 || s.th > p.P()) return false;
  if (s.ptn < 1 || threads % s.ptn != 0) return false;
  if (std::int64_t{s.ptn} > std::int64_t{p.N} * p.P()) return false;
  if (threads / s.ptn > p.K) return false;
  return true;
}

ScheduleSpace::ScheduleSpace(const ConvParams& p, int threads,
                             std::uint64_t seed)
    : params_(p), threads_(threads < 1 ? 1 : threads), rng_(seed) {
  // The (vw, vk) gene enumerates the registry's instantiated blocks
  // (every Eq. 3-feasible pair), in the registry's deterministic order.
  block_choices_ = microkernel_blocks();

  // Power-of-two-ish ladders clipped to the problem bounds.
  for (int t : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512}) {
    if (t <= p.C) tc_choices_.push_back(t);
  }
  if (tc_choices_.empty()) tc_choices_.push_back(1);
  if (tc_choices_.back() != p.C) tc_choices_.push_back(p.C);

  for (int m : {1, 2, 4, 8, 16, 32, 64}) tk_mult_choices_.push_back(m);

  const int P = p.P();
  for (int t : {1, 2, 4, 7, 8, 14, 16, 28, 32, 56, 112, 224}) {
    if (t <= P) th_choices_.push_back(t);
  }
  if (th_choices_.empty()) th_choices_.push_back(1);
  if (th_choices_.back() != P) th_choices_.push_back(P);

  for (int d = 1; d <= threads_; ++d) {
    if (threads_ % d == 0) ptn_choices_.push_back(d);
  }
}

std::size_t ScheduleSpace::approximate_size() const {
  return block_choices_.size() * tc_choices_.size() *
         tk_mult_choices_.size() * th_choices_.size() *
         ptn_choices_.size() * 2;
}

Schedule ScheduleSpace::sample_once() {
  auto pick = [&](const std::vector<int>& v) {
    return v[std::uniform_int_distribution<std::size_t>(0, v.size() - 1)(
        rng_)];
  };
  Schedule s;
  const RegisterBlock& rb =
      block_choices_[std::uniform_int_distribution<std::size_t>(
          0, block_choices_.size() - 1)(rng_)];
  s.vw = rb.vw;
  s.vk = rb.vk;
  s.tc = pick(tc_choices_);
  s.tk = pick(tk_mult_choices_) * s.vk;
  s.th = pick(th_choices_);
  s.ptn = pick(ptn_choices_);
  s.aot_filter = std::bernoulli_distribution(0.5)(rng_);
  return s;
}

Schedule ScheduleSpace::sample() {
  for (int attempt = 0; attempt < 256; ++attempt) {
    const Schedule s = sample_once();
    if (schedule_valid(s, params_, threads_)) return s;
  }
  // Degenerate spaces: construct a minimal valid schedule directly.
  Schedule s;
  s.vw = 4;
  s.vk = 4;
  s.tc = 1;
  s.tk = 4;
  s.th = 1;
  s.ptn = 1;
  return s;
}

Schedule ScheduleSpace::mutate(const Schedule& base) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    Schedule s = base;
    const Schedule fresh = sample_once();
    switch (std::uniform_int_distribution<int>(0, 5)(rng_)) {
      case 0:
        // The register block is one gene: (vw, vk) move together so
        // every mutation lands on an instantiated kernel.
        s.vw = fresh.vw;
        s.vk = fresh.vk;
        s.tk = std::max(1, s.tk / s.vk) * s.vk;  // keep divisibility
        break;
      case 1: s.tc = fresh.tc; break;
      case 2: s.tk = fresh.tk / fresh.vk * s.vk; break;
      case 3: s.th = fresh.th; break;
      case 4: s.ptn = fresh.ptn; break;
      case 5: s.aot_filter = !s.aot_filter; break;
    }
    if (schedule_valid(s, params_, threads_)) return s;
  }
  return sample();
}

Schedule ScheduleSpace::crossover(const Schedule& a, const Schedule& b) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    Schedule s;
    auto coin = [&] { return std::bernoulli_distribution(0.5)(rng_); };
    // Register block crosses over as one gene (see mutate).
    const Schedule& rb_parent = coin() ? a : b;
    s.vw = rb_parent.vw;
    s.vk = rb_parent.vk;
    s.tc = coin() ? a.tc : b.tc;
    s.tk = (coin() ? a.tk / a.vk : b.tk / b.vk) * s.vk;
    s.th = coin() ? a.th : b.th;
    s.ptn = coin() ? a.ptn : b.ptn;
    s.aot_filter = coin() ? a.aot_filter : b.aot_filter;
    if (schedule_valid(s, params_, threads_)) return s;
  }
  return mutate(a);
}

}  // namespace ndirect
