#include "autotune/cost_model.h"

#include <algorithm>
#include <cmath>

#include "core/threading.h"

namespace ndirect {
namespace {

// Waste from a partial final iteration: useful fraction of ceil-tiling
// `extent` by `tile`.
double remainder_efficiency(std::int64_t extent, std::int64_t tile) {
  if (extent <= 0 || tile <= 0) return 0.0;
  const std::int64_t tiles = (extent + tile - 1) / tile;
  return static_cast<double>(extent) / static_cast<double>(tiles * tile);
}

// Soft cache-fit factor: 1 while the working set fits, decaying with
// the overflow ratio beyond capacity.
double fit_factor(double working_set, double capacity) {
  if (capacity <= 0) return 1.0;
  if (working_set <= capacity) return 1.0;
  return capacity / working_set;
}

}  // namespace

double CostModel::score(const Schedule& s, const ConvParams& p) const {
  // Register-tile FAI with the stride-aware load count (cf. Eq. 4).
  const double packw = (s.vw - 1) * p.str + p.S;
  const double fai =
      2.0 * p.S * s.vw * s.vk / (packw + static_cast<double>(p.S) * s.vk);

  // Register-pressure penalty: tiles whose accumulators exceed the 32
  // NEON-model registers spill every iteration.
  const double regs = std::ceil(packw / 4.0) + s.vk / 4.0 +
                      static_cast<double>(s.vw) * s.vk / 4.0;
  const double spill = regs <= 32 ? 1.0 : 32.0 / regs;

  // Eq. 1 working set in L1: input rows + 2 filter slices.
  const double l1_set =
      (static_cast<double>(p.R) * s.tc * packw +
       2.0 * s.vk * s.tc * p.R * p.S) *
      sizeof(float);
  // Eq. 2 working set in L2: filter tile + 2 input slices.
  const double l2_set = (static_cast<double>(s.tk) * s.tc * p.R * p.S +
                         2.0 * p.R * s.tc * packw) *
                        sizeof(float);
  const double cache_fit = fit_factor(l1_set, 0.9 * cache.l1d) *
                           fit_factor(l2_set, 0.75 * cache.l2);

  // Loop-remainder waste across the four tiled dimensions.
  const double waste = remainder_efficiency(p.Q(), s.vw) *
                       remainder_efficiency(p.K, s.vk) *
                       remainder_efficiency(p.C, s.tc) *
                       remainder_efficiency(p.P(), s.th);

  // Thread-level FAI of the chosen split (Eq. 5), normalized by the
  // best possible split so the factor is in (0, 1].
  double thread_factor = 1.0;
  if (threads > 1) {
    const double chosen = thread_fai(p, alpha, s.ptn);
    double best = 0.0;
    for (int d = 1; d <= threads; ++d) {
      if (threads % d == 0) best = std::max(best, thread_fai(p, alpha, d));
    }
    thread_factor = best > 0 ? chosen / best : 1.0;
    // Idle thread groups when a dimension is shorter than its split.
    const double rows = static_cast<double>(p.N) * p.P();
    thread_factor *= std::min(1.0, rows / s.ptn);
    thread_factor *=
        std::min(1.0, static_cast<double>(p.K) / (threads / s.ptn));
  }

  // Filter-transform overhead: the on-the-fly transform re-runs per
  // (n, row-tile); ahead-of-time pays once but streams a K-sized
  // tensor without tile locality. Model both lightly.
  const double transforms_otf =
      static_cast<double>(p.N) * std::ceil(1.0 * p.P() / s.th);
  const double flt_bytes = 4.0 * p.filter_elems();
  const double flops = static_cast<double>(p.flops());
  const double transform_penalty =
      s.aot_filter
          ? 1.0 / (1.0 + flt_bytes / flops)
          : 1.0 / (1.0 + transforms_otf * flt_bytes / flops);

  // Every C tile after the first re-loads and re-stores the output
  // tile (the accumulate path), so fewer, larger C passes are better
  // as long as Eq. 1 holds (cache_fit already penalizes overshoot).
  const double c_passes = std::ceil(static_cast<double>(p.C) / s.tc);
  const double output_revisit = 1.0 / (1.0 + 0.15 * (c_passes - 1.0));

  return fai * spill * cache_fit * waste * thread_factor *
         transform_penalty * output_revisit;
}

}  // namespace ndirect
