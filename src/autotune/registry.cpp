#include "autotune/registry.h"

#include <fstream>
#include <sstream>

namespace ndirect {

std::string ScheduleRegistry::key(const ConvParams& shape) {
  return shape.to_string();
}

void ScheduleRegistry::put(const ConvParams& shape, const Entry& entry,
                           bool keep_best) {
  const std::string k = key(shape);
  auto it = entries_.find(k);
  if (it != entries_.end() && keep_best &&
      it->second.second.gflops >= entry.gflops) {
    return;
  }
  entries_[k] = {shape, entry};
}

std::optional<ScheduleRegistry::Entry> ScheduleRegistry::find(
    const ConvParams& shape) const {
  auto it = entries_.find(key(shape));
  if (it == entries_.end()) return std::nullopt;
  return it->second.second;
}

bool ScheduleRegistry::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "# ndirect schedule registry v1\n"
      << "# N C H W K R S str pad  vw vk tc tk th ptn aot  threads gflops\n";
  for (const auto& [_, value] : entries_) {
    const ConvParams& p = value.first;
    const Entry& e = value.second;
    const Schedule& s = e.schedule;
    out << p.N << ' ' << p.C << ' ' << p.H << ' ' << p.W << ' ' << p.K
        << ' ' << p.R << ' ' << p.S << ' ' << p.str << ' ' << p.pad << ' '
        << s.vw << ' ' << s.vk << ' ' << s.tc << ' ' << s.tk << ' ' << s.th
        << ' ' << s.ptn << ' ' << (s.aot_filter ? 1 : 0) << ' '
        << e.threads << ' ' << e.gflops << '\n';
  }
  return static_cast<bool>(out);
}

ScheduleRegistry ScheduleRegistry::load(const std::string& path,
                                        int* skipped) {
  ScheduleRegistry reg;
  int bad = 0;
  std::ifstream in(path);
  if (!in) {
    if (skipped != nullptr) *skipped = 0;
    return reg;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    ConvParams p;
    Schedule s;
    Entry e;
    int aot = 0;
    if (!(fields >> p.N >> p.C >> p.H >> p.W >> p.K >> p.R >> p.S >>
          p.str >> p.pad >> s.vw >> s.vk >> s.tc >> s.tk >> s.th >>
          s.ptn >> aot >> e.threads >> e.gflops)) {
      ++bad;
      continue;
    }
    s.aot_filter = aot != 0;
    if (!p.valid() || !schedule_valid(s, p, e.threads)) {
      ++bad;
      continue;
    }
    e.schedule = s;
    reg.put(p, e);
  }
  if (skipped != nullptr) *skipped = bad;
  return reg;
}

}  // namespace ndirect
