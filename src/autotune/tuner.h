// Evolutionary schedule search (the Ansor-equivalent tuner).
//
// Mirrors Ansor's structure at our scale: a large sampled space, a cost
// model ranking every candidate, hardware measurement of only the most
// promising ones, and evolution (elites + mutation + crossover + fresh
// samples) across generations. The resulting schedule executes through
// the generic runtime-parameterized kernel, standing in for
// compiler-generated code (see schedule.h).
#pragma once

#include <cstdint>
#include <vector>

#include "autotune/cost_model.h"
#include "autotune/schedule.h"
#include "core/ndirect.h"

namespace ndirect {

struct TuneOptions {
  int generations = 8;
  int population = 32;
  int measure_top = 4;      ///< schedules measured per generation
  std::uint64_t seed = 1;
  int threads = 0;          ///< 0 = pool size
  ThreadPool* pool = nullptr;
  double measure_seconds = 0.05;  ///< min wall time per measurement
  const CacheInfo* cache = nullptr;  ///< nullptr = host cache
};

struct TrialRecord {
  Schedule schedule;
  double cost_score = 0;
  double measured_gflops = 0;  ///< 0 if never measured
};

struct TuneResult {
  Schedule best;
  double best_gflops = 0;
  int cost_evaluations = 0;
  int measurements = 0;
  std::vector<TrialRecord> measured;  ///< every hardware measurement
};

/// Translate a schedule into engine options (forced plan + generic
/// kernel). `threads` must match the value the schedule was tuned for.
NdirectOptions schedule_to_options(const Schedule& s, int threads,
                                   ThreadPool* pool);

/// Execute a convolution under a tuned schedule.
Tensor tuned_conv(const Tensor& input, const Tensor& filter,
                  const ConvParams& p, const Schedule& s, int threads = 0,
                  ThreadPool* pool = nullptr);

/// Measure a schedule's throughput on random tensors of shape `p`.
double measure_schedule_gflops(const ConvParams& p, const Schedule& s,
                               const TuneOptions& opts);

/// Run the evolutionary search.
TuneResult tune_conv(const ConvParams& p, const TuneOptions& opts = {});

// ---------------------------------------------------------------------------
// Int8 block tuning
// ---------------------------------------------------------------------------

struct Int8BlockTrial {
  RegisterBlock block{};
  double gflops = 0;  ///< fp32-equivalent throughput
};

struct Int8TuneResult {
  RegisterBlock best{};
  double best_gflops = 0;
  std::vector<Int8BlockTrial> trials;  ///< every block measured
};

/// Exhaustively measure every (Vw, Vk) register block the int8 policy
/// registry instantiates for `p`'s kernel width (the same Eq. 3 grid
/// the fp32 tuner searches — small enough to sweep instead of evolve)
/// and return the fastest. `budget_seconds` bounds total measurement
/// wall time; blocks past the budget keep the analytical order.
Int8TuneResult autotune_int8_block(const ConvParams& p,
                                   double budget_seconds = 1.0,
                                   ThreadPool* pool = nullptr);

}  // namespace ndirect
