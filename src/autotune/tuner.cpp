#include "autotune/tuner.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "autotune/space.h"
#include "core/alpha.h"
#include "core/quantized.h"
#include "runtime/timer.h"
#include "tensor/rng.h"

namespace ndirect {
namespace {

// Orderable key for deduplicating measured schedules.
auto schedule_key(const Schedule& s) {
  return std::make_tuple(s.vw, s.vk, s.tc, s.tk, s.th, s.ptn,
                         s.aot_filter);
}

}  // namespace

NdirectOptions schedule_to_options(const Schedule& s, int threads,
                                   ThreadPool* pool) {
  NdirectOptions o;
  o.force_rb = {s.vw, s.vk};
  o.force_tiling = {s.tc, s.tk, s.th};
  o.force_mapping = {s.ptn, std::max(1, threads / s.ptn)};
  o.aot_filter = s.aot_filter;
  o.generic_kernel_only = true;
  o.fuse_packing = false;  // generated code has no fused-packing trick
  o.threads = threads;
  o.pool = pool;
  return o;
}

Tensor tuned_conv(const Tensor& input, const Tensor& filter,
                  const ConvParams& p, const Schedule& s, int threads,
                  ThreadPool* pool) {
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  if (threads <= 0) threads = static_cast<int>(tp.size());
  const NdirectConv conv(p, schedule_to_options(s, threads, &tp));
  return conv.run(input, filter);
}

double measure_schedule_gflops(const ConvParams& p, const Schedule& s,
                               const TuneOptions& opts) {
  ThreadPool& tp =
      opts.pool != nullptr ? *opts.pool : ThreadPool::global();
  const int threads =
      opts.threads > 0 ? opts.threads : static_cast<int>(tp.size());

  Tensor input = make_input_nchw(p.N, p.C, p.H, p.W);
  Tensor filter = make_filter_kcrs(p.K, p.C, p.R, p.S);
  fill_random(input, 99);
  fill_random(filter, 100);

  const NdirectConv conv(p, schedule_to_options(s, threads, &tp));
  (void)conv.run(input, filter);  // warm-up
  WallTimer t;
  int reps = 0;
  do {
    (void)conv.run(input, filter);
    ++reps;
  } while (t.seconds() < opts.measure_seconds);
  return static_cast<double>(p.flops()) * reps / t.seconds() / 1e9;
}

TuneResult tune_conv(const ConvParams& p, const TuneOptions& opts) {
  ThreadPool& tp =
      opts.pool != nullptr ? *opts.pool : ThreadPool::global();
  const int threads =
      opts.threads > 0 ? opts.threads : static_cast<int>(tp.size());

  ScheduleSpace space(p, threads, opts.seed);
  CostModel model;
  model.cache = opts.cache != nullptr ? *opts.cache : probe_host_cpu().cache;
  model.alpha = host_alpha();
  model.threads = threads;

  TuneResult result;
  std::map<decltype(schedule_key(Schedule{})), double> measured_cache;

  std::vector<TrialRecord> population;
  population.reserve(static_cast<std::size_t>(opts.population));
  for (int i = 0; i < opts.population; ++i) {
    population.push_back({space.sample(), 0.0, 0.0});
  }

  for (int gen = 0; gen < opts.generations; ++gen) {
    for (TrialRecord& rec : population) {
      rec.cost_score = model.score(rec.schedule, p);
      ++result.cost_evaluations;
    }
    std::sort(population.begin(), population.end(),
              [](const TrialRecord& a, const TrialRecord& b) {
                return a.cost_score > b.cost_score;
              });

    // Measure the model's top picks that were not measured before.
    int measured_this_gen = 0;
    for (TrialRecord& rec : population) {
      if (measured_this_gen >= opts.measure_top) break;
      const auto key = schedule_key(rec.schedule);
      auto it = measured_cache.find(key);
      if (it != measured_cache.end()) {
        rec.measured_gflops = it->second;
        continue;
      }
      rec.measured_gflops = measure_schedule_gflops(p, rec.schedule, opts);
      measured_cache[key] = rec.measured_gflops;
      ++result.measurements;
      ++measured_this_gen;
      result.measured.push_back(rec);
      if (rec.measured_gflops > result.best_gflops) {
        result.best_gflops = rec.measured_gflops;
        result.best = rec.schedule;
      }
    }

    if (gen + 1 == opts.generations) break;

    // Next generation: elites survive; the rest are mutations,
    // crossovers of elites, and fresh random samples.
    const int elites = std::max(1, opts.population / 4);
    std::vector<TrialRecord> next(
        population.begin(), population.begin() + elites);
    std::mt19937_64 rng(opts.seed + 17 * static_cast<std::uint64_t>(gen));
    while (static_cast<int>(next.size()) < opts.population) {
      const int roll =
          std::uniform_int_distribution<int>(0, 3)(rng);
      std::uniform_int_distribution<int> pick_elite(0, elites - 1);
      if (roll == 0) {
        next.push_back({space.sample(), 0.0, 0.0});
      } else if (roll == 1) {
        next.push_back({space.crossover(
                            population[static_cast<std::size_t>(
                                pick_elite(rng))].schedule,
                            population[static_cast<std::size_t>(
                                pick_elite(rng))].schedule),
                        0.0, 0.0});
      } else {
        next.push_back(
            {space.mutate(population[static_cast<std::size_t>(
                              pick_elite(rng))].schedule),
             0.0, 0.0});
      }
    }
    population = std::move(next);
  }
  return result;
}

Int8TuneResult autotune_int8_block(const ConvParams& p,
                                   double budget_seconds,
                                   ThreadPool* pool) {
  Int8TuneResult result;
  // Deterministic synthetic tensors: the tuner ranks blocks, it does
  // not validate numerics.
  std::vector<std::uint8_t> input(
      static_cast<std::size_t>(p.input_elems()));
  std::vector<std::int8_t> filter(
      static_cast<std::size_t>(p.filter_elems()));
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::uint8_t>((i * 97 + 13) & 0xff);
  }
  for (std::size_t i = 0; i < filter.size(); ++i) {
    filter[i] = static_cast<std::int8_t>(((i * 61 + 7) & 0xff) - 128);
  }
  std::vector<std::int32_t> out(
      static_cast<std::size_t>(p.output_elems()));
  Int8Output dst;
  dst.i32 = out.data();
  const Int8Epilogue ep;
  const double flops = static_cast<double>(p.flops());

  WallTimer total;
  for (const RegisterBlock& rb : int8_microkernel_blocks()) {
    if (!kernel_block_feasible(rb.vw, rb.vk, p.S)) continue;
    Int8ConvOptions opt;
    opt.force_block = rb;
    opt.pool = pool;
    const Int8Conv conv(p, opt);
    conv.prepare_filter(filter.data());
    Int8BlockTrial trial{rb, 0.0};
    if (total.seconds() < budget_seconds) {
      conv.run(input.data(), 128, filter.data(), ep, dst);  // warm
      int reps = 0;
      WallTimer t;
      do {
        conv.run(input.data(), 128, filter.data(), ep, dst);
        ++reps;
      } while (t.seconds() < 0.005 &&
               total.seconds() < budget_seconds);
      trial.gflops = flops * reps / t.seconds() * 1e-9;
    }
    result.trials.push_back(trial);
    if (trial.gflops > result.best_gflops) {
      result.best_gflops = trial.gflops;
      result.best = rb;
    }
  }
  // Budget exhausted before anything was measured: fall back to the
  // analytical Eq. 3 solution.
  if (result.best.vw == 0) result.best = solve_register_block(p.S);
  return result;
}

}  // namespace ndirect
