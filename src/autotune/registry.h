// Persistent registry of tuned schedules.
//
// Ansor-style tuning is expensive (Section 7.3: 1,000-20,000 trials);
// production deployments tune once and ship the schedules. This
// registry maps convolution shapes to their best-found schedules and
// round-trips through a human-readable text file, so benches, examples
// and users can reuse search results across processes.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "autotune/schedule.h"
#include "tensor/conv_params.h"

namespace ndirect {

class ScheduleRegistry {
 public:
  struct Entry {
    Schedule schedule;
    double gflops = 0;  ///< throughput recorded at tuning time
    int threads = 1;    ///< thread count the schedule was tuned for
  };

  /// Insert or overwrite the entry for a shape. Keeps the faster entry
  /// when `keep_best` and one already exists for the same shape.
  void put(const ConvParams& shape, const Entry& entry,
           bool keep_best = true);

  /// Exact-shape lookup (N included: schedules are batch-specific).
  std::optional<Entry> find(const ConvParams& shape) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Serialize to a text file (one line per entry). Returns false on
  /// I/O failure.
  bool save(const std::string& path) const;

  /// Parse a file produced by save(). Lines that fail to parse or
  /// describe invalid schedules are skipped (count reported via
  /// `skipped` when non-null). A missing file yields an empty registry.
  static ScheduleRegistry load(const std::string& path,
                               int* skipped = nullptr);

 private:
  static std::string key(const ConvParams& shape);
  std::map<std::string, std::pair<ConvParams, Entry>> entries_;
};

}  // namespace ndirect
