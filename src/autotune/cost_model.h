// Analytical cost model guiding the evolutionary search.
//
// Ansor ranks candidates with a learned model and only measures the
// most promising ones. We rank with a first-principles score built from
// the same quantities the paper's analytical models use:
//   * the register tile's stride-aware FAI (flops per loaded element),
//   * cache-fit factors for the Eq. 1/2 working sets,
//   * loop-remainder waste (Q % vw, K % vk, P % th, C % tc),
//   * the Eq. 5 per-thread FAI of the chosen ptn split.
// The score is a relative throughput proxy (higher is better); only its
// ordering matters to the tuner.
#pragma once

#include "autotune/schedule.h"
#include "runtime/cpu_info.h"

namespace ndirect {

struct CostModel {
  CacheInfo cache;
  double alpha = 2.0;
  int threads = 1;

  /// Relative throughput proxy; > 0 for valid schedules.
  double score(const Schedule& s, const ConvParams& p) const;
};

}  // namespace ndirect
