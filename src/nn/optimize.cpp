#include "nn/optimize.h"

#include <vector>

namespace ndirect {

int fold_batchnorm(Graph& graph) {
  // Count consumers of every node: a conv feeding anything besides the
  // BN (e.g. a residual edge) cannot absorb it.
  std::vector<int> consumers(static_cast<std::size_t>(graph.node_count()),
                             0);
  for (NodeId id = 1; id < graph.node_count(); ++id) {
    for (NodeId in : graph.inputs_of(id)) {
      ++consumers[static_cast<std::size_t>(in)];
    }
  }

  int folded = 0;
  for (NodeId id = 1; id < graph.node_count(); ++id) {
    auto* bn = dynamic_cast<BatchNormOp*>(graph.op_of(id));
    if (bn == nullptr) continue;
    const NodeId conv_id = graph.inputs_of(id)[0];
    auto* conv = dynamic_cast<ConvOp*>(graph.op_of(conv_id));
    if (conv == nullptr) continue;
    if (consumers[static_cast<std::size_t>(conv_id)] != 1) continue;

    // y = s*(conv(x) + b0) + t  ==  conv'(x) + b' with
    // filter'[k] = s[k]*filter[k],  b'[k] = s[k]*b0[k] + t[k].
    const ConvParams& p = conv->params();
    const std::vector<float>& scale = bn->scale();
    const std::vector<float>& shift = bn->shift();
    Tensor& filter = conv->filter();
    const std::int64_t crs = std::int64_t{p.C} * p.R * p.S;
    for (int k = 0; k < p.K; ++k) {
      float* row = filter.data() + k * crs;
      const float s = scale[static_cast<std::size_t>(k)];
      for (std::int64_t i = 0; i < crs; ++i) row[i] *= s;
    }
    std::vector<float>& bias = conv->bias();
    if (bias.empty()) bias.assign(static_cast<std::size_t>(p.K), 0.0f);
    for (int k = 0; k < p.K; ++k) {
      bias[static_cast<std::size_t>(k)] =
          scale[static_cast<std::size_t>(k)] *
              bias[static_cast<std::size_t>(k)] +
          shift[static_cast<std::size_t>(k)];
    }
    graph.replace_op(id, std::make_unique<IdentityOp>());
    ++folded;
  }
  return folded;
}

int fuse_conv_relu(Graph& graph) {
  std::vector<int> consumers(static_cast<std::size_t>(graph.node_count()),
                             0);
  for (NodeId id = 1; id < graph.node_count(); ++id) {
    for (NodeId in : graph.inputs_of(id)) {
      ++consumers[static_cast<std::size_t>(in)];
    }
  }

  int fused = 0;
  for (NodeId id = 1; id < graph.node_count(); ++id) {
    if (dynamic_cast<ReluOp*>(graph.op_of(id)) == nullptr) continue;
    // Walk through an Identity left behind by fold_batchnorm.
    NodeId src = graph.inputs_of(id)[0];
    while (dynamic_cast<IdentityOp*>(graph.op_of(src)) != nullptr &&
           consumers[static_cast<std::size_t>(src)] == 1) {
      src = graph.inputs_of(src)[0];
    }
    auto* conv = dynamic_cast<ConvOp*>(graph.op_of(src));
    if (conv == nullptr) continue;
    if (consumers[static_cast<std::size_t>(src)] != 1) continue;
    conv->set_fused_relu(true);
    graph.replace_op(id, std::make_unique<IdentityOp>());
    ++fused;
  }
  return fused;
}

int quantize_convs(Graph& graph) {
  int switched = 0;
  for (ConvOp* conv : graph.conv_ops()) {
    if (conv->backend() != ConvBackend::Ndirect) continue;
    conv->set_quantized(true);
    ++switched;
  }
  return switched;
}

}  // namespace ndirect
