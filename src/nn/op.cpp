#include "nn/op.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <stdexcept>

#include "autotune/tuner.h"
#include "baselines/im2col_conv.h"
#include "baselines/naive_conv.h"
#include "gemm/gemm.h"
#include "simd/vec128.h"
#include "tensor/rng.h"

namespace ndirect {
namespace {

void expect_arity(const char* op, std::size_t got, std::size_t want) {
  if (got != want) {
    throw std::invalid_argument(std::string(op) + ": expected " +
                                std::to_string(want) + " inputs, got " +
                                std::to_string(got));
  }
}

TensorShape shape_of(const Tensor& t) {
  return {static_cast<int>(t.dim(0)), static_cast<int>(t.dim(1)),
          static_cast<int>(t.dim(2)), static_cast<int>(t.dim(3))};
}

}  // namespace

std::string TensorShape::to_string() const {
  return "[" + std::to_string(N) + ", " + std::to_string(C) + ", " +
         std::to_string(H) + ", " + std::to_string(W) + "]";
}

const char* conv_backend_name(ConvBackend b) {
  switch (b) {
    case ConvBackend::Ndirect: return "ndirect";
    case ConvBackend::Im2colGemm: return "im2col+gemm";
    case ConvBackend::Tuned: return "tuned";
    case ConvBackend::Naive: return "naive";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ConvOp
// ---------------------------------------------------------------------------

ConvOp::ConvOp(ConvParams params, ConvBackend backend, std::uint64_t seed,
               bool bias)
    : params_(params),
      backend_(backend),
      filter_(make_filter_kcrs(params.K, params.C, params.R, params.S)) {
  // Kaiming-style scale keeps activation magnitudes stable through deep
  // stacks, so FP32 comparisons between backends stay meaningful.
  fill_random(filter_, seed);
  const float scale = std::sqrt(
      2.0f / (static_cast<float>(params.C) * params.R * params.S * 3));
  for (std::size_t i = 0; i < filter_.size(); ++i) filter_[i] *= scale;
  if (bias) {
    std::mt19937_64 rng(seed + 7);
    std::uniform_real_distribution<float> dist(-0.1f, 0.1f);
    bias_.resize(static_cast<std::size_t>(params.K));
    for (float& b : bias_) b = dist(rng);
  }
}

void ConvOp::set_backend(ConvBackend b) {
  backend_ = b;
  engine_.reset();
}

void ConvOp::set_filter_cache(bool enabled) {
  if (filter_cache_ == enabled) return;
  filter_cache_ = enabled;
  engine_.reset();  // the cache flag is baked into the engine's options
  qengine_.reset();
}

void ConvOp::set_pool(ThreadPool* pool) {
  if (pool_ == pool) return;
  pool_ = pool;
  engine_.reset();  // the pool pointer is baked into the engine's options
  qengine_.reset();
}

void ConvOp::set_worker_budget(int budget, int extra_stealers) {
  if (worker_budget_ == budget && extra_stealers_ == extra_stealers) return;
  worker_budget_ = budget;
  extra_stealers_ = extra_stealers;
  engine_.reset();  // the grid is re-planned from the new budget
}

void ConvOp::set_telemetry(TelemetrySnapshot* sink) {
  if (telemetry_ == sink) return;
  telemetry_ = sink;
  engine_.reset();  // the sink pointer is baked into the engine's options
}

TensorShape ConvOp::infer(const std::vector<TensorShape>& in) const {
  expect_arity("conv", in.size(), 1);
  const TensorShape& s = in[0];
  if (s.C != params_.C || s.H != params_.H || s.W != params_.W ||
      s.N != params_.N) {
    throw std::invalid_argument("conv: input shape " + s.to_string() +
                                " does not match " + params_.to_string());
  }
  return {params_.N, params_.K, params_.P(), params_.Q()};
}

void ConvOp::set_quantized(bool on) {
  quantized_ = on;
  if (!on) {
    qengine_.reset();
    qfilter_ready_ = false;
  }
}

Tensor ConvOp::quantized_forward(const Tensor& x) const {
  if (!qengine_) {
    Int8ConvOptions qopts;
    qopts.pool = pool_;
    qopts.cache_packed_filter = filter_cache_;
    qengine_ = std::make_unique<Int8Conv>(params_, qopts);
  }
  if (filter_dirty_ || !qfilter_ready_) {
    // Re-quantize the (possibly rescaled) weights; the fresh values
    // vector re-keys the engine's packed-filter cache automatically.
    qfilter_ = quantize_filter_i8(filter_.data(), params_);
    qfilter_ready_ = true;
    filter_dirty_ = false;
  }
  const QuantizedActivation qx = quantize_activation_u8(
      x.data(), static_cast<std::size_t>(params_.input_elems()));
  qdequant_.resize(static_cast<std::size_t>(params_.K));
  for (int k = 0; k < params_.K; ++k) {
    qdequant_[static_cast<std::size_t>(k)] =
        qx.scale * qfilter_.scales[static_cast<std::size_t>(k)];
  }
  Int8Epilogue epi;
  epi.dequant_scale = qdequant_.data();
  epi.bias = bias_.empty() ? nullptr : bias_.data();
  epi.relu = fused_relu_;
  Tensor out({params_.N, params_.K, params_.P(), params_.Q()},
             Layout::NCHW);
  Int8Output dst;
  dst.f32 = out.data();
  qengine_->run(qx.values.data(), qx.zero_point, qfilter_.values.data(),
                epi, dst, &qstats_);
  return out;
}

Tensor ConvOp::forward(const std::vector<const Tensor*>& in) const {
  const Tensor& x = *in.at(0);
  Tensor out;
  switch (backend_) {
    case ConvBackend::Ndirect: {
      if (quantized_) return quantized_forward(x);
      if (!engine_) {
        // Inference configuration: persistent scratch arenas plus the
        // packed-filter cache, so steady-state forward passes allocate
        // nothing and never re-run the filter transform.
        NdirectOptions nopts;
        nopts.cache_packed_filter = filter_cache_;
        nopts.pool = pool_;
        nopts.threads = worker_budget_;
        nopts.extra_stealers = extra_stealers_;
        nopts.telemetry = telemetry_;
        engine_ = std::make_unique<NdirectConv>(params_, nopts);
      }
      if (filter_dirty_) {
        // Weights were handed out mutably since the last forward (e.g.
        // fold_batchnorm); drop the packed copy before this run.
        engine_->invalidate_filter_cache();
        filter_dirty_ = false;
      }
      // Bias and fused ReLU ride the store epilogue: zero extra passes.
      ConvEpilogue epi;
      epi.bias = bias_.empty() ? nullptr : bias_.data();
      epi.relu = fused_relu_;
      out = engine_->run(x, filter_, epi);
      return out;
    }
    case ConvBackend::Im2colGemm:
      out = im2col_conv_nchw(x, filter_, params_);
      break;
    case ConvBackend::Tuned: {
      // Fall back to a default schedule when the tuner was not run.
      Schedule s = schedule_;
      if (!has_schedule_) {
        s = Schedule{.vw = 8, .vk = 8, .tc = std::min(params_.C, 16),
                     .tk = 32 <= params_.K ? 32 : 8, .th = 4, .ptn = 1};
        if (!schedule_valid(s, params_, 1)) {
          s = Schedule{.vw = 4, .vk = 4, .tc = 1, .tk = 4, .th = 1,
                       .ptn = 1};
        }
      }
      out = tuned_conv(x, filter_, params_, s);
      break;
    }
    case ConvBackend::Naive:
      out = naive_conv_nchw(x, filter_, params_);
      break;
  }
  // Non-Ndirect backends cannot fuse into their stores; apply bias and
  // ReLU in ONE vectorized pass over the output instead of the two
  // scalar passes the seed ran (the Ndirect path returned above with
  // both folded into the store epilogue).
  if (!bias_.empty() || fused_relu_) {
    const std::int64_t hw = std::int64_t{params_.P()} * params_.Q();
    const vec128f zero = vzero();
    for (int n = 0; n < params_.N; ++n) {
      for (int k = 0; k < params_.K; ++k) {
        const float b =
            bias_.empty() ? 0.0f : bias_[static_cast<std::size_t>(k)];
        float* plane =
            out.data() + (std::int64_t{n} * params_.K + k) * hw;
        const vec128f vb = vdup(b);
        std::int64_t i = 0;
        if (fused_relu_) {
          for (; i + kVecLanes <= hw; i += kVecLanes)
            vstore(plane + i, vmax(vadd(vload(plane + i), vb), zero));
          for (; i < hw; ++i) plane[i] = std::max(plane[i] + b, 0.0f);
        } else {
          for (; i + kVecLanes <= hw; i += kVecLanes)
            vstore(plane + i, vadd(vload(plane + i), vb));
          for (; i < hw; ++i) plane[i] += b;
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// DepthwiseConvOp
// ---------------------------------------------------------------------------

DepthwiseConvOp::DepthwiseConvOp(DepthwiseParams params,
                                 std::uint64_t seed)
    : params_(params),
      filter_(make_filter_kcrs(params.C, 1, params.R, params.S)) {
  fill_random(filter_, seed);
  const float scale =
      std::sqrt(2.0f / (static_cast<float>(params.R) * params.S * 3));
  for (std::size_t i = 0; i < filter_.size(); ++i) filter_[i] *= scale;
}

TensorShape DepthwiseConvOp::infer(
    const std::vector<TensorShape>& in) const {
  expect_arity("dwconv", in.size(), 1);
  const TensorShape& s = in[0];
  if (s.C != params_.C || s.H != params_.H || s.W != params_.W ||
      s.N != params_.N) {
    throw std::invalid_argument("dwconv: input shape mismatch");
  }
  return {params_.N, params_.C, params_.P(), params_.Q()};
}

Tensor DepthwiseConvOp::forward(
    const std::vector<const Tensor*>& in) const {
  return depthwise_conv_nchw(*in.at(0), filter_, params_);
}

// ---------------------------------------------------------------------------
// Elementwise / normalization
// ---------------------------------------------------------------------------

TensorShape IdentityOp::infer(const std::vector<TensorShape>& in) const {
  expect_arity("identity", in.size(), 1);
  return in[0];
}

Tensor IdentityOp::forward(const std::vector<const Tensor*>& in) const {
  return in.at(0)->clone();
}

TensorShape ReluOp::infer(const std::vector<TensorShape>& in) const {
  expect_arity("relu", in.size(), 1);
  return in[0];
}

Tensor ReluOp::forward(const std::vector<const Tensor*>& in) const {
  Tensor out = in.at(0)->clone();
  float* d = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) d[i] = std::max(d[i], 0.0f);
  return out;
}

BatchNormOp::BatchNormOp(int channels, std::uint64_t seed)
    : scale_(static_cast<std::size_t>(channels)),
      shift_(static_cast<std::size_t>(channels)) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> sdist(0.7f, 1.3f);
  std::uniform_real_distribution<float> bdist(-0.1f, 0.1f);
  for (float& s : scale_) s = sdist(rng);
  for (float& b : shift_) b = bdist(rng);
}

TensorShape BatchNormOp::infer(const std::vector<TensorShape>& in) const {
  expect_arity("batchnorm", in.size(), 1);
  if (in[0].C != static_cast<int>(scale_.size())) {
    throw std::invalid_argument("batchnorm: channel mismatch");
  }
  return in[0];
}

Tensor BatchNormOp::forward(const std::vector<const Tensor*>& in) const {
  const Tensor& x = *in.at(0);
  const TensorShape s = shape_of(x);
  Tensor out({s.N, s.C, s.H, s.W}, Layout::NCHW);
  const std::int64_t hw = std::int64_t{s.H} * s.W;
  for (int n = 0; n < s.N; ++n) {
    for (int c = 0; c < s.C; ++c) {
      const float a = scale_[static_cast<std::size_t>(c)];
      const float b = shift_[static_cast<std::size_t>(c)];
      const float* src = x.data() + (std::int64_t{n} * s.C + c) * hw;
      float* dst = out.data() + (std::int64_t{n} * s.C + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) dst[i] = a * src[i] + b;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------------

TensorShape MaxPoolOp::infer(const std::vector<TensorShape>& in) const {
  expect_arity("maxpool", in.size(), 1);
  const TensorShape& s = in[0];
  const int P = (s.H + 2 * pad_ - kernel_) / stride_ + 1;
  const int Q = (s.W + 2 * pad_ - kernel_) / stride_ + 1;
  if (P <= 0 || Q <= 0) throw std::invalid_argument("maxpool: too small");
  return {s.N, s.C, P, Q};
}

Tensor MaxPoolOp::forward(const std::vector<const Tensor*>& in) const {
  const Tensor& x = *in.at(0);
  const TensorShape s = shape_of(x);
  const int P = (s.H + 2 * pad_ - kernel_) / stride_ + 1;
  const int Q = (s.W + 2 * pad_ - kernel_) / stride_ + 1;
  Tensor out({s.N, s.C, P, Q}, Layout::NCHW);
  for (int n = 0; n < s.N; ++n)
    for (int c = 0; c < s.C; ++c)
      for (int oj = 0; oj < P; ++oj)
        for (int oi = 0; oi < Q; ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          for (int r = 0; r < kernel_; ++r) {
            const int ij = oj * stride_ + r - pad_;
            if (ij < 0 || ij >= s.H) continue;
            for (int q = 0; q < kernel_; ++q) {
              const int ii = oi * stride_ + q - pad_;
              if (ii < 0 || ii >= s.W) continue;
              best = std::max(best, x.at4(n, c, ij, ii));
            }
          }
          out.at4(n, c, oj, oi) = best;
        }
  return out;
}

TensorShape GlobalAvgPoolOp::infer(
    const std::vector<TensorShape>& in) const {
  expect_arity("gavgpool", in.size(), 1);
  return {in[0].N, in[0].C, 1, 1};
}

Tensor GlobalAvgPoolOp::forward(
    const std::vector<const Tensor*>& in) const {
  const Tensor& x = *in.at(0);
  const TensorShape s = shape_of(x);
  Tensor out({s.N, s.C, 1, 1}, Layout::NCHW);
  const std::int64_t hw = std::int64_t{s.H} * s.W;
  for (int n = 0; n < s.N; ++n)
    for (int c = 0; c < s.C; ++c) {
      const float* src = x.data() + (std::int64_t{n} * s.C + c) * hw;
      double sum = 0;
      for (std::int64_t i = 0; i < hw; ++i) sum += src[i];
      out.at4(n, c, 0, 0) = static_cast<float>(sum / static_cast<double>(hw));
    }
  return out;
}

// ---------------------------------------------------------------------------
// Residual add / FC / softmax
// ---------------------------------------------------------------------------

TensorShape ConcatOp::infer(const std::vector<TensorShape>& in) const {
  if (in.empty()) throw std::invalid_argument("concat: needs inputs");
  TensorShape out = in[0];
  for (std::size_t i = 1; i < in.size(); ++i) {
    const TensorShape& s = in[i];
    if (s.N != out.N || s.H != out.H || s.W != out.W) {
      throw std::invalid_argument("concat: N/H/W mismatch " +
                                  out.to_string() + " vs " +
                                  s.to_string());
    }
    out.C += s.C;
  }
  return out;
}

Tensor ConcatOp::forward(const std::vector<const Tensor*>& in) const {
  std::vector<TensorShape> shapes;
  shapes.reserve(in.size());
  for (const Tensor* t : in) shapes.push_back(shape_of(*t));
  const TensorShape os = infer(shapes);
  Tensor out({os.N, os.C, os.H, os.W}, Layout::NCHW);
  const std::int64_t hw = std::int64_t{os.H} * os.W;
  int c_off = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const int ci = shapes[i].C;
    for (int n = 0; n < os.N; ++n) {
      const float* src = in[i]->data() + std::int64_t{n} * ci * hw;
      float* dst =
          out.data() + (std::int64_t{n} * os.C + c_off) * hw;
      std::memcpy(dst, src,
                  static_cast<std::size_t>(ci) * hw * sizeof(float));
    }
    c_off += ci;
  }
  return out;
}

TensorShape AddOp::infer(const std::vector<TensorShape>& in) const {
  expect_arity("add", in.size(), 2);
  if (!(in[0] == in[1])) {
    throw std::invalid_argument("add: shape mismatch " +
                                in[0].to_string() + " vs " +
                                in[1].to_string());
  }
  return in[0];
}

Tensor AddOp::forward(const std::vector<const Tensor*>& in) const {
  const Tensor& a = *in.at(0);
  const Tensor& b = *in.at(1);
  Tensor out = a.clone();
  float* d = out.data();
  const float* s = b.data();
  for (std::size_t i = 0; i < out.size(); ++i) d[i] += s[i];
  return out;
}

FcOp::FcOp(int in_features, int out_features, std::uint64_t seed)
    : in_features_(in_features),
      out_features_(out_features),
      weights_(make_matrix(out_features, in_features)),
      bias_(static_cast<std::size_t>(out_features)) {
  fill_random(weights_, seed);
  const float scale = std::sqrt(2.0f / static_cast<float>(in_features));
  for (std::size_t i = 0; i < weights_.size(); ++i) weights_[i] *= scale;
  std::mt19937_64 rng(seed + 3);
  std::uniform_real_distribution<float> dist(-0.05f, 0.05f);
  for (float& b : bias_) b = dist(rng);
}

TensorShape FcOp::infer(const std::vector<TensorShape>& in) const {
  expect_arity("fc", in.size(), 1);
  const std::int64_t feats =
      std::int64_t{in[0].C} * in[0].H * in[0].W;
  if (feats != in_features_) {
    throw std::invalid_argument("fc: expected " +
                                std::to_string(in_features_) +
                                " features, got " + std::to_string(feats));
  }
  return {in[0].N, out_features_, 1, 1};
}

Tensor FcOp::forward(const std::vector<const Tensor*>& in) const {
  const Tensor& x = *in.at(0);
  const int N = static_cast<int>(x.dim(0));
  Tensor out({N, out_features_, 1, 1}, Layout::NCHW);
  // out[n][o] = sum_i W[o][i] * x[n][i]  ==  X(N x in) * W^T; compute as
  // per-sample GEMV batches through sgemm with B = x viewed (in x 1).
  // Simpler: C(N x out) = X(N x in) * Wt(in x out); build Wt once per
  // call is wasteful, so run sgemm with swapped operands:
  // C^T(out x N) = W(out x in) * X^T(in x N). For small N we instead
  // loop samples with one sgemm each (out x 1).
  for (int n = 0; n < N; ++n) {
    sgemm(out_features_, 1, in_features_, weights_.data(), in_features_,
          x.data() + std::int64_t{n} * in_features_, 1,
          out.data() + std::int64_t{n} * out_features_, 1);
    float* dst = out.data() + std::int64_t{n} * out_features_;
    for (int o = 0; o < out_features_; ++o) {
      dst[o] += bias_[static_cast<std::size_t>(o)];
    }
  }
  return out;
}

TensorShape SoftmaxOp::infer(const std::vector<TensorShape>& in) const {
  expect_arity("softmax", in.size(), 1);
  return in[0];
}

Tensor SoftmaxOp::forward(const std::vector<const Tensor*>& in) const {
  const Tensor& x = *in.at(0);
  const int N = static_cast<int>(x.dim(0));
  const std::int64_t feats = x.element_count() / N;
  Tensor out = x.clone();
  for (int n = 0; n < N; ++n) {
    float* d = out.data() + n * feats;
    float mx = d[0];
    for (std::int64_t i = 1; i < feats; ++i) mx = std::max(mx, d[i]);
    double sum = 0;
    for (std::int64_t i = 0; i < feats; ++i) {
      d[i] = std::exp(d[i] - mx);
      sum += d[i];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t i = 0; i < feats; ++i) d[i] *= inv;
  }
  return out;
}

}  // namespace ndirect
