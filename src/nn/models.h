// CNN model builders: ResNet-50/101 and VGG-16/19 (the networks of the
// paper's end-to-end evaluation, Fig. 7) with deterministic random
// weights.
#pragma once

#include <memory>

#include "nn/graph.h"

namespace ndirect {

struct ModelOptions {
  ConvBackend backend = ConvBackend::Ndirect;
  /// Divide every channel count by this factor (>= 1). Used by tests
  /// and quick benches to shrink the models while preserving topology.
  int channel_divisor = 1;
  /// Input spatial size (ImageNet default 224).
  int image_size = 224;
  std::uint64_t seed = 1234;
};

std::unique_ptr<Graph> build_resnet50(int batch, const ModelOptions& = {});
std::unique_ptr<Graph> build_resnet101(int batch, const ModelOptions& = {});
std::unique_ptr<Graph> build_vgg16(int batch, const ModelOptions& = {});
std::unique_ptr<Graph> build_vgg19(int batch, const ModelOptions& = {});

/// MobileNetV1 built from depthwise-separable blocks (Section 10.2's
/// motivating architecture): dwconv 3x3 + BN + ReLU + pointwise 1x1 +
/// BN + ReLU. The pointwise convolutions run through the selected
/// backend; depthwise layers use the dedicated Section 10.2 kernel.
std::unique_ptr<Graph> build_mobilenet(int batch, const ModelOptions& = {});

/// Build by name: "ResNet-50", "ResNet-101", "VGG-16", "VGG-19",
/// "MobileNet".
std::unique_ptr<Graph> build_model(const std::string& name, int batch,
                                   const ModelOptions& = {});

}  // namespace ndirect
