// Graph-level optimizations.
//
// The paper notes (Sections 8.3, 10) that nDirect, as an operator
// library, lacks the cross-layer optimizations Ansor gets from Relay's
// operator fusion, and names integrating such optimizations as future
// work. This pass implements the highest-value instance for inference
// — folding BatchNorm into the preceding convolution's weights — as the
// repo's extension of that future-work direction.
#pragma once

#include "nn/graph.h"

namespace ndirect {

/// Fold every BatchNorm whose sole consumer relationship is
/// conv -> batchnorm into the convolution (filter scaling + bias), and
/// replace the BatchNorm with Identity. Returns the number folded.
/// Inference results are unchanged up to FP32 rounding.
int fold_batchnorm(Graph& graph);

/// Fuse every conv -> relu pair (conv's sole consumer) into the
/// convolution's store epilogue, replacing the ReLU with Identity.
/// Returns the number fused. Run fold_batchnorm first on BN networks so
/// the conv -> bn -> relu chains collapse into single fused convs.
int fuse_conv_relu(Graph& graph);

/// Switch every Ndirect-backend convolution to the int8 path
/// (DESIGN.md §14): u8 activations, per-channel s8 weights, fp32
/// dequantized outputs — so the rest of the graph is untouched.
/// Returns the number switched. Run fold_batchnorm/fuse_conv_relu
/// first so the quantized convs carry the folded bias and ReLU in
/// their epilogue.
int quantize_convs(Graph& graph);

}  // namespace ndirect
