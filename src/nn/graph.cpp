#include "nn/graph.h"

#include <stdexcept>

namespace ndirect {

Graph::Graph(int N, int C, int H, int W) {
  Node input;
  input.shape = {N, C, H, W};
  nodes_.push_back(std::move(input));
}

NodeId Graph::add(std::unique_ptr<Op> op, std::vector<NodeId> inputs) {
  if (inputs.empty()) throw std::invalid_argument("op needs inputs");
  std::vector<TensorShape> in_shapes;
  for (NodeId id : inputs) {
    if (id < 0 || id >= node_count()) {
      throw std::invalid_argument("bad input node id");
    }
    in_shapes.push_back(nodes_[static_cast<std::size_t>(id)].shape);
  }
  Node node;
  node.shape = op->infer(in_shapes);
  node.op = std::move(op);
  node.inputs = std::move(inputs);
  nodes_.push_back(std::move(node));
  return node_count() - 1;
}

Tensor Graph::run(const Tensor& input) const {
  std::vector<Tensor> values(nodes_.size());
  values[0] = input.clone();
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    std::vector<const Tensor*> args;
    args.reserve(node.inputs.size());
    for (NodeId id : node.inputs) {
      args.push_back(&values[static_cast<std::size_t>(id)]);
    }
    values[i] = node.op->forward(args);
  }
  return std::move(values.back());
}

Tensor Graph::run_profiled(const Tensor& input, PhaseTimer& timer) const {
  std::vector<Tensor> values(nodes_.size());
  values[0] = input.clone();
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    std::vector<const Tensor*> args;
    args.reserve(node.inputs.size());
    for (NodeId id : node.inputs) {
      args.push_back(&values[static_cast<std::size_t>(id)]);
    }
    WallTimer t;
    values[i] = node.op->forward(args);
    timer.add(node.op->name(), t.seconds());
  }
  return std::move(values.back());
}

const TensorShape& Graph::output_shape() const {
  return nodes_.back().shape;
}

const TensorShape& Graph::shape_of(NodeId id) const {
  return nodes_.at(static_cast<std::size_t>(id)).shape;
}

Op* Graph::op_of(NodeId id) {
  return nodes_.at(static_cast<std::size_t>(id)).op.get();
}

std::vector<ConvOp*> Graph::conv_ops() {
  std::vector<ConvOp*> convs;
  for (auto& node : nodes_) {
    if (auto* c = dynamic_cast<ConvOp*>(node.op.get())) {
      convs.push_back(c);
    }
  }
  return convs;
}

const std::vector<NodeId>& Graph::inputs_of(NodeId id) const {
  return nodes_.at(static_cast<std::size_t>(id)).inputs;
}

void Graph::replace_op(NodeId id, std::unique_ptr<Op> op) {
  Node& node = nodes_.at(static_cast<std::size_t>(id));
  std::vector<TensorShape> in_shapes;
  for (NodeId in : node.inputs) {
    in_shapes.push_back(nodes_[static_cast<std::size_t>(in)].shape);
  }
  const TensorShape new_shape = op->infer(in_shapes);
  if (!(new_shape == node.shape)) {
    throw std::invalid_argument("replace_op: output shape changed");
  }
  node.op = std::move(op);
}

std::int64_t Graph::conv_flops() const {
  std::int64_t total = 0;
  for (const auto& node : nodes_) {
    if (const auto* c = dynamic_cast<const ConvOp*>(node.op.get())) {
      total += c->params().flops();
    }
  }
  return total;
}

}  // namespace ndirect
