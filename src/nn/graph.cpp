#include "nn/graph.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/threading.h"
#include "runtime/trace.h"

namespace ndirect {

Graph::Graph(int N, int C, int H, int W) {
  Node input;
  input.shape = {N, C, H, W};
  nodes_.push_back(std::move(input));
}

NodeId Graph::add(std::unique_ptr<Op> op, std::vector<NodeId> inputs) {
  if (inputs.empty()) throw std::invalid_argument("op needs inputs");
  std::vector<TensorShape> in_shapes;
  for (NodeId id : inputs) {
    if (id < 0 || id >= node_count()) {
      throw std::invalid_argument("bad input node id");
    }
    in_shapes.push_back(nodes_[static_cast<std::size_t>(id)].shape);
  }
  Node node;
  node.shape = op->infer(in_shapes);
  node.op = std::move(op);
  node.inputs = std::move(inputs);
  nodes_.push_back(std::move(node));
  return node_count() - 1;
}

std::vector<std::vector<NodeId>> Graph::levels() const {
  std::vector<int> level(nodes_.size(), 0);
  int deepest = 0;
  // Nodes are stored in topological order, so one forward sweep fixes
  // every level.
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    int l = 0;
    for (NodeId in : nodes_[i].inputs) {
      l = std::max(l, level[static_cast<std::size_t>(in)] + 1);
    }
    level[i] = l;
    deepest = std::max(deepest, l);
  }
  std::vector<std::vector<NodeId>> out(
      static_cast<std::size_t>(deepest) + 1);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out[static_cast<std::size_t>(level[i])].push_back(
        static_cast<NodeId>(i));
  }
  return out;
}

int Graph::max_width() const {
  int width = 1;
  for (const auto& level : levels()) {
    width = std::max(width, static_cast<int>(level.size()));
  }
  return width;
}

void Graph::set_conv_pool(ThreadPool* pool) {
  conv_pool_ = pool;
  for (ConvOp* c : conv_ops()) c->set_pool(pool);
}

void Graph::plan_concurrency(int workers) {
  if (workers <= 0) {
    ThreadPool& pool =
        conv_pool_ != nullptr ? *conv_pool_ : ThreadPool::global();
    workers = static_cast<int>(pool.size());
  }
  for (const auto& level : levels()) {
    std::vector<ConvOp*> convs;
    for (NodeId id : level) {
      auto* c = dynamic_cast<ConvOp*>(
          nodes_[static_cast<std::size_t>(id)].op.get());
      if (c != nullptr && c->backend() == ConvBackend::Ndirect) {
        convs.push_back(c);
      }
    }
    if (convs.size() < 2) {
      // Nothing to share the machine with: whole pool, no extras.
      for (ConvOp* c : convs) c->set_worker_budget(0, 0);
      continue;
    }
    std::vector<double> flops;
    flops.reserve(convs.size());
    for (const ConvOp* c : convs) {
      flops.push_back(static_cast<double>(c->params().flops()));
    }
    const std::vector<int> budget = partition_workers(workers, flops);
    for (std::size_t i = 0; i < convs.size(); ++i) {
      // Seed a sub-rectangle sized to this conv's share; the rest of
      // the pool shows up as pure stealer tasks, so cores the sibling
      // branch leaves idle drain this conv's tiles.
      convs[i]->set_worker_budget(budget[i],
                                  std::max(0, workers - budget[i]));
    }
  }
}

Tensor Graph::run_sequential(const Tensor& input,
                             const GraphRunOptions& opts) const {
  std::vector<Tensor> values(nodes_.size());
  values[0] = input.clone();
  if (opts.stats != nullptr) {
    *opts.stats = {};
    opts.stats->runners = 1;
    opts.stats->max_inflight = 1;
    opts.stats->completion_order.reserve(nodes_.size() - 1);
  }
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    std::vector<const Tensor*> args;
    args.reserve(node.inputs.size());
    for (NodeId id : node.inputs) {
      args.push_back(&values[static_cast<std::size_t>(id)]);
    }
    if (trace_on())
      TraceSession::global().begin(node.op->name(), "node",
                                   static_cast<std::int64_t>(i));
    if (opts.timer != nullptr) {
      WallTimer t;
      values[i] = node.op->forward(args);
      opts.timer->add(node.op->name(), t.seconds());
    } else {
      values[i] = node.op->forward(args);
    }
    if (trace_on()) TraceSession::global().end(node.op->name());
    if (opts.stats != nullptr) {
      opts.stats->completion_order.push_back(static_cast<NodeId>(i));
    }
  }
  return std::move(values.back());
}

Tensor Graph::run_concurrent(const Tensor& input,
                             const GraphRunOptions& opts,
                             int runners) const {
  const std::size_t n = nodes_.size();
  // Slots are preallocated and never move; a slot is written exactly
  // once, by the runner that executes its node, strictly before the
  // completion is published under the mutex — so consumers (which only
  // read inputs already in completion_order) race with nothing.
  std::vector<Tensor> values(n);
  values[0] = input.clone();

  std::vector<int> indeg(n, 0);
  std::vector<std::vector<NodeId>> consumers(n);
  for (std::size_t i = 1; i < n; ++i) {
    indeg[i] = static_cast<int>(nodes_[i].inputs.size());
    for (NodeId in : nodes_[i].inputs) {
      consumers[static_cast<std::size_t>(in)].push_back(
          static_cast<NodeId>(i));
    }
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<NodeId> ready;
  int remaining = static_cast<int>(n) - 1;
  int inflight = 0;
  int max_inflight = 0;
  std::vector<NodeId> completion_order;
  completion_order.reserve(n - 1);
  std::exception_ptr error;

  // "Complete" the input node: its consumers with no other pending
  // inputs become the initial ready set.
  for (NodeId c : consumers[0]) {
    if (--indeg[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
  }

  auto runner = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      cv.wait(lock, [&] {
        return error != nullptr || remaining == 0 || !ready.empty();
      });
      if (error != nullptr || remaining == 0) return;
      const NodeId id = ready.back();
      ready.pop_back();
      ++inflight;
      max_inflight = std::max(max_inflight, inflight);
      lock.unlock();

      const Node& node = nodes_[static_cast<std::size_t>(id)];
      std::vector<const Tensor*> args;
      args.reserve(node.inputs.size());
      for (NodeId in : node.inputs) {
        args.push_back(&values[static_cast<std::size_t>(in)]);
      }
      Tensor out;
      try {
        if (trace_on())
          TraceSession::global().begin(node.op->name(), "node",
                                       static_cast<std::int64_t>(id));
        if (opts.timer != nullptr) {
          WallTimer t;
          out = node.op->forward(args);
          opts.timer->add(node.op->name(), t.seconds());
        } else {
          out = node.op->forward(args);
        }
        if (trace_on()) TraceSession::global().end(node.op->name());
      } catch (...) {
        // Balance the span even on the error path so the exported
        // trace keeps every lane's B/E stack well-formed.
        if (trace_on()) TraceSession::global().end(node.op->name());
        lock.lock();
        if (error == nullptr) error = std::current_exception();
        --inflight;
        cv.notify_all();
        return;
      }
      values[static_cast<std::size_t>(id)] = std::move(out);

      lock.lock();
      --inflight;
      --remaining;
      completion_order.push_back(id);
      for (NodeId c : consumers[static_cast<std::size_t>(id)]) {
        if (--indeg[static_cast<std::size_t>(c)] == 0) {
          ready.push_back(c);
        }
      }
      // Waking everyone is deliberate: several nodes may have become
      // ready, and the final completion must release all runners.
      cv.notify_all();
    }
  };

  // Dedicated (cheap, short-lived) runner crew rather than pool tasks:
  // node bodies dispatch onto the ThreadPool themselves, and consuming
  // pool workers for graph bookkeeping would starve the conv gangs the
  // runners are trying to keep busy. The caller is runner #0.
  std::vector<std::thread> crew;
  crew.reserve(static_cast<std::size_t>(runners) - 1);
  for (int i = 1; i < runners; ++i) {
    crew.emplace_back([&runner, i] {
      // Lane registration only while a session is live: crew threads
      // are short-lived, and an inactive trace should not grow the
      // lane registry run after run.
      if (trace_on())
        set_trace_lane_name("graph-runner-" + std::to_string(i));
      runner();
    });
  }
  // The caller is runner #0 but keeps its own lane identity (renaming
  // the main thread's lane would mislabel everything it records later).
  runner();
  for (auto& t : crew) t.join();

  if (error != nullptr) std::rethrow_exception(error);
  if (opts.stats != nullptr) {
    *opts.stats = {};
    opts.stats->runners = runners;
    opts.stats->max_inflight = max_inflight;
    opts.stats->completion_order = std::move(completion_order);
  }
  return std::move(values.back());
}

Tensor Graph::run(const Tensor& input, const GraphRunOptions& opts) const {
  const int width = max_width();
  int runners = opts.runners > 0 ? opts.runners : std::min(width, 8);
  if (!opts.concurrent || width <= 1 || runners <= 1 ||
      nodes_.size() <= 2) {
    return run_sequential(input, opts);
  }
  return run_concurrent(input, opts, runners);
}

Tensor Graph::run_profiled(const Tensor& input, PhaseTimer& timer) const {
  GraphRunOptions opts;
  opts.timer = &timer;
  return run(input, opts);
}

const TensorShape& Graph::output_shape() const {
  return nodes_.back().shape;
}

const TensorShape& Graph::shape_of(NodeId id) const {
  return nodes_.at(static_cast<std::size_t>(id)).shape;
}

Op* Graph::op_of(NodeId id) {
  return nodes_.at(static_cast<std::size_t>(id)).op.get();
}

std::vector<ConvOp*> Graph::conv_ops() {
  std::vector<ConvOp*> convs;
  for (auto& node : nodes_) {
    if (auto* c = dynamic_cast<ConvOp*>(node.op.get())) {
      convs.push_back(c);
    }
  }
  return convs;
}

const std::vector<NodeId>& Graph::inputs_of(NodeId id) const {
  return nodes_.at(static_cast<std::size_t>(id)).inputs;
}

void Graph::replace_op(NodeId id, std::unique_ptr<Op> op) {
  Node& node = nodes_.at(static_cast<std::size_t>(id));
  std::vector<TensorShape> in_shapes;
  for (NodeId in : node.inputs) {
    in_shapes.push_back(nodes_[static_cast<std::size_t>(in)].shape);
  }
  const TensorShape new_shape = op->infer(in_shapes);
  if (!(new_shape == node.shape)) {
    throw std::invalid_argument("replace_op: output shape changed");
  }
  node.op = std::move(op);
}

std::int64_t Graph::conv_flops() const {
  std::int64_t total = 0;
  for (const auto& node : nodes_) {
    if (const auto* c = dynamic_cast<const ConvOp*>(node.op.get())) {
      total += c->params().flops();
    }
  }
  return total;
}

}  // namespace ndirect
