#include "nn/models.h"

#include <algorithm>
#include <stdexcept>

namespace ndirect {
namespace {

/// Builder tracking the current node and its activation shape.
class NetBuilder {
 public:
  NetBuilder(std::unique_ptr<Graph> graph, const ModelOptions& opts)
      : graph_(std::move(graph)), opts_(opts) {}

  NodeId head() const { return head_; }
  const TensorShape& shape() const { return graph_->shape_of(head_); }

  NodeId dwconv(NodeId from, int kernel, int stride) {
    const TensorShape s = graph_->shape_of(from);
    const DepthwiseParams p{.N = s.N, .C = s.C, .H = s.H, .W = s.W,
                            .R = kernel, .S = kernel, .str = stride,
                            .pad = kernel / 2};
    return graph_->add(std::make_unique<DepthwiseConvOp>(p, next_seed()),
                       {from});
  }

  NodeId conv(NodeId from, int out_channels, int kernel, int stride,
              bool bias) {
    const TensorShape s = graph_->shape_of(from);
    const ConvParams p{.N = s.N,
                       .C = s.C,
                       .H = s.H,
                       .W = s.W,
                       .K = out_channels,
                       .R = kernel,
                       .S = kernel,
                       .str = stride,
                       .pad = kernel / 2};
    return graph_->add(std::make_unique<ConvOp>(p, opts_.backend,
                                                next_seed(), bias),
                       {from});
  }

  NodeId bn(NodeId from) {
    const TensorShape s = graph_->shape_of(from);
    return graph_->add(std::make_unique<BatchNormOp>(s.C, next_seed()),
                       {from});
  }

  NodeId relu(NodeId from) {
    return graph_->add(std::make_unique<ReluOp>(), {from});
  }

  NodeId maxpool(NodeId from, int k, int stride, int pad) {
    return graph_->add(std::make_unique<MaxPoolOp>(k, stride, pad), {from});
  }

  NodeId add(NodeId a, NodeId b) {
    return graph_->add(std::make_unique<AddOp>(), {a, b});
  }

  NodeId gavgpool(NodeId from) {
    return graph_->add(std::make_unique<GlobalAvgPoolOp>(), {from});
  }

  NodeId fc(NodeId from, int out_features) {
    const TensorShape s = graph_->shape_of(from);
    const int in_features = static_cast<int>(
        std::int64_t{s.C} * s.H * s.W);
    return graph_->add(
        std::make_unique<FcOp>(in_features, out_features, next_seed()),
        {from});
  }

  NodeId softmax(NodeId from) {
    return graph_->add(std::make_unique<SoftmaxOp>(), {from});
  }

  void set_head(NodeId id) { head_ = id; }

  std::unique_ptr<Graph> finish() { return std::move(graph_); }

  int ch(int channels) const {
    return std::max(4, channels / opts_.channel_divisor);
  }

 private:
  std::uint64_t next_seed() { return opts_.seed + 1000 * (++seed_counter_); }

  std::unique_ptr<Graph> graph_;
  ModelOptions opts_;
  NodeId head_ = 0;
  std::uint64_t seed_counter_ = 0;
};

// ResNet bottleneck: 1x1 -> 3x3(stride) -> 1x1(4x), projection shortcut
// on the first block of each stage.
NodeId bottleneck(NetBuilder& b, NodeId input, int mid, int stride,
                  bool project) {
  NodeId x = b.conv(input, mid, 1, 1, /*bias=*/false);
  x = b.bn(x);
  x = b.relu(x);
  x = b.conv(x, mid, 3, stride, false);
  x = b.bn(x);
  x = b.relu(x);
  x = b.conv(x, mid * 4, 1, 1, false);
  x = b.bn(x);
  NodeId shortcut = input;
  if (project) {
    shortcut = b.conv(input, mid * 4, 1, stride, false);
    shortcut = b.bn(shortcut);
  }
  x = b.add(x, shortcut);
  return b.relu(x);
}

std::unique_ptr<Graph> build_resnet(int batch, const ModelOptions& opts,
                                    const int blocks[4]) {
  auto graph = std::make_unique<Graph>(batch, 3, opts.image_size,
                                       opts.image_size);
  NetBuilder b(std::move(graph), opts);

  NodeId x = b.conv(0, b.ch(64), 7, 2, false);
  x = b.bn(x);
  x = b.relu(x);
  x = b.maxpool(x, 3, 2, 1);

  const int mids[4] = {b.ch(64), b.ch(128), b.ch(256), b.ch(512)};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < blocks[stage]; ++block) {
      const int stride = (stage > 0 && block == 0) ? 2 : 1;
      x = bottleneck(b, x, mids[stage], stride, block == 0);
    }
  }
  x = b.gavgpool(x);
  x = b.fc(x, 1000);
  x = b.softmax(x);
  b.set_head(x);
  return b.finish();
}

std::unique_ptr<Graph> build_vgg(int batch, const ModelOptions& opts,
                                 const int stage_convs[5]) {
  auto graph = std::make_unique<Graph>(batch, 3, opts.image_size,
                                       opts.image_size);
  NetBuilder b(std::move(graph), opts);

  const int widths[5] = {b.ch(64), b.ch(128), b.ch(256), b.ch(512),
                         b.ch(512)};
  NodeId x = 0;
  for (int stage = 0; stage < 5; ++stage) {
    for (int conv = 0; conv < stage_convs[stage]; ++conv) {
      x = b.conv(x, widths[stage], 3, 1, /*bias=*/true);
      x = b.relu(x);
    }
    x = b.maxpool(x, 2, 2, 0);
  }
  x = b.fc(x, std::max(16, 4096 / opts.channel_divisor));
  x = b.relu(x);
  x = b.fc(x, std::max(16, 4096 / opts.channel_divisor));
  x = b.relu(x);
  x = b.fc(x, 1000);
  x = b.softmax(x);
  b.set_head(x);
  return b.finish();
}

// MobileNetV1 depthwise-separable block: dw3x3(stride) BN ReLU,
// pw1x1 BN ReLU.
NodeId separable_block(NetBuilder& b, NodeId input, int out_channels,
                       int stride) {
  NodeId x = b.dwconv(input, 3, stride);
  x = b.bn(x);
  x = b.relu(x);
  x = b.conv(x, out_channels, 1, 1, /*bias=*/false);
  x = b.bn(x);
  return b.relu(x);
}

}  // namespace

std::unique_ptr<Graph> build_mobilenet(int batch,
                                       const ModelOptions& opts) {
  auto graph = std::make_unique<Graph>(batch, 3, opts.image_size,
                                       opts.image_size);
  NetBuilder b(std::move(graph), opts);

  NodeId x = b.conv(0, b.ch(32), 3, 2, false);
  x = b.bn(x);
  x = b.relu(x);

  struct Block {
    int channels, stride;
  };
  const Block blocks[] = {
      {64, 1},   {128, 2}, {128, 1}, {256, 2},  {256, 1},
      {512, 2},  {512, 1}, {512, 1}, {512, 1},  {512, 1},
      {512, 1},  {1024, 2}, {1024, 1},
  };
  for (const Block& blk : blocks) {
    x = separable_block(b, x, b.ch(blk.channels), blk.stride);
  }
  x = b.gavgpool(x);
  x = b.fc(x, 1000);
  x = b.softmax(x);
  b.set_head(x);
  return b.finish();
}

std::unique_ptr<Graph> build_resnet50(int batch, const ModelOptions& opts) {
  const int blocks[4] = {3, 4, 6, 3};
  return build_resnet(batch, opts, blocks);
}

std::unique_ptr<Graph> build_resnet101(int batch,
                                       const ModelOptions& opts) {
  const int blocks[4] = {3, 4, 23, 3};
  return build_resnet(batch, opts, blocks);
}

std::unique_ptr<Graph> build_vgg16(int batch, const ModelOptions& opts) {
  const int convs[5] = {2, 2, 3, 3, 3};
  return build_vgg(batch, opts, convs);
}

std::unique_ptr<Graph> build_vgg19(int batch, const ModelOptions& opts) {
  const int convs[5] = {2, 2, 4, 4, 4};
  return build_vgg(batch, opts, convs);
}

std::unique_ptr<Graph> build_model(const std::string& name, int batch,
                                   const ModelOptions& opts) {
  if (name == "ResNet-50") return build_resnet50(batch, opts);
  if (name == "ResNet-101") return build_resnet101(batch, opts);
  if (name == "VGG-16") return build_vgg16(batch, opts);
  if (name == "VGG-19") return build_vgg19(batch, opts);
  if (name == "MobileNet") return build_mobilenet(batch, opts);
  throw std::invalid_argument("unknown model: " + name);
}

}  // namespace ndirect
