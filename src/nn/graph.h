// Scheduler-aware inference graph executor.
//
// Stands in for the MXNet integration of Section 7.3: a chain/DAG of
// operators whose convolutions dispatch to a pluggable backend
// (nDirect, im2col+GEMM, tuned schedules, or the naive reference), so
// end-to-end CNN inference (Fig. 7) can be measured with the conv
// implementation swapped and everything else held fixed.
//
// Beyond the paper's op-at-a-time execution, the executor runs
// independent nodes CONCURRENTLY: nodes are organized into dependency
// levels (ready-set driven, not insertion order), ready nodes are
// handed to a small crew of runner threads, and every convolution
// dispatches onto one shared ThreadPool whose re-entrant run() lets the
// branches' tile schedulers cooperate — a core that finishes one
// branch's tiles steals the sibling branch's through its pure-stealer
// tasks (plan_concurrency). Concurrent execution is bitwise-identical
// to sequential execution: tiles own disjoint output blocks and each
// output element's full C reduction happens inside one tile claim, so
// neither the node interleaving nor the worker split can change any
// FP accumulation order (DESIGN.md §10; enforced by the DAG fuzzer).
//
// Nodes are added in topological order; node 0 is the graph input.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/op.h"

namespace ndirect {

using NodeId = int;

/// Observability of one run() call (all fields written by run).
struct GraphRunStats {
  int runners = 0;       ///< runner threads used (1 = sequential)
  int max_inflight = 0;  ///< peak concurrently executing nodes
  /// Node ids in completion order; every node appears after all of its
  /// inputs (the ordering tests assert this under concurrency).
  std::vector<NodeId> completion_order;
};

struct GraphRunOptions {
  /// Execute independent ready nodes concurrently. Off forces the
  /// seed's op-at-a-time loop (A/B benching; results are identical).
  bool concurrent = true;
  /// Runner threads executing node bodies. 0 = one per node of the
  /// widest dependency level, capped at 8. Chain graphs (width 1)
  /// always run inline on the caller. Runners are cheap dispatchers:
  /// the heavy lifting stays on the convs' shared ThreadPool.
  int runners = 0;
  /// When set, accumulates per-op-type wall time (keys are op names).
  /// PhaseTimer is internally locked, so overlapping nodes may add
  /// concurrently; per-op totals remain exact, their sum can exceed
  /// wall time (that is what overlap means).
  PhaseTimer* timer = nullptr;
  GraphRunStats* stats = nullptr;  ///< optional observability
};

class Graph {
 public:
  /// Create a graph whose input has the given NCHW shape.
  Graph(int N, int C, int H, int W);

  /// Append an operator consuming the given upstream nodes; returns the
  /// new node's id. Inputs must be already-added nodes (or 0, input).
  NodeId add(std::unique_ptr<Op> op, std::vector<NodeId> inputs);

  /// Run the whole graph on `input` (shape must match construction).
  /// Default options: concurrent over the dependency levels. One Graph
  /// must not be run from two threads at once (ops lazily plan engines).
  Tensor run(const Tensor& input) const { return run(input, {}); }
  Tensor run(const Tensor& input, const GraphRunOptions& opts) const;

  /// Accumulate per-op-type wall time over one run into `timer`
  /// (keys are op names: "conv", "relu", ...).
  Tensor run_profiled(const Tensor& input, PhaseTimer& timer) const;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  const TensorShape& output_shape() const;
  const TensorShape& shape_of(NodeId id) const;
  Op* op_of(NodeId id);

  /// All ConvOp nodes, in execution order (for backend swaps/tuning).
  std::vector<ConvOp*> conv_ops();

  const std::vector<NodeId>& inputs_of(NodeId id) const;

  /// Swap a node's operator in place. The replacement must infer the
  /// same output shape from the same inputs (checked).
  void replace_op(NodeId id, std::unique_ptr<Op> op);

  /// Total conv flops of one forward pass.
  std::int64_t conv_flops() const;

  /// Dependency levels: level 0 is the input node, a node's level is
  /// 1 + the max level of its inputs. Nodes within one level share no
  /// edges and may execute concurrently.
  std::vector<std::vector<NodeId>> levels() const;

  /// Widest dependency level (1 for a pure chain) — the concurrency
  /// the topology admits.
  int max_width() const;

  /// Point every ConvOp at `pool` (nullptr = the global pool), so all
  /// branches dispatch onto the same workers.
  void set_conv_pool(ThreadPool* pool);

  /// Seed-budget planning for concurrent branches: in every dependency
  /// level holding >= 2 Ndirect convs, split `workers` (0 = the conv
  /// pool's size) across them proportionally to FLOPs
  /// (partition_workers) and expose the rest of the pool to each conv
  /// as pure stealer tasks, so each conv seeds a sub-rectangle of the
  /// worker grid via solve_thread_mapping while idle cores from the
  /// sibling branch drain its tiles. No effect on results.
  void plan_concurrency(int workers = 0);

 private:
  struct Node {
    std::unique_ptr<Op> op;  ///< null for the input node
    std::vector<NodeId> inputs;
    TensorShape shape;
  };

  Tensor run_sequential(const Tensor& input,
                        const GraphRunOptions& opts) const;
  Tensor run_concurrent(const Tensor& input, const GraphRunOptions& opts,
                        int runners) const;

  std::vector<Node> nodes_;
  ThreadPool* conv_pool_ = nullptr;  ///< set_conv_pool target
};

}  // namespace ndirect
