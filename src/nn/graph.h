// Minimal inference graph executor.
//
// Stands in for the MXNet integration of Section 7.3: a chain/DAG of
// operators whose convolutions dispatch to a pluggable backend
// (nDirect, im2col+GEMM, tuned schedules, or the naive reference), so
// end-to-end CNN inference (Fig. 7) can be measured with the conv
// implementation swapped and everything else held fixed.
//
// Nodes are added in topological order; node 0 is the graph input.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/op.h"

namespace ndirect {

using NodeId = int;

class Graph {
 public:
  /// Create a graph whose input has the given NCHW shape.
  Graph(int N, int C, int H, int W);

  /// Append an operator consuming the given upstream nodes; returns the
  /// new node's id. Inputs must be already-added nodes (or 0, input).
  NodeId add(std::unique_ptr<Op> op, std::vector<NodeId> inputs);

  /// Run the whole graph on `input` (shape must match construction).
  Tensor run(const Tensor& input) const;

  /// Accumulate per-op-type wall time over one run into `timer`
  /// (keys are op names: "conv", "relu", ...).
  Tensor run_profiled(const Tensor& input, PhaseTimer& timer) const;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  const TensorShape& output_shape() const;
  const TensorShape& shape_of(NodeId id) const;
  Op* op_of(NodeId id);

  /// All ConvOp nodes, in execution order (for backend swaps/tuning).
  std::vector<ConvOp*> conv_ops();

  const std::vector<NodeId>& inputs_of(NodeId id) const;

  /// Swap a node's operator in place. The replacement must infer the
  /// same output shape from the same inputs (checked).
  void replace_op(NodeId id, std::unique_ptr<Op> op);

  /// Total conv flops of one forward pass.
  std::int64_t conv_flops() const;

 private:
  struct Node {
    std::unique_ptr<Op> op;  ///< null for the input node
    std::vector<NodeId> inputs;
    TensorShape shape;
  };
  std::vector<Node> nodes_;
};

}  // namespace ndirect
