// Inference operators for the graph executor. All activations are NCHW.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autotune/schedule.h"
#include "core/depthwise.h"
#include "core/ndirect.h"
#include "core/quantized.h"
#include "runtime/timer.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace ndirect {

/// NCHW activation shape flowing along graph edges.
struct TensorShape {
  int N = 0, C = 0, H = 0, W = 0;
  std::int64_t elems() const { return std::int64_t{N} * C * H * W; }
  bool operator==(const TensorShape&) const = default;
  std::string to_string() const;
};

class Op {
 public:
  virtual ~Op() = default;
  virtual const char* name() const = 0;
  /// Output shape given input shapes (validates arity/shapes; throws
  /// std::invalid_argument on mismatch).
  virtual TensorShape infer(const std::vector<TensorShape>& in) const = 0;
  virtual Tensor forward(const std::vector<const Tensor*>& in) const = 0;
};

/// Which convolution implementation a ConvOp dispatches to (Fig. 7's
/// backend axis).
enum class ConvBackend {
  Ndirect,     ///< this paper (MXNet+NDIRECT)
  Im2colGemm,  ///< MXNet+OpenBLAS stand-in
  Tuned,       ///< Ansor stand-in: searched schedule, generic kernel
  Naive,       ///< Algorithm 1 (testing)
};

const char* conv_backend_name(ConvBackend b);

class ConvOp final : public Op {
 public:
  /// Weights are initialized deterministically from `seed`; `bias` adds
  /// a per-channel bias (VGG convs have one, ResNet convs do not).
  ConvOp(ConvParams params, ConvBackend backend, std::uint64_t seed,
         bool bias);

  const char* name() const override { return "conv"; }
  TensorShape infer(const std::vector<TensorShape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in) const override;

  const ConvParams& params() const { return params_; }
  ConvBackend backend() const { return backend_; }
  void set_backend(ConvBackend b);

  /// Install the schedule used by the Tuned backend.
  void set_schedule(const Schedule& s) { schedule_ = s; has_schedule_ = true; }
  bool has_schedule() const { return has_schedule_; }

  /// Apply ReLU inside the convolution (set by the fuse_conv_relu pass;
  /// the Ndirect backend runs it in the store epilogue, other backends
  /// apply it as a post-pass so semantics stay backend-invariant).
  void set_fused_relu(bool fused) { fused_relu_ = fused; }
  bool fused_relu() const { return fused_relu_; }

  /// Run this convolution through the int8 path (DESIGN.md §14):
  /// activations are quantized u8 asymmetric per forward, weights s8
  /// symmetric per output channel (re-quantized whenever the filter is
  /// marked dirty), and the fp32 output is produced by the per-channel
  /// dequantize epilogue with the op's bias and fused ReLU — so the
  /// graph topology and every downstream op are unchanged. Only the
  /// Ndirect backend; other backends ignore the flag.
  void set_quantized(bool on);
  bool quantized() const { return quantized_; }
  /// Stats of the most recent quantized forward (backend actually used,
  /// generic-fallback tile count).
  const Int8RunStats& quantized_stats() const { return qstats_; }

  /// Cache the packed filter inside the Ndirect engine (on by default:
  /// graph inference packs each layer's weights exactly once). Off
  /// restores the seed's transform-per-forward behaviour for A/B
  /// benching of the fixed overhead.
  void set_filter_cache(bool enabled);
  bool filter_cache() const { return filter_cache_; }

  /// Dispatch the Ndirect backend on `pool` instead of the global pool.
  /// The graph executor points every conv of a graph at one shared pool
  /// so concurrent branches cooperate on the same workers instead of
  /// oversubscribing the machine. nullptr restores the global pool.
  void set_pool(ThreadPool* pool);

  /// Seed the Ndirect engine's PTn x PTk grid with `budget` threads
  /// (0 = the whole pool) and expose `extra_stealers` additional
  /// pure-stealer tasks (see NdirectOptions::extra_stealers). The graph
  /// executor splits the pool across the convs of a level with
  /// partition_workers and covers the remainder with stealers, so a
  /// branch that finishes early drains its sibling's tiles. Neither
  /// value affects results (bitwise-identical output for any split).
  void set_worker_budget(int budget, int extra_stealers = 0);
  int worker_budget() const { return worker_budget_; }
  int extra_stealers() const { return extra_stealers_; }

  /// Collect per-run engine telemetry into `sink` (see
  /// NdirectOptions::telemetry): every forward() on the Ndirect backend
  /// overwrites it with that run's per-worker counters and wall time.
  /// nullptr (the default) disables collection. Ops that may run
  /// concurrently (graph branches) need distinct sinks; merge the
  /// snapshots afterwards for a whole-graph view.
  void set_telemetry(TelemetrySnapshot* sink);
  TelemetrySnapshot* telemetry() const { return telemetry_; }

  /// Mutable access marks the filter dirty; the next forward()
  /// invalidates the engine's packed-filter cache — the graph passes
  /// (e.g. fold_batchnorm) scale weights in place. Deferring to
  /// forward() means any number of accesses between two forwards cost
  /// one re-pack, not one each. Hazard: a retained Tensor& mutated
  /// after a later forward() bypasses the flag (the engine's sampled
  /// content fingerprint usually still catches it, but is best-effort)
  /// — re-take filter() before each round of mutation, and use the
  /// const overload for pure reads so nothing re-packs at all.
  Tensor& filter() {
    filter_dirty_ = true;
    return filter_;
  }
  const Tensor& filter() const { return filter_; }
  std::vector<float>& bias() { return bias_; }

 private:
  Tensor quantized_forward(const Tensor& x) const;

  ConvParams params_;
  ConvBackend backend_;
  Tensor filter_;  ///< KCRS
  std::vector<float> bias_;  ///< empty = no bias
  Schedule schedule_{};
  bool has_schedule_ = false;
  bool fused_relu_ = false;
  bool filter_cache_ = true;
  ThreadPool* pool_ = nullptr;  ///< nullptr = global pool
  int worker_budget_ = 0;       ///< 0 = whole pool
  int extra_stealers_ = 0;
  TelemetrySnapshot* telemetry_ = nullptr;  ///< nullptr = no collection
  /// Set by the mutable filter() accessor, consumed by forward().
  mutable bool filter_dirty_ = false;
  // Planned engine for the Ndirect backend (lazy, shape is fixed).
  mutable std::unique_ptr<NdirectConv> engine_;
  // Int8 path state (lazy; rebuilt when the pool changes or the filter
  // goes dirty).
  bool quantized_ = false;
  mutable std::unique_ptr<Int8Conv> qengine_;
  mutable QuantizedFilterI8 qfilter_;
  mutable std::vector<float> qdequant_;  ///< K: in_scale * w_scale[k]
  mutable bool qfilter_ready_ = false;
  mutable Int8RunStats qstats_;
};

/// Depthwise convolution (Section 10.2: the C reduction removed).
/// Used by the MobileNet builder's depthwise-separable blocks.
class DepthwiseConvOp final : public Op {
 public:
  DepthwiseConvOp(DepthwiseParams params, std::uint64_t seed);

  const char* name() const override { return "dwconv"; }
  TensorShape infer(const std::vector<TensorShape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in) const override;

  const DepthwiseParams& params() const { return params_; }

 private:
  DepthwiseParams params_;
  Tensor filter_;  ///< [C, 1, R, S]
};

/// Pass-through (what a folded-away op becomes).
class IdentityOp final : public Op {
 public:
  const char* name() const override { return "identity"; }
  TensorShape infer(const std::vector<TensorShape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in) const override;
};

class ReluOp final : public Op {
 public:
  const char* name() const override { return "relu"; }
  TensorShape infer(const std::vector<TensorShape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in) const override;
};

/// Inference-mode batch norm: per-channel y = scale*x + shift.
class BatchNormOp final : public Op {
 public:
  BatchNormOp(int channels, std::uint64_t seed);
  const char* name() const override { return "batchnorm"; }
  TensorShape infer(const std::vector<TensorShape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in) const override;

  const std::vector<float>& scale() const { return scale_; }
  const std::vector<float>& shift() const { return shift_; }

 private:
  std::vector<float> scale_;
  std::vector<float> shift_;
};

class MaxPoolOp final : public Op {
 public:
  MaxPoolOp(int kernel, int stride, int pad)
      : kernel_(kernel), stride_(stride), pad_(pad) {}
  const char* name() const override { return "maxpool"; }
  TensorShape infer(const std::vector<TensorShape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in) const override;

 private:
  int kernel_, stride_, pad_;
};

class GlobalAvgPoolOp final : public Op {
 public:
  const char* name() const override { return "gavgpool"; }
  TensorShape infer(const std::vector<TensorShape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in) const override;
};

/// Channel-axis concatenation of one or more same-N/H/W activations
/// (Inception-style branch merge; the DAG fuzzer's n-ary join).
class ConcatOp final : public Op {
 public:
  const char* name() const override { return "concat"; }
  TensorShape infer(const std::vector<TensorShape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in) const override;
};

/// Residual addition of two same-shaped activations.
class AddOp final : public Op {
 public:
  const char* name() const override { return "add"; }
  TensorShape infer(const std::vector<TensorShape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in) const override;
};

/// Fully connected layer on flattened input: y = W x + b via SGEMM.
class FcOp final : public Op {
 public:
  FcOp(int in_features, int out_features, std::uint64_t seed);
  const char* name() const override { return "fc"; }
  TensorShape infer(const std::vector<TensorShape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in) const override;

 private:
  int in_features_, out_features_;
  Tensor weights_;  ///< [out, in]
  std::vector<float> bias_;
};

class SoftmaxOp final : public Op {
 public:
  const char* name() const override { return "softmax"; }
  TensorShape infer(const std::vector<TensorShape>& in) const override;
  Tensor forward(const std::vector<const Tensor*>& in) const override;
};

}  // namespace ndirect
