// Cache blocking plan for the Goto SGEMM (our OpenBLAS stand-in).
//
// Follows Goto & van de Geijn, "Anatomy of High-Performance Matrix
// Multiplication": A is packed into MC x KC panels resident in L2, B into
// KC x NC panels resident in L3 (or memory), and the micro-kernel streams
// an MR x NR tile from L1/registers.
#pragma once

#include <algorithm>
#include <cstddef>

#include "runtime/cpu_info.h"

namespace ndirect {

/// Register-level micro-tile of the SGEMM micro-kernel: MR rows of A by
/// NR columns of B. 8x12 fills 24 of the 32 NEON-model registers with C
/// accumulators, mirroring the paper's Vk=8 x Vw=12 choice.
inline constexpr int kGemmMR = 8;
inline constexpr int kGemmNR = 12;

struct GemmBlocking {
  int mc = 256;  ///< rows of A packed per L2-resident panel
  int kc = 256;  ///< shared reduction depth per panel pass
  int nc = 3072; ///< columns of B packed per outer pass

  /// Derive MC/KC/NC from cache capacities, rounding to micro-tile
  /// multiples. Heuristics follow the Goto paper: KC*NR floats of B in
  /// L1 alongside the A micro-panel; MC*KC floats of A about half of L2.
  static GemmBlocking from_cache(const CacheInfo& cache) {
    GemmBlocking b;
    const std::size_t l1 = cache.l1d > 0 ? cache.l1d : 32 * 1024;
    const std::size_t l2 = cache.l2 > 0 ? cache.l2 : 512 * 1024;
    const std::size_t l3 = cache.l3;

    // KC: an (MR + NR) x KC working set of packed A+B strips in L1.
    std::size_t kc = l1 / (sizeof(float) * (kGemmMR + kGemmNR) * 2);
    b.kc = static_cast<int>(std::clamp<std::size_t>(kc, 64, 512));

    // MC: MC x KC panel of A fills ~half of L2.
    std::size_t mc = l2 / (2 * sizeof(float) * static_cast<std::size_t>(b.kc));
    mc = (mc / kGemmMR) * kGemmMR;
    b.mc = static_cast<int>(std::clamp<std::size_t>(mc, kGemmMR, 1024));

    // NC: KC x NC panel of B fills ~half of L3 when present.
    if (l3 > 0) {
      std::size_t nc =
          l3 / (2 * sizeof(float) * static_cast<std::size_t>(b.kc));
      nc = std::clamp<std::size_t>(nc, kGemmNR, 8192);
      b.nc = static_cast<int>(nc / kGemmNR * kGemmNR);
    } else {
      b.nc = 3072;
    }
    return b;
  }
};

}  // namespace ndirect
