// The 8x12 SGEMM micro-kernel (register-blocked, NEON-model SIMD).
#pragma once

#include <cstdint>

namespace ndirect {

/// C[0:8, 0:12] (+)= packed_a(8 x kc) * packed_b(kc x 12).
/// packed_a layout: [k][8] (from gemm_pack_a), packed_b: [k][12].
/// `ldc` is C's leading dimension in floats. If accumulate is false, C is
/// overwritten; otherwise the product is added to it.
void gemm_microkernel_8x12(int kc, const float* packed_a,
                           const float* packed_b, float* c,
                           std::int64_t ldc, bool accumulate);

/// Ragged-edge variant: writes only mr x nr (mr<=8, nr<=12) results.
void gemm_microkernel_edge(int kc, const float* packed_a,
                           const float* packed_b, float* c,
                           std::int64_t ldc, int mr, int nr,
                           bool accumulate);

}  // namespace ndirect
