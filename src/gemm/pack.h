// Packing routines of the Goto SGEMM.
//
// pack_a: an mc x kc block of row-major A into micro-panels of MR rows,
//         stored k-major: panel[k][mr]. Ragged tails are zero-filled.
// pack_b: a kc x nc block of row-major B into micro-panels of NR columns,
//         stored k-major: panel[k][nr]. Ragged tails are zero-filled.
#pragma once

#include <cstdint>

namespace ndirect {

/// A block: rows [0, mc) x cols [0, kc) of `a` (leading dimension lda).
/// Output size must be ceil(mc/MR)*MR * kc floats.
void gemm_pack_a(const float* a, std::int64_t lda, int mc, int kc,
                 float* packed);

/// B block: rows [0, kc) x cols [0, nc) of `b` (leading dimension ldb).
/// Output size must be kc * ceil(nc/NR)*NR floats.
void gemm_pack_b(const float* b, std::int64_t ldb, int kc, int nc,
                 float* packed);

}  // namespace ndirect
