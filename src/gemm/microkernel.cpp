#include "gemm/microkernel.h"

#include "gemm/blocking.h"
#include "simd/vec128.h"

namespace ndirect {

void gemm_microkernel_8x12(int kc, const float* packed_a,
                           const float* packed_b, float* c,
                           std::int64_t ldc, bool accumulate) {
  // 8 rows x 12 cols of C = 8 x 3 vector accumulators (24 registers),
  // plus 3 B vectors and 2 A vectors per k step: 29 of 32 NEON-model regs.
  vec128f acc[kGemmMR][3];
  for (int i = 0; i < kGemmMR; ++i)
    for (int j = 0; j < 3; ++j) acc[i][j] = vzero();

  for (int k = 0; k < kc; ++k) {
    const vec128f b0 = vload(packed_b + 0);
    const vec128f b1 = vload(packed_b + 4);
    const vec128f b2 = vload(packed_b + 8);
    const vec128f a0 = vload(packed_a + 0);
    const vec128f a1 = vload(packed_a + 4);

    acc[0][0] = vfma_lane<0>(acc[0][0], a0, b0);
    acc[0][1] = vfma_lane<0>(acc[0][1], a0, b1);
    acc[0][2] = vfma_lane<0>(acc[0][2], a0, b2);
    acc[1][0] = vfma_lane<1>(acc[1][0], a0, b0);
    acc[1][1] = vfma_lane<1>(acc[1][1], a0, b1);
    acc[1][2] = vfma_lane<1>(acc[1][2], a0, b2);
    acc[2][0] = vfma_lane<2>(acc[2][0], a0, b0);
    acc[2][1] = vfma_lane<2>(acc[2][1], a0, b1);
    acc[2][2] = vfma_lane<2>(acc[2][2], a0, b2);
    acc[3][0] = vfma_lane<3>(acc[3][0], a0, b0);
    acc[3][1] = vfma_lane<3>(acc[3][1], a0, b1);
    acc[3][2] = vfma_lane<3>(acc[3][2], a0, b2);
    acc[4][0] = vfma_lane<0>(acc[4][0], a1, b0);
    acc[4][1] = vfma_lane<0>(acc[4][1], a1, b1);
    acc[4][2] = vfma_lane<0>(acc[4][2], a1, b2);
    acc[5][0] = vfma_lane<1>(acc[5][0], a1, b0);
    acc[5][1] = vfma_lane<1>(acc[5][1], a1, b1);
    acc[5][2] = vfma_lane<1>(acc[5][2], a1, b2);
    acc[6][0] = vfma_lane<2>(acc[6][0], a1, b0);
    acc[6][1] = vfma_lane<2>(acc[6][1], a1, b1);
    acc[6][2] = vfma_lane<2>(acc[6][2], a1, b2);
    acc[7][0] = vfma_lane<3>(acc[7][0], a1, b0);
    acc[7][1] = vfma_lane<3>(acc[7][1], a1, b1);
    acc[7][2] = vfma_lane<3>(acc[7][2], a1, b2);

    packed_a += kGemmMR;
    packed_b += kGemmNR;
  }

  for (int i = 0; i < kGemmMR; ++i) {
    float* crow = c + i * ldc;
    if (accumulate) {
      vstore(crow + 0, vadd(vload(crow + 0), acc[i][0]));
      vstore(crow + 4, vadd(vload(crow + 4), acc[i][1]));
      vstore(crow + 8, vadd(vload(crow + 8), acc[i][2]));
    } else {
      vstore(crow + 0, acc[i][0]);
      vstore(crow + 4, acc[i][1]);
      vstore(crow + 8, acc[i][2]);
    }
  }
}

void gemm_microkernel_edge(int kc, const float* packed_a,
                           const float* packed_b, float* c,
                           std::int64_t ldc, int mr, int nr,
                           bool accumulate) {
  float tile[kGemmMR][kGemmNR];
  gemm_microkernel_8x12(kc, packed_a, packed_b, &tile[0][0], kGemmNR,
                        /*accumulate=*/false);
  for (int i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (int j = 0; j < nr; ++j) {
      crow[j] = accumulate ? crow[j] + tile[i][j] : tile[i][j];
    }
  }
}

}  // namespace ndirect
