// Goto-algorithm SGEMM driver (the repo's OpenBLAS substitute).
#pragma once

#include <cstdint>

#include "gemm/blocking.h"
#include "runtime/thread_pool.h"
#include "runtime/timer.h"

namespace ndirect {

/// Optional execution context: custom blocking, thread pool, and a phase
/// timer that splits time into "packing" and "micro-kernel" (Fig. 1a).
struct GemmContext {
  GemmBlocking blocking{};
  ThreadPool* pool = nullptr;       ///< nullptr = ThreadPool::global()
  PhaseTimer* phase_timer = nullptr;
};

/// C(MxN) = A(MxK) * B(KxN) + (accumulate ? C : 0).
/// Row-major, leading dimensions in floats.
void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
           std::int64_t lda, const float* b, std::int64_t ldb, float* c,
           std::int64_t ldc, bool accumulate = false,
           const GemmContext* ctx = nullptr);

/// Reference triple-loop product for tests (no blocking, no SIMD).
void sgemm_reference(std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, std::int64_t lda, const float* b,
                     std::int64_t ldb, float* c, std::int64_t ldc,
                     bool accumulate = false);

/// A deliberately simple SGEMM: cache-tiled and SIMD over columns, but
/// with no operand packing and a small register tile. This is the
/// quality of GEMM inside generic libraries that have not had the
/// Goto-style treatment (the paper's ACL_GEMM baseline in Fig. 1b).
void sgemm_simple(std::int64_t m, std::int64_t n, std::int64_t k,
                  const float* a, std::int64_t lda, const float* b,
                  std::int64_t ldb, float* c, std::int64_t ldc,
                  bool accumulate = false);

}  // namespace ndirect
