#include "gemm/gemm.h"

#include <algorithm>

#include "gemm/microkernel.h"
#include "gemm/pack.h"
#include "runtime/aligned_buffer.h"
#include "simd/vec128.h"

namespace ndirect {
namespace {

int round_up(int v, int m) { return (v + m - 1) / m * m; }

// Macro-kernel: multiply a packed mc x kc panel of A by a packed
// kc x nc panel of B into the C block at (c, ldc). Parallel over the
// MR row strips of the block, claimed dynamically: edge strips and the
// ragged last block make strip cost uneven, and a finished worker
// steals the remainder instead of idling at the barrier. The grain of
// one strip is fine — a strip is kc * nc worth of FMAs.
void macro_kernel(int mc, int nc, int kc, const float* packed_a,
                  const float* packed_b, float* c, std::int64_t ldc,
                  bool accumulate, ThreadPool& pool) {
  const int m_strips = (mc + kGemmMR - 1) / kGemmMR;
  const int n_strips = (nc + kGemmNR - 1) / kGemmNR;
  pool.parallel_for_dynamic(
      static_cast<std::size_t>(m_strips), 1,
      [&](std::size_t strip_begin, std::size_t strip_end) {
        for (std::size_t si = strip_begin; si < strip_end; ++si) {
          const int i0 = static_cast<int>(si) * kGemmMR;
          const int mr = std::min(kGemmMR, mc - i0);
          const float* pa =
              packed_a + static_cast<std::int64_t>(si) * kGemmMR * kc;
          for (int sj = 0; sj < n_strips; ++sj) {
            const int j0 = sj * kGemmNR;
            const int nr = std::min(kGemmNR, nc - j0);
            const float* pb =
                packed_b + static_cast<std::int64_t>(sj) * kGemmNR * kc;
            float* cblk = c + static_cast<std::int64_t>(i0) * ldc + j0;
            if (mr == kGemmMR && nr == kGemmNR) {
              gemm_microkernel_8x12(kc, pa, pb, cblk, ldc, accumulate);
            } else {
              gemm_microkernel_edge(kc, pa, pb, cblk, ldc, mr, nr,
                                    accumulate);
            }
          }
        }
      });
}

}  // namespace

void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
           std::int64_t lda, const float* b, std::int64_t ldb, float* c,
           std::int64_t ldc, bool accumulate, const GemmContext* ctx) {
  static const GemmContext default_ctx{
      GemmBlocking::from_cache(probe_host_cpu().cache), nullptr, nullptr};
  const GemmContext& cx = ctx != nullptr ? *ctx : default_ctx;
  ThreadPool& pool = cx.pool != nullptr ? *cx.pool : ThreadPool::global();
  const GemmBlocking& blk = cx.blocking;

  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (std::int64_t i = 0; i < m; ++i)
        std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
    return;
  }

  AlignedBuffer<float> packed_a(
      static_cast<std::size_t>(round_up(blk.mc, kGemmMR)) *
      static_cast<std::size_t>(blk.kc));
  AlignedBuffer<float> packed_b(
      static_cast<std::size_t>(blk.kc) *
      static_cast<std::size_t>(round_up(blk.nc, kGemmNR)));

  for (std::int64_t jc = 0; jc < n; jc += blk.nc) {
    const int nc = static_cast<int>(std::min<std::int64_t>(blk.nc, n - jc));
    for (std::int64_t pc = 0; pc < k; pc += blk.kc) {
      const int kc = static_cast<int>(std::min<std::int64_t>(blk.kc, k - pc));
      // First reduction slice honors the caller's accumulate flag; later
      // slices always accumulate into the partial result.
      const bool acc = accumulate || pc > 0;
      {
        WallTimer t;
        gemm_pack_b(b + pc * ldb + jc, ldb, kc, nc, packed_b.data());
        if (cx.phase_timer != nullptr)
          cx.phase_timer->add("packing", t.seconds());
      }
      for (std::int64_t ic = 0; ic < m; ic += blk.mc) {
        const int mc =
            static_cast<int>(std::min<std::int64_t>(blk.mc, m - ic));
        {
          WallTimer t;
          gemm_pack_a(a + ic * lda + pc, lda, mc, kc, packed_a.data());
          if (cx.phase_timer != nullptr)
            cx.phase_timer->add("packing", t.seconds());
        }
        WallTimer t;
        macro_kernel(mc, nc, kc, packed_a.data(), packed_b.data(),
                     c + ic * ldc + jc, ldc, acc, pool);
        if (cx.phase_timer != nullptr)
          cx.phase_timer->add("micro-kernel", t.seconds());
      }
    }
  }
}

void sgemm_simple(std::int64_t m, std::int64_t n, std::int64_t k,
                  const float* a, std::int64_t lda, const float* b,
                  std::int64_t ldb, float* c, std::int64_t ldc,
                  bool accumulate) {
  if (!accumulate) {
    for (std::int64_t i = 0; i < m; ++i) {
      std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
  }
  // ikj order with a 256-element k block: B rows stream from cache, C
  // rows stay hot. The inner loop vectorizes over columns, but each
  // C element is re-loaded and re-stored per k step (no register tile).
  constexpr std::int64_t kBlock = 256;
  for (std::int64_t kk = 0; kk < k; kk += kBlock) {
    const std::int64_t k_end = std::min(k, kk + kBlock);
    for (std::int64_t i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      for (std::int64_t p = kk; p < k_end; ++p) {
        const float av = a[i * lda + p];
        const float* brow = b + p * ldb;
        std::int64_t j = 0;
        const vec128f avv = vdup(av);
        for (; j + 4 <= n; j += 4) {
          vstore(crow + j, vfma(vload(crow + j), avv, vload(brow + j)));
        }
        for (; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void sgemm_reference(std::int64_t m, std::int64_t n, std::int64_t k,
                     const float* a, std::int64_t lda, const float* b,
                     std::int64_t ldb, float* c, std::int64_t ldc,
                     bool accumulate) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double sum = accumulate ? c[i * ldc + j] : 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        sum += static_cast<double>(a[i * lda + p]) *
               static_cast<double>(b[p * ldb + j]);
      }
      c[i * ldc + j] = static_cast<float>(sum);
    }
  }
}

}  // namespace ndirect
