#include "gemm/pack.h"

#include "gemm/blocking.h"

namespace ndirect {

void gemm_pack_a(const float* a, std::int64_t lda, int mc, int kc,
                 float* packed) {
  for (int i0 = 0; i0 < mc; i0 += kGemmMR) {
    const int mr = mc - i0 < kGemmMR ? mc - i0 : kGemmMR;
    for (int k = 0; k < kc; ++k) {
      for (int i = 0; i < mr; ++i) {
        packed[i] = a[(i0 + i) * lda + k];
      }
      for (int i = mr; i < kGemmMR; ++i) packed[i] = 0.0f;
      packed += kGemmMR;
    }
  }
}

void gemm_pack_b(const float* b, std::int64_t ldb, int kc, int nc,
                 float* packed) {
  for (int j0 = 0; j0 < nc; j0 += kGemmNR) {
    const int nr = nc - j0 < kGemmNR ? nc - j0 : kGemmNR;
    for (int k = 0; k < kc; ++k) {
      const float* row = b + k * ldb + j0;
      for (int j = 0; j < nr; ++j) packed[j] = row[j];
      for (int j = nr; j < kGemmNR; ++j) packed[j] = 0.0f;
      packed += kGemmNR;
    }
  }
}

}  // namespace ndirect
