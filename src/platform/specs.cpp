#include "platform/specs.h"

#include <stdexcept>

#include "runtime/aligned_buffer.h"
#include "runtime/timer.h"
#include "simd/vec128.h"

namespace ndirect {

std::vector<PlatformSpec> table3_platforms() {
  // Values copied from Table 3. Phytium 2000+ shares its 2 MB L2 within
  // a 4-core cluster and has no L3; KP920/ThunderX2 have private L2.
  std::vector<PlatformSpec> specs(4);

  specs[0].name = "Phytium 2000+";
  specs[0].cores = 64;
  specs[0].freq_ghz = 2.2;
  specs[0].peak_gflops = 1126.4;
  specs[0].bandwidth_gibs = 143.1;
  specs[0].cache = {32 * 1024, 2 * 1024 * 1024, 0, /*l2_shared=*/true};
  specs[0].smt_per_core = 1;

  specs[1].name = "KP920";
  specs[1].cores = 64;
  specs[1].freq_ghz = 2.6;
  specs[1].peak_gflops = 2662.4;
  specs[1].bandwidth_gibs = 190.7;
  specs[1].cache = {64 * 1024, 512 * 1024, 64ull * 1024 * 1024, false};
  specs[1].smt_per_core = 1;

  specs[2].name = "ThunderX2";
  specs[2].cores = 32;
  specs[2].freq_ghz = 2.5;
  specs[2].peak_gflops = 1279.7;
  specs[2].bandwidth_gibs = 158.95;
  specs[2].cache = {32 * 1024, 256 * 1024, 32ull * 1024 * 1024, false};
  specs[2].smt_per_core = 4;  // Section 8.5 runs 4 threads per core

  specs[3].name = "RPi 4";
  specs[3].cores = 4;
  specs[3].freq_ghz = 1.8;
  specs[3].peak_gflops = 56.8;
  specs[3].bandwidth_gibs = 16.8;
  specs[3].cache = {32 * 1024, 1024 * 1024, 0, false};
  specs[3].smt_per_core = 1;

  return specs;
}

const PlatformSpec& platform_by_name(const std::string& name) {
  static const std::vector<PlatformSpec> specs = table3_platforms();
  for (const PlatformSpec& s : specs) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown platform: " + name);
}

double measure_peak_gflops_single_core() {
  // 16 independent FMA chains keep every pipeline busy regardless of
  // FMA latency; operands chosen so values stay finite.
  constexpr int kChains = 16;
  vec128f acc[kChains];
  for (int i = 0; i < kChains; ++i) acc[i] = vdup(1.0f + 0.001f * i);
  const vec128f a = vdup(0.999999f);
  const vec128f b = vdup(1e-7f);

  const std::int64_t iters = 4'000'000;
  WallTimer t;
  for (std::int64_t it = 0; it < iters; ++it) {
    for (int i = 0; i < kChains; ++i) acc[i] = vfma(acc[i], a, b);
  }
  const double secs = t.seconds();
  float sink = 0;
  for (int i = 0; i < kChains; ++i) sink += vreduce_add(acc[i]);
  // Defeat dead-code elimination.
  volatile float guard = sink;
  (void)guard;

  const double flops =
      2.0 * kVecLanes * kChains * static_cast<double>(iters);
  return flops / secs / 1e9;
}

double measure_stream_bandwidth_gibs(std::size_t bytes) {
  const std::size_t n = bytes / sizeof(float);
  AlignedBuffer<float> buf(n);
  for (std::size_t i = 0; i < n; ++i) buf[i] = 1.0f;
  // Warm-up pass, then timed passes.
  volatile float sink = 0;
  float acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += buf[i];
  sink = acc;
  WallTimer t;
  const int reps = 3;
  for (int rep = 0; rep < reps; ++rep) {
    float local = 0;
    for (std::size_t i = 0; i < n; ++i) local += buf[i];
    sink = sink + local;
  }
  (void)sink;
  const double gib =
      static_cast<double>(n) * sizeof(float) * reps / (1024.0 * 1024 * 1024);
  return gib / t.seconds();
}

const PlatformSpec& host_platform() {
  static const PlatformSpec spec = [] {
    const CpuInfo info = probe_host_cpu();
    PlatformSpec s;
    s.name = "host";
    s.cores = info.logical_cores;
    s.cache = info.cache;
    s.freq_ghz = 0;  // unknown; not needed by the models
    const double per_core = measure_peak_gflops_single_core();
    s.peak_gflops = per_core * info.logical_cores;
    s.bandwidth_gibs = measure_stream_bandwidth_gibs(16u << 20);
    s.smt_per_core = 1;
    return s;
  }();
  return spec;
}

}  // namespace ndirect
