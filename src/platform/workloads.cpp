#include "platform/workloads.h"

#include <stdexcept>

namespace ndirect {
namespace {

struct Row {
  int id, C, K, HW, RS, str;
};

// Table 4, columns: ID, C, K, H/W, R/S, str (see header for the
// reconstructed rows 15/16/21).
constexpr Row kTable4[] = {
    {1, 3, 64, 224, 7, 2},      {2, 128, 128, 56, 3, 2},
    {3, 64, 64, 56, 3, 1},      {4, 256, 512, 56, 1, 2},
    {5, 64, 64, 56, 1, 1},      {6, 64, 256, 56, 1, 1},
    {7, 256, 64, 56, 1, 1},     {8, 256, 128, 56, 1, 1},
    {9, 256, 256, 28, 3, 2},    {10, 128, 128, 28, 3, 1},
    {11, 512, 1024, 28, 1, 2},  {12, 512, 256, 28, 1, 1},
    {13, 512, 128, 28, 1, 1},   {14, 128, 512, 28, 1, 1},
    {15, 512, 512, 14, 3, 2},   {16, 256, 256, 14, 3, 1},
    {17, 1024, 2048, 14, 1, 2}, {18, 256, 1024, 14, 1, 1},
    {19, 1024, 512, 14, 1, 1},  {20, 1024, 256, 14, 1, 1},
    {21, 512, 512, 7, 3, 1},    {22, 512, 2048, 7, 1, 1},
    {23, 2048, 512, 7, 1, 1},   {24, 64, 64, 224, 3, 1},
    {25, 128, 128, 112, 3, 1},  {26, 256, 256, 56, 3, 1},
    {27, 512, 512, 28, 3, 1},   {28, 512, 512, 14, 3, 1},
};

ConvLayer make_layer(const Row& row, int batch) {
  ConvLayer layer;
  layer.id = row.id;
  layer.network = row.id <= 23 ? "ResNet-50" : "VGG-16";
  layer.params = ConvParams{.N = batch,
                            .C = row.C,
                            .H = row.HW,
                            .W = row.HW,
                            .K = row.K,
                            .R = row.RS,
                            .S = row.RS,
                            .str = row.str,
                            .pad = row.RS / 2};
  return layer;
}

}  // namespace

std::vector<ConvLayer> table4_layers(int batch) {
  std::vector<ConvLayer> layers;
  layers.reserve(std::size(kTable4));
  for (const Row& row : kTable4) layers.push_back(make_layer(row, batch));
  return layers;
}

ConvLayer table4_layer(int id, int batch) {
  for (const Row& row : kTable4) {
    if (row.id == id) return make_layer(row, batch);
  }
  throw std::out_of_range("Table 4 layer id must be in [1, 28]");
}

std::vector<ConvLayer> table4_resnet_layers(int batch) {
  std::vector<ConvLayer> layers;
  for (const Row& row : kTable4) {
    if (row.id <= 20) layers.push_back(make_layer(row, batch));
  }
  return layers;
}

}  // namespace ndirect
