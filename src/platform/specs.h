// Hardware platform descriptors (Table 3 of the paper) plus the probed
// host machine.
//
// The paper evaluates on four ARMv8 machines we do not have. Their
// specifications (cores, peak FP32 throughput, bandwidth, cache sizes)
// enter this reproduction in two ways:
//   * the tiling/thread-mapping models consume their CacheInfo, so plan
//     construction for "Phytium 2000+" etc. is exactly what nDirect
//     would compute on the real machine;
//   * the analytical performance model (perf_model.h) predicts per-layer
//     throughput per method per platform, which regenerates the *shape*
//     of Figs. 1b/4/8/9 alongside host-measured numbers.
#pragma once

#include <string>
#include <vector>

#include "runtime/cpu_info.h"

namespace ndirect {

struct PlatformSpec {
  std::string name;
  int cores = 1;
  double freq_ghz = 1.0;
  double peak_gflops = 1.0;     ///< FP32, all cores
  double bandwidth_gibs = 1.0;  ///< max memory bandwidth
  CacheInfo cache;
  int smt_per_core = 1;  ///< hardware threads per core when SMT enabled

  double peak_per_core() const { return peak_gflops / cores; }
};

/// The four evaluation platforms, verbatim from Table 3.
std::vector<PlatformSpec> table3_platforms();

/// Lookup by name ("Phytium 2000+", "KP920", "ThunderX2", "RPi 4").
const PlatformSpec& platform_by_name(const std::string& name);

/// The machine this process runs on: probed topology/caches, peak
/// measured with an FMA-throughput microbenchmark, bandwidth measured
/// with a streaming read. Cached after the first call.
const PlatformSpec& host_platform();

/// Single-core FP32 peak measured by issuing independent vector FMAs.
double measure_peak_gflops_single_core();

/// Sequential-read bandwidth in GiB/s over a buffer of `bytes`.
double measure_stream_bandwidth_gibs(std::size_t bytes = 64u << 20);

}  // namespace ndirect
