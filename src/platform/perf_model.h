// Analytical per-layer performance model.
//
// The paper's headline figures (1b, 4, 8, 9) were measured on four ARM
// machines this reproduction does not have. We reproduce their *shape*
// with a roofline-style model evaluated on the Table 3 specs:
//
//   GFLOPS = min( e_kernel * u_parallel * PEAK ,  F / (bytes / BW) )
//
//   * e_kernel: single-core efficiency of the method's micro-kernel,
//     derived from its register-tile FAI (Eq. 4 and its GEMM analogue)
//     through a saturating curve e = FAI / (FAI + kappa). kappa is the
//     platform's "balance point" (flops a core can issue in the time one
//     L1 float arrives); stride-2 halves the usable FAI exactly as
//     Section 8.1 describes. SMT oversubscription lowers the effective
//     kappa (latency hiding).
//   * u_parallel: fraction of threads with work, from each method's
//     parallelization strategy — nDirect's PTn x PTk grid covers
//     (N*P) x ceil(K/Vk), ACL only K, etc. — times a load-balance term.
//   * memory bound: DRAM traffic per method (im2col materializes and
//     re-reads the column matrix; the indirect algorithm re-touches
//     input rows R*S times; ACL's K-only split makes every thread scan
//     the whole input; blocked methods stream everything once).
//
// The model is *calibrated*, not fitted: the kappa and traffic terms
// come from first principles, and the tests only assert the qualitative
// claims the paper makes (ordering of methods, 70-80% of peak for
// stride-1 3x3 nDirect layers, ACL near 5%, stride-2/1x1 dips, etc.).
#pragma once

#include <string>
#include <vector>

#include "platform/specs.h"
#include "tensor/conv_params.h"

namespace ndirect {

enum class ConvMethod {
  Ndirect,
  Im2colGemm,
  LibxsmmStyle,
  XnnpackStyle,
  AclDirect,
  AclGemm,
  AnsorTuned,
};

const char* method_name(ConvMethod m);

/// All methods, in the order the paper's figure legends list them.
std::vector<ConvMethod> all_methods();

/// Datatype axis of the model (DESIGN.md §14). GFLOPS stay
/// "GFLOPS-equivalent": the nominal fp32 flop count divided by wall
/// time, so dtypes compare directly on one roofline.
enum class ConvDtype {
  kF32,        ///< 4-byte tensors, FMA peak
  kI8Emulated, ///< 1-byte tensors, widening-multiply ladder (~FMA peak)
  kI8Dot,      ///< 1-byte tensors, SDOT: 4x the MACs per instruction
};

const char* conv_dtype_name(ConvDtype d);

struct PerfEstimate {
  double gflops = 0;        ///< predicted throughput
  double pct_peak = 0;      ///< gflops / platform peak (0-100)
  double compute_bound = 0; ///< the compute-side roofline term
  double memory_bound = 0;  ///< the bandwidth-side roofline term
  double e_kernel = 0;      ///< modelled single-core kernel efficiency
  double u_parallel = 0;    ///< modelled thread-utilization factor
  double ai = 0;            ///< flops per essential-DRAM-traffic byte
  double traffic_bytes = 0; ///< the essential traffic behind `ai`
};

/// Predict the throughput of `method` on `spec` for layer `p` using
/// `threads` worker threads (usually spec.cores; more when modelling
/// SMT oversubscription).
PerfEstimate estimate_conv_perf(const PlatformSpec& spec,
                                const ConvParams& p, ConvMethod method,
                                int threads);

/// Dtype-aware overload. Int8 quarters every tensor's DRAM traffic
/// (4x arithmetic intensity — which is exactly what lifts the
/// bandwidth-bound Table 4 layers), scales the register-tile FAI by
/// the same factor, and kI8Dot additionally raises the compute roof
/// 4x (SDOT retires 16 MACs per instruction vs the fp32 FMA's 4).
PerfEstimate estimate_conv_perf(const PlatformSpec& spec,
                                const ConvParams& p, ConvMethod method,
                                int threads, ConvDtype dtype);

}  // namespace ndirect
