#include "platform/perf_model.h"

#include <algorithm>
#include <cmath>

#include "core/fai.h"
#include "gemm/blocking.h"

namespace ndirect {

const char* method_name(ConvMethod m) {
  switch (m) {
    case ConvMethod::Ndirect: return "NDIRECT";
    case ConvMethod::Im2colGemm: return "im2col+GEMM";
    case ConvMethod::LibxsmmStyle: return "LIBXSMM";
    case ConvMethod::XnnpackStyle: return "XNNPACK";
    case ConvMethod::AclDirect: return "ACL_DIRECT";
    case ConvMethod::AclGemm: return "ACL_GEMM";
    case ConvMethod::AnsorTuned: return "Ansor";
  }
  return "?";
}

std::vector<ConvMethod> all_methods() {
  return {ConvMethod::Im2colGemm, ConvMethod::XnnpackStyle,
          ConvMethod::LibxsmmStyle, ConvMethod::AnsorTuned,
          ConvMethod::AclGemm, ConvMethod::AclDirect,
          ConvMethod::Ndirect};
}

namespace {

// GEMM-shaped register tile FAI: 2*MR*NR flops per (MR + NR) loads.
double gemm_tile_fai(int mr, int nr) {
  return 2.0 * mr * nr / (mr + nr);
}

// GEMM-family kernels stream their packed panels from L2/LLC rather
// than holding operands L1-resident the way Algorithm 3's pack buffer
// does; this derates their effective tile FAI.
constexpr double kPanelStreamFactor = 0.6;

// The platform balance point kappa: flops one core can issue while one
// L1-resident float arrives. Wider machines (more FMA pipes per core)
// need higher FAI to saturate; kappa is anchored at 4.0 for an
// 8-flop/cycle core (2x128-bit FMA pipes, the ARMv8 baseline Eq. 4
// targets) and scales with flops/cycle.
double platform_kappa(const PlatformSpec& spec) {
  const double flops_per_cycle =
      spec.freq_ghz > 0 ? spec.peak_per_core() / spec.freq_ghz : 8.0;
  return 4.0 * flops_per_cycle / 8.0;
}

// Stride-aware Eq. 4: with stride `str` the packed input row holds
// (vw-1)*str + S elements for vw outputs (Section 8.1: the registers
// fetch the same data but compute fewer positions), so
//   FAI = 2*S*vw*vk / ((vw-1)*str + S + S*vk).
double direct_tile_fai(int vw, int vk, int S, int str,
                       double load_factor = 1.0) {
  const double loads = ((vw - 1) * str + S) + static_cast<double>(S) * vk;
  return 2.0 * S * vw * vk / (loads * load_factor);
}

// Effective micro-kernel FAI per method. GEMM-family methods compact
// the data before the kernel and pay no kernel-level stride penalty.
double method_fai(ConvMethod m, const ConvParams& p) {
  switch (m) {
    case ConvMethod::Ndirect: {
      const RegisterBlock rb = solve_register_block(p.S);
      return direct_tile_fai(rb.vw, rb.vk, p.S, p.str);
    }
    case ConvMethod::AnsorTuned:
      // A tuned schedule finds a good (8x8-ish) tile but the generated
      // code lacks Algorithm 3's packed sliding window: every FMA tap
      // re-loads its input vector, doubling the loads per tile step.
      return direct_tile_fai(8, 8, p.S, p.str, /*load_factor=*/2.0);
    case ConvMethod::Im2colGemm:
      return gemm_tile_fai(kGemmMR, kGemmNR) * kPanelStreamFactor;
    case ConvMethod::LibxsmmStyle:
      // The 6x4 BRGEMM tile its 128-bit JIT emits (Section 3.2: "loop
      // tile sizes too small to fully utilize ... FMA units").
      return gemm_tile_fai(6, 4);
    case ConvMethod::XnnpackStyle:
      // 6x8 tile, but operands arrive through the indirection buffer's
      // pointer chase rather than packed panels.
      return gemm_tile_fai(6, 8) * kPanelStreamFactor;
    case ConvMethod::AclDirect:
      // Unblocked inner loop: ~1 useful FMA per 2 loads plus address
      // arithmetic; ACL's direct kernel is known to run near-scalar
      // efficiency on these parts (Section 3.2 measures ~5% of peak).
      return 0.4 / p.str;
    case ConvMethod::AclGemm:
      // Library-generic GEMM: no register tile, so every FMA re-loads
      // and re-stores its C element alongside the B load.
      return 2.0 * 4 / (3 + 1);
  }
  return 1.0;
}

// Essential DRAM traffic in bytes (roofline denominator): what must
// move regardless of transform overheads.
double essential_traffic_bytes(ConvMethod m, const ConvParams& p,
                               int threads) {
  const double in = 4.0 * static_cast<double>(p.input_elems());
  const double flt = 4.0 * static_cast<double>(p.filter_elems());
  const double out = 4.0 * static_cast<double>(p.output_elems());
  switch (m) {
    case ConvMethod::XnnpackStyle:
      // Indirection re-touches each input row once per kernel tap;
      // about half of those touches miss once windows leave the caches.
      return in * (1.0 + 0.5 * (p.R * p.S - 1)) + flt + out;
    case ConvMethod::AclDirect:
      // Every K-thread scans the entire input tensor.
      return in * std::min(threads, p.K) + flt + out;
    default:
      return in + flt + out;  // cache-blocked: everything streams once
  }
}

// Sequential (non-overlapped) transform traffic: the im2col matrix is
// written by the transform and re-read by the GEMM packing, and the
// packed panels are written once more. These phases serialize with the
// compute (Fig. 1a), so they add *time* instead of entering the
// min()-roofline.
double sequential_overhead_bytes(ConvMethod m, const ConvParams& p) {
  if (m != ConvMethod::Im2colGemm && m != ConvMethod::AclGemm) return 0.0;
  const double in = 4.0 * static_cast<double>(p.input_elems());
  const double col = 4.0 * static_cast<double>(p.N) * p.C * p.R * p.S *
                     p.P() * p.Q();
  const bool identity = p.R == 1 && p.S == 1 && p.str == 1 && p.pad == 0;
  // write col + read col back (pack) + write packed panels; the
  // identity case still packs the input once.
  return identity ? 2.0 * in : 3.0 * col;
}

// Thread-utilization: how much of `threads` the method's partitioning
// can keep busy, including the ceil-split load imbalance.
double method_utilization(ConvMethod m, const ConvParams& p, int threads) {
  auto balance = [&](double parallel_work) {
    if (parallel_work <= 0) return 1.0 / threads;
    const double used = std::min<double>(threads, parallel_work);
    const double chunks = std::ceil(parallel_work / used);
    return (parallel_work / (chunks * used)) * (used / threads);
  };
  switch (m) {
    case ConvMethod::AclDirect:
    case ConvMethod::AclGemm:
      return balance(p.K);  // K-only split (Section 3.2)
    case ConvMethod::Im2colGemm:
      // Parallel GEMM over a (K x P*Q) product per image; fine-grained.
      return balance(static_cast<double>(p.N) * p.K * p.P() * p.Q() /
                     (kGemmMR * kGemmNR));
    case ConvMethod::XnnpackStyle:
      return balance(static_cast<double>(p.N) * p.P() * p.Q() / 6.0);
    case ConvMethod::LibxsmmStyle:
      return balance(static_cast<double>(p.N) * (p.K / 4.0) * p.P());
    case ConvMethod::AnsorTuned:
      // Ansor tunes the loop nest but not the Eq. 5/6 thread split;
      // Section 8.2 attributes part of nDirect's win to "better ...
      // parallelization strategies".
      return 0.8 * balance(static_cast<double>(p.N) * p.P() *
                           std::ceil(p.K / 8.0));
    case ConvMethod::Ndirect:
      return balance(static_cast<double>(p.N) * p.P() *
                     std::ceil(p.K / 8.0));
  }
  return 1.0;
}

}  // namespace

const char* conv_dtype_name(ConvDtype d) {
  switch (d) {
    case ConvDtype::kF32: return "f32";
    case ConvDtype::kI8Emulated: return "i8-emulated";
    case ConvDtype::kI8Dot: return "i8-dot";
  }
  return "?";
}

PerfEstimate estimate_conv_perf(const PlatformSpec& spec,
                                const ConvParams& p, ConvMethod method,
                                int threads) {
  return estimate_conv_perf(spec, p, method, threads, ConvDtype::kF32);
}

PerfEstimate estimate_conv_perf(const PlatformSpec& spec,
                                const ConvParams& p, ConvMethod method,
                                int threads, ConvDtype dtype) {
  PerfEstimate est;
  if (threads <= 0) threads = spec.cores;
  // Int8 tensors are a quarter the bytes: 4x the flops per byte both
  // at the register tile (FAI) and at DRAM (traffic); SDOT also
  // quadruples the per-instruction MAC rate.
  const bool int8 = dtype != ConvDtype::kF32;
  const double fai_scale = int8 ? 4.0 : 1.0;
  const double traffic_scale = int8 ? 0.25 : 1.0;
  const double peak_scale = dtype == ConvDtype::kI8Dot ? 4.0 : 1.0;

  double kappa = platform_kappa(spec);
  // SMT oversubscription hides load latency: each extra hardware thread
  // per core gives the issue slots another independent stream, lowering
  // the effective balance point (with diminishing returns).
  if (threads > spec.cores) {
    const double ways = std::min<double>(
        static_cast<double>(threads) / spec.cores, spec.smt_per_core);
    kappa /= std::sqrt(ways);
  }

  const double fai = method_fai(method, p) * fai_scale;
  est.e_kernel = fai / (fai + kappa);
  est.u_parallel = method_utilization(method, p, threads);

  const double peak = spec.peak_gflops * peak_scale;
  est.compute_bound = est.e_kernel * est.u_parallel * peak;

  const double bw_gbps = spec.bandwidth_gibs * 1.073741824;  // GiB -> GB
  const double bytes =
      essential_traffic_bytes(method, p, threads) * traffic_scale;
  // (flops/byte) * (GB/s) = GFLOP/s.
  const double flops = static_cast<double>(p.flops());
  est.memory_bound = flops / bytes * bw_gbps;
  // The model's arithmetic intensity: what a PMU-measured
  // flops/(LLC misses * line) should approach when the cache tiling
  // keeps traffic at the essential minimum (ConvReport compares them).
  est.traffic_bytes = bytes;
  est.ai = bytes > 0 ? flops / bytes : 0.0;

  const double overlapped = std::min(est.compute_bound, est.memory_bound);
  const double t_kernel = flops / (overlapped * 1e9);
  const double t_overhead = sequential_overhead_bytes(method, p) *
                            traffic_scale / (bw_gbps * 1e9);
  est.gflops = flops / (t_kernel + t_overhead) / 1e9;
  est.pct_peak = 100.0 * est.gflops / peak;
  return est;
}

}  // namespace ndirect
