// The 28 convolution workloads of Table 4 (ResNet-50 layers 1-23,
// VGG-16 layers 24-28).
//
// Note on fidelity: rows 15, 16 and 21 of the published table are
// garbled in the accepted-manuscript text (a column was lost in
// typesetting). They are reconstructed here from the ResNet-50
// architecture the table samples: 15 = conv5 downsample 3x3
// (C=K=512, 14x14, stride 2), 16 = conv4 3x3 (C=K=256, 14x14),
// 21 = conv5 3x3 (C=K=512, 7x7). Padding (not listed in the table)
// follows the standard ResNet/VGG convention: R/2 for spatial kernels,
// 0 for 1x1.
#pragma once

#include <string>
#include <vector>

#include "tensor/conv_params.h"

namespace ndirect {

struct ConvLayer {
  int id = 0;                ///< Table 4 layer id, 1-28
  std::string network;       ///< "ResNet-50" or "VGG-16"
  ConvParams params;
};

/// All 28 layers with the given batch size (the paper sets N to the
/// core count of the machine under test).
std::vector<ConvLayer> table4_layers(int batch);

/// Single layer by Table 4 id (1-28).
ConvLayer table4_layer(int id, int batch);

/// The ResNet-only subset (ids 1-20) used by Figs. 1, 6, 8 and 9.
std::vector<ConvLayer> table4_resnet_layers(int batch);

}  // namespace ndirect
