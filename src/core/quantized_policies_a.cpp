// Int8 policy kernel instantiations for S = 1 and S = 3 (the 1x1 and
// 3x3 kernel widths that dominate ResNet). See
// core/quantized_microkernel.h for the generator.
#include "core/quantized_microkernel.h"

namespace ndirect {
namespace detail {
namespace {

constexpr auto kTableS1 = build_i8_policy_table<1>();
constexpr auto kTableS3 = build_i8_policy_table<3>();

}  // namespace

I8PolicySpan i8_policy_entries_s1() {
  return {kTableS1.data(), kTableS1.size()};
}

I8PolicySpan i8_policy_entries_s3() {
  return {kTableS3.data(), kTableS3.size()};
}

}  // namespace detail
}  // namespace ndirect
