// nDirect public API.
//
// nDirect (Wang et al., SC'23) is a direct convolution for ARM-model
// multi-cores that keeps the framework NCHW/NHWC activation layouts,
// repacks only the (small) filter tensor on the fly, and reaches high
// utilization through an FAI-maximal register-blocked micro-kernel,
// cache-derived loop tiling, latency-hiding fused input packing, and an
// analytically derived PTn x PTk thread mapping.
//
// Typical use:
//
//   ConvParams p{.N=..., .C=..., ...};
//   NdirectConv conv(p);                       // plan once
//   Tensor out = conv.run(input, filter);      // run many times
//
// or the one-shot helper `ndirect_conv(input, filter, p)`.
#pragma once

#include <memory>

#include "core/fai.h"
#include "core/threading.h"
#include "core/tiling.h"
#include "runtime/cpu_info.h"
#include "runtime/telemetry.h"
#include "runtime/thread_pool.h"
#include "runtime/timer.h"
#include "runtime/work_queue.h"
#include "tensor/conv_params.h"
#include "tensor/tensor.h"

namespace ndirect {

/// Everything the planner derived for a shape; exposed for inspection,
/// tests and the model-ablation bench.
struct NdirectPlan {
  RegisterBlock rb{};       ///< Eq. 3/4 register block (Vw, Vk)
  TilingPlan tiling{};      ///< Eq. 1/2 cache tiles (Tc, Tk, Th)
  ThreadMapping mapping{};  ///< Eq. 5/6 thread grid (PTn, PTk)
  int stealers = 0;         ///< workers beyond the grid, seeded with no
                            ///< tiles (non-divisor thread counts under
                            ///< the stealing schedule); 0 when static
  int packw = 0;            ///< pack-buffer row length (Vw-1)*str + S
  double alpha = 2.0;       ///< streaming/non-streaming coefficient
};

/// How the PTn x PTk grid's tiles are handed to workers.
enum class SchedulePolicy {
  /// The paper's Eq. 5/6 mapping: every worker drains exactly its seed
  /// slice. Deterministic assignment, but ragged layers and noisy cores
  /// pin wall time to the slowest thread.
  kStatic,
  /// Same seed assignment at macro-tile granularity (a Th-row chunk x
  /// one Tk k-block — the unit that reuses one transformed filter tile
  /// and one packed input window), but exhausted workers steal
  /// unfinished tiles: nearest neighbour in the grid first (same-PTn
  /// victims share the thief's input rows), then globally. Identical
  /// numerical output — tiles own disjoint output blocks and the whole
  /// C reduction stays inside a tile.
  kStealing,
};

struct NdirectOptions {
  /// Hide packing behind the first kv iteration (Section 5.3). Turning
  /// this off gives the sequential-packing baseline of Fig. 5.
  bool fuse_packing = true;

  /// Transform the whole filter ahead of time instead of per tile inside
  /// loop L4 (ablation; the paper's nDirect transforms on the fly).
  bool aot_filter = false;

  /// Cache the ahead-of-time packed filter inside the engine, keyed by
  /// the filter data pointer: the first run packs the KCRS filter to the
  /// ceil(K/Vk) x C x R x S x Vk layout once, and every later run with
  /// the same pointer skips the transform entirely. This is the
  /// inference-serving mode (weights are immutable across calls); the
  /// graph executor's ConvOp turns it on. Each distinct pointer gets its
  /// own immutable packed copy (concurrent const runs with different
  /// filters stay thread-safe), and hits are validated with a sampled
  /// content fingerprint so allocator address reuse or in-place
  /// mutation is detected and re-packed instead of silently serving
  /// stale weights. After mutating or freeing filter data, still call
  /// NdirectConv::invalidate_filter_cache() — it also releases the
  /// packed copies; the fingerprint is a best-effort safety net. Off by
  /// default: the paper's nDirect transforms on the fly, and the
  /// figure benches measure that path.
  bool cache_packed_filter = false;

  /// Take the workers' pack/filter-tile buffers from the per-OS-thread
  /// persistent scratch arena (runtime/scratch.h) instead of
  /// heap-allocating them on every call. On steady-state calls the loop
  /// nest then performs zero heap allocations. Off reproduces the seed's
  /// per-call allocation behaviour (A/B benching of the fixed overhead).
  bool persistent_scratch = true;

  /// Force the register block instead of solving Eq. 3/4 (ablation and
  /// auto-tuner use). Zero fields mean "solve".
  RegisterBlock force_rb{0, 0};

  /// Force cache tiling (ablation). Zero fields mean "solve".
  TilingPlan force_tiling{0, 0, 0};

  /// Force the PTn x PTk split (ablation / auto-tuner). Zero = solve.
  ThreadMapping force_mapping{0, 0};

  /// Execute with the runtime-parameterized kernel even when an
  /// Algorithm 3 specialization exists. The auto-tuner uses this to
  /// model search-based code generation (a compiler-emitted loop nest
  /// rather than the hand-unrolled lane-FMA kernel).
  bool generic_kernel_only = false;

  /// Tile scheduling policy (see SchedulePolicy). Stealing by default;
  /// kStatic reproduces the seed's static slicing for A/B benches and
  /// bitwise comparison (outputs are identical either way).
  SchedulePolicy schedule = SchedulePolicy::kStealing;

  /// Override the macro-tile row chunk (output rows per tile) for
  /// scheduler ablation. 0 = the plan's Th (one L2 row tile per claim).
  /// Smaller chunks balance better but steal more often.
  int sched_row_chunk = 0;

  /// When non-null, filled after each run with that run's scheduler
  /// observability: tile count, steals (0 under kStatic), and the
  /// max/min tiles any worker executed (imbalance). Not thread-safe
  /// across concurrent runs of the same engine — point each run's
  /// options at its own stats or leave null.
  SchedulerStats* sched_stats = nullptr;

  /// Thread count for the PTn x PTk grid; 0 = the pool's size.
  int threads = 0;

  /// Extra pure-stealer workers dispatched beyond the seeded grid (and
  /// beyond the non-divisor leftover the solver already adds). The graph
  /// executor uses this to seed a conv with a sub-rectangle of the pool
  /// (`threads` = its share of the workers) while still exposing one
  /// task per remaining pool thread: a core that finishes — or never
  /// had — work in a sibling branch claims one of these tasks and
  /// drains this conv's unfinished tiles through the stealing scheduler.
  /// Stealers never change results (tiles own disjoint output blocks);
  /// ignored under SchedulePolicy::kStatic. Only meaningful when
  /// stealing is on.
  int extra_stealers = 0;

  ThreadPool* pool = nullptr;          ///< nullptr = global pool
  const CacheInfo* cache = nullptr;    ///< nullptr = probed host cache
  double alpha = 0;                    ///< 0 = measured host alpha

  /// Aggregated phase breakdown (transform / packing / micro-kernel),
  /// now valid at any worker count: each worker accumulates phase time
  /// into its own telemetry slot and the per-phase sums are folded into
  /// the timer after the run (one add() per phase per run, so counts
  /// are per-run, not per-call). Requires telemetry (both the CMake
  /// option and NDIRECT_TELEMETRY at runtime); records nothing in the
  /// no-op build.
  PhaseTimer* phase_timer = nullptr;

  /// When non-null, filled after each run with that run's per-worker
  /// telemetry: tiles claimed, steals by locality class, phase
  /// nanoseconds, cache hits, and the run's wall time (the input to
  /// build_conv_report). Overwritten every run; cleared to an empty
  /// snapshot when telemetry is disabled. Like sched_stats, point
  /// concurrent runs of one engine at distinct sinks or leave null.
  TelemetrySnapshot* telemetry = nullptr;
};

/// Store-time fusion of the ops that commonly follow a convolution
/// (Section 10's operator-fusion direction): a per-channel bias
/// (K floats) and/or ReLU, applied inside the micro-kernel's stores on
/// the final C tile — no extra pass over the output.
struct ConvEpilogue {
  const float* bias = nullptr;  ///< K per-channel values, or nullptr
  bool relu = false;
};

/// Planned convolution for one shape (framework-operator style).
class NdirectConv {
 public:
  explicit NdirectConv(const ConvParams& params,
                       const NdirectOptions& options = {});

  const NdirectPlan& plan() const { return plan_; }
  const ConvParams& params() const { return params_; }
  const NdirectOptions& options() const { return options_; }

  /// The internally executed problem. For 1x1 stride-1 unpadded
  /// convolutions the spatial rows are contiguous in memory, so the
  /// planner flattens groups of g rows into one logical row of width
  /// W*g (the CONV -> GEMM dimension mapping of Section 4.1,
  /// N x H x W -> N'). This removes the per-row Vw tail waste that
  /// otherwise dominates small feature maps; g divides H and is 1
  /// whenever W alone already amortizes the tail.
  const ConvParams& exec_params() const { return exec_; }

  using Epilogue = ConvEpilogue;

  /// input NCHW [N,C,H,W], filter KCRS -> output NCHW [N,K,P,Q].
  Tensor run(const Tensor& input, const Tensor& filter,
             const Epilogue& epilogue = {}) const;

  /// input NHWC [N,H,W,C], filter KCRS -> output NHWC [N,P,Q,K].
  /// (The filter stays in the framework KCRS layout in both paths; only
  /// its on-the-fly transform target differs in stride bookkeeping.)
  Tensor run_nhwc(const Tensor& input, const Tensor& filter,
                  const Epilogue& epilogue = {}) const;

  /// Expert entry point on raw NCHW/KCRS buffers (what a framework
  /// integration calls). Shapes are taken from params(); `output` is
  /// overwritten and must hold N*K*P*Q floats. No validation beyond the
  /// planning-time parameter check.
  void run_into(const float* input, const float* filter, float* output,
                const Epilogue& epilogue = {}) const;

  /// Pack `filter` into the engine's cached KPacked buffer now (instead
  /// of lazily on the first run). Only meaningful with
  /// options().cache_packed_filter; a no-op otherwise. Returns the
  /// cached packed data (nullptr when caching is off).
  const float* prepare_filter(const float* filter) const;

  /// Drop all cached packed filters (weights were mutated in place or
  /// freed). The next run re-packs. Must not be called concurrently
  /// with run()/run_into() on this engine or a copy sharing its cache:
  /// it frees the packed buffers a racing run could be reading.
  void invalidate_filter_cache();

  /// True when a packed copy keyed by `filter` is resident (its
  /// contents are re-validated against the live weights on use).
  bool filter_cache_warm(const float* filter) const;

 private:
  struct FilterCache;  ///< engine.cpp; shared so the engine stays copyable

  ConvParams params_;
  ConvParams exec_;
  NdirectOptions options_;
  NdirectPlan plan_;
  std::shared_ptr<FilterCache> fcache_;
};

/// One-shot convenience wrapper around NdirectConv.
Tensor ndirect_conv(const Tensor& input, const Tensor& filter,
                    const ConvParams& params,
                    const NdirectOptions& options = {});

}  // namespace ndirect
