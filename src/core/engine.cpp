// The nDirect execution engine: Algorithm 2's loop nest around the
// micro-kernels, with the PTn x PTk thread grid of Section 6.
#include <atomic>
#include <cassert>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/alpha.h"
#include "core/filter_transform.h"
#include "core/microkernel.h"
#include "core/ndirect.h"
#include "runtime/aligned_buffer.h"
#include "runtime/perf_counters.h"
#include "runtime/scratch.h"
#include "runtime/trace.h"
#include "tensor/transforms.h"

namespace ndirect {

/// Lazily filled packed-filter cache. One immutable entry per source
/// filter pointer: an entry is packed once under the cache mutex,
/// published, and never written again, so warm readers need no lock and
/// two concurrent const runs with *different* filters can never
/// overwrite a buffer the other is reading. Pointer keying is validated
/// by a sampled content fingerprint on every hit, which catches the
/// silent-failure modes a raw pointer cannot: a freed weight tensor
/// whose address the allocator reuses, or in-place mutation without
/// invalidate_filter_cache(). Held by shared_ptr so NdirectConv copies
/// share one cache.
struct NdirectConv::FilterCache {
  struct Entry {
    std::atomic<const float*> src{nullptr};  ///< key; nullptr = retired
    std::uint64_t fp = 0;  ///< filter_fingerprint at pack time
    Tensor packed;         ///< KPacked, whole filter
  };
  std::mutex mutex;
  /// Most-recently-used entry, for the lock-free warm path.
  std::atomic<Entry*> hot{nullptr};
  /// Owning list (stable heap addresses). Mutated only under `mutex`;
  /// superseded entries are retired (src = nullptr), not destroyed, so
  /// a racing reader's pointer stays valid until invalidate.
  std::vector<std::unique_ptr<Entry>> entries;
};

namespace {

/// Content fingerprint validating warm filter-cache hits: the element
/// count mixed with up to 64 values sampled evenly across the tensor
/// (a few cache lines per call — noise next to the convolution). A
/// stale hit slips through only if the replacement tensor matches size
/// and every sampled bit pattern; invalidate_filter_cache() remains the
/// authoritative API, the fingerprint is the safety net.
std::uint64_t filter_fingerprint(const float* data, std::size_t n) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ n;
  const std::size_t samples = n < 64 ? n : 64;
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t idx = samples > 1 ? i * (n - 1) / (samples - 1) : 0;
    std::uint32_t bits;
    std::memcpy(&bits, data + idx, sizeof(bits));
    h = (h ^ bits) * 0x100000001b3ull;
  }
  return h;
}

}  // namespace
namespace {

/// Per-layout addressing used by the shared loop nest.
struct LayoutStrides {
  // input
  std::int64_t in_image = 0;   ///< stride between batch images
  std::int64_t in_chan = 0;    ///< PackGeometry.chan_stride
  std::int64_t in_row = 0;     ///< PackGeometry.row_stride
  std::int64_t in_col = 1;     ///< PackGeometry.col_stride
  // output
  std::int64_t out_image = 0;
  std::int64_t out_k = 0;      ///< MicroArgs.out_k_stride
  std::int64_t out_row = 0;    ///< stride between output rows
  std::int64_t out_w = 0;      ///< MicroArgs.out_w_stride
};

LayoutStrides nchw_strides(const ConvParams& p) {
  const std::int64_t P = p.P(), Q = p.Q();
  LayoutStrides s;
  s.in_image = std::int64_t{p.C} * p.H * p.W;
  s.in_chan = std::int64_t{p.H} * p.W;
  s.in_row = p.W;
  s.in_col = 1;
  s.out_image = std::int64_t{p.K} * P * Q;
  s.out_k = P * Q;
  s.out_row = Q;
  s.out_w = 1;
  return s;
}

LayoutStrides nhwc_strides(const ConvParams& p) {
  const std::int64_t P = p.P(), Q = p.Q();
  LayoutStrides s;
  s.in_image = std::int64_t{p.H} * p.W * p.C;
  s.in_chan = 1;
  s.in_row = std::int64_t{p.W} * p.C;
  s.in_col = p.C;
  s.out_image = P * Q * p.K;
  s.out_k = 1;
  s.out_row = std::int64_t{Q} * p.K;
  s.out_w = p.K;
  return s;
}

}  // namespace

namespace {

// Row-group flattening for GEMM-shaped (1x1 stride-1 unpadded) convs:
// merge g rows (g | H) into one logical row so the micro-kernel tiles a
// width of at least ~4*Vw, amortizing the ragged last tile.
ConvParams flatten_rows(const ConvParams& p, int vw) {
  if (!(p.R == 1 && p.S == 1 && p.str == 1 && p.pad == 0)) return p;
  const int target = 4 * vw;
  if (p.W >= target) return p;
  int g = 1;
  for (int d = 1; d <= p.H; ++d) {
    if (p.H % d == 0 && p.W * d <= 4 * target) {
      g = d;
      if (p.W * d >= target) break;
    }
  }
  ConvParams flat = p;
  flat.H = p.H / g;
  flat.W = p.W * g;
  return flat;
}

}  // namespace

NdirectConv::NdirectConv(const ConvParams& params,
                         const NdirectOptions& options)
    : params_(params),
      options_(options),
      fcache_(std::make_shared<FilterCache>()) {
  if (!params.valid()) {
    throw std::invalid_argument("NdirectConv: invalid convolution " +
                                params.to_string());
  }
  plan_.rb = options.force_rb.vw > 0 && options.force_rb.vk > 0
                 ? options.force_rb
                 : solve_register_block(params.S);
  exec_ = flatten_rows(params_, plan_.rb.vw);
  const CacheInfo cache =
      options.cache != nullptr ? *options.cache : probe_host_cpu().cache;
  plan_.tiling = options.force_tiling.tc > 0 && options.force_tiling.tk > 0
                     ? options.force_tiling
                     : solve_tiling(cache, plan_.rb, exec_);
  plan_.alpha = options.alpha > 0 ? options.alpha : host_alpha();
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::global();
  const int threads =
      options.threads > 0 ? options.threads : static_cast<int>(pool.size());
  // Under the stealing schedule the solver may pick a partial grid
  // (ptn * ptk < threads) when its FAI wins; the leftover threads join
  // the run as pure stealers instead of idling.
  const bool stealing = options.schedule == SchedulePolicy::kStealing;
  plan_.mapping =
      options.force_mapping.ptn > 0 && options.force_mapping.ptk > 0
          ? options.force_mapping
          : solve_thread_mapping(exec_, plan_.alpha, threads, stealing);
  plan_.stealers =
      stealing ? std::max(0, threads - plan_.mapping.total()) +
                     std::max(0, options.extra_stealers)
               : 0;
  // Stride compaction: a 1x1 stride-s kernel only ever taps every s-th
  // input column, so the packing kernel gathers just those and the
  // micro-kernel runs its dense stride-1 form (packw = Vw).
  const bool compact = params.S == 1 && params.str > 1;
  plan_.packw =
      compact ? plan_.rb.vw : (plan_.rb.vw - 1) * params.str + params.S;
}

namespace {

// Shared loop nest for both layouts.
void run_nest(const ConvParams& p, const NdirectPlan& plan,
              const NdirectOptions& opts, const LayoutStrides& ls,
              const float* input, const float* filter,
              const float* aot_packed, float* output,
              const NdirectConv::Epilogue& epi) {
  const int P = p.P(), Q = p.Q();
  const int vw = plan.rb.vw, vk = plan.rb.vk;
  const int tc = plan.tiling.tc, th = plan.tiling.th;
  const std::int64_t k_blocks_total = (p.K + vk - 1) / vk;
  const std::int64_t tk_blocks = std::max(1, plan.tiling.tk / vk);
  const std::int64_t f_c_stride = std::int64_t{p.R} * p.S * vk;

  // Macro-tile grid for the scheduler: a chunk of up to Th output rows
  // (never crossing an image boundary; sched_row_chunk overrides for
  // ablation) x a chunk of up to Tk worth of K blocks. The Th x Tk tile
  // is the loop nest's natural reuse unit — one transformed filter
  // tile, one packed-window row set — so a stolen tile forfeits no
  // intra-tile locality, and the whole C reduction stays inside it, so
  // the claim order cannot change results. When the cache tiles cover
  // the whole problem (small layers: Th >= P, Tk >= K) the chunks are
  // refined below the cache tile so the grid still covers PTn x PTk
  // workers — the granularity the static Eq. 5/6 slicing always had.
  const std::int64_t total_rows = std::int64_t{p.N} * P;
  std::int64_t th_rows =
      opts.sched_row_chunk > 0 ? opts.sched_row_chunk : th;
  if (opts.sched_row_chunk == 0) {
    th_rows = std::min(th_rows, std::max<std::int64_t>(
                                    1, total_rows / plan.mapping.ptn));
  }
  const std::int64_t chunks_per_image =
      (std::int64_t{P} + th_rows - 1) / th_rows;
  const std::int64_t row_chunks = std::int64_t{p.N} * chunks_per_image;
  const std::int64_t tk_chunk = std::min(
      tk_blocks,
      std::max<std::int64_t>(1, k_blocks_total / plan.mapping.ptk));
  const std::int64_t k_chunks =
      (k_blocks_total + tk_chunk - 1) / tk_chunk;
  const bool stealing = opts.schedule == SchedulePolicy::kStealing;
  const int num_workers = plan.mapping.total() + plan.stealers;

  // Stride compaction (see the planner): with S == 1 the packed buffer
  // is gathered at column step `str`, and the kernels index it densely.
  const bool stride_compact = p.S == 1 && p.str > 1;
  const int kstr = stride_compact ? 1 : p.str;

  // Kernel resolution, once per conv rather than per tile: the fully
  // unrolled policy pair when this (block, S, stride) is instantiated —
  // interior store for full tiles, masked-edge store for ragged ones —
  // else the runtime-S specialized block, else the generic kernel
  // (every generic invocation is counted in Counter::kGenericFallback
  // so un-specialized convs show up in telemetry and ConvReport).
  //
  // Ragged W tiles run a narrower block (wn rounded up to a vector
  // multiple) instead of the full vw tile; computing the full tile
  // would waste (vw - wn)/vw of its arithmetic, which is decisive when
  // Q is small (e.g. Q=14 under vw=12 wastes 10/24) — so the W tail
  // gets its own resolution. A narrower block never loses feasibility
  // (Eq. 3 cost is monotone in vw), so the tail resolves at least as
  // specialized as the main block.
  KernelResolution main_k, tail_k;
  const int q_tail = Q % vw;
  const int vw_tail = q_tail == 0 ? 0 : std::min(vw, (q_tail + 3) / 4 * 4);
  if (!opts.generic_kernel_only) {
    main_k = resolve_kernel(vw, vk, p.S, kstr);
    if (q_tail > 0) tail_k = resolve_kernel(vw_tail, vk, p.S, kstr);
  }

  ThreadPool& pool =
      opts.pool != nullptr ? *opts.pool : ThreadPool::global();
  // Per-worker phase attribution: each worker accumulates its phase
  // nanoseconds in locals and flushes them into its own telemetry slot
  // when it runs out of tiles, so the transform/pack/micro-kernel
  // breakdown is valid at any worker count (the previous PhaseTimer
  // path recorded nothing beyond one worker). Collection stays off
  // unless someone will consume it; the worker is templated on the
  // collect flag so the disabled instantiation carries no timer reads
  // or branches in the tile loop at all.
  const bool tracing = trace_on();
  const bool collect =
      telemetry_enabled() && (opts.telemetry != nullptr ||
                              opts.phase_timer != nullptr || tracing);
  WorkerTelemetry tel(collect ? num_workers : 0);
  // Hardware-counter mode for this run: 0 off, 1 per-task group deltas,
  // 2 additionally attributes L1D misses to the pack phase. Rides the
  // collect flag (PMU data is only gathered when a sink will see it)
  // and degrades to 0 on hosts where perf_event_open is unavailable.
  const int pmu =
      collect && pmu_mode() > 0 && pmu_available() ? pmu_mode() : 0;

  // Every worker starts on exactly the tiles its Eq. 5/6 slice covers
  // (the paper's mapping, rounded to tile granularity); workers beyond
  // the grid (plan.stealers) seed empty and only steal.
  TileScheduler sched(static_cast<int>(row_chunks),
                      static_cast<int>(k_chunks), plan.mapping.ptn,
                      plan.mapping.ptk, num_workers, stealing);

  auto worker = [&]<bool kCollect>(std::size_t tid) {
    // Phase-time accumulators, flushed to this worker's telemetry slot
    // once at task end (no shared writes inside the tile loop).
    std::uint64_t pack_ns = 0, transform_ns = 0, micro_ns = 0;
    // Micro-kernel invocations that fell through to the generic
    // runtime-loop kernel (un-specialized block).
    std::uint64_t generic_calls = 0;
    // PMU: one group read at task start/end gives this worker's
    // hardware-counter deltas (the task runs on exactly one OS thread,
    // whose thread-local group scopes the counts to it). pack_l1d is
    // the phase-mode split accumulated from reads around pack_window.
    std::uint64_t pack_l1d = 0;
    PmuSample pmu_t0;
    PmuThreadCounters* pc = nullptr;
    if constexpr (kCollect) {
      if (pmu > 0) {
        PmuThreadCounters& counters = this_thread_pmu();
        if (counters.open()) {
          pc = &counters;
          pmu_t0 = counters.read();
        }
      }
    }
    // +4 floats of slack: the unrolled kernel reads the final row in
    // whole vectors (the extra lanes are loaded but never consumed).
    const std::size_t pack_floats =
        static_cast<std::size_t>(tc) * p.R * plan.packw + 4;
    const std::size_t ftile_floats =
        aot_packed == nullptr
            ? static_cast<std::size_t>(tk_blocks) * vk * tc * p.R * p.S
            : 0;
    // Working buffers, acquired before claiming so every worker warms
    // its arena on the first call even if stealing hands it a different
    // tile set next run (steady-state growth stays zero and
    // deterministic): from this OS thread's persistent arena (steady
    // state: no heap allocation), or call-local heap buffers when the
    // arena is disabled (seed behaviour, kept for overhead A/B benches).
    AlignedBuffer<float> local_pack, local_ftile;
    float* pack;
    float* ftile = nullptr;
    // The arena namespace is this task's nesting level: if this OS
    // thread is already inside another convolution (a task that itself
    // dispatched on the pool, which the re-entrant run() allows), the
    // outer invocation's buffers live in a lower namespace and cannot
    // be clobbered here.
    const ScratchDepth depth;
    if (opts.persistent_scratch) {
      ScratchArena& arena = this_thread_scratch();
      pack = arena.floats(depth.level(), ScratchSlot::kPack, pack_floats);
      if (ftile_floats > 0)
        ftile = arena.floats(depth.level(), ScratchSlot::kFilterTile,
                             ftile_floats);
    } else {
      local_pack.reset(pack_floats);
      pack = local_pack.data();
      if (ftile_floats > 0) {
        local_ftile.reset(ftile_floats);
        ftile = local_ftile.data();
      }
    }

    int rchunk, kchunk;
    while (sched.claim(static_cast<int>(tid), &rchunk, &kchunk)) {
      // Tile spans ride the collect instantiation: tracing implies
      // collect whenever the runtime master switch is on, so the
      // disabled worker stays free of TraceSession code entirely.
      std::uint64_t tile_t0 = 0;
      if constexpr (kCollect)
        tile_t0 = tracing ? TraceSession::global().now_ns() : 0;
      const std::int64_t n = rchunk / chunks_per_image;
      const int oh_begin =
          static_cast<int>((rchunk % chunks_per_image) * th_rows);
      const int oh_end =
          static_cast<int>(std::min<std::int64_t>(oh_begin + th_rows, P));
      // The tile's K extent is one Tk chunk — what loop L4 stepped over
      // per slice in the static nest.
      const std::int64_t kb0 =
          static_cast<std::int64_t>(kchunk) * tk_chunk;
      const std::int64_t kbn =
          std::min<std::int64_t>(tk_chunk, k_blocks_total - kb0);

      const float* image = input + n * ls.in_image;
      float* out_image = output + n * ls.out_image;

      for (int ht = oh_begin; ht < oh_end; ht += th) {       // loop L2
        const int hv_end = std::min(ht + th, oh_end);
        for (int ct = 0; ct < p.C; ct += tc) {               // loop L3
          const int tcn = std::min(tc, p.C - ct);
          const bool first_c = ct == 0;
          // The epilogue fires with the final C tile's stores, when the
          // output element receives its last contribution.
          const bool last_c = ct + tcn >= p.C;
          {
            const float* ftile_base;
            std::int64_t f_kb_stride;
            if (aot_packed != nullptr) {
              ftile_base = aot_packed + (kb0 * p.C + ct) * f_c_stride;
              f_kb_stride = std::int64_t{p.C} * f_c_stride;
            } else {
              std::uint64_t t0 = 0;
              if constexpr (kCollect) t0 = monotonic_ns();
              transform_filter_tile(filter, p.K, p.C, p.R, p.S,
                                    static_cast<int>(kb0) * vk,
                                    static_cast<int>(kbn) * vk, ct, tcn, vk,
                                    ftile);
              if constexpr (kCollect) transform_ns += monotonic_ns() - t0;
              ftile_base = ftile;
              f_kb_stride = std::int64_t{tcn} * f_c_stride;
            }

            for (int hv = ht; hv < hv_end; ++hv) {           // loop L5
              for (int wv = 0; wv < Q; wv += vw) {           // loop L6
                const int wn = std::min(vw, Q - wv);
                PackGeometry g;
                g.src = image + ct * ls.in_chan;
                g.chan_stride = ls.in_chan;
                g.row_stride = ls.in_row;
                g.col_stride = ls.in_col;
                g.H = p.H;
                g.W = p.W;
                g.ih0 = hv * p.str - p.pad;
                g.iw0 = wv * p.str - p.pad;
                g.iw_step = stride_compact ? p.str : 1;

                // Direct-read mode: a 1x1 stride-1 window that lies
                // fully inside the (unpadded) input is already the
                // contiguous row the kernel wants — skip packing and
                // point the kernel at the tensor itself.
                // (Safe to read in whole vectors: tensors carry a cache
                // line of tail slack; taps only touch the first
                // (wn-1)*str + S columns.)
                const bool direct_row =
                    p.S == 1 && p.str == 1 && ls.in_col == 1 &&
                    g.ih0 >= 0 && g.ih0 + p.R <= p.H && g.iw0 >= 0 &&
                    g.iw0 + (wn - 1) * p.str + p.S <= p.W;

                MicroArgs a;
                if (direct_row) {
                  a.pack = const_cast<float*>(
                      g.src + static_cast<std::int64_t>(g.ih0) * ls.in_row +
                      g.iw0);
                  a.pack_c_stride = ls.in_chan;
                  a.pack_r_stride = ls.in_row;
                } else {
                  a.pack = pack;
                  a.pack_c_stride = std::int64_t{p.R} * plan.packw;
                  a.pack_r_stride = plan.packw;
                }
                a.f_c_stride = f_c_stride;
                a.tc = tcn;
                a.R = p.R;
                a.S = p.S;
                a.str = kstr;
                a.packw = plan.packw;
                a.out_k_stride = ls.out_k;
                a.out_w_stride = ls.out_w;
                a.wn = wn;
                a.accumulate = !first_c;
                a.relu = last_c && epi.relu;

                // Dispatch against the per-conv resolution: interior
                // when the tile fills its resolved block (the W tail
                // uses the narrower vw_tail block, so its full tiles
                // are interior too), masked-edge otherwise. Both slots
                // are non-null for any registered block; the generic
                // fallback only fires for blocks outside the registry.
                const bool full_w = wn == vw;
                const KernelResolution& kres = full_w ? main_k : tail_k;
                const int rvw = full_w ? vw : vw_tail;

                const auto call_compute = [&](const MicroArgs& args) {
                  const ComputeKernelFn fn =
                      args.wn == rvw && args.kn == vk ? kres.interior
                                                      : kres.edge;
                  if (fn != nullptr) {
                    fn(args);
                  } else {
                    ++generic_calls;
                    compute_kernel_generic(args, full_w ? vw : wn, vk);
                  }
                };
                const auto call_fused = [&](const MicroArgs& args) {
                  const FusedKernelFn fn =
                      args.wn == rvw && args.kn == vk ? kres.interior_fused
                                                      : kres.edge_fused;
                  if (fn != nullptr) {
                    fn(args, g);
                  } else {
                    ++generic_calls;
                    fused_kernel_generic(args, g, full_w ? vw : wn, vk);
                  }
                };

                for (std::int64_t b = 0; b < kbn; ++b) {     // loop L7
                  const std::int64_t kv = (kb0 + b) * vk;
                  a.kn = static_cast<int>(
                      std::min<std::int64_t>(vk, p.K - kv));
                  a.bias =
                      last_c && epi.bias != nullptr ? epi.bias + kv : nullptr;
                  a.ftile = ftile_base + b * f_kb_stride;
                  a.out = out_image + kv * ls.out_k + hv * ls.out_row +
                          wv * ls.out_w;
                  if (b == 0 && direct_row) {
                    // Nothing to pack: compute straight from the input.
                    if constexpr (kCollect) {
                      const std::uint64_t t0 = monotonic_ns();
                      call_compute(a);
                      micro_ns += monotonic_ns() - t0;
                    } else {
                      call_compute(a);
                    }
                  } else if (b == 0) {
                    // First kv block: pack the input window. Fused mode
                    // hides the packing behind this block's FMAs (its
                    // cost lands in micro-kernel time, the attribution
                    // the Fig. 5 ablation measures).
                    if (opts.fuse_packing) {
                      if constexpr (kCollect) {
                        const std::uint64_t t0 = monotonic_ns();
                        call_fused(a);
                        micro_ns += monotonic_ns() - t0;
                      } else {
                        call_fused(a);
                      }
                    } else if constexpr (kCollect) {
                      // Phase mode samples L1D around the pack call;
                      // the reads sit outside the timer windows so the
                      // pack/micro nanosecond split stays clean.
                      const bool sample = pmu == 2 && pc != nullptr;
                      std::uint64_t l1d0 = 0;
                      if (sample)
                        l1d0 = pc->read().value(PmuEvent::kL1DMisses);
                      const std::uint64_t t0 = monotonic_ns();
                      pack_window(pack, g, tcn, p.R, plan.packw);
                      const std::uint64_t t1 = monotonic_ns();
                      if (sample) {
                        const std::uint64_t l1d1 =
                            pc->read().value(PmuEvent::kL1DMisses);
                        if (l1d1 > l1d0) pack_l1d += l1d1 - l1d0;
                      }
                      const std::uint64_t t2 = monotonic_ns();
                      call_compute(a);
                      pack_ns += t1 - t0;
                      micro_ns += monotonic_ns() - t2;
                    } else {
                      pack_window(pack, g, tcn, p.R, plan.packw);
                      call_compute(a);
                    }
                  } else if constexpr (kCollect) {
                    const std::uint64_t t0 = monotonic_ns();
                    call_compute(a);
                    micro_ns += monotonic_ns() - t0;
                  } else {
                    call_compute(a);
                  }
                }
              }
            }
          }
        }
      }
      if constexpr (kCollect) {
        if (tracing) {
          TraceSession& tr = TraceSession::global();
          tr.complete("tile", tile_t0, tr.now_ns() - tile_t0, "row",
                      rchunk, "k", kchunk);
        }
      }
    }
    if constexpr (kCollect) {
      const int w = static_cast<int>(tid);
      tel.add(w, Counter::kPackNs, pack_ns);
      tel.add(w, Counter::kTransformNs, transform_ns);
      tel.add(w, Counter::kMicrokernelNs, micro_ns);
      tel.add(w, Counter::kGenericFallback, generic_calls);
      if (pc != nullptr) {
        const PmuSample d = pmu_delta(pmu_t0, pc->read());
        if (d.valid) {
          tel.add(w, Counter::kPmuCycles, d.value(PmuEvent::kCycles));
          tel.add(w, Counter::kPmuInstructions,
                  d.value(PmuEvent::kInstructions));
          tel.add(w, Counter::kPmuL1DMisses,
                  d.value(PmuEvent::kL1DMisses));
          tel.add(w, Counter::kPmuLLCMisses,
                  d.value(PmuEvent::kLLCMisses));
          tel.add(w, Counter::kPmuStalledCycles,
                  d.value(PmuEvent::kStalledCycles));
          if (pmu == 2) {
            // The pack samples and the task delta come from the same
            // group, so pack <= task holds up to multiplex rounding;
            // clamp so micro = task - pack never underflows.
            const std::uint64_t task_l1d =
                d.value(PmuEvent::kL1DMisses);
            const std::uint64_t pack_part =
                pack_l1d < task_l1d ? pack_l1d : task_l1d;
            tel.add(w, Counter::kPmuPackL1DMisses, pack_part);
            tel.add(w, Counter::kPmuMicroL1DMisses,
                    task_l1d - pack_part);
          }
          if (tracing) {
            TraceSession::global().counter(
                "pmu", "l1d_misses",
                static_cast<std::int64_t>(
                    d.value(PmuEvent::kL1DMisses)),
                "llc_misses",
                static_cast<std::int64_t>(
                    d.value(PmuEvent::kLLCMisses)));
          }
        }
      }
    }
  };

  WallTimer run_timer;
  if (tracing)
    TraceSession::global().begin("ndirect.run", "workers", num_workers);
  if (collect) {
    pool.run(static_cast<std::size_t>(num_workers), [&](std::size_t t) {
      worker.template operator()<true>(t);
    });
  } else {
    pool.run(static_cast<std::size_t>(num_workers), [&](std::size_t t) {
      worker.template operator()<false>(t);
    });
  }
  if (tracing) TraceSession::global().end("ndirect.run");
  if (opts.sched_stats != nullptr) *opts.sched_stats = sched.stats();
  if (collect) {
    TelemetrySnapshot snap = tel.snapshot(run_timer.seconds());
    // Claim/steal attribution comes straight from the scheduler's
    // per-worker counters (written by each worker's own claims, read
    // after the dispatch join).
    for (int w = 0; w < num_workers; ++w) {
      TelemetrySnapshot::Worker& row =
          snap.workers[static_cast<std::size_t>(w)];
      row.v[static_cast<int>(Counter::kTilesClaimed)] =
          sched.worker_executed(w);
      row.v[static_cast<int>(Counter::kLocalSteals)] =
          sched.worker_steals(w, StealClass::kLocal);
      row.v[static_cast<int>(Counter::kNeighbourSteals)] =
          sched.worker_steals(w, StealClass::kNeighbour);
      row.v[static_cast<int>(Counter::kGlobalSteals)] =
          sched.worker_steals(w, StealClass::kGlobal);
    }
    if (opts.phase_timer != nullptr) {
      // Compatibility aggregation view: the historical phase names,
      // one add() per phase per run, and only for phases that actually
      // ran — fused mode still reports seconds("packing") == 0.
      const double transform = snap.phase_seconds(Counter::kTransformNs);
      const double packing = snap.phase_seconds(Counter::kPackNs);
      const double micro = snap.phase_seconds(Counter::kMicrokernelNs);
      if (transform > 0) opts.phase_timer->add("transform", transform);
      if (packing > 0) opts.phase_timer->add("packing", packing);
      if (micro > 0) opts.phase_timer->add("micro-kernel", micro);
    }
    // Live metrics plane: fold this run's deltas into the process-wide
    // registry so always-on scrapers see engine activity without a
    // per-run sink (runtime/metrics.h).
    snap.publish_metrics();
    if (opts.telemetry != nullptr) *opts.telemetry = std::move(snap);
  } else if (opts.telemetry != nullptr) {
    // Disabled collection must not leave a stale previous snapshot.
    *opts.telemetry = TelemetrySnapshot{};
  }
}

}  // namespace

Tensor NdirectConv::run(const Tensor& input, const Tensor& filter,
                        const Epilogue& epilogue) const {
  const ConvParams& p = params_;
  if (input.layout() != Layout::NCHW || input.rank() != 4 ||
      input.dim(0) != p.N || input.dim(1) != p.C || input.dim(2) != p.H ||
      input.dim(3) != p.W) {
    throw std::invalid_argument("NdirectConv::run: input must be NCHW " +
                                p.to_string() + ", got " +
                                input.shape_string());
  }
  if (filter.layout() != Layout::KCRS || filter.rank() != 4 ||
      filter.dim(0) != p.K || filter.dim(1) != p.C ||
      filter.dim(2) != p.R || filter.dim(3) != p.S) {
    throw std::invalid_argument("NdirectConv::run: filter must be KCRS " +
                                p.to_string() + ", got " +
                                filter.shape_string());
  }

  Tensor out = make_output_nchw(p.N, p.K, p.P(), p.Q());
  run_into(input.data(), filter.data(), out.data(), epilogue);
  return out;
}

void NdirectConv::run_into(const float* input, const float* filter,
                           float* output, const Epilogue& epilogue) const {
  const float* aot_data = nullptr;
  Tensor aot;
  bool cache_hit = false;
  if (options_.cache_packed_filter) {
    // A warm entry means this run is served from the packed-filter
    // cache (no transform at all); only probed when a telemetry sink
    // will record it, so the plain path pays nothing.
    if (options_.telemetry != nullptr && telemetry_enabled())
      cache_hit = filter_cache_warm(filter);
    aot_data = prepare_filter(filter);
  } else if (options_.aot_filter) {
    WallTimer t;
    // Wrap the raw filter in a transform call via the tiled routine on
    // the whole tensor (identical layout to pack_filter_kpacked).
    const ConvParams& p = params_;
    aot = Tensor({(p.K + plan_.rb.vk - 1) / plan_.rb.vk, p.C, p.R, p.S,
                  plan_.rb.vk},
                 Layout::KPacked);
    transform_filter_tile(filter, p.K, p.C, p.R, p.S, 0,
                          static_cast<int>(aot.dim(0)) * plan_.rb.vk, 0,
                          p.C, plan_.rb.vk, aot.data());
    if (options_.phase_timer != nullptr)
      options_.phase_timer->add("transform", t.seconds());
    aot_data = aot.data();
  }
  run_nest(exec_, plan_, options_, nchw_strides(exec_), input, filter,
           aot_data, output, epilogue);
  if (cache_hit && options_.telemetry != nullptr &&
      !options_.telemetry->workers.empty()) {
    options_.telemetry->workers[0]
        .v[static_cast<int>(Counter::kCacheHits)] += 1;
  }
}

const float* NdirectConv::prepare_filter(const float* filter) const {
  if (!options_.cache_packed_filter) return nullptr;
  FilterCache& fc = *fcache_;
  const ConvParams& p = params_;
  const std::uint64_t fp = filter_fingerprint(
      filter, static_cast<std::size_t>(p.K) * p.C * p.R * p.S);
  // Warm path: one acquire load, no lock. The release publish below
  // orders the entry's packed contents before it becoming visible; the
  // fingerprint check rejects stale hits instead of serving stale
  // weights.
  FilterCache::Entry* hot = fc.hot.load(std::memory_order_acquire);
  if (hot != nullptr &&
      hot->src.load(std::memory_order_relaxed) == filter && hot->fp == fp)
    return hot->packed.data();

  std::lock_guard<std::mutex> lock(fc.mutex);
  for (const auto& e : fc.entries) {
    if (e->src.load(std::memory_order_relaxed) != filter) continue;
    if (e->fp == fp) {
      fc.hot.store(e.get(), std::memory_order_release);
      return e->packed.data();
    }
    // Same address, different contents: the weight tensor was freed and
    // its address reused, or it was mutated in place without an
    // invalidate. Retire the entry — a racing run may still read it, so
    // it is only unlinked, never destroyed here — and pack afresh.
    e->src.store(nullptr, std::memory_order_relaxed);
  }
  auto entry = std::make_unique<FilterCache::Entry>();
  const int vk = plan_.rb.vk;
  entry->packed =
      Tensor({(p.K + vk - 1) / vk, p.C, p.R, p.S, vk}, Layout::KPacked);
  WallTimer t;
  transform_filter_tile(filter, p.K, p.C, p.R, p.S, 0,
                        static_cast<int>(entry->packed.dim(0)) * vk, 0, p.C,
                        vk, entry->packed.data());
  if (options_.phase_timer != nullptr)
    options_.phase_timer->add("transform", t.seconds());
  entry->fp = fp;
  entry->src.store(filter, std::memory_order_relaxed);
  FilterCache::Entry* raw = entry.get();
  fc.entries.push_back(std::move(entry));
  fc.hot.store(raw, std::memory_order_release);
  return raw->packed.data();
}

void NdirectConv::invalidate_filter_cache() {
  // Destroys the packed buffers, so this must not race with a
  // concurrent run()/run_into() on the same cache (concurrent runs with
  // stable weight pointers need no invalidation in the first place).
  std::lock_guard<std::mutex> lock(fcache_->mutex);
  fcache_->hot.store(nullptr, std::memory_order_relaxed);
  fcache_->entries.clear();
}

bool NdirectConv::filter_cache_warm(const float* filter) const {
  std::lock_guard<std::mutex> lock(fcache_->mutex);
  for (const auto& e : fcache_->entries)
    if (e->src.load(std::memory_order_relaxed) == filter) return true;
  return false;
}

Tensor NdirectConv::run_nhwc(const Tensor& input, const Tensor& filter,
                             const Epilogue& epilogue) const {
  const ConvParams& p = params_;
  if (input.layout() != Layout::NHWC || input.rank() != 4 ||
      input.dim(0) != p.N || input.dim(1) != p.H || input.dim(2) != p.W ||
      input.dim(3) != p.C) {
    throw std::invalid_argument("NdirectConv::run_nhwc: input must be "
                                "NHWC " +
                                p.to_string() + ", got " +
                                input.shape_string());
  }
  if (filter.layout() != Layout::KCRS || filter.rank() != 4 ||
      filter.dim(0) != p.K || filter.dim(1) != p.C ||
      filter.dim(2) != p.R || filter.dim(3) != p.S) {
    throw std::invalid_argument("NdirectConv::run_nhwc: filter must be "
                                "KCRS " +
                                p.to_string());
  }

  Tensor out = make_output_nhwc(p.N, p.P(), p.Q(), p.K);
  const float* aot_data = nullptr;
  Tensor aot;
  bool cache_hit = false;
  if (options_.cache_packed_filter) {
    if (options_.telemetry != nullptr && telemetry_enabled())
      cache_hit = filter_cache_warm(filter.data());
    aot_data = prepare_filter(filter.data());
  } else if (options_.aot_filter) {
    aot = pack_filter_kpacked(filter, plan_.rb.vk);
    aot_data = aot.data();
  }
  run_nest(exec_, plan_, options_, nhwc_strides(exec_), input.data(),
           filter.data(), aot_data, out.data(), epilogue);
  if (cache_hit && options_.telemetry != nullptr &&
      !options_.telemetry->workers.empty()) {
    options_.telemetry->workers[0]
        .v[static_cast<int>(Counter::kCacheHits)] += 1;
  }
  return out;
}

Tensor ndirect_conv(const Tensor& input, const Tensor& filter,
                    const ConvParams& params,
                    const NdirectOptions& options) {
  const NdirectConv conv(params, options);
  return conv.run(input, filter);
}

}  // namespace ndirect
