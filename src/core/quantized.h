// INT16 quantized convolution (the last Section 3.3 datatype).
//
// Symmetric per-tensor quantization: real = scale * q with q in int16.
// The kernel multiply-accumulates int16 x int16 into int32 (the NEON
// SMLAL pattern) and either returns the raw int32 accumulators or
// requantizes to int16 with round-to-nearest and saturation.
//
// Overflow contract: an int16 product can reach 2^30, so a reduction of
// length C*R*S only fits int32 accumulators if the quantized magnitudes
// are bounded. choose_qmax() returns the largest symmetric range that
// provably cannot overflow for a given reduction length, and
// quantize_tensor() uses it; this is the int16 analogue of the
// calibration step every quantized-inference stack performs.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/thread_pool.h"
#include "tensor/conv_params.h"

namespace ndirect {

struct QuantizedTensor {
  std::vector<std::int16_t> values;
  float scale = 1.0f;  ///< real = scale * q
};

/// Largest symmetric quantized magnitude Q such that
/// reduction_len * Q * Q < 2^31 (and Q <= 32767).
std::int32_t choose_qmax(std::int64_t reduction_len);

/// Quantize `n` floats symmetrically into [-qmax, qmax].
QuantizedTensor quantize_tensor(const float* data, std::size_t n,
                                std::int32_t qmax);

/// Dequantize helper (tests/examples).
void dequantize(const QuantizedTensor& q, float* out);

/// input NCHW int16, filter KCRS int16 -> raw int32 accumulators
/// [N,K,P,Q] (value = in_scale * flt_scale * acc in real units).
void ndirect_conv_int16(const std::int16_t* input,
                        const std::int16_t* filter, std::int32_t* output,
                        const ConvParams& p, ThreadPool* pool = nullptr);

/// Full quantized pipeline: quantize fp32 tensors (ranges derived from
/// the data and the overflow contract), convolve in int16/int32, and
/// return the dequantized fp32 result. The quantization error bound is
/// what tests assert against the fp32 reference.
std::vector<float> quantized_conv_fp32(const float* input,
                                       const float* filter,
                                       const ConvParams& p,
                                       ThreadPool* pool = nullptr);

/// Naive int64-accumulation reference (exact) for tests.
void naive_conv_int16(const std::int16_t* input,
                      const std::int16_t* filter, std::int64_t* output,
                      const ConvParams& p);

}  // namespace ndirect
