// Quantized convolution: the int16 per-tensor proof-of-concept
// (Section 3.3's last datatype) and the production int8 path
// (DESIGN.md §14).
//
// INT16: symmetric per-tensor quantization, real = scale * q. The
// kernel multiply-accumulates int16 x int16 into int32 (the NEON SMLAL
// pattern) and returns raw int32 accumulators.
//
// INT8: asymmetric u8 activations (real = in_scale * (u - zero_point)),
// symmetric per-channel s8 filters (real = w_scale[k] * w). Int8Conv
// packs inputs XORed with 0x80 and runs the SDOT/emulated/scalar policy
// kernels of core/quantized_microkernel.h, finishing each tile with a
// fused requantize epilogue (raw int32, saturating s8 with
// round-to-nearest-even, or dequantized fp32 with optional bias+ReLU).
//
// Overflow contracts: choose_qmax() bounds int16 magnitudes so a
// C*R*S-long reduction provably fits int32; choose_qmax_int8() is the
// int8 analogue (products reach 127^2, so the bound only bites for
// reductions past ~133k elements).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/quantized_microkernel.h"
#include "runtime/thread_pool.h"
#include "tensor/conv_params.h"

namespace ndirect {

struct QuantizedTensor {
  std::vector<std::int16_t> values;
  float scale = 1.0f;  ///< real = scale * q
};

/// Largest symmetric quantized magnitude Q such that
/// reduction_len * Q * Q < 2^31 (and Q <= 32767).
std::int32_t choose_qmax(std::int64_t reduction_len);

/// Quantize `n` floats symmetrically into [-qmax, qmax].
QuantizedTensor quantize_tensor(const float* data, std::size_t n,
                                std::int32_t qmax);

/// Dequantize helper (tests/examples).
void dequantize(const QuantizedTensor& q, float* out);

/// input NCHW int16, filter KCRS int16 -> raw int32 accumulators
/// [N,K,P,Q] (value = in_scale * flt_scale * acc in real units).
void ndirect_conv_int16(const std::int16_t* input,
                        const std::int16_t* filter, std::int32_t* output,
                        const ConvParams& p, ThreadPool* pool = nullptr);

/// Full quantized pipeline: quantize fp32 tensors (ranges derived from
/// the data and the overflow contract), convolve in int16/int32, and
/// return the dequantized fp32 result. The quantization error bound is
/// what tests assert against the fp32 reference.
std::vector<float> quantized_conv_fp32(const float* input,
                                       const float* filter,
                                       const ConvParams& p,
                                       ThreadPool* pool = nullptr);

/// Naive int64-accumulation reference (exact) for tests.
void naive_conv_int16(const std::int16_t* input,
                      const std::int16_t* filter, std::int64_t* output,
                      const ConvParams& p);

// ---------------------------------------------------------------------------
// INT8 path
// ---------------------------------------------------------------------------

/// Largest symmetric s8 magnitude Q (<= 127) such that a reduction of
/// `reduction_len` worst-case products provably fits an int32
/// accumulator: reduction_len * Q^2 <= 2^31 - 1. Returns 127 for every
/// reduction up to 133144 elements and only then starts shrinking —
/// the int8 analogue of choose_qmax().
std::int32_t choose_qmax_int8(std::int64_t reduction_len);

/// Asymmetric u8 activation quantization: real = scale * (u - zero_point).
struct QuantizedActivation {
  std::vector<std::uint8_t> values;
  float scale = 1.0f;
  int zero_point = 0;  ///< in [0, 255]
};

/// Min/max calibration over `n` floats (the range always includes 0 so
/// zero is exactly representable, as padding demands).
QuantizedActivation quantize_activation_u8(const float* data,
                                           std::size_t n);

/// Symmetric per-output-channel s8 filter quantization:
/// real = scales[k] * w for filter k's C*R*S taps.
struct QuantizedFilterI8 {
  std::vector<std::int8_t> values;  ///< KCRS
  std::vector<float> scales;        ///< K
};

QuantizedFilterI8 quantize_filter_i8(const float* filter,
                                     const ConvParams& p);

/// What the epilogue does with a tile's int32 accumulators (after the
/// zero-point compensation is added). Exactly one output pointer in
/// Int8Output selects the mode.
struct Int8Epilogue {
  // s8 requantize mode: q = clamp(rne(acc * requant_scale[k]) +
  // out_zero_point, -127, 127), with the int32 bias added to acc first.
  const float* requant_scale = nullptr;   ///< K; in_s*w_s[k]/out_s
  const std::int32_t* bias_i32 = nullptr; ///< K, pre-quantized; optional
  int out_zero_point = 0;
  // f32 dequantize mode: y = acc * dequant_scale[k] + bias[k].
  const float* dequant_scale = nullptr;   ///< K; in_s*w_s[k]
  const float* bias = nullptr;            ///< K fp32; optional
  bool relu = false;  ///< fused max(., relu point) in s8/f32 modes
};

/// Destination [N,K,P,Q]; set exactly one. i32 receives the raw
/// compensated accumulators (the exact integer convolution of
/// (u - zp) * w, bias excluded).
struct Int8Output {
  std::int32_t* i32 = nullptr;
  std::int8_t* s8 = nullptr;
  float* f32 = nullptr;
};

struct Int8RunStats {
  std::uint64_t tiles = 0;
  std::uint64_t generic_fallback = 0;  ///< tiles run by the scalar generic
  Int8Backend backend = Int8Backend::kScalar;  ///< backend actually used
  int vw = 0, vk = 0;
  const char* reason = "";  ///< why fn resolution degraded, if it did
};

struct Int8ConvOptions {
  /// Force a register block (0 = solve Eq. 3 for S, like fp32).
  RegisterBlock force_block{0, 0};
  /// Backend request; defaults to the best this host supports
  /// (kDot on ASIMDDP unless NDIRECT_FORCE_NO_DOTPROD is set).
  Int8Backend backend = int8_preferred_backend();
  ThreadPool* pool = nullptr;  ///< nullptr = ThreadPool::global()
  /// Reuse the packed filter across run() calls keyed by the filter
  /// pointer (mirrors the fp32 engine's packed-filter cache).
  bool cache_packed_filter = true;
};

/// The int8 direct-convolution engine. Holds the conv geometry, the
/// resolved micro-kernel, and the packed-filter cache; run() is
/// re-entrant and const.
class Int8Conv {
 public:
  struct PackedFilter;  ///< opaque packed-filter cache entry

  explicit Int8Conv(const ConvParams& p, const Int8ConvOptions& opt = {});
  ~Int8Conv();
  Int8Conv(const Int8Conv&) = delete;
  Int8Conv& operator=(const Int8Conv&) = delete;

  const ConvParams& params() const { return p_; }
  RegisterBlock block() const { return rb_; }
  /// Backend the resolved kernel will use (kScalar = generic fallback).
  Int8Backend backend() const;

  /// Pack `filter` (KCRS s8) into the tiled layout and record per-k
  /// row sums (the zero-point compensation base). Implicit on first
  /// run(); call ahead of time to move the cost out of the hot path.
  void prepare_filter(const std::int8_t* filter) const;

  /// u8 NCHW input -> epilogue-selected output. `in_zero_point` is the
  /// activation zero point in [0, 255].
  void run(const std::uint8_t* input, int in_zero_point,
           const std::int8_t* filter, const Int8Epilogue& ep,
           const Int8Output& out, Int8RunStats* stats = nullptr) const;

 private:
  ConvParams p_;
  Int8ConvOptions opt_;
  RegisterBlock rb_;
  I8KernelResolution kres_;
  mutable std::shared_ptr<const PackedFilter> packed_;
  mutable std::mutex mu_;
};

/// Convenience wrapper mirroring quantized_conv_fp32: quantize fp32
/// input (u8 asymmetric) and filter (s8 per-channel), convolve through
/// Int8Conv, and dequantize to fp32 with optional fused bias + ReLU.
std::vector<float> int8_conv_fp32(const float* input, const float* filter,
                                  const ConvParams& p,
                                  const float* bias = nullptr,
                                  bool relu = false,
                                  const Int8ConvOptions& opt = {},
                                  Int8RunStats* stats = nullptr);

/// Naive exact reference: raw = sum (u - zp) * w with int32
/// accumulation (tests compare Int8Conv's i32 mode bitwise).
void naive_conv_int8(const std::uint8_t* input, int in_zero_point,
                     const std::int8_t* filter, std::int32_t* output,
                     const ConvParams& p);

}  // namespace ndirect
