// Int8 direct-convolution micro-kernels (the low-precision companion of
// core/microkernel.h, same policy-registry design as DESIGN.md §13).
//
// Data model: activations are asymmetric u8 (real = in_scale * (u -
// zero_point)), filters are symmetric per-channel s8 (real =
// w_scale[k] * w). The engine packs input bytes XORed with 0x80 — the
// bit-exact u8 -> s8 shift u - 128 — so every kernel backend computes
// the pure s8 x s8 sum  acc = sum (u - 128) * w  with exact int32
// accumulation, and the affine correction
//
//   sum (u - zp) * w  =  acc + (128 - zp) * sum(w)
//
// is a per-output-channel constant folded into the epilogue from the
// filter row sums recorded at pack time (the "zero-point compensation"
// term; spatial padding packs as u = zp, making border taps contribute
// exactly zero after the correction).
//
// Kernel geometry mirrors Algorithm 3 with the 4-channel group playing
// the fp32 lane's role: the packed input row holds packw groups of 4
// channel bytes, the filter tile holds Vk x 4 bytes per tap, and each
// (w, s) tap is one lane-broadcast 4-way dot product — SDOT with a lane
// operand on +dotprod targets, the widening SMULL/PMADDWD emulation
// elsewhere, so the register budget is exactly the fp32 Eq. 3 with
// "element" = 4-channel group. Every kernel computes the full Vw x Vk
// tile into an int32 accumulator scratch (ragged borders are handled by
// the pack padding and the epilogue's masked stores, not by separate
// edge kernels: the accumulator tile is register-resident, so the
// overshoot columns are free), laid out k-major/w-contiguous so the
// requantize epilogue streams it with full-width vectors.
//
// A policy is (Vw, Vk, S, stride, backend); build_i8_policy_table<S>()
// instantiates every Eq. 3-feasible block x S in {1, 3, 5, 7} x stride
// in {1, 2} x the compiled backends, split across two translation
// units (quantized_policies_{a,b}.cpp). resolve_int8_kernel() picks the
// entry once per convolution; misses fall back to the scalar generic
// kernel and are counted as generic-fallback tiles.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/microkernel.h"
#include "simd/vec128_int8.h"

// Same force-inline rationale as microkernel_generator.h: the kernels
// are the product; GCC's per-TU inline budget must not spill the
// accumulator tile. Guarded because the fp32 generator header defines
// the identical macros.
#ifndef NDIRECT_ALWAYS_INLINE
#if defined(__GNUC__) || defined(__clang__)
#define NDIRECT_ALWAYS_INLINE inline __attribute__((always_inline))
#define NDIRECT_FLATTEN __attribute__((flatten))
#else
#define NDIRECT_ALWAYS_INLINE inline
#define NDIRECT_FLATTEN
#endif
#endif

namespace ndirect {

/// Which instruction family a kernel's dot products use.
enum class Int8Backend : std::uint8_t {
  kScalar = 0,  ///< plain C loops (parity reference / last resort)
  kEmulated,    ///< widening-multiply vec128 emulation (SMLAL shape)
  kDot,         ///< native SDOT (requires a +dotprod compile target
                ///< and an ASIMDDP host)
};

const char* int8_backend_name(Int8Backend b);

/// Highest-performance backend available on this host: kDot when the
/// binary was compiled for +dotprod, cpu_info reports ASIMDDP and
/// NDIRECT_FORCE_NO_DOTPROD is not set; kEmulated otherwise. (kScalar
/// is never preferred — it exists for parity and the registry
/// fallback.)
Int8Backend int8_preferred_backend();

/// One int8 micro-kernel invocation. All strides are in bytes.
struct I8MicroArgs {
  const std::int8_t* pack = nullptr;  ///< [c4][R][xv*16] packed window
  std::int64_t pack_c4_stride = 0;
  std::int64_t pack_r_stride = 0;     ///< row padded to whole vectors
  const std::int8_t* ftile = nullptr; ///< [c4][R][S][vk*4] filter tile
  std::int64_t f_c4_stride = 0;
  int c4 = 0;     ///< 4-channel groups in the reduction (ceil(C/4))
  int R = 0, S = 0, str = 1;
  int packw = 0;  ///< input groups per row: (vw-1)*str + S
  /// Full-tile accumulator scratch, k-major: acc[k * vw + w], always
  /// written for all vw x vk positions.
  std::int32_t* acc = nullptr;
};

using I8KernelFn = void (*)(const I8MicroArgs&);

/// One instantiated int8 policy.
struct I8KernelEntry {
  int vw = 0;
  int vk = 0;
  int S = 0;
  int str = 0;
  Int8Backend backend = Int8Backend::kEmulated;
  I8KernelFn fn = nullptr;
};

/// Every instantiated policy: Eq. 3-feasible blocks x S in {1, 3, 5, 7}
/// x stride in {1, 2} x compiled backends, in deterministic order.
const std::vector<I8KernelEntry>& int8_kernel_registry();

/// Distinct (vw, vk) blocks present in the registry — the space the
/// int8 auto-tuner searches (same Eq. 3 grid as the fp32 registry).
const std::vector<RegisterBlock>& int8_microkernel_blocks();

/// Once-per-conv resolution. `fn` is nullptr when the tuple has no
/// policy kernel (block outside the Eq. 3 grid, S not in {1, 3, 5, 7},
/// or stride > 2) — the caller must run int8_kernel_generic and count
/// the fallback; `reason` says why. `backend` is the backend actually
/// served (a kDot request degrades to kEmulated with a reason when no
/// dot kernel is compiled in).
struct I8KernelResolution {
  I8KernelFn fn = nullptr;
  Int8Backend backend = Int8Backend::kScalar;
  const char* reason = "";
};

I8KernelResolution resolve_int8_kernel(int vw, int vk, int S, int str,
                                       Int8Backend preferred);

/// Runtime-parameterized scalar reference (any vw, vk): the parity
/// oracle and the registry-miss fallback. Bitwise-identical to every
/// policy kernel (all paths are exact int32 arithmetic).
void int8_kernel_generic(const I8MicroArgs& args, int vw, int vk);

namespace detail {

/// Entries for one S and one backend flag, as a constexpr table (see
/// build_i8_policy_table). Non-owning span mirror of PolicySpan.
struct I8PolicySpan {
  const I8KernelEntry* data = nullptr;
  std::size_t size = 0;
};

// Defined in quantized_policies_a.cpp (S = 1, 3) and
// quantized_policies_b.cpp (S = 5, 7).
I8PolicySpan i8_policy_entries_s1();
I8PolicySpan i8_policy_entries_s3();
I8PolicySpan i8_policy_entries_s5();
I8PolicySpan i8_policy_entries_s7();

// ---------------------------------------------------------------------------
// The generator (included by the policy TUs and the tests only).
// ---------------------------------------------------------------------------

// One (c4, r) row pair: preload the packed input row (packw 4-byte
// groups) into whole byte-vectors, then every (w, s) tap broadcasts its
// group and dots it against the Vk filter vector — the int8 Algorithm 3.
template <int VW, int VKV, int S, int STR, bool UseDot>
NDIRECT_ALWAYS_INLINE void i8_cr_compute(vec128i (&acc)[VW][VKV],
                                         const std::int8_t* brow,
                                         const std::int8_t* frow) {
  constexpr int PACKW = (VW - 1) * STR + S;
  constexpr int XV = (PACKW + 3) / 4;
  vec128b x[XV];
  for (int t = 0; t < XV; ++t) x[t] = vload_b(brow + 16 * t);

  [&]<int... Ss>(std::integer_sequence<int, Ss...>) {
    (([&] {
       constexpr int s = Ss;
       vec128b f[VKV];
       for (int j = 0; j < VKV; ++j) {
         f[j] = vload_b(frow + s * VKV * 16 + 16 * j);
       }
       [&]<int... Ws>(std::integer_sequence<int, Ws...>) {
         (([&] {
            constexpr int g = Ws * STR + s;
            static_assert(g / 4 < XV);
            const vec128b b = vdup_group<g % 4>(x[g / 4]);
            for (int j = 0; j < VKV; ++j) {
              acc[Ws][j] = vdot_s8<UseDot>(acc[Ws][j], b, f[j]);
            }
          }()),
          ...);
       }(std::make_integer_sequence<int, VW>{});
     }()),
     ...);
  }(std::make_integer_sequence<int, S>{});
}

template <int VW, int VKV, int S, int STR, bool UseDot>
NDIRECT_FLATTEN void i8_policy_kernel(const I8MicroArgs& a) {
  vec128i acc[VW][VKV];
  for (int w = 0; w < VW; ++w) {
    for (int j = 0; j < VKV; ++j) acc[w][j] = vzero_i32();
  }
  for (int c = 0; c < a.c4; ++c) {
    const std::int8_t* brows = a.pack + c * a.pack_c4_stride;
    const std::int8_t* fc = a.ftile + c * a.f_c4_stride;
    for (int r = 0; r < a.R; ++r) {
      i8_cr_compute<VW, VKV, S, STR, UseDot>(
          acc, brows + r * a.pack_r_stride,
          fc + static_cast<std::int64_t>(r) * S * VKV * 16);
    }
  }
  // K-vectorized accumulators -> k-major / w-contiguous scratch rows
  // via 4x4 transposes (the epilogue streams whole w-vectors per k).
  for (int j = 0; j < VKV; ++j) {
    for (int w0 = 0; w0 < VW; w0 += 4) {
      vec128i r0 = acc[w0 + 0][j], r1 = acc[w0 + 1][j],
              r2 = acc[w0 + 2][j], r3 = acc[w0 + 3][j];
      vtranspose4x4_i32(r0, r1, r2, r3);
      vstore_i32(a.acc + (4 * j + 0) * VW + w0, r0);
      vstore_i32(a.acc + (4 * j + 1) * VW + w0, r1);
      vstore_i32(a.acc + (4 * j + 2) * VW + w0, r2);
      vstore_i32(a.acc + (4 * j + 3) * VW + w0, r3);
    }
  }
}

/// Eq. 3-feasible block count for S (same predicate as the fp32
/// registry: the 4-channel group costs what the fp32 lane does).
constexpr int i8_policy_block_count(int S) {
  int n = 0;
  for (int vw = 4; vw <= kMaxVw; vw += 4) {
    for (int vk = 4; vk <= kMaxVk; vk += 4) {
      if (kernel_block_feasible(vw, vk, S)) ++n;
    }
  }
  return n;
}

/// Backends instantiated per policy tuple.
constexpr int i8_backend_count() {
  return NDIRECT_INT8_DOT_COMPILED ? 2 : 1;
}

template <int S, int VW, int VK, int STR, bool UseDot, typename Table>
constexpr void i8_emit_policy(Table& table, std::size_t& i) {
  table[i++] = I8KernelEntry{
      VW, VK, S, STR, UseDot ? Int8Backend::kDot : Int8Backend::kEmulated,
      &i8_policy_kernel<VW, VK / 4, S, STR, UseDot>};
}

template <int S, int VW, int VK, typename Table>
constexpr void i8_emit_block(Table& table, std::size_t& i) {
  if constexpr (kernel_block_feasible(VW, VK, S)) {
    i8_emit_policy<S, VW, VK, 1, false>(table, i);
    i8_emit_policy<S, VW, VK, 2, false>(table, i);
#if NDIRECT_INT8_DOT_COMPILED
    i8_emit_policy<S, VW, VK, 1, true>(table, i);
    i8_emit_policy<S, VW, VK, 2, true>(table, i);
#endif
  }
}

template <int S, int VW, typename Table>
constexpr void i8_emit_block_row(Table& table, std::size_t& i) {
  [&]<int... Ks>(std::integer_sequence<int, Ks...>) {
    (i8_emit_block<S, VW, (Ks + 1) * 4>(table, i), ...);
  }(std::make_integer_sequence<int, kMaxVk / 4>{});
}

template <int S>
constexpr auto build_i8_policy_table() {
  std::array<I8KernelEntry,
             static_cast<std::size_t>(i8_policy_block_count(S)) * 2 *
                 static_cast<std::size_t>(i8_backend_count())>
      table{};
  std::size_t i = 0;
  [&]<int... Ws>(std::integer_sequence<int, Ws...>) {
    (i8_emit_block_row<S, (Ws + 1) * 4>(table, i), ...);
  }(std::make_integer_sequence<int, kMaxVw / 4>{});
  return table;
}

}  // namespace detail
}  // namespace ndirect
