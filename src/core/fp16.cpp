#include "core/fp16.h"

#include <cmath>
#include <cstring>

namespace ndirect {
namespace {

float bits_to_float(std::uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

std::uint32_t float_to_bits(float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

}  // namespace

float fp16_to_fp32_soft(fp16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t frac = h & 0x3FFu;
  if (exp == 0) {
    // Zero or subnormal: value = frac * 2^-24, exact in fp32.
    const float v = static_cast<float>(frac) * 0x1p-24f;
    return bits_to_float(sign | float_to_bits(v));
  }
  if (exp == 31) {  // inf / NaN (frac bits preserved for NaN payloads)
    return bits_to_float(sign | 0x7F800000u | (frac << 13));
  }
  return bits_to_float(sign | ((exp + 112u) << 23) | (frac << 13));
}

fp16_t fp32_to_fp16_soft(float f) {
  const std::uint32_t x = float_to_bits(f);
  const auto sign = static_cast<fp16_t>((x >> 16) & 0x8000u);
  const std::uint32_t abs = x & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {  // inf / NaN
    const std::uint32_t nan =
        abs > 0x7F800000u ? 0x0200u | ((abs >> 13) & 0x3FFu) : 0u;
    return static_cast<fp16_t>(sign | 0x7C00u | nan);
  }
  if (abs >= 0x477FF000u) {  // >= 65520 rounds to +-inf
    return static_cast<fp16_t>(sign | 0x7C00u);
  }
  if (abs < 0x38800000u) {  // < 2^-14: subnormal half or zero
    if (abs < 0x33000000u) return sign;  // < 2^-25 underflows to +-0
    // Result = round-to-nearest-even(value * 2^24); the product is
    // exact (power-of-two scale) and lrintf ties to even.
    const float scaled = bits_to_float(abs) * 0x1p24f;
    return static_cast<fp16_t>(
        sign | static_cast<std::uint32_t>(std::lrintf(scaled)));
  }
  const std::uint32_t exp = (abs >> 23) - 112u;  // biased-15 exponent
  const std::uint32_t frac = abs & 0x7FFFFFu;
  std::uint32_t half = (exp << 10) | (frac >> 13);
  const std::uint32_t rem = frac & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) {
    ++half;  // cannot carry past 0x7BFF: abs < 65520 was ensured above
  }
  return static_cast<fp16_t>(sign | half);
}

float fp16_to_fp32(fp16_t h) {
#if defined(__F16C__)
  return _cvtsh_ss(h);
#else
  return fp16_to_fp32_soft(h);
#endif
}

fp16_t fp32_to_fp16(float f) {
#if defined(__F16C__)
  return static_cast<fp16_t>(_cvtss_sh(f, _MM_FROUND_TO_NEAREST_INT));
#else
  return fp32_to_fp16_soft(f);
#endif
}

void fp16_to_fp32_n(const fp16_t* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = fp16_to_fp32(src[i]);
}

void fp32_to_fp16_n(const float* src, fp16_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = fp32_to_fp16(src[i]);
}

}  // namespace ndirect
