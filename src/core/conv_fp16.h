// FP16-storage convolution (Section 3.3 datatype extension).
//
// Tensors live in binary16 — halving the memory footprint and bandwidth,
// which is the reason mobile ARMv8.2 deployments use FP16 — while the
// arithmetic runs in FP32 through the same generic micro-kernel as the
// FP32 engine: input windows widen inside the packing micro-kernel,
// filters widen once at operator setup (as real FP16 inference libraries
// prepare weights), and outputs narrow with round-to-nearest-even at
// store time. Accumulation is therefore full FP32 precision; only the
// storage format is half.
#pragma once

#include "core/fai.h"
#include "core/fp16.h"
#include "runtime/thread_pool.h"
#include "tensor/conv_params.h"

namespace ndirect {

/// input NCHW [N,C,H,W], filter KCRS [K,C,R,S], output NCHW [N,K,P,Q],
/// all binary16. Output is overwritten.
void ndirect_conv_fp16(const fp16_t* input, const fp16_t* filter,
                       fp16_t* output, const ConvParams& p,
                       ThreadPool* pool = nullptr);

/// Reference: widen everything to fp32, run Algorithm 1 with double
/// accumulation, narrow the result (the best answer fp16 storage
/// admits). For tests.
void naive_conv_fp16(const fp16_t* input, const fp16_t* filter,
                     fp16_t* output, const ConvParams& p);

}  // namespace ndirect
