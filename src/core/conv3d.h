// 3D convolution (Section 10.2).
//
// "Since 3D Convolution can be seen as 2D Convolution with additional
// reduction dimensions, we can directly use the micro-kernels of
// nDirect for acceleration and further optimize the outer loops."
// This module does exactly that: each (output-depth, kernel-depth) pair
// contributes one 2D nDirect convolution over a depth slice, and the
// slices accumulate into the output plane. The 2D engine runs unchanged;
// the 3D logic is confined to the outer loops and the accumulation.
#pragma once

#include "core/ndirect.h"
#include "tensor/tensor.h"

namespace ndirect {

struct Conv3dParams {
  int N = 1, C = 1, D = 1, H = 1, W = 1;  ///< input [N,C,D,H,W]
  int K = 1, T = 1, R = 1, S = 1;         ///< filter [K,C,T,R,S]
  int str = 1;   ///< stride, all three spatial dims
  int pad = 0;   ///< spatial (H/W) padding
  int pad_d = 0; ///< depth padding

  int Dout() const { return (D + 2 * pad_d - T) / str + 1; }
  int P() const { return (H + 2 * pad - R) / str + 1; }
  int Q() const { return (W + 2 * pad - S) / str + 1; }
  bool valid() const {
    return N > 0 && C > 0 && D > 0 && H > 0 && W > 0 && K > 0 && T > 0 &&
           R > 0 && S > 0 && str > 0 && pad >= 0 && pad_d >= 0 &&
           D + 2 * pad_d >= T && H + 2 * pad >= R && W + 2 * pad >= S;
  }
  std::int64_t flops() const {
    return 2LL * N * K * Dout() * P() * Q() * C * T * R * S;
  }
};

/// input [N,C,D,H,W] (rank-5, Layout::Linear), filter [K,C,T,R,S]
/// -> output [N,K,Dout,P,Q].
Tensor conv3d_ndirect(const Tensor& input, const Tensor& filter,
                      const Conv3dParams& p, ThreadPool* pool = nullptr);

/// Naive reference for tests (double accumulation).
Tensor conv3d_reference(const Tensor& input, const Tensor& filter,
                        const Conv3dParams& p);

}  // namespace ndirect
