#include "core/grouped.h"

#include <stdexcept>

namespace ndirect {

Tensor grouped_conv_nchw(const Tensor& input, const Tensor& filter,
                         const ConvParams& p, int groups,
                         const NdirectOptions& options) {
  if (groups < 1 || p.C % groups != 0 || p.K % groups != 0) {
    throw std::invalid_argument(
        "grouped_conv: groups must divide C and K");
  }
  const int cg = p.C / groups, kg = p.K / groups;
  if (filter.rank() != 4 || filter.dim(0) != p.K || filter.dim(1) != cg ||
      filter.dim(2) != p.R || filter.dim(3) != p.S) {
    throw std::invalid_argument(
        "grouped_conv: filter must be [K, C/groups, R, S]");
  }
  if (input.rank() != 4 || input.dim(0) != p.N || input.dim(1) != p.C ||
      input.dim(2) != p.H || input.dim(3) != p.W) {
    throw std::invalid_argument("grouped_conv: input must be NCHW " +
                                p.to_string());
  }

  const int P = p.P(), Q = p.Q();
  Tensor out = make_output_nchw(p.N, p.K, P, Q);

  // One plan serves every (image, group) pair: a batch-1 convolution on
  // the group's channel slice.
  ConvParams pg = p;
  pg.N = 1;
  pg.C = cg;
  pg.K = kg;

  const std::int64_t in_group = std::int64_t{cg} * p.H * p.W;
  const std::int64_t out_group = std::int64_t{kg} * P * Q;
  const std::int64_t flt_group =
      std::int64_t{kg} * cg * p.R * p.S;

  ThreadPool& tp =
      options.pool != nullptr ? *options.pool : ThreadPool::global();
  const int threads = options.threads > 0 ? options.threads
                                          : static_cast<int>(tp.size());
  const std::size_t jobs = static_cast<std::size_t>(p.N) * groups;

  auto run_job = [&](const NdirectConv& conv, std::size_t job) {
    const std::int64_t n = static_cast<std::int64_t>(job) / groups;
    const std::int64_t g = static_cast<std::int64_t>(job) % groups;
    conv.run_into(input.data() + n * p.C * p.H * p.W + g * in_group,
                  filter.data() + g * flt_group,
                  out.data() + std::int64_t{n} * p.K * P * Q +
                      g * out_group);
  };

  if (threads > 1 && jobs >= static_cast<std::size_t>(threads)) {
    // Enough (image, group) pairs to occupy every core: claim whole
    // pairs dynamically and run each group's convolution single-thread
    // (run_nest with one worker executes inline on the claiming worker,
    // so nesting is deadlock-free). Each pair writes a disjoint output
    // block.
    NdirectOptions inner = options;
    inner.pool = nullptr;
    inner.threads = 1;
    inner.force_mapping = {1, 1};
    const NdirectConv conv(pg, inner);
    tp.parallel_for_dynamic(
        jobs, 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t job = begin; job < end; ++job)
            run_job(conv, job);
        });
  } else {
    // Few groups: let each group's convolution use the whole grid.
    const NdirectConv conv(pg, options);
    for (std::size_t job = 0; job < jobs; ++job) run_job(conv, job);
  }
  return out;
}

Tensor grouped_conv_reference(const Tensor& input, const Tensor& filter,
                              const ConvParams& p, int groups) {
  const int cg = p.C / groups, kg = p.K / groups;
  const int P = p.P(), Q = p.Q();
  Tensor out = make_output_nchw(p.N, p.K, P, Q);
  for (int n = 0; n < p.N; ++n)
    for (int k = 0; k < p.K; ++k) {
      const int g = k / kg;
      for (int oj = 0; oj < P; ++oj)
        for (int oi = 0; oi < Q; ++oi) {
          double sum = 0;
          for (int ci = 0; ci < cg; ++ci) {
            const int c = g * cg + ci;
            for (int r = 0; r < p.R; ++r) {
              const int ij = p.str * oj + r - p.pad;
              if (ij < 0 || ij >= p.H) continue;
              for (int s = 0; s < p.S; ++s) {
                const int ii = p.str * oi + s - p.pad;
                if (ii < 0 || ii >= p.W) continue;
                sum += static_cast<double>(input.at4(n, c, ij, ii)) *
                       static_cast<double>(filter.at4(k, ci, r, s));
              }
            }
          }
          out.at4(n, k, oj, oi) = static_cast<float>(sum);
        }
    }
  return out;
}

}  // namespace ndirect
