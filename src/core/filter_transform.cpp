#include "core/filter_transform.h"

#include <atomic>

namespace ndirect {
namespace {

std::atomic<std::uint64_t> g_transform_calls{0};

}  // namespace

std::uint64_t transform_filter_tile_calls() {
  return g_transform_calls.load(std::memory_order_relaxed);
}

void transform_filter_tile(const float* filter, int K, int C, int R, int S,
                           int kt, int tkn, int ct, int tcn, int vk,
                           float* tile) {
  g_transform_calls.fetch_add(1, std::memory_order_relaxed);
  const int kb_count = (tkn + vk - 1) / vk;
  const std::int64_t crs = static_cast<std::int64_t>(C) * R * S;
  const std::int64_t rs = static_cast<std::int64_t>(R) * S;
  // Destination-order loops: the tile is written with streaming stores;
  // the source reads stride across K (one KCRS filter row per ki).
  float* dst = tile;
  for (int kb = 0; kb < kb_count; ++kb) {
    for (int c = 0; c < tcn; ++c) {
      const std::int64_t src_c = static_cast<std::int64_t>(ct + c) * rs;
      for (std::int64_t e = 0; e < rs; ++e) {  // fused (r, s) loop
        for (int ki = 0; ki < vk; ++ki) {
          const int k = kt + kb * vk + ki;
          *dst++ = (k < kt + tkn && k < K)
                       ? filter[static_cast<std::int64_t>(k) * crs + src_c + e]
                       : 0.0f;
        }
      }
    }
  }
}

}  // namespace ndirect
